// Tests for boundary similarity, the Random baseline, parallel corpus
// analysis and corpus statistics.

#include <gtest/gtest.h>

#include "core/methods.h"
#include "datagen/post_generator.h"
#include "eval/boundary_similarity.h"
#include "eval/precision.h"

namespace ibseg {
namespace {

// --------------------------------------------------- boundary similarity ----

TEST(BoundarySimilarity, IdenticalIsOne) {
  Segmentation s{12, {3, 7}};
  EXPECT_DOUBLE_EQ(boundary_similarity(s, s), 1.0);
  Segmentation empty{12, {}};
  EXPECT_DOUBLE_EQ(boundary_similarity(empty, empty), 1.0);
}

TEST(BoundarySimilarity, DisjointFarBoundariesAreZero) {
  Segmentation a{20, {3}};
  Segmentation b{20, {15}};
  EXPECT_DOUBLE_EQ(boundary_similarity(a, b), 0.0);
}

TEST(BoundarySimilarity, NearMissIsATransposition) {
  Segmentation a{20, {10}};
  Segmentation near{20, {11}};
  BoundaryEditStats stats = boundary_edit(a, near);
  EXPECT_EQ(stats.matches, 0u);
  EXPECT_EQ(stats.transpositions, 1u);
  EXPECT_EQ(stats.additions, 0u);
  EXPECT_DOUBLE_EQ(boundary_similarity(a, near), 0.5);
}

TEST(BoundarySimilarity, OrderingNearBeatsFarBeatsMissing) {
  Segmentation ref{30, {10, 20}};
  Segmentation exact{30, {10, 20}};
  Segmentation near{30, {11, 20}};
  Segmentation missing{30, {20}};
  Segmentation wrong{30, {2, 27}};
  double s_exact = boundary_similarity(ref, exact);
  double s_near = boundary_similarity(ref, near);
  double s_missing = boundary_similarity(ref, missing);
  double s_wrong = boundary_similarity(ref, wrong);
  EXPECT_GT(s_exact, s_near);
  EXPECT_GT(s_near, s_missing);
  EXPECT_GT(s_missing, s_wrong);
}

TEST(BoundarySimilarity, Symmetry) {
  Segmentation a{25, {5, 12, 18}};
  Segmentation b{25, {6, 12}};
  EXPECT_DOUBLE_EQ(boundary_similarity(a, b), boundary_similarity(b, a));
}

TEST(BoundarySimilarity, EditStatsCountEverything) {
  Segmentation a{40, {5, 10, 20, 30}};
  Segmentation b{40, {5, 11, 35}};
  BoundaryEditStats stats = boundary_edit(a, b, 2);
  EXPECT_EQ(stats.matches, 1u);         // 5
  EXPECT_EQ(stats.transpositions, 1u);  // 10 ~ 11
  EXPECT_EQ(stats.additions, 3u);       // 20, 30 | 35
}

// ------------------------------------------------------- random baseline ----

TEST(RandomBaseline, ChanceLevelPrecision) {
  GeneratorOptions gen;
  gen.num_posts = 200;
  gen.posts_per_scenario = 4;
  gen.seed = 77;
  SyntheticCorpus corpus = generate_corpus(gen);
  std::vector<Document> docs = analyze_corpus(corpus);
  auto method = build_method(MethodKind::kRandom, docs, MethodConfig{});
  double total = 0.0;
  size_t queries = 0;
  for (DocId q = 0; q < docs.size(); ++q) {
    auto related = method->find_related(q, 5);
    EXPECT_EQ(related.size(), 5u);
    std::vector<DocId> ids;
    for (const ScoredDoc& sd : related) {
      EXPECT_NE(sd.doc, q);
      ids.push_back(sd.doc);
    }
    int scenario = corpus.posts[q].scenario_id;
    total += list_precision(ids, [&](DocId d) {
      return corpus.posts[d].scenario_id == scenario;
    });
    ++queries;
  }
  // Chance: 3 relevant of 199 candidates ~ 0.015.
  EXPECT_LT(total / queries, 0.06);
  // Deterministic per query.
  auto again = method->find_related(3, 5);
  auto first = method->find_related(3, 5);
  ASSERT_EQ(again.size(), first.size());
  for (size_t i = 0; i < again.size(); ++i) {
    EXPECT_EQ(again[i].doc, first[i].doc);
  }
}

// ------------------------------------------------------ parallel analysis ----

TEST(ParallelAnalysis, MatchesSerial) {
  GeneratorOptions gen;
  gen.num_posts = 80;
  gen.seed = 78;
  SyntheticCorpus corpus = generate_corpus(gen);
  auto serial = analyze_corpus(corpus);
  auto parallel = analyze_corpus_parallel(corpus, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t d = 0; d < serial.size(); ++d) {
    EXPECT_EQ(serial[d].id(), parallel[d].id());
    EXPECT_EQ(serial[d].num_units(), parallel[d].num_units());
    EXPECT_EQ(serial[d].tokens().size(), parallel[d].tokens().size());
  }
}

// ---------------------------------------------------------- corpus stats ----

TEST(CorpusStats, PlausibleValues) {
  GeneratorOptions gen;
  gen.num_posts = 150;
  gen.seed = 79;
  SyntheticCorpus corpus = generate_corpus(gen);
  CorpusStats stats = compute_corpus_stats(corpus);
  EXPECT_EQ(stats.num_posts, 150u);
  EXPECT_GT(stats.avg_terms_per_post, 10.0);
  EXPECT_LT(stats.avg_terms_per_post, 200.0);
  // The paper reports 2.3-3.2% unique terms for its forums; the generator
  // is calibrated to that order of magnitude.
  EXPECT_GT(stats.unique_term_percent, 0.5);
  EXPECT_LT(stats.unique_term_percent, 15.0);
  EXPECT_GT(stats.avg_sentences_per_post, 2.0);
  EXPECT_GE(stats.avg_segments_per_post, 1.0);
}

TEST(CorpusStats, EmptyCorpus) {
  SyntheticCorpus corpus;
  CorpusStats stats = compute_corpus_stats(corpus);
  EXPECT_EQ(stats.num_posts, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_terms_per_post, 0.0);
}

}  // namespace
}  // namespace ibseg
