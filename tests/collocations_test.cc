// Tests for the multiword text-unit substrate (paper Sec. 3: a text unit
// can be an "undivided combination of words, e.g. 'New York'").

#include <gtest/gtest.h>

#include "text/collocations.h"

namespace ibseg {
namespace {

std::vector<Token> toks(const std::string& text) { return tokenize(text); }

CollocationModel learn_from(const std::vector<std::vector<Token>>& streams,
                            const CollocationOptions& options) {
  std::vector<const std::vector<Token>*> ptrs;
  for (const auto& s : streams) ptrs.push_back(&s);
  return CollocationModel::learn(ptrs, options);
}

TEST(Collocations, DetectsRepeatedPair) {
  // "new york" always together; "hotel" appears with varied neighbors.
  std::vector<std::vector<Token>> streams;
  for (int i = 0; i < 10; ++i) {
    streams.push_back(toks("we visited new york and the hotel lobby"));
    streams.push_back(toks("new york was great but the hotel bar closed"));
  }
  CollocationOptions options;
  options.min_count = 5;
  options.min_pmi = 0.5;
  CollocationModel model = learn_from(streams, options);
  EXPECT_TRUE(model.is_collocation("new", "york"));
  EXPECT_FALSE(model.is_collocation("york", "new"));       // order matters
  EXPECT_FALSE(model.is_collocation("visited", "hotel"));  // never adjacent
}

TEST(Collocations, MinCountFiltersRarePairs) {
  std::vector<std::vector<Token>> streams;
  streams.push_back(toks("rare pair appears once"));
  CollocationOptions options;
  options.min_count = 2;
  options.min_pmi = 0.0;
  CollocationModel model = learn_from(streams, options);
  EXPECT_FALSE(model.is_collocation("rare", "pair"));
  EXPECT_EQ(model.size(), 0u);
}

TEST(Collocations, StopwordsBreakAdjacency) {
  std::vector<std::vector<Token>> streams;
  for (int i = 0; i < 10; ++i) {
    streams.push_back(toks("printer of doom printer of doom"));
  }
  CollocationOptions options;
  options.min_count = 2;
  options.min_pmi = 0.0;
  CollocationModel model = learn_from(streams, options);
  // "of" is a stopword: printer/doom are never adjacent.
  EXPECT_FALSE(model.is_collocation("printer", "doom"));
}

TEST(Collocations, TermVectorFoldsPairs) {
  std::vector<std::vector<Token>> streams;
  for (int i = 0; i < 10; ++i) {
    streams.push_back(toks("new york city"));
  }
  CollocationOptions options;
  options.min_count = 5;
  options.min_pmi = 0.0;
  options.max_collocations = 1;  // keep only the top pair
  CollocationModel model = learn_from(streams, options);
  ASSERT_EQ(model.size(), 1u);

  Vocabulary vocab;
  auto tokens = toks("we love new york city");
  TermVector tv = build_term_vector_with_collocations(
      tokens, 0, tokens.size(), model, vocab);
  // Exactly one of the joined forms exists, and its parts are not counted
  // separately when folded.
  bool ny = vocab.find("new_york") != kInvalidTerm;
  bool yc = vocab.find("york_citi") != kInvalidTerm;
  EXPECT_TRUE(ny != yc) << "exactly one pair should be kept";
  if (ny) {
    EXPECT_DOUBLE_EQ(tv.weight(vocab.find("new_york")), 1.0);
    EXPECT_EQ(vocab.find("new"), kInvalidTerm);
    EXPECT_NE(vocab.find("citi"), kInvalidTerm);
  }
}

TEST(Collocations, EmptyCorpus) {
  CollocationModel model = learn_from({}, {});
  EXPECT_EQ(model.size(), 0u);
  Vocabulary vocab;
  auto tokens = toks("plain words matter");  // no stopwords among these
  TermVector tv = build_term_vector_with_collocations(
      tokens, 0, tokens.size(), model, vocab);
  EXPECT_EQ(tv.num_terms(), 3u);
}

TEST(Collocations, JoinedTermFormat) {
  EXPECT_EQ(CollocationModel::joined_term("new", "york"), "new_york");
}

}  // namespace
}  // namespace ibseg
