// Robustness sweeps: the text/NLP/segmentation stack must never crash or
// violate invariants on messy, adversarial, or randomly generated input —
// real forum dumps contain all of it.

#include <gtest/gtest.h>

#include <string>

#include "cluster/intention_clusters.h"
#include "seg/segmenter.h"
#include "text/html_cleaner.h"
#include "text/porter_stemmer.h"
#include "text/tokenizer.h"
#include "util/rng.h"

namespace ibseg {
namespace {

// ---------------------------------------------------------- messy input ----

class MessyInput : public ::testing::TestWithParam<const char*> {};

TEST_P(MessyInput, FullStackSurvives) {
  std::string text = strip_html(GetParam());
  Document doc = Document::analyze(0, text);
  // Tokens must tile their spans monotonically.
  size_t prev_end = 0;
  for (const Token& t : doc.tokens()) {
    EXPECT_LE(t.begin, t.end);
    EXPECT_GE(t.begin, prev_end);
    EXPECT_LE(t.end, doc.text().size());
    prev_end = t.end;
  }
  Vocabulary vocab;
  for (auto kind : {BorderStrategyKind::kTile, BorderStrategyKind::kGreedy,
                    BorderStrategyKind::kStepByStep,
                    BorderStrategyKind::kTopDown}) {
    EXPECT_TRUE(select_borders(doc, kind).is_valid());
  }
  EXPECT_TRUE(texttiling_segment(doc, vocab).is_valid());
  EXPECT_TRUE(cm_tiling_segment(doc).is_valid());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MessyInput,
    ::testing::Values(
        "",                                       // empty
        "   \n\t  ",                              // whitespace only
        "!!!???...",                              // punctuation only
        "HELP MY PRINTER IS ON FIRE AND I DONT KNOW WHAT TO DO",  // caps
        "no punctuation at all just words running on and on and on",
        "a",                                      // single char
        "one. two. three. four. five. six. seven. eight. nine. ten. "
        "eleven. twelve. thirteen. fourteen. fifteen.",  // many tiny units
        "word " /* repeated below */ "word word word word word word.",
        "<div><p>html <b>soup</b> &amp; entities &#65;</p><script>bad()"
        "</script></div>",
        "5.5.3 320GB 100% #hashtag @user http://example.com/path?q=1",
        "don't can't won't shouldn't it's we're they'll I'd you've",
        "\xc3\xa9\xc3\xa8\xe2\x82\xac non-ascii bytes mixed in caf\xc3\xa9.",
        "e.g. i.e. etc. Mr. Smith vs. Dr. Jones fig. 3 no. 7.",
        "line one\nline two\r\nline three\n\n\nline four"));

// --------------------------------------------------------- random fuzzing ----

TEST(Fuzz, RandomAsciiNeverBreaksInvariants) {
  Rng rng(424242);
  const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
      "0123456789 .,!?'-\n\t<>&;/\\\"()[]{}";
  for (int trial = 0; trial < 200; ++trial) {
    size_t len = rng.next_below(400);
    std::string text;
    text.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      text.push_back(alphabet[rng.next_below(alphabet.size())]);
    }
    std::string cleaned = strip_html(text);
    Document doc = Document::analyze(0, cleaned);
    size_t prev_end = 0;
    for (const Token& t : doc.tokens()) {
      ASSERT_LE(t.begin, t.end);
      ASSERT_GE(t.begin, prev_end);
      ASSERT_LE(t.end, cleaned.size());
      prev_end = t.end;
    }
    // Sentences must partition the token stream.
    size_t expected_begin = 0;
    for (const Sentence& s : doc.sentences()) {
      ASSERT_EQ(s.token_begin, expected_begin);
      ASSERT_LE(s.token_end, doc.tokens().size());
      ASSERT_LT(s.token_begin, s.token_end);
      expected_begin = s.token_end;
    }
    ASSERT_EQ(expected_begin, doc.tokens().size());
    ASSERT_TRUE(cm_tiling_segment(doc).is_valid());
  }
}

TEST(Fuzz, PorterStemmerTotalOnRandomWords) {
  Rng rng(777);
  for (int trial = 0; trial < 2000; ++trial) {
    size_t len = 1 + rng.next_below(18);
    std::string word;
    for (size_t i = 0; i < len; ++i) {
      word.push_back(static_cast<char>('a' + rng.next_below(26)));
    }
    std::string stem = porter_stem(word);
    ASSERT_FALSE(stem.empty());
    ASSERT_LE(stem.size(), word.size());
    // Idempotence on already-stemmed-looking words is NOT guaranteed by
    // Porter, but determinism is.
    ASSERT_EQ(stem, porter_stem(word));
  }
}

TEST(Fuzz, HtmlCleanerHandlesTruncatedMarkup) {
  EXPECT_NO_FATAL_FAILURE(strip_html("<div unclosed"));
  EXPECT_NO_FATAL_FAILURE(strip_html("<script>never closed"));
  EXPECT_NO_FATAL_FAILURE(strip_html("&#999999999;"));
  EXPECT_NO_FATAL_FAILURE(strip_html("&notanentity;"));
  EXPECT_NO_FATAL_FAILURE(strip_html("<"));
  EXPECT_EQ(strip_html("&amp"), "&amp");  // unterminated entity kept as-is
}

// ----------------------------------------------------- degenerate corpora ----

TEST(Degenerate, ClusteringSingleDocCorpus) {
  std::vector<Document> docs;
  docs.push_back(Document::analyze(0, "Only one post. It asks nothing."));
  std::vector<Segmentation> segs = {
      Segmentation::all_units(docs[0].num_units())};
  IntentionClustering clustering = IntentionClustering::build(docs, segs);
  EXPECT_GE(clustering.num_clusters(), 1);
}

TEST(Degenerate, ClusteringIdenticalDocuments) {
  std::vector<Document> docs;
  for (int i = 0; i < 12; ++i) {
    docs.push_back(Document::analyze(
        static_cast<DocId>(i),
        "The printer failed. I tried a reset. Can you help?"));
  }
  std::vector<Segmentation> segs(docs.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    segs[d] = Segmentation::all_units(docs[d].num_units());
  }
  IntentionClustering clustering = IntentionClustering::build(docs, segs);
  EXPECT_GE(clustering.num_clusters(), 1);
  size_t covered = 0;
  for (const RefinedSegment& s : clustering.segments()) {
    covered += s.num_units();
  }
  EXPECT_EQ(covered, docs.size() * 3);
}

}  // namespace
}  // namespace ibseg
