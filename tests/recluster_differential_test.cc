// Differential proof of background re-clustering epochs (ctest labels
// "differential" + "recluster"): after a quiescent recluster(), the
// serving state must be BIT-IDENTICAL — ranked lists AND scores,
// operator== on the doubles — to a cold pipeline built from scratch over
// the same corpus. The suite proves it for the unsharded ServingPipeline
// and for ShardedServing at shard counts {1, 2, 4}, across interleaved
// ingests before/after the epoch, cache on/off (with the
// generation-keyed staleness guarantee), save/restore at generation > 0
// including the restore-without-seed-dependency contract, plus a
// bounded-divergence soft gate for queries served BETWEEN reclusters and
// the ReclusterWorker trigger policy. scripts/reproduce.sh
// IBSEG_RECLUSTER_CHECK=1 runs the "recluster" label (normally and under
// TSan via the differential label's sanitizer pass).

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/recluster.h"
#include "core/serving.h"
#include "core/sharded_serving.h"
#include "datagen/post_generator.h"

namespace ibseg {
namespace {

constexpr int kShardCounts[] = {1, 2, 4};
constexpr size_t kPosts = 24;
constexpr size_t kTail = 7;

GeneratorOptions corpus_options(size_t posts, uint64_t seed) {
  GeneratorOptions gen;
  gen.num_posts = posts;
  gen.posts_per_scenario = 4;
  gen.seed = seed;
  return gen;
}

/// Pid-suffixed so reruns never see a previous process's journal/WAL
/// tails (ShardedServing::restore wires persistence to the directory and
/// replays whatever it finds there).
std::string tmp_dir(const std::string& name) {
  return ::testing::TempDir() + "/ibseg_recluster_" + name + "_" +
         std::to_string(static_cast<long>(::getpid()));
}

std::vector<std::string> ingest_texts(size_t count, uint64_t seed) {
  SyntheticCorpus extra = generate_corpus(corpus_options(count, seed));
  std::vector<std::string> texts;
  texts.reserve(extra.posts.size());
  for (const GeneratedPost& p : extra.posts) texts.push_back(p.text);
  return texts;
}

/// The full corpus a quiescent post-recluster state must be equivalent
/// to: the seed docs plus the ingested tail at the ids add_post assigned.
std::vector<Document> full_docs(const SyntheticCorpus& corpus,
                                const std::vector<std::string>& tail) {
  std::vector<Document> docs = analyze_corpus(corpus);
  DocId next = static_cast<DocId>(docs.size());
  for (const std::string& text : tail) {
    docs.push_back(Document::analyze(next++, text));
  }
  return docs;
}

void expect_identical(const std::vector<ScoredDoc>& got,
                      const std::vector<ScoredDoc>& want,
                      const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].doc, want[i].doc) << what << " rank " << i;
    // Bit-identical is the contract, not merely close.
    EXPECT_EQ(got[i].score, want[i].score) << what << " rank " << i;
  }
}

/// Every in-corpus query at several k against a cold-built reference.
/// Publication coordinates are NOT compared: the reclustered side carries
/// its ingest history in the epoch while the cold side was born with
/// everything as seed — the identity claim is about the index, i.e. the
/// rankings and scores.
template <typename Serving>
void expect_same_index(const Serving& got, const ServingPipeline& cold,
                       const std::string& what) {
  ASSERT_EQ(got.num_docs(), cold.num_docs()) << what;
  for (const Document& d : cold.quiescent().docs()) {
    for (int k : {1, 3, 10}) {
      expect_identical(got.find_related(d.id(), k).results,
                       cold.find_related(d.id(), k).results,
                       what + " doc " + std::to_string(d.id()) + " k " +
                           std::to_string(k));
    }
  }
}

// ------------------------------------------ unsharded: swap == rebuild ----

TEST(ReclusterDifferential, QuiescentReclusterEqualsColdRebuild) {
  for (uint64_t seed : {11u, 407u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    SyntheticCorpus corpus = generate_corpus(corpus_options(kPosts, seed));
    std::vector<std::string> tail = ingest_texts(kTail, seed + 1);

    ServingPipeline serving(RelatedPostPipeline::build(analyze_corpus(corpus)));
    for (const std::string& text : tail) serving.add_post(text);
    ASSERT_EQ(serving.offline_generation(), 0u);
    ASSERT_EQ(serving.docs_since_recluster(), kTail);

    EXPECT_EQ(serving.recluster(), 1u);

    // The swap moved the offline coverage forward without disturbing the
    // publication history: epoch/num_docs unchanged, counters reset.
    EXPECT_EQ(serving.offline_generation(), 1u);
    EXPECT_EQ(serving.epoch(), kTail);
    EXPECT_EQ(serving.num_docs(), serving.seed_docs() + serving.epoch());
    EXPECT_EQ(serving.offline_docs(), kPosts + kTail);
    EXPECT_EQ(serving.docs_since_recluster(), 0u);
    EXPECT_EQ(serving.pending_pool_size(), 0u);

    ServingPipeline cold(RelatedPostPipeline::build(full_docs(corpus, tail)));
    expect_same_index(serving, cold, "post-recluster");

    // A second epoch over the same corpus is a fixed point.
    EXPECT_EQ(serving.recluster(), 2u);
    expect_same_index(serving, cold, "second recluster");
  }
}

TEST(ReclusterDifferential, IngestsAfterTheSwapStayIdentical) {
  SyntheticCorpus corpus = generate_corpus(corpus_options(kPosts, 19));
  std::vector<std::string> tail = ingest_texts(kTail, 20);
  std::vector<std::string> later = ingest_texts(4, 21);

  ServingPipeline serving(RelatedPostPipeline::build(analyze_corpus(corpus)));
  for (const std::string& text : tail) serving.add_post(text);
  ASSERT_EQ(serving.recluster(), 1u);
  for (const std::string& text : later) serving.add_post(text);
  EXPECT_EQ(serving.docs_since_recluster(), later.size());

  // Reference: cold build over the reclustered coverage, then the same
  // post-swap ingests through the identical streaming path.
  ServingPipeline cold(RelatedPostPipeline::build(full_docs(corpus, tail)));
  for (const std::string& text : later) cold.add_post(text);
  expect_same_index(serving, cold, "post-swap ingests");
}

// -------------------------------------------------- pending/outlier pool ----

TEST(ReclusterDifferential, PendingPoolTracksThresholdAndDrainsAtSwap) {
  SyntheticCorpus corpus = generate_corpus(corpus_options(kPosts, 31));
  std::vector<std::string> tail = ingest_texts(5, 32);

  // Threshold 0: every assignment distance exceeds it, so every ingest
  // joins the pool — in ingest order.
  ServingOptions options;
  options.recluster.pending_distance_threshold = 0.0;
  ServingPipeline serving(RelatedPostPipeline::build(analyze_corpus(corpus)),
                          options);
  std::vector<DocId> ids;
  for (const std::string& text : tail) ids.push_back(serving.add_post(text));
  EXPECT_EQ(serving.pending_pool_size(), tail.size());
  EXPECT_EQ(serving.pending_pool(), ids);

  // The pool is a trigger signal, not an index partition: pooled posts
  // answer queries like any other document.
  auto r = serving.find_related(ids[0], 3);
  EXPECT_EQ(r.num_docs, serving.num_docs());

  // The swap folds the pool into the new offline coverage and drains it.
  ASSERT_EQ(serving.recluster(), 1u);
  EXPECT_EQ(serving.pending_pool_size(), 0u);
  EXPECT_TRUE(serving.pending_pool().empty());

  // The default (infinite) threshold never pools.
  ServingPipeline relaxed(RelatedPostPipeline::build(analyze_corpus(corpus)));
  for (const std::string& text : tail) relaxed.add_post(text);
  EXPECT_EQ(relaxed.pending_pool_size(), 0u);
}

// -------------------------------------------------------------- sharded ----

TEST(ReclusterDifferential, ShardedReclusterEqualsColdRebuildAtEveryCount) {
  SyntheticCorpus corpus = generate_corpus(corpus_options(kPosts, 53));
  std::vector<std::string> tail = ingest_texts(kTail, 54);
  std::vector<std::string> later = ingest_texts(3, 55);
  ServingPipeline cold(RelatedPostPipeline::build(full_docs(corpus, tail)));

  for (int shards : kShardCounts) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    ServingOptions options;
    options.num_shards = shards;
    std::unique_ptr<ShardedServing> sharded =
        ShardedServing::create(analyze_corpus(corpus), {}, options);
    ASSERT_NE(sharded, nullptr);
    for (const std::string& text : tail) sharded->add_post(text);
    ASSERT_EQ(sharded->offline_generation(), 0u);
    ASSERT_EQ(sharded->docs_since_recluster(), kTail);

    EXPECT_EQ(sharded->recluster(), 1u);
    EXPECT_EQ(sharded->offline_generation(), 1u);
    EXPECT_EQ(sharded->epoch(), kTail);
    EXPECT_EQ(sharded->docs_since_recluster(), 0u);
    EXPECT_EQ(sharded->offline_publications(), kTail);
    expect_same_index(*sharded, cold, "sharded post-recluster");

    // Life continues: further ingests on both sides stay identical.
    ServingPipeline cold_plus(
        RelatedPostPipeline::build(full_docs(corpus, tail)));
    for (const std::string& text : later) {
      sharded->add_post(text);
      cold_plus.add_post(text);
    }
    expect_same_index(*sharded, cold_plus, "sharded post-swap ingests");
  }
}

TEST(ReclusterDifferential, CacheServesNoStaleGenerationHits) {
  SyntheticCorpus corpus = generate_corpus(corpus_options(kPosts, 61));
  std::vector<std::string> tail = ingest_texts(kTail, 62);

  for (int shards : kShardCounts) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    ServingOptions cached;
    cached.num_shards = shards;
    cached.cache.capacity = 256;
    std::unique_ptr<ShardedServing> sharded =
        ShardedServing::create(analyze_corpus(corpus), {}, cached);
    ASSERT_NE(sharded, nullptr);
    for (const std::string& text : tail) sharded->add_post(text);

    // Warm the cache at generation 0, twice (the second pass hits).
    for (int round = 0; round < 2; ++round) {
      for (DocId q = 0; q < kPosts; ++q) sharded->find_related(q, 5);
    }
    ASSERT_NE(sharded->query_cache(), nullptr);
    uint64_t hits_before = sharded->query_cache()->hits();
    EXPECT_GT(hits_before, 0u);

    ASSERT_EQ(sharded->recluster(), 1u);

    // Every post-swap answer must come from the new index: bit-identical
    // to the cold rebuild even though epoch did not move (epoch-only
    // invalidation would have served the old generation from cache).
    ServingPipeline cold(RelatedPostPipeline::build(full_docs(corpus, tail)));
    expect_same_index(*sharded, cold, "cached post-recluster");
    // And the new generation caches normally: a repeat pass hits again.
    uint64_t hits_mid = sharded->query_cache()->hits();
    expect_same_index(*sharded, cold, "cached post-recluster repeat");
    EXPECT_GT(sharded->query_cache()->hits(), hits_mid);
  }
}

// ------------------------------------------- bounded divergence soft gate ----

TEST(ReclusterDifferential, DivergenceBetweenReclustersIsBoundedAndRepaired) {
  // Between reclusters the streaming path serves from the aging offline
  // clustering: answers may diverge from the ideal (cold full rebuild),
  // but boundedly — the nearest-centroid assignment keeps most rankings
  // aligned. The recluster then repairs the divergence EXACTLY.
  SyntheticCorpus corpus = generate_corpus(corpus_options(kPosts, 71));
  std::vector<std::string> tail = ingest_texts(12, 72);

  ServingPipeline drifted(RelatedPostPipeline::build(analyze_corpus(corpus)));
  for (const std::string& text : tail) drifted.add_post(text);
  ServingPipeline ideal(RelatedPostPipeline::build(full_docs(corpus, tail)));

  size_t queries = 0;
  double overlap_sum = 0.0;
  for (const Document& d : ideal.quiescent().docs()) {
    auto want = ideal.find_related(d.id(), 5).results;
    auto got = drifted.find_related(d.id(), 5).results;
    if (want.empty() && got.empty()) continue;
    std::set<DocId> want_set, got_set;
    for (const ScoredDoc& sd : want) want_set.insert(sd.doc);
    for (const ScoredDoc& sd : got) got_set.insert(sd.doc);
    size_t inter = 0;
    for (DocId id : got_set) inter += want_set.count(id);
    size_t uni = want_set.size() + got_set.size() - inter;
    overlap_sum += uni == 0 ? 1.0 : static_cast<double>(inter) / uni;
    ++queries;
  }
  ASSERT_GT(queries, 0u);
  double mean_overlap = overlap_sum / static_cast<double>(queries);
  // Soft gate: the streaming approximation must stay in the same
  // neighborhood as the ideal clustering. (Empirically ~0.8+ on these
  // seeds; 0.4 is the don't-regress floor, not the expectation.)
  EXPECT_GE(mean_overlap, 0.4)
      << "streaming ingest diverged too far from the ideal clustering "
         "between reclusters";

  // After the epoch the divergence is zero, bit for bit.
  ASSERT_EQ(drifted.recluster(), 1u);
  expect_same_index(drifted, ideal, "divergence repaired");
}

// ------------------------------------------- persistence at generation > 0 ----

TEST(ReclusterDifferential, RestoreWithoutSeedRebuildIsBitIdentical) {
  // THE correctness fix this layer required: after a recluster the
  // centroids and labels derive from the full captured corpus, so a
  // restore that re-ran the offline phase over the SEED docs only would
  // silently resurrect generation 0. The snapshot carries the offline
  // state; restore must reproduce the post-recluster index exactly.
  std::string path = tmp_dir("snap_gen1");
  std::remove(path.c_str());
  SyntheticCorpus corpus = generate_corpus(corpus_options(kPosts, 81));
  std::vector<std::string> tail = ingest_texts(kTail, 82);
  std::vector<std::string> later = ingest_texts(3, 83);

  ServingOptions options;
  options.recluster.pending_distance_threshold = 0.0;  // pool everything
  ServingPipeline serving(RelatedPostPipeline::build(analyze_corpus(corpus)),
                          options);
  for (const std::string& text : tail) serving.add_post(text);
  ASSERT_EQ(serving.recluster(), 1u);
  // Two more ingests AFTER the swap: the snapshot's offline section and
  // its post-offline tail are both non-trivial.
  for (const std::string& text : later) serving.add_post(text);
  EXPECT_EQ(serving.pending_pool_size(), later.size());
  ASSERT_TRUE(serving.save(path));

  auto restored = ServingPipeline::restore(path, {}, options);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->offline_generation(), 1u);
  EXPECT_EQ(restored->offline_docs(), kPosts + kTail);
  EXPECT_EQ(restored->epoch(), serving.epoch());
  EXPECT_EQ(restored->num_docs(), serving.num_docs());
  EXPECT_EQ(restored->docs_since_recluster(), serving.docs_since_recluster());
  EXPECT_EQ(restored->pending_pool(), serving.pending_pool());

  ASSERT_EQ(restored->num_docs(), serving.num_docs());
  for (const Document& d : serving.quiescent().docs()) {
    for (int k : {1, 3, 10}) {
      expect_identical(restored->find_related(d.id(), k).results,
                       serving.find_related(d.id(), k).results,
                       "restored doc " + std::to_string(d.id()) + " k " +
                           std::to_string(k));
    }
  }

  // The restored instance reclusters and keeps serving.
  EXPECT_EQ(restored->recluster(), 2u);
  EXPECT_EQ(restored->pending_pool_size(), 0u);
  std::remove(path.c_str());
}

TEST(ReclusterDifferential, ShardedSaveRestoreRoundTripsGenerationOne) {
  SyntheticCorpus corpus = generate_corpus(corpus_options(kPosts, 91));
  std::vector<std::string> tail = ingest_texts(kTail, 92);
  std::vector<std::string> later = ingest_texts(3, 93);
  std::vector<std::string> more = ingest_texts(3, 94);

  for (int shards : kShardCounts) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    std::string dir = tmp_dir("gen1_s" + std::to_string(shards));
    ServingOptions options;
    options.num_shards = shards;
    std::unique_ptr<ShardedServing> original =
        ShardedServing::create(analyze_corpus(corpus), {}, options);
    ASSERT_NE(original, nullptr);
    for (const std::string& text : tail) original->add_post(text);
    ASSERT_EQ(original->recluster(), 1u);
    for (const std::string& text : later) original->add_post(text);
    ASSERT_TRUE(original->save(dir));
    const uint64_t epoch_at_save = original->epoch();
    const DocId next_at_save = original->next_id();

    std::unique_ptr<ShardedServing> restored =
        ShardedServing::restore(dir, {}, options);
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(restored->offline_generation(), 1u);
    EXPECT_EQ(restored->offline_publications(), kTail);
    EXPECT_EQ(restored->epoch(), epoch_at_save);
    EXPECT_EQ(restored->next_id(), next_at_save);

    // Reference: the cold offline coverage plus the post-swap ingests.
    ServingPipeline cold(RelatedPostPipeline::build(full_docs(corpus, tail)));
    for (const std::string& text : later) cold.add_post(text);
    expect_same_index(*restored, cold, "restored generation 1");

    // Further history on both sides stays aligned (ids included).
    for (const std::string& text : more) {
      ASSERT_EQ(restored->add_post(text), cold.add_post(text));
    }
    expect_same_index(*restored, cold, "post-restore ingests");

    // And the restored deployment can run the NEXT epoch.
    EXPECT_EQ(restored->recluster(), 2u);
    ServingPipeline cold2(RelatedPostPipeline::build(
        full_docs(corpus, [&] {
          std::vector<std::string> all = tail;
          all.insert(all.end(), later.begin(), later.end());
          all.insert(all.end(), more.begin(), more.end());
          return all;
        }())));
    expect_same_index(*restored, cold2, "second epoch after restore");
  }
}

// ------------------------------------------------------ trigger policy ----

TEST(ReclusterWorkerPolicy, FiresOnDocsSinceTriggerAndResets) {
  SyntheticCorpus corpus = generate_corpus(corpus_options(kPosts, 101));
  std::vector<std::string> tail = ingest_texts(6, 102);
  ServingPipeline serving(RelatedPostPipeline::build(analyze_corpus(corpus)));

  ReclusterPolicy policy;
  policy.max_docs_since = 4;
  policy.poll_interval_ms = 5;
  ReclusterWorker worker(serving, policy);
  EXPECT_TRUE(worker.enabled());
  worker.start();
  for (const std::string& text : tail) serving.add_post(text);

  // The worker must notice 6 >= 4 and fire within a few poll intervals.
  for (int i = 0; i < 1000 && serving.offline_generation() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  worker.stop();  // joins; no epoch in flight afterwards
  EXPECT_GE(serving.offline_generation(), 1u);
  EXPECT_GE(worker.reclusters_fired(), 1u);
  EXPECT_LT(serving.docs_since_recluster(), 4u);

  // Post-fire state is the usual identity.
  ServingPipeline cold(RelatedPostPipeline::build(full_docs(corpus, tail)));
  expect_same_index(serving, cold, "worker-fired epoch");
}

TEST(ReclusterWorkerPolicy, DisabledPolicyNeverFiresAndStopIsIdempotent) {
  SyntheticCorpus corpus = generate_corpus(corpus_options(12, 111));
  ServingPipeline serving(RelatedPostPipeline::build(analyze_corpus(corpus)));
  ReclusterPolicy policy;  // both triggers 0 = disabled
  policy.poll_interval_ms = 1;
  ReclusterWorker worker(serving, policy);
  EXPECT_FALSE(worker.enabled());
  worker.start();
  for (const std::string& text : ingest_texts(5, 112)) serving.add_post(text);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  worker.stop();
  worker.stop();  // idempotent
  EXPECT_EQ(serving.offline_generation(), 0u);
  EXPECT_EQ(worker.reclusters_fired(), 0u);
}

TEST(ReclusterWorkerPolicy, PendingPoolTriggerFires) {
  SyntheticCorpus corpus = generate_corpus(corpus_options(kPosts, 121));
  ServingOptions options;
  options.recluster.pending_distance_threshold = 0.0;  // pool everything
  ServingPipeline serving(RelatedPostPipeline::build(analyze_corpus(corpus)),
                          options);
  ReclusterPolicy policy;
  policy.max_pending = 3;
  policy.poll_interval_ms = 5;
  ReclusterWorker worker(serving, policy);
  worker.start();
  for (const std::string& text : ingest_texts(4, 122)) serving.add_post(text);
  for (int i = 0; i < 1000 && serving.offline_generation() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  worker.stop();
  EXPECT_GE(serving.offline_generation(), 1u);
  // The swap drained the pool below the trigger.
  EXPECT_LT(serving.pending_pool_size(), 3u);
}

}  // namespace
}  // namespace ibseg
