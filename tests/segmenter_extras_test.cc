// Tests for the baseline segmenters and the matcher explanation API.

#include <gtest/gtest.h>

#include "cluster/intention_clusters.h"
#include "datagen/post_generator.h"
#include "index/intention_matcher.h"
#include "seg/segmenter.h"

namespace ibseg {
namespace {

TEST(BaselineSegmenters, RandomIsValidAndDeterministicPerDoc) {
  GeneratorOptions gen;
  gen.num_posts = 20;
  gen.seed = 88;
  SyntheticCorpus corpus = generate_corpus(gen);
  std::vector<Document> docs = analyze_corpus(corpus);
  Segmenter s = Segmenter::random_baseline(0.3);
  Vocabulary vocab;
  for (const Document& doc : docs) {
    Segmentation a = s.segment(doc, vocab);
    EXPECT_TRUE(a.is_valid());
    EXPECT_EQ(a, s.segment(doc, vocab));  // deterministic in doc id
  }
  EXPECT_EQ(s.name(), "Baseline/Random");
}

TEST(BaselineSegmenters, RandomProbabilityControlsDensity) {
  Document doc = Document::analyze(
      0,
      "One. Two. Three. Four. Five. Six. Seven. Eight. Nine. Ten. "
      "Eleven. Twelve. Thirteen. Fourteen. Fifteen. Sixteen.");
  Vocabulary vocab;
  size_t sparse = Segmenter::random_baseline(0.1).segment(doc, vocab)
                      .borders.size();
  size_t dense = Segmenter::random_baseline(0.9).segment(doc, vocab)
                     .borders.size();
  EXPECT_LT(sparse, dense);
}

TEST(BaselineSegmenters, EvenSplitShapes) {
  Document doc = Document::analyze(
      0, "One. Two. Three. Four. Five. Six. Seven. Eight. Nine.");
  Vocabulary vocab;
  Segmentation three = Segmenter::even_split(3).segment(doc, vocab);
  ASSERT_EQ(three.borders.size(), 2u);
  EXPECT_EQ(three.borders[0], 3u);
  EXPECT_EQ(three.borders[1], 6u);
  Segmentation one = Segmenter::even_split(1).segment(doc, vocab);
  EXPECT_TRUE(one.borders.empty());
  // More parts than units degrades gracefully.
  Segmentation many = Segmenter::even_split(50).segment(doc, vocab);
  EXPECT_TRUE(many.is_valid());
}

TEST(Explain, BreaksScoreDownByIntention) {
  // Paired corpus (as in index_test): related posts share a question topic.
  std::vector<std::string> topics = {"printer", "printer", "router",
                                     "router"};
  std::vector<Document> docs;
  for (size_t i = 0; i < topics.size(); ++i) {
    docs.push_back(Document::analyze(
        static_cast<DocId>(i),
        "I have a fast laptop and it runs the usual setup. "
        "The machine works with a standard cable most days. "
        "Can you replace the " + topics[i] + "? "
        "What should I do about the " + topics[i] + "?"));
  }
  std::vector<Segmentation> segs(docs.size());
  std::vector<int> labels;
  for (size_t d = 0; d < docs.size(); ++d) {
    segs[d] = Segmentation{docs[d].num_units(), {2}};
    labels.push_back(0);
    labels.push_back(1);
  }
  auto clustering = IntentionClustering::from_labels(docs, segs, labels, 2);
  Vocabulary vocab;
  auto matcher = IntentionMatcher::build(docs, clustering, vocab);

  auto explanation = matcher.explain(0, 1, 3);
  ASSERT_FALSE(explanation.empty());
  double total = 0.0;
  for (const auto& e : explanation) {
    EXPECT_GE(e.cluster, 0);
    EXPECT_LT(e.cluster, 2);
    EXPECT_GT(e.score, 0.0);
    EXPECT_GE(e.rank, 1);
    total += e.score;
  }
  // The explanation must reconstruct the summed Algorithm 2 score.
  auto related = matcher.find_related(0, 3);
  double listed = 0.0;
  for (const ScoredDoc& sd : related) {
    if (sd.doc == 1) listed = sd.score;
  }
  EXPECT_NEAR(total, listed, 1e-9);
  // The question cluster must be among the contributing intentions (doc 1
  // shares the printer question).
  bool has_question_cluster = false;
  for (const auto& e : explanation) has_question_cluster |= (e.cluster == 1);
  EXPECT_TRUE(has_question_cluster);
  // Unrelated pair may still match through the identical description, but
  // an unknown candidate yields nothing.
  EXPECT_TRUE(matcher.explain(0, 999, 3).empty());
}

}  // namespace
}  // namespace ibseg
