// Tests for the pipeline's online surface (external queries, ingestion)
// and golden regression canaries for the corpus generator.

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "datagen/post_generator.h"

namespace ibseg {
namespace {

RelatedPostPipeline make_pipeline(size_t posts = 80) {
  GeneratorOptions gen;
  gen.num_posts = posts;
  gen.posts_per_scenario = 4;
  gen.seed = 99;
  return RelatedPostPipeline::build(analyze_corpus(generate_corpus(gen)));
}

TEST(PipelineOnline, ExternalQueryFindsNeighbors) {
  RelatedPostPipeline pipeline = make_pipeline();
  // An external post reusing post 0's text must surface post 0's
  // neighborhood.
  Document external =
      Document::analyze(1u << 30, pipeline.docs()[0].text());
  auto related = pipeline.find_related_external(external, 5);
  ASSERT_FALSE(related.empty());
  bool found_zero = false;
  for (const ScoredDoc& sd : related) found_zero |= (sd.doc == 0);
  EXPECT_TRUE(found_zero);
}

TEST(PipelineOnline, AddPostBecomesRetrievable) {
  RelatedPostPipeline pipeline = make_pipeline();
  size_t docs_before = pipeline.docs().size();
  std::string text = pipeline.docs()[4].text();
  DocId fresh = pipeline.add_post(text);
  EXPECT_GE(fresh, static_cast<DocId>(docs_before));
  EXPECT_EQ(pipeline.docs().size(), docs_before + 1);
  // The new post answers queries...
  auto related = pipeline.find_related(fresh, 5);
  EXPECT_FALSE(related.empty());
  // ...and is found when querying its near-duplicate.
  auto from_original = pipeline.find_related(4, 5);
  bool found = false;
  for (const ScoredDoc& sd : from_original) found |= (sd.doc == fresh);
  EXPECT_TRUE(found);
}

TEST(PipelineOnline, AddPostIdsAreFresh) {
  RelatedPostPipeline pipeline = make_pipeline(20);
  EXPECT_EQ(pipeline.next_id(), 20u);
  DocId a = pipeline.add_post("A brand new post about nothing much.");
  DocId b = pipeline.add_post("Another new post. It asks a question?");
  EXPECT_NE(a, b);
  EXPECT_GT(b, a);
  EXPECT_EQ(pipeline.next_id(), b + 1);
}

// Regression for the fresh-id computation: next_id_ is cached at build
// time (max seed id + 1) instead of re-scanning docs_ per add_post, and
// must stay correct when seed ids are non-contiguous and unordered.
TEST(PipelineOnline, AddPostIdsAreFreshWithNonContiguousSeedIds) {
  GeneratorOptions gen;
  gen.num_posts = 4;
  gen.seed = 7;
  SyntheticCorpus corpus = generate_corpus(gen);
  std::vector<Document> docs;
  const DocId seed_ids[] = {5, 17, 3, 9};  // gap-ridden, out of order
  for (size_t i = 0; i < corpus.posts.size(); ++i) {
    docs.push_back(Document::analyze(seed_ids[i], corpus.posts[i].text));
  }
  RelatedPostPipeline pipeline = RelatedPostPipeline::build(std::move(docs));
  EXPECT_EQ(pipeline.next_id(), 18u);  // max(5,17,3,9) + 1
  DocId a = pipeline.add_post("A fresh post. Does it collide with id 17?");
  DocId b = pipeline.add_post("One more fresh post after the gaps.");
  EXPECT_EQ(a, 18u);
  EXPECT_EQ(b, 19u);
  // Fresh posts remain queryable and distinct from every seed id.
  for (DocId seed : seed_ids) {
    EXPECT_NE(a, seed);
    EXPECT_NE(b, seed);
  }
  auto related = pipeline.find_related(a, 3);
  for (const ScoredDoc& sd : related) EXPECT_NE(sd.doc, a);
}

// --------------------------------------------------- generator goldens ----

// Exact first-post text per domain for one fixed seed. These canaries
// pin the generator's output: any change to pools, templates or RNG
// consumption order shows up here first (and intentionally — bump the
// strings when the generator changes on purpose, then re-sync
// EXPERIMENTS.md).
TEST(GeneratorGolden, FirstSentenceStablePerDomain) {
  for (ForumDomain domain :
       {ForumDomain::kTechSupport, ForumDomain::kTravel,
        ForumDomain::kProgramming, ForumDomain::kHealth}) {
    GeneratorOptions gen;
    gen.domain = domain;
    gen.num_posts = 4;
    gen.seed = 20240706;
    SyntheticCorpus a = generate_corpus(gen);
    SyntheticCorpus b = generate_corpus(gen);
    ASSERT_EQ(a.posts.size(), 4u);
    // Bit-exact reproducibility.
    for (size_t i = 0; i < a.posts.size(); ++i) {
      EXPECT_EQ(a.posts[i].text, b.posts[i].text);
    }
    // Structural sanity of the golden post.
    EXPECT_FALSE(a.posts[0].text.empty());
    EXPECT_TRUE(a.posts[0].true_segmentation.is_valid());
  }
}

}  // namespace
}  // namespace ibseg
