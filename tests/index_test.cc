// Unit tests for src/index: inverted index and Eq. 7/8 weighting, Eq. 9
// scoring, Algorithm 1/2 matching and the FullText baseline.

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/intention_clusters.h"
#include "index/fulltext_matcher.h"
#include "index/intention_matcher.h"
#include "index/inverted_index.h"
#include "index/scoring.h"
#include "seg/document.h"

namespace ibseg {
namespace {

TermVector tv(Vocabulary& vocab,
              std::initializer_list<std::pair<const char*, double>> terms) {
  TermVector out;
  for (const auto& [term, weight] : terms) out.add(vocab.intern(term), weight);
  return out;
}

// --------------------------------------------------------- inverted index ----

TEST(InvertedIndex, PostingsAndDf) {
  Vocabulary vocab;
  InvertedIndex index;
  index.add_unit(tv(vocab, {{"a", 2.0}, {"b", 1.0}}));
  index.add_unit(tv(vocab, {{"a", 1.0}}));
  index.finalize();
  EXPECT_EQ(index.num_units(), 2u);
  EXPECT_EQ(index.df(vocab.find("a")), 2u);
  EXPECT_EQ(index.df(vocab.find("b")), 1u);
  EXPECT_TRUE(index.postings(vocab.intern("zzz")).empty());
}

TEST(InvertedIndex, WeightFollowsEq7Shape) {
  Vocabulary vocab;
  InvertedIndex index;
  index.min_norm_fraction = 0.0;
  uint32_t u0 = index.add_unit(tv(vocab, {{"a", 4.0}, {"b", 1.0}}));
  index.add_unit(tv(vocab, {{"a", 1.0}, {"b", 1.0}}));
  index.finalize();
  // Numerator log(tf)+1; higher-tf term weighs more within the same unit.
  double wa = index.weight(vocab.find("a"), u0);
  double wb = index.weight(vocab.find("b"), u0);
  EXPECT_GT(wa, wb);
  EXPECT_NEAR(wa / wb, std::log(4.0) + 1.0, 1e-9);
}

TEST(InvertedIndex, NormFloorBoundsShortUnits) {
  Vocabulary vocab;
  InvertedIndex index;  // default floor = collection average
  uint32_t tiny = index.add_unit(tv(vocab, {{"a", 1.0}}));
  uint32_t big = index.add_unit(tv(vocab, {
      {"a", 1.0}, {"b", 1.0}, {"c", 1.0}, {"d", 1.0},
      {"e", 1.0}, {"f", 1.0}, {"g", 1.0}, {"h", 1.0}}));
  index.finalize();
  // The tiny unit's norm is floored to at least the collection average, so
  // its term weights cannot dwarf the big unit's.
  EXPECT_GE(index.unit_norm(tiny), index.unit_norm(big) * 0.5);
}

TEST(InvertedIndex, NuPenalizesManyUniqueTerms) {
  Vocabulary vocab;
  InvertedIndex index;
  index.min_norm_fraction = 0.0;
  uint32_t small = index.add_unit(tv(vocab, {{"a", 1.0}, {"b", 1.0}}));
  uint32_t wide = index.add_unit(tv(vocab, {{"a", 1.0},
                                            {"b", 1.0},
                                            {"c", 1.0},
                                            {"d", 1.0},
                                            {"e", 1.0},
                                            {"f", 1.0}}));
  index.finalize();
  EXPECT_LT(index.unit_norm(small), index.unit_norm(wide));
}

// ---------------------------------------------------------------- scoring ----

TEST(Scoring, ProbabilisticIdfShape) {
  // Rare terms weigh more; ubiquitous terms floor at 0.
  EXPECT_GT(probabilistic_idf(100, 1), probabilistic_idf(100, 10));
  EXPECT_DOUBLE_EQ(probabilistic_idf(100, 0), 0.0);
  EXPECT_DOUBLE_EQ(probabilistic_idf(0, 5), 0.0);
  EXPECT_GE(probabilistic_idf(10, 10), 0.0);  // floored, not negative
}

TEST(Scoring, ScoreUnitsRanksSharedTermsHigher) {
  Vocabulary vocab;
  InvertedIndex index;
  uint32_t match2 = index.add_unit(tv(vocab, {{"printer", 2.0}, {"ink", 1.0}}));
  uint32_t match1 = index.add_unit(tv(vocab, {{"printer", 1.0}, {"fan", 1.0}}));
  index.add_unit(tv(vocab, {{"router", 1.0}, {"wifi", 1.0}}));
  index.finalize();
  TermVector query = tv(vocab, {{"printer", 1.0}, {"ink", 1.0}});
  auto hits = score_units(index, query);
  keep_top_n(hits, 10);
  ASSERT_GE(hits.size(), 2u);
  EXPECT_EQ(hits[0].unit, match2);
  EXPECT_EQ(hits[1].unit, match1);
}

TEST(Scoring, KeepTopNTruncatesAndSortsDeterministically) {
  std::vector<ScoredUnit> hits = {{3, 1.0}, {1, 2.0}, {2, 1.0}, {0, 3.0}};
  keep_top_n(hits, 3);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].unit, 0u);
  EXPECT_EQ(hits[1].unit, 1u);
  EXPECT_EQ(hits[2].unit, 2u);  // tie with unit 3 broken by smaller id
}

TEST(Scoring, NoSharedTermsNoHits) {
  Vocabulary vocab;
  InvertedIndex index;
  index.add_unit(tv(vocab, {{"alpha", 1.0}}));
  index.finalize();
  auto hits = score_units(index, tv(vocab, {{"beta", 1.0}}));
  EXPECT_TRUE(hits.empty());
}

// ----------------------------------------------------- intention matcher ----

// Corpus where doc i's "question" mentions a per-pair topic so that pairs
// (0,1), (2,3), ... are related.
std::vector<Document> paired_corpus() {
  std::vector<std::string> topics = {"printer", "printer", "router",
                                     "router",  "battery", "battery"};
  std::vector<Document> docs;
  for (size_t i = 0; i < topics.size(); ++i) {
    std::string text =
        "I have a fast laptop and it runs the usual setup. "
        "The machine works with a standard cable most days. "
        "Can you replace the " + topics[i] + "? " +
        "What should I do about the " + topics[i] + "?";
    docs.push_back(Document::analyze(static_cast<DocId>(i), text));
  }
  return docs;
}

IntentionClustering two_cluster(const std::vector<Document>& docs) {
  std::vector<Segmentation> segs(docs.size());
  std::vector<int> labels;
  for (size_t d = 0; d < docs.size(); ++d) {
    segs[d] = Segmentation{docs[d].num_units(), {2}};
    labels.push_back(0);  // description
    labels.push_back(1);  // questions
  }
  return IntentionClustering::from_labels(docs, segs, labels, 2);
}

TEST(IntentionMatcher, FindsTopicPartner) {
  auto docs = paired_corpus();
  auto clustering = two_cluster(docs);
  Vocabulary vocab;
  auto matcher = IntentionMatcher::build(docs, clustering, vocab);
  EXPECT_EQ(matcher.num_clusters(), 2);
  for (DocId q = 0; q < docs.size(); ++q) {
    auto related = matcher.find_related(q, 1);
    ASSERT_FALSE(related.empty()) << "query " << q;
    DocId partner = (q % 2 == 0) ? q + 1 : q - 1;
    EXPECT_EQ(related[0].doc, partner) << "query " << q;
  }
}

TEST(IntentionMatcher, QueryExcludedFromResults) {
  auto docs = paired_corpus();
  auto clustering = two_cluster(docs);
  Vocabulary vocab;
  auto matcher = IntentionMatcher::build(docs, clustering, vocab);
  auto related = matcher.find_related(0, 10);
  for (const ScoredDoc& sd : related) EXPECT_NE(sd.doc, 0u);
}

TEST(IntentionMatcher, RespectsK) {
  auto docs = paired_corpus();
  auto clustering = two_cluster(docs);
  Vocabulary vocab;
  auto matcher = IntentionMatcher::build(docs, clustering, vocab);
  EXPECT_LE(matcher.find_related(0, 2).size(), 2u);
  EXPECT_TRUE(matcher.find_related(0, 0).empty());
}

TEST(IntentionMatcher, UnknownQueryReturnsEmpty) {
  auto docs = paired_corpus();
  auto clustering = two_cluster(docs);
  Vocabulary vocab;
  auto matcher = IntentionMatcher::build(docs, clustering, vocab);
  EXPECT_TRUE(matcher.find_related(999, 5).empty());
}

TEST(IntentionMatcher, SingleIntentionListScoresDescend) {
  auto docs = paired_corpus();
  auto clustering = two_cluster(docs);
  Vocabulary vocab;
  auto matcher = IntentionMatcher::build(docs, clustering, vocab);
  auto list = matcher.match_single_intention(1, 0, 5);
  for (size_t i = 1; i < list.size(); ++i) {
    EXPECT_LE(list[i].score, list[i - 1].score);
  }
}

// ----------------------------------------------------- fulltext matcher ----

TEST(FullTextMatcher, FindsLexicalNeighbors) {
  auto docs = paired_corpus();
  Vocabulary vocab;
  auto matcher = FullTextMatcher::build(docs, vocab);
  EXPECT_EQ(matcher.num_docs(), docs.size());
  auto related = matcher.find_related(2, 1);
  ASSERT_EQ(related.size(), 1u);
  EXPECT_EQ(related[0].doc, 3u);
}

TEST(FullTextMatcher, ExcludesQueryAndHonorsK) {
  auto docs = paired_corpus();
  Vocabulary vocab;
  auto matcher = FullTextMatcher::build(docs, vocab);
  auto related = matcher.find_related(0, 3);
  EXPECT_LE(related.size(), 3u);
  for (const ScoredDoc& sd : related) EXPECT_NE(sd.doc, 0u);
  EXPECT_TRUE(matcher.find_related(42, 3).empty());
}

}  // namespace
}  // namespace ibseg
