// Isolation proof of the multi-tenant layer: a TenantRegistry hosting N
// tenants behind one process must be indistinguishable — bit-identical
// ranked lists AND operator== on the double scores — from N independent
// single-tenant ShardedServing deployments over the same per-tenant
// corpora and publication histories. The suite runs shard counts
// {1, 2, 4} across interleaved per-tenant ingests, save/restore of the
// whole registry (per-tenant state directories), per-tenant recluster,
// and cache on/off; plus a cross-tenant leakage probe (a term ingested
// into one tenant must be unreachable from every other tenant's
// vocabulary, id space and query cache) and a loopback proof that the
// network front-end routes TENANT_OPEN-bound connections to the right
// corpus. Registered under the `tenant` ctest label;
// scripts/reproduce.sh IBSEG_TENANT_CHECK=1 runs the label plain and
// under TSan.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/sharded_serving.h"
#include "core/tenant_registry.h"
#include "datagen/post_generator.h"
#include "net/client.h"
#include "net/server.h"

namespace ibseg {
namespace {

constexpr int kShardCounts[] = {1, 2, 4};
constexpr size_t kPosts = 20;

// Per-tenant corpora come from different domains on purpose: disjoint
// topical vocabulary makes cross-tenant contamination visible, not just
// wrong — a travel term inside the tech tenant's vocabulary could only
// get there through shared state.
struct TenantSpec {
  const char* name;
  ForumDomain domain;
  uint64_t seed;
};

const TenantSpec kTenants[] = {
    {"default", ForumDomain::kProgramming, 11},
    {"alpha", ForumDomain::kTechSupport, 22},
    {"beta", ForumDomain::kTravel, 33},
};

GeneratorOptions corpus_options(ForumDomain domain, size_t posts,
                                uint64_t seed) {
  GeneratorOptions gen;
  gen.domain = domain;
  gen.num_posts = posts;
  gen.posts_per_scenario = 4;
  gen.seed = seed;
  return gen;
}

std::vector<Document> tenant_docs(const TenantSpec& spec) {
  return analyze_corpus(
      generate_corpus(corpus_options(spec.domain, kPosts, spec.seed)));
}

std::vector<std::string> tenant_ingests(const TenantSpec& spec, size_t count,
                                        uint64_t salt) {
  SyntheticCorpus extra = generate_corpus(
      corpus_options(spec.domain, count, spec.seed * 1000 + salt));
  std::vector<std::string> texts;
  texts.reserve(extra.posts.size());
  for (const GeneratedPost& p : extra.posts) texts.push_back(p.text);
  return texts;
}

TenantRegistry::SeedProvider seed_provider() {
  return [](const std::string& name) -> std::vector<Document> {
    for (const TenantSpec& spec : kTenants) {
      if (name == spec.name) return tenant_docs(spec);
    }
    return {};
  };
}

std::vector<std::string> tenant_names() {
  return {"alpha", "beta"};  // "default" is implicit
}

std::string tmp_dir(const std::string& name) {
  return ::testing::TempDir() + "/ibseg_tenant_" + name;
}

ServingOptions serving_template(int shards, size_t cache_capacity = 0) {
  ServingOptions options;
  options.num_shards = shards;
  options.cache.capacity = cache_capacity;
  return options;
}

/// An isolated single-tenant deployment for one spec — the reference a
/// registry-hosted tenant must be bit-identical to. The reference gets
/// its own distinct metric label so the two deployments cannot even
/// share a metric series.
std::unique_ptr<ShardedServing> isolated_reference(const TenantSpec& spec,
                                                   int shards,
                                                   size_t cache = 0) {
  ServingOptions options = serving_template(shards, cache);
  options.tenant = std::string("ref-") + spec.name;
  return ShardedServing::create(tenant_docs(spec), {}, options);
}

void expect_identical(const std::vector<ScoredDoc>& got,
                      const std::vector<ScoredDoc>& want,
                      const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].doc, want[i].doc) << what << " rank " << i;
    // Bit-identical is the contract: operator== on the doubles.
    EXPECT_EQ(got[i].score, want[i].score) << what << " rank " << i;
  }
}

/// Every in-corpus query at several k: the registry-hosted tenant must
/// equal its isolated reference exactly.
void expect_equivalent(const ShardedServing& hosted,
                       const ShardedServing& reference,
                       const std::string& what) {
  ASSERT_EQ(hosted.num_docs(), reference.num_docs()) << what;
  ASSERT_EQ(hosted.epoch(), reference.epoch()) << what;
  ASSERT_EQ(hosted.next_id(), reference.next_id()) << what;
  for (DocId id = 0; id < reference.next_id(); ++id) {
    for (int k : {1, 3, 10}) {
      ShardedServing::QueryResult want = reference.find_related(id, k);
      ShardedServing::QueryResult got = hosted.find_related(id, k);
      EXPECT_EQ(got.epoch, want.epoch) << what;
      EXPECT_EQ(got.num_docs, want.num_docs) << what;
      expect_identical(got.results, want.results,
                       what + " doc " + std::to_string(id) + " k " +
                           std::to_string(k));
    }
  }
}

// ------------------------------------------------ interleaved ingests ----

TEST(TenantDifferential, RegistryMatchesIsolatedDeployments) {
  for (int shards : kShardCounts) {
    std::string what = "shards=" + std::to_string(shards);
    TenantRegistryOptions options;
    options.serving = serving_template(shards);
    std::unique_ptr<TenantRegistry> registry =
        TenantRegistry::open(options, tenant_names(), seed_provider());
    ASSERT_NE(registry, nullptr) << what;
    ASSERT_EQ(registry->size(), 3u) << what;

    std::map<std::string, std::unique_ptr<ShardedServing>> references;
    std::map<std::string, std::vector<std::string>> extras;
    for (const TenantSpec& spec : kTenants) {
      references[spec.name] = isolated_reference(spec, shards);
      ASSERT_NE(references[spec.name], nullptr) << what;
      extras[spec.name] = tenant_ingests(spec, 6, 1);
    }

    // Interleave ingests ACROSS tenants — the registry serves them all
    // from one process, and each publication must land only in its own
    // tenant, with the same id sequence an isolated deployment assigns.
    for (size_t i = 0; i < 6; ++i) {
      for (const TenantSpec& spec : kTenants) {
        ShardedServing* hosted = registry->find(spec.name);
        ASSERT_NE(hosted, nullptr) << what;
        const std::string& text = extras[spec.name][i];
        ASSERT_EQ(hosted->add_post(text),
                  references[spec.name]->add_post(text))
            << what << " tenant " << spec.name;
      }
    }
    for (const TenantSpec& spec : kTenants) {
      expect_equivalent(*registry->find(spec.name), *references[spec.name],
                        what + " tenant " + spec.name);
    }
  }
}

// ------------------------------------------------- save/restore cycles ----

TEST(TenantDifferential, SaveRestoreRoundTripPerTenant) {
  for (int shards : kShardCounts) {
    std::string what = "roundtrip shards=" + std::to_string(shards);
    std::string root = tmp_dir("rt" + std::to_string(shards));
    std::filesystem::remove_all(root);

    TenantRegistryOptions options;
    options.state_root = root;
    options.serving = serving_template(shards);
    std::unique_ptr<TenantRegistry> registry =
        TenantRegistry::open(options, tenant_names(), seed_provider());
    ASSERT_NE(registry, nullptr) << what;

    std::map<std::string, std::unique_ptr<ShardedServing>> references;
    for (const TenantSpec& spec : kTenants) {
      references[spec.name] = isolated_reference(spec, shards);
      // History split across the save: some ingests baked into the
      // snapshots, some only in the per-tenant WALs.
      for (const std::string& text : tenant_ingests(spec, 3, 2)) {
        registry->find(spec.name)->add_post(text);
        references[spec.name]->add_post(text);
      }
    }
    ASSERT_TRUE(registry->save_all()) << what;
    for (const TenantSpec& spec : kTenants) {
      for (const std::string& text : tenant_ingests(spec, 3, 3)) {
        registry->find(spec.name)->add_post(text);
        references[spec.name]->add_post(text);
      }
      EXPECT_TRUE(std::filesystem::exists(
          std::filesystem::path(TenantRegistry::tenant_dir(root, spec.name)) /
          "MANIFEST"))
          << what << " tenant " << spec.name;
    }
    registry.reset();  // clean shutdown; WAL tails hold the late ingests

    // Reopen: every tenant restores from its own directory. The seed
    // provider must NOT be consulted for restored tenants — hand one that
    // returns a corpus that would fail the differential if used.
    TenantRegistry::SeedProvider poisoned =
        [](const std::string&) -> std::vector<Document> {
      return tenant_docs({"poison", ForumDomain::kHealth, 999});
    };
    std::unique_ptr<TenantRegistry> restored =
        TenantRegistry::open(options, tenant_names(), poisoned);
    ASSERT_NE(restored, nullptr) << what;
    for (const TenantSpec& spec : kTenants) {
      expect_equivalent(*restored->find(spec.name), *references[spec.name],
                        what + " restored tenant " + spec.name);
      // Life continues after restore, id sequences included.
      for (const std::string& text : tenant_ingests(spec, 2, 4)) {
        ASSERT_EQ(restored->find(spec.name)->add_post(text),
                  references[spec.name]->add_post(text))
            << what << " tenant " << spec.name;
      }
      expect_equivalent(*restored->find(spec.name), *references[spec.name],
                        what + " post-restore ingests " + spec.name);
    }
  }
}

TEST(TenantDifferential, ReopenSeedsOnlyTheNewTenant) {
  std::string root = tmp_dir("grow");
  std::filesystem::remove_all(root);
  TenantRegistryOptions options;
  options.state_root = root;
  options.serving = serving_template(2);
  std::unique_ptr<TenantRegistry> registry =
      TenantRegistry::open(options, {"alpha"}, seed_provider());
  ASSERT_NE(registry, nullptr);
  ASSERT_TRUE(registry->save_all());
  registry.reset();
  // Reopen with one MORE tenant: alpha and default restore, beta seeds.
  std::unique_ptr<TenantRegistry> grown =
      TenantRegistry::open(options, {"alpha", "beta"}, seed_provider());
  ASSERT_NE(grown, nullptr);
  ASSERT_EQ(grown->size(), 3u);
  std::unique_ptr<ShardedServing> beta_reference =
      isolated_reference(kTenants[2], 2);
  expect_equivalent(*grown->find("beta"), *beta_reference, "seeded beta");
}

// ------------------------------------------------ per-tenant recluster ----

TEST(TenantDifferential, ReclusterIsPerTenant) {
  TenantRegistryOptions options;
  options.serving = serving_template(2);
  std::unique_ptr<TenantRegistry> registry =
      TenantRegistry::open(options, tenant_names(), seed_provider());
  ASSERT_NE(registry, nullptr);
  std::map<std::string, std::unique_ptr<ShardedServing>> references;
  for (const TenantSpec& spec : kTenants) {
    references[spec.name] = isolated_reference(spec, 2);
    for (const std::string& text : tenant_ingests(spec, 5, 5)) {
      registry->find(spec.name)->add_post(text);
      references[spec.name]->add_post(text);
    }
  }
  // Recluster ONE tenant. Its offline generation advances and its answers
  // track an isolated deployment that reclustered identically; the other
  // tenants' generations and answers must not move at all.
  uint64_t generation = registry->find("alpha")->recluster();
  EXPECT_EQ(generation, references["alpha"]->recluster());
  EXPECT_EQ(registry->find("alpha")->offline_generation(), generation);
  EXPECT_EQ(registry->find("beta")->offline_generation(), 0u);
  EXPECT_EQ(registry->find("default")->offline_generation(), 0u);
  for (const TenantSpec& spec : kTenants) {
    expect_equivalent(*registry->find(spec.name), *references[spec.name],
                      std::string("post-recluster tenant ") + spec.name);
  }
}

// --------------------------------------------------------- query cache ----

TEST(TenantDifferential, CachesAreDistinctAndIsolated) {
  TenantRegistryOptions options;
  options.serving = serving_template(2, /*cache=*/128);
  std::unique_ptr<TenantRegistry> registry =
      TenantRegistry::open(options, tenant_names(), seed_provider());
  ASSERT_NE(registry, nullptr);
  ShardedServing* alpha = registry->find("alpha");
  ShardedServing* beta = registry->find("beta");
  ASSERT_NE(alpha->query_cache(), nullptr);
  ASSERT_NE(beta->query_cache(), nullptr);
  // Distinct cache objects — a shared cache would be a leak channel (keys
  // are (doc, k, epoch) with no tenant component, BY DESIGN: isolation
  // comes from each tenant owning its cache, not from key salting).
  EXPECT_NE(alpha->query_cache(), beta->query_cache());

  std::unique_ptr<ShardedServing> reference =
      isolated_reference(kTenants[1], 2, 128);
  // Warm alpha: second pass must hit and stay bit-identical.
  expect_equivalent(*alpha, *reference, "cache cold");
  uint64_t hits_before = alpha->query_cache()->hits();
  expect_equivalent(*alpha, *reference, "cache warm");
  uint64_t hits_warm = alpha->query_cache()->hits();
  EXPECT_GT(hits_warm, hits_before);

  // A publication in ANOTHER tenant must not invalidate alpha's cache:
  // alpha's entries keep hitting afterwards.
  beta->add_post(tenant_ingests(kTenants[2], 1, 6)[0]);
  expect_equivalent(*alpha, *reference, "cache after foreign ingest");
  EXPECT_GT(alpha->query_cache()->hits(), hits_warm);

  // A publication in alpha itself DOES invalidate — answers track the
  // new corpus, never a stale entry.
  std::string own = tenant_ingests(kTenants[1], 1, 7)[0];
  alpha->add_post(own);
  reference->add_post(own);
  expect_equivalent(*alpha, *reference, "cache after own ingest");
}

// ------------------------------------------------------- leakage probe ----

TEST(TenantDifferential, IngestedTermsNeverLeakAcrossTenants) {
  TenantRegistryOptions options;
  options.serving = serving_template(2);
  std::unique_ptr<TenantRegistry> registry =
      TenantRegistry::open(options, tenant_names(), seed_provider());
  ASSERT_NE(registry, nullptr);

  // A sentinel token no generator emits, ingested into alpha only. It
  // must appear in at least one of alpha's shard vocabularies and in NO
  // shard vocabulary of any other tenant — the vocabularies are the
  // shared-state surface a single-tenant design would have merged.
  const std::string sentinel = "zzqglorpix";
  ShardedServing* alpha = registry->find("alpha");
  DocId beta_next_before = registry->find("beta")->next_id();
  DocId default_next_before = registry->find("default")->next_id();
  alpha->add_post("my zzqglorpix adapter fails and the zzqglorpix driver "
                  "crashes on boot");

  auto vocab_has = [&](const ShardedServing& serving) {
    for (uint32_t s = 0; s < serving.num_shards(); ++s) {
      if (serving.shard(s).quiescent().vocab().find(sentinel) !=
          kInvalidTerm) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(vocab_has(*alpha)) << "probe term must intern in alpha";
  EXPECT_FALSE(vocab_has(*registry->find("beta")));
  EXPECT_FALSE(vocab_has(*registry->find("default")));

  // Id spaces are per-tenant: alpha's ingest moved no other watermark.
  EXPECT_EQ(registry->find("beta")->next_id(), beta_next_before);
  EXPECT_EQ(registry->find("default")->next_id(), default_next_before);

  // And the doc is reachable only through alpha: other tenants' corpora
  // never return an id at or beyond their own watermark.
  for (const char* name : {"beta", "default"}) {
    ShardedServing* other = registry->find(name);
    for (DocId id = 0; id < other->next_id(); ++id) {
      for (const ScoredDoc& sd : other->find_related(id, 10).results) {
        EXPECT_LT(sd.doc, other->next_id()) << name;
      }
    }
  }
}

// ---------------------------------------------------- loopback routing ----

TEST(TenantDifferential, ServerRoutesConnectionsToBoundTenant) {
  std::string root = tmp_dir("wire");
  std::filesystem::remove_all(root);
  TenantRegistryOptions options;
  options.state_root = root;
  options.serving = serving_template(2);
  std::unique_ptr<TenantRegistry> registry =
      TenantRegistry::open(options, tenant_names(), seed_provider());
  ASSERT_NE(registry, nullptr);

  net::ServerOptions server_options;
  server_options.port = 0;
  auto server = std::make_unique<net::Server>(registry.get(), server_options);
  ASSERT_TRUE(server->start());

  auto alpha_client = net::Client::connect("127.0.0.1", server->port());
  auto beta_client = net::Client::connect("127.0.0.1", server->port());
  auto default_client = net::Client::connect("127.0.0.1", server->port());
  ASSERT_NE(alpha_client, nullptr);
  ASSERT_NE(beta_client, nullptr);
  ASSERT_NE(default_client, nullptr);

  // TENANT_LIST names every tenant, sorted.
  net::TenantListingResponse listing;
  ASSERT_TRUE(default_client->tenant_list(&listing).ok());
  ASSERT_EQ(listing.tenants.size(), 3u);
  EXPECT_EQ(listing.tenants[0].name, "alpha");
  EXPECT_EQ(listing.tenants[1].name, "beta");
  EXPECT_EQ(listing.tenants[2].name, "default");

  // Unknown tenant: documented error, connection stays usable.
  net::TenantOpenedResponse opened;
  net::CallResult bad = default_client->tenant_open("nosuch", &opened);
  ASSERT_TRUE(bad.transport_ok);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error.code, net::ErrCode::kUnknownTenant);
  net::PongResponse pong;
  ASSERT_TRUE(default_client->ping(&pong).ok());

  ASSERT_TRUE(alpha_client->tenant_open("alpha", &opened).ok());
  EXPECT_EQ(opened.num_docs, registry->find("alpha")->num_docs());
  ASSERT_TRUE(beta_client->tenant_open("beta", &opened).ok());

  // An ingest through the alpha-bound connection lands in alpha only.
  size_t beta_docs = registry->find("beta")->num_docs();
  size_t default_docs = registry->find("default")->num_docs();
  DocId added = 0;
  ASSERT_TRUE(alpha_client
                  ->add_post("the replacement zzweyric cable finally "
                             "charges the laptop",
                             &added)
                  .ok());
  EXPECT_EQ(added + 1, registry->find("alpha")->next_id());
  EXPECT_EQ(registry->find("beta")->num_docs(), beta_docs);
  EXPECT_EQ(registry->find("default")->num_docs(), default_docs);

  // QUERY over the bound connection is bit-identical to querying the
  // tenant's backend in-process.
  net::RelatedResponse related;
  ASSERT_TRUE(alpha_client->query(added, 5, &related).ok());
  ShardedServing::QueryResult want =
      registry->find("alpha")->find_related(added, 5);
  EXPECT_EQ(related.epoch, want.epoch);
  EXPECT_EQ(related.num_docs, want.num_docs);
  expect_identical(related.results, want.results, "wire query");

  // SAVE over the bound connection persists that tenant's directory only.
  ASSERT_TRUE(alpha_client->save().ok());
  EXPECT_TRUE(std::filesystem::exists(
      std::filesystem::path(TenantRegistry::tenant_dir(root, "alpha")) /
      "MANIFEST"));
  EXPECT_FALSE(std::filesystem::exists(
      std::filesystem::path(TenantRegistry::tenant_dir(root, "beta")) /
      "MANIFEST"));

  // Drain persists EVERY tenant.
  server->drain();
  server.reset();
  for (const TenantSpec& spec : kTenants) {
    EXPECT_TRUE(std::filesystem::exists(
        std::filesystem::path(TenantRegistry::tenant_dir(root, spec.name)) /
        "MANIFEST"))
        << spec.name;
  }
}

TEST(TenantDifferential, SingleTenantServerAnswersTenantFrames) {
  // Pre-tenant deployments (Server over a bare backend) still answer the
  // tenant frames: the default tenant exists implicitly.
  ServingOptions serving = serving_template(2);
  std::unique_ptr<ShardedServing> backend =
      ShardedServing::create(tenant_docs(kTenants[0]), {}, serving);
  ASSERT_NE(backend, nullptr);
  net::ServerOptions server_options;
  server_options.port = 0;
  auto server = std::make_unique<net::Server>(backend.get(), server_options);
  ASSERT_TRUE(server->start());
  auto client = net::Client::connect("127.0.0.1", server->port());
  ASSERT_NE(client, nullptr);

  net::TenantListingResponse listing;
  ASSERT_TRUE(client->tenant_list(&listing).ok());
  ASSERT_EQ(listing.tenants.size(), 1u);
  EXPECT_EQ(listing.tenants[0].name, "default");
  EXPECT_EQ(listing.tenants[0].num_docs, backend->num_docs());

  net::TenantOpenedResponse opened;
  EXPECT_TRUE(client->tenant_open("default", &opened).ok());
  net::CallResult bad = client->tenant_open("alpha", &opened);
  ASSERT_TRUE(bad.transport_ok);
  EXPECT_EQ(bad.error.code, net::ErrCode::kUnknownTenant);
  server->drain();
}

}  // namespace
}  // namespace ibseg
