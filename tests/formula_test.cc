// Hand-computed verification of the paper's formulas on tiny constructed
// inputs: Eq. 1 (Shannon diversity), Eq. 2 (coherence), Eq. 3 (depth),
// Eq. 4 (border score), Eq. 5/6 (segment weight vectors), Eq. 7/8 (term
// weights), Eq. 9 (relatedness score with probabilistic IDF).

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/feature_vector.h"
#include "index/inverted_index.h"
#include "index/scoring.h"
#include "seg/coherence.h"
#include "seg/diversity.h"

namespace ibseg {
namespace {

// Profile with tense = [2, 3, 0] (the worked example under Eq. 1) and no
// other CM occurrences.
CmProfile tense_230() {
  CmProfile p;
  p.add(CmKind::kTense, 0, 2.0);
  p.add(CmKind::kTense, 1, 3.0);
  return p;
}

TEST(Eq1, ShannonDiversityOfWorkedExample) {
  // DSb = [2,3,0], All = 5: H = -(2/5 log 2/5 + 3/5 log 3/5); normalized by
  // log(3) so the index stays below 1 for a 3-value CM (the paper's
  // requirement under Eq. 2).
  double h = -(0.4 * std::log(0.4) + 0.6 * std::log(0.6));
  double expected = h / std::log(3.0);
  EXPECT_NEAR(cm_diversity(tense_230(), CmKind::kTense,
                           DiversityIndex::kShannon),
              expected, 1e-12);
  EXPECT_LT(expected, 1.0);
}

TEST(Eq2, CoherenceAveragesOneMinusDiversityOverCms) {
  CmProfile p = tense_230();
  SegScoring scoring;  // all five CMs
  double div_tense =
      cm_diversity(p, CmKind::kTense, DiversityIndex::kShannon);
  // The other four CMs are absent -> diversity 0 -> contribute 1.0 each.
  double expected = ((1.0 - div_tense) + 4.0 * 1.0) / 5.0;
  EXPECT_NEAR(segment_coherence(p, scoring), expected, 1e-12);
}

TEST(Eq3, DepthFromCoherenceDrop) {
  // Left segment all-present, right all-past: merged tense = [3,3,0].
  CmProfile left;
  left.add(CmKind::kTense, 0, 3.0);
  CmProfile right;
  right.add(CmKind::kTense, 1, 3.0);
  SegScoring scoring;
  scoring.cm_mask = 1u << static_cast<int>(CmKind::kTense);

  double coh_l = segment_coherence(left, scoring);   // = 1
  double coh_r = segment_coherence(right, scoring);  // = 1
  CmProfile merged = left;
  merged.merge(right);
  double coh_m = segment_coherence(merged, scoring);
  double expected =
      (std::fabs(coh_l - coh_m) + std::fabs(coh_r - coh_m)) / (2.0 * coh_m);
  EXPECT_NEAR(border_depth(left, right, scoring), expected, 1e-12);
  EXPECT_DOUBLE_EQ(coh_l, 1.0);
  EXPECT_DOUBLE_EQ(coh_r, 1.0);
  // merged [3,3,0]: H = log 2, normalized by log 3.
  EXPECT_NEAR(coh_m, 1.0 - std::log(2.0) / std::log(3.0), 1e-12);
}

TEST(Eq4, ScoreIsAverageOfThreeTerms) {
  CmProfile left;
  left.add(CmKind::kTense, 0, 3.0);
  CmProfile right;
  right.add(CmKind::kTense, 1, 3.0);
  SegScoring scoring;
  double expected = (segment_coherence(left, scoring) +
                     segment_coherence(right, scoring) +
                     border_depth(left, right, scoring)) /
                    3.0;
  EXPECT_NEAR(border_score(left, right, scoring), expected, 1e-12);
}

TEST(Eq5And6, WeightVectorsOfKnownDocument) {
  // Two sentences. S0: "I installed it." (past, I + it, affirm, active,
  // verb+?); S1: "It works." (present, it, affirm, active).
  Document d = Document::analyze(0, "I installed it. It works.");
  ASSERT_EQ(d.num_units(), 2u);
  auto f = segment_feature_vector(d, 0, 1);  // first sentence only

  // Eq. 5 (first 14): within-segment per-CM distribution.
  // Sentence 0 tense: past only -> [0, 1, 0].
  EXPECT_DOUBLE_EQ(f[cm_feature_index(CmKind::kTense, 0)], 0.0);
  EXPECT_DOUBLE_EQ(f[cm_feature_index(CmKind::kTense, 1)], 1.0);
  // Subject: one "I" (1st) + one "it" (3rd) -> [0.5, 0, 0.5].
  EXPECT_DOUBLE_EQ(f[cm_feature_index(CmKind::kSubject, 0)], 0.5);
  EXPECT_DOUBLE_EQ(f[cm_feature_index(CmKind::kSubject, 2)], 0.5);

  // Eq. 6 (second 14): segment count / whole-document count.
  // Past tense: 1 of 1 in doc -> 1; present: 0 of 1 -> 0.
  int off = kNumCmFeatures;
  EXPECT_DOUBLE_EQ(f[off + cm_feature_index(CmKind::kTense, 1)], 1.0);
  EXPECT_DOUBLE_EQ(f[off + cm_feature_index(CmKind::kTense, 0)], 0.0);
  // "it" appears in both sentences (plus once in S0): S0 holds 1 of 2
  // third-person subjects... S1 contributes 1. So ratio = 1/2.
  EXPECT_NEAR(f[off + cm_feature_index(CmKind::kSubject, 2)], 0.5, 1e-12);
}

TEST(Eq7And8, MySqlStyleWeight) {
  // One unit with tf(a)=4, tf(b)=1; a second unit so averages exist.
  Vocabulary vocab;
  InvertedIndex index;
  index.min_norm_fraction = 0.0;  // test the formula as printed
  TermVector u0;
  TermId a = vocab.intern("a");
  TermId b = vocab.intern("b");
  u0.add(a, 4.0);
  u0.add(b, 1.0);
  uint32_t unit0 = index.add_unit(u0);
  TermVector u1;
  u1.add(a, 1.0);
  u1.add(b, 1.0);
  index.add_unit(u1);
  index.finalize();

  // Denominator for unit0: sum of (log tf + 1) = (log4+1) + (log1+1),
  // times NU = (1-b) + b*unique/avg_unique with unique=2, avg=2 -> NU = 1.
  double denom = (std::log(4.0) + 1.0) + 1.0;
  EXPECT_NEAR(index.unit_norm(unit0), denom, 1e-12);
  EXPECT_NEAR(index.weight(a, unit0), (std::log(4.0) + 1.0) / denom, 1e-12);
  EXPECT_NEAR(index.weight(b, unit0), 1.0 / denom, 1e-12);
}

TEST(Eq8, NuPenaltyExactValue) {
  // unique(u0)=1, unique(u1)=3 -> avg 2; NU(u1) = 0.25 + 0.75*3/2 = 1.375.
  Vocabulary vocab;
  InvertedIndex index;
  index.min_norm_fraction = 0.0;
  TermVector u0;
  u0.add(vocab.intern("x"), 1.0);
  index.add_unit(u0);
  TermVector u1;
  u1.add(vocab.intern("p"), 1.0);
  u1.add(vocab.intern("q"), 1.0);
  u1.add(vocab.intern("r"), 1.0);
  uint32_t unit1 = index.add_unit(u1);
  index.finalize();
  double nu = 0.25 + 0.75 * 3.0 / 2.0;
  EXPECT_NEAR(index.unit_norm(unit1), 3.0 * nu, 1e-12);
}

TEST(Eq9, RelatednessScoreComposition) {
  // Cluster of 3 segments; query shares term "t" (f_q = 2) with segment 0
  // only. scr = f_q * w(t, s0) * pidf where pidf uses |I|=3, |I^t|=1.
  Vocabulary vocab;
  InvertedIndex index;
  index.min_norm_fraction = 0.0;
  TermId t = vocab.intern("t");
  TermVector s0;
  s0.add(t, 1.0);
  s0.add(vocab.intern("u"), 1.0);
  uint32_t unit0 = index.add_unit(s0);
  TermVector s1;
  s1.add(vocab.intern("v"), 1.0);
  index.add_unit(s1);
  TermVector s2;
  s2.add(vocab.intern("w"), 1.0);
  index.add_unit(s2);
  index.finalize();

  TermVector query;
  query.add(t, 2.0);
  auto hits = score_units(index, query);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].unit, unit0);
  double expected =
      2.0 * index.weight(t, unit0) * probabilistic_idf(3, 1);
  EXPECT_NEAR(hits[0].score, expected, 1e-12);
  // pidf(3,1) = log(3 - 1 + 0.5) / 1.5.
  EXPECT_NEAR(probabilistic_idf(3, 1), std::log(2.5) / 1.5, 1e-12);
}

// ----------------------------------------------- absolute golden values ----
// The tests above verify the formulas against re-derivations that share
// subexpressions with the implementation (index.weight() appears on both
// sides). The goldens below pin fully hand-computed literals instead, so
// any refactor of the scoring path — including the concurrent-serving
// work, which must not perturb ranking math — trips an exact numeric diff.

TEST(Eq8Golden, AbsoluteTermWeights) {
  // Cluster of three segments:
  //   u0: a^4 b      u1: a c d      u2: b^2 c
  // unique = [2, 3, 2], avg_unique = 7/3.
  // NU(u)      = 0.25 + 0.75 * unique / (7/3)
  // norm(u0)   = (ln4 + 2)          * NU(u0) = 3.0234771081427594
  // norm(u1)   = 3                  * NU(u1) = 3.6428571428571428
  // norm(u2)   = (ln2 + 2)          * NU(u2) = 2.4045956969285225
  Vocabulary vocab;
  InvertedIndex index;
  index.min_norm_fraction = 0.0;  // the formula exactly as printed
  TermId a = vocab.intern("a"), b = vocab.intern("b"), c = vocab.intern("c"),
         d = vocab.intern("d");
  TermVector u0, u1, u2;
  u0.add(a, 4.0);
  u0.add(b, 1.0);
  u1.add(a, 1.0);
  u1.add(c, 1.0);
  u1.add(d, 1.0);
  u2.add(b, 2.0);
  u2.add(c, 1.0);
  uint32_t i0 = index.add_unit(u0);
  uint32_t i1 = index.add_unit(u1);
  uint32_t i2 = index.add_unit(u2);
  index.finalize();

  EXPECT_NEAR(index.unit_norm(i0), 3.0234771081427594, 1e-12);
  EXPECT_NEAR(index.unit_norm(i1), 3.6428571428571428, 1e-12);
  EXPECT_NEAR(index.unit_norm(i2), 2.4045956969285225, 1e-12);
  // w(t, u) = (ln tf + 1) / norm(u):
  EXPECT_NEAR(index.weight(a, i0), 0.78925497887620100, 1e-12);
  EXPECT_NEAR(index.weight(b, i0), 0.33074502112379911, 1e-12);
  EXPECT_NEAR(index.weight(a, i1), 0.27450980392156865, 1e-12);
  EXPECT_NEAR(index.weight(b, i2), 0.70412967249449210, 1e-12);
}

TEST(Eq9Golden, AbsoluteRelatednessScores) {
  // Same cluster as Eq8Golden; query bag q = {a: 2, b: 1}.
  // pidf(3, 2) = ln(1.5) / 2.5 = 0.16218604324326574
  // scr(q,u0) = 2 w(a,u0) pidf + 1 w(b,u0) pidf = 0.30965451056643595
  // scr(q,u1) = 2 w(a,u1) pidf                  = 0.08904331785904787
  // scr(q,u2) = 1 w(b,u2) pidf                  = 0.11420000551205824
  Vocabulary vocab;
  InvertedIndex index;
  index.min_norm_fraction = 0.0;
  TermId a = vocab.intern("a"), b = vocab.intern("b"), c = vocab.intern("c"),
         d = vocab.intern("d");
  TermVector u0, u1, u2;
  u0.add(a, 4.0);
  u0.add(b, 1.0);
  u1.add(a, 1.0);
  u1.add(c, 1.0);
  u1.add(d, 1.0);
  u2.add(b, 2.0);
  u2.add(c, 1.0);
  index.add_unit(u0);
  index.add_unit(u1);
  index.add_unit(u2);
  index.finalize();

  TermVector query;
  query.add(a, 2.0);
  query.add(b, 1.0);
  auto hits = score_units(index, query);
  keep_top_n(hits, hits.size());
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].unit, 0u);
  EXPECT_NEAR(hits[0].score, 0.30965451056643595, 1e-12);
  EXPECT_EQ(hits[1].unit, 2u);
  EXPECT_NEAR(hits[1].score, 0.11420000551205824, 1e-12);
  EXPECT_EQ(hits[2].unit, 1u);
  EXPECT_NEAR(hits[2].score, 0.08904331785904787, 1e-12);
}

}  // namespace
}  // namespace ibseg
