// Persistence tests (ctest label "storage"): the snapshot v2 binary
// format, the ingest WAL, and ServingPipeline::save/restore. Crash
// *injection* (fork + _exit mid-ingest) lives in kill_safety_test.cc;
// this file covers the formats and the single-process recovery paths.

#include <gtest/gtest.h>
#include <pthread.h>
#include <sys/stat.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/serving.h"
#include "datagen/post_generator.h"
#include "storage/snapshot.h"
#include "storage/snapshot_v2.h"
#include "storage/wal.h"
#include "storage/wal_codec.h"

namespace ibseg {
namespace {

std::vector<Document> seed_docs(size_t num_posts = 24) {
  GeneratorOptions gen;
  gen.num_posts = num_posts;
  gen.posts_per_scenario = 3;
  gen.seed = 99;
  return analyze_corpus(generate_corpus(gen));
}

std::vector<std::string> extra_posts(size_t count = 6) {
  GeneratorOptions gen;
  gen.num_posts = count;
  gen.posts_per_scenario = 2;
  gen.seed = 123;
  SyntheticCorpus corpus = generate_corpus(gen);
  std::vector<std::string> texts;
  for (const GeneratedPost& p : corpus.posts) texts.push_back(p.text);
  return texts;
}

RelatedPostPipeline build_seed_pipeline(size_t num_posts = 24) {
  return RelatedPostPipeline::build(seed_docs(num_posts));
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& data) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << data;
}

size_t file_size(const std::string& path) { return read_file(path).size(); }

/// Fresh per-test file path under gtest's temp dir.
std::string tmp_path(const std::string& name) {
  std::string path = ::testing::TempDir() + "/ibseg_" + name;
  std::remove(path.c_str());
  return path;
}

/// Expects identical answers (same docs, same ranking) with scores equal
/// to within floating-point noise — the tolerance the existing snapshot-v1
/// matcher test uses for original-vs-rebuilt comparisons.
void expect_same_answers(const ServingPipeline& a, const ServingPipeline& b,
                         double tolerance) {
  ASSERT_EQ(a.num_docs(), b.num_docs());
  for (const Document& d : a.quiescent().docs()) {
    auto ra = a.find_related(d.id(), 5);
    auto rb = b.find_related(d.id(), 5);
    ASSERT_EQ(ra.results.size(), rb.results.size()) << "query " << d.id();
    for (size_t i = 0; i < ra.results.size(); ++i) {
      EXPECT_EQ(ra.results[i].doc, rb.results[i].doc)
          << "query " << d.id() << " rank " << i;
      if (tolerance == 0.0) {
        EXPECT_EQ(ra.results[i].score, rb.results[i].score)
            << "query " << d.id() << " rank " << i;
      } else {
        EXPECT_NEAR(ra.results[i].score, rb.results[i].score, tolerance)
            << "query " << d.id() << " rank " << i;
      }
    }
  }
}

// ------------------------------------------------------- snapshot v2 ----

TEST(SnapshotV2, SaveRestoreRoundTrip) {
  std::string path = tmp_path("snap_roundtrip");
  ServingPipeline serving(build_seed_pipeline());
  size_t seed = serving.seed_docs();
  for (const std::string& text : extra_posts()) serving.add_post(text);
  ASSERT_TRUE(serving.save(path));

  auto snap = load_snapshot_v2_file(path);
  ASSERT_TRUE(snap.has_value());
  EXPECT_TRUE(snap->is_consistent());
  EXPECT_EQ(snap->doc_ids.size(), serving.num_docs());
  EXPECT_EQ(snap->num_seed_docs, seed);
  EXPECT_EQ(snap->next_id, serving.next_id());
  EXPECT_FALSE(snap->vocab_terms.empty());
  EXPECT_GT(snap->num_clusters, 0);
  // Labels cover exactly the seed segments, not the ingested tail.
  size_t seed_segments = 0;
  for (size_t d = 0; d < seed; ++d) {
    seed_segments += snap->segmentations[d].num_segments();
  }
  EXPECT_EQ(snap->seed_labels.size(), seed_segments);

  auto restored = ServingPipeline::restore(path);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->seed_docs(), seed);
  EXPECT_EQ(restored->epoch(), serving.epoch());
  EXPECT_EQ(restored->num_docs(), serving.num_docs());
  EXPECT_GE(restored->next_id(), serving.next_id());
  expect_same_answers(serving, *restored, 1e-9);
  std::remove(path.c_str());
}

TEST(SnapshotV2, RestoredPipelineKeepsServing) {
  std::string path = tmp_path("snap_keeps_serving");
  ServingPipeline serving(build_seed_pipeline(12));
  ASSERT_TRUE(serving.save(path));
  auto restored = ServingPipeline::restore(path);
  ASSERT_NE(restored, nullptr);
  // Ids keep incrementing past the snapshot watermark; the invariant
  // num_docs == seed_docs + epoch survives the restart.
  DocId id = restored->add_post("the printer fails after the latest update");
  EXPECT_GE(id, serving.next_id());
  EXPECT_EQ(restored->num_docs(), restored->seed_docs() + restored->epoch());
  auto r = restored->find_related(id, 3);
  EXPECT_EQ(r.num_docs, restored->num_docs());
  std::remove(path.c_str());
}

TEST(SnapshotV2, EveryPrefixIsRejected) {
  std::string path = tmp_path("snap_prefix");
  ServingPipeline serving(build_seed_pipeline(6));
  ASSERT_TRUE(serving.save(path));
  const std::string data = read_file(path);
  ASSERT_GT(data.size(), 16u);
  for (size_t len = 0; len < data.size(); ++len) {
    std::istringstream prefix(data.substr(0, len));
    EXPECT_FALSE(load_snapshot_v2(prefix).has_value()) << "prefix " << len;
  }
  std::istringstream full(data);
  EXPECT_TRUE(load_snapshot_v2(full).has_value());
  std::remove(path.c_str());
}

TEST(SnapshotV2, SingleByteCorruptionIsRejected) {
  std::string path = tmp_path("snap_bitflip");
  ServingPipeline serving(build_seed_pipeline(6));
  ASSERT_TRUE(serving.save(path));
  std::string data = read_file(path);
  // Flip one byte at a stride of positions across the whole file — magic,
  // section headers, stored CRCs and payloads alike; every flip must fail
  // the load (this is the detection the v1 text formats cannot give).
  for (size_t pos = 0; pos < data.size(); pos += 13) {
    std::string corrupt = data;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
    std::istringstream is(corrupt);
    EXPECT_FALSE(load_snapshot_v2(is).has_value()) << "byte " << pos;
  }
  // Trailing garbage after the last section is also rejected.
  std::istringstream padded(data + "x");
  EXPECT_FALSE(load_snapshot_v2(padded).has_value());
  std::remove(path.c_str());
}

/// A pipeline one recluster into its life, with a non-trivial offline
/// section: pending pool, docs-since counter and post-recluster ingests
/// all non-empty when saved.
std::unique_ptr<ServingPipeline> build_generation_one_pipeline() {
  ServingOptions options;
  options.recluster.pending_distance_threshold = 0.0;  // pool every ingest
  auto serving =
      std::make_unique<ServingPipeline>(build_seed_pipeline(), options);
  std::vector<std::string> posts = extra_posts();
  for (size_t i = 0; i < 4; ++i) serving->add_post(posts[i]);
  [[maybe_unused]] uint64_t gen = serving->recluster();
  for (size_t i = 4; i < posts.size(); ++i) serving->add_post(posts[i]);
  return serving;
}

TEST(SnapshotV2, OfflineSectionRoundTripsAfterRecluster) {
  std::string path = tmp_path("snap_offline_roundtrip");
  auto serving = build_generation_one_pipeline();
  ASSERT_EQ(serving->offline_generation(), 1u);
  ASSERT_GT(serving->pending_pool_size(), 0u);
  ASSERT_GT(serving->docs_since_recluster(), 0u);
  ASSERT_TRUE(serving->save(path));

  auto snap = load_snapshot_v2_file(path);
  ASSERT_TRUE(snap.has_value());
  EXPECT_TRUE(snap->is_consistent());
  EXPECT_EQ(snap->offline_generation, 1u);
  EXPECT_EQ(snap->offline_docs, serving->offline_docs());
  EXPECT_GT(snap->offline_docs, snap->num_seed_docs);
  EXPECT_EQ(snap->pending_pool, serving->pending_pool());
  EXPECT_EQ(snap->docs_since_recluster, serving->docs_since_recluster());
  ASSERT_EQ(snap->centroids.size(), static_cast<size_t>(snap->num_clusters));
  // offline_labels cover exactly the segments of the documents between the
  // seed corpus and the offline horizon.
  size_t expected = 0;
  for (size_t d = snap->num_seed_docs; d < snap->offline_docs; ++d) {
    expected += snap->segmentations[d].num_segments();
  }
  EXPECT_EQ(snap->offline_labels.size(), expected);

  // And the full restore path consumes all of it (the bit-identity proof
  // lives in recluster_differential_test.cc; this is the format check).
  ServingOptions options;
  options.recluster.pending_distance_threshold = 0.0;
  auto restored = ServingPipeline::restore(path, {}, options);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->offline_generation(), 1u);
  EXPECT_EQ(restored->offline_docs(), serving->offline_docs());
  EXPECT_EQ(restored->pending_pool(), serving->pending_pool());
  EXPECT_EQ(restored->docs_since_recluster(), serving->docs_since_recluster());
  expect_same_answers(*serving, *restored, 0.0);
  std::remove(path.c_str());
}

TEST(SnapshotV2, EveryPrefixIsRejectedAtGenerationOne) {
  // The corruption sweeps re-run over a POST-RECLUSTER snapshot: the
  // offline section (generation, horizon, labels, centroids, pool,
  // counter) adds bytes the generation-0 sweeps never cover.
  std::string path = tmp_path("snap_offline_prefix");
  auto serving = build_generation_one_pipeline();
  ASSERT_TRUE(serving->save(path));
  const std::string data = read_file(path);
  ASSERT_GT(data.size(), 16u);
  for (size_t len = 0; len < data.size(); ++len) {
    std::istringstream prefix(data.substr(0, len));
    EXPECT_FALSE(load_snapshot_v2(prefix).has_value()) << "prefix " << len;
  }
  std::istringstream full(data);
  auto snap = load_snapshot_v2(full);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->offline_generation, 1u);
  std::remove(path.c_str());
}

TEST(SnapshotV2, SingleByteCorruptionIsRejectedAtGenerationOne) {
  std::string path = tmp_path("snap_offline_bitflip");
  auto serving = build_generation_one_pipeline();
  ASSERT_TRUE(serving->save(path));
  std::string data = read_file(path);
  for (size_t pos = 0; pos < data.size(); pos += 13) {
    std::string corrupt = data;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
    std::istringstream is(corrupt);
    EXPECT_FALSE(load_snapshot_v2(is).has_value()) << "byte " << pos;
  }
  std::istringstream padded(data + "x");
  EXPECT_FALSE(load_snapshot_v2(padded).has_value());
  std::remove(path.c_str());
}

TEST(SnapshotV2, InflatedLengthFieldsDoNotAllocate) {
  // Fuzzer-found regression: a corrupt section size or element count used
  // to be trusted up to the 16 GiB sanity ceiling, so a handful of flipped
  // bits turned load into a multi-gigabyte allocation (and an OOM kill on
  // small hosts) before any read or CRC check could fail. The loader now
  // bounds every allocation by the bytes actually present, so these
  // crafted inputs must be rejected instantly. If this test runs for
  // seconds or dies, the bound regressed — the EXPECT is the smaller half
  // of the assertion.
  auto u32le = [](uint32_t v) {
    std::string s(4, '\0');
    for (int i = 0; i < 4; ++i) s[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    return s;
  };
  auto u64le = [&](uint64_t v) {
    return u32le(static_cast<uint32_t>(v)) +
           u32le(static_cast<uint32_t>(v >> 32));
  };
  const std::string prologue =
      std::string("IBSGSNP2") + u32le(2) + u32le(1);  // version, 1 section
  // Section header claiming an 8 GiB payload that is not there.
  {
    std::istringstream is(prologue + u32le(1) + u64le(uint64_t{1} << 33) +
                          u32le(0));
    EXPECT_FALSE(load_snapshot_v2(is).has_value());
  }
  // Giant declared payload with a few real bytes behind it: the chunked
  // read must stop at EOF, never allocate the declared size.
  {
    std::istringstream is(prologue + u32le(1) + u64le(uint64_t{1} << 33) +
                          u32le(0) + std::string(64, 'x'));
    EXPECT_FALSE(load_snapshot_v2(is).has_value());
  }
}

TEST(SnapshotV2, AnyLoaderFallsBackToV1) {
  // A v1 text snapshot keeps loading through the sniffing loader.
  RelatedPostPipeline pipeline = build_seed_pipeline(8);
  PipelineSnapshot v1 = pipeline.snapshot();
  std::string v1_path = tmp_path("snap_any_v1");
  ASSERT_TRUE(save_snapshot_file(v1, v1_path));
  auto via_any = load_snapshot_any_file(v1_path);
  ASSERT_TRUE(via_any.has_value());
  EXPECT_EQ(via_any->segment_labels, v1.segment_labels);
  EXPECT_EQ(via_any->num_clusters, v1.num_clusters);

  // And a v2 file yields its offline part through the same entry point.
  std::string v2_path = tmp_path("snap_any_v2");
  ServingPipeline serving(std::move(pipeline));
  ASSERT_TRUE(serving.save(v2_path));
  auto offline = load_snapshot_any_file(v2_path);
  ASSERT_TRUE(offline.has_value());
  EXPECT_TRUE(offline->is_consistent());
  EXPECT_EQ(offline->segmentations.size(), serving.seed_docs());

  // Garbage matches neither format.
  std::string bad_path = tmp_path("snap_any_bad");
  write_file(bad_path, "neither format");
  EXPECT_FALSE(load_snapshot_any_file(bad_path).has_value());
  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
  std::remove(bad_path.c_str());
}

// --------------------------------------------------------------- WAL ----

TEST(Wal, AppendThenReplay) {
  std::string path = tmp_path("wal_replay");
  std::vector<WalRecord> records = {
      {7, "first post text"}, {8, ""}, {9, "text with \n newline \\ slash"}};
  {
    std::vector<WalRecord> replayed;
    auto wal = IngestWal::open(path, WalOptions{}, &replayed);
    ASSERT_NE(wal, nullptr);
    EXPECT_TRUE(replayed.empty());
    for (const WalRecord& r : records) ASSERT_TRUE(wal->append(r));
    EXPECT_EQ(wal->appended(), 3u);
  }
  std::vector<WalRecord> replayed;
  auto wal = IngestWal::open(path, WalOptions{}, &replayed);
  ASSERT_NE(wal, nullptr);
  ASSERT_EQ(replayed.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(replayed[i].id, records[i].id);
    EXPECT_EQ(replayed[i].text, records[i].text);
  }
  EXPECT_EQ(wal->appended(), 0u);  // replays don't count as appends
  std::remove(path.c_str());
}

TEST(Wal, TornTailIsTruncatedNotReplayed) {
  std::string path = tmp_path("wal_torn");
  {
    std::vector<WalRecord> replayed;
    auto wal = IngestWal::open(path, WalOptions{}, &replayed);
    ASSERT_NE(wal, nullptr);
    ASSERT_TRUE(wal->append({1, "intact record one"}));
    ASSERT_TRUE(wal->append({2, "intact record two"}));
  }
  const std::string intact = read_file(path);

  // (a) garbage appended after the last complete record;
  // (b) a record torn mid-payload;
  // (c) a record torn inside the 8-byte frame header.
  const std::string torn_cases[] = {
      intact + std::string("\x2a\x00\x00\x00garbage-not-a-frame", 23),
      intact + std::string("\x10\x00\x00\x00\xde\xad\xbe\xef half", 13),
      intact + std::string("\x10\x00\x00", 3),
  };
  for (const std::string& torn : torn_cases) {
    write_file(path, torn);
    std::vector<WalRecord> replayed;
    auto wal = IngestWal::open(path, WalOptions{}, &replayed);
    ASSERT_NE(wal, nullptr);
    ASSERT_EQ(replayed.size(), 2u);
    EXPECT_EQ(replayed[0].text, "intact record one");
    EXPECT_EQ(replayed[1].text, "intact record two");
    // The torn tail was physically truncated, so the next open (and any
    // append in between) starts from a clean end-of-log.
    EXPECT_EQ(file_size(path), intact.size());
  }

  // A corrupted byte *inside* an earlier record drops that record AND
  // everything after it — replaying past a gap would reorder publication.
  std::string mid_corrupt = intact;
  mid_corrupt[10] = static_cast<char>(mid_corrupt[10] ^ 0x01);
  write_file(path, mid_corrupt);
  std::vector<WalRecord> replayed;
  auto wal = IngestWal::open(path, WalOptions{}, &replayed);
  ASSERT_NE(wal, nullptr);
  EXPECT_TRUE(replayed.empty());
  EXPECT_EQ(file_size(path), 0u);
  std::remove(path.c_str());
}

TEST(Wal, ResetEmptiesTheLog) {
  std::string path = tmp_path("wal_reset");
  std::vector<WalRecord> replayed;
  auto wal = IngestWal::open(path, WalOptions{}, &replayed);
  ASSERT_NE(wal, nullptr);
  ASSERT_TRUE(wal->append({1, "soon to be obsolete"}));
  ASSERT_GT(file_size(path), 0u);
  ASSERT_TRUE(wal->reset());
  EXPECT_EQ(file_size(path), 0u);
  // The log keeps working after a reset.
  ASSERT_TRUE(wal->append({2, "post-reset record"}));
  wal.reset();
  std::vector<WalRecord> replayed2;
  auto wal2 = IngestWal::open(path, WalOptions{}, &replayed2);
  ASSERT_NE(wal2, nullptr);
  ASSERT_EQ(replayed2.size(), 1u);
  EXPECT_EQ(replayed2[0].id, 2u);
  std::remove(path.c_str());
}

TEST(Wal, FsyncPoliciesAllPersist) {
  for (WalFsync policy :
       {WalFsync::kNone, WalFsync::kEveryN, WalFsync::kEveryAppend}) {
    std::string path = tmp_path("wal_policy");
    WalOptions opts;
    opts.fsync = policy;
    opts.fsync_every_n = 2;
    {
      std::vector<WalRecord> replayed;
      auto wal = IngestWal::open(path, opts, &replayed);
      ASSERT_NE(wal, nullptr);
      std::vector<WalRecord> batch = {{1, "a"}, {2, "b"}, {3, "c"}};
      ASSERT_TRUE(wal->append_batch(batch));
      EXPECT_EQ(wal->appended(), 3u);
    }
    std::vector<WalRecord> replayed;
    auto wal = IngestWal::open(path, opts, &replayed);
    ASSERT_NE(wal, nullptr);
    EXPECT_EQ(replayed.size(), 3u);
    std::remove(path.c_str());
  }
}

namespace eintr_storm {
/// SIGUSR1 handler for the signal-storm test: does nothing — its only job
/// is to interrupt whatever syscall the WAL thread is inside. Installed
/// WITHOUT SA_RESTART, so an interrupted write(2)/read(2) really does
/// return EINTR instead of being transparently resumed by the kernel.
void on_signal(int) {}
}  // namespace eintr_storm

TEST(Wal, AppendsAndReplaySurviveASignalStormWithoutSaRestart) {
  // Regression for the EINTR bug: write_fully/read_fully treated EINTR as
  // a hard error, so a signal landing mid-syscall failed the append — an
  // ingest the client would then retry into a duplicate. A sibling thread
  // storms this thread with SIGUSR1 (no SA_RESTART) while records are
  // appended and while the log is reopened; every operation must succeed
  // and the replay must hold every record exactly once.
  struct sigaction action = {};
  struct sigaction saved = {};
  action.sa_handler = eintr_storm::on_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately NOT SA_RESTART
  ASSERT_EQ(sigaction(SIGUSR1, &action, &saved), 0);

  std::string path = tmp_path("wal_eintr");
  constexpr size_t kRecords = 64;
  // Large payloads keep each append inside write(2) long enough for the
  // storm to land there (a short write resumes through the same loop).
  const std::string payload(256 * 1024, 'x');

  std::atomic<bool> stop{false};
  pthread_t target = pthread_self();
  std::thread storm([&stop, target] {
    while (!stop.load(std::memory_order_acquire)) {
      pthread_kill(target, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
  });

  {
    WalOptions opts;
    opts.fsync = WalFsync::kNone;  // the storm targets write(2), not fsync
    std::vector<WalRecord> replayed;
    auto wal = IngestWal::open(path, opts, &replayed);
    ASSERT_NE(wal, nullptr);
    for (size_t i = 0; i < kRecords; ++i) {
      ASSERT_TRUE(wal->append({static_cast<DocId>(i), payload}))
          << "append " << i << " failed under the signal storm";
    }
  }
  // Reopen (and so replay through read_fully) with the storm still live.
  std::vector<WalRecord> replayed;
  auto wal = IngestWal::open(path, WalOptions{}, &replayed);

  stop.store(true, std::memory_order_release);
  storm.join();
  ASSERT_EQ(sigaction(SIGUSR1, &saved, nullptr), 0);

  ASSERT_NE(wal, nullptr);
  ASSERT_EQ(replayed.size(), kRecords);
  for (size_t i = 0; i < kRecords; ++i) {
    EXPECT_EQ(replayed[i].id, static_cast<DocId>(i));
    EXPECT_EQ(replayed[i].text.size(), payload.size());
  }
  wal.reset();
  std::remove(path.c_str());
}

TEST(Wal, ResetReplacesTheInodeInsteadOfTruncatingInPlace) {
  // Regression for the stale-frame resurrection hazard: an in-place
  // ftruncate whose size change is lost to a power failure leaves the old
  // CRC-valid frames on disk, and post-reset appends overwriting them from
  // offset 0 can splice seamlessly into them. reset() therefore renames a
  // fresh empty inode over the log; the observable contract is that the
  // inode number CHANGES and the log keeps working.
  std::string path = tmp_path("wal_reset_inode");
  std::vector<WalRecord> replayed;
  auto wal = IngestWal::open(path, WalOptions{}, &replayed);
  ASSERT_NE(wal, nullptr);
  ASSERT_TRUE(wal->append({1, "pre-reset record"}));

  struct stat before = {};
  ASSERT_EQ(::stat(path.c_str(), &before), 0);
  ASSERT_TRUE(wal->reset());
  struct stat after = {};
  ASSERT_EQ(::stat(path.c_str(), &after), 0);
  EXPECT_NE(before.st_ino, after.st_ino)
      << "reset() must replace the inode, not truncate it in place";
  EXPECT_EQ(after.st_size, 0);

  // Appends go to the new inode and replay from the path finds them.
  ASSERT_TRUE(wal->append({2, "post-reset record"}));
  wal.reset();
  std::vector<WalRecord> replayed2;
  auto wal2 = IngestWal::open(path, WalOptions{}, &replayed2);
  ASSERT_NE(wal2, nullptr);
  ASSERT_EQ(replayed2.size(), 1u);
  EXPECT_EQ(replayed2[0].id, 2u);
  EXPECT_EQ(replayed2[0].text, "post-reset record");
  wal2.reset();
  std::remove(path.c_str());
}

TEST(Wal, CrcValidFrameBeyondATornGapIsNeverReplayed) {
  // The frame scan stops at the FIRST invalid frame: a perfectly valid
  // frame sitting beyond torn bytes (e.g. a stale frame surviving a lost
  // truncation, or a partially overwritten region) must be dropped, not
  // resurrected — replaying past a gap would reorder publication. The
  // truncation must also physically remove it so no later scan can ever
  // see it again.
  std::string path = tmp_path("wal_gap");
  std::string frame_a;
  wal_encode_frame({1, "record before the gap"}, &frame_a);
  std::string frame_c;
  wal_encode_frame({2, "CRC-valid record beyond the gap"}, &frame_c);
  const std::string torn("\x1f\x00\x00\x00\xde\xad", 6);
  write_file(path, frame_a + torn + frame_c);

  std::vector<WalRecord> replayed;
  auto wal = IngestWal::open(path, WalOptions{}, &replayed);
  ASSERT_NE(wal, nullptr);
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].id, 1u);
  EXPECT_EQ(file_size(path), frame_a.size())
      << "the gap AND the valid frame beyond it must be truncated away";

  // The same holds when the gap consists of a plausible frame header
  // whose CRC does not match (a torn overwrite of a stale frame).
  std::string bad_crc = frame_c;
  bad_crc[4] = static_cast<char>(bad_crc[4] ^ 0x01);
  write_file(path, frame_a + bad_crc + frame_c);
  std::vector<WalRecord> replayed2;
  wal.reset();
  auto wal2 = IngestWal::open(path, WalOptions{}, &replayed2);
  ASSERT_NE(wal2, nullptr);
  ASSERT_EQ(replayed2.size(), 1u);
  EXPECT_EQ(replayed2[0].id, 1u);
  EXPECT_EQ(file_size(path), frame_a.size());
  wal2.reset();
  std::remove(path.c_str());
}

// ----------------------------------------------- serving + WAL wiring ----

TEST(ServingPersistence, WalReplayRebuildsIdenticalState) {
  std::string wal_path = tmp_path("serving_wal_replay");
  ServingOptions with_wal;
  with_wal.persist.wal_path = wal_path;
  std::vector<std::string> extras = extra_posts();

  auto original =
      std::make_unique<ServingPipeline>(build_seed_pipeline(), with_wal);
  for (const std::string& text : extras) original->add_post(text);

  // Reference: the same ingests with no persistence at all.
  ServingPipeline reference(build_seed_pipeline());
  for (const std::string& text : extras) reference.add_post(text);
  expect_same_answers(*original, reference, 0.0);

  // "Restart": a fresh pipeline over the same seed corpus plus the WAL.
  original.reset();
  ServingPipeline recovered(build_seed_pipeline(), with_wal);
  EXPECT_EQ(recovered.epoch(), extras.size());
  EXPECT_EQ(recovered.num_docs(), recovered.seed_docs() + recovered.epoch());
  expect_same_answers(recovered, reference, 0.0);
  std::remove(wal_path.c_str());
}

TEST(ServingPersistence, SaveTruncatesWalAndRestoreSkipsDuplicates) {
  std::string wal_path = tmp_path("serving_wal_dup");
  std::string snap_path = tmp_path("serving_snap_dup");
  ServingOptions with_wal;
  with_wal.persist.wal_path = wal_path;
  std::vector<std::string> extras = extra_posts();

  auto serving =
      std::make_unique<ServingPipeline>(build_seed_pipeline(), with_wal);
  for (const std::string& text : extras) serving->add_post(text);
  ASSERT_GT(file_size(wal_path), 0u);
  const std::string wal_before_save = read_file(wal_path);
  ASSERT_TRUE(serving->save(snap_path));
  // save() bakes every logged record into the snapshot and empties the log.
  EXPECT_EQ(file_size(wal_path), 0u);
  const uint64_t epoch_at_save = serving->epoch();
  serving.reset();

  // Crash window: snapshot renamed but the WAL truncation never happened.
  // Restore must skip the already-snapshotted records — no double publish.
  write_file(wal_path, wal_before_save);
  auto recovered = ServingPipeline::restore(snap_path, {}, with_wal);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->epoch(), epoch_at_save);
  EXPECT_EQ(recovered->num_docs(),
            recovered->seed_docs() + recovered->epoch());

  ServingPipeline reference(build_seed_pipeline());
  for (const std::string& text : extras) reference.add_post(text);
  expect_same_answers(*recovered, reference, 1e-9);
  std::remove(wal_path.c_str());
  std::remove(snap_path.c_str());
}

TEST(ServingPersistence, RestoreRejectsMissingOrCorruptSnapshot) {
  EXPECT_EQ(ServingPipeline::restore(tmp_path("no_such_snapshot")), nullptr);
  std::string path = tmp_path("corrupt_snapshot");
  write_file(path, "IBSGSNP2 but then nonsense");
  EXPECT_EQ(ServingPipeline::restore(path), nullptr);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ibseg
