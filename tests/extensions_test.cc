// Tests for the paper's optional/extension features: the top-down border
// strategy (Sec. 5.3's first approach), weighted Algorithm 2 and the
// Fagin-style per-intention score threshold (both mentioned in Sec. 7).

#include <gtest/gtest.h>

#include "cluster/intention_clusters.h"
#include "datagen/post_generator.h"
#include "index/intention_matcher.h"
#include "seg/border_strategies.h"

namespace ibseg {
namespace {

const char* kThreeIntentPost =
    "I have a new laptop with a printer and a scanner. "
    "My system runs with a wireless router and it has a fast drive. "
    "I called the support and they suggested a reset. "
    "I replaced the cable and installed the update twice. "
    "Do you know whether the scanner would degrade the speed? "
    "What should I do about the router?";

// -------------------------------------------------------------- topdown ----

TEST(TopDown, ValidSegmentation) {
  Document d = Document::analyze(0, kThreeIntentPost);
  Segmentation s = select_borders(d, BorderStrategyKind::kTopDown);
  EXPECT_TRUE(s.is_valid());
  EXPECT_EQ(s.num_units, d.num_units());
}

TEST(TopDown, SplitsClearIntentionShift) {
  Document d = Document::analyze(0, kThreeIntentPost);
  Segmentation s = select_borders(d, BorderStrategyKind::kTopDown);
  EXPECT_GE(s.borders.size(), 1u);
  EXPECT_LT(s.borders.size(), d.num_units() - 1);
}

TEST(TopDown, HighMarginMeansNoSplit) {
  Document d = Document::analyze(0, kThreeIntentPost);
  BorderStrategyOptions opts;
  opts.topdown_margin = 100.0;  // nothing can beat this
  Segmentation s =
      select_borders(d, BorderStrategyKind::kTopDown, SegScoring{}, opts);
  EXPECT_TRUE(s.borders.empty());
}

TEST(TopDown, DepthCapBoundsSegments) {
  Document d = Document::analyze(0, kThreeIntentPost);
  BorderStrategyOptions opts;
  opts.topdown_margin = -10.0;  // always split when possible
  opts.topdown_max_depth = 1;   // at most one split level
  Segmentation s =
      select_borders(d, BorderStrategyKind::kTopDown, SegScoring{}, opts);
  EXPECT_LE(s.num_segments(), 2u);
}

TEST(TopDown, SweepStaysValidOnCorpus) {
  GeneratorOptions gen;
  gen.num_posts = 40;
  gen.seed = 77;
  SyntheticCorpus corpus = generate_corpus(gen);
  for (const Document& doc : analyze_corpus(corpus)) {
    Segmentation s = select_borders(doc, BorderStrategyKind::kTopDown);
    EXPECT_TRUE(s.is_valid());
  }
}

// --------------------------------------------- weighted / threshold Alg.2 ----

struct MatchFixture {
  std::vector<Document> docs;
  IntentionClustering clustering;
};

MatchFixture paired_fixture() {
  MatchFixture f;
  std::vector<std::string> topics = {"printer", "printer", "router",
                                     "router"};
  for (size_t i = 0; i < topics.size(); ++i) {
    std::string text =
        "I have a fast laptop and it runs the usual setup. "
        "The machine works with a standard cable most days. "
        "Can you replace the " + topics[i] + "? " +
        "What should I do about the " + topics[i] + "?";
    f.docs.push_back(Document::analyze(static_cast<DocId>(i), text));
  }
  std::vector<Segmentation> segs(f.docs.size());
  std::vector<int> labels;
  for (size_t d = 0; d < f.docs.size(); ++d) {
    segs[d] = Segmentation{f.docs[d].num_units(), {2}};
    labels.push_back(0);
    labels.push_back(1);
  }
  f.clustering = IntentionClustering::from_labels(f.docs, segs, labels, 2);
  return f;
}

TEST(WeightedMatching, ZeroWeightSilencesACluster) {
  MatchFixture f = paired_fixture();
  MatcherOptions options;
  options.cluster_weights = {0.0, 1.0};  // ignore the description cluster
  Vocabulary vocab;
  auto matcher =
      IntentionMatcher::build(f.docs, f.clustering, vocab, options);
  // Only question-cluster evidence remains: doc 0's partner is doc 1.
  auto related = matcher.find_related(0, 3);
  ASSERT_FALSE(related.empty());
  EXPECT_EQ(related[0].doc, 1u);
  // With the question cluster silenced instead, the topic signal is gone
  // and every doc matches through the identical description.
  MatcherOptions inverse;
  inverse.cluster_weights = {1.0, 0.0};
  Vocabulary vocab2;
  auto desc_only =
      IntentionMatcher::build(f.docs, f.clustering, vocab2, inverse);
  auto related2 = desc_only.find_related(0, 3);
  // Scores across candidates must be (nearly) tied: identical descriptions.
  if (related2.size() >= 2) {
    EXPECT_NEAR(related2[0].score, related2[1].score, 1e-9);
  }
}

TEST(WeightedMatching, WeightsScaleScores) {
  MatchFixture f = paired_fixture();
  Vocabulary v1;
  Vocabulary v2;
  MatcherOptions unit;
  MatcherOptions doubled;
  doubled.cluster_weights = {2.0, 2.0};
  auto a = IntentionMatcher::build(f.docs, f.clustering, v1, unit);
  auto b = IntentionMatcher::build(f.docs, f.clustering, v2, doubled);
  auto ra = a.find_related(0, 3);
  auto rb = b.find_related(0, 3);
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].doc, rb[i].doc);
    EXPECT_NEAR(rb[i].score, 2.0 * ra[i].score, 1e-9);
  }
}

TEST(ThresholdMatching, HighThresholdPrunesWeakMatches) {
  MatchFixture f = paired_fixture();
  Vocabulary v1;
  MatcherOptions options;
  options.score_threshold = 1e9;  // nothing passes
  auto matcher =
      IntentionMatcher::build(f.docs, f.clustering, v1, options);
  EXPECT_TRUE(matcher.find_related(0, 5).empty());
}

TEST(ThresholdMatching, LowThresholdKeepsEverything) {
  MatchFixture f = paired_fixture();
  Vocabulary v1;
  Vocabulary v2;
  MatcherOptions topn;
  MatcherOptions threshold;
  threshold.score_threshold = 1e-12;
  auto a = IntentionMatcher::build(f.docs, f.clustering, v1, topn);
  auto b = IntentionMatcher::build(f.docs, f.clustering, v2, threshold);
  // With a tiny threshold every scored doc survives, so results are a
  // superset of (here: equal to) the top-n behaviour for small corpora.
  auto ra = a.find_related(0, 10);
  auto rb = b.find_related(0, 10);
  EXPECT_EQ(ra.size(), rb.size());
}

}  // namespace
}  // namespace ibseg
