// Unit tests for src/util: RNG, string helpers, vector math, table printer,
// thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>

#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"
#include "util/vector_math.h"

namespace ibseg {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit over 1000 draws
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.next_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
  }
  // Degenerate single-value range.
  EXPECT_EQ(rng.next_int(5, 5), 5);
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.next_gaussian();
    sum += v;
    sum2 += v * v;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Rng, WeightedSamplingFollowsWeights) {
  Rng rng(13);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.next_weighted(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(23);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

// ------------------------------------------------------------- strings ----

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("HeLLo Wo-RLD"), "hello wo-rld");
  EXPECT_EQ(to_lower(""), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(ends_with("ar", "bar"));
  EXPECT_TRUE(ends_with("bar", "bar"));
}

TEST(Strings, SplitDropsEmptyPieces) {
  auto pieces = split("a,,b, c", ", ");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(join({}, "-"), "");
}

TEST(Strings, Strip) {
  EXPECT_EQ(strip("  hi \n"), "hi");
  EXPECT_EQ(strip("\t\n "), "");
  EXPECT_EQ(strip("x"), "x");
}

TEST(Strings, StrFormat) {
  EXPECT_EQ(str_format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(str_format("%.2f", 1.5), "1.50");
}

// ---------------------------------------------------------- vector math ----

TEST(VectorMath, DotAndNorm) {
  std::vector<double> a = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(l2_norm(a), 5.0);
}

TEST(VectorMath, Distances) {
  std::vector<double> a = {0.0, 0.0};
  std::vector<double> b = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(euclidean_distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(manhattan_distance(a, b), 7.0);
}

TEST(VectorMath, CosineBounds) {
  std::vector<double> a = {1.0, 0.0};
  std::vector<double> b = {0.0, 2.0};
  std::vector<double> c = {2.0, 0.0};
  std::vector<double> zero = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(cosine_similarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(cosine_similarity(a, c), 1.0);
  EXPECT_DOUBLE_EQ(cosine_similarity(a, zero), 0.0);  // zero-vector guard
  EXPECT_DOUBLE_EQ(cosine_dissimilarity(a, c), 0.0);
}

TEST(VectorMath, MeanAndStddev) {
  std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_DOUBLE_EQ(stddev(v), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
}

TEST(VectorMath, ShannonEntropy) {
  EXPECT_DOUBLE_EQ(shannon_entropy({1.0, 0.0}), 0.0);
  EXPECT_NEAR(shannon_entropy({1.0, 1.0}), std::log(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(shannon_entropy({}), 0.0);
  EXPECT_DOUBLE_EQ(shannon_entropy({0.0, 0.0}), 0.0);
}

// --------------------------------------------------------- table printer ----

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row_numeric("long-label", {2.5}, 1);
  std::ostringstream os;
  t.print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("long-label"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
}

// ----------------------------------------------------------- thread pool ----

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(),
                    [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](size_t) { FAIL(); });
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch w;
  double t0 = w.elapsed_seconds();
  EXPECT_GE(t0, 0.0);
  w.restart();
  EXPECT_LT(w.elapsed_seconds(), 1.0);
}

}  // namespace
}  // namespace ibseg
