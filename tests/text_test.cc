// Unit tests for src/text: tokenizer, sentence splitter, HTML cleaner,
// Porter stemmer, vocabulary, term vectors.

#include <gtest/gtest.h>

#include "text/html_cleaner.h"
#include "text/porter_stemmer.h"
#include "text/sentence_splitter.h"
#include "text/stopwords.h"
#include "text/term_vector.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace ibseg {
namespace {

// ------------------------------------------------------------ tokenizer ----

TEST(Tokenizer, BasicWordsAndPunctuation) {
  auto tokens = tokenize("Hello, world!");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "Hello");
  EXPECT_EQ(tokens[0].lower, "hello");
  EXPECT_EQ(tokens[1].text, ",");
  EXPECT_EQ(tokens[1].kind, TokenKind::kPunctuation);
  EXPECT_EQ(tokens[2].text, "world");
  EXPECT_EQ(tokens[3].text, "!");
}

TEST(Tokenizer, OffsetsAreExact) {
  std::string text = "ab  cd.";
  auto tokens = tokenize(text);
  for (const Token& t : tokens) {
    EXPECT_EQ(text.substr(t.begin, t.end - t.begin), t.text);
  }
}

TEST(Tokenizer, SplitsNegationContraction) {
  auto tokens = tokenize("It didn't work");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].lower, "did");
  EXPECT_EQ(tokens[2].lower, "n't");
  EXPECT_EQ(tokens[3].lower, "work");
}

TEST(Tokenizer, SplitsApostropheClitics) {
  auto tokens = tokenize("I'm sure they'll come");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].lower, "i");
  EXPECT_EQ(tokens[1].lower, "'m");
  EXPECT_EQ(tokens[3].lower, "they");
  EXPECT_EQ(tokens[4].lower, "'ll");
}

TEST(Tokenizer, ContractionSplitCanBeDisabled) {
  TokenizerOptions opts;
  opts.split_contractions = false;
  auto tokens = tokenize("didn't", opts);
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].lower, "didn't");
}

TEST(Tokenizer, NumbersWithUnitsAndDots) {
  auto tokens = tokenize("a 320GB drive and MySQL 5.5.3");
  // "320GB" one number token, "5.5.3" one number token.
  int numbers = 0;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kNumber) {
      ++numbers;
      EXPECT_TRUE(t.text == "320GB" || t.text == "5.5.3") << t.text;
    }
  }
  EXPECT_EQ(numbers, 2);
}

TEST(Tokenizer, HyphenatedWordStaysTogether) {
  auto tokens = tokenize("a pre-installed e-mail");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].lower, "pre-installed");
  EXPECT_EQ(tokens[2].lower, "e-mail");
}

TEST(Tokenizer, EmptyInput) { EXPECT_TRUE(tokenize("").empty()); }

TEST(Tokenizer, WordTokensFiltersNonWords) {
  auto words = word_tokens("The 3 cats!");
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[0], "the");
  EXPECT_EQ(words[1], "cats");
}

// ----------------------------------------------------- sentence splitter ----

std::vector<Sentence> split(const std::string& text) {
  return split_sentences(tokenize(text), text);
}

TEST(SentenceSplitter, SplitsOnTerminators) {
  auto s = split("One. Two! Three?");
  ASSERT_EQ(s.size(), 3u);
}

TEST(SentenceSplitter, AbbreviationDoesNotSplit) {
  auto s = split("Use e.g. a printer. Done.");
  ASSERT_EQ(s.size(), 2u);
}

TEST(SentenceSplitter, TerminatorRunsFoldTogether) {
  auto s = split("Really?! Yes...");
  ASSERT_EQ(s.size(), 2u);
}

TEST(SentenceSplitter, NewlineEndsSentence) {
  auto s = split("no final period here\nAnother line.");
  ASSERT_EQ(s.size(), 2u);
}

TEST(SentenceSplitter, CharSpansCoverTokens) {
  std::string text = "Alpha beta. Gamma delta.";
  auto s = split(text);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].char_begin, 0u);
  EXPECT_GT(s[1].char_begin, s[0].char_end - 1);
}

TEST(SentenceSplitter, EmptyTokens) {
  EXPECT_TRUE(split_sentences({}, "").empty());
}

// --------------------------------------------------------- html cleaner ----

TEST(HtmlCleaner, StripsTagsAndDecodesEntities) {
  EXPECT_EQ(strip_html("<b>bold</b> &amp; <i>x</i>"), "bold & x");
}

TEST(HtmlCleaner, BlockTagsBecomeNewlines) {
  std::string out = strip_html("line one<br>line two<p>line three</p>");
  EXPECT_NE(out.find("line one\nline two"), std::string::npos);
}

TEST(HtmlCleaner, DropsScriptAndStyleContent) {
  std::string out =
      strip_html("keep<script>var x = 1;</script> this<style>p{}</style>");
  EXPECT_EQ(out.find("var x"), std::string::npos);
  EXPECT_NE(out.find("keep"), std::string::npos);
  EXPECT_NE(out.find("this"), std::string::npos);
}

TEST(HtmlCleaner, KeepsCodeContent) {
  std::string out = strip_html("<code>int main()</code>");
  EXPECT_NE(out.find("int main()"), std::string::npos);
}

TEST(HtmlCleaner, NumericEntities) {
  EXPECT_EQ(strip_html("&#65;&#66;"), "AB");
}

TEST(HtmlCleaner, CollapsesWhitespace) {
  EXPECT_EQ(strip_html("a   \t b"), "a b");
}

// -------------------------------------------------------------- stemmer ----

TEST(PorterStemmer, ClassicPairs) {
  // Reference pairs from Porter's paper and the standard test vocabulary.
  EXPECT_EQ(porter_stem("caresses"), "caress");
  EXPECT_EQ(porter_stem("ponies"), "poni");
  EXPECT_EQ(porter_stem("cats"), "cat");
  EXPECT_EQ(porter_stem("feed"), "feed");
  EXPECT_EQ(porter_stem("agreed"), "agre");
  EXPECT_EQ(porter_stem("plastered"), "plaster");
  EXPECT_EQ(porter_stem("motoring"), "motor");
  EXPECT_EQ(porter_stem("conflated"), "conflat");
  EXPECT_EQ(porter_stem("troubled"), "troubl");
  EXPECT_EQ(porter_stem("sized"), "size");
  EXPECT_EQ(porter_stem("hopping"), "hop");
  EXPECT_EQ(porter_stem("falling"), "fall");
  EXPECT_EQ(porter_stem("hissing"), "hiss");
  EXPECT_EQ(porter_stem("happy"), "happi");
  EXPECT_EQ(porter_stem("relational"), "relat");
  EXPECT_EQ(porter_stem("conditional"), "condit");
  EXPECT_EQ(porter_stem("vietnamization"), "vietnam");
  EXPECT_EQ(porter_stem("triplicate"), "triplic");
  EXPECT_EQ(porter_stem("hopefulness"), "hope");
  EXPECT_EQ(porter_stem("goodness"), "good");
  EXPECT_EQ(porter_stem("revival"), "reviv");
  EXPECT_EQ(porter_stem("adjustment"), "adjust");
  EXPECT_EQ(porter_stem("effective"), "effect");
  EXPECT_EQ(porter_stem("probate"), "probat");
  EXPECT_EQ(porter_stem("controll"), "control");
  EXPECT_EQ(porter_stem("roll"), "roll");
}

TEST(PorterStemmer, TenseVariantsShareStem) {
  // The data generator relies on this: all inflections of a verb lemma map
  // to one retrieval term.
  EXPECT_EQ(porter_stem("checked"), porter_stem("checks"));
  EXPECT_EQ(porter_stem("checked"), porter_stem("checking"));
  EXPECT_EQ(porter_stem("installed"), porter_stem("installing"));
  EXPECT_EQ(porter_stem("tried"), porter_stem("tries"));
}

TEST(PorterStemmer, ShortWordsUnchanged) {
  EXPECT_EQ(porter_stem("be"), "be");
  EXPECT_EQ(porter_stem("a"), "a");
}

// ----------------------------------------------------------- vocabulary ----

TEST(Vocabulary, InternIsIdempotent) {
  Vocabulary v;
  TermId a = v.intern("printer");
  TermId b = v.intern("printer");
  EXPECT_EQ(a, b);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v.term(a), "printer");
}

TEST(Vocabulary, FindUnknownReturnsSentinel) {
  Vocabulary v;
  EXPECT_EQ(v.find("ghost"), kInvalidTerm);
  v.intern("real");
  EXPECT_NE(v.find("real"), kInvalidTerm);
}

// ------------------------------------------------------------ stopwords ----

TEST(Stopwords, CommonWordsAreStopwords) {
  EXPECT_TRUE(is_stopword("the"));
  EXPECT_TRUE(is_stopword("n't"));
  EXPECT_FALSE(is_stopword("printer"));
  EXPECT_GT(stopword_count(), 100u);
}

// ---------------------------------------------------------- term vector ----

TEST(TermVector, BuildFiltersStopwordsAndStems) {
  Vocabulary v;
  auto tokens = tokenize("the printers are printing");
  TermVector tv = build_term_vector(tokens, 0, tokens.size(), v);
  // "the"/"are" dropped; printers/printing share the stem "printer"? No:
  // porter: printers->printer, printing->print. Check both present.
  EXPECT_GT(tv.num_terms(), 0u);
  TermId printer = v.find("printer");
  ASSERT_NE(printer, kInvalidTerm);
  EXPECT_DOUBLE_EQ(tv.weight(printer), 1.0);
}

TEST(TermVector, CosineOfIdenticalIsOne) {
  Vocabulary v;
  auto tokens = tokenize("alpha beta gamma");
  TermVector a = build_term_vector(tokens, 0, tokens.size(), v);
  EXPECT_NEAR(TermVector::cosine(a, a), 1.0, 1e-12);
}

TEST(TermVector, CosineOfDisjointIsZero) {
  Vocabulary v;
  TermVector a;
  TermVector b;
  a.add(v.intern("alpha"));
  b.add(v.intern("beta"));
  EXPECT_DOUBLE_EQ(TermVector::cosine(a, b), 0.0);
  EXPECT_DOUBLE_EQ(TermVector::cosine(a, TermVector()), 0.0);
}

TEST(TermVector, MergeAccumulates) {
  Vocabulary v;
  TermVector a;
  TermVector b;
  TermId x = v.intern("x");
  a.add(x, 2.0);
  b.add(x, 3.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.weight(x), 5.0);
  EXPECT_DOUBLE_EQ(a.total_weight(), 5.0);
}

}  // namespace
}  // namespace ibseg
