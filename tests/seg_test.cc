// Unit tests for src/seg: segmentation model, document analysis, diversity
// indices, coherence/depth scoring (paper Eqs. 1-4) and the border
// selection strategies of Sec. 5.3.

#include <gtest/gtest.h>

#include "seg/border_strategies.h"
#include "seg/coherence.h"
#include "seg/diversity.h"
#include "seg/document.h"
#include "seg/segmentation.h"
#include "seg/segmenter.h"
#include "seg/texttiling.h"

namespace ibseg {
namespace {

// A post with two crisply different intentions: present-tense first-person
// description, then past-tense effort report, then questions.
const char* kThreeIntentPost =
    "I have a new laptop with a printer and a scanner. "
    "My system runs with a wireless router and it has a fast drive. "
    "It is a compact model and the printer connects to the scanner. "
    "I called the support and they suggested a reset. "
    "I replaced the cable and installed the update twice. "
    "A friend of mine checked the router and found nothing. "
    "Do you know whether the scanner would degrade the speed? "
    "Can I replace the drive without rebuilding the machine? "
    "What should I do about the router?";

// --------------------------------------------------------- segmentation ----

TEST(Segmentation, SegmentsAndBorders) {
  Segmentation s{10, {3, 7}};
  EXPECT_TRUE(s.is_valid());
  auto segs = s.segments();
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0], (std::pair<size_t, size_t>{0, 3}));
  EXPECT_EQ(segs[1], (std::pair<size_t, size_t>{3, 7}));
  EXPECT_EQ(segs[2], (std::pair<size_t, size_t>{7, 10}));
  EXPECT_EQ(s.num_segments(), 3u);
  EXPECT_EQ(s.segment_of_unit(0), 0u);
  EXPECT_EQ(s.segment_of_unit(3), 1u);
  EXPECT_EQ(s.segment_of_unit(9), 2u);
}

TEST(Segmentation, ValidityChecks) {
  EXPECT_FALSE((Segmentation{5, {0}}).is_valid());   // border at 0
  EXPECT_FALSE((Segmentation{5, {5}}).is_valid());   // border at end
  EXPECT_FALSE((Segmentation{5, {2, 2}}).is_valid()); // duplicate
  EXPECT_FALSE((Segmentation{5, {3, 2}}).is_valid()); // unsorted
  EXPECT_TRUE((Segmentation{5, {}}).is_valid());
}

TEST(Segmentation, AllUnitsAndWhole) {
  Segmentation all = Segmentation::all_units(4);
  EXPECT_EQ(all.borders.size(), 3u);
  EXPECT_EQ(all.num_segments(), 4u);
  Segmentation whole = Segmentation::whole(4);
  EXPECT_EQ(whole.num_segments(), 1u);
}

TEST(Segmentation, BoundaryIndicator) {
  Segmentation s{5, {2}};
  auto gaps = boundary_indicator(s);
  ASSERT_EQ(gaps.size(), 4u);
  EXPECT_EQ(gaps[0], 0);
  EXPECT_EQ(gaps[1], 1);
  EXPECT_EQ(gaps[2], 0);
}

// ------------------------------------------------------------- document ----

TEST(Document, AnalyzeBuildsSentencesAndProfiles) {
  Document d = Document::analyze(7, kThreeIntentPost);
  EXPECT_EQ(d.id(), 7u);
  EXPECT_EQ(d.num_units(), 9u);
  // Prefix-sum range profiles agree with direct accumulation.
  CmProfile direct;
  for (size_t u = 2; u < 5; ++u) direct.merge(d.unit_profile(u));
  CmProfile ranged = d.range_profile(2, 5);
  for (size_t i = 0; i < direct.counts.size(); ++i) {
    EXPECT_NEAR(ranged.counts[i], direct.counts[i], 1e-9);
  }
}

TEST(Document, BorderCharOffsets) {
  Document d = Document::analyze(0, "One two. Three four.");
  ASSERT_EQ(d.num_units(), 2u);
  EXPECT_EQ(d.border_char_offset(0), 0u);
  EXPECT_EQ(d.border_char_offset(1), 9u);  // start of "Three"
  EXPECT_GT(d.border_char_offset(2), d.border_char_offset(1));
}

TEST(Document, RangeText) {
  Document d = Document::analyze(0, "One two. Three four.");
  EXPECT_EQ(d.range_text(1, 2), "Three four.");
  EXPECT_TRUE(d.range_text(1, 1).empty());
}

TEST(Document, EmptyDocument) {
  Document d = Document::analyze(0, "");
  EXPECT_EQ(d.num_units(), 0u);
}

// ------------------------------------------------------------ diversity ----

TEST(Diversity, ShannonBounds) {
  CmProfile p;
  p.add(CmKind::kTense, 0, 5.0);
  // Single value -> zero diversity.
  EXPECT_DOUBLE_EQ(cm_diversity(p, CmKind::kTense, DiversityIndex::kShannon),
                   0.0);
  // Uniform over all 3 values -> maximal (1 after normalization).
  CmProfile u;
  for (int v = 0; v < 3; ++v) u.add(CmKind::kTense, v, 2.0);
  EXPECT_NEAR(cm_diversity(u, CmKind::kTense, DiversityIndex::kShannon), 1.0,
              1e-12);
  // Empty CM -> 0 by convention.
  CmProfile e;
  EXPECT_DOUBLE_EQ(cm_diversity(e, CmKind::kTense, DiversityIndex::kShannon),
                   0.0);
}

TEST(Diversity, RichnessCountsNonZero) {
  CmProfile p;
  p.add(CmKind::kTense, 0, 1.0);
  p.add(CmKind::kTense, 2, 1.0);
  EXPECT_EQ(cm_richness_count(p, CmKind::kTense), 2);
  EXPECT_NEAR(cm_diversity(p, CmKind::kTense, DiversityIndex::kRichness),
              2.0 / 3.0, 1e-12);
}

TEST(Diversity, EvennessUniformIsOne) {
  CmProfile p;
  p.add(CmKind::kTense, 0, 3.0);
  p.add(CmKind::kTense, 1, 3.0);
  EXPECT_NEAR(cm_evenness(p, CmKind::kTense), 1.0, 1e-12);
  // Skewed distribution is less even.
  CmProfile q;
  q.add(CmKind::kTense, 0, 9.0);
  q.add(CmKind::kTense, 1, 1.0);
  EXPECT_LT(cm_evenness(q, CmKind::kTense), 1.0);
}

TEST(Diversity, MoreEvenMeansMoreDiverse) {
  CmProfile skewed;
  skewed.add(CmKind::kTense, 0, 9.0);
  skewed.add(CmKind::kTense, 1, 1.0);
  CmProfile even;
  even.add(CmKind::kTense, 0, 5.0);
  even.add(CmKind::kTense, 1, 5.0);
  EXPECT_LT(cm_diversity(skewed, CmKind::kTense, DiversityIndex::kShannon),
            cm_diversity(even, CmKind::kTense, DiversityIndex::kShannon));
}

// ------------------------------------------------------ coherence/depth ----

TEST(Coherence, PureSegmentIsFullyCoherent) {
  CmProfile p;
  p.add(CmKind::kTense, 0, 4.0);
  p.add(CmKind::kSubject, 0, 2.0);
  SegScoring scoring;
  EXPECT_NEAR(segment_coherence(p, scoring), 1.0, 1e-12);
}

TEST(Coherence, MixedSegmentLessCoherent) {
  CmProfile mixed;
  for (int v = 0; v < 3; ++v) mixed.add(CmKind::kTense, v, 2.0);
  SegScoring scoring;
  EXPECT_LT(segment_coherence(mixed, scoring), 1.0);
}

TEST(Coherence, CmMaskRestrictsCms) {
  CmProfile p;
  for (int v = 0; v < 3; ++v) p.add(CmKind::kTense, v, 2.0);  // diverse tense
  p.add(CmKind::kSubject, 0, 5.0);                            // pure subject
  SegScoring tense_only;
  tense_only.cm_mask = 1u << static_cast<int>(CmKind::kTense);
  SegScoring subject_only;
  subject_only.cm_mask = 1u << static_cast<int>(CmKind::kSubject);
  EXPECT_LT(segment_coherence(p, tense_only),
            segment_coherence(p, subject_only));
}

TEST(Depth, DifferentSidesAreDeeperThanSameSides) {
  CmProfile past;
  past.add(CmKind::kTense, 1, 4.0);
  CmProfile present;
  present.add(CmKind::kTense, 0, 4.0);
  SegScoring scoring;
  double deep = border_depth(past, present, scoring);
  double flat = border_depth(past, past, scoring);
  EXPECT_GT(deep, flat);
  EXPECT_NEAR(flat, 0.0, 1e-9);
}

TEST(Depth, DistanceVariantsAgreeOnOrdering) {
  CmProfile past;
  past.add(CmKind::kTense, 1, 4.0);
  CmProfile present;
  present.add(CmKind::kTense, 0, 4.0);
  for (DepthFn fn : {DepthFn::kCosine, DepthFn::kEuclidean,
                     DepthFn::kManhattan}) {
    SegScoring scoring;
    scoring.depth = fn;
    EXPECT_GT(border_depth(past, present, scoring),
              border_depth(past, past, scoring))
        << static_cast<int>(fn);
  }
}

TEST(BorderScore, AveragesThreeComponents) {
  CmProfile past;
  past.add(CmKind::kTense, 1, 4.0);
  CmProfile present;
  present.add(CmKind::kTense, 0, 4.0);
  SegScoring scoring;
  double score = border_score(past, present, scoring);
  double expected = (segment_coherence(past, scoring) +
                     segment_coherence(present, scoring) +
                     border_depth(past, present, scoring)) /
                    3.0;
  EXPECT_DOUBLE_EQ(score, expected);
}

// ---------------------------------------------------- border strategies ----

TEST(BorderStrategies, AllStrategiesProduceValidSegmentations) {
  Document d = Document::analyze(0, kThreeIntentPost);
  for (BorderStrategyKind kind :
       {BorderStrategyKind::kTile, BorderStrategyKind::kStepByStep,
        BorderStrategyKind::kGreedy, BorderStrategyKind::kSentences}) {
    Segmentation s = select_borders(d, kind);
    EXPECT_TRUE(s.is_valid()) << border_strategy_name(kind);
    EXPECT_EQ(s.num_units, d.num_units());
  }
}

TEST(BorderStrategies, SentencesStrategyKeepsEveryBorder) {
  Document d = Document::analyze(0, kThreeIntentPost);
  Segmentation s = select_borders(d, BorderStrategyKind::kSentences);
  EXPECT_EQ(s.num_segments(), d.num_units());
}

TEST(BorderStrategies, TinyDocumentsReturnWhole) {
  Document one = Document::analyze(0, "Only one sentence here.");
  for (BorderStrategyKind kind :
       {BorderStrategyKind::kTile, BorderStrategyKind::kStepByStep,
        BorderStrategyKind::kGreedy}) {
    Segmentation s = select_borders(one, kind);
    EXPECT_TRUE(s.borders.empty()) << border_strategy_name(kind);
  }
  Document empty = Document::analyze(0, "");
  EXPECT_EQ(select_borders(empty, BorderStrategyKind::kGreedy).num_segments(),
            0u);
}

TEST(BorderStrategies, TileMergesSomething) {
  Document d = Document::analyze(0, kThreeIntentPost);
  Segmentation s = select_borders(d, BorderStrategyKind::kTile);
  EXPECT_LT(s.borders.size(), d.num_units() - 1);
}

TEST(BorderStrategies, ScoreBordersMatchesBorderCount) {
  Document d = Document::analyze(0, kThreeIntentPost);
  Segmentation s = select_borders(d, BorderStrategyKind::kSentences);
  auto scores = score_borders(d, s, SegScoring{});
  EXPECT_EQ(scores.size(), s.borders.size());
}

TEST(BorderStrategies, MeanSegmentCoherenceInUnitRange) {
  Document d = Document::analyze(0, kThreeIntentPost);
  Segmentation s = select_borders(d, BorderStrategyKind::kGreedy);
  double c = mean_segment_coherence(d, s, SegScoring{});
  EXPECT_GE(c, 0.0);
  EXPECT_LE(c, 1.0);
}

// ------------------------------------------------------------ texttiling ----

TEST(TextTiling, ValidOnRealisticPost) {
  Document d = Document::analyze(0, kThreeIntentPost);
  Vocabulary vocab;
  Segmentation s = texttiling_segment(d, vocab);
  EXPECT_TRUE(s.is_valid());
  EXPECT_EQ(s.num_units, d.num_units());
}

TEST(TextTiling, TinyDocReturnsWhole) {
  Document d = Document::analyze(0, "Single sentence.");
  Vocabulary vocab;
  EXPECT_TRUE(texttiling_segment(d, vocab).borders.empty());
}

TEST(CmTiling, ValidAndFindsIntentShift) {
  Document d = Document::analyze(0, kThreeIntentPost);
  Segmentation s = cm_tiling_segment(d);
  EXPECT_TRUE(s.is_valid());
  // The post has 3 clear intention blocks; expect at least one border.
  EXPECT_GE(s.borders.size(), 1u);
}

// -------------------------------------------------------------- facade ----

TEST(Segmenter, FacadeNamesAndBehaviour) {
  Document d = Document::analyze(0, kThreeIntentPost);
  Vocabulary vocab;
  EXPECT_EQ(Segmenter::sentences().segment(d, vocab).num_segments(),
            d.num_units());
  EXPECT_EQ(Segmenter::intention().name(), "Intention/Greedy");
  EXPECT_EQ(Segmenter::topical().name(), "Topical/TextTiling");
  EXPECT_EQ(Segmenter::cm_tiling().name(), "Intention/CmTiling");
  EXPECT_TRUE(Segmenter::cm_tiling().segment(d, vocab).is_valid());
}

}  // namespace
}  // namespace ibseg
