// Tests for the later additions: OPTICS, the C99 segmenter, the Unicode
// punctuation normalizer, the Sec. 5.1 feature-selection utility and the
// pipeline snapshot integration.

#include <gtest/gtest.h>

#include "cluster/optics.h"
#include "core/pipeline.h"
#include "datagen/post_generator.h"
#include "seg/c99.h"
#include "seg/feature_selection.h"
#include "text/normalizer.h"
#include "util/rng.h"

namespace ibseg {
namespace {

// ----------------------------------------------------------------- optics ----

std::vector<std::vector<double>> three_blobs(size_t per_blob) {
  Rng rng(14);
  std::vector<std::vector<double>> points;
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (auto& center : centers) {
    for (size_t i = 0; i < per_blob; ++i) {
      points.push_back({center[0] + rng.next_gaussian(0, 0.3),
                        center[1] + rng.next_gaussian(0, 0.3)});
    }
  }
  return points;
}

TEST(Optics, OrderingCoversAllPoints) {
  auto points = three_blobs(30);
  OpticsParams params;
  params.min_pts = 5;
  OpticsResult result = optics(points, params);
  EXPECT_EQ(result.ordering.size(), points.size());
  EXPECT_EQ(result.reachability.size(), points.size());
  std::vector<bool> seen(points.size(), false);
  for (size_t p : result.ordering) {
    ASSERT_LT(p, points.size());
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }
}

TEST(Optics, ExtractionRecoversThreeBlobs) {
  auto points = three_blobs(40);
  OpticsParams params;
  params.min_pts = 5;
  params.eps = 5.0;
  OpticsResult result = optics(points, params);
  DbscanResult clusters =
      extract_dbscan_clustering(result, points.size(), 1.5);
  EXPECT_EQ(clusters.num_clusters, 3);
  for (size_t b = 0; b < 3; ++b) {
    int label = clusters.labels[b * 40];
    EXPECT_GE(label, 0);
    for (size_t i = 1; i < 40; ++i) {
      EXPECT_EQ(clusters.labels[b * 40 + i], label) << b << "/" << i;
    }
  }
}

TEST(Optics, ExtractionMatchesDbscanStructure) {
  // At the same radius, OPTICS extraction and DBSCAN agree on the blob
  // partition (labels may be permuted).
  auto points = three_blobs(25);
  OpticsParams op;
  op.min_pts = 5;
  op.eps = 5.0;
  auto extracted = extract_dbscan_clustering(optics(points, op),
                                             points.size(), 1.5);
  DbscanParams dp;
  dp.min_pts = 5;
  dp.eps = 1.5;
  auto direct = dbscan(points, dp);
  EXPECT_EQ(extracted.num_clusters, direct.num_clusters);
  // Same co-membership relation.
  for (size_t i = 0; i < points.size(); i += 7) {
    for (size_t j = i + 1; j < points.size(); j += 11) {
      bool same_a = extracted.labels[i] == extracted.labels[j] &&
                    extracted.labels[i] >= 0;
      bool same_b = direct.labels[i] == direct.labels[j] &&
                    direct.labels[i] >= 0;
      EXPECT_EQ(same_a, same_b) << i << "," << j;
    }
  }
}

TEST(Optics, TightCutMakesIsolatedPointNoise) {
  auto points = three_blobs(20);
  points.push_back({100.0, 100.0});
  OpticsParams params;
  params.min_pts = 5;
  params.eps = 3.0;
  auto clusters = extract_dbscan_clustering(optics(points, params),
                                            points.size(), 1.0);
  EXPECT_EQ(clusters.labels.back(), kNoise);
}

TEST(Optics, EmptyInput) {
  OpticsResult r = optics({}, {});
  EXPECT_TRUE(r.ordering.empty());
  DbscanResult c = extract_dbscan_clustering(r, 0, 1.0);
  EXPECT_EQ(c.num_clusters, 0);
}

// -------------------------------------------------------------------- c99 ----

TEST(C99, ValidSegmentationOnGeneratedPosts) {
  GeneratorOptions gen;
  gen.num_posts = 30;
  gen.seed = 61;
  SyntheticCorpus corpus = generate_corpus(gen);
  Vocabulary vocab;
  for (const Document& doc : analyze_corpus(corpus)) {
    Segmentation seg = c99_segment(doc, vocab);
    EXPECT_TRUE(seg.is_valid());
    EXPECT_EQ(seg.num_units, doc.num_units());
  }
}

TEST(C99, FindsStrongLexicalShift) {
  // Two halves with disjoint vocabularies: C99 must place a border at the
  // midpoint.
  Document doc = Document::analyze(
      0,
      "The printer cartridge leaked ink today. The printer tray jammed "
      "with paper again. New ink for the printer costs a fortune. The "
      "cartridge smears ink on every page. "
      "Our holiday beach had golden sand. The waves reached the shore at "
      "noon. Umbrellas covered the beach sand completely. The shore "
      "promenade was lovely at sunset.");
  Vocabulary vocab;
  C99Options options;
  options.max_segments = 2;
  Segmentation seg = c99_segment(doc, vocab, options);
  ASSERT_EQ(seg.borders.size(), 1u);
  EXPECT_EQ(seg.borders[0], 4u);
}

TEST(C99, TinyDocumentWhole) {
  Document doc = Document::analyze(0, "One sentence only.");
  Vocabulary vocab;
  EXPECT_TRUE(c99_segment(doc, vocab).borders.empty());
}

TEST(C99, MaxSegmentsRespected) {
  GeneratorOptions gen;
  gen.num_posts = 10;
  gen.seed = 62;
  SyntheticCorpus corpus = generate_corpus(gen);
  Vocabulary vocab;
  C99Options options;
  options.max_segments = 2;
  options.threshold_stddev_factor = -100.0;  // never stop early
  for (const Document& doc : analyze_corpus(corpus)) {
    Segmentation seg = c99_segment(doc, vocab, options);
    EXPECT_LE(seg.num_segments(), 2u);
  }
}

// -------------------------------------------------------------- normalizer ----

TEST(Normalizer, SmartPunctuationToAscii) {
  EXPECT_EQ(normalize_punctuation("it\xE2\x80\x99s \xE2\x80\x9C"
                                  "fine\xE2\x80\x9D"),
            "it's \"fine\"");
  EXPECT_EQ(normalize_punctuation("a \xE2\x80\x93 b \xE2\x80\x94 c"),
            "a - b - c");
  EXPECT_EQ(normalize_punctuation("wait\xE2\x80\xA6"), "wait...");
}

TEST(Normalizer, UnknownCodepointsBecomeOneSpace) {
  // U+1F600 emoji (4 bytes) -> exactly one space.
  EXPECT_EQ(normalize_punctuation("a\xF0\x9F\x98\x80z"), "a z");
  // Latin-1 accented e (2 bytes) -> one space (ASCII pipeline).
  EXPECT_EQ(normalize_punctuation("caf\xC3\xA9"), "caf ");
}

TEST(Normalizer, AsciiPassesThrough) {
  std::string ascii = "plain ASCII text, 100% safe!";
  EXPECT_EQ(normalize_punctuation(ascii), ascii);
}

TEST(Normalizer, NormalizedApostropheFeedsTokenizer) {
  std::string text = normalize_punctuation("I didn\xE2\x80\x99t sleep");
  auto tokens = tokenize(text);
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[2].lower, "n't");
}

// -------------------------------------------------------- feature selection ----

TEST(FeatureSelection, CoherenceGainPositiveForTrueBorders) {
  GeneratorOptions gen;
  gen.num_posts = 25;
  gen.seed = 63;
  SyntheticCorpus corpus = generate_corpus(gen);
  std::vector<Document> docs = analyze_corpus(corpus);
  double total = 0.0;
  size_t counted = 0;
  for (size_t d = 0; d < docs.size(); ++d) {
    if (corpus.posts[d].true_segmentation.borders.empty()) continue;
    total += coherence_gain(docs[d], corpus.posts[d].true_segmentation);
    ++counted;
  }
  ASSERT_GT(counted, 0u);
  EXPECT_GT(total / counted, 0.0);
}

TEST(FeatureSelection, RanksAllThirtyOneSubsets) {
  GeneratorOptions gen;
  gen.num_posts = 12;
  gen.seed = 64;
  std::vector<Document> docs = analyze_corpus(generate_corpus(gen));
  auto ranked = rank_cm_subsets(docs);
  ASSERT_EQ(ranked.size(), 31u);
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].mean_gain, ranked[i].mean_gain);
  }
  std::set<unsigned> masks;
  for (const CmSubsetScore& s : ranked) masks.insert(s.cm_mask);
  EXPECT_EQ(masks.size(), 31u);
}

TEST(FeatureSelection, MaskNames) {
  EXPECT_EQ(cm_mask_name(1u << static_cast<int>(CmKind::kTense)), "Tense");
  EXPECT_EQ(cm_mask_name(0), "(none)");
  EXPECT_NE(cm_mask_name(0x1F).find("+"), std::string::npos);
}

// --------------------------------------------------------- pipeline snapshot ----

TEST(PipelineSnapshot, RoundTripThroughPipeline) {
  GeneratorOptions gen;
  gen.num_posts = 50;
  gen.seed = 65;
  SyntheticCorpus corpus = generate_corpus(gen);

  RelatedPostPipeline original =
      RelatedPostPipeline::build(analyze_corpus(corpus));
  PipelineSnapshot snap = original.snapshot();
  EXPECT_TRUE(snap.is_consistent());

  RelatedPostPipeline restored = RelatedPostPipeline::build_from_snapshot(
      analyze_corpus(corpus), snap);
  EXPECT_EQ(restored.clustering().num_clusters(),
            original.clustering().num_clusters());
  for (DocId q = 0; q < 50; q += 9) {
    auto a = original.find_related(q, 5);
    auto b = restored.find_related(q, 5);
    ASSERT_EQ(a.size(), b.size()) << q;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].doc, b[i].doc);
      EXPECT_NEAR(a[i].score, b[i].score, 1e-9);
    }
  }
}

TEST(PipelineSnapshot, MismatchedSnapshotFallsBackToFreshBuild) {
  GeneratorOptions gen;
  gen.num_posts = 20;
  gen.seed = 66;
  SyntheticCorpus corpus = generate_corpus(gen);
  PipelineSnapshot bogus;  // empty: inconsistent with any corpus
  RelatedPostPipeline p = RelatedPostPipeline::build_from_snapshot(
      analyze_corpus(corpus), bogus);
  EXPECT_GE(p.clustering().num_clusters(), 1);
}

}  // namespace
}  // namespace ibseg
