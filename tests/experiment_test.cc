// Tests for the experiment harness (core/experiment).

#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.h"

namespace ibseg {
namespace {

struct Fixture {
  SyntheticCorpus corpus;
  std::vector<Document> docs;
};

Fixture make_setup() {
  Fixture s;
  GeneratorOptions gen;
  gen.num_posts = 60;
  gen.posts_per_scenario = 4;
  gen.seed = 55;
  s.corpus = generate_corpus(gen);
  s.docs = analyze_corpus(s.corpus);
  return s;
}

TEST(Experiment, RunsRequestedMethods) {
  Fixture s = make_setup();
  ExperimentOptions options;
  options.methods = {MethodKind::kFullText, MethodKind::kIntentIntentMR};
  options.k = 5;
  options.query_stride = 3;
  auto reports = run_experiment(s.corpus, s.docs, options);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].method, "FullText");
  EXPECT_EQ(reports[1].method, "IntentIntent-MR");
  size_t expected_queries = (s.docs.size() + 2) / 3;
  for (const MethodReport& r : reports) {
    EXPECT_EQ(r.queries.size(), expected_queries);
    EXPECT_EQ(r.precision.per_query.size(), expected_queries);
    EXPECT_GE(r.precision.mean, 0.0);
    EXPECT_LE(r.precision.mean, 1.0);
    EXPECT_GE(r.avg_query_ms, 0.0);
    for (const QueryResult& q : r.queries) {
      EXPECT_LE(q.retrieved.size(), 5u);
      for (const ScoredDoc& sd : q.retrieved) EXPECT_NE(sd.doc, q.query);
    }
  }
}

TEST(Experiment, RecallAndF1Bounds) {
  Fixture s = make_setup();
  ExperimentOptions options;
  options.methods = {MethodKind::kFullText, MethodKind::kRandom};
  auto reports = run_experiment(s.corpus, s.docs, options);
  ASSERT_EQ(reports.size(), 2u);
  for (const MethodReport& r : reports) {
    EXPECT_GE(r.mean_recall, 0.0);
    EXPECT_LE(r.mean_recall, 1.0);
    EXPECT_GE(r.mean_f1, 0.0);
    EXPECT_LE(r.mean_f1, 1.0);
    for (const QueryResult& q : r.queries) {
      EXPECT_GE(q.recall, 0.0);
      EXPECT_LE(q.recall, 1.0);
    }
  }
  // A real matcher recalls far more than chance.
  EXPECT_GT(reports[0].mean_recall, reports[1].mean_recall);
}

TEST(Experiment, PrecisionConsistentWithQueryResults) {
  Fixture s = make_setup();
  ExperimentOptions options;
  options.methods = {MethodKind::kFullText};
  auto reports = run_experiment(s.corpus, s.docs, options);
  ASSERT_EQ(reports.size(), 1u);
  for (const QueryResult& q : reports[0].queries) {
    size_t hits = 0;
    for (const ScoredDoc& sd : q.retrieved) {
      if (s.corpus.posts[sd.doc].scenario_id ==
          s.corpus.posts[q.query].scenario_id) {
        ++hits;
      }
    }
    double expected = q.retrieved.empty()
                          ? 0.0
                          : static_cast<double>(hits) / q.retrieved.size();
    EXPECT_DOUBLE_EQ(q.precision, expected);
  }
}

TEST(Experiment, CsvContainsEveryRetrievedRow) {
  Fixture s = make_setup();
  ExperimentOptions options;
  options.methods = {MethodKind::kFullText};
  options.query_stride = 5;
  auto reports = run_experiment(s.corpus, s.docs, options);
  std::ostringstream os;
  ASSERT_TRUE(write_experiment_csv(reports, s.corpus, os));
  std::string csv = os.str();
  EXPECT_NE(csv.find("method,query,precision,rank,doc,score,relevant"),
            std::string::npos);
  size_t expected_rows = 0;
  for (const QueryResult& q : reports[0].queries) {
    expected_rows += q.retrieved.empty() ? 1 : q.retrieved.size();
  }
  size_t lines = 0;
  for (char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, expected_rows + 1);  // + header
}

}  // namespace
}  // namespace ibseg
