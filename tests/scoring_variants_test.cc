// Tests for the pluggable segment comparators (paper Sec. 7: "any text
// comparison, e.g. ... IR techniques may be employed"): BM25 and the
// Jelinek-Mercer query-likelihood model next to the paper's Eq. 9, plus
// the external-query entry point.

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/intention_clusters.h"
#include "index/fulltext_matcher.h"
#include "index/intention_matcher.h"
#include "index/inverted_index.h"
#include "index/scoring.h"
#include "seg/segmenter.h"

namespace ibseg {
namespace {

TermVector tv(Vocabulary& vocab,
              std::initializer_list<std::pair<const char*, double>> terms) {
  TermVector out;
  for (const auto& [term, weight] : terms) out.add(vocab.intern(term), weight);
  return out;
}

struct SmallIndex {
  Vocabulary vocab;
  InvertedIndex index;
  uint32_t strong = 0;  // shares 2 query terms
  uint32_t weak = 0;    // shares 1
};

SmallIndex make_index() {
  SmallIndex s;
  s.strong = s.index.add_unit(tv(s.vocab, {{"printer", 2.0}, {"ink", 1.0},
                                           {"tray", 1.0}}));
  s.weak = s.index.add_unit(tv(s.vocab, {{"printer", 1.0}, {"fan", 2.0}}));
  s.index.add_unit(tv(s.vocab, {{"router", 1.0}, {"wifi", 1.0}}));
  s.index.add_unit(tv(s.vocab, {{"battery", 2.0}, {"plug", 1.0}}));
  s.index.finalize();
  return s;
}

class ScorerCase : public ::testing::TestWithParam<ScoringFunction> {};

TEST_P(ScorerCase, RanksStrongerOverlapHigher) {
  SmallIndex s = make_index();
  ScoringOptions options;
  options.function = GetParam();
  TermVector query = tv(s.vocab, {{"printer", 1.0}, {"ink", 1.0}});
  auto hits = score_units(s.index, query, options);
  keep_top_n(hits, 10);
  ASSERT_GE(hits.size(), 2u);
  EXPECT_EQ(hits[0].unit, s.strong);
  EXPECT_EQ(hits[1].unit, s.weak);
  for (const ScoredUnit& h : hits) EXPECT_GT(h.score, 0.0);
}

TEST_P(ScorerCase, NoOverlapNoHits) {
  SmallIndex s = make_index();
  ScoringOptions options;
  options.function = GetParam();
  auto hits = score_units(s.index, tv(s.vocab, {{"ghost", 1.0}}), options);
  EXPECT_TRUE(hits.empty());
}

INSTANTIATE_TEST_SUITE_P(AllScorers, ScorerCase,
                         ::testing::Values(ScoringFunction::kPaperTfIdf,
                                           ScoringFunction::kBm25,
                                           ScoringFunction::kQueryLikelihood));

TEST(Bm25, HandComputedSingleTerm) {
  Vocabulary vocab;
  InvertedIndex index;
  TermVector u0;
  TermId t = vocab.intern("t");
  u0.add(t, 3.0);
  u0.add(vocab.intern("x"), 1.0);  // len 4
  uint32_t unit0 = index.add_unit(u0);
  TermVector u1;
  u1.add(vocab.intern("y"), 4.0);  // len 4
  index.add_unit(u1);
  index.finalize();
  ASSERT_DOUBLE_EQ(index.avg_unit_length(), 4.0);

  ScoringOptions options;
  options.function = ScoringFunction::kBm25;
  TermVector q;
  q.add(t, 1.0);
  auto hits = score_units(index, q, options);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].unit, unit0);
  // idf = log(1 + (2 - 1 + 0.5)/(1 + 0.5)) = log(2);
  // tf-part = 3*(1.2+1)/(3 + 1.2*(1 - 0.75 + 0.75*4/4)) = 6.6/4.2.
  double expected = std::log(2.0) * (3.0 * 2.2) / (3.0 + 1.2);
  EXPECT_NEAR(hits[0].score, expected, 1e-12);
}

TEST(QueryLikelihood, HandComputedSingleTerm) {
  Vocabulary vocab;
  InvertedIndex index;
  TermId t = vocab.intern("t");
  TermVector u0;
  u0.add(t, 2.0);
  u0.add(vocab.intern("x"), 2.0);  // len 4, p(t|u0) = 0.5
  uint32_t unit0 = index.add_unit(u0);
  TermVector u1;
  u1.add(vocab.intern("y"), 4.0);  // len 4
  index.add_unit(u1);
  index.finalize();
  // Collection: len 8, ctf(t) = 2 -> p(t|C) = 0.25.
  ScoringOptions options;
  options.function = ScoringFunction::kQueryLikelihood;
  options.lm_lambda = 0.5;
  TermVector q;
  q.add(t, 2.0);
  auto hits = score_units(index, q, options);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].unit, unit0);
  double expected = 2.0 * std::log(1.0 + (0.5 * 0.5) / (0.5 * 0.25));
  EXPECT_NEAR(hits[0].score, expected, 1e-12);
}

TEST(IndexStats, LengthsAndCollectionTf) {
  SmallIndex s = make_index();
  EXPECT_DOUBLE_EQ(s.index.unit_length(s.strong), 4.0);
  EXPECT_DOUBLE_EQ(s.index.collection_tf(s.vocab.find("printer")), 3.0);
  EXPECT_DOUBLE_EQ(s.index.collection_length(), 4.0 + 3.0 + 2.0 + 3.0);
  EXPECT_NEAR(s.index.avg_unit_length(), 3.0, 1e-12);
}

// --------------------------------------------------------- external query ----

TEST(ExternalQuery, FindsRelatedWithoutIngesting) {
  // Corpus of topic pairs, as in index_test.
  std::vector<std::string> topics = {"printer", "printer", "router",
                                     "router"};
  std::vector<Document> docs;
  for (size_t i = 0; i < topics.size(); ++i) {
    docs.push_back(Document::analyze(
        static_cast<DocId>(i),
        "I have a fast laptop and it runs the usual setup. "
        "Can you replace the " + topics[i] + "? "
        "What should I do about the " + topics[i] + "?"));
  }
  std::vector<Segmentation> segs(docs.size());
  std::vector<int> labels;
  for (size_t d = 0; d < docs.size(); ++d) {
    segs[d] = Segmentation{docs[d].num_units(), {1}};
    labels.push_back(0);
    labels.push_back(1);
  }
  auto clustering = IntentionClustering::from_labels(docs, segs, labels, 2);
  Vocabulary vocab;
  auto matcher = IntentionMatcher::build(docs, clustering, vocab);
  size_t segments_before = matcher.num_segments();

  Document external = Document::analyze(
      999, "My machine is mostly fine. Should I replace the router today?");
  Segmentation ext_seg{external.num_units(), {1}};
  auto related = matcher.find_related_external(
      external, ext_seg, clustering.centroids(), vocab, 2);
  ASSERT_FALSE(related.empty());
  EXPECT_TRUE(related[0].doc == 2u || related[0].doc == 3u)
      << "router posts should win, got " << related[0].doc;
  // Nothing ingested.
  EXPECT_EQ(matcher.num_segments(), segments_before);
  EXPECT_TRUE(matcher.find_related(999, 2).empty());
}

}  // namespace
}  // namespace ibseg
