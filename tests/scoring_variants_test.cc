// Tests for the pluggable segment comparators (paper Sec. 7: "any text
// comparison, e.g. ... IR techniques may be employed"): BM25 and the
// Jelinek-Mercer query-likelihood model next to the paper's Eq. 9, plus
// the external-query entry point.

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/intention_clusters.h"
#include "index/fulltext_matcher.h"
#include "index/intention_matcher.h"
#include "index/inverted_index.h"
#include "index/scoring.h"
#include "seg/segmenter.h"

namespace ibseg {
namespace {

TermVector tv(Vocabulary& vocab,
              std::initializer_list<std::pair<const char*, double>> terms) {
  TermVector out;
  for (const auto& [term, weight] : terms) out.add(vocab.intern(term), weight);
  return out;
}

struct SmallIndex {
  Vocabulary vocab;
  InvertedIndex index;
  uint32_t strong = 0;  // shares 2 query terms
  uint32_t weak = 0;    // shares 1
};

SmallIndex make_index() {
  SmallIndex s;
  s.strong = s.index.add_unit(tv(s.vocab, {{"printer", 2.0}, {"ink", 1.0},
                                           {"tray", 1.0}}));
  s.weak = s.index.add_unit(tv(s.vocab, {{"printer", 1.0}, {"fan", 2.0}}));
  s.index.add_unit(tv(s.vocab, {{"router", 1.0}, {"wifi", 1.0}}));
  s.index.add_unit(tv(s.vocab, {{"battery", 2.0}, {"plug", 1.0}}));
  s.index.finalize();
  return s;
}

class ScorerCase : public ::testing::TestWithParam<ScoringFunction> {};

TEST_P(ScorerCase, RanksStrongerOverlapHigher) {
  SmallIndex s = make_index();
  ScoringOptions options;
  options.function = GetParam();
  TermVector query = tv(s.vocab, {{"printer", 1.0}, {"ink", 1.0}});
  auto hits = score_units(s.index, query, options);
  keep_top_n(hits, 10);
  ASSERT_GE(hits.size(), 2u);
  EXPECT_EQ(hits[0].unit, s.strong);
  EXPECT_EQ(hits[1].unit, s.weak);
  for (const ScoredUnit& h : hits) EXPECT_GT(h.score, 0.0);
}

TEST_P(ScorerCase, NoOverlapNoHits) {
  SmallIndex s = make_index();
  ScoringOptions options;
  options.function = GetParam();
  auto hits = score_units(s.index, tv(s.vocab, {{"ghost", 1.0}}), options);
  EXPECT_TRUE(hits.empty());
}

INSTANTIATE_TEST_SUITE_P(AllScorers, ScorerCase,
                         ::testing::Values(ScoringFunction::kPaperTfIdf,
                                           ScoringFunction::kBm25,
                                           ScoringFunction::kQueryLikelihood));

TEST(Bm25, HandComputedSingleTerm) {
  Vocabulary vocab;
  InvertedIndex index;
  TermVector u0;
  TermId t = vocab.intern("t");
  u0.add(t, 3.0);
  u0.add(vocab.intern("x"), 1.0);  // len 4
  uint32_t unit0 = index.add_unit(u0);
  TermVector u1;
  u1.add(vocab.intern("y"), 4.0);  // len 4
  index.add_unit(u1);
  index.finalize();
  ASSERT_DOUBLE_EQ(index.avg_unit_length(), 4.0);

  ScoringOptions options;
  options.function = ScoringFunction::kBm25;
  TermVector q;
  q.add(t, 1.0);
  auto hits = score_units(index, q, options);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].unit, unit0);
  // idf = log(1 + (2 - 1 + 0.5)/(1 + 0.5)) = log(2);
  // tf-part = 3*(1.2+1)/(3 + 1.2*(1 - 0.75 + 0.75*4/4)) = 6.6/4.2.
  double expected = std::log(2.0) * (3.0 * 2.2) / (3.0 + 1.2);
  EXPECT_NEAR(hits[0].score, expected, 1e-12);
}

TEST(QueryLikelihood, HandComputedSingleTerm) {
  Vocabulary vocab;
  InvertedIndex index;
  TermId t = vocab.intern("t");
  TermVector u0;
  u0.add(t, 2.0);
  u0.add(vocab.intern("x"), 2.0);  // len 4, p(t|u0) = 0.5
  uint32_t unit0 = index.add_unit(u0);
  TermVector u1;
  u1.add(vocab.intern("y"), 4.0);  // len 4
  index.add_unit(u1);
  index.finalize();
  // Collection: len 8, ctf(t) = 2 -> p(t|C) = 0.25.
  ScoringOptions options;
  options.function = ScoringFunction::kQueryLikelihood;
  options.lm_lambda = 0.5;
  TermVector q;
  q.add(t, 2.0);
  auto hits = score_units(index, q, options);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].unit, unit0);
  double expected = 2.0 * std::log(1.0 + (0.5 * 0.5) / (0.5 * 0.25));
  EXPECT_NEAR(hits[0].score, expected, 1e-12);
}

TEST(IndexStats, LengthsAndCollectionTf) {
  SmallIndex s = make_index();
  EXPECT_DOUBLE_EQ(s.index.unit_length(s.strong), 4.0);
  EXPECT_DOUBLE_EQ(s.index.collection_tf(s.vocab.find("printer")), 3.0);
  EXPECT_DOUBLE_EQ(s.index.collection_length(), 4.0 + 3.0 + 2.0 + 3.0);
  EXPECT_NEAR(s.index.avg_unit_length(), 3.0, 1e-12);
}

// --------------------------------------------------------- external query ----

TEST(ExternalQuery, FindsRelatedWithoutIngesting) {
  // Corpus of topic pairs, as in index_test.
  std::vector<std::string> topics = {"printer", "printer", "router",
                                     "router"};
  std::vector<Document> docs;
  for (size_t i = 0; i < topics.size(); ++i) {
    docs.push_back(Document::analyze(
        static_cast<DocId>(i),
        "I have a fast laptop and it runs the usual setup. "
        "Can you replace the " + topics[i] + "? "
        "What should I do about the " + topics[i] + "?"));
  }
  std::vector<Segmentation> segs(docs.size());
  std::vector<int> labels;
  for (size_t d = 0; d < docs.size(); ++d) {
    segs[d] = Segmentation{docs[d].num_units(), {1}};
    labels.push_back(0);
    labels.push_back(1);
  }
  auto clustering = IntentionClustering::from_labels(docs, segs, labels, 2);
  Vocabulary vocab;
  auto matcher = IntentionMatcher::build(docs, clustering, vocab);
  size_t segments_before = matcher.num_segments();

  Document external = Document::analyze(
      999, "My machine is mostly fine. Should I replace the router today?");
  Segmentation ext_seg{external.num_units(), {1}};
  auto related = matcher.find_related_external(
      external, ext_seg, clustering.centroids(), vocab, 2);
  ASSERT_FALSE(related.empty());
  EXPECT_TRUE(related[0].doc == 2u || related[0].doc == 3u)
      << "router posts should win, got " << related[0].doc;
  // Nothing ingested.
  EXPECT_EQ(matcher.num_segments(), segments_before);
  EXPECT_TRUE(matcher.find_related(999, 2).empty());
}

// ------------------------------------- per-intention relatedness golden ----

// Hand-computed end-to-end golden for Algorithm 1 + Algorithm 2 over two
// intention clusters. Number tokens are interned verbatim (no stemming, no
// stopword filtering), so the exact term bags — and therefore every Eq. 8
// weight and Eq. 9 score — are derivable on paper:
//
//   cluster 0 (first sentence of each doc):
//     d0: {11:4, 12:1}   d1: {11:1, 13:1, 14:1}   d2: {12:2, 13:1}
//   cluster 1 (second sentence):
//     d0: {21:1, 22:1}   d1: {21:2, 23:1}         d2: {22:1, 24:1}
//
// Querying d0 (min_norm_fraction = 0, i.e. the formulas as printed):
//   cluster 0, pidf(3,2) = ln(1.5)/2.5:
//     scr(d1) = 2 * (1/3.6428571428571428) * pidf = 0.08904331785904787
//     scr(d2) = 1 * ((ln2+1)/2.4045956969285225) * pidf
//             = 0.11420000551205824
//   cluster 1 (all NU = 1):
//     scr(d1) = 1 * ((ln2+1)/(ln2+2)) * pidf = 0.10196429063576626
//     scr(d2) = 1 * (1/2) * pidf             = 0.08109302162163287
//   Algorithm 2 sums: d2 = 0.19529302713369112 > d1 = 0.19100760849481413.
//
// The pinned literals mean any refactor of the scoring or serving path
// that perturbs ranking math — even in the 3rd decimal of a tie-breaking
// sum — fails here with an exact numeric diff.
TEST(PerIntentionGolden, HandComputedAlgorithm1And2) {
  std::vector<std::string> texts = {
      "11 11 11 11 12. 21 22.",
      "11 13 14. 21 21 23.",
      "12 12 13. 22 24.",
  };
  std::vector<Document> docs;
  std::vector<Segmentation> segs;
  std::vector<int> labels;
  for (size_t i = 0; i < texts.size(); ++i) {
    docs.push_back(Document::analyze(static_cast<DocId>(i), texts[i]));
    ASSERT_EQ(docs[i].num_units(), 2u) << texts[i];
    segs.push_back(Segmentation{docs[i].num_units(), {1}});
    labels.push_back(0);
    labels.push_back(1);
  }
  auto clustering = IntentionClustering::from_labels(docs, segs, labels, 2);
  Vocabulary vocab;
  MatcherOptions options;
  options.min_norm_fraction = 0.0;
  auto matcher = IntentionMatcher::build(docs, clustering, vocab, options);

  // Query = doc 0's cluster-0 unit, raw tfs {11:4, 12:1}.
  //   d1: 4 * w(11,d1) * pidf(3,2) = 4 * 0.27450980392156865 * log(1.5)/2.5
  //   d2: 1 * w(12,d2) * pidf(3,2) = 0.70412967249449210 * log(1.5)/2.5
  auto c0 = matcher.match_single_intention(0, 0, 4);
  ASSERT_EQ(c0.size(), 2u);
  EXPECT_EQ(c0[0].doc, 1u);
  EXPECT_NEAR(c0[0].score, 0.17808663571809574, 1e-12);
  EXPECT_EQ(c0[1].doc, 2u);
  EXPECT_NEAR(c0[1].score, 0.11420000551205824, 1e-12);

  auto c1 = matcher.match_single_intention(1, 0, 4);
  ASSERT_EQ(c1.size(), 2u);
  EXPECT_EQ(c1[0].doc, 1u);
  EXPECT_NEAR(c1[0].score, 0.10196429063576626, 1e-12);
  EXPECT_EQ(c1[1].doc, 2u);
  EXPECT_NEAR(c1[1].score, 0.08109302162163287, 1e-12);

  // Algorithm 2 sums each document's per-cluster scores:
  //   d1: 0.17808663571809574 + 0.10196429063576626
  //   d2: 0.11420000551205824 + 0.08109302162163287
  auto related = matcher.find_related(0, 2);
  ASSERT_EQ(related.size(), 2u);
  EXPECT_EQ(related[0].doc, 1u);
  EXPECT_NEAR(related[0].score, 0.28005092635386200, 1e-12);
  EXPECT_EQ(related[1].doc, 2u);
  EXPECT_NEAR(related[1].score, 0.19529302713369112, 1e-12);
}

}  // namespace
}  // namespace ibseg
