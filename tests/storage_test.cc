// Unit tests for src/storage: corpus persistence and pipeline snapshots.

#include <gtest/gtest.h>

#include <sstream>

#include "cluster/intention_clusters.h"
#include "datagen/post_generator.h"
#include "index/intention_matcher.h"
#include "seg/segmenter.h"
#include "storage/corpus_io.h"
#include "storage/snapshot.h"

namespace ibseg {
namespace {

SyntheticCorpus sample_corpus() {
  GeneratorOptions gen;
  gen.num_posts = 30;
  gen.posts_per_scenario = 3;
  gen.seed = 12;
  return generate_corpus(gen);
}

// ------------------------------------------------------------- escaping ----

TEST(CorpusIo, EscapeRoundTrip) {
  std::string nasty = "line one\nline\\two \\n literal";
  EXPECT_EQ(unescape_text(escape_text(nasty)), nasty);
  EXPECT_EQ(escape_text("plain"), "plain");
  EXPECT_EQ(escape_text("a\nb"), "a\\nb");
}

// --------------------------------------------------------- corpus io ----

TEST(CorpusIo, SaveLoadRoundTrip) {
  SyntheticCorpus corpus = sample_corpus();
  std::stringstream ss;
  ASSERT_TRUE(save_corpus(corpus, ss));
  auto loaded = load_corpus(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->domain, corpus.domain);
  EXPECT_EQ(loaded->num_scenarios, corpus.num_scenarios);
  ASSERT_EQ(loaded->posts.size(), corpus.posts.size());
  for (size_t i = 0; i < corpus.posts.size(); ++i) {
    EXPECT_EQ(loaded->posts[i].text, corpus.posts[i].text) << i;
    EXPECT_EQ(loaded->posts[i].scenario_id, corpus.posts[i].scenario_id);
    EXPECT_EQ(loaded->posts[i].component_id, corpus.posts[i].component_id);
    EXPECT_EQ(loaded->posts[i].contaminants, corpus.posts[i].contaminants);
    EXPECT_EQ(loaded->posts[i].true_segmentation,
              corpus.posts[i].true_segmentation);
    EXPECT_EQ(loaded->posts[i].segment_intents,
              corpus.posts[i].segment_intents);
  }
}

TEST(CorpusIo, RejectsGarbage) {
  std::stringstream empty("");
  EXPECT_FALSE(load_corpus(empty).has_value());
  std::stringstream wrong("NOT-A-CORPUS\n");
  EXPECT_FALSE(load_corpus(wrong).has_value());
  std::stringstream truncated("IBSEG-CORPUS v1\ndomain TechSupport\n");
  EXPECT_FALSE(load_corpus(truncated).has_value());
}

TEST(CorpusIo, RejectsCorruptedPostCount) {
  SyntheticCorpus corpus = sample_corpus();
  std::stringstream ss;
  ASSERT_TRUE(save_corpus(corpus, ss));
  std::string data = ss.str();
  // Claim one more post than present.
  size_t pos = data.find("posts 30");
  ASSERT_NE(pos, std::string::npos);
  data.replace(pos, 8, "posts 31");
  std::stringstream corrupted(data);
  EXPECT_FALSE(load_corpus(corrupted).has_value());
}

TEST(CorpusIo, LoadPlainPosts) {
  std::stringstream ss("first post\n\n  second post  \n");
  auto posts = load_plain_posts(ss);
  ASSERT_EQ(posts.size(), 2u);
  EXPECT_EQ(posts[0], "first post");
  EXPECT_EQ(posts[1], "second post");
}


// Round-trip across every domain (TEST_P).
class CorpusIoDomains
    : public ::testing::TestWithParam<ForumDomain> {};

TEST_P(CorpusIoDomains, RoundTrip) {
  GeneratorOptions gen;
  gen.domain = GetParam();
  gen.num_posts = 20;
  gen.seed = 5;
  SyntheticCorpus corpus = generate_corpus(gen);
  std::stringstream ss;
  ASSERT_TRUE(save_corpus(corpus, ss));
  auto loaded = load_corpus(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->domain, corpus.domain);
  ASSERT_EQ(loaded->posts.size(), corpus.posts.size());
  for (size_t i = 0; i < corpus.posts.size(); ++i) {
    EXPECT_EQ(loaded->posts[i].text, corpus.posts[i].text);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDomains, CorpusIoDomains,
                         ::testing::Values(ForumDomain::kTechSupport,
                                           ForumDomain::kTravel,
                                           ForumDomain::kProgramming,
                                           ForumDomain::kHealth));

// ------------------------------------------------------------ snapshot ----

struct Built {
  std::vector<Document> docs;
  std::vector<Segmentation> segs;
  IntentionClustering clustering;
};

Built build_pipeline_state() {
  Built b;
  b.docs = analyze_corpus(sample_corpus());
  Segmenter segmenter = Segmenter::cm_tiling();
  Vocabulary vocab;
  b.segs.resize(b.docs.size());
  for (size_t d = 0; d < b.docs.size(); ++d) {
    b.segs[d] = segmenter.segment(b.docs[d], vocab);
  }
  b.clustering = IntentionClustering::build(b.docs, b.segs);
  return b;
}

TEST(Snapshot, CapturesConsistentState) {
  Built b = build_pipeline_state();
  PipelineSnapshot snap = make_snapshot(b.segs, b.clustering);
  EXPECT_TRUE(snap.is_consistent());
  EXPECT_EQ(snap.num_clusters, b.clustering.num_clusters());
  EXPECT_EQ(snap.segmentations.size(), b.docs.size());
}

TEST(Snapshot, RestoreReproducesClustering) {
  Built b = build_pipeline_state();
  PipelineSnapshot snap = make_snapshot(b.segs, b.clustering);
  IntentionClustering restored = restore_clustering(b.docs, snap);
  EXPECT_EQ(restored.num_clusters(), b.clustering.num_clusters());
  ASSERT_EQ(restored.segments().size(), b.clustering.segments().size());
  // Same refined segment table (doc, cluster, ranges).
  for (size_t i = 0; i < restored.segments().size(); ++i) {
    EXPECT_EQ(restored.segments()[i].doc, b.clustering.segments()[i].doc);
    EXPECT_EQ(restored.segments()[i].cluster,
              b.clustering.segments()[i].cluster);
    EXPECT_EQ(restored.segments()[i].ranges,
              b.clustering.segments()[i].ranges);
  }
}

TEST(Snapshot, SaveLoadRoundTrip) {
  Built b = build_pipeline_state();
  PipelineSnapshot snap = make_snapshot(b.segs, b.clustering);
  std::stringstream ss;
  ASSERT_TRUE(save_snapshot(snap, ss));
  auto loaded = load_snapshot(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_clusters, snap.num_clusters);
  EXPECT_EQ(loaded->segment_labels, snap.segment_labels);
  ASSERT_EQ(loaded->segmentations.size(), snap.segmentations.size());
  for (size_t d = 0; d < snap.segmentations.size(); ++d) {
    EXPECT_EQ(loaded->segmentations[d], snap.segmentations[d]);
  }
}

TEST(Snapshot, RestoredMatcherAnswersIdentically) {
  Built b = build_pipeline_state();
  PipelineSnapshot snap = make_snapshot(b.segs, b.clustering);
  std::stringstream ss;
  ASSERT_TRUE(save_snapshot(snap, ss));
  auto loaded = load_snapshot(ss);
  ASSERT_TRUE(loaded.has_value());
  IntentionClustering restored = restore_clustering(b.docs, *loaded);
  Vocabulary v1;
  Vocabulary v2;
  auto original = IntentionMatcher::build(b.docs, b.clustering, v1);
  auto reloaded = IntentionMatcher::build(b.docs, restored, v2);
  for (DocId q = 0; q < b.docs.size(); q += 5) {
    auto a = original.find_related(q, 5);
    auto c = reloaded.find_related(q, 5);
    ASSERT_EQ(a.size(), c.size()) << q;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].doc, c[i].doc);
      EXPECT_NEAR(a[i].score, c[i].score, 1e-9);
    }
  }
}

TEST(Snapshot, RejectsInconsistentInput) {
  std::stringstream bad(
      "IBSEG-SNAPSHOT v1\nclusters 2\ndocuments 1\nseg 3 1\nlabels 0 5\n");
  EXPECT_FALSE(load_snapshot(bad).has_value());  // label 5 out of range
  std::stringstream garbage("nope");
  EXPECT_FALSE(load_snapshot(garbage).has_value());
}

}  // namespace
}  // namespace ibseg
