// Unit tests for src/storage: corpus persistence and pipeline snapshots.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>

#include "cluster/intention_clusters.h"
#include "datagen/post_generator.h"
#include "index/intention_matcher.h"
#include "seg/segmenter.h"
#include "storage/corpus_io.h"
#include "storage/format_util.h"
#include "storage/snapshot.h"

namespace ibseg {
namespace {

SyntheticCorpus sample_corpus() {
  GeneratorOptions gen;
  gen.num_posts = 30;
  gen.posts_per_scenario = 3;
  gen.seed = 12;
  return generate_corpus(gen);
}

// ------------------------------------------------------------- escaping ----

TEST(CorpusIo, EscapeRoundTrip) {
  std::string nasty = "line one\nline\\two \\n literal";
  EXPECT_EQ(unescape_text(escape_text(nasty)), nasty);
  EXPECT_EQ(escape_text("plain"), "plain");
  EXPECT_EQ(escape_text("a\nb"), "a\\nb");
}

TEST(CorpusIo, EscapesCarriageReturn) {
  // A raw '\r' in a stored text would be silently eaten by the
  // CRLF-tolerant loader; the writer must escape it.
  EXPECT_EQ(escape_text("a\rb"), "a\\rb");
  EXPECT_EQ(escape_text("crlf\r\n"), "crlf\\r\\n");
  std::string s = "mixed\rline\nend\r";
  std::string escaped = escape_text(s);
  EXPECT_EQ(escaped.find('\r'), std::string::npos);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(unescape_text(escaped), s);
}

TEST(CorpusIo, UnescapeRejectsDanglingBackslash) {
  EXPECT_FALSE(unescape_text("truncated mid-escape\\").has_value());
  EXPECT_FALSE(unescape_text("\\").has_value());
  EXPECT_FALSE(unescape_text("unknown escape \\t").has_value());
  // Well-formed inputs still pass.
  EXPECT_TRUE(unescape_text("trailing double \\\\").has_value());
  EXPECT_TRUE(unescape_text("").has_value());
}

TEST(CorpusIo, EscapeRoundTripRandomBytes) {
  // Property test: escape/unescape is a bijection on arbitrary byte
  // strings (including NULs, high bytes, '\r', '\n' and backslash runs),
  // and the escaped form never contains a line break.
  std::mt19937 rng(20260805);
  std::uniform_int_distribution<int> len_dist(0, 64);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  // Bias toward the interesting bytes so runs of them are common.
  const char special[] = {'\\', '\n', '\r', 'n', 'r', '\0'};
  std::uniform_int_distribution<int> special_dist(0, 5);
  std::bernoulli_distribution pick_special(0.4);
  for (int trial = 0; trial < 500; ++trial) {
    std::string s;
    int len = len_dist(rng);
    for (int i = 0; i < len; ++i) {
      s.push_back(pick_special(rng)
                      ? special[special_dist(rng)]
                      : static_cast<char>(byte_dist(rng)));
    }
    std::string escaped = escape_text(s);
    EXPECT_EQ(escaped.find('\n'), std::string::npos) << trial;
    EXPECT_EQ(escaped.find('\r'), std::string::npos) << trial;
    auto back = unescape_text(escaped);
    ASSERT_TRUE(back.has_value()) << trial;
    EXPECT_EQ(*back, s) << trial;
  }
}

// ------------------------------------------------------- format helpers ----

TEST(FormatUtil, ReadLineStripsCr) {
  std::istringstream is("plain\ncrlf\r\nonly-cr-kept\rx\nlast");
  std::string line;
  ASSERT_TRUE(read_line(is, &line));
  EXPECT_EQ(line, "plain");
  ASSERT_TRUE(read_line(is, &line));
  EXPECT_EQ(line, "crlf");
  ASSERT_TRUE(read_line(is, &line));
  EXPECT_EQ(line, "only-cr-kept\rx");  // interior \r is data, not a break
  ASSERT_TRUE(read_line(is, &line));
  EXPECT_EQ(line, "last");
  EXPECT_FALSE(read_line(is, &line));
}

TEST(FormatUtil, ParseListStrict) {
  std::vector<int> out;
  EXPECT_TRUE(parse_list(std::string("labels 0 1 2"), "labels", &out));
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  // Trailing whitespace is fine; trailing garbage is not.
  EXPECT_TRUE(parse_list(std::string("labels 0 1 "), "labels", &out));
  EXPECT_FALSE(parse_list(std::string("labels 0 1 x"), "labels", &out));
  EXPECT_FALSE(parse_list(std::string("labels 0 1.5"), "labels", &out));
  EXPECT_FALSE(parse_list(std::string("wrong 0 1"), "labels", &out));
  // Empty list parses (consistency checks reject it later if wrong).
  EXPECT_TRUE(parse_list(std::string("labels"), "labels", &out));
  EXPECT_TRUE(out.empty());
}

TEST(FormatUtil, Crc32KnownVector) {
  // The classic check value for the IEEE reflected polynomial.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

TEST(FormatUtil, AtomicWriteKeepsPreviousFileOnFailure) {
  std::string path = ::testing::TempDir() + "/ibseg_atomic_write_test";
  ASSERT_TRUE(atomic_write_file(path, [](std::ostream& os) {
    os << "old contents";
    return true;
  }));
  // A writer that reports failure must leave the old file untouched.
  ASSERT_FALSE(atomic_write_file(path, [](std::ostream& os) {
    os << "half-written new";
    return false;
  }));
  std::ifstream is(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(is)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "old contents");
  std::remove(path.c_str());
}

TEST(FormatUtil, AtomicWriteFailsOnMissingDirectory) {
  EXPECT_FALSE(atomic_write_file("/nonexistent-ibseg-dir/file",
                                 [](std::ostream& os) {
                                   os << "x";
                                   return true;
                                 }));
}

// --------------------------------------------------------- corpus io ----

TEST(CorpusIo, SaveLoadRoundTrip) {
  SyntheticCorpus corpus = sample_corpus();
  std::stringstream ss;
  ASSERT_TRUE(save_corpus(corpus, ss));
  auto loaded = load_corpus(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->domain, corpus.domain);
  EXPECT_EQ(loaded->num_scenarios, corpus.num_scenarios);
  ASSERT_EQ(loaded->posts.size(), corpus.posts.size());
  for (size_t i = 0; i < corpus.posts.size(); ++i) {
    EXPECT_EQ(loaded->posts[i].text, corpus.posts[i].text) << i;
    EXPECT_EQ(loaded->posts[i].scenario_id, corpus.posts[i].scenario_id);
    EXPECT_EQ(loaded->posts[i].component_id, corpus.posts[i].component_id);
    EXPECT_EQ(loaded->posts[i].contaminants, corpus.posts[i].contaminants);
    EXPECT_EQ(loaded->posts[i].true_segmentation,
              corpus.posts[i].true_segmentation);
    EXPECT_EQ(loaded->posts[i].segment_intents,
              corpus.posts[i].segment_intents);
  }
}

TEST(CorpusIo, RejectsGarbage) {
  std::stringstream empty("");
  EXPECT_FALSE(load_corpus(empty).has_value());
  std::stringstream wrong("NOT-A-CORPUS\n");
  EXPECT_FALSE(load_corpus(wrong).has_value());
  std::stringstream truncated("IBSEG-CORPUS v1\ndomain TechSupport\n");
  EXPECT_FALSE(load_corpus(truncated).has_value());
}

TEST(CorpusIo, RejectsCorruptedPostCount) {
  SyntheticCorpus corpus = sample_corpus();
  std::stringstream ss;
  ASSERT_TRUE(save_corpus(corpus, ss));
  std::string data = ss.str();
  // Claim one more post than present.
  size_t pos = data.find("posts 30");
  ASSERT_NE(pos, std::string::npos);
  data.replace(pos, 8, "posts 31");
  std::stringstream corrupted(data);
  EXPECT_FALSE(load_corpus(corrupted).has_value());
}

TEST(CorpusIo, LoadPlainPosts) {
  std::stringstream ss("first post\n\n  second post  \n");
  auto posts = load_plain_posts(ss);
  ASSERT_EQ(posts.size(), 2u);
  EXPECT_EQ(posts[0], "first post");
  EXPECT_EQ(posts[1], "second post");
}


// Round-trip across every domain (TEST_P).
class CorpusIoDomains
    : public ::testing::TestWithParam<ForumDomain> {};

TEST_P(CorpusIoDomains, RoundTrip) {
  GeneratorOptions gen;
  gen.domain = GetParam();
  gen.num_posts = 20;
  gen.seed = 5;
  SyntheticCorpus corpus = generate_corpus(gen);
  std::stringstream ss;
  ASSERT_TRUE(save_corpus(corpus, ss));
  auto loaded = load_corpus(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->domain, corpus.domain);
  ASSERT_EQ(loaded->posts.size(), corpus.posts.size());
  for (size_t i = 0; i < corpus.posts.size(); ++i) {
    EXPECT_EQ(loaded->posts[i].text, corpus.posts[i].text);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDomains, CorpusIoDomains,
                         ::testing::Values(ForumDomain::kTechSupport,
                                           ForumDomain::kTravel,
                                           ForumDomain::kProgramming,
                                           ForumDomain::kHealth));

// ------------------------------------------------------------ snapshot ----

struct Built {
  std::vector<Document> docs;
  std::vector<Segmentation> segs;
  IntentionClustering clustering;
};

Built build_pipeline_state() {
  Built b;
  b.docs = analyze_corpus(sample_corpus());
  Segmenter segmenter = Segmenter::cm_tiling();
  Vocabulary vocab;
  b.segs.resize(b.docs.size());
  for (size_t d = 0; d < b.docs.size(); ++d) {
    b.segs[d] = segmenter.segment(b.docs[d], vocab);
  }
  b.clustering = IntentionClustering::build(b.docs, b.segs);
  return b;
}

TEST(Snapshot, CapturesConsistentState) {
  Built b = build_pipeline_state();
  PipelineSnapshot snap = make_snapshot(b.segs, b.clustering);
  EXPECT_TRUE(snap.is_consistent());
  EXPECT_EQ(snap.num_clusters, b.clustering.num_clusters());
  EXPECT_EQ(snap.segmentations.size(), b.docs.size());
}

TEST(Snapshot, RestoreReproducesClustering) {
  Built b = build_pipeline_state();
  PipelineSnapshot snap = make_snapshot(b.segs, b.clustering);
  IntentionClustering restored = restore_clustering(b.docs, snap);
  EXPECT_EQ(restored.num_clusters(), b.clustering.num_clusters());
  ASSERT_EQ(restored.segments().size(), b.clustering.segments().size());
  // Same refined segment table (doc, cluster, ranges).
  for (size_t i = 0; i < restored.segments().size(); ++i) {
    EXPECT_EQ(restored.segments()[i].doc, b.clustering.segments()[i].doc);
    EXPECT_EQ(restored.segments()[i].cluster,
              b.clustering.segments()[i].cluster);
    EXPECT_EQ(restored.segments()[i].ranges,
              b.clustering.segments()[i].ranges);
  }
}

TEST(Snapshot, SaveLoadRoundTrip) {
  Built b = build_pipeline_state();
  PipelineSnapshot snap = make_snapshot(b.segs, b.clustering);
  std::stringstream ss;
  ASSERT_TRUE(save_snapshot(snap, ss));
  auto loaded = load_snapshot(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_clusters, snap.num_clusters);
  EXPECT_EQ(loaded->segment_labels, snap.segment_labels);
  ASSERT_EQ(loaded->segmentations.size(), snap.segmentations.size());
  for (size_t d = 0; d < snap.segmentations.size(); ++d) {
    EXPECT_EQ(loaded->segmentations[d], snap.segmentations[d]);
  }
}

TEST(Snapshot, RestoredMatcherAnswersIdentically) {
  Built b = build_pipeline_state();
  PipelineSnapshot snap = make_snapshot(b.segs, b.clustering);
  std::stringstream ss;
  ASSERT_TRUE(save_snapshot(snap, ss));
  auto loaded = load_snapshot(ss);
  ASSERT_TRUE(loaded.has_value());
  IntentionClustering restored = restore_clustering(b.docs, *loaded);
  Vocabulary v1;
  Vocabulary v2;
  auto original = IntentionMatcher::build(b.docs, b.clustering, v1);
  auto reloaded = IntentionMatcher::build(b.docs, restored, v2);
  for (DocId q = 0; q < b.docs.size(); q += 5) {
    auto a = original.find_related(q, 5);
    auto c = reloaded.find_related(q, 5);
    ASSERT_EQ(a.size(), c.size()) << q;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].doc, c[i].doc);
      EXPECT_NEAR(a[i].score, c[i].score, 1e-9);
    }
  }
}

TEST(Snapshot, RejectsInconsistentInput) {
  std::stringstream bad(
      "IBSEG-SNAPSHOT v1\nclusters 2\ndocuments 1\nseg 3 1\nlabels 0 5\n");
  EXPECT_FALSE(load_snapshot(bad).has_value());  // label 5 out of range
  std::stringstream garbage("nope");
  EXPECT_FALSE(load_snapshot(garbage).has_value());
}

TEST(Snapshot, RejectsTrailingGarbageOnNumericLines) {
  std::stringstream seg_garbage(
      "IBSEG-SNAPSHOT v1\nclusters 2\ndocuments 1\nseg 3 1 oops\nlabels 0 1\n");
  EXPECT_FALSE(load_snapshot(seg_garbage).has_value());
  std::stringstream label_garbage(
      "IBSEG-SNAPSHOT v1\nclusters 2\ndocuments 1\nseg 3 1\nlabels 0 1 x\n");
  EXPECT_FALSE(load_snapshot(label_garbage).has_value());
}

// ------------------------------------------------- CRLF / truncation ----

/// Rewrites every LF line ending as CRLF — what a Windows checkout or a
/// text-mode transfer does to these files.
std::string to_crlf(const std::string& data) {
  std::string out;
  out.reserve(data.size());
  for (char c : data) {
    if (c == '\n') out += '\r';
    out += c;
  }
  return out;
}

TEST(CorpusIo, LoadsCrlfFiles) {
  SyntheticCorpus corpus = sample_corpus();
  std::stringstream ss;
  ASSERT_TRUE(save_corpus(corpus, ss));
  std::stringstream crlf(to_crlf(ss.str()));
  auto loaded = load_corpus(crlf);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->posts.size(), corpus.posts.size());
  for (size_t i = 0; i < corpus.posts.size(); ++i) {
    EXPECT_EQ(loaded->posts[i].text, corpus.posts[i].text) << i;
    EXPECT_EQ(loaded->posts[i].true_segmentation,
              corpus.posts[i].true_segmentation);
  }
}

TEST(CorpusIo, LoadPlainPostsCrlf) {
  std::stringstream ss("first post\r\n\r\n  second post  \r\n");
  auto posts = load_plain_posts(ss);
  ASSERT_EQ(posts.size(), 2u);
  EXPECT_EQ(posts[0], "first post");
  EXPECT_EQ(posts[1], "second post");
}

TEST(Snapshot, LoadsCrlfFiles) {
  Built b = build_pipeline_state();
  PipelineSnapshot snap = make_snapshot(b.segs, b.clustering);
  std::stringstream ss;
  ASSERT_TRUE(save_snapshot(snap, ss));
  std::stringstream crlf(to_crlf(ss.str()));
  auto loaded = load_snapshot(crlf);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_clusters, snap.num_clusters);
  EXPECT_EQ(loaded->segment_labels, snap.segment_labels);
  ASSERT_EQ(loaded->segmentations.size(), snap.segmentations.size());
  for (size_t d = 0; d < snap.segmentations.size(); ++d) {
    EXPECT_EQ(loaded->segmentations[d], snap.segmentations[d]);
  }
}

TEST(Snapshot, EveryPrefixOfTruncatedFileIsRejected) {
  // Single-digit units/borders/labels so that chopping any byte changes a
  // count some later validation checks — the v1 text format's detection
  // limit (multi-digit values truncated mid-number are undetectable in
  // v1; snapshot v2's CRC framing closes that hole).
  PipelineSnapshot snap;
  snap.num_clusters = 3;
  for (int d = 0; d < 3; ++d) {
    Segmentation s;
    s.num_units = 6;
    s.borders = {2, 4};
    snap.segmentations.push_back(s);
    snap.segment_labels.push_back(0);
    snap.segment_labels.push_back(1);
    snap.segment_labels.push_back(2);
  }
  ASSERT_TRUE(snap.is_consistent());
  std::stringstream ss;
  ASSERT_TRUE(save_snapshot(snap, ss));
  const std::string data = ss.str();
  // The final byte is the trailing newline: dropping only it still parses
  // (getline tolerates a missing final terminator), so every *strictly
  // shorter* prefix must be rejected.
  for (size_t len = 0; len + 1 < data.size(); ++len) {
    std::stringstream prefix(data.substr(0, len));
    EXPECT_FALSE(load_snapshot(prefix).has_value()) << "prefix len " << len;
  }
  std::stringstream full(data);
  EXPECT_TRUE(load_snapshot(full).has_value());
}

TEST(CorpusIo, TruncationPrefixesAreRejected) {
  GeneratorOptions gen;
  gen.num_posts = 4;
  gen.seed = 7;
  SyntheticCorpus corpus = generate_corpus(gen);
  std::stringstream ss;
  ASSERT_TRUE(save_corpus(corpus, ss));
  const std::string data = ss.str();
  // The file ends with the last post's "text <escaped>" line. Cutting
  // inside that free-form payload just yields a shorter (still valid)
  // text — the v1 text format's inherent detection limit, which snapshot
  // v2's CRC framing exists to close. Every cut point up to and including
  // the truncated keyword "text" itself must be rejected.
  size_t last_text = data.rfind("\ntext ");
  ASSERT_NE(last_text, std::string::npos);
  for (size_t len = 0; len <= last_text + 5; ++len) {
    std::stringstream prefix(data.substr(0, len));
    EXPECT_FALSE(load_corpus(prefix).has_value()) << "prefix len " << len;
  }
  std::stringstream full(data);
  EXPECT_TRUE(load_corpus(full).has_value());
}

TEST(Snapshot, SaveFileIsAtomicAndLoadable) {
  Built b = build_pipeline_state();
  PipelineSnapshot snap = make_snapshot(b.segs, b.clustering);
  std::string path = ::testing::TempDir() + "/ibseg_snapshot_v1_test";
  ASSERT_TRUE(save_snapshot_file(snap, path));
  auto loaded = load_snapshot_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->segment_labels, snap.segment_labels);
  // Unwritable target: reports failure, leaves the good file alone.
  EXPECT_FALSE(save_snapshot_file(snap, "/nonexistent-ibseg-dir/snap"));
  EXPECT_TRUE(load_snapshot_file(path).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ibseg
