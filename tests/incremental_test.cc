// Tests for online ingestion (IntentionMatcher::add_document) and the
// graded-relevance metrics (eval/ndcg).

#include <gtest/gtest.h>

#include "cluster/intention_clusters.h"
#include "datagen/post_generator.h"
#include "eval/ndcg.h"
#include "index/intention_matcher.h"
#include "seg/segmenter.h"

namespace ibseg {
namespace {

struct Built {
  SyntheticCorpus corpus;
  std::vector<Document> docs;
  std::vector<Segmentation> segs;
  IntentionClustering clustering;
  Vocabulary vocab;
};

Built build_base(size_t posts) {
  Built b;
  GeneratorOptions gen;
  gen.num_posts = posts;
  gen.posts_per_scenario = 4;
  gen.seed = 33;
  b.corpus = generate_corpus(gen);
  b.docs = analyze_corpus(b.corpus);
  Segmenter segmenter = Segmenter::cm_tiling();
  Vocabulary scratch;
  b.segs.resize(b.docs.size());
  for (size_t d = 0; d < b.docs.size(); ++d) {
    b.segs[d] = segmenter.segment(b.docs[d], scratch);
  }
  b.clustering = IntentionClustering::build(b.docs, b.segs);
  return b;
}

TEST(IncrementalIngestion, NewDocumentBecomesQueryable) {
  Built b = build_base(60);
  auto matcher = IntentionMatcher::build(b.docs, b.clustering, b.vocab);
  size_t segments_before = matcher.num_segments();

  // A new post reusing scenario-0 vocabulary, unseen id.
  Document fresh = Document::analyze(
      9000, b.corpus.posts[0].text + " I also checked everything again.");
  Segmenter segmenter = Segmenter::cm_tiling();
  Vocabulary scratch;
  Segmentation seg = segmenter.segment(fresh, scratch);
  matcher.add_document(fresh, seg, b.clustering.centroids(), b.vocab);

  EXPECT_GT(matcher.num_segments(), segments_before);
  auto related = matcher.find_related(9000, 5);
  ASSERT_FALSE(related.empty());
  for (const ScoredDoc& sd : related) EXPECT_NE(sd.doc, 9000u);
}

TEST(IncrementalIngestion, NewDocumentIsFoundByOldQueries) {
  Built b = build_base(60);
  auto matcher = IntentionMatcher::build(b.docs, b.clustering, b.vocab);

  // Ingest a near-duplicate of post 0; querying post 0 should surface it.
  Document fresh = Document::analyze(9001, b.corpus.posts[0].text);
  Segmenter segmenter = Segmenter::cm_tiling();
  Vocabulary scratch;
  matcher.add_document(fresh, segmenter.segment(fresh, scratch),
                       b.clustering.centroids(), b.vocab);
  auto related = matcher.find_related(0, 5);
  bool found = false;
  for (const ScoredDoc& sd : related) found |= (sd.doc == 9001u);
  EXPECT_TRUE(found);
  if (!related.empty()) EXPECT_EQ(related[0].doc, 9001u);
}

TEST(IncrementalIngestion, ManyIngestionsKeepInvariants) {
  Built b = build_base(40);
  auto matcher = IntentionMatcher::build(b.docs, b.clustering, b.vocab);
  Segmenter segmenter = Segmenter::cm_tiling();
  Vocabulary scratch;
  GeneratorOptions gen;
  gen.num_posts = 20;
  gen.seed = 91;
  SyntheticCorpus extra = generate_corpus(gen);
  for (size_t i = 0; i < extra.posts.size(); ++i) {
    Document doc =
        Document::analyze(static_cast<DocId>(5000 + i), extra.posts[i].text);
    matcher.add_document(doc, segmenter.segment(doc, scratch),
                         b.clustering.centroids(), b.vocab);
    auto related = matcher.find_related(static_cast<DocId>(5000 + i), 3);
    for (const ScoredDoc& sd : related) {
      EXPECT_NE(sd.doc, static_cast<DocId>(5000 + i));
      EXPECT_GT(sd.score, 0.0);
    }
  }
}

// ------------------------------------------------------------------ nDCG ----

TEST(Ndcg, PerfectRankingIsOne) {
  auto grade = [](DocId d) { return d == 0 ? 2 : (d == 1 ? 1 : 0); };
  std::vector<DocId> ranked = {0, 1, 7, 8};
  EXPECT_NEAR(ndcg(ranked, grade, {2, 1, 0, 0}), 1.0, 1e-12);
}

TEST(Ndcg, SwappedRankingBelowOne) {
  auto grade = [](DocId d) { return d == 0 ? 2 : (d == 1 ? 1 : 0); };
  std::vector<DocId> swapped = {1, 0, 7, 8};
  double v = ndcg(swapped, grade, {2, 1, 0, 0});
  EXPECT_LT(v, 1.0);
  EXPECT_GT(v, 0.5);
}

TEST(Ndcg, NoRelevantDocsIsZero) {
  auto grade = [](DocId) { return 0; };
  EXPECT_DOUBLE_EQ(ndcg({3, 4}, grade, {0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(dcg({3, 4}, grade), 0.0);
}

TEST(Ndcg, DcgDiscountsByRank) {
  auto grade = [](DocId d) { return d == 5 ? 1 : 0; };
  double first = dcg({5, 1, 2}, grade);
  double third = dcg({1, 2, 5}, grade);
  EXPECT_GT(first, third);
  EXPECT_NEAR(first, 1.0, 1e-12);          // (2^1-1)/log2(2)
  EXPECT_NEAR(third, 1.0 / 2.0, 1e-12);    // /log2(4)
}

TEST(Ndcg, HigherGradeGainsMore) {
  auto g2 = [](DocId d) { return d == 0 ? 2 : 0; };
  auto g1 = [](DocId d) { return d == 0 ? 1 : 0; };
  EXPECT_GT(dcg({0}, g2), dcg({0}, g1));
}

}  // namespace
}  // namespace ibseg
