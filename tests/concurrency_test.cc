// Deterministic stress suite for the concurrent serving core
// (core/serving.h). Seeded datagen corpora drive mixed reader/writer
// thread mixes, a barrier-synchronized "thundering herd" query burst, and
// an invariant checker asserting that every query observes a consistent
// snapshot: the corpus size and publication epoch move in lockstep, result
// ids only ever reference documents that were reserved for publication,
// and batched ingests are all-or-nothing. Run under
// IBSEG_SANITIZE=thread (scripts/check_sanitizers.sh) these tests are the
// proof that the reader/writer layer is race-free, not accidentally so.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/recluster.h"
#include "core/serving.h"
#include "core/sharded_serving.h"
#include "datagen/post_generator.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/sync.h"

namespace ibseg {
namespace {

// Sizes are chosen for a TSan-instrumented single-core runner: large
// enough that readers and writers genuinely overlap, small enough that the
// whole binary stays in the seconds range.
constexpr size_t kSeedPosts = 48;
constexpr uint64_t kSeedCorpusSeed = 4242;
constexpr uint64_t kIngestCorpusSeed = 777;

RelatedPostPipeline make_pipeline(size_t posts = kSeedPosts,
                                  uint64_t seed = kSeedCorpusSeed) {
  GeneratorOptions gen;
  gen.num_posts = posts;
  gen.posts_per_scenario = 4;
  gen.seed = seed;
  return RelatedPostPipeline::build(analyze_corpus(generate_corpus(gen)));
}

std::vector<std::string> make_ingest_texts(size_t count,
                                           uint64_t seed = kIngestCorpusSeed) {
  GeneratorOptions gen;
  gen.num_posts = count;
  gen.posts_per_scenario = 4;
  gen.seed = seed;
  SyntheticCorpus corpus = generate_corpus(gen);
  std::vector<std::string> texts;
  texts.reserve(corpus.posts.size());
  for (const auto& post : corpus.posts) texts.push_back(post.text);
  return texts;
}

// Checks the per-query snapshot invariants and returns an explanation on
// violation (empty string = consistent). `seed_total` is the corpus size
// before any online ingest — works for both the unsharded pipeline and
// the sharded facade (whose epoch/num_docs are the summed per-shard
// values).
std::string check_snapshot_result(const ServingPipeline::QueryResult& r,
                                  size_t seed_total, DocId seed_next_id,
                                  size_t total_ingests) {
  // A query must observe epoch and corpus size from the same publication
  // point: every published document bumps both by exactly one.
  if (r.num_docs != seed_total + r.epoch) {
    return "torn snapshot: num_docs " + std::to_string(r.num_docs) +
           " != seed " + std::to_string(seed_total) + " + epoch " +
           std::to_string(r.epoch);
  }
  std::set<DocId> seen;
  double prev_score = std::numeric_limits<double>::infinity();
  for (const ScoredDoc& sd : r.results) {
    // Result ids are either seed documents (< seed_next_id) or ids the
    // id-reservation counter could actually have handed out.
    if (sd.doc >= seed_next_id + static_cast<DocId>(total_ingests)) {
      return "result references unreserved id " + std::to_string(sd.doc);
    }
    if (!seen.insert(sd.doc).second) {
      return "duplicate result id " + std::to_string(sd.doc);
    }
    if (!(sd.score > 0.0) || !std::isfinite(sd.score)) {
      return "non-positive/non-finite score for id " + std::to_string(sd.doc);
    }
    if (sd.score > prev_score) {
      return "results not sorted by descending score";
    }
    prev_score = sd.score;
  }
  return "";
}

/// The original single-pipeline entry point (all existing call sites).
std::string check_snapshot(const ServingPipeline& serving,
                           const ServingPipeline::QueryResult& r,
                           DocId seed_next_id, size_t total_ingests) {
  return check_snapshot_result(r, serving.seed_docs(), seed_next_id,
                               total_ingests);
}

// ----------------------------------------------------- serving basics ----

TEST(ServingPipeline, MatchesWrappedPipelineWhenQuiet) {
  RelatedPostPipeline reference = make_pipeline();
  auto expected = reference.find_related(4, 5);
  Document external = Document::analyze(1u << 30, reference.docs()[0].text());
  auto expected_ext = reference.find_related_external(external, 5);

  ServingPipeline serving(make_pipeline());
  auto got = serving.find_related(4, 5);
  EXPECT_EQ(got.epoch, 0u);
  EXPECT_EQ(got.num_docs, serving.seed_docs());
  ASSERT_EQ(got.results.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(got.results[i].doc, expected[i].doc);
    EXPECT_DOUBLE_EQ(got.results[i].score, expected[i].score);
  }
  auto got_ext = serving.find_related_external(external, 5);
  ASSERT_EQ(got_ext.results.size(), expected_ext.size());
  for (size_t i = 0; i < expected_ext.size(); ++i) {
    EXPECT_EQ(got_ext.results[i].doc, expected_ext[i].doc);
    EXPECT_DOUBLE_EQ(got_ext.results[i].score, expected_ext[i].score);
  }
}

TEST(ServingPipeline, SingleThreadedIngestMatchesPipelineSemantics) {
  ServingPipeline serving(make_pipeline(20));
  std::vector<std::string> texts = make_ingest_texts(3);
  DocId first = serving.next_id();
  DocId a = serving.add_post(texts[0]);
  EXPECT_EQ(a, first);
  auto ids = serving.add_posts({texts[1], texts[2]});
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], first + 1);
  EXPECT_EQ(ids[1], first + 2);
  EXPECT_EQ(serving.epoch(), 3u);
  EXPECT_EQ(serving.num_docs(), serving.seed_docs() + 3);
  // The ingested posts answer queries.
  for (DocId id : {a, ids[0], ids[1]}) {
    auto r = serving.find_related(id, 5);
    EXPECT_EQ(r.num_docs, serving.seed_docs() + r.epoch);
  }
}

// ------------------------------------------------- mixed reader/writer ----

TEST(ConcurrencyStress, MixedReadersAndWritersKeepInvariants) {
  constexpr size_t kWriters = 2;
  constexpr size_t kReaders = 3;
  constexpr size_t kIngestsPerWriter = 8;
  constexpr size_t kQueriesPerReader = 40;
  constexpr size_t kTotalIngests = kWriters * kIngestsPerWriter;

  ServingPipeline serving(make_pipeline());
  const DocId seed_next_id = serving.next_id();
  std::vector<std::string> texts = make_ingest_texts(kTotalIngests);

  // External query posts are analyzed before the threads start (Document
  // analysis is deterministic, so this keeps the workload seeded).
  std::vector<Document> externals;
  for (size_t i = 0; i < 4; ++i) {
    externals.push_back(Document::analyze(
        static_cast<DocId>((1u << 30) + i), texts[i]));
  }

  std::atomic<size_t> violations{0};
  std::vector<std::string> first_violation(kReaders);

  {
    ScopedThreads threads;
    for (size_t w = 0; w < kWriters; ++w) {
      threads.spawn([&, w] {
        for (size_t i = 0; i < kIngestsPerWriter; ++i) {
          serving.add_post(texts[w * kIngestsPerWriter + i]);
        }
      });
    }
    for (size_t t = 0; t < kReaders; ++t) {
      threads.spawn([&, t] {
        Rng rng(1000 + t);  // per-thread deterministic query schedule
        uint64_t last_epoch = 0;
        for (size_t q = 0; q < kQueriesPerReader; ++q) {
          ServingPipeline::QueryResult r;
          if (q % 4 == 3) {
            r = serving.find_related_external(
                externals[q % externals.size()], 5);
          } else {
            DocId query = static_cast<DocId>(
                rng.next_below(static_cast<uint64_t>(kSeedPosts)));
            r = serving.find_related(query, 5);
          }
          std::string why =
              check_snapshot(serving, r, seed_next_id, kTotalIngests);
          if (why.empty() && r.epoch < last_epoch) {
            why = "epoch moved backwards within one reader";
          }
          if (!why.empty()) {
            if (violations.fetch_add(1) == 0) first_violation[t] = why;
            return;
          }
          last_epoch = r.epoch;
        }
      });
    }
  }  // joins all threads

  ASSERT_EQ(violations.load(), 0u)
      << "first violation: "
      << *std::find_if(first_violation.begin(), first_violation.end(),
                       [](const std::string& s) { return !s.empty(); });

  // Quiescent state: everything published, every ingested id queryable.
  EXPECT_EQ(serving.epoch(), kTotalIngests);
  EXPECT_EQ(serving.num_docs(), serving.seed_docs() + kTotalIngests);
  EXPECT_EQ(serving.next_id(), seed_next_id + kTotalIngests);
  for (DocId id = seed_next_id; id < seed_next_id + kTotalIngests; ++id) {
    auto r = serving.find_related(id, 3);
    EXPECT_EQ(r.epoch, kTotalIngests);
    for (const ScoredDoc& sd : r.results) EXPECT_NE(sd.doc, id);
  }
}

// ---------------------------------------------------- thundering herd ----

TEST(ConcurrencyStress, ThunderingHerdAgreesWithoutWriters) {
  constexpr size_t kHerd = 8;
  ServingPipeline serving(make_pipeline());
  auto reference = serving.find_related(7, 5);

  CyclicBarrier barrier(kHerd);
  std::vector<ServingPipeline::QueryResult> results(kHerd);
  {
    ScopedThreads threads;
    for (size_t t = 0; t < kHerd; ++t) {
      threads.spawn([&, t] {
        barrier.arrive_and_wait();  // all queries released at once
        results[t] = serving.find_related(7, 5);
      });
    }
  }
  // With no writer, every thread of the herd must see the identical
  // ranking — byte-for-byte agreement across concurrent shared-lock reads.
  for (size_t t = 0; t < kHerd; ++t) {
    ASSERT_EQ(results[t].results.size(), reference.results.size());
    EXPECT_EQ(results[t].epoch, 0u);
    for (size_t i = 0; i < reference.results.size(); ++i) {
      EXPECT_EQ(results[t].results[i].doc, reference.results[i].doc);
      EXPECT_DOUBLE_EQ(results[t].results[i].score,
                       reference.results[i].score);
    }
  }
}

TEST(ConcurrencyStress, ThunderingHerdStaysConsistentDuringIngest) {
  constexpr size_t kHerd = 6;
  constexpr size_t kRounds = 6;
  ServingPipeline serving(make_pipeline());
  const DocId seed_next_id = serving.next_id();
  std::vector<std::string> texts = make_ingest_texts(kRounds);

  // kHerd query threads + 1 writer thread rendezvous each round, then the
  // herd bursts while the writer publishes one more post.
  CyclicBarrier barrier(kHerd + 1);
  std::atomic<size_t> violations{0};
  {
    ScopedThreads threads;
    threads.spawn([&] {
      for (size_t round = 0; round < kRounds; ++round) {
        barrier.arrive_and_wait();
        serving.add_post(texts[round]);
      }
    });
    for (size_t t = 0; t < kHerd; ++t) {
      threads.spawn([&, t] {
        uint64_t last_epoch = 0;
        for (size_t round = 0; round < kRounds; ++round) {
          barrier.arrive_and_wait();
          auto r = serving.find_related(
              static_cast<DocId>((t * 7 + round) % kSeedPosts), 5);
          if (!check_snapshot(serving, r, seed_next_id, kRounds).empty() ||
              r.epoch < last_epoch) {
            violations.fetch_add(1);
          }
          last_epoch = r.epoch;
        }
      });
    }
  }
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(serving.epoch(), kRounds);
}

// ------------------------------------------------------ batched ingest ----

TEST(ConcurrencyStress, BatchedIngestPublishesAtomically) {
  constexpr size_t kBatch = 10;
  constexpr size_t kProbes = 200;
  ServingPipeline serving(make_pipeline(24));
  std::vector<std::string> texts = make_ingest_texts(kBatch);

  std::atomic<bool> start{false};
  std::atomic<bool> done{false};
  std::atomic<size_t> partial_observations{0};
  {
    ScopedThreads threads;
    threads.spawn([&] {
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      serving.add_posts(texts);
      done.store(true, std::memory_order_release);
    });
    threads.spawn([&] {
      start.store(true, std::memory_order_release);
      for (size_t i = 0; i < kProbes && !done.load(std::memory_order_acquire);
           ++i) {
        auto r = serving.find_related(3, 5);
        // The batch publishes under one exclusive acquisition: a query
        // sees either the pre-batch corpus or the complete batch.
        uint64_t published = r.num_docs - serving.seed_docs();
        if (published != 0 && published != kBatch) {
          partial_observations.fetch_add(1);
        }
      }
    });
  }
  EXPECT_EQ(partial_observations.load(), 0u);
  EXPECT_EQ(serving.num_docs(), serving.seed_docs() + kBatch);
}

// ------------------------------------------------ workload determinism ----

TEST(ConcurrencyStress, ConcurrentWorkloadReachesDeterministicFinalState) {
  // The same seeded workload, run twice with different interleavings, must
  // converge to the same corpus: identical document count, epoch, and
  // (sorted) ingested texts — ids may be assigned in a different order,
  // but the published set is the same.
  auto run_workload = [] {
    ServingPipeline serving(make_pipeline(24));
    std::vector<std::string> texts = make_ingest_texts(8);
    {
      ScopedThreads threads;
      for (size_t w = 0; w < 2; ++w) {
        threads.spawn([&, w] {
          for (size_t i = 0; i < 4; ++i) serving.add_post(texts[w * 4 + i]);
        });
      }
      threads.spawn([&] {
        for (size_t q = 0; q < 20; ++q) {
          serving.find_related(static_cast<DocId>(q % 24), 3);
        }
      });
    }
    std::vector<std::string> ingested;
    for (size_t d = serving.seed_docs();
         d < serving.quiescent().docs().size(); ++d) {
      ingested.push_back(serving.quiescent().docs()[d].text());
    }
    std::sort(ingested.begin(), ingested.end());
    return std::make_tuple(serving.num_docs(), serving.epoch(),
                           std::move(ingested));
  };
  auto a = run_workload();
  auto b = run_workload();
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
}

// ----------------------------------------- pruned path under mutation ----

// MaxScore pruning reads the sealed flat arena and its per-term bounds;
// every ingest re-seals the touched cluster indices before the epoch
// publishes. This hammer is the regression against a stale-seal reuse: a
// writer ingests each text TWICE in a row, and immediately after the
// pair publishes, querying the second copy must surface the first — a
// near-duplicate is related by construction, so a pruned path still
// serving the pre-ingest arena (whose bounds don't know the new unit)
// would return it missing. Readers hammer the pruned path throughout,
// checking the snapshot invariants under TSan; afterwards the quiescent
// corpus must answer every query bit-identically to an exhaustive-path
// pipeline replaying the same history.
TEST(ConcurrencyStress, PrunedPathStaysFreshAcrossIngestReseals) {
  constexpr size_t kPairs = 6;
  constexpr size_t kReaders = 2;
  constexpr size_t kQueriesPerReader = 30;

  ServingPipeline serving(make_pipeline(24));  // pruned: the default path
  const DocId seed_next_id = serving.next_id();
  std::vector<std::string> texts = make_ingest_texts(kPairs);

  std::atomic<size_t> violations{0};
  std::vector<std::string> first_violation(kReaders + 1);
  {
    ScopedThreads threads;
    threads.spawn([&] {
      for (size_t i = 0; i < kPairs; ++i) {
        DocId a = serving.add_post(texts[i]);
        DocId b = serving.add_post(texts[i]);
        ASSERT_EQ(b, a + 1);
        // The epoch bump for `b` is published, so the re-sealed arena
        // must already serve both copies: the duplicate is the strongest
        // possible match and may not be pruned away.
        auto r = serving.find_related(b, 5);
        bool found_twin = false;
        for (const ScoredDoc& sd : r.results) found_twin |= (sd.doc == a);
        if (!found_twin) {
          if (violations.fetch_add(1) == 0) {
            first_violation[kReaders] =
                "freshly ingested duplicate " + std::to_string(a) +
                " missing from pruned results of " + std::to_string(b);
          }
          return;
        }
      }
    });
    for (size_t t = 0; t < kReaders; ++t) {
      threads.spawn([&, t] {
        Rng rng(9000 + t);
        for (size_t q = 0; q < kQueriesPerReader; ++q) {
          DocId query = static_cast<DocId>(rng.next_below(24));
          auto r = serving.find_related(query, 5);
          std::string why =
              check_snapshot(serving, r, seed_next_id, 2 * kPairs);
          if (!why.empty()) {
            if (violations.fetch_add(1) == 0) first_violation[t] = why;
            return;
          }
        }
      });
    }
  }
  ASSERT_EQ(violations.load(), 0u)
      << "first violation: "
      << *std::find_if(first_violation.begin(), first_violation.end(),
                       [](const std::string& s) { return !s.empty(); });

  // Quiescent differential: replay the identical history through an
  // exhaustive-path pipeline; the mutated-then-resealed pruned pipeline
  // must agree bit for bit on every query.
  PipelineOptions exhaustive_opt;
  exhaustive_opt.matcher.exhaustive_fallback = true;
  GeneratorOptions gen;
  gen.num_posts = 24;
  gen.posts_per_scenario = 4;
  gen.seed = kSeedCorpusSeed;
  ServingPipeline reference(RelatedPostPipeline::build(
      analyze_corpus(generate_corpus(gen)), exhaustive_opt));
  for (size_t i = 0; i < kPairs; ++i) {
    reference.add_post(texts[i]);
    reference.add_post(texts[i]);
  }
  ASSERT_EQ(reference.num_docs(), serving.num_docs());
  for (DocId q = 0; q < seed_next_id + 2 * kPairs; ++q) {
    auto want = reference.find_related(q, 5);
    auto got = serving.find_related(q, 5);
    EXPECT_EQ(got.epoch, want.epoch) << "q " << q;
    ASSERT_EQ(got.results.size(), want.results.size()) << "q " << q;
    for (size_t i = 0; i < want.results.size(); ++i) {
      EXPECT_EQ(got.results[i].doc, want.results[i].doc) << "q " << q;
      EXPECT_EQ(got.results[i].score, want.results[i].score) << "q " << q;
    }
  }
}

// --------------------------------------------------- query-cache hammer ----

TEST(ConcurrencyStress, CacheHammerKeepsSnapshotInvariants) {
  // A deliberately tiny sharded cache under three simultaneous pressures:
  // hot-key readers replaying one (query, k) (maximal hit traffic on one
  // shard's LRU head), sweep readers cycling many keys (constant capacity
  // evictions), and writers bumping the epoch (every publish invalidates
  // every entry). Every result — hit or miss — must still satisfy the
  // snapshot invariants, and no reader may ever see the epoch move
  // backwards (a stale cache hit after a fresh miss would do exactly
  // that). Run under IBSEG_SANITIZE=thread this is the race-freedom proof
  // for the cache's lock-free epoch validation + per-shard mutexes.
  constexpr size_t kWriters = 2;
  constexpr size_t kHotReaders = 2;
  constexpr size_t kSweepReaders = 2;
  constexpr size_t kIngestsPerWriter = 5;
  constexpr size_t kQueriesPerReader = 60;
  constexpr size_t kTotalIngests = kWriters * kIngestsPerWriter;
  constexpr DocId kHotKey = 7;

  ServingOptions options;
  options.cache.capacity = 8;  // far below the live key set
  options.cache.shards = 2;
  ServingPipeline serving(make_pipeline(), options);
  ASSERT_NE(serving.query_cache(), nullptr);
  const DocId seed_next_id = serving.next_id();
  std::vector<std::string> texts = make_ingest_texts(kTotalIngests);

  std::atomic<size_t> violations{0};
  std::vector<std::string> first_violation(kHotReaders + kSweepReaders);

  {
    ScopedThreads threads;
    for (size_t w = 0; w < kWriters; ++w) {
      threads.spawn([&, w] {
        for (size_t i = 0; i < kIngestsPerWriter; ++i) {
          serving.add_post(texts[w * kIngestsPerWriter + i]);
        }
      });
    }
    auto reader = [&](size_t slot, auto pick_query) {
      uint64_t last_epoch = 0;
      for (size_t q = 0; q < kQueriesPerReader; ++q) {
        auto [query, k] = pick_query(q);
        ServingPipeline::QueryResult r = serving.find_related(query, k);
        std::string why =
            check_snapshot(serving, r, seed_next_id, kTotalIngests);
        if (why.empty() && r.epoch < last_epoch) {
          why = "epoch moved backwards within one reader (stale cache hit)";
        }
        if (!why.empty()) {
          if (violations.fetch_add(1) == 0) first_violation[slot] = why;
          return;
        }
        last_epoch = r.epoch;
      }
    };
    for (size_t t = 0; t < kHotReaders; ++t) {
      threads.spawn([&, t] {
        reader(t, [kHotKey](size_t) { return std::make_pair(kHotKey, 5); });
      });
    }
    for (size_t t = 0; t < kSweepReaders; ++t) {
      threads.spawn([&, t] {
        Rng rng(2000 + t);
        reader(kHotReaders + t, [&rng](size_t q) {
          // Vary query AND k: distinct cache keys even for one doc id.
          DocId query = static_cast<DocId>(
              rng.next_below(static_cast<uint64_t>(kSeedPosts)));
          return std::make_pair(query, q % 2 == 0 ? 3 : 5);
        });
      });
    }
  }  // joins all threads

  ASSERT_EQ(violations.load(), 0u)
      << "first violation: "
      << *std::find_if(first_violation.begin(), first_violation.end(),
                       [](const std::string& s) { return !s.empty(); });

  // The sweep over ~2x-capacity keys must have evicted; the hot key must
  // have hit at least once.
  EXPECT_GT(serving.query_cache()->evictions(), 0u);
  EXPECT_GT(serving.query_cache()->hits(), 0u);

  // Quiescent cross-check: with all writers joined, a cache-served answer
  // must equal the wrapped pipeline's direct answer.
  auto fill = serving.find_related(kHotKey, 5);
  auto hit = serving.find_related(kHotKey, 5);
  auto want = serving.quiescent().find_related(kHotKey, 5);
  EXPECT_EQ(fill.epoch, kTotalIngests);
  EXPECT_EQ(hit.epoch, kTotalIngests);
  ASSERT_EQ(hit.results.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(hit.results[i].doc, want[i].doc);
    EXPECT_EQ(hit.results[i].score, want[i].score);
  }
}

// ------------------------------------------- recluster under contention ----

TEST(ConcurrencyStress, ReclusterUnderReadersAndWriters) {
  // Background re-clustering epochs racing a full reader/writer mix, with
  // the cache on and the pending pool active: every query must still see
  // a consistent snapshot (num_docs/epoch lockstep survives the swap —
  // the swap publishes no documents), per-reader epoch AND offline
  // generation stay monotone, and the final state carries every ingest
  // across every swap. Under TSan this is the proof the generation
  // machinery (recluster_job_mu_ + the exclusive swap + generation-keyed
  // cache) is race-free.
  constexpr size_t kWriters = 2;
  constexpr size_t kReaders = 3;
  constexpr size_t kIngestsPerWriter = 8;
  constexpr size_t kQueriesPerReader = 30;
  constexpr size_t kTotalIngests = kWriters * kIngestsPerWriter;
  constexpr uint64_t kReclusters = 3;

  ServingOptions options;
  options.cache.capacity = 64;
  options.recluster.pending_distance_threshold = 0.0;  // pool every ingest
  ServingPipeline serving(make_pipeline(), options);
  const DocId seed_next_id = serving.next_id();
  std::vector<std::string> texts = make_ingest_texts(kTotalIngests);

  std::atomic<size_t> violations{0};
  std::vector<std::string> first_violation(kReaders + 1);

  {
    ScopedThreads threads;
    for (size_t w = 0; w < kWriters; ++w) {
      threads.spawn([&, w] {
        for (size_t i = 0; i < kIngestsPerWriter; ++i) {
          serving.add_post(texts[w * kIngestsPerWriter + i]);
        }
      });
    }
    // The recluster thread: epochs fire while ingests and queries flow.
    threads.spawn([&] {
      uint64_t prev = serving.offline_generation();
      for (uint64_t i = 0; i < kReclusters; ++i) {
        uint64_t g = serving.recluster();
        if (g <= prev) {
          if (violations.fetch_add(1) == 0) {
            first_violation[kReaders] = "generation not strictly monotone";
          }
          return;
        }
        prev = g;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    for (size_t t = 0; t < kReaders; ++t) {
      threads.spawn([&, t] {
        Rng rng(3000 + t);
        uint64_t last_epoch = 0;
        uint64_t last_gen = 0;
        for (size_t q = 0; q < kQueriesPerReader; ++q) {
          DocId query = static_cast<DocId>(
              rng.next_below(static_cast<uint64_t>(kSeedPosts)));
          auto r = serving.find_related(query, 5);
          std::string why =
              check_snapshot(serving, r, seed_next_id, kTotalIngests);
          uint64_t gen = serving.offline_generation();
          if (why.empty() && r.epoch < last_epoch) {
            why = "epoch moved backwards within one reader";
          }
          if (why.empty() && gen < last_gen) {
            why = "offline generation moved backwards within one reader";
          }
          if (!why.empty()) {
            if (violations.fetch_add(1) == 0) first_violation[t] = why;
            return;
          }
          last_epoch = r.epoch;
          last_gen = gen;
        }
      });
    }
  }  // joins all threads

  ASSERT_EQ(violations.load(), 0u)
      << "first violation: "
      << *std::find_if(first_violation.begin(), first_violation.end(),
                       [](const std::string& s) { return !s.empty(); });

  // Quiescence: no ingest was lost across any swap, the generation
  // reached exactly the fired count, and the invariant held end to end.
  EXPECT_EQ(serving.offline_generation(), kReclusters);
  EXPECT_EQ(serving.epoch(), kTotalIngests);
  EXPECT_EQ(serving.num_docs(), serving.seed_docs() + kTotalIngests);
  EXPECT_EQ(serving.next_id(), seed_next_id + kTotalIngests);

  // A final quiescent epoch folds everything into the offline coverage.
  EXPECT_EQ(serving.recluster(), kReclusters + 1);
  EXPECT_EQ(serving.offline_docs(), serving.num_docs());
  EXPECT_EQ(serving.docs_since_recluster(), 0u);
  EXPECT_EQ(serving.pending_pool_size(), 0u);
  for (DocId id = seed_next_id; id < seed_next_id + kTotalIngests; ++id) {
    auto r = serving.find_related(id, 3);
    EXPECT_EQ(r.num_docs, serving.num_docs());
    for (const ScoredDoc& sd : r.results) EXPECT_NE(sd.doc, id);
  }
}

TEST(ConcurrencyStress, ShardedReclusterWorkerUnderReadersAndWriters) {
  // The production wiring under load: a ShardedServing deployment with
  // the cache on and a ReclusterWorker whose docs-since trigger fires
  // mid-stream, racing readers and writers across the scatter-gather
  // path. Readers check the summed-coordinate snapshot invariant and
  // both monotonicities; afterwards the worker is guaranteed at least
  // one epoch (the trigger condition persists until a swap clears it).
  constexpr size_t kWriters = 2;
  constexpr size_t kReaders = 2;
  constexpr size_t kIngestsPerWriter = 8;
  constexpr size_t kQueriesPerReader = 25;
  constexpr size_t kTotalIngests = kWriters * kIngestsPerWriter;

  ServingOptions options;
  options.num_shards = 3;
  options.cache.capacity = 64;
  GeneratorOptions gen;
  gen.num_posts = kSeedPosts;
  gen.posts_per_scenario = 4;
  gen.seed = kSeedCorpusSeed;
  auto sharded =
      ShardedServing::create(analyze_corpus(generate_corpus(gen)), {}, options);
  ASSERT_NE(sharded, nullptr);
  const size_t seed_total = sharded->num_docs();
  const DocId seed_next_id = sharded->next_id();
  std::vector<std::string> texts = make_ingest_texts(kTotalIngests);

  ReclusterPolicy policy;
  policy.max_docs_since = 6;
  policy.poll_interval_ms = 2;
  ReclusterWorker worker(*sharded, policy);
  worker.start();

  std::atomic<size_t> violations{0};
  std::vector<std::string> first_violation(kReaders);

  {
    ScopedThreads threads;
    for (size_t w = 0; w < kWriters; ++w) {
      threads.spawn([&, w] {
        for (size_t i = 0; i < kIngestsPerWriter; ++i) {
          sharded->add_post(texts[w * kIngestsPerWriter + i]);
        }
      });
    }
    for (size_t t = 0; t < kReaders; ++t) {
      threads.spawn([&, t] {
        Rng rng(4000 + t);
        uint64_t last_epoch = 0;
        uint64_t last_gen = 0;
        for (size_t q = 0; q < kQueriesPerReader; ++q) {
          DocId query = static_cast<DocId>(
              rng.next_below(static_cast<uint64_t>(kSeedPosts)));
          auto r = sharded->find_related(query, 5);
          std::string why = check_snapshot_result(r, seed_total, seed_next_id,
                                                  kTotalIngests);
          uint64_t gen = sharded->offline_generation();
          if (why.empty() && r.epoch < last_epoch) {
            why = "epoch moved backwards within one reader";
          }
          if (why.empty() && gen < last_gen) {
            why = "offline generation moved backwards within one reader";
          }
          if (!why.empty()) {
            if (violations.fetch_add(1) == 0) first_violation[t] = why;
            return;
          }
          last_epoch = r.epoch;
          last_gen = gen;
        }
      });
    }
  }  // joins writers + readers; the worker keeps polling

  ASSERT_EQ(violations.load(), 0u)
      << "first violation: "
      << *std::find_if(first_violation.begin(), first_violation.end(),
                       [](const std::string& s) { return !s.empty(); });

  // 16 ingests against a trip point of 6: the trigger condition holds
  // until a swap clears it, so the worker must fire within the timeout.
  for (int i = 0; i < 2000 && sharded->offline_generation() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  worker.stop();  // joins; no epoch in flight afterwards
  EXPECT_GE(sharded->offline_generation(), 1u);
  EXPECT_GE(worker.reclusters_fired(), 1u);
  EXPECT_EQ(sharded->epoch(), kTotalIngests);
  EXPECT_EQ(sharded->num_docs(), seed_total + kTotalIngests);

  // Quiescent sanity across the reclustered deployment.
  for (DocId id = seed_next_id; id < seed_next_id + kTotalIngests; ++id) {
    auto r = sharded->find_related(id, 3);
    EXPECT_EQ(r.num_docs, sharded->num_docs());
    for (const ScoredDoc& sd : r.results) EXPECT_NE(sd.doc, id);
  }
}

TEST(ConcurrencyStress, MetricPrimitivesAreRaceFreeUnderMixedHammer) {
  // Counter/Gauge/Histogram are relaxed-atomic by design; this hammer is
  // what lets TSan certify that claim. Eight threads hit one instance of
  // each primitive through a barrier-released burst, then counts must be
  // exact (relaxed ordering never loses increments).
  obs::Counter counter;
  obs::Gauge gauge;
  obs::Histogram histogram;
  constexpr size_t kThreads = 8;
  constexpr size_t kOpsPerThread = 20000;
  CyclicBarrier barrier(kThreads);
  {
    ScopedThreads threads;
    for (size_t t = 0; t < kThreads; ++t) {
      threads.spawn([&, t] {
        barrier.arrive_and_wait();
        for (size_t i = 0; i < kOpsPerThread; ++i) {
          counter.inc();
          gauge.add(1.0);
          histogram.observe(1e-6 * static_cast<double>(t + 1));
        }
      });
    }
  }
  EXPECT_EQ(counter.value(), kThreads * kOpsPerThread);
  EXPECT_DOUBLE_EQ(gauge.value(),
                   static_cast<double>(kThreads * kOpsPerThread));
  EXPECT_EQ(histogram.count(), kThreads * kOpsPerThread);
}

TEST(ConcurrencyStress, RegistryRendersWhileMetricsAreWritten) {
  // A scrape (render_text) racing live instrument writes must be safe: the
  // registry lock only guards the directory, while instrument reads are
  // relaxed loads of values other threads are updating.
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("hammer_total", "Hammered.");
  obs::Histogram& histogram =
      registry.histogram("hammer_seconds", "Hammered.", {{"op", "mix"}});
  std::atomic<bool> stop{false};
  {
    ScopedThreads threads;
    for (size_t t = 0; t < 4; ++t) {
      threads.spawn([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          counter.inc();
          histogram.observe(5e-4);
        }
      });
    }
    threads.spawn([&] {
      for (int i = 0; i < 50; ++i) {
        std::string text = registry.render_text();
        EXPECT_NE(text.find("hammer_total"), std::string::npos);
        EXPECT_NE(text.find("hammer_seconds_count"), std::string::npos);
      }
      stop.store(true, std::memory_order_relaxed);
    });
  }
  EXPECT_GT(counter.value(), 0u);
  EXPECT_EQ(histogram.count(), counter.value());
}

}  // namespace
}  // namespace ibseg
