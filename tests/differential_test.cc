// Differential harness for the parallel/cached query path. The parallel
// per-intention fan-out (MatcherOptions::query_threads), the batched
// find_related_batch API and the serving-layer result cache are only
// shippable because each is provably identical — ranked lists AND scores,
// bit for bit — to the serial, uncached reference execution. These tests
// are property-style: seeded random corpora from src/datagen, every
// document as the reference query, multiple k, with interleaved ingests
// exercising the cache's epoch invalidation. Registered under the
// `differential` ctest label; scripts/reproduce.sh IBSEG_DIFF_CHECK=1
// runs the label under TSan.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/serving.h"
#include "datagen/post_generator.h"
#include "storage/snapshot.h"

namespace ibseg {
namespace {

constexpr size_t kPosts = 32;

GeneratorOptions corpus_options(size_t posts, uint64_t seed) {
  GeneratorOptions gen;
  gen.num_posts = posts;
  gen.posts_per_scenario = 4;
  gen.seed = seed;
  return gen;
}

// One offline phase per (posts, seed); per-variant pipelines restore from
// its snapshot so every variant indexes identical state and only the
// query-path configuration differs.
struct SharedOffline {
  SyntheticCorpus corpus;
  PipelineSnapshot snapshot;

  explicit SharedOffline(size_t posts, uint64_t seed)
      : corpus(generate_corpus(corpus_options(posts, seed))) {
    RelatedPostPipeline offline =
        RelatedPostPipeline::build(analyze_corpus(corpus));
    snapshot = offline.snapshot();
  }

  RelatedPostPipeline pipeline(int query_threads) const {
    PipelineOptions options;
    options.matcher.query_threads = query_threads;
    return RelatedPostPipeline::build_from_snapshot(analyze_corpus(corpus),
                                                    snapshot, options);
  }

  /// Variant with full control of the matcher options (the pruned vs
  /// exhaustive sweeps mutate top_n_factor / score_threshold /
  /// exhaustive_fallback).
  RelatedPostPipeline pipeline_with(const MatcherOptions& matcher) const {
    PipelineOptions options;
    options.matcher = matcher;
    return RelatedPostPipeline::build_from_snapshot(analyze_corpus(corpus),
                                                    snapshot, options);
  }
};

void expect_identical(const std::vector<ScoredDoc>& got,
                      const std::vector<ScoredDoc>& want,
                      const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].doc, want[i].doc) << what << " rank " << i;
    // operator== on the doubles: bit-identical is the contract, not
    // merely close.
    EXPECT_EQ(got[i].score, want[i].score) << what << " rank " << i;
  }
}

// ------------------------------------------- serial vs parallel fan-out ----

TEST(Differential, SerialVsParallelRankingsIdentical) {
  for (uint64_t seed : {11u, 777u}) {
    SharedOffline offline(kPosts, seed);
    RelatedPostPipeline serial = offline.pipeline(0);
    RelatedPostPipeline par2 = offline.pipeline(2);
    RelatedPostPipeline par8 = offline.pipeline(8);
    for (DocId q = 0; q < kPosts; ++q) {
      for (int k : {1, 3, 10}) {
        auto want = serial.find_related(q, k);
        expect_identical(par2.find_related(q, k), want,
                         "seed " + std::to_string(seed) + " q " +
                             std::to_string(q) + " k " + std::to_string(k) +
                             " threads 2");
        expect_identical(par8.find_related(q, k), want,
                         "seed " + std::to_string(seed) + " q " +
                             std::to_string(q) + " k " + std::to_string(k) +
                             " threads 8");
      }
    }
  }
}

TEST(Differential, BatchMatchesPerQueryInEveryThreadConfig) {
  SharedOffline offline(kPosts, 11);
  std::vector<DocId> queries;
  for (DocId q = 0; q < kPosts; ++q) queries.push_back(q);
  queries.push_back(9999);  // unknown id -> empty result, also in batch
  RelatedPostPipeline serial = offline.pipeline(0);
  for (int threads : {0, 2, 8}) {
    RelatedPostPipeline p = offline.pipeline(threads);
    auto batched = p.matcher().find_related_batch(queries, 5);
    ASSERT_EQ(batched.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      expect_identical(batched[i], serial.find_related(queries[i], 5),
                       "batch threads " + std::to_string(threads) + " q " +
                           std::to_string(queries[i]));
    }
  }
}

// --------------------------------- cached vs uncached across ingests ----

// The cached pipeline must be indistinguishable from the uncached one at
// every step of an interleaved query/ingest schedule: hits must replay
// exactly what the index would answer, and every ingest must invalidate
// (epoch bump) so no stale ranking ever escapes. Epochs are compared too:
// a cached answer carrying an old epoch after an ingest is a failure even
// if the ranking happens to match.
TEST(Differential, CachedVsUncachedIdenticalAcrossInterleavedIngests) {
  SharedOffline offline(kPosts, 11);
  ServingPipeline uncached(offline.pipeline(0));
  ServingOptions with_cache;
  with_cache.cache.capacity = 16;  // small: exercises eviction mid-run
  with_cache.cache.shards = 2;
  ServingPipeline cached(offline.pipeline(0), with_cache);
  ASSERT_NE(cached.query_cache(), nullptr);
  ASSERT_EQ(uncached.query_cache(), nullptr);

  SyntheticCorpus ingest_corpus =
      generate_corpus(corpus_options(6, /*seed=*/555));
  auto compare_all = [&](const std::string& when) {
    for (DocId q = 0; q < kPosts; ++q) {
      for (int k : {3, 7}) {
        auto want = uncached.find_related(q, k);
        // Twice: first call may fill the cache, second must hit it —
        // both must equal the uncached answer, epoch included.
        for (int round = 0; round < 2; ++round) {
          auto got = cached.find_related(q, k);
          EXPECT_EQ(got.epoch, want.epoch)
              << when << " q " << q << " k " << k << " round " << round;
          EXPECT_EQ(got.num_docs, want.num_docs)
              << when << " q " << q << " k " << k << " round " << round;
          expect_identical(got.results, want.results,
                           when + " q " + std::to_string(q) + " k " +
                               std::to_string(k) + " round " +
                               std::to_string(round));
        }
      }
    }
  };

  compare_all("pre-ingest");
  EXPECT_GT(cached.query_cache()->hits(), 0u);
  for (size_t i = 0; i < ingest_corpus.posts.size(); ++i) {
    DocId a = uncached.add_post(ingest_corpus.posts[i].text);
    DocId b = cached.add_post(ingest_corpus.posts[i].text);
    ASSERT_EQ(a, b);
    compare_all("after ingest " + std::to_string(i));
  }
  // The tiny capacity must have evicted along the way — otherwise this
  // test never exercised the eviction path.
  EXPECT_GT(cached.query_cache()->evictions(), 0u);
}

TEST(Differential, BatchedServingMatchesUncachedPerQuery) {
  SharedOffline offline(kPosts, 777);
  ServingPipeline uncached(offline.pipeline(0));
  ServingOptions with_cache;
  with_cache.cache.capacity = 64;
  ServingPipeline cached(offline.pipeline(8), with_cache);

  std::vector<DocId> queries;
  for (DocId q = 0; q < kPosts; ++q) queries.push_back(q % (kPosts / 2));
  // Twice: second pass is served mostly from cache; both must agree.
  for (int round = 0; round < 2; ++round) {
    auto batch = cached.find_related_batch(queries, 5);
    ASSERT_EQ(batch.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      auto want = uncached.find_related(queries[i], 5);
      EXPECT_EQ(batch[i].epoch, want.epoch);
      EXPECT_EQ(batch[i].num_docs, want.num_docs);
      expect_identical(batch[i].results, want.results,
                       "serving batch round " + std::to_string(round) +
                           " q " + std::to_string(queries[i]));
    }
  }
  EXPECT_GT(cached.query_cache()->hits(), 0u);
}

// ----------------------------------------------- tie-handling regression ----

// Equal-score candidates must rank by ascending DocId — in the final
// merge AND inside each per-intention list (where a boundary tie used to
// be resolved by index-insertion order). Duplicated post texts guarantee
// exact score ties.
TEST(Differential, EqualScoreTiesOrderByDocId) {
  SyntheticCorpus corpus = generate_corpus(corpus_options(16, 11));
  std::vector<Document> docs = analyze_corpus(corpus);
  const DocId base = static_cast<DocId>(docs.size());
  for (DocId i = 0; i < 3; ++i) {
    docs.push_back(Document::analyze(base + i, corpus.posts[0].text));
  }
  PipelineOptions serial_opt;
  RelatedPostPipeline serial =
      RelatedPostPipeline::build(std::move(docs), serial_opt);

  size_t tie_runs = 0;
  for (DocId q : {static_cast<DocId>(0), base, base + 1, base + 2}) {
    for (int k : {1, 2, 10}) {
      auto related = serial.find_related(q, k);
      for (size_t i = 1; i < related.size(); ++i) {
        if (related[i].score == related[i - 1].score) {
          ++tie_runs;
          EXPECT_LT(related[i - 1].doc, related[i].doc)
              << "equal-score run out of DocId order (q " << q << " k " << k
              << ")";
        }
      }
    }
    // Per-intention lists obey the same rule.
    for (int c = 0; c < serial.matcher().num_clusters(); ++c) {
      auto list = serial.matcher().match_single_intention(c, q, 10);
      for (size_t i = 1; i < list.size(); ++i) {
        if (list[i].score == list[i - 1].score) {
          EXPECT_LT(list[i - 1].doc, list[i].doc)
              << "per-intention equal-score run out of DocId order (cluster "
              << c << ")";
        }
      }
    }
  }
  // The duplicated posts must actually have produced score ties —
  // otherwise this regression test asserts nothing.
  EXPECT_GT(tie_runs, 0u);
}

// ------------------------------------- pruned vs exhaustive selection ----

// MaxScore pruning (score_units_maxscore, the default per-intention path)
// must be indistinguishable — bit for bit — from the historic exhaustive
// score-then-select path it replaced. The sweep crosses random corpora,
// every document as the query, k below/at/above the per-intention list
// length, top_n_factor (which sets n = factor*k and therefore where the
// selection boundary falls), and all three scoring functions. Any
// divergence — a doc admitted by one path and pruned by the other, or a
// score differing in the last ulp — fails.
TEST(Differential, PrunedVsExhaustiveSweep) {
  for (uint64_t seed : {11u, 777u}) {
    SharedOffline offline(kPosts, seed);
    for (ScoringFunction fn :
         {ScoringFunction::kPaperTfIdf, ScoringFunction::kBm25,
          ScoringFunction::kQueryLikelihood}) {
      for (int factor : {1, 2, 5}) {
        MatcherOptions pruned;
        pruned.scoring.function = fn;
        pruned.top_n_factor = factor;
        MatcherOptions exhaustive = pruned;
        exhaustive.exhaustive_fallback = true;
        RelatedPostPipeline p = offline.pipeline_with(pruned);
        RelatedPostPipeline e = offline.pipeline_with(exhaustive);
        for (DocId q = 0; q < kPosts; ++q) {
          // k sweep: tiny heaps (max pruning pressure), mid, the corpus
          // size, and k far beyond the corpus (pruning must degrade to
          // keep-everything without dropping a single positive score).
          for (int k : {1, 5, 10, 50, 1000}) {
            expect_identical(
                p.find_related(q, k), e.find_related(q, k),
                "pruned-vs-exhaustive seed " + std::to_string(seed) + " fn " +
                    std::to_string(static_cast<int>(fn)) + " factor " +
                    std::to_string(factor) + " q " + std::to_string(q) +
                    " k " + std::to_string(k));
          }
        }
      }
    }
  }
}

// Threshold mode (score_threshold > 0 replaces the per-intention top-n
// with keep-everything-above-the-bar) flows through a different selection
// rule in the pruned path: a static theta with keep-on-equality. Both
// paths must keep the exact same set.
TEST(Differential, PrunedVsExhaustiveThresholdMode) {
  SharedOffline offline(kPosts, 11);
  for (double threshold : {0.01, 0.2, 1.0}) {
    MatcherOptions pruned;
    pruned.score_threshold = threshold;
    MatcherOptions exhaustive = pruned;
    exhaustive.exhaustive_fallback = true;
    RelatedPostPipeline p = offline.pipeline_with(pruned);
    RelatedPostPipeline e = offline.pipeline_with(exhaustive);
    for (DocId q = 0; q < kPosts; ++q) {
      for (int k : {3, 10}) {
        expect_identical(p.find_related(q, k), e.find_related(q, k),
                         "threshold " + std::to_string(threshold) + " q " +
                             std::to_string(q) + " k " + std::to_string(k));
      }
    }
  }
}

// Pruning must stay exact across interleaved ingests: every add_post
// re-seals the flat postings and refreshes the per-term bounds, and a
// stale bound (too small after a new high-tf posting) would silently
// drop documents. Ingest into both pipelines in lockstep and compare the
// full query sweep after every post.
TEST(Differential, PrunedVsExhaustiveAcrossInterleavedIngests) {
  SharedOffline offline(kPosts, 777);
  MatcherOptions pruned;
  MatcherOptions exhaustive;
  exhaustive.exhaustive_fallback = true;
  ServingPipeline p(offline.pipeline_with(pruned));
  ServingPipeline e(offline.pipeline_with(exhaustive));

  SyntheticCorpus ingest_corpus =
      generate_corpus(corpus_options(6, /*seed=*/999));
  auto compare_all = [&](const std::string& when, size_t num_docs) {
    for (DocId q = 0; q < num_docs; ++q) {
      for (int k : {1, 5, 50}) {
        auto got = p.find_related(q, k);
        auto want = e.find_related(q, k);
        EXPECT_EQ(got.epoch, want.epoch) << when << " q " << q << " k " << k;
        expect_identical(got.results, want.results,
                         when + " q " + std::to_string(q) + " k " +
                             std::to_string(k));
      }
    }
  };

  compare_all("pre-ingest", kPosts);
  for (size_t i = 0; i < ingest_corpus.posts.size(); ++i) {
    DocId a = p.add_post(ingest_corpus.posts[i].text);
    DocId b = e.add_post(ingest_corpus.posts[i].text);
    ASSERT_EQ(a, b);
    compare_all("after ingest " + std::to_string(i), kPosts + i + 1);
  }
}

// Selection-boundary ties are where a pruning bug hides best: when the
// heap is full and a candidate's upper bound EQUALS the current worst
// score, skipping is only correct for larger DocIds. Duplicated post
// texts force exact score ties straddling the per-intention boundary
// (n = factor*k), and the per-intention lists of both paths must agree
// element-for-element — order included.
TEST(Differential, PrunedTieOrderAtSelectionBoundary) {
  SyntheticCorpus corpus = generate_corpus(corpus_options(16, 11));
  std::vector<Document> docs = analyze_corpus(corpus);
  const DocId base = static_cast<DocId>(docs.size());
  // Enough duplicates that the tie run crosses n for small k.
  for (DocId i = 0; i < 5; ++i) {
    docs.push_back(Document::analyze(base + i, corpus.posts[0].text));
  }
  PipelineOptions pruned_opt;
  pruned_opt.matcher.top_n_factor = 1;  // boundary exactly at k
  PipelineOptions exhaustive_opt = pruned_opt;
  exhaustive_opt.matcher.exhaustive_fallback = true;
  std::vector<Document> docs_copy = docs;
  RelatedPostPipeline p =
      RelatedPostPipeline::build(std::move(docs), pruned_opt);
  RelatedPostPipeline e =
      RelatedPostPipeline::build(std::move(docs_copy), exhaustive_opt);

  size_t tie_runs = 0;
  for (DocId q : {static_cast<DocId>(0), base, base + 2, base + 4}) {
    for (int k : {1, 2, 3, 10}) {
      expect_identical(p.find_related(q, k), e.find_related(q, k),
                       "boundary-tie q " + std::to_string(q) + " k " +
                           std::to_string(k));
    }
    // The per-intention lists themselves (before the cross-intention
    // merge) must match, and their equal-score runs must ascend by DocId.
    for (int c = 0; c < p.matcher().num_clusters(); ++c) {
      for (int n : {1, 2, 4, 16}) {
        auto got = p.matcher().match_single_intention(c, q, n);
        auto want = e.matcher().match_single_intention(c, q, n);
        expect_identical(got, want, "boundary-tie cluster " +
                                        std::to_string(c) + " n " +
                                        std::to_string(n));
        for (size_t i = 1; i < got.size(); ++i) {
          if (got[i].score == got[i - 1].score) {
            ++tie_runs;
            EXPECT_LT(got[i - 1].doc, got[i].doc)
                << "pruned equal-score run out of DocId order (cluster " << c
                << " n " << n << ")";
          }
        }
      }
    }
  }
  EXPECT_GT(tie_runs, 0u);  // the duplicates must actually have tied
}

// The pruned path must report work honestly: across the sweep it scores
// at most as many units as the exhaustive path (it is a pruning, not a
// rescoring), and on at least one query it must actually abandon or skip
// something — otherwise the MaxScore machinery is dead code.
TEST(Differential, PrunedPathDoesStrictlyLessWork) {
  SharedOffline offline(kPosts, 11);
  MatcherOptions pruned;
  pruned.top_n_factor = 1;
  MatcherOptions exhaustive = pruned;
  exhaustive.exhaustive_fallback = true;
  RelatedPostPipeline p = offline.pipeline_with(pruned);
  RelatedPostPipeline e = offline.pipeline_with(exhaustive);
  for (DocId q = 0; q < kPosts; ++q) {
    expect_identical(p.find_related(q, 1), e.find_related(q, 1),
                     "work-check q " + std::to_string(q));
  }
  uint64_t pruned_scored =
      p.matcher().work_counters().units_scored.load(std::memory_order_relaxed);
  uint64_t exhaustive_scored =
      e.matcher().work_counters().units_scored.load(std::memory_order_relaxed);
  EXPECT_LE(pruned_scored, exhaustive_scored);
  EXPECT_LT(pruned_scored, exhaustive_scored)
      << "MaxScore never skipped a unit across " << kPosts
      << " k=1 queries — pruning is not engaging";
}

}  // namespace
}  // namespace ibseg
