// Integration tests for src/core: the end-to-end pipeline and the method
// registry behind the paper's overall evaluation.

#include <gtest/gtest.h>

#include <set>

#include "core/methods.h"
#include "core/pipeline.h"
#include "datagen/post_generator.h"
#include "eval/precision.h"

namespace ibseg {
namespace {

SyntheticCorpus small_corpus(ForumDomain domain = ForumDomain::kTechSupport,
                             uint64_t seed = 42, size_t posts = 80) {
  GeneratorOptions gen;
  gen.domain = domain;
  gen.num_posts = posts;
  gen.posts_per_scenario = 4;
  gen.seed = seed;
  return generate_corpus(gen);
}

TEST(Pipeline, BuildsAndAnswersQueries) {
  SyntheticCorpus corpus = small_corpus();
  std::vector<Document> docs = analyze_corpus(corpus);
  RelatedPostPipeline pipeline = RelatedPostPipeline::build(std::move(docs));
  EXPECT_GE(pipeline.clustering().num_clusters(), 1);
  EXPECT_EQ(pipeline.segmentations().size(), corpus.posts.size());
  auto related = pipeline.find_related(1, 5);
  EXPECT_LE(related.size(), 5u);
  for (const ScoredDoc& sd : related) EXPECT_NE(sd.doc, 1u);
  // Timings populated.
  EXPECT_GE(pipeline.timings().segmentation_total_sec, 0.0);
  EXPECT_GE(pipeline.timings().grouping_sec, 0.0);
}

TEST(Pipeline, ParallelSegmentationMatchesSerial) {
  SyntheticCorpus corpus = small_corpus(ForumDomain::kTravel, 7);
  PipelineOptions serial;
  serial.num_threads = 1;
  PipelineOptions parallel;
  parallel.num_threads = 4;
  auto p1 = RelatedPostPipeline::build(analyze_corpus(corpus), serial);
  auto p2 = RelatedPostPipeline::build(analyze_corpus(corpus), parallel);
  ASSERT_EQ(p1.segmentations().size(), p2.segmentations().size());
  for (size_t d = 0; d < p1.segmentations().size(); ++d) {
    EXPECT_EQ(p1.segmentations()[d], p2.segmentations()[d]) << d;
  }
}

TEST(Methods, AllFiveBuildAndRespectContract) {
  SyntheticCorpus corpus = small_corpus(ForumDomain::kProgramming, 3);
  std::vector<Document> docs = analyze_corpus(corpus);
  MethodConfig config;
  config.lda.iterations = 20;
  for (MethodKind kind :
       {MethodKind::kLda, MethodKind::kFullText, MethodKind::kContentMR,
        MethodKind::kSentIntentMR, MethodKind::kIntentIntentMR}) {
    MethodBuildStats stats;
    auto method = build_method(kind, docs, config, &stats);
    ASSERT_NE(method, nullptr);
    EXPECT_EQ(method->kind(), kind);
    EXPECT_STRNE(method->name(), "?");
    auto related = method->find_related(2, 5);
    EXPECT_LE(related.size(), 5u);
    std::set<DocId> seen;
    for (const ScoredDoc& sd : related) {
      EXPECT_NE(sd.doc, 2u) << method->name();
      EXPECT_TRUE(seen.insert(sd.doc).second) << "duplicate in top-k";
      EXPECT_GT(sd.score, 0.0);
    }
  }
}

TEST(Methods, IntentMethodsReportClusterCounts) {
  SyntheticCorpus corpus = small_corpus(ForumDomain::kTechSupport, 5, 100);
  std::vector<Document> docs = analyze_corpus(corpus);
  MethodBuildStats stats;
  auto method =
      build_method(MethodKind::kIntentIntentMR, docs, MethodConfig{}, &stats);
  EXPECT_GE(stats.num_clusters, 1);
  EXPECT_LE(stats.num_clusters, 16);
  EXPECT_GE(stats.segmentation_sec, 0.0);
}

TEST(Methods, SegmentationAwareMethodsBeatLda) {
  // The clearest Table 4 shape: LDA is far below every retrieval method.
  SyntheticCorpus corpus = small_corpus(ForumDomain::kTechSupport, 11, 120);
  std::vector<Document> docs = analyze_corpus(corpus);
  MethodConfig config;
  config.lda.iterations = 60;
  auto evaluate = [&](MethodKind kind) {
    auto method = build_method(kind, docs, config, nullptr);
    std::vector<double> precisions;
    for (DocId q = 0; q < docs.size(); q += 2) {
      auto related = method->find_related(q, 5);
      std::vector<DocId> ids;
      for (const ScoredDoc& sd : related) ids.push_back(sd.doc);
      int scenario = corpus.posts[q].scenario_id;
      precisions.push_back(list_precision(ids, [&](DocId d) {
        return corpus.posts[d].scenario_id == scenario;
      }));
    }
    return summarize_precision(precisions).mean;
  };
  double lda = evaluate(MethodKind::kLda);
  double intent = evaluate(MethodKind::kIntentIntentMR);
  double fulltext = evaluate(MethodKind::kFullText);
  EXPECT_GT(intent, lda);
  EXPECT_GT(fulltext, lda);
}

TEST(TfidfProjection, ShapeAndNormalization) {
  Vocabulary vocab;
  std::vector<TermVector> segments(3);
  segments[0].add(vocab.intern("alpha"), 2.0);
  segments[0].add(vocab.intern("beta"), 1.0);
  segments[1].add(vocab.intern("alpha"), 1.0);
  segments[2].add(vocab.intern("gamma"), 1.0);
  auto dense = tfidf_dense_projection(segments, 8);
  ASSERT_EQ(dense.size(), 3u);
  for (const auto& row : dense) {
    double norm2 = 0.0;
    for (double v : row) norm2 += v * v;
    EXPECT_TRUE(norm2 == 0.0 || std::abs(norm2 - 1.0) < 1e-9);
  }
}

TEST(TfidfProjection, DimsCapRespected) {
  Vocabulary vocab;
  std::vector<TermVector> segments(2);
  for (int i = 0; i < 20; ++i) {
    segments[0].add(vocab.intern("t" + std::to_string(i)), 1.0);
  }
  segments[1].add(vocab.intern("t0"), 1.0);
  auto dense = tfidf_dense_projection(segments, 5);
  EXPECT_EQ(dense[0].size(), 5u);
}

TEST(MethodNames, Stable) {
  EXPECT_STREQ(method_name(MethodKind::kLda), "LDA");
  EXPECT_STREQ(method_name(MethodKind::kFullText), "FullText");
  EXPECT_STREQ(method_name(MethodKind::kContentMR), "Content-MR");
  EXPECT_STREQ(method_name(MethodKind::kSentIntentMR), "SentIntent-MR");
  EXPECT_STREQ(method_name(MethodKind::kIntentIntentMR), "IntentIntent-MR");
}

}  // namespace
}  // namespace ibseg
