// Property suite for the sharded-serving building blocks that everything
// else leans on: the stable hash partitioner (core/sharded_serving.h
// shard_of), the shard-manifest commit record (storage/shard_manifest.h),
// and the id-aware make_snapshot overload that shard slices depend on.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/sharded_serving.h"
#include "datagen/post_generator.h"
#include "storage/shard_manifest.h"
#include "storage/snapshot.h"

namespace ibseg {
namespace {

std::string tmp_path(const std::string& name) {
  std::string path = ::testing::TempDir() + "/ibseg_" + name;
  std::remove(path.c_str());
  return path;
}

// ------------------------------------------------------ hash partition ----

TEST(ShardOf, EveryIdOwnedByExactlyOneValidShard) {
  for (uint32_t shards : {1u, 2u, 3u, 8u, 13u}) {
    for (DocId id = 0; id < 1000; ++id) {
      uint32_t s = ShardedServing::shard_of(id, shards);
      EXPECT_LT(s, shards);
      // Deterministic: the partition function is pure.
      EXPECT_EQ(ShardedServing::shard_of(id, shards), s);
    }
  }
}

TEST(ShardOf, DegenerateShardCountsMapToShardZero) {
  EXPECT_EQ(ShardedServing::shard_of(123, 0), 0u);
  EXPECT_EQ(ShardedServing::shard_of(123, 1), 0u);
}

TEST(ShardOf, StableAcrossRuns) {
  // Golden values: the partition function is part of the persistence
  // format (restore routes manifest-listed ids back to their owner
  // shards), so its outputs may NEVER change. FNV-1a over the id's 4
  // little-endian bytes, mod num_shards.
  EXPECT_EQ(ShardedServing::shard_of(0, 8), 5u);
  EXPECT_EQ(ShardedServing::shard_of(1, 8), 4u);
  EXPECT_EQ(ShardedServing::shard_of(2, 8), 7u);
  EXPECT_EQ(ShardedServing::shard_of(42, 8), 7u);
  EXPECT_EQ(ShardedServing::shard_of(1000000, 8), 0u);
}

void expect_balanced(const std::vector<DocId>& ids, uint32_t shards,
                     const std::string& what) {
  std::vector<size_t> counts(shards, 0);
  for (DocId id : ids) ++counts[ShardedServing::shard_of(id, shards)];
  const double uniform = static_cast<double>(ids.size()) / shards;
  for (uint32_t s = 0; s < shards; ++s) {
    EXPECT_GE(counts[s], uniform * 0.8) << what << " shard " << s;
    EXPECT_LE(counts[s], uniform * 1.2) << what << " shard " << s;
  }
}

TEST(ShardOf, SequentialIdsBalanceWithin20Percent) {
  // Sequential ids are the real workload: the global counter hands out
  // 1, 2, 3, ... — a partitioner that clumped consecutive ids would turn
  // one shard into the hot shard.
  std::vector<DocId> ids(10000);
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<DocId>(i);
  expect_balanced(ids, 8, "sequential");
}

TEST(ShardOf, RandomIdsBalanceWithin20Percent) {
  std::mt19937_64 rng(20260805);
  std::uniform_int_distribution<uint64_t> dist(0, 1u << 30);
  std::vector<DocId> ids(10000);
  for (DocId& id : ids) id = static_cast<DocId>(dist(rng));
  expect_balanced(ids, 8, "random");
}

// ------------------------------------------------------ shard manifest ----

ShardManifest sample_manifest() {
  ShardManifest m;
  m.num_shards = 3;
  m.next_id = 40;
  m.num_clusters = 5;
  m.seed_order = {0, 1, 2, 3, 4, 5};
  m.publication_order = {30, 31, 33};
  // shard_of(·, 3) over the nine ids above: shard 0 gets {2,3,31}, shard 1
  // gets {0,4,33}, shard 2 gets {1,5,30} — but the entries only need to be
  // count-consistent, which is what is_consistent checks.
  m.shards = {{3, 2, 1}, {3, 2, 1}, {3, 2, 1}};
  return m;
}

TEST(ShardManifestFile, RoundTripPreservesEverything) {
  ShardManifest m = sample_manifest();
  ASSERT_TRUE(m.is_consistent());
  std::string path = tmp_path("manifest_rt");
  ASSERT_TRUE(save_shard_manifest_file(m, path));
  auto loaded = load_shard_manifest_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_shards, m.num_shards);
  EXPECT_EQ(loaded->next_id, m.next_id);
  EXPECT_EQ(loaded->num_clusters, m.num_clusters);
  EXPECT_EQ(loaded->seed_order, m.seed_order);
  EXPECT_EQ(loaded->publication_order, m.publication_order);
  ASSERT_EQ(loaded->shards.size(), m.shards.size());
  for (size_t s = 0; s < m.shards.size(); ++s) {
    EXPECT_EQ(loaded->shards[s].docs, m.shards[s].docs);
    EXPECT_EQ(loaded->shards[s].seed_docs, m.shards[s].seed_docs);
    EXPECT_EQ(loaded->shards[s].epoch, m.shards[s].epoch);
  }
}

TEST(ShardManifestFile, LoadRejectsMissingFile) {
  EXPECT_FALSE(load_shard_manifest_file(tmp_path("manifest_missing")));
}

TEST(ShardManifestFile, LoadRejectsTruncation) {
  // Strict parse: ANY truncation point must be rejected, never read as a
  // shorter-but-valid manifest (that is how torn commits resurrect old
  // state). Chop the canonical serialization at every byte.
  ShardManifest m = sample_manifest();
  std::string path = tmp_path("manifest_full");
  ASSERT_TRUE(save_shard_manifest_file(m, path));
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  std::string full = buf.str();
  ASSERT_FALSE(full.empty());
  std::string cut_path = tmp_path("manifest_cut");
  for (size_t len = 0; len < full.size(); ++len) {
    std::ofstream out(cut_path, std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(len));
    out.close();
    EXPECT_FALSE(load_shard_manifest_file(cut_path).has_value())
        << "accepted a manifest truncated to " << len << " of "
        << full.size() << " bytes";
  }
}

TEST(ShardManifestFile, LoadRejectsTrailingGarbage) {
  ShardManifest m = sample_manifest();
  std::string path = tmp_path("manifest_garbage");
  ASSERT_TRUE(save_shard_manifest_file(m, path));
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << "tail that no writer emits\n";
  out.close();
  EXPECT_FALSE(load_shard_manifest_file(path).has_value());
}

TEST(ShardManifestFile, LoadRejectsInconsistentCounts) {
  // Entries that disagree with the global orders (docs != seed + epoch, or
  // summed counts != order lengths) fail is_consistent and must not load.
  ShardManifest m = sample_manifest();
  m.shards[1].epoch += 1;
  EXPECT_FALSE(m.is_consistent());
  std::string path = tmp_path("manifest_inconsistent");
  std::ofstream probe(path, std::ios::binary | std::ios::trunc);
  probe.close();
  if (save_shard_manifest_file(m, path)) {
    EXPECT_FALSE(load_shard_manifest_file(path).has_value());
  }
}

// ------------------------------------------- id-aware snapshot labels ----

TEST(ShardSnapshot, NonContiguousIdsKeepTheirLabels) {
  // Shard slices carry corpus-global ids with gaps. make_snapshot resolves
  // labels against the clustering's RefinedSegment doc ids, so the 3-arg
  // overload with the slice's real ids must reproduce the labels the
  // identity-id corpus gets — the regression was every gapped document
  // silently collapsing to cluster 0.
  SyntheticCorpus corpus = generate_corpus([] {
    GeneratorOptions gen;
    gen.num_posts = 12;
    gen.posts_per_scenario = 4;
    gen.seed = 7;
    return gen;
  }());
  std::vector<Document> dense = analyze_corpus(corpus);
  std::vector<Document> gapped;
  std::vector<DocId> ids;
  for (size_t d = 0; d < corpus.posts.size(); ++d) {
    DocId id = static_cast<DocId>(10 + 7 * d);  // gaps, non-zero base
    gapped.push_back(Document::analyze(id, corpus.posts[d].text));
    ids.push_back(id);
  }
  Segmenter segmenter = Segmenter::cm_tiling();
  auto segment_all = [&](const std::vector<Document>& docs) {
    Vocabulary vocab;
    std::vector<Segmentation> segs(docs.size());
    for (size_t d = 0; d < docs.size(); ++d) {
      segs[d] = segmenter.segment(docs[d], vocab);
    }
    return segs;
  };
  std::vector<Segmentation> dense_segs = segment_all(dense);
  std::vector<Segmentation> gapped_segs = segment_all(gapped);
  IntentionClustering dense_clustering =
      IntentionClustering::build(dense, dense_segs);
  IntentionClustering gapped_clustering =
      IntentionClustering::build(gapped, gapped_segs);
  PipelineSnapshot want = make_snapshot(dense_segs, dense_clustering);
  PipelineSnapshot got = make_snapshot(gapped_segs, gapped_clustering, ids);
  ASSERT_TRUE(got.is_consistent());
  EXPECT_EQ(got.num_clusters, want.num_clusters);
  EXPECT_EQ(got.segment_labels, want.segment_labels);
}

}  // namespace
}  // namespace ibseg
