// Differential proof of the sharded serving layer: ShardedServing at ANY
// shard count must answer every query bit-identically — ranked lists AND
// scores, operator== on the doubles — to the single unpartitioned
// ServingPipeline over the same corpus and publication history. The suite
// runs shard counts {1, 2, 3, 8} against the unsharded reference across
// fresh builds, interleaved online ingests, cache on/off, external
// queries, and save/restore round-trips (including a restart mid-history
// with further ingests on both sides afterwards). Registered under the
// `differential` ctest label; scripts/reproduce.sh IBSEG_DIFF_CHECK=1
// runs the label under TSan.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/serving.h"
#include "core/sharded_serving.h"
#include "datagen/post_generator.h"

namespace ibseg {
namespace {

constexpr int kShardCounts[] = {1, 2, 3, 8};
constexpr size_t kPosts = 28;

GeneratorOptions corpus_options(size_t posts, uint64_t seed) {
  GeneratorOptions gen;
  gen.num_posts = posts;
  gen.posts_per_scenario = 4;
  gen.seed = seed;
  return gen;
}

std::string tmp_dir(const std::string& name) {
  return ::testing::TempDir() + "/ibseg_shard_" + name;
}

/// Extra posts to ingest online, drawn from a differently seeded corpus so
/// they are fresh text but from the same domain vocabulary.
std::vector<std::string> ingest_texts(size_t count, uint64_t seed) {
  SyntheticCorpus extra = generate_corpus(corpus_options(count, seed));
  std::vector<std::string> texts;
  texts.reserve(extra.posts.size());
  for (const GeneratedPost& p : extra.posts) texts.push_back(p.text);
  return texts;
}

void expect_identical(const std::vector<ScoredDoc>& got,
                      const std::vector<ScoredDoc>& want,
                      const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].doc, want[i].doc) << what << " rank " << i;
    // Bit-identical is the contract, not merely close: operator== on the
    // accumulated doubles.
    EXPECT_EQ(got[i].score, want[i].score) << what << " rank " << i;
  }
}

/// Every in-corpus query at several k, plus coordinates: sharded answers
/// must equal the unsharded reference exactly.
void expect_equivalent(const ShardedServing& sharded,
                       const ServingPipeline& reference,
                       const std::string& what) {
  ASSERT_EQ(sharded.num_docs(), reference.num_docs()) << what;
  ASSERT_EQ(sharded.epoch(), reference.epoch()) << what;
  for (const Document& d : reference.quiescent().docs()) {
    for (int k : {1, 3, 10}) {
      ServingPipeline::QueryResult want = reference.find_related(d.id(), k);
      ServingPipeline::QueryResult got = sharded.find_related(d.id(), k);
      EXPECT_EQ(got.epoch, want.epoch) << what;
      EXPECT_EQ(got.num_docs, want.num_docs) << what;
      expect_identical(got.results, want.results,
                       what + " doc " + std::to_string(d.id()) + " k " +
                           std::to_string(k));
    }
  }
}

ServingOptions sharded_options(int shards, size_t cache_capacity = 0) {
  ServingOptions options;
  options.num_shards = shards;
  options.cache.capacity = cache_capacity;
  return options;
}

// ------------------------------------------------------ fresh corpus ----

TEST(ShardedDifferential, FreshBuildIdenticalAtEveryShardCount) {
  for (uint64_t seed : {5u, 902u}) {
    SyntheticCorpus corpus = generate_corpus(corpus_options(kPosts, seed));
    ServingPipeline reference(RelatedPostPipeline::build(
        analyze_corpus(corpus)));
    for (int shards : kShardCounts) {
      std::unique_ptr<ShardedServing> sharded = ShardedServing::create(
          analyze_corpus(corpus), {}, sharded_options(shards));
      ASSERT_NE(sharded, nullptr);
      ASSERT_EQ(sharded->num_shards(), static_cast<uint32_t>(shards));
      expect_equivalent(*sharded, reference,
                        "fresh shards=" + std::to_string(shards));
    }
  }
}

TEST(ShardedDifferential, EveryDocumentOnItsHashShard) {
  SyntheticCorpus corpus = generate_corpus(corpus_options(kPosts, 31));
  std::unique_ptr<ShardedServing> sharded =
      ShardedServing::create(analyze_corpus(corpus), {}, sharded_options(8));
  ASSERT_NE(sharded, nullptr);
  size_t total = 0;
  for (uint32_t s = 0; s < sharded->num_shards(); ++s) {
    for (const Document& d : sharded->shard(s).quiescent().docs()) {
      EXPECT_EQ(ShardedServing::shard_of(d.id(), 8), s);
    }
    total += sharded->shard(s).num_docs();
  }
  EXPECT_EQ(total, kPosts);
}

// ------------------------------------------------ interleaved ingests ----

TEST(ShardedDifferential, InterleavedIngestsStayIdentical) {
  SyntheticCorpus corpus = generate_corpus(corpus_options(kPosts, 44));
  std::vector<std::string> extra = ingest_texts(8, 4400);
  for (int shards : kShardCounts) {
    ServingPipeline reference(
        RelatedPostPipeline::build(analyze_corpus(corpus)));
    std::unique_ptr<ShardedServing> sharded = ShardedServing::create(
        analyze_corpus(corpus), {}, sharded_options(shards));
    ASSERT_NE(sharded, nullptr);
    std::string what = "interleaved shards=" + std::to_string(shards);
    for (size_t i = 0; i < extra.size(); ++i) {
      DocId want_id = reference.add_post(extra[i]);
      DocId got_id = sharded->add_post(extra[i]);
      ASSERT_EQ(got_id, want_id) << what;
      // Query between every ingest — each publication must be visible and
      // identically scored immediately.
      expect_identical(sharded->find_related(want_id, 5).results,
                       reference.find_related(want_id, 5).results,
                       what + " after ingest " + std::to_string(i));
    }
    expect_equivalent(*sharded, reference, what + " final");
    // Batched ingest too: one lock section, same ids, same answers.
    std::vector<std::string> batch = ingest_texts(4, 4401);
    std::vector<DocId> want_ids = reference.add_posts(batch);
    std::vector<DocId> got_ids = sharded->add_posts(batch);
    ASSERT_EQ(got_ids, want_ids) << what;
    expect_equivalent(*sharded, reference, what + " after batch");
  }
}

// --------------------------------------------------------- query cache ----

TEST(ShardedDifferential, CacheOnEqualsCacheOff) {
  SyntheticCorpus corpus = generate_corpus(corpus_options(kPosts, 77));
  std::vector<std::string> extra = ingest_texts(4, 7700);
  for (int shards : {2, 8}) {
    ServingPipeline reference(
        RelatedPostPipeline::build(analyze_corpus(corpus)));
    std::unique_ptr<ShardedServing> cached = ShardedServing::create(
        analyze_corpus(corpus), {}, sharded_options(shards, 256));
    ASSERT_NE(cached, nullptr);
    ASSERT_NE(cached->query_cache(), nullptr);
    std::string what = "cache shards=" + std::to_string(shards);
    // Two passes: the second is served from the cache and must still be
    // bit-identical.
    expect_equivalent(*cached, reference, what + " cold");
    uint64_t hits_before = cached->query_cache()->hits();
    expect_equivalent(*cached, reference, what + " warm");
    EXPECT_GT(cached->query_cache()->hits(), hits_before) << what;
    // Publications invalidate: ingest, then answers must track the new
    // corpus, never a stale entry.
    for (const std::string& text : extra) {
      reference.add_post(text);
      cached->add_post(text);
    }
    expect_equivalent(*cached, reference, what + " after invalidation");
  }
}

// ----------------------------------------------------- external queries ----

TEST(ShardedDifferential, ExternalQueriesIdentical) {
  SyntheticCorpus corpus = generate_corpus(corpus_options(kPosts, 13));
  std::vector<std::string> externals = ingest_texts(6, 1300);
  ServingPipeline reference(
      RelatedPostPipeline::build(analyze_corpus(corpus)));
  for (int shards : kShardCounts) {
    std::unique_ptr<ShardedServing> sharded = ShardedServing::create(
        analyze_corpus(corpus), {}, sharded_options(shards));
    ASSERT_NE(sharded, nullptr);
    for (size_t i = 0; i < externals.size(); ++i) {
      Document doc = Document::analyze(100000 + static_cast<DocId>(i),
                                       externals[i]);
      auto want = reference.find_related_external(doc, 5);
      auto got = sharded->find_related_external(doc, 5);
      EXPECT_EQ(got.epoch, want.epoch);
      EXPECT_EQ(got.num_docs, want.num_docs);
      expect_identical(got.results, want.results,
                       "external shards=" + std::to_string(shards) +
                           " query " + std::to_string(i));
    }
  }
}

// -------------------------------------------------- sharded x pruned ----

// MaxScore pruning composes with sharding: each shard prunes its own
// per-intention lists against shard-local heaps, and the scatter-gather
// merge must still reproduce the unpartitioned exhaustive reference bit
// for bit. The shard boundary is where a bound bug would surface — a
// shard's per-term maxima differ from the global index's, so a pruned
// shard answer that merely "looks right" locally can lose a doc that the
// full index would have kept. Crossed with interleaved ingests, which
// re-seal every touched shard's flat postings.
TEST(ShardedDifferential, PrunedShardsEqualExhaustiveUnsharded) {
  SyntheticCorpus corpus = generate_corpus(corpus_options(kPosts, 83));
  std::vector<std::string> extra = ingest_texts(6, 8300);
  PipelineOptions exhaustive_opt;
  exhaustive_opt.matcher.exhaustive_fallback = true;
  PipelineOptions pruned_opt;  // default: MaxScore path
  pruned_opt.matcher.top_n_factor = 1;  // tightest heaps, max pruning
  exhaustive_opt.matcher.top_n_factor = 1;
  for (int shards : kShardCounts) {
    ServingPipeline reference(RelatedPostPipeline::build(
        analyze_corpus(corpus), exhaustive_opt));
    std::unique_ptr<ShardedServing> sharded = ShardedServing::create(
        analyze_corpus(corpus), pruned_opt, sharded_options(shards));
    ASSERT_NE(sharded, nullptr);
    std::string what = "pruned shards=" + std::to_string(shards);
    expect_equivalent(*sharded, reference, what + " fresh");
    for (size_t i = 0; i < extra.size(); ++i) {
      DocId want_id = reference.add_post(extra[i]);
      DocId got_id = sharded->add_post(extra[i]);
      ASSERT_EQ(got_id, want_id) << what;
      expect_equivalent(*sharded, reference,
                        what + " after ingest " + std::to_string(i));
    }
  }
}

// And the converse pairing: exhaustive shards vs the pruned unsharded
// pipeline, so both code paths are exercised on both sides of the
// scatter-gather boundary.
TEST(ShardedDifferential, ExhaustiveShardsEqualPrunedUnsharded) {
  SyntheticCorpus corpus = generate_corpus(corpus_options(kPosts, 29));
  PipelineOptions exhaustive_opt;
  exhaustive_opt.matcher.exhaustive_fallback = true;
  ServingPipeline reference(
      RelatedPostPipeline::build(analyze_corpus(corpus)));  // pruned default
  for (int shards : {2, 8}) {
    std::unique_ptr<ShardedServing> sharded = ShardedServing::create(
        analyze_corpus(corpus), exhaustive_opt, sharded_options(shards));
    ASSERT_NE(sharded, nullptr);
    expect_equivalent(*sharded, reference,
                      "exhaustive shards=" + std::to_string(shards) +
                          " vs pruned unsharded");
  }
}

// ------------------------------------------------- save/restore cycles ----

TEST(ShardedDifferential, SaveRestoreRoundTripIdentical) {
  SyntheticCorpus corpus = generate_corpus(corpus_options(kPosts, 59));
  std::vector<std::string> before = ingest_texts(5, 5900);
  std::vector<std::string> after = ingest_texts(5, 5901);
  for (int shards : kShardCounts) {
    std::string what = "roundtrip shards=" + std::to_string(shards);
    std::string dir = tmp_dir("rt" + std::to_string(shards));
    ServingPipeline reference(
        RelatedPostPipeline::build(analyze_corpus(corpus)));
    ServingOptions options = sharded_options(shards);
    options.persist.shard_dir = dir;
    std::unique_ptr<ShardedServing> original =
        ShardedServing::create(analyze_corpus(corpus), {}, options);
    ASSERT_NE(original, nullptr) << what;
    // History split across the save: some ingests baked into the shard
    // snapshots, some only in the WALs + journal.
    for (const std::string& text : before) {
      reference.add_post(text);
      original->add_post(text);
    }
    ASSERT_TRUE(original->save(dir)) << what;
    for (const std::string& text : after) {
      reference.add_post(text);
      original->add_post(text);
    }
    uint64_t epoch_at_exit = original->epoch();
    DocId next_at_exit = original->next_id();
    original.reset();  // clean shutdown; WAL tail holds `after`

    std::unique_ptr<ShardedServing> restored =
        ShardedServing::restore(dir, {}, sharded_options(shards));
    ASSERT_NE(restored, nullptr) << what;
    EXPECT_EQ(restored->epoch(), epoch_at_exit) << what;
    EXPECT_EQ(restored->next_id(), next_at_exit) << what;
    expect_equivalent(*restored, reference, what);
    // Life continues after restore: further ingests on both sides keep
    // the histories aligned (id sequence included).
    std::vector<std::string> more = ingest_texts(3, 5902);
    for (const std::string& text : more) {
      ASSERT_EQ(restored->add_post(text), reference.add_post(text)) << what;
    }
    expect_equivalent(*restored, reference, what + " post-restore ingests");
  }
}

TEST(ShardedDifferential, RestoredCacheStillIdentical) {
  SyntheticCorpus corpus = generate_corpus(corpus_options(kPosts, 23));
  std::string dir = tmp_dir("cache_rt");
  ServingPipeline reference(
      RelatedPostPipeline::build(analyze_corpus(corpus)));
  std::unique_ptr<ShardedServing> original =
      ShardedServing::create(analyze_corpus(corpus), {}, sharded_options(3));
  ASSERT_NE(original, nullptr);
  ASSERT_TRUE(original->save(dir));
  original.reset();
  std::unique_ptr<ShardedServing> restored =
      ShardedServing::restore(dir, {}, sharded_options(3, 128));
  ASSERT_NE(restored, nullptr);
  ASSERT_NE(restored->query_cache(), nullptr);
  expect_equivalent(*restored, reference, "restored cache cold");
  expect_equivalent(*restored, reference, "restored cache warm");
  EXPECT_GT(restored->query_cache()->hits(), 0u);
}

// ------------------------------------------------------- torn restores ----

TEST(ShardedDifferential, RestoreRejectsStaleShardSnapshot) {
  SyntheticCorpus corpus = generate_corpus(corpus_options(kPosts, 67));
  std::string dir = tmp_dir("stale");
  ServingOptions options = sharded_options(4);
  options.persist.shard_dir = dir;
  std::unique_ptr<ShardedServing> original =
      ShardedServing::create(analyze_corpus(corpus), {}, options);
  ASSERT_NE(original, nullptr);
  ASSERT_TRUE(original->save(dir));
  // Stash one shard's committed snapshot, advance history so the next
  // manifest commits MORE docs for that shard, then put the stale file
  // back — the forbidden direction (snapshot BEHIND manifest), which a
  // crash cannot produce because snapshots rename before the commit.
  std::vector<std::string> extra = ingest_texts(8, 6700);
  for (const std::string& text : extra) original->add_post(text);
  uint32_t victim = 0;
  for (uint32_t s = 0; s < 4; ++s) {
    if (original->shard(s).epoch() > 0) victim = s;
  }
  ASSERT_GT(original->shard(victim).epoch(), 0u);
  std::string snap_path =
      dir + "/shard-" + std::to_string(victim) + "/snapshot.v2";
  std::string stale_copy = snap_path + ".stale";
  ASSERT_EQ(std::rename(snap_path.c_str(), stale_copy.c_str()), 0);
  ASSERT_TRUE(original->save(dir));
  original.reset();
  ASSERT_EQ(std::rename(stale_copy.c_str(), snap_path.c_str()), 0);
  EXPECT_EQ(ShardedServing::restore(dir, {}, sharded_options(4)), nullptr);
}

TEST(ShardedDifferential, RestoreSurvivesSnapshotAheadOfManifest) {
  // The legal crash window: a save that renamed some shard snapshots but
  // died before the manifest commit. Simulated by saving to `dir`, then
  // overlaying ONE shard's snapshot from a later save — restore must
  // succeed from the old manifest and reach the full pre-crash history
  // via WAL replay dedup.
  SyntheticCorpus corpus = generate_corpus(corpus_options(kPosts, 71));
  std::vector<std::string> extra = ingest_texts(6, 7100);
  std::string dir = tmp_dir("ahead");
  std::string dir2 = tmp_dir("ahead_late");
  ServingPipeline reference(
      RelatedPostPipeline::build(analyze_corpus(corpus)));
  ServingOptions options = sharded_options(4);
  options.persist.shard_dir = dir;
  std::unique_ptr<ShardedServing> original =
      ShardedServing::create(analyze_corpus(corpus), {}, options);
  ASSERT_NE(original, nullptr);
  ASSERT_TRUE(original->save(dir));
  uint32_t victim = ShardedServing::shard_of(original->next_id(), 4);
  for (const std::string& text : extra) {
    reference.add_post(text);
    original->add_post(text);
  }
  // Second save goes to a scratch directory (so dir's WALs/journal are
  // NOT truncated — exactly the state an interrupted in-place save
  // leaves), then one shard's newer snapshot is copied over dir's.
  ASSERT_TRUE(original->save(dir2));
  original.reset();
  {
    std::string late = dir2 + "/shard-" + std::to_string(victim);
    std::string target = dir + "/shard-" + std::to_string(victim);
    std::ifstream src(late + "/snapshot.v2", std::ios::binary);
    std::ofstream dst(target + "/snapshot.v2",
                      std::ios::binary | std::ios::trunc);
    dst << src.rdbuf();
    ASSERT_TRUE(dst.good());
  }
  std::unique_ptr<ShardedServing> restored =
      ShardedServing::restore(dir, {}, sharded_options(4));
  ASSERT_NE(restored, nullptr);
  expect_equivalent(*restored, reference, "snapshot-ahead recovery");
}

}  // namespace
}  // namespace ibseg
