// Unit tests for src/nlp: lexicon, POS tagger, verb-group analysis and the
// CM annotator that feeds the paper's Table 1 features.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "nlp/cm_annotator.h"
#include "nlp/lexicon.h"
#include "nlp/pos_tagger.h"
#include "nlp/verb_group.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace ibseg {
namespace {

std::map<std::string, Pos> tag_map(const std::string& text) {
  auto tokens = tokenize(text);
  auto tags = tag_tokens(tokens);
  std::map<std::string, Pos> out;
  for (size_t i = 0; i < tokens.size(); ++i) out[tokens[i].lower] = tags[i];
  return out;
}

CmProfile profile_of(const std::string& text) {
  auto tokens = tokenize(text);
  auto sentences = split_sentences(tokens, text);
  auto profiles = annotate_sentences(tokens, sentences);
  CmProfile merged;
  for (const CmProfile& p : profiles) merged.merge(p);
  return merged;
}

// -------------------------------------------------------------- lexicon ----

TEST(Lexicon, ClosedClassLookups) {
  const Lexicon& lex = lexicon();
  EXPECT_EQ(*lex.closed_class("i"), Pos::kPronoun1);
  EXPECT_EQ(*lex.closed_class("you"), Pos::kPronoun2);
  EXPECT_EQ(*lex.closed_class("they"), Pos::kPronoun3);
  EXPECT_EQ(*lex.closed_class("was"), Pos::kAuxBe);
  EXPECT_EQ(*lex.closed_class("will"), Pos::kModal);
  EXPECT_EQ(*lex.closed_class("not"), Pos::kNegation);
  EXPECT_EQ(*lex.closed_class("to"), Pos::kTo);
  EXPECT_FALSE(lex.closed_class("printer").has_value());
}

TEST(Lexicon, IrregularVerbs) {
  const Lexicon& lex = lexicon();
  EXPECT_EQ(lex.irregular_verb("went")->tag, Pos::kVerbPast);
  EXPECT_EQ(lex.irregular_verb("gone")->tag, Pos::kVerbPastPart);
  EXPECT_FALSE(lex.irregular_verb("walked").has_value());
}

TEST(Lexicon, KnownVerbBases) {
  const Lexicon& lex = lexicon();
  EXPECT_TRUE(lex.is_known_verb_base("install"));
  EXPECT_TRUE(lex.is_known_verb_base("recommend"));
  EXPECT_FALSE(lex.is_known_verb_base("xyzzy"));
}

// --------------------------------------------------------------- tagger ----

TEST(PosTagger, BasicSentence) {
  auto tags = tag_map("I have a new laptop");
  EXPECT_EQ(tags["i"], Pos::kPronoun1);
  EXPECT_EQ(tags["have"], Pos::kAuxHave);
  EXPECT_EQ(tags["a"], Pos::kDeterminer);
  EXPECT_EQ(tags["new"], Pos::kAdjective);
  EXPECT_EQ(tags["laptop"], Pos::kNoun);
}

TEST(PosTagger, RegularPastAndGerund) {
  auto tags = tag_map("it crashed while printing");
  EXPECT_EQ(tags["crashed"], Pos::kVerbPast);
  EXPECT_EQ(tags["printing"], Pos::kVerbGerund);
}

TEST(PosTagger, HaveParticiple) {
  auto tags = tag_map("I have installed the update");
  EXPECT_EQ(tags["installed"], Pos::kVerbPastPart);
}

TEST(PosTagger, PassiveParticiple) {
  auto tags = tag_map("the room was cleaned daily");
  EXPECT_EQ(tags["cleaned"], Pos::kVerbPastPart);
  EXPECT_EQ(tags["daily"], Pos::kAdverb);
}

TEST(PosTagger, InfinitiveAfterTo) {
  auto tags = tag_map("I want to install linux");
  EXPECT_EQ(tags["install"], Pos::kVerbBase);
}

TEST(PosTagger, ThirdPersonSForm) {
  auto tags = tag_map("the printer stops");
  EXPECT_EQ(tags["stops"], Pos::kVerbPresent3);
}

TEST(PosTagger, DeterminerGerundIsNoun) {
  auto tags = tag_map("the booking was fine");
  EXPECT_EQ(tags["booking"], Pos::kNoun);
}

TEST(PosTagger, SuffixMorphology) {
  auto tags = tag_map("a wonderful configuration worked quickly");
  EXPECT_EQ(tags["wonderful"], Pos::kAdjective);
  EXPECT_EQ(tags["configuration"], Pos::kNoun);
  EXPECT_EQ(tags["quickly"], Pos::kAdverb);
}

TEST(PosTagger, IrregularPast) {
  auto tags = tag_map("the system froze yesterday");
  EXPECT_EQ(tags["froze"], Pos::kVerbPast);
}

TEST(PosTagger, PosNamesAreStable) {
  EXPECT_STREQ(pos_name(Pos::kNoun), "NOUN");
  EXPECT_STREQ(pos_name(Pos::kVerbPast), "VBD");
  EXPECT_TRUE(is_main_verb(Pos::kVerbGerund));
  EXPECT_FALSE(is_main_verb(Pos::kModal));
  EXPECT_TRUE(is_auxiliary(Pos::kAuxDo));
}

// ---------------------------------------------------------- verb groups ----

std::vector<VerbGroup> groups_of(const std::string& text) {
  auto tokens = tokenize(text);
  auto tags = tag_tokens(tokens);
  return find_verb_groups(tokens, tags, 0, tokens.size());
}

TEST(VerbGroups, SimplePresent) {
  auto g = groups_of("The printer stops.");
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g[0].tense, Tense::kPresent);
  EXPECT_EQ(g[0].voice, Voice::kActive);
  EXPECT_FALSE(g[0].negated);
}

TEST(VerbGroups, SimplePast) {
  auto g = groups_of("The printer stopped.");
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g[0].tense, Tense::kPast);
}

TEST(VerbGroups, FutureWithWill) {
  auto g = groups_of("We will install it.");
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g[0].tense, Tense::kFuture);
}

TEST(VerbGroups, PresentPerfectCountsAsPast) {
  auto g = groups_of("I have installed it.");
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g[0].tense, Tense::kPast);
}

TEST(VerbGroups, PassiveVoice) {
  auto g = groups_of("The room was cleaned.");
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g[0].voice, Voice::kPassive);
  EXPECT_EQ(g[0].tense, Tense::kPast);
}

TEST(VerbGroups, NegationDetected) {
  auto g = groups_of("It did not work.");
  ASSERT_EQ(g.size(), 1u);
  EXPECT_TRUE(g[0].negated);
  EXPECT_EQ(g[0].tense, Tense::kPast);
}

TEST(VerbGroups, ContractedNegation) {
  auto g = groups_of("It didn't work.");
  ASSERT_EQ(g.size(), 1u);
  EXPECT_TRUE(g[0].negated);
}

TEST(VerbGroups, MultipleGroups) {
  auto g = groups_of("I called support and they suggested a reset.");
  EXPECT_GE(g.size(), 2u);
  EXPECT_EQ(g[0].tense, Tense::kPast);
}

// --------------------------------------------------------- CM annotator ----

TEST(CmAnnotator, TenseCounts) {
  CmProfile p = profile_of("I installed it. It works. We will see.");
  EXPECT_GE(p.count(CmKind::kTense, 1), 1.0);  // past
  EXPECT_GE(p.count(CmKind::kTense, 0), 1.0);  // present
  EXPECT_GE(p.count(CmKind::kTense, 2), 1.0);  // future
}

TEST(CmAnnotator, SubjectPersons) {
  CmProfile p = profile_of("I saw you and they saw him.");
  EXPECT_GE(p.count(CmKind::kSubject, 0), 1.0);
  EXPECT_GE(p.count(CmKind::kSubject, 1), 1.0);
  EXPECT_GE(p.count(CmKind::kSubject, 2), 2.0);
}

TEST(CmAnnotator, InterrogativeStyle) {
  CmProfile q = profile_of("Do you know the answer?");
  EXPECT_DOUBLE_EQ(q.count(CmKind::kStyle, 0), 1.0);
  CmProfile wh = profile_of("What should I do about it?");
  EXPECT_DOUBLE_EQ(wh.count(CmKind::kStyle, 0), 1.0);
}

TEST(CmAnnotator, NegativeStyle) {
  CmProfile p = profile_of("The printer does not respond.");
  EXPECT_DOUBLE_EQ(p.count(CmKind::kStyle, 1), 1.0);
}

TEST(CmAnnotator, AffirmativeStyle) {
  CmProfile p = profile_of("The printer responds.");
  EXPECT_DOUBLE_EQ(p.count(CmKind::kStyle, 2), 1.0);
}

TEST(CmAnnotator, VoiceCounts) {
  CmProfile p = profile_of("The room was cleaned. The staff cleans it.");
  EXPECT_GE(p.count(CmKind::kVoice, 0), 1.0);  // passive
  EXPECT_GE(p.count(CmKind::kVoice, 1), 1.0);  // active
}

TEST(CmAnnotator, PosCounts) {
  CmProfile p = profile_of("The old printer quickly prints pages.");
  EXPECT_GE(p.count(CmKind::kPos, 0), 1.0);  // verb
  EXPECT_GE(p.count(CmKind::kPos, 1), 2.0);  // nouns
  EXPECT_GE(p.count(CmKind::kPos, 2), 2.0);  // adj + adverb
}

TEST(CmAnnotator, OneProfilePerSentence) {
  std::string text = "First sentence. Second sentence. Third one.";
  auto tokens = tokenize(text);
  auto sentences = split_sentences(tokens, text);
  auto profiles = annotate_sentences(tokens, sentences);
  EXPECT_EQ(profiles.size(), 3u);
}

// ------------------------------------------------------------ cm profile ----

TEST(CmProfile, FeatureIndexLayout) {
  EXPECT_EQ(cm_feature_index(CmKind::kTense, 0), 0);
  EXPECT_EQ(cm_feature_index(CmKind::kSubject, 0), 3);
  EXPECT_EQ(cm_feature_index(CmKind::kStyle, 0), 6);
  EXPECT_EQ(cm_feature_index(CmKind::kVoice, 0), 9);
  EXPECT_EQ(cm_feature_index(CmKind::kPos, 0), 11);
  EXPECT_EQ(cm_feature_index(CmKind::kPos, 2), 13);
  EXPECT_EQ(kNumCmFeatures, 14);
}

TEST(CmProfile, MergeAndTotals) {
  CmProfile a;
  a.add(CmKind::kTense, 0, 2.0);
  CmProfile b;
  b.add(CmKind::kTense, 1, 3.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.cm_total(CmKind::kTense), 5.0);
  EXPECT_DOUBLE_EQ(a.total(), 5.0);
}

TEST(CmProfile, Names) {
  EXPECT_STREQ(cm_name(CmKind::kStyle), "Style");
  EXPECT_STREQ(cm_value_name(CmKind::kTense, 1), "past");
  EXPECT_STREQ(cm_value_name(CmKind::kVoice, 0), "passive");
}

}  // namespace
}  // namespace ibseg
