// End-to-end smoke test: generate a small corpus, run the full pipeline,
// and sanity-check every stage's output shape.

#include <gtest/gtest.h>

#include "core/methods.h"
#include "core/pipeline.h"
#include "datagen/post_generator.h"

namespace ibseg {
namespace {

TEST(Smoke, EndToEndPipeline) {
  GeneratorOptions gen;
  gen.domain = ForumDomain::kTechSupport;
  gen.num_posts = 60;
  gen.posts_per_scenario = 6;
  gen.seed = 1;
  SyntheticCorpus corpus = generate_corpus(gen);
  ASSERT_EQ(corpus.posts.size(), 60u);

  std::vector<Document> docs = analyze_corpus(corpus);
  for (size_t i = 0; i < docs.size(); ++i) {
    EXPECT_GT(docs[i].num_units(), 0u) << "post " << i;
  }

  RelatedPostPipeline pipeline = RelatedPostPipeline::build(std::move(docs));
  EXPECT_GE(pipeline.clustering().num_clusters(), 1);

  std::vector<ScoredDoc> related = pipeline.find_related(0, 5);
  EXPECT_LE(related.size(), 5u);
  for (const ScoredDoc& sd : related) {
    EXPECT_NE(sd.doc, 0u);
    EXPECT_GT(sd.score, 0.0);
  }
}

TEST(Smoke, AllMethodsBuildAndAnswer) {
  GeneratorOptions gen;
  gen.domain = ForumDomain::kProgramming;
  gen.num_posts = 40;
  gen.posts_per_scenario = 5;
  gen.seed = 2;
  std::vector<Document> docs = analyze_corpus(generate_corpus(gen));

  MethodConfig config;
  config.lda.iterations = 30;  // keep the smoke test fast
  for (MethodKind kind :
       {MethodKind::kLda, MethodKind::kFullText, MethodKind::kContentMR,
        MethodKind::kSentIntentMR, MethodKind::kIntentIntentMR}) {
    MethodBuildStats stats;
    auto method = build_method(kind, docs, config, &stats);
    ASSERT_NE(method, nullptr) << method_name(kind);
    auto related = method->find_related(3, 5);
    EXPECT_LE(related.size(), 5u) << method_name(kind);
  }
}

}  // namespace
}  // namespace ibseg
