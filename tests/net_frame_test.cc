// Byte-level tests of the docs/PROTOCOL.md wire codec (src/net/frame.h),
// written against the document's tables, not the code: the golden arrays
// below are the documented layouts typed out by hand, so an encoder drift
// breaks a golden even if encode/decode still round-trip. Alongside the
// goldens: every-prefix truncation rejection for every payload codec (the
// same discipline the snapshot/WAL parsers follow), oversized/garbage
// frame rejection, and the bit-exactness of the f64 score encoding.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/wire.h"

namespace ibseg {
namespace net {
namespace {

std::string bytes(std::initializer_list<uint8_t> list) {
  std::string out;
  for (uint8_t b : list) out.push_back(static_cast<char>(b));
  return out;
}

DecodeStatus header_of(const std::string& data, FrameHeader* out) {
  return decode_frame_header(reinterpret_cast<const uint8_t*>(data.data()),
                             data.size(), out);
}

// --- Frame header (PROTOCOL.md §2).

TEST(NetFrame, PingFrameGolden) {
  // 12-byte header: "IBSN", version 1, type 0x01 (PING), reserved 0,
  // payload length 0 — byte for byte the §2 table.
  std::string frame;
  encode_frame(MsgType::kPing, {}, &frame);
  EXPECT_EQ(frame, bytes({0x49, 0x42, 0x53, 0x4E, 0x01, 0x01, 0x00, 0x00,
                          0x00, 0x00, 0x00, 0x00}));
}

TEST(NetFrame, QueryFrameGolden) {
  // QUERY doc_id=7, k=5: header with type 0x02 and payload length 8,
  // then two little-endian u32s (PROTOCOL.md §4.2).
  std::string payload;
  encode_query({7, 5}, &payload);
  std::string frame;
  encode_frame(MsgType::kQuery, payload, &frame);
  EXPECT_EQ(frame, bytes({0x49, 0x42, 0x53, 0x4E, 0x01, 0x02, 0x00, 0x00,
                          0x08, 0x00, 0x00, 0x00,  // payload length 8
                          0x07, 0x00, 0x00, 0x00,  // doc_id 7
                          0x05, 0x00, 0x00, 0x00}));  // k 5
}

TEST(NetFrame, HeaderRoundTrip) {
  std::string payload = "abc";
  std::string frame;
  encode_frame(MsgType::kAddPost, payload, &frame);
  FrameHeader header;
  ASSERT_EQ(header_of(frame, &header), DecodeStatus::kOk);
  EXPECT_EQ(header.version, kProtocolVersion);
  EXPECT_EQ(header.type, MsgType::kAddPost);
  EXPECT_EQ(header.payload_len, 3u);
}

TEST(NetFrame, HeaderEveryPrefixNeedsMore) {
  std::string frame;
  encode_frame(MsgType::kPing, {}, &frame);
  FrameHeader header;
  for (size_t len = 0; len < kFrameHeaderBytes; ++len) {
    EXPECT_EQ(header_of(frame.substr(0, len), &header),
              DecodeStatus::kNeedMore)
        << "prefix " << len;
  }
}

TEST(NetFrame, HeaderBadMagicRejected) {
  std::string frame;
  encode_frame(MsgType::kPing, {}, &frame);
  for (size_t i = 0; i < 4; ++i) {
    std::string bad = frame;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    FrameHeader header;
    EXPECT_EQ(header_of(bad, &header), DecodeStatus::kMalformed)
        << "magic byte " << i;
  }
}

TEST(NetFrame, HeaderBadVersionRejected) {
  std::string frame;
  encode_frame(MsgType::kPing, {}, &frame);
  frame[4] = 2;  // unknown future version
  FrameHeader header;
  EXPECT_EQ(header_of(frame, &header), DecodeStatus::kMalformed);
}

TEST(NetFrame, HeaderNonzeroReservedRejected) {
  std::string frame;
  encode_frame(MsgType::kPing, {}, &frame);
  frame[6] = 1;
  FrameHeader header;
  EXPECT_EQ(header_of(frame, &header), DecodeStatus::kMalformed);
}

TEST(NetFrame, HeaderOversizedLengthRejected) {
  // A length field past kMaxPayloadBytes is the classic allocation bomb;
  // the header decoder must refuse before anyone trusts it.
  std::string frame;
  encode_frame(MsgType::kPing, {}, &frame);
  const uint32_t huge = kMaxPayloadBytes + 1;
  for (int i = 0; i < 4; ++i) {
    frame[8 + i] = static_cast<char>(huge >> (8 * i));
  }
  FrameHeader header;
  EXPECT_EQ(header_of(frame, &header), DecodeStatus::kMalformed);
}

TEST(NetFrame, HeaderMaxLengthAccepted) {
  std::string frame;
  encode_frame(MsgType::kPing, {}, &frame);
  for (int i = 0; i < 4; ++i) {
    frame[8 + i] = static_cast<char>(kMaxPayloadBytes >> (8 * i));
  }
  FrameHeader header;
  EXPECT_EQ(header_of(frame, &header), DecodeStatus::kOk);
  EXPECT_EQ(header.payload_len, kMaxPayloadBytes);
}

TEST(NetFrame, GarbageHeadersRejected) {
  // 12 bytes of assorted garbage — anything not starting with the magic
  // must be malformed, never "need more".
  FrameHeader header;
  EXPECT_EQ(header_of(std::string(12, '\0'), &header),
            DecodeStatus::kMalformed);
  EXPECT_EQ(header_of(std::string(12, '\xff'), &header),
            DecodeStatus::kMalformed);
  EXPECT_EQ(header_of("GET / HTTP/1", &header), DecodeStatus::kMalformed);
}

// --- Payload codecs: round trips, goldens, every-prefix truncation.

template <typename T>
void expect_every_prefix_rejected(const std::string& payload,
                                  bool (*decode)(std::string_view, T*)) {
  for (size_t len = 0; len < payload.size(); ++len) {
    T out;
    EXPECT_FALSE(decode(payload.substr(0, len), &out)) << "prefix " << len;
  }
}

template <typename T>
void expect_trailing_byte_rejected(const std::string& payload,
                                   bool (*decode)(std::string_view, T*)) {
  T out;
  EXPECT_FALSE(decode(payload + '\0', &out)) << "trailing garbage accepted";
}

TEST(NetFrame, QueryPayloadRoundTripAndTruncation) {
  std::string payload;
  encode_query({123456, 50}, &payload);
  QueryRequest out;
  ASSERT_TRUE(decode_query(payload, &out));
  EXPECT_EQ(out.doc_id, 123456u);
  EXPECT_EQ(out.k, 50u);
  expect_every_prefix_rejected(payload, decode_query);
  expect_trailing_byte_rejected(payload, decode_query);
}

TEST(NetFrame, QueryZeroKRejected) {
  std::string payload;
  encode_query({3, 0}, &payload);
  QueryRequest out;
  EXPECT_FALSE(decode_query(payload, &out));
}

TEST(NetFrame, AskPayloadGoldenAndTruncation) {
  std::string payload;
  encode_ask({2, "hi"}, &payload);
  // k=2 LE | text length 2 LE | "hi" (PROTOCOL.md §4.3).
  EXPECT_EQ(payload, bytes({0x02, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00,
                            'h', 'i'}));
  AskRequest out;
  ASSERT_TRUE(decode_ask(payload, &out));
  EXPECT_EQ(out.k, 2u);
  EXPECT_EQ(out.text, "hi");
  expect_every_prefix_rejected(payload, decode_ask);
  expect_trailing_byte_rejected(payload, decode_ask);
}

TEST(NetFrame, AddPostPayloadRoundTripAndTruncation) {
  std::string payload;
  encode_add_post({"my laptop will not boot"}, &payload);
  AddPostRequest out;
  ASSERT_TRUE(decode_add_post(payload, &out));
  EXPECT_EQ(out.text, "my laptop will not boot");
  expect_every_prefix_rejected(payload, decode_add_post);
  expect_trailing_byte_rejected(payload, decode_add_post);
}

TEST(NetFrame, AddPostsPayloadRoundTripAndTruncation) {
  AddPostsRequest req;
  req.texts = {"one post", "", "a third post"};
  std::string payload;
  encode_add_posts(req, &payload);
  AddPostsRequest out;
  ASSERT_TRUE(decode_add_posts(payload, &out));
  EXPECT_EQ(out.texts, req.texts);
  expect_every_prefix_rejected(payload, decode_add_posts);
  expect_trailing_byte_rejected(payload, decode_add_posts);
}

TEST(NetFrame, AddPostsCountBombRejected) {
  // A count field claiming kMaxBatchPosts+1 (or a giant value whose
  // element lengths could never fit) must be rejected before any
  // allocation proportional to the claim.
  std::string payload;
  WireWriter w(&payload);
  w.write_u32(kMaxBatchPosts + 1);
  AddPostsRequest out;
  EXPECT_FALSE(decode_add_posts(payload, &out));

  payload.clear();
  WireWriter w2(&payload);
  w2.write_u32(2);
  w2.write_u32(0xFFFFFFFFu);  // element length larger than the payload
  AddPostsRequest out2;
  EXPECT_FALSE(decode_add_posts(payload, &out2));
}

TEST(NetFrame, AddPostsZeroCountRejected) {
  std::string payload;
  WireWriter w(&payload);
  w.write_u32(0);
  AddPostsRequest out;
  EXPECT_FALSE(decode_add_posts(payload, &out));
}

TEST(NetFrame, MetricsPayloadFormats) {
  for (uint8_t format : {0, 1}) {
    std::string payload;
    encode_metrics({format}, &payload);
    MetricsRequest out;
    ASSERT_TRUE(decode_metrics(payload, &out));
    EXPECT_EQ(out.format, format);
  }
  std::string payload;
  encode_metrics({2}, &payload);  // only 0 and 1 are defined
  MetricsRequest out;
  EXPECT_FALSE(decode_metrics(payload, &out));
  expect_every_prefix_rejected(payload, decode_metrics);
}

TEST(NetFrame, PongPayloadRoundTrip) {
  std::string payload;
  encode_pong({42, 1000}, &payload);
  PongResponse out;
  ASSERT_TRUE(decode_pong(payload, &out));
  EXPECT_EQ(out.epoch, 42u);
  EXPECT_EQ(out.num_docs, 1000u);
  expect_every_prefix_rejected(payload, decode_pong);
  expect_trailing_byte_rejected(payload, decode_pong);
}

TEST(NetFrame, RelatedPayloadGolden) {
  // One result (doc 3, score 1.5): epoch | num_docs | count | doc | the
  // raw IEEE-754 bits of 1.5 (0x3FF8000000000000), all little-endian
  // (PROTOCOL.md §5.2).
  RelatedResponse resp;
  resp.epoch = 1;
  resp.num_docs = 2;
  resp.results = {{3, 1.5}};
  std::string payload;
  encode_related(resp, &payload);
  EXPECT_EQ(payload,
            bytes({0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,   // epoch
                   0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,   // docs
                   0x01, 0x00, 0x00, 0x00,                           // count
                   0x03, 0x00, 0x00, 0x00,                           // doc
                   0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF8, 0x3F}));
}

TEST(NetFrame, RelatedScoresAreBitExact) {
  // The doubles that matter are the gnarly ones: denormals, negative
  // zero, values with no short decimal form. operator== after the round
  // trip is the whole point of shipping raw IEEE-754 bits.
  RelatedResponse resp;
  resp.epoch = 7;
  resp.num_docs = 9;
  resp.results = {{1, 0.1 + 0.2},
                  {2, -0.0},
                  {3, 5e-324},
                  {4, 1.0 / 3.0},
                  {5, 123456.789012345}};
  std::string payload;
  encode_related(resp, &payload);
  RelatedResponse out;
  ASSERT_TRUE(decode_related(payload, &out));
  ASSERT_EQ(out.results.size(), resp.results.size());
  for (size_t i = 0; i < resp.results.size(); ++i) {
    EXPECT_EQ(out.results[i].doc, resp.results[i].doc);
    EXPECT_EQ(std::bit_cast<uint64_t>(out.results[i].score),
              std::bit_cast<uint64_t>(resp.results[i].score))
        << "rank " << i;
  }
  expect_every_prefix_rejected(payload, decode_related);
  expect_trailing_byte_rejected(payload, decode_related);
}

TEST(NetFrame, RelatedCountMismatchRejected) {
  // A count that disagrees with the actual payload size — either way —
  // is malformed (PROTOCOL.md §5.2: count * 12 bytes must follow).
  RelatedResponse resp;
  resp.results = {{1, 1.0}, {2, 0.5}};
  std::string payload;
  encode_related(resp, &payload);
  std::string inflated = payload;
  inflated[16] = 3;  // count says 3, bytes hold 2
  RelatedResponse out;
  EXPECT_FALSE(decode_related(inflated, &out));
  std::string deflated = payload;
  deflated[16] = 1;
  EXPECT_FALSE(decode_related(deflated, &out));
}

TEST(NetFrame, AddedPayloadRoundTripAndTruncation) {
  AddedResponse resp;
  resp.ids = {100, 101, 102};
  std::string payload;
  encode_added(resp, &payload);
  AddedResponse out;
  ASSERT_TRUE(decode_added(payload, &out));
  EXPECT_EQ(out.ids, resp.ids);
  expect_every_prefix_rejected(payload, decode_added);
  expect_trailing_byte_rejected(payload, decode_added);
}

TEST(NetFrame, MetricsDataRoundTrip) {
  MetricsDataResponse resp;
  resp.body = "# HELP ibseg_net_connections ...\n";
  std::string payload;
  encode_metrics_data(resp, &payload);
  MetricsDataResponse out;
  ASSERT_TRUE(decode_metrics_data(payload, &out));
  EXPECT_EQ(out.body, resp.body);
  expect_every_prefix_rejected(payload, decode_metrics_data);
  expect_trailing_byte_rejected(payload, decode_metrics_data);
}

TEST(NetFrame, ReclusteredPayloadGoldenAndRoundTrip) {
  std::string payload;
  encode_reclustered({0x0102030405060708ull, 7}, &payload);
  // generation u64 LE | num_clusters u32 LE (PROTOCOL.md §5).
  EXPECT_EQ(payload, bytes({0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,
                            0x07, 0x00, 0x00, 0x00}));
  ReclusteredResponse out;
  ASSERT_TRUE(decode_reclustered(payload, &out));
  EXPECT_EQ(out.generation, 0x0102030405060708ull);
  EXPECT_EQ(out.num_clusters, 7u);
  expect_every_prefix_rejected(payload, decode_reclustered);
  expect_trailing_byte_rejected(payload, decode_reclustered);
}

TEST(NetFrame, ErrorPayloadGoldenAndRoundTrip) {
  std::string payload;
  encode_error({ErrCode::kOverloaded, "busy"}, &payload);
  // code 3 | message length 4 LE | "busy" (PROTOCOL.md §5.7).
  EXPECT_EQ(payload, bytes({0x03, 0x04, 0x00, 0x00, 0x00, 'b', 'u', 's',
                            'y'}));
  ErrorResponse out;
  ASSERT_TRUE(decode_error(payload, &out));
  EXPECT_EQ(out.code, ErrCode::kOverloaded);
  EXPECT_EQ(out.message, "busy");
  expect_every_prefix_rejected(payload, decode_error);
  expect_trailing_byte_rejected(payload, decode_error);
}

TEST(NetFrame, TenantOpenPayloadGoldenAndTruncation) {
  std::string payload;
  encode_tenant_open({"alpha"}, &payload);
  // name length 5 LE | "alpha" (PROTOCOL.md §4.14).
  EXPECT_EQ(payload, bytes({0x05, 0x00, 0x00, 0x00, 'a', 'l', 'p', 'h',
                            'a'}));
  TenantOpenRequest out;
  ASSERT_TRUE(decode_tenant_open(payload, &out));
  EXPECT_EQ(out.name, "alpha");
  expect_every_prefix_rejected(payload, decode_tenant_open);
  expect_trailing_byte_rejected(payload, decode_tenant_open);
}

TEST(NetFrame, TenantOpenBadNamesRejected) {
  TenantOpenRequest out;
  // Empty name: length 0 is not a tenant.
  EXPECT_FALSE(decode_tenant_open(bytes({0x00, 0x00, 0x00, 0x00}), &out));
  // Declared length past kMaxTenantNameBytes, even when the bytes exist.
  std::string oversized = bytes({0x81, 0x00, 0x00, 0x00});
  oversized.append(129, 'a');
  EXPECT_FALSE(decode_tenant_open(oversized, &out));
  // Length-bomb: huge declared length with no bytes behind it.
  EXPECT_FALSE(decode_tenant_open(bytes({0xFF, 0xFF, 0xFF, 0xFF, 'a'}),
                                  &out));
  // The maximum legal name (128 bytes) decodes.
  std::string max_name(128, 'z');
  std::string payload;
  encode_tenant_open({max_name}, &payload);
  ASSERT_TRUE(decode_tenant_open(payload, &out));
  EXPECT_EQ(out.name, max_name);
}

TEST(NetFrame, TenantOpenedPayloadGoldenAndTruncation) {
  std::string payload;
  encode_tenant_opened({0x0102030405060708ull, 40}, &payload);
  // epoch u64 LE | num_docs u64 LE (PROTOCOL.md §5, TENANT_OPENED).
  EXPECT_EQ(payload, bytes({0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,
                            0x28, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                            0x00}));
  TenantOpenedResponse out;
  ASSERT_TRUE(decode_tenant_opened(payload, &out));
  EXPECT_EQ(out.epoch, 0x0102030405060708ull);
  EXPECT_EQ(out.num_docs, 40u);
  expect_every_prefix_rejected(payload, decode_tenant_opened);
  expect_trailing_byte_rejected(payload, decode_tenant_opened);
}

TEST(NetFrame, TenantListingPayloadGoldenAndTruncation) {
  TenantListingResponse listing;
  listing.tenants = {{"a", 2}, {"bc", 3}};
  std::string payload;
  encode_tenant_listing(listing, &payload);
  // count 2 LE | (len 1 | "a" | docs 2 u64) | (len 2 | "bc" | docs 3 u64)
  // (PROTOCOL.md §5, TENANT_LISTING).
  EXPECT_EQ(payload,
            bytes({0x02, 0x00, 0x00, 0x00,
                   0x01, 0x00, 0x00, 0x00, 'a',
                   0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                   0x02, 0x00, 0x00, 0x00, 'b', 'c',
                   0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00}));
  TenantListingResponse out;
  ASSERT_TRUE(decode_tenant_listing(payload, &out));
  ASSERT_EQ(out.tenants.size(), 2u);
  EXPECT_EQ(out.tenants[0].name, "a");
  EXPECT_EQ(out.tenants[0].num_docs, 2u);
  EXPECT_EQ(out.tenants[1].name, "bc");
  EXPECT_EQ(out.tenants[1].num_docs, 3u);
  expect_every_prefix_rejected(payload, decode_tenant_listing);
  expect_trailing_byte_rejected(payload, decode_tenant_listing);
}

TEST(NetFrame, TenantListingCountBombRejected) {
  TenantListingResponse out;
  // Zero tenants is impossible — "default" always exists.
  EXPECT_FALSE(decode_tenant_listing(bytes({0x00, 0x00, 0x00, 0x00}), &out));
  // A count past kMaxTenants must be rejected before any allocation.
  EXPECT_FALSE(decode_tenant_listing(
      bytes({0xFF, 0xFF, 0xFF, 0xFF, 0x01, 0x00, 0x00, 0x00, 'a'}), &out));
  // A name length pointing past the payload is caught per entry.
  EXPECT_FALSE(decode_tenant_listing(
      bytes({0x01, 0x00, 0x00, 0x00, 0x40, 0x00, 0x00, 0x00, 'a'}), &out));
}

TEST(NetFrame, MsgTypeNamesAreStable) {
  // These strings are metric label values (ibseg_net_requests_total{cmd})
  // — renaming one silently forks a dashboard series.
  EXPECT_STREQ(msg_type_name(MsgType::kPing), "ping");
  EXPECT_STREQ(msg_type_name(MsgType::kQuery), "query");
  EXPECT_STREQ(msg_type_name(MsgType::kAsk), "ask");
  EXPECT_STREQ(msg_type_name(MsgType::kAddPost), "add_post");
  EXPECT_STREQ(msg_type_name(MsgType::kAddPosts), "add_posts");
  EXPECT_STREQ(msg_type_name(MsgType::kSave), "save");
  EXPECT_STREQ(msg_type_name(MsgType::kMetrics), "metrics");
  EXPECT_STREQ(msg_type_name(MsgType::kDrain), "drain");
  EXPECT_STREQ(msg_type_name(MsgType::kRecluster), "recluster");
  EXPECT_STREQ(msg_type_name(MsgType::kReclustered), "reclustered");
  EXPECT_STREQ(msg_type_name(MsgType::kTenantOpen), "tenant_open");
  EXPECT_STREQ(msg_type_name(MsgType::kTenantList), "tenant_list");
  EXPECT_STREQ(msg_type_name(MsgType::kTenantOpened), "tenant_opened");
  EXPECT_STREQ(msg_type_name(MsgType::kTenantListing), "tenant_listing");
  EXPECT_STREQ(msg_type_name(static_cast<MsgType>(0x7F)), "unknown");
}

// --- Wire primitives.

TEST(NetWire, ReaderFailureLatches) {
  WireReader r(std::string_view("\x01", 1));
  EXPECT_EQ(r.read_u32(), 0u);  // underrun
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.read_u8(), 0u);  // latched: even a fitting read fails
  EXPECT_FALSE(r.ok());
}

TEST(NetWire, LittleEndianGolden) {
  std::string out;
  WireWriter w(&out);
  w.write_u16(0x0201);
  w.write_u32(0x06050403);
  w.write_u64(0x0E0D0C0B0A090807ull);
  std::string expect;
  for (int i = 1; i <= 14; ++i) expect.push_back(static_cast<char>(i));
  EXPECT_EQ(out, expect);
}

}  // namespace
}  // namespace net
}  // namespace ibseg
