// Tests for the observability layer (src/obs): histogram bucket
// boundaries and quantile goldens, counter exactness under threads,
// deterministic registry rendering, and the serving integration — query
// metrics must actually advance when ServingPipeline serves queries.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "core/serving.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ibseg {
namespace {

// --- Histogram bucket geometry -------------------------------------------

TEST(HistogramTest, BucketBoundariesFollowThe125Series) {
  const auto& b = obs::Histogram::bounds();
  ASSERT_EQ(b.size(), obs::Histogram::kNumBounds);
  EXPECT_DOUBLE_EQ(b.front(), 1e-6);
  EXPECT_DOUBLE_EQ(b.back(), 100.0);
  // Strictly ascending, and each decade holds the 1-2-5 triple.
  for (size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
  EXPECT_DOUBLE_EQ(b[0] * 2, b[1]);
  EXPECT_DOUBLE_EQ(b[0] * 5, b[2]);
  EXPECT_DOUBLE_EQ(b[0] * 10, b[3]);
}

TEST(HistogramTest, BucketForPicksFirstBoundAtOrAboveValue) {
  using H = obs::Histogram;
  // Exact bounds are inclusive upper edges.
  EXPECT_EQ(H::bucket_for(1e-6), 0u);
  EXPECT_EQ(H::bucket_for(2e-6), 1u);
  EXPECT_EQ(H::bucket_for(100.0), 24u);
  // In-between values round up to the covering bucket.
  EXPECT_EQ(H::bucket_for(1.5e-6), 1u);
  EXPECT_EQ(H::bucket_for(0.0123), 13u);  // (1e-2, 2e-2]
  // Above the largest bound: overflow bucket.
  EXPECT_EQ(H::bucket_for(101.0), H::kNumBounds);
  EXPECT_EQ(H::bucket_for(1e9), H::kNumBounds);
  // Non-positive and NaN land in the first bucket rather than anywhere odd.
  EXPECT_EQ(H::bucket_for(0.0), 0u);
  EXPECT_EQ(H::bucket_for(-3.0), 0u);
  EXPECT_EQ(H::bucket_for(std::nan("")), 0u);
}

TEST(HistogramTest, CountSumAndBucketsTrackObservations) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  h.observe(0.0015);  // bucket 10: (1e-3, 2e-3]
  h.observe(0.0015);
  h.observe(0.3);  // bucket 17: (0.2, 0.5]
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.sum(), 0.303, 1e-8);  // fixed-point: exact to 1 ns
  EXPECT_EQ(h.bucket_count(10), 2u);
  EXPECT_EQ(h.bucket_count(17), 1u);
  EXPECT_EQ(h.bucket_count(0), 0u);
}

// --- Quantile goldens -----------------------------------------------------

TEST(HistogramTest, QuantileOfEmptyHistogramIsZero) {
  obs::Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
}

TEST(HistogramTest, QuantileInterpolatesWithinSingleBucket) {
  // 100 observations, all in bucket (1e-3, 2e-3]. Interpolation assumes a
  // uniform spread over the bucket, so pX = 1e-3 + (X/100) * 1e-3.
  obs::Histogram h;
  for (int i = 0; i < 100; ++i) h.observe(0.0015);
  EXPECT_NEAR(h.quantile(0.50), 1e-3 + 0.50 * 1e-3, 1e-12);
  EXPECT_NEAR(h.quantile(0.95), 1e-3 + 0.95 * 1e-3, 1e-12);
  EXPECT_NEAR(h.quantile(0.99), 1e-3 + 0.99 * 1e-3, 1e-12);
}

TEST(HistogramTest, QuantileSpansBuckets) {
  // 50 fast (bucket (2e-4, 5e-4]) + 50 slow (bucket (0.1, 0.2]).
  obs::Histogram h;
  for (int i = 0; i < 50; ++i) h.observe(0.0004);
  for (int i = 0; i < 50; ++i) h.observe(0.15);
  // p50: target rank 50 is the last observation of the fast bucket — the
  // interpolated value is its upper edge.
  EXPECT_NEAR(h.quantile(0.50), 5e-4, 1e-12);
  // p95: rank 95 = 45th of 50 within (0.1, 0.2] -> 0.1 + 0.9 * 0.1.
  EXPECT_NEAR(h.quantile(0.95), 0.19, 1e-12);
}

TEST(HistogramTest, OverflowQuantileClampsToLargestBound) {
  obs::Histogram h;
  for (int i = 0; i < 10; ++i) h.observe(500.0);  // all overflow
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 100.0);
  EXPECT_EQ(h.bucket_count(obs::Histogram::kNumBounds), 10u);
}

// --- Concurrency: exactness of relaxed counting ---------------------------

TEST(ObsConcurrencyTest, CounterIsExactUnderEightThreads) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(ObsConcurrencyTest, HistogramCountAndSumAreExactUnderEightThreads) {
  obs::Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.observe(0.001);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.bucket_count(9), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_NEAR(h.sum(), kThreads * kPerThread * 0.001, 1e-6);
}

// --- Registry semantics and rendering -------------------------------------

TEST(MetricsRegistryTest, SameNameAndLabelsReturnsSameInstance) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x_total", "first help wins");
  obs::Counter& b = reg.counter("x_total", "ignored");
  EXPECT_EQ(&a, &b);
  // Different labels -> different instance in the same family.
  obs::Counter& c = reg.counter("x_total", "", {{"op", "q"}});
  EXPECT_NE(&a, &c);
  // Same name, different kind -> distinct (kind is part of the identity).
  obs::Gauge& g = reg.gauge("x_total", "");
  g.set(7.0);
  EXPECT_EQ(a.value(), 0u);
}

TEST(MetricsRegistryTest, RenderTextSnapshot) {
  obs::MetricsRegistry reg;
  reg.counter("zz_events_total", "Events.").inc(3);
  reg.gauge("aa_size", "Current size.").set(42);
  obs::Histogram& h =
      reg.histogram("mid_seconds", "Latency.", {{"op", "q"}});
  h.observe(2e-6);  // bucket le=2e-06 (bounds are inclusive upper edges)
  h.observe(0.5);   // bucket le=0.5

  std::string text = reg.render_text();
  // Families are sorted by name; the full exposition is deterministic, so
  // a golden for the non-histogram parts plus spot checks for the long
  // bucket series keeps the test readable.
  EXPECT_EQ(text.substr(0, text.find("mid_seconds_bucket")),
            "# HELP aa_size Current size.\n"
            "# TYPE aa_size gauge\n"
            "aa_size 42\n"
            "# HELP mid_seconds Latency.\n"
            "# TYPE mid_seconds histogram\n");
  // Cumulative buckets: nothing below 2e-6, everything at and after 0.5.
  EXPECT_NE(text.find("mid_seconds_bucket{op=\"q\",le=\"1e-06\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("mid_seconds_bucket{op=\"q\",le=\"2e-06\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("mid_seconds_bucket{op=\"q\",le=\"0.5\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("mid_seconds_bucket{op=\"q\",le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("mid_seconds_sum{op=\"q\"} 0.500002\n"),
            std::string::npos);
  EXPECT_NE(text.find("mid_seconds_count{op=\"q\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("# HELP zz_events_total Events.\n"
                      "# TYPE zz_events_total counter\n"
                      "zz_events_total 3\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, RenderJsonCarriesQuantiles) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("lat_seconds", "Latency.");
  for (int i = 0; i < 100; ++i) h.observe(0.0015);
  std::string json = reg.render_json();
  EXPECT_NE(json.find("\"name\": \"lat_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"p50\": 0.0015"), std::string::npos);
  EXPECT_NE(json.find("\"p99\": 0.00199"), std::string::npos);
}

// --- Stage trace plumbing -------------------------------------------------

TEST(TraceTest, StageNamesMatchTheDocumentedCatalog) {
  using obs::Stage;
  EXPECT_STREQ(obs::stage_name(Stage::kAnalyze), "analyze");
  EXPECT_STREQ(obs::stage_name(Stage::kSegment), "segment");
  EXPECT_STREQ(obs::stage_name(Stage::kClusterAssign), "cluster-assign");
  EXPECT_STREQ(obs::stage_name(Stage::kIndexPublish), "index-publish");
  EXPECT_STREQ(obs::stage_name(Stage::kTermWeight), "term-weight");
  EXPECT_STREQ(obs::stage_name(Stage::kScore), "score");
  EXPECT_STREQ(obs::stage_name(Stage::kTopK), "top-k");
}

TEST(TraceTest, TraceScopeRecordsOnceAndStopDisarms) {
  obs::Histogram h;
  {
    obs::TraceScope scope(h);
    scope.stop();
    scope.stop();  // idempotent
  }                // destructor must not double-record
  EXPECT_EQ(h.count(), 1u);
}

TEST(TraceTest, DisabledTracingRecordsNothing) {
  obs::Histogram h;
  obs::set_enabled(false);
  { obs::TraceScope scope(h); }
  obs::set_enabled(true);
  EXPECT_EQ(h.count(), 0u);
  { obs::TraceScope scope(h); }
  EXPECT_EQ(h.count(), 1u);
}

// --- Serving integration --------------------------------------------------

// The serving metrics live in the process-wide registry, which other tests
// in this binary never touch by these names; reads are before/after deltas
// so the test stays valid whatever ran first.
TEST(ServingObservabilityTest, QueryAndIngestMetricsAdvance) {
  std::vector<Document> docs;
  std::vector<std::string> texts = {
      "My laptop overheats when compiling. The fan spins loudly. "
      "How can I improve the cooling? I already cleaned the vents.",
      "The compiler crashes with an internal error on this file. "
      "Has anyone seen this before? Which flags should I try?",
      "My laptop fan is loud under load and the case gets hot. "
      "What thermal paste do you recommend? Any cooling pad advice?",
      "After the last update the build takes twice as long. "
      "Is there a way to profile the build? Which step regressed?",
  };
  for (size_t i = 0; i < texts.size(); ++i) {
    docs.push_back(Document::analyze(static_cast<DocId>(i), texts[i]));
  }
  ServingPipeline serving(RelatedPostPipeline::build(std::move(docs), {}));

  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Counter& queries =
      reg.counter("ibseg_queries_total", "", {{"op", "find_related"}});
  obs::Histogram& latency =
      reg.histogram("ibseg_query_seconds", "", {{"op", "find_related"}});
  obs::Counter& ingested = reg.counter("ibseg_ingested_posts_total", "");
  obs::Gauge& corpus = reg.gauge("ibseg_corpus_docs", "");

  uint64_t queries_before = queries.value();
  uint64_t latency_before = latency.count();
  double latency_sum_before = latency.sum();
  serving.find_related(0, 3);
  serving.find_related(1, 3);
  EXPECT_EQ(queries.value(), queries_before + 2);
  EXPECT_EQ(latency.count(), latency_before + 2);
  EXPECT_GE(latency.sum(), latency_sum_before);

  uint64_t ingested_before = ingested.value();
  serving.add_post(
      "New post about fan noise and overheating during long builds. "
      "Looking for cooling advice and compiler tips.");
  EXPECT_EQ(ingested.value(), ingested_before + 1);
  // The corpus gauge reflects the serving pipeline that ingested last.
  EXPECT_DOUBLE_EQ(corpus.value(), static_cast<double>(serving.num_docs()));

  // The stage histograms exist in the exposition (registered as a catalog,
  // so even never-fired stages render at zero).
  std::string text = obs::render_text();
  EXPECT_NE(text.find("ibseg_stage_seconds_count{stage=\"analyze\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ibseg_stage_seconds_count{stage=\"score\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ibseg_stage_seconds_count{stage=\"top-k\"}"),
            std::string::npos);
}

}  // namespace
}  // namespace ibseg
