// Unit tests for src/eval: WindowDiff/multWinDiff/Pk, Fleiss kappa, border
// agreement with character-offset tolerance, precision, annotator sim.

#include <gtest/gtest.h>

#include "eval/agreement.h"
#include "eval/annotator_sim.h"
#include "eval/fleiss_kappa.h"
#include "eval/precision.h"
#include "eval/window_diff.h"
#include "seg/document.h"

namespace ibseg {
namespace {

// ------------------------------------------------------------ windowdiff ----

TEST(WindowDiff, ZeroForIdenticalSegmentations) {
  Segmentation ref{12, {4, 8}};
  EXPECT_DOUBLE_EQ(window_diff(ref, ref), 0.0);
  EXPECT_DOUBLE_EQ(pk_metric(ref, ref), 0.0);
}

TEST(WindowDiff, BoundedByOne) {
  Segmentation ref{12, {6}};
  Segmentation hyp = Segmentation::all_units(12);
  double wd = window_diff(ref, hyp);
  EXPECT_GT(wd, 0.0);
  EXPECT_LE(wd, 1.0);
}

TEST(WindowDiff, MissedBorderCostsLessThanManySpurious) {
  Segmentation ref{12, {6}};
  Segmentation none{12, {}};
  Segmentation all = Segmentation::all_units(12);
  EXPECT_LT(window_diff(ref, none), window_diff(ref, all));
}

TEST(WindowDiff, NearMissCheaperThanFarMiss) {
  Segmentation ref{20, {10}};
  Segmentation near{20, {11}};
  Segmentation far{20, {18}};
  EXPECT_LE(window_diff(ref, near), window_diff(ref, far));
}

TEST(WindowDiff, TinyDocumentIsZero) {
  Segmentation a{1, {}};
  EXPECT_DOUBLE_EQ(window_diff(a, a), 0.0);
}

TEST(MultWinDiff, AveragesOverReferences) {
  Segmentation hyp{12, {6}};
  Segmentation same{12, {6}};
  Segmentation off{12, {3}};
  double avg = mult_win_diff({same, off}, hyp);
  double only_same = mult_win_diff({same}, hyp);
  double only_off = mult_win_diff({off}, hyp);
  EXPECT_NEAR(avg, (only_same + only_off) / 2.0, 0.2);
  EXPECT_DOUBLE_EQ(mult_win_diff({}, hyp), 0.0);
}

TEST(MultWinDiff, MonotoneInPerturbation) {
  // More noise against the same references -> more error (on average).
  Segmentation ref{30, {10, 20}};
  Segmentation mild{30, {11, 20}};
  Segmentation wild{30, {2, 5, 9, 13, 17, 23, 27}};
  EXPECT_LT(mult_win_diff({ref}, mild), mult_win_diff({ref}, wild));
}

// ---------------------------------------------------------- fleiss kappa ----

TEST(FleissKappa, PerfectAgreementIsOne) {
  // 4 raters, binary categories, always unanimous.
  std::vector<std::vector<int>> ratings = {{4, 0}, {0, 4}, {4, 0}, {0, 4}};
  EXPECT_NEAR(fleiss_kappa(ratings), 1.0, 1e-9);
  EXPECT_NEAR(observed_agreement(ratings), 1.0, 1e-9);
}

TEST(FleissKappa, ChanceLevelNearZero) {
  // Perfect 50/50 splits: observed agreement equals chance.
  std::vector<std::vector<int>> ratings = {{2, 2}, {2, 2}, {2, 2}, {2, 2}};
  EXPECT_LT(fleiss_kappa(ratings), 0.01);
}

TEST(FleissKappa, WikipediaWorkedExample) {
  // The classic 14-rater, 5-category example; kappa ~= 0.210.
  std::vector<std::vector<int>> ratings = {
      {0, 0, 0, 0, 14}, {0, 2, 6, 4, 2}, {0, 0, 3, 5, 6}, {0, 3, 9, 2, 0},
      {2, 2, 8, 1, 1},  {7, 7, 0, 0, 0}, {3, 2, 6, 3, 0}, {2, 5, 3, 2, 2},
      {6, 5, 2, 1, 0},  {0, 2, 2, 3, 7}};
  EXPECT_NEAR(fleiss_kappa(ratings), 0.210, 0.005);
}

TEST(FleissKappa, SkipsUnderRatedItems) {
  std::vector<std::vector<int>> ratings = {{1, 0}, {3, 0}};  // first has 1 rater
  EXPECT_NEAR(fleiss_kappa(ratings), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(fleiss_kappa({}), 0.0);
}

// ------------------------------------------------------------- agreement ----

TEST(Agreement, PerfectPlacementGivesFullAgreement) {
  BorderAgreementAccumulator acc(10.0);
  acc.add_post({{100.0, 200.0}, {101.0, 199.0}, {99.0, 202.0}});
  AgreementResult r = acc.result();
  EXPECT_NEAR(r.observed_percent, 100.0, 1e-9);
  EXPECT_EQ(r.num_items, 2u);
}

TEST(Agreement, DisagreementLowersScores) {
  BorderAgreementAccumulator acc(10.0);
  acc.add_post({{100.0}, {300.0}, {500.0}});  // three distinct sites
  AgreementResult r = acc.result();
  EXPECT_LT(r.observed_percent, 100.0);
  EXPECT_EQ(r.num_items, 3u);
}

TEST(Agreement, WiderToleranceRaisesAgreement) {
  auto measure = [](double offset) {
    BorderAgreementAccumulator acc(offset);
    for (int p = 0; p < 20; ++p) {
      acc.add_post({{100.0, 300.0}, {112.0, 295.0}, {90.0, 315.0}});
    }
    return acc.result();
  };
  AgreementResult narrow = measure(5.0);
  AgreementResult wide = measure(40.0);
  EXPECT_GT(wide.observed_percent, narrow.observed_percent);
  EXPECT_GE(wide.fleiss_kappa, narrow.fleiss_kappa);
}

TEST(Agreement, SingleAnnotatorPostsIgnored) {
  BorderAgreementAccumulator acc(10.0);
  acc.add_post({{100.0}});
  EXPECT_EQ(acc.result().num_items, 0u);
}

// ------------------------------------------------------------- precision ----

TEST(Precision, ListPrecisionCountsRelevant) {
  auto relevant = [](DocId d) { return d < 2; };
  EXPECT_DOUBLE_EQ(list_precision({0, 1, 5, 6}, relevant), 0.5);
  EXPECT_DOUBLE_EQ(list_precision({}, relevant), 0.0);
  EXPECT_DOUBLE_EQ(list_precision({7}, relevant), 0.0);
}

TEST(Precision, SummaryStatistics) {
  PrecisionSummary s = summarize_precision({0.0, 0.5, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(s.mean, 0.375);
  EXPECT_DOUBLE_EQ(s.zero_fraction, 0.5);
  EXPECT_DOUBLE_EQ(summarize_precision({}).mean, 0.0);
}

// ----------------------------------------------------------- annotator sim ----

Document make_doc() {
  return Document::analyze(
      0,
      "I have a new laptop with a printer. It runs the usual setup. "
      "I called the support twice. They suggested a reset quickly. "
      "Can you replace the printer? What should I do about the cable?");
}

TEST(AnnotatorSim, NoNoiseReproducesTruth) {
  Document doc = make_doc();
  Segmentation truth{doc.num_units(), {2, 4}};
  std::vector<int> labels = {0, 1, 2};
  AnnotatorNoise silent;
  silent.drop_prob = 0.0;
  silent.shift_prob = 0.0;
  silent.insert_prob = 0.0;
  silent.char_jitter = 0.0;
  Rng rng(5);
  HumanAnnotation ann =
      simulate_annotation(doc, truth, labels, 3, silent, rng, 0.0);
  EXPECT_EQ(ann.segmentation.borders, truth.borders);
  EXPECT_EQ(ann.segment_labels, labels);
  ASSERT_EQ(ann.border_chars.size(), 2u);
  EXPECT_DOUBLE_EQ(ann.border_chars[0],
                   static_cast<double>(doc.border_char_offset(2)));
}

TEST(AnnotatorSim, NoisyAnnotationStaysValid) {
  Document doc = make_doc();
  Segmentation truth{doc.num_units(), {2, 4}};
  std::vector<int> labels = {0, 1, 2};
  Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    HumanAnnotation ann = simulate_annotation(doc, truth, labels, 3,
                                              AnnotatorNoise{}, rng, 0.1);
    EXPECT_TRUE(ann.segmentation.is_valid());
    EXPECT_EQ(ann.segmentation.num_units, doc.num_units());
    EXPECT_EQ(ann.border_chars.size(), ann.segmentation.borders.size());
    EXPECT_EQ(ann.segment_labels.size(), ann.segmentation.num_segments());
    for (double pos : ann.border_chars) {
      EXPECT_GE(pos, 0.0);
      EXPECT_LE(pos, static_cast<double>(doc.text().size()));
    }
  }
}

TEST(AnnotatorSim, MultipleAnnotatorsDiffer) {
  Document doc = make_doc();
  Segmentation truth{doc.num_units(), {2, 4}};
  Rng rng(11);
  auto anns = simulate_annotators(doc, truth, {0, 1, 2}, 3, 8,
                                  AnnotatorNoise{}, rng);
  ASSERT_EQ(anns.size(), 8u);
  bool any_different = false;
  for (size_t i = 1; i < anns.size(); ++i) {
    if (anns[i].segmentation.borders != anns[0].segmentation.borders) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(AnnotatorSim, HigherNoiseRaisesWindowDiff) {
  Document doc = make_doc();
  Segmentation truth{doc.num_units(), {2, 4}};
  auto avg_error = [&](const AnnotatorNoise& noise, uint64_t seed) {
    Rng rng(seed);
    double total = 0.0;
    const int trials = 200;
    for (int i = 0; i < trials; ++i) {
      auto ann = simulate_annotation(doc, truth, {0, 1, 2}, 3, noise, rng);
      total += window_diff(truth, ann.segmentation);
    }
    return total / trials;
  };
  AnnotatorNoise mild;
  mild.drop_prob = 0.05;
  mild.shift_prob = 0.05;
  mild.insert_prob = 0.01;
  AnnotatorNoise heavy;
  heavy.drop_prob = 0.4;
  heavy.shift_prob = 0.4;
  heavy.insert_prob = 0.2;
  EXPECT_LT(avg_error(mild, 1), avg_error(heavy, 1));
}

}  // namespace
}  // namespace ibseg
