// Fuzz target: the snapshot loaders (storage/snapshot_v2.h). Arbitrary
// bytes go through the version-sniffing load_snapshot_any_file — which
// exercises BOTH the v2 binary section parser (length prefixes, CRC
// frames) and the v1 text fallback — plus the full ServingSnapshot v2
// loader. The contract under fuzzing: never crash, never over-read
// (ASan-checked), and never return a structurally inconsistent snapshot.

#include "fuzz_driver.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/serving.h"
#include "datagen/post_generator.h"
#include "storage/snapshot.h"
#include "storage/snapshot_v2.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  static const std::string path = ibseg_fuzz::scratch_path("snapshot");
  ibseg_fuzz::write_scratch(path, data, size);

  std::optional<ibseg::ServingSnapshot> v2 =
      ibseg::load_snapshot_v2_file(path);
  if (v2.has_value()) {
    // The loader promises structural validity — an accepted-but-broken
    // snapshot would crash restore later, far from the bad bytes.
    if (!v2->is_consistent()) std::abort();
    (void)v2->offline();
  }

  std::optional<ibseg::PipelineSnapshot> any =
      ibseg::load_snapshot_any_file(path);
  if (any.has_value() && !any->is_consistent()) std::abort();
  return 0;
}

std::vector<std::string> fuzz_seed_inputs() {
  std::vector<std::string> seeds;
  // v2 seed: a real serving pipeline saved through the real writer.
  ibseg::GeneratorOptions gen;
  gen.num_posts = 6;
  gen.posts_per_scenario = 3;
  gen.seed = 99;
  std::vector<ibseg::Document> docs =
      ibseg::analyze_corpus(ibseg::generate_corpus(gen));
  std::vector<ibseg::Segmentation> segs;
  {
    ibseg::ServingPipeline serving(
        ibseg::RelatedPostPipeline::build(docs));
    for (const ibseg::Segmentation& s :
         serving.quiescent().segmentations()) {
      segs.push_back(s);
    }
    std::string path = ibseg_fuzz::scratch_path("snapshot_seed");
    if (serving.save(path)) {
      std::ifstream is(path, std::ios::binary);
      seeds.emplace_back((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
    }
  }
  // v1 seed: the text format the sniffing loader falls back to.
  {
    ibseg::IntentionClustering clustering =
        ibseg::IntentionClustering::build(docs, segs);
    std::stringstream ss;
    if (ibseg::save_snapshot(ibseg::make_snapshot(segs, clustering), ss)) {
      seeds.push_back(ss.str());
    }
  }
  seeds.push_back("");            // empty file
  seeds.push_back("IBSGSNP2");    // magic with nothing behind it
  return seeds;
}
