// Fuzz target: WAL open/replay (storage/wal.h). Arbitrary bytes are
// treated as an on-disk ingest log: open() must replay the longest valid
// frame prefix, truncate the rest, and never crash or over-read. The
// idempotence property is checked in-loop: reopening the file open() just
// truncated must replay exactly the same records — recovery that changes
// the log on every pass would never converge.

#include "fuzz_driver.h"

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "storage/wal.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  static const std::string path = ibseg_fuzz::scratch_path("wal");
  ibseg_fuzz::write_scratch(path, data, size);

  ibseg::WalOptions options;
  options.fsync = ibseg::WalFsync::kNone;
  std::vector<ibseg::WalRecord> first;
  std::unique_ptr<ibseg::IngestWal> wal =
      ibseg::IngestWal::open(path, options, &first);
  if (wal == nullptr) return 0;
  wal.reset();  // close the fd before the second open

  std::vector<ibseg::WalRecord> second;
  std::unique_ptr<ibseg::IngestWal> again =
      ibseg::IngestWal::open(path, options, &second);
  if (again == nullptr) std::abort();  // was openable a moment ago
  if (second.size() != first.size()) std::abort();
  for (size_t i = 0; i < first.size(); ++i) {
    if (second[i].id != first[i].id || second[i].text != first[i].text) {
      std::abort();
    }
  }
  return 0;
}

std::vector<std::string> fuzz_seed_inputs() {
  // A well-formed three-record log written by the real appender, captured
  // as bytes — mutations then probe frame-boundary handling from a valid
  // starting point.
  std::vector<std::string> seeds;
  std::string path = ibseg_fuzz::scratch_path("wal_seed");
  ibseg::WalOptions options;
  options.fsync = ibseg::WalFsync::kNone;
  std::vector<ibseg::WalRecord> replayed;
  std::unique_ptr<ibseg::IngestWal> wal =
      ibseg::IngestWal::open(path, options, &replayed);
  if (wal != nullptr) {
    wal->append({7, "first logged post text"});
    wal->append({8, ""});  // empty payload text (journal records use these)
    wal->append({9, std::string("binary \x01\x02\xff bytes and \n newline")});
    wal.reset();
    std::ifstream is(path, std::ios::binary);
    seeds.emplace_back((std::istreambuf_iterator<char>(is)),
                       std::istreambuf_iterator<char>());
  }
  seeds.push_back("");  // empty log: valid, zero records
  return seeds;
}
