#ifndef IBSEG_TESTS_FUZZ_FUZZ_DRIVER_H_
#define IBSEG_TESTS_FUZZ_FUZZ_DRIVER_H_

// Shared contract between the fuzz targets and the standalone driver.
//
// Each target translation unit defines the libFuzzer entry point
// LLVMFuzzerTestOneInput plus fuzz_seed_inputs(), a programmatic seed
// corpus (well-formed inputs serialized in-process, so the seeds track the
// real formats instead of rotting as checked-in binaries). Under Clang
// with IBSEG_LIBFUZZER=ON the target links against libFuzzer and the seeds
// are ignored in favor of the on-disk corpus; everywhere else (gcc — this
// container) fuzz_driver_main.cc supplies a main() that replays argv files
// and, when IBSEG_FUZZ_TIME_SEC is set, runs a deterministic structure-
// blind mutation loop over the seeds for that many seconds.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

/// Well-formed starting points for the mutation loop, built fresh at
/// startup by each target.
std::vector<std::string> fuzz_seed_inputs();

namespace ibseg_fuzz {

/// Scratch file path for targets that exercise file-based loaders; unique
/// per process, reused across iterations.
std::string scratch_path(const char* tag);

/// Writes `data` to `path` (truncating). Aborts on I/O failure — a fuzz
/// harness that silently skips inputs reports clean runs it never did.
void write_scratch(const std::string& path, const uint8_t* data, size_t size);

}  // namespace ibseg_fuzz

#endif  // IBSEG_TESTS_FUZZ_FUZZ_DRIVER_H_
