// Fuzz target: unescape_text (storage/corpus_io.h), the line-format
// decoder every v1 text loader funnels raw file bytes through. Contract:
// never crash on any byte sequence, reject (nullopt) exactly the inputs
// escape_text cannot produce, and round-trip — anything it accepts must
// re-escape and re-decode to the same string.

#include "fuzz_driver.h"

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "storage/corpus_io.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string line(reinterpret_cast<const char*>(data), size);
  std::optional<std::string> text = ibseg::unescape_text(line);
  if (text.has_value()) {
    std::optional<std::string> round =
        ibseg::unescape_text(ibseg::escape_text(*text));
    if (!round.has_value() || *round != *text) std::abort();
  }
  return 0;
}

std::vector<std::string> fuzz_seed_inputs() {
  return {
      "",
      "plain post text with no escapes at all",
      ibseg::escape_text("escaped\npost\r\nwith\\backslashes\\n"),
      "trailing backslash is invalid \\",
      "unknown escape \\q in the middle",
      std::string("embedded \x00 NUL and high bytes \xfe\xff", 32),
  };
}
