// Standalone fuzz driver for toolchains without libFuzzer (gcc): replays
// any files given on the command line (crash-regression mode), then — when
// IBSEG_FUZZ_TIME_SEC is set — runs a time-bounded, DETERMINISTIC
// structure-blind mutation loop over the target's programmatic seed
// corpus. Determinism (fixed PRNG seed, overridable via IBSEG_FUZZ_SEED)
// means a failing smoke run reproduces exactly; the interesting inputs it
// finds should be promoted to regression tests, not left in the corpus.
//
// The mutations are the classic byte-level set: bit flips, random byte
// stores, truncation, block duplication, and cross-seed splices. The
// targets' parsers are all length-prefixed/CRC-framed formats, so blind
// mutation is an effective probe for over-reads and missing bounds checks
// (the crash classes ASan turns into hard failures).

#include "fuzz_driver.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>

namespace ibseg_fuzz {

std::string scratch_path(const char* tag) {
  const char* base = std::getenv("TMPDIR");
  std::string dir = (base != nullptr && *base != '\0') ? base : "/tmp";
  return dir + "/ibseg_fuzz_" + tag + "_" +
         std::to_string(static_cast<long>(::getpid()));
}

void write_scratch(const std::string& path, const uint8_t* data,
                   size_t size) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(reinterpret_cast<const char*>(data),
           static_cast<std::streamsize>(size));
  os.flush();
  if (!os) {
    std::fprintf(stderr, "fuzz: cannot write scratch file %s\n",
                 path.c_str());
    std::abort();
  }
}

namespace {

void run_one(const std::string& input) {
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(input.data()),
                         input.size());
}

std::string mutate(std::string input, std::mt19937_64& rng,
                   const std::vector<std::string>& seeds) {
  std::uniform_int_distribution<int> strategy(0, 4);
  std::uniform_int_distribution<uint64_t> any(0);
  int rounds = 1 + static_cast<int>(any(rng) % 4);
  for (int r = 0; r < rounds; ++r) {
    switch (strategy(rng)) {
      case 0:  // bit flip
        if (!input.empty()) {
          size_t pos = any(rng) % input.size();
          input[pos] = static_cast<char>(input[pos] ^ (1u << (any(rng) % 8)));
        }
        break;
      case 1:  // byte store (favors format-relevant small values)
        if (!input.empty()) {
          input[any(rng) % input.size()] =
              static_cast<char>(any(rng) % 3 == 0 ? any(rng) % 8
                                                  : any(rng) & 0xff);
        }
        break;
      case 2:  // truncate — torn-tail probes
        if (!input.empty()) input.resize(any(rng) % input.size());
        break;
      case 3:  // duplicate a block — length-prefix confusion probes
        if (!input.empty()) {
          size_t from = any(rng) % input.size();
          size_t len = 1 + any(rng) % (input.size() - from);
          input.insert(any(rng) % (input.size() + 1),
                       input.substr(from, len));
        }
        break;
      default:  // splice a window from another seed
        if (!seeds.empty()) {
          const std::string& other = seeds[any(rng) % seeds.size()];
          if (!other.empty() && !input.empty()) {
            size_t from = any(rng) % other.size();
            size_t len = 1 + any(rng) % (other.size() - from);
            size_t at = any(rng) % input.size();
            input.replace(at, std::min(len, input.size() - at),
                          other.substr(from, len));
          }
        }
        break;
    }
  }
  // Bound growth so the loop probes many inputs, not one giant one.
  if (input.size() > 1 << 16) input.resize(1 << 16);
  return input;
}

}  // namespace
}  // namespace ibseg_fuzz

int main(int argc, char** argv) {
  // Replay mode: every argv file runs once (crash regressions, corpora).
  for (int i = 1; i < argc; ++i) {
    std::ifstream is(argv[i], std::ios::binary);
    if (!is) {
      std::fprintf(stderr, "fuzz: cannot read %s\n", argv[i]);
      return 1;
    }
    std::string bytes((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
    ibseg_fuzz::run_one(bytes);
    std::printf("replayed %s (%zu bytes)\n", argv[i], bytes.size());
  }

  const char* time_env = std::getenv("IBSEG_FUZZ_TIME_SEC");
  long seconds = time_env != nullptr ? std::atol(time_env) : 0;
  if (seconds <= 0) {
    if (argc <= 1) {
      std::printf(
          "usage: %s [input files...]; set IBSEG_FUZZ_TIME_SEC=N for a "
          "timed mutation run\n",
          argv[0]);
    }
    return 0;
  }

  const char* seed_env = std::getenv("IBSEG_FUZZ_SEED");
  uint64_t prng_seed =
      seed_env != nullptr ? std::strtoull(seed_env, nullptr, 10) : 20260805u;
  std::mt19937_64 rng(prng_seed);

  std::vector<std::string> seeds = fuzz_seed_inputs();
  if (seeds.empty()) seeds.push_back("");
  // The seeds themselves must pass before anything mutated runs.
  for (const std::string& s : seeds) ibseg_fuzz::run_one(s);

  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::seconds(seconds);
  uint64_t execs = 0;
  std::uniform_int_distribution<size_t> pick(0, seeds.size() - 1);
  while (std::chrono::steady_clock::now() < deadline) {
    // Small batches between clock reads; each batch mutates a fresh copy
    // of some seed so the walk never strays unrecoverably far from the
    // format.
    for (int i = 0; i < 64; ++i) {
      ibseg_fuzz::run_one(ibseg_fuzz::mutate(seeds[pick(rng)], rng, seeds));
      ++execs;
    }
  }
  std::printf("fuzz smoke done: %llu execs in %lds (seed %llu)\n",
              static_cast<unsigned long long>(execs), seconds,
              static_cast<unsigned long long>(prng_seed));
  return 0;
}
