// Fuzz target for the wire-protocol codecs (src/net/frame.h) — the one
// parser in the system that consumes bytes written by a *remote peer*, so
// its robustness bar is the highest: any input must either decode cleanly
// or be rejected, with no over-read, no unbounded allocation, and no
// state carried between frames.
//
// The input bytes are treated as a connection's receive stream: frames are
// peeled off with decode_frame_header exactly the way Server::parse_frames
// does, each payload is run through the decoder for its type (requests AND
// responses — the client's decoders face a hostile server too), and every
// successfully decoded message is re-encoded and decoded again, asserting
// the round trip is stable (decode∘encode = id on the decoded image).

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "net/frame.h"
#include "fuzz_driver.h"

using namespace ibseg;
using namespace ibseg::net;

namespace {

/// Decodes `payload` as `type`; on success re-encodes and checks the
/// second decode reproduces the first (and, for text-free types, that the
/// bytes themselves round-trip).
void exercise_payload(MsgType type, std::string_view payload) {
  switch (type) {
    case MsgType::kQuery: {
      QueryRequest a;
      if (!decode_query(payload, &a)) return;
      std::string again;
      encode_query(a, &again);
      assert(again == payload);
      break;
    }
    case MsgType::kAsk: {
      AskRequest a;
      if (!decode_ask(payload, &a)) return;
      std::string again;
      encode_ask(a, &again);
      assert(again == payload);
      break;
    }
    case MsgType::kAddPost: {
      AddPostRequest a;
      if (!decode_add_post(payload, &a)) return;
      std::string again;
      encode_add_post(a, &again);
      assert(again == payload);
      break;
    }
    case MsgType::kAddPosts: {
      AddPostsRequest a;
      if (!decode_add_posts(payload, &a)) return;
      std::string again;
      encode_add_posts(a, &again);
      assert(again == payload);
      break;
    }
    case MsgType::kMetrics: {
      MetricsRequest a;
      if (!decode_metrics(payload, &a)) return;
      std::string again;
      encode_metrics(a, &again);
      assert(again == payload);
      break;
    }
    case MsgType::kPong: {
      PongResponse a;
      if (!decode_pong(payload, &a)) return;
      std::string again;
      encode_pong(a, &again);
      assert(again == payload);
      break;
    }
    case MsgType::kRelated: {
      RelatedResponse a;
      if (!decode_related(payload, &a)) return;
      std::string again;
      encode_related(a, &again);
      assert(again == payload);
      break;
    }
    case MsgType::kAdded: {
      AddedResponse a;
      if (!decode_added(payload, &a)) return;
      std::string again;
      encode_added(a, &again);
      assert(again == payload);
      break;
    }
    case MsgType::kMetricsData: {
      MetricsDataResponse a;
      if (!decode_metrics_data(payload, &a)) return;
      std::string again;
      encode_metrics_data(a, &again);
      assert(again == payload);
      break;
    }
    case MsgType::kError: {
      ErrorResponse a;
      if (!decode_error(payload, &a)) return;
      std::string again;
      encode_error(a, &again);
      assert(again == payload);
      break;
    }
    case MsgType::kTenantOpen: {
      TenantOpenRequest a;
      if (!decode_tenant_open(payload, &a)) return;
      std::string again;
      encode_tenant_open(a, &again);
      assert(again == payload);
      break;
    }
    case MsgType::kTenantOpened: {
      TenantOpenedResponse a;
      if (!decode_tenant_opened(payload, &a)) return;
      std::string again;
      encode_tenant_opened(a, &again);
      assert(again == payload);
      break;
    }
    case MsgType::kTenantListing: {
      TenantListingResponse a;
      if (!decode_tenant_listing(payload, &a)) return;
      std::string again;
      encode_tenant_listing(a, &again);
      assert(again == payload);
      break;
    }
    case MsgType::kSubscribeWal: {
      SubscribeWalRequest a;
      if (!decode_subscribe_wal(payload, &a)) return;
      std::string again;
      encode_subscribe_wal(a, &again);
      assert(again == payload);
      break;
    }
    case MsgType::kWalAck: {
      WalAckRequest a;
      if (!decode_wal_ack(payload, &a)) return;
      std::string again;
      encode_wal_ack(a, &again);
      assert(again == payload);
      break;
    }
    case MsgType::kSnapshotChunk: {
      SnapshotChunkRequest a;
      if (!decode_snapshot_chunk(payload, &a)) return;
      std::string again;
      encode_snapshot_chunk(a, &again);
      assert(again == payload);
      break;
    }
    case MsgType::kWalSegment: {
      WalSegmentResponse a;
      if (!decode_wal_segment(payload, &a)) return;
      std::string again;
      encode_wal_segment(a, &again);
      assert(again == payload);
      break;
    }
    case MsgType::kSnapshotListing: {
      SnapshotListingResponse a;
      if (!decode_snapshot_listing(payload, &a)) return;
      std::string again;
      encode_snapshot_listing(a, &again);
      assert(again == payload);
      break;
    }
    case MsgType::kSnapshotData: {
      SnapshotDataResponse a;
      if (!decode_snapshot_data(payload, &a)) return;
      std::string again;
      encode_snapshot_data(a, &again);
      assert(again == payload);
      break;
    }
    default:
      // PING/SAVE/DRAIN/SAVED/DRAINING and unknown types: the payload
      // contract is "empty"; nothing to decode, nothing to crash.
      break;
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  size_t offset = 0;
  // Peel frames off the stream the way the server's parse loop does; stop
  // on the first malformed header (a real connection would close) or when
  // the remaining bytes cannot complete a frame.
  while (true) {
    FrameHeader header;
    DecodeStatus status =
        decode_frame_header(data + offset, size - offset, &header);
    if (status != DecodeStatus::kOk) break;
    if (size - offset - kFrameHeaderBytes < header.payload_len) break;
    exercise_payload(
        header.type,
        std::string_view(
            reinterpret_cast<const char*>(data + offset + kFrameHeaderBytes),
            header.payload_len));
    offset += kFrameHeaderBytes + header.payload_len;
  }
  // Also throw the raw tail at every decoder directly — the mutation loop
  // then explores payload space without needing a valid header first.
  std::string_view tail(reinterpret_cast<const char*>(data + offset),
                        size - offset);
  for (MsgType type :
       {MsgType::kQuery, MsgType::kAsk, MsgType::kAddPost, MsgType::kAddPosts,
        MsgType::kMetrics, MsgType::kPong, MsgType::kRelated, MsgType::kAdded,
        MsgType::kMetricsData, MsgType::kError, MsgType::kTenantOpen,
        MsgType::kTenantOpened, MsgType::kTenantListing,
        MsgType::kSubscribeWal, MsgType::kWalAck, MsgType::kSnapshotChunk,
        MsgType::kWalSegment, MsgType::kSnapshotListing,
        MsgType::kSnapshotData}) {
    exercise_payload(type, tail);
  }
  return 0;
}

std::vector<std::string> fuzz_seed_inputs() {
  std::vector<std::string> seeds;
  auto add_frame = [&seeds](MsgType type, const std::string& payload) {
    std::string frame;
    encode_frame(type, payload, &frame);
    seeds.push_back(frame);
  };

  add_frame(MsgType::kPing, {});
  add_frame(MsgType::kSave, {});
  add_frame(MsgType::kDrain, {});

  std::string p;
  encode_query({7, 10}, &p);
  add_frame(MsgType::kQuery, p);

  p.clear();
  encode_ask({5, "my laptop will not boot after the update"}, &p);
  add_frame(MsgType::kAsk, p);

  p.clear();
  encode_add_post({"the battery drains within an hour"}, &p);
  add_frame(MsgType::kAddPost, p);

  p.clear();
  AddPostsRequest batch;
  batch.texts = {"first post", "second post", "third post"};
  encode_add_posts(batch, &p);
  add_frame(MsgType::kAddPosts, p);

  p.clear();
  encode_metrics({0}, &p);
  add_frame(MsgType::kMetrics, p);

  p.clear();
  encode_pong({12, 345}, &p);
  add_frame(MsgType::kPong, p);

  p.clear();
  RelatedResponse related;
  related.epoch = 3;
  related.num_docs = 40;
  related.results = {{4, 0.75}, {9, 0.5}, {1, 0.125}};
  encode_related(related, &p);
  add_frame(MsgType::kRelated, p);

  p.clear();
  AddedResponse added;
  added.ids = {40, 41, 42};
  encode_added(added, &p);
  add_frame(MsgType::kAdded, p);

  p.clear();
  encode_metrics_data({"# HELP ibseg_net_connections open connections\n"}, &p);
  add_frame(MsgType::kMetricsData, p);

  p.clear();
  encode_error({ErrCode::kOverloaded, "too many in-flight requests"}, &p);
  add_frame(MsgType::kError, p);

  p.clear();
  encode_tenant_open({"alpha"}, &p);
  add_frame(MsgType::kTenantOpen, p);

  add_frame(MsgType::kTenantList, {});

  p.clear();
  encode_tenant_opened({7, 1234}, &p);
  add_frame(MsgType::kTenantOpened, p);

  p.clear();
  TenantListingResponse tenants;
  tenants.tenants = {{"alpha", 41}, {"beta", 40}, {"default", 40}};
  encode_tenant_listing(tenants, &p);
  add_frame(MsgType::kTenantListing, p);

  p.clear();
  encode_subscribe_wal({18, 2, 256, 1u << 20, "replica-a"}, &p);
  add_frame(MsgType::kSubscribeWal, p);

  p.clear();
  encode_wal_ack({18, "replica-a"}, &p);
  add_frame(MsgType::kWalAck, p);

  add_frame(MsgType::kSnapshotList, {});

  p.clear();
  encode_snapshot_chunk({"shard-0/snapshot.v2", 4096, 1u << 16}, &p);
  add_frame(MsgType::kSnapshotChunk, p);

  p.clear();
  WalSegmentResponse segment;
  segment.base_seq = 18;
  segment.leader_seq = 20;
  segment.leader_generation = 2;
  segment.segment_generation = 2;
  segment.recluster_after = 1;
  segment.recluster_target = 3;
  segment.frame_count = 1;
  // One syntactically plausible WAL frame: len | crc | doc_id | text. The
  // codec constraint frame_count * 12 <= raw.size() is what matters here;
  // the CRC need not verify for the wire decoder.
  segment.raw = std::string("\x08\x00\x00\x00\xAA\xBB\xCC\xDD", 8) +
                std::string("\x2A\x00\x00\x00post", 8);
  encode_wal_segment(segment, &p);
  add_frame(MsgType::kWalSegment, p);

  p.clear();
  SnapshotListingResponse listing;
  listing.generation = 2;
  listing.num_shards = 2;
  listing.files = {{"MANIFEST", 512, 0xDEADBEEF},
                   {"shard-0/snapshot.g2.v2", 8192, 1},
                   {"shard-1/snapshot.g2.v2", 8192, 2}};
  encode_snapshot_listing(listing, &p);
  add_frame(MsgType::kSnapshotListing, p);

  p.clear();
  encode_snapshot_data({8192, "snapshot bytes here"}, &p);
  add_frame(MsgType::kSnapshotData, p);

  // A two-frame stream seed so mutation explores the framing loop.
  std::string stream;
  encode_frame(MsgType::kPing, {}, &stream);
  p.clear();
  encode_query({1, 3}, &p);
  encode_frame(MsgType::kQuery, p, &stream);
  seeds.push_back(stream);

  return seeds;
}
