// Fuzz target: FlatPostings::decode_run (index/flat_postings.h), the
// bounded decoder over the sealed serving arena — the one codec surface
// that walks untrusted varint bytes (a snapshot-restored arena is disk
// bytes). Contract under ANY input: never crash, never read outside
// [data, data+size), never allocate more postings than the byte budget
// allows (an inflated df against a short buffer must not over-reserve),
// and anything it accepts must semantically round-trip — re-encoding the
// decoded postings and decoding again reproduces bit-identical (unit, tf)
// pairs. (Byte-level re-encode equality is asserted only for canonical
// encoder output; the decoder deliberately also accepts a raw-escape tf
// that the encoder would have packed as a varint.)
//
// Input layout: first 4 bytes little-endian = the claimed df (the
// attacker-controlled count a corrupt snapshot would carry), remainder =
// the run bytes. Seeds are REAL sealed runs: a small deterministic
// corpus is indexed, finalized, and each term's arena window is emitted
// with its true df.

#include "fuzz_driver.h"

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "index/flat_postings.h"
#include "index/inverted_index.h"

namespace {

bool identical(const std::vector<ibseg::Posting>& a,
               const std::vector<ibseg::Posting>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].unit != b[i].unit) return false;
    // Bit comparison: -0.0 vs 0.0 and NaN payloads must round-trip too.
    if (std::memcmp(&a[i].tf, &b[i].tf, sizeof(double)) != 0) return false;
  }
  return true;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 4) return 0;
  uint32_t df = 0;
  std::memcpy(&df, data, 4);
  const uint8_t* run = data + 4;
  size_t run_size = size - 4;

  std::vector<ibseg::Posting> out;
  ibseg::FlatDecodeStats stats;
  bool ok = ibseg::FlatPostings::decode_run(run, run_size, df, &out, &stats);

  // Allocation guard: decoded postings (and the reserve behind them) are
  // bounded by the byte budget — a posting costs at least 2 bytes — and
  // by df, no matter what the header claims.
  if (out.size() > run_size / 2 + 1) std::abort();
  if (out.size() > df) std::abort();
  // reserve() may round up a little, but the order of magnitude must be
  // the byte budget, never the claimed df.
  if (out.capacity() > 2 * (run_size / 2 + 1) + 16) std::abort();
  if (!ok) return 0;

  // Accepted input: exactly df postings, every byte consumed.
  if (out.size() != df || stats.postings != df || stats.bytes != run_size) {
    std::abort();
  }
  // Semantic round-trip: re-encode, decode again, compare bit-for-bit.
  std::vector<uint8_t> reencoded;
  uint32_t prev = 0;
  bool first = true;
  for (const ibseg::Posting& p : out) {
    ibseg::FlatPostings::append_posting(&reencoded, p.unit, p.tf, prev,
                                        first);
    prev = p.unit;
    first = false;
  }
  std::vector<ibseg::Posting> again;
  if (!ibseg::FlatPostings::decode_run(reencoded.data(), reencoded.size(),
                                       df, &again)) {
    std::abort();
  }
  if (!identical(out, again)) std::abort();
  return 0;
}

std::vector<std::string> fuzz_seed_inputs() {
  // Real sealed runs: deterministic multi-unit index with repeated terms
  // (multi-byte deltas, tf > 1) and one fractional tf to seed the
  // raw-escape branch.
  ibseg::InvertedIndex index;
  for (uint32_t u = 0; u < 40; ++u) {
    ibseg::TermVector unit;
    unit.add(static_cast<ibseg::TermId>(u % 7), 1.0 + (u % 3));
    unit.add(static_cast<ibseg::TermId>(200 + u / 4), 1.0);
    if (u % 5 == 0) unit.add(static_cast<ibseg::TermId>(999), 2.0);
    index.add_unit(unit);
  }
  {
    ibseg::TermVector frac;
    frac.add(static_cast<ibseg::TermId>(999), 0.5);  // raw-bits tf branch
    index.add_unit(frac);
  }
  index.finalize();
  const ibseg::FlatPostings& flat = index.flat();

  std::vector<std::string> seeds;
  for (ibseg::TermId t : {static_cast<ibseg::TermId>(0),
                          static_cast<ibseg::TermId>(3),
                          static_cast<ibseg::TermId>(200),
                          static_cast<ibseg::TermId>(999)}) {
    const ibseg::FlatTermMeta* meta = flat.term_meta(t);
    if (meta == nullptr) continue;
    std::vector<uint8_t> run = flat.term_run_bytes(t);
    std::string seed;
    uint32_t df = meta->df;
    seed.append(reinterpret_cast<const char*>(&df), 4);
    seed.append(reinterpret_cast<const char*>(run.data()), run.size());
    seeds.push_back(std::move(seed));
  }
  // Hostile header: huge df over a tiny valid run (over-reserve probe).
  std::string bomb;
  uint32_t huge = 0xffffffffu;
  bomb.append(reinterpret_cast<const char*>(&huge), 4);
  bomb.push_back('\x05');
  bomb.push_back('\x07');
  seeds.push_back(std::move(bomb));
  seeds.push_back(std::string(4, '\0'));  // df 0, empty run: valid
  return seeds;
}
