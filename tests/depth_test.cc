// Depth batteries: a Porter reference table (from the published test
// vocabulary), a tagged-sentence corpus for the POS tagger, and a
// randomized inverted-index-vs-brute-force scoring equivalence sweep.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "index/inverted_index.h"
#include "index/scoring.h"
#include "nlp/pos_tagger.h"
#include "text/porter_stemmer.h"
#include "text/tokenizer.h"
#include "util/rng.h"

namespace ibseg {
namespace {

// ----------------------------------------------- Porter reference table ----

struct StemPair {
  const char* word;
  const char* stem;
};

// Entries sampled from Porter's published voc.txt/output.txt reference.
constexpr StemPair kReference[] = {
    {"a", "a"},
    {"abandoned", "abandon"},
    {"abilities", "abil"},
    {"ability", "abil"},
    {"able", "abl"},
    {"absolutely", "absolut"},
    {"absorbed", "absorb"},
    {"accent", "accent"},
    {"accentuate", "accentu"},
    {"accept", "accept"},
    {"accessible", "access"},
    {"accidental", "accident"},
    {"accompanied", "accompani"},
    {"accordance", "accord"},
    {"according", "accord"},
    {"accumulation", "accumul"},
    {"accuracy", "accuraci"},
    {"accurate", "accur"},
    {"achievement", "achiev"},
    {"acknowledgement", "acknowledg"},
    {"acquired", "acquir"},
    {"action", "action"},
    {"activate", "activ"},
    {"actively", "activ"},
    {"adjustable", "adjust"},
    {"administration", "administr"},
    {"admiration", "admir"},
    {"adoption", "adopt"},
    {"advisable", "advis"},
    {"agreement", "agreement"},
    {"alignment", "align"},
    {"allowance", "allow"},
    {"amazement", "amaz"},
    {"amusing", "amus"},
    {"analogous", "analog"},
    {"animated", "anim"},
    {"announcement", "announc"},
    {"annoyance", "annoy"},
    {"anticipation", "anticip"},
    {"apologize", "apolog"},
    {"apparently", "appar"},
    {"appearance", "appear"},
    {"appreciation", "appreci"},
    {"argument", "argument"},
    {"arrangement", "arrang"},
    {"assistance", "assist"},
    {"association", "associ"},
    {"assumption", "assumpt"},
    {"attachment", "attach"},
    {"attention", "attent"},
    {"attitude", "attitud"},
    {"availability", "avail"},
    {"basically", "basic"},
    {"beautiful", "beauti"},
    {"becoming", "becom"},
    {"beginning", "begin"},
    {"believed", "believ"},
    {"capabilities", "capabl"},
    {"carefully", "care"},
    {"cease", "ceas"},
    {"certainly", "certainli"},
    {"characterization", "character"},
    {"cheerfulness", "cheer"},
    {"combination", "combin"},
    {"comfortable", "comfort"},
    {"communication", "commun"},
    {"comparison", "comparison"},
    {"completely", "complet"},
    {"conditionally", "condition"},
    {"connection", "connect"},
    {"consideration", "consider"},
    {"consistency", "consist"},
    {"continuously", "continu"},
    {"creation", "creation"},
    {"darkness", "dark"},
    {"dependent", "depend"},
    {"description", "descript"},
    {"development", "develop"},
    {"difficulties", "difficulti"},
    {"disappointed", "disappoint"},
    {"discussion", "discuss"},
    {"distribution", "distribut"},
    {"effectiveness", "effect"},
    {"electricity", "electr"},
    {"engineering", "engin"},
    {"enjoyment", "enjoy"},
    {"equipment", "equip"},
    {"establishment", "establish"},
    {"exactly", "exactli"},
    {"excitement", "excit"},
    {"explanation", "explan"},
    {"formalize", "formal"},
    {"generalization", "gener"},
    {"happiness", "happi"},
    {"hesitancy", "hesit"},
    {"hopefulness", "hope"},
    {"identification", "identif"},
    {"imagination", "imagin"},
    {"immediately", "immedi"},
    {"importance", "import"},
    {"independence", "independ"},
    {"information", "inform"},
    {"installation", "instal"},
    {"intention", "intent"},
    {"knowledge", "knowledg"},
    {"management", "manag"},
    {"measurement", "measur"},
    {"necessarily", "necessarili"},
    {"observation", "observ"},
    {"operational", "oper"},
    {"organization", "organ"},
    {"possibilities", "possibl"},
    {"probability", "probabl"},
    {"recognition", "recognit"},
    {"recommendation", "recommend"},
    {"relational", "relat"},
    {"replacement", "replac"},
    {"requirement", "requir"},
    {"sensitivity", "sensit"},
    {"successfully", "success"},
    {"triumphantly", "triumphantli"},
};

TEST(PorterReference, TableMatches) {
  for (const StemPair& p : kReference) {
    EXPECT_EQ(porter_stem(p.word), p.stem) << p.word;
  }
}

// --------------------------------------------------- tagged sentence set ----

// Expected coarse tags for hand-checked sentences (word -> tag). Only the
// listed words are asserted; closed-class scaffolding is implicit.
struct TaggedCase {
  const char* sentence;
  std::map<std::string, Pos> expected;
};

const TaggedCase kTaggedCases[] = {
    {"The support team replaced my faulty cable quickly",
     {{"replaced", Pos::kVerbPast},
      {"faulty", Pos::kAdjective},
      {"cable", Pos::kNoun},
      {"quickly", Pos::kAdverb}}},
    {"She will install the update tomorrow",
     {{"will", Pos::kModal},
      {"install", Pos::kVerbBase},
      {"tomorrow", Pos::kAdverb}}},
    {"Has anyone seen this weird behavior",
     {{"seen", Pos::kVerbPastPart}, {"weird", Pos::kAdjective}}},
    {"I am thinking about a new router",
     {{"am", Pos::kAuxBe},
      {"thinking", Pos::kVerbGerund},
      {"router", Pos::kNoun}}},
    {"The booking was cancelled by the hotel",
     {{"booking", Pos::kNoun},
      {"was", Pos::kAuxBe},
      {"cancelled", Pos::kVerbPastPart}}},
    {"We cannot reproduce the crash anymore",
     {{"cannot", Pos::kModal}, {"reproduce", Pos::kVerbBase}}},
    {"They went home and the printer froze again",
     {{"went", Pos::kVerbPast}, {"froze", Pos::kVerbPast}}},
    {"Do not touch the configuration",
     {{"not", Pos::kNegation}, {"touch", Pos::kVerbBase}}},
    {"My happiness depends on a quiet room",
     {{"happiness", Pos::kNoun},
      {"depends", Pos::kVerbPresent3},
      {"quiet", Pos::kAdjective}}},
    {"A wonderful view and a terrible breakfast",
     {{"wonderful", Pos::kAdjective}, {"terrible", Pos::kAdjective}}},
};

TEST(TaggerCorpus, HandCheckedSentences) {
  for (const TaggedCase& c : kTaggedCases) {
    auto tokens = tokenize(c.sentence);
    auto tags = tag_tokens(tokens);
    for (size_t i = 0; i < tokens.size(); ++i) {
      auto it = c.expected.find(tokens[i].lower);
      if (it == c.expected.end()) continue;
      EXPECT_EQ(tags[i], it->second)
          << "'" << tokens[i].lower << "' in: " << c.sentence << " got "
          << pos_name(tags[i]);
    }
  }
}

// --------------------------------------- index vs brute force equivalence ----

class IndexStress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexStress, ScoresMatchBruteForce) {
  Rng rng(GetParam());
  const size_t vocab_size = 30;
  const size_t units = 40;

  Vocabulary vocab;
  std::vector<TermId> terms;
  for (size_t t = 0; t < vocab_size; ++t) {
    terms.push_back(vocab.intern("t" + std::to_string(t)));
  }
  InvertedIndex index;
  std::vector<TermVector> unit_bags(units);
  for (size_t u = 0; u < units; ++u) {
    size_t num_terms = 1 + rng.next_below(8);
    for (size_t i = 0; i < num_terms; ++i) {
      unit_bags[u].add(terms[rng.next_below(vocab_size)],
                       1.0 + static_cast<double>(rng.next_below(4)));
    }
    index.add_unit(unit_bags[u]);
  }
  index.finalize();

  TermVector query;
  for (int i = 0; i < 4; ++i) {
    query.add(terms[rng.next_below(vocab_size)], 1.0);
  }

  auto hits = score_units(index, query);
  std::map<uint32_t, double> by_unit;
  for (const ScoredUnit& h : hits) by_unit[h.unit] = h.score;

  // Brute force over the same formula.
  for (uint32_t u = 0; u < units; ++u) {
    double expected = 0.0;
    for (const auto& [term, f_q] : query.entries()) {
      double tf = unit_bags[u].weight(term);
      if (tf <= 0.0) continue;
      double w = (std::log(tf) + 1.0) / index.unit_norm(u);
      expected += f_q * w * probabilistic_idf(units, index.df(term));
    }
    auto it = by_unit.find(u);
    double got = it == by_unit.end() ? 0.0 : it->second;
    EXPECT_NEAR(got, expected, 1e-9) << "unit " << u;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexStress,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace ibseg
