// Crash-injection suite (ctest label "killsafety"): a child process is
// forked, ingests posts through the WAL-backed serving layer, and is
// killed with _exit(2) mid-stream at a randomized point K. The parent
// then performs the warm restart (snapshot v2 + WAL replay) and asserts
// recovery lands on the EXACT pre-crash published state: epoch == K and
// find_related answers bit-identical to a never-crashed reference that
// restored the same snapshot and ingested the same first K posts.
//
// _exit skips every destructor and flush — the strongest process-death
// model short of SIGKILL, and deterministic. The WAL writes each frame
// with a single write(2) before publication, so a post whose add_post
// returned must survive; a post mid-append may only ever be torn at the
// tail, which replay truncates.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/serving.h"
#include "core/sharded_serving.h"
#include "datagen/post_generator.h"
#include "storage/snapshot_v2.h"

namespace ibseg {
namespace {

constexpr int kChildExitCode = 2;

std::vector<Document> seed_docs() {
  GeneratorOptions gen;
  gen.num_posts = 18;
  gen.posts_per_scenario = 3;
  gen.seed = 4242;
  return analyze_corpus(generate_corpus(gen));
}

std::vector<std::string> ingest_stream() {
  GeneratorOptions gen;
  gen.num_posts = 10;
  gen.posts_per_scenario = 2;
  gen.seed = 777;
  SyntheticCorpus corpus = generate_corpus(gen);
  std::vector<std::string> texts;
  for (const GeneratedPost& p : corpus.posts) texts.push_back(p.text);
  return texts;
}

std::string tmp_path(const std::string& name) {
  std::string path =
      ::testing::TempDir() + "/ibseg_kill_" + name + "_" +
      std::to_string(static_cast<long>(::getpid()));
  std::remove(path.c_str());
  return path;
}

/// Bit-identical comparison: both sides restored from the same snapshot
/// and ran the same ingest code path, so even the floating-point scores
/// must match exactly — any drift means recovery rebuilt different state.
void expect_identical_answers(const ServingPipeline& a,
                              const ServingPipeline& b) {
  ASSERT_EQ(a.num_docs(), b.num_docs());
  ASSERT_EQ(a.epoch(), b.epoch());
  for (const Document& d : a.quiescent().docs()) {
    auto ra = a.find_related(d.id(), 5);
    auto rb = b.find_related(d.id(), 5);
    ASSERT_EQ(ra.results.size(), rb.results.size()) << "query " << d.id();
    for (size_t i = 0; i < ra.results.size(); ++i) {
      ASSERT_EQ(ra.results[i].doc, rb.results[i].doc)
          << "query " << d.id() << " rank " << i;
      ASSERT_EQ(ra.results[i].score, rb.results[i].score)
          << "query " << d.id() << " rank " << i;
    }
  }
}

/// Writes the base snapshot every trial starts from: a serving pipeline
/// over the seed corpus, saved through the normal save() path.
void write_base_snapshot(const std::string& snap_path) {
  ServingPipeline serving(RelatedPostPipeline::build(seed_docs()));
  ASSERT_TRUE(serving.save(snap_path));
}

/// One crash trial: child restores snapshot+WAL, ingests `crash_after`
/// posts from the deterministic stream, then dies with _exit. Parent
/// recovers and compares against a never-crashed reference at the same
/// epoch. `torn_tail_bytes` is appended to the WAL between crash and
/// recovery to additionally exercise torn-tail truncation.
void run_crash_trial(size_t crash_after, const std::string& torn_tail_bytes) {
  const std::vector<std::string> stream = ingest_stream();
  ASSERT_LE(crash_after, stream.size());
  std::string snap_path = tmp_path("snap");
  std::string wal_path = tmp_path("wal");
  write_base_snapshot(snap_path);

  ServingOptions persist;
  persist.persist.wal_path = wal_path;

  pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // ---- child: ingest, then die without any cleanup. No gtest
    // assertions here — a child failure must surface as a wrong exit
    // code, never as a confusingly duplicated test result.
    auto serving = ServingPipeline::restore(snap_path, {}, persist);
    if (serving == nullptr) _exit(42);
    for (size_t i = 0; i < crash_after; ++i) {
      serving->add_post(stream[i]);
    }
    _exit(kChildExitCode);  // mid-stream: destructors and flushes skipped
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), kChildExitCode);

  if (!torn_tail_bytes.empty()) {
    std::ofstream os(wal_path, std::ios::binary | std::ios::app);
    os << torn_tail_bytes;
  }

  // ---- parent: warm restart from what the dead child left on disk.
  auto recovered = ServingPipeline::restore(snap_path, {}, persist);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->epoch(), crash_after)
      << "recovery must land on the exact pre-crash epoch";
  EXPECT_EQ(recovered->num_docs(),
            recovered->seed_docs() + recovered->epoch());

  // Never-crashed reference: same snapshot, same first K ingests, no WAL.
  auto reference = ServingPipeline::restore(snap_path);
  ASSERT_NE(reference, nullptr);
  for (size_t i = 0; i < crash_after; ++i) reference->add_post(stream[i]);
  expect_identical_answers(*recovered, *reference);

  // Recovery is stable: restoring again from the same files (the WAL now
  // holds the same K records) reproduces the same state.
  auto again = ServingPipeline::restore(snap_path, {}, persist);
  ASSERT_NE(again, nullptr);
  expect_identical_answers(*recovered, *again);

  std::remove(snap_path.c_str());
  std::remove(wal_path.c_str());
}

TEST(KillSafety, CrashAtRandomizedPoints) {
  // Randomized but reproducible crash points across the stream, always
  // including the boundaries (crash before any ingest / after all).
  std::mt19937 rng(20260805);
  std::uniform_int_distribution<size_t> point(1, ingest_stream().size() - 1);
  std::vector<size_t> crash_points = {0, ingest_stream().size()};
  for (int i = 0; i < 2; ++i) crash_points.push_back(point(rng));
  for (size_t k : crash_points) {
    SCOPED_TRACE("crash after " + std::to_string(k) + " ingests");
    run_crash_trial(k, "");
  }
}

TEST(KillSafety, TornWalTailIsTruncatedNeverReplayed) {
  // Garbage after the last complete record — as if the process died
  // mid-append. Recovery must drop the tail and still land on epoch K.
  SCOPED_TRACE("garbage tail");
  run_crash_trial(3, "torn-frame-garbage-bytes");
  // A tail that *looks* like a frame header but lies about its length.
  SCOPED_TRACE("fake header tail");
  run_crash_trial(2, std::string("\xff\x00\x00\x00\x01\x02\x03\x04", 8));
}

TEST(KillSafety, CrashBetweenSnapshotAndWalTruncation) {
  // The save()-time crash window: snapshot renamed, WAL not yet reset.
  // Replay must skip every record already baked into the snapshot.
  const std::vector<std::string> stream = ingest_stream();
  std::string snap_path = tmp_path("snap_window");
  std::string wal_path = tmp_path("wal_window");
  write_base_snapshot(snap_path);
  ServingOptions persist;
  persist.persist.wal_path = wal_path;

  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    auto serving = ServingPipeline::restore(snap_path, {}, persist);
    if (serving == nullptr) _exit(42);
    for (size_t i = 0; i < 4; ++i) serving->add_post(stream[i]);
    // Simulate the torn save: capture the WAL, save (which truncates it),
    // then put the stale WAL back — the on-disk state of a process that
    // died after the rename but before the ftruncate hit the disk.
    std::ifstream is(wal_path, std::ios::binary);
    std::string stale((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
    is.close();
    if (!serving->save(snap_path)) _exit(43);
    std::ofstream os(wal_path, std::ios::binary | std::ios::trunc);
    os << stale;
    os.flush();
    _exit(kChildExitCode);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), kChildExitCode);

  auto recovered = ServingPipeline::restore(snap_path, {}, persist);
  ASSERT_NE(recovered, nullptr);
  // The four posts are in the snapshot; the stale WAL's copies of them
  // must be skipped, not published a second time.
  EXPECT_EQ(recovered->epoch(), 4u);
  EXPECT_EQ(recovered->num_docs(),
            recovered->seed_docs() + recovered->epoch());

  auto reference = ServingPipeline::restore(snap_path);
  ASSERT_NE(reference, nullptr);
  expect_identical_answers(*recovered, *reference);
  std::remove(snap_path.c_str());
  std::remove(wal_path.c_str());
}

// ==================================================== sharded deployments ====
//
// Same crash model, four hash-partitioned shards: the child restores a
// sharded directory (per-shard snapshot-v2 + per-shard WAL + global
// publication journal + manifest), ingests mid-stream, dies with _exit.
// Recovery must land on the exact pre-crash combined epoch with answers
// bit-identical to BOTH a never-crashed 4-shard deployment and the
// unpartitioned pipeline at the same logical epoch — the sharded layer's
// durability story composes with its bit-identity story.

constexpr uint32_t kShards = 4;

std::string tmp_dir(const std::string& name) {
  return ::testing::TempDir() + "/ibseg_kill_" + name + "_" +
         std::to_string(static_cast<long>(::getpid()));
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
}

bool spew(const std::string& path, const std::string& data) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << data;
  os.flush();
  return static_cast<bool>(os);
}

/// All mutable files of a 4-shard persist directory, for capture/rollback.
std::vector<std::string> shard_dir_files(const std::string& dir) {
  std::vector<std::string> files = {dir + "/MANIFEST", dir + "/ingest.order"};
  for (uint32_t s = 0; s < kShards; ++s) {
    files.push_back(dir + "/shard-" + std::to_string(s) + "/snapshot.v2");
    files.push_back(dir + "/shard-" + std::to_string(s) + "/wal");
  }
  return files;
}

/// Sharded vs unsharded bit-identity at quiescence (both sides joined).
void expect_matches_pipeline(const ShardedServing& sharded,
                             const ServingPipeline& reference) {
  ASSERT_EQ(sharded.num_docs(), reference.num_docs());
  ASSERT_EQ(sharded.epoch(), reference.epoch());
  for (const Document& d : reference.quiescent().docs()) {
    auto got = sharded.find_related(d.id(), 5);
    auto want = reference.find_related(d.id(), 5);
    ASSERT_EQ(got.results.size(), want.results.size()) << "query " << d.id();
    for (size_t i = 0; i < want.results.size(); ++i) {
      ASSERT_EQ(got.results[i].doc, want.results[i].doc)
          << "query " << d.id() << " rank " << i;
      ASSERT_EQ(got.results[i].score, want.results[i].score)
          << "query " << d.id() << " rank " << i;
    }
  }
}

/// Parent-side setup: a persisted 4-shard deployment over the seed corpus,
/// saved (committed) to `dir`.
void write_base_shard_dir(const std::string& dir) {
  ServingOptions options;
  options.num_shards = static_cast<int>(kShards);
  options.persist.shard_dir = dir;
  auto sharded = ShardedServing::create(seed_docs(), {}, options);
  ASSERT_NE(sharded, nullptr);
  ASSERT_TRUE(sharded->save(dir));
}

/// One sharded crash trial: child restores `dir`, ingests `crash_after`
/// posts (scattered across shards by the id hash), dies with _exit.
void run_sharded_crash_trial(size_t crash_after) {
  const std::vector<std::string> stream = ingest_stream();
  ASSERT_LE(crash_after, stream.size());
  std::string dir = tmp_dir("shards");
  write_base_shard_dir(dir);

  pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    auto sharded = ShardedServing::restore(dir);
    if (sharded == nullptr) _exit(42);
    for (size_t i = 0; i < crash_after; ++i) sharded->add_post(stream[i]);
    _exit(kChildExitCode);  // journal + WAL tails unflushed by destructors
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), kChildExitCode);

  auto recovered = ShardedServing::restore(dir);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->epoch(), crash_after)
      << "recovery must land on the exact pre-crash combined epoch";

  // Never-crashed 4-shard reference over the same history.
  ServingOptions plain;
  plain.num_shards = static_cast<int>(kShards);
  auto reference = ShardedServing::create(seed_docs(), {}, plain);
  ASSERT_NE(reference, nullptr);
  for (size_t i = 0; i < crash_after; ++i) reference->add_post(stream[i]);
  ASSERT_EQ(recovered->epoch(), reference->epoch());
  ASSERT_EQ(recovered->next_id(), reference->next_id());

  // Unsharded reference at the same logical epoch — the bit-identity
  // anchor for both of them.
  ServingPipeline unsharded(RelatedPostPipeline::build(seed_docs()));
  for (size_t i = 0; i < crash_after; ++i) unsharded.add_post(stream[i]);
  expect_matches_pipeline(*recovered, unsharded);
  expect_matches_pipeline(*reference, unsharded);
}

TEST(ShardedKillSafety, FourShardCrashMidIngestRecoversBitIdentical) {
  for (size_t k : {size_t{0}, size_t{3}, ingest_stream().size()}) {
    SCOPED_TRACE("crash after " + std::to_string(k) + " ingests");
    run_sharded_crash_trial(k);
  }
}

TEST(ShardedKillSafety, FreshlyCreatedDeploymentSurvivesCrashMidIngest) {
  // Unlike the other trials, the CHILD builds the persisted deployment:
  // create() with a shard_dir opens brand-new WAL + journal files, whose
  // directory entries must be made durable at creation (the create-dirent
  // fsync path) — otherwise a crash could lose the *names* of logs whose
  // appends were faithfully synced. The child creates, commits the base
  // save, ingests mid-stream and dies with _exit; the parent restores and
  // must land on the exact pre-crash epoch.
  const std::vector<std::string> stream = ingest_stream();
  const size_t kIngests = 4;
  std::string dir = tmp_dir("fresh_create");

  pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    ServingOptions options;
    options.num_shards = static_cast<int>(kShards);
    options.persist.shard_dir = dir;
    auto sharded = ShardedServing::create(seed_docs(), {}, options);
    if (sharded == nullptr) _exit(42);
    if (!sharded->save(dir)) _exit(43);  // commit the manifest
    for (size_t i = 0; i < kIngests; ++i) sharded->add_post(stream[i]);
    _exit(kChildExitCode);  // WAL/journal tails left to recovery
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), kChildExitCode);

  auto recovered = ShardedServing::restore(dir);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->epoch(), kIngests);

  ServingPipeline unsharded(RelatedPostPipeline::build(seed_docs()));
  for (size_t i = 0; i < kIngests; ++i) unsharded.add_post(stream[i]);
  expect_matches_pipeline(*recovered, unsharded);
}

TEST(ShardedKillSafety, CrashBetweenShardSnapshotRenames) {
  // The multi-shard save() crash window: some shard snapshots already
  // renamed into place, the manifest commit (and the WAL/journal resets
  // behind it) never reached the disk. The child reproduces that exact
  // on-disk state by capturing the directory before a save, saving, then
  // rolling back the manifest, the journal, every WAL, and HALF the shard
  // snapshots — shards 2 and 3 keep their new (ahead-of-manifest) files.
  // Recovery must reach the full pre-crash history via journal + WAL
  // replay with published-set dedup, bit-identical to the unsharded
  // reference.
  const std::vector<std::string> stream = ingest_stream();
  const size_t kIngests = 6;
  std::string dir = tmp_dir("renames");
  write_base_shard_dir(dir);

  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    auto sharded = ShardedServing::restore(dir);
    if (sharded == nullptr) _exit(42);
    for (size_t i = 0; i < kIngests; ++i) sharded->add_post(stream[i]);
    std::vector<std::string> files = shard_dir_files(dir);
    std::vector<std::string> before;
    for (const std::string& f : files) before.push_back(slurp(f));
    if (!sharded->save(dir)) _exit(43);
    // Roll back everything EXCEPT shard-2/shard-3 snapshots (indices 4+2*s
    // in shard_dir_files order: 0 MANIFEST, 1 journal, then snapshot/wal
    // pairs per shard).
    for (size_t i = 0; i < files.size(); ++i) {
      bool keep_new = (i == 2 + 2 * 2) || (i == 2 + 2 * 3);
      if (!keep_new && !spew(files[i], before[i])) _exit(44);
    }
    _exit(kChildExitCode);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), kChildExitCode);

  auto recovered = ShardedServing::restore(dir);
  ASSERT_NE(recovered, nullptr)
      << "snapshot-ahead-of-manifest is the legal crash window; restore "
         "must recover, not reject";
  EXPECT_EQ(recovered->epoch(), kIngests);

  ServingPipeline unsharded(RelatedPostPipeline::build(seed_docs()));
  for (size_t i = 0; i < kIngests; ++i) unsharded.add_post(stream[i]);
  expect_matches_pipeline(*recovered, unsharded);

  // Recovery is stable under repetition.
  auto again = ShardedServing::restore(dir);
  ASSERT_NE(again, nullptr);
  expect_matches_pipeline(*again, unsharded);
}

// ==================================== re-clustering epoch crash windows ====
//
// A background recluster changes only memory; disk changes at the NEXT
// save, which writes generation-qualified shard snapshots
// (shard-<i>/snapshot.g<G>.v2) before committing the manifest. The crash
// windows around that save must resolve to exactly the old or exactly the
// new generation — never a torn mixture.

TEST(ShardedKillSafety, CrashBeforeReclusterManifestCommitLandsOnOldGeneration) {
  // The pre-commit window: every new-generation snapshot already renamed
  // into place, the manifest commit never reached the disk. The child
  // reproduces it by capturing the generation-0 files before the
  // post-recluster save, saving (which writes snapshot.g1.v2 files,
  // commits a generation-1 manifest, truncates WALs/journal and GCs the
  // old snapshots), then rolling every generation-0 file back — leaving
  // the snapshot.g1.v2 files as orphans. Restore must follow the
  // manifest: generation 0, full history via journal + WAL replay, the
  // orphans ignored.
  const std::vector<std::string> stream = ingest_stream();
  const size_t kIngests = 6;
  std::string dir = tmp_dir("swap_precommit");
  write_base_shard_dir(dir);

  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    auto sharded = ShardedServing::restore(dir);
    if (sharded == nullptr) _exit(42);
    for (size_t i = 0; i < kIngests; ++i) sharded->add_post(stream[i]);
    if (sharded->recluster() != 1) _exit(45);
    std::vector<std::string> files = shard_dir_files(dir);
    std::vector<std::string> before;
    for (const std::string& f : files) before.push_back(slurp(f));
    if (!sharded->save(dir)) _exit(43);
    for (size_t i = 0; i < files.size(); ++i) {
      if (!spew(files[i], before[i])) _exit(44);
    }
    _exit(kChildExitCode);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), kChildExitCode);

  auto recovered = ShardedServing::restore(dir);
  ASSERT_NE(recovered, nullptr)
      << "pre-commit crash must restore the old generation, not reject";
  EXPECT_EQ(recovered->offline_generation(), 0u);
  EXPECT_EQ(recovered->epoch(), kIngests);

  // Bit-identical to a never-crashed, never-reclustered deployment.
  ServingPipeline unsharded(RelatedPostPipeline::build(seed_docs()));
  for (size_t i = 0; i < kIngests; ++i) unsharded.add_post(stream[i]);
  expect_matches_pipeline(*recovered, unsharded);

  // Life goes on at generation 0: the next save GCs the orphan
  // generation-1 snapshots and the directory keeps round-tripping.
  ASSERT_TRUE(recovered->save(dir));
  auto again = ShardedServing::restore(dir);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again->offline_generation(), 0u);
  expect_matches_pipeline(*again, unsharded);
}

TEST(ShardedKillSafety, KillAfterReclusterSaveRestoresNewGeneration) {
  // The post-commit path: the manifest for generation 1 hit the disk,
  // then the process is killed mid-stream (journal/WAL tail beyond the
  // save, destructors never run). Restore must land on generation 1 with
  // the full history — offline state from the generation-1 snapshots,
  // the post-save tail via replay.
  const std::vector<std::string> stream = ingest_stream();
  const size_t kBefore = 6;
  const size_t kAfter = 3;
  std::string dir = tmp_dir("swap_committed");
  write_base_shard_dir(dir);

  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    auto sharded = ShardedServing::restore(dir);
    if (sharded == nullptr) _exit(42);
    for (size_t i = 0; i < kBefore; ++i) sharded->add_post(stream[i]);
    if (sharded->recluster() != 1) _exit(45);
    if (!sharded->save(dir)) _exit(43);
    for (size_t i = 0; i < kAfter; ++i) {
      sharded->add_post(stream[kBefore + i]);
    }
    _exit(kChildExitCode);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), kChildExitCode);

  auto recovered = ShardedServing::restore(dir);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->offline_generation(), 1u);
  EXPECT_EQ(recovered->offline_publications(), kBefore);
  EXPECT_EQ(recovered->epoch(), kBefore + kAfter);

  // Never-crashed reference running the identical history.
  ServingPipeline unsharded(RelatedPostPipeline::build(seed_docs()));
  for (size_t i = 0; i < kBefore; ++i) unsharded.add_post(stream[i]);
  ASSERT_EQ(unsharded.recluster(), 1u);
  for (size_t i = 0; i < kAfter; ++i) {
    unsharded.add_post(stream[kBefore + i]);
  }
  expect_matches_pipeline(*recovered, unsharded);

  // Recovery is stable under repetition.
  auto again = ShardedServing::restore(dir);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again->offline_generation(), 1u);
  expect_matches_pipeline(*again, unsharded);
}

TEST(ShardedKillSafety, StaleShardSnapshotIsRejectedNotResurrected) {
  // The torn-restore bug this PR fixes: a shard snapshot HOLDING FEWER
  // documents than its manifest entry committed cannot be the file that
  // manifest described (snapshots rename before the commit) — someone
  // swapped in an old file. Resurrecting it would silently fork history;
  // restore must reject the directory instead.
  const std::vector<std::string> stream = ingest_stream();
  std::string dir = tmp_dir("stale");
  write_base_shard_dir(dir);
  {
    auto sharded = ShardedServing::restore(dir);
    ASSERT_NE(sharded, nullptr);
    // Find a shard that gains a document, keep its pre-ingest snapshot.
    for (size_t i = 0; i < 6; ++i) sharded->add_post(stream[i]);
    uint32_t victim = kShards;
    for (uint32_t s = 0; s < kShards; ++s) {
      if (sharded->shard(s).epoch() > 0) victim = s;
    }
    ASSERT_LT(victim, kShards);
    std::string snap =
        dir + "/shard-" + std::to_string(victim) + "/snapshot.v2";
    std::string stale = slurp(snap);
    ASSERT_TRUE(sharded->save(dir));  // commits the larger shard counts
    ASSERT_TRUE(spew(snap, stale));   // swap the old snapshot back in
  }
  EXPECT_EQ(ShardedServing::restore(dir), nullptr);
}

}  // namespace
}  // namespace ibseg
