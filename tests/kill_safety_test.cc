// Crash-injection suite (ctest label "killsafety"): a child process is
// forked, ingests posts through the WAL-backed serving layer, and is
// killed with _exit(2) mid-stream at a randomized point K. The parent
// then performs the warm restart (snapshot v2 + WAL replay) and asserts
// recovery lands on the EXACT pre-crash published state: epoch == K and
// find_related answers bit-identical to a never-crashed reference that
// restored the same snapshot and ingested the same first K posts.
//
// _exit skips every destructor and flush — the strongest process-death
// model short of SIGKILL, and deterministic. The WAL writes each frame
// with a single write(2) before publication, so a post whose add_post
// returned must survive; a post mid-append may only ever be torn at the
// tail, which replay truncates.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/serving.h"
#include "datagen/post_generator.h"
#include "storage/snapshot_v2.h"

namespace ibseg {
namespace {

constexpr int kChildExitCode = 2;

std::vector<Document> seed_docs() {
  GeneratorOptions gen;
  gen.num_posts = 18;
  gen.posts_per_scenario = 3;
  gen.seed = 4242;
  return analyze_corpus(generate_corpus(gen));
}

std::vector<std::string> ingest_stream() {
  GeneratorOptions gen;
  gen.num_posts = 10;
  gen.posts_per_scenario = 2;
  gen.seed = 777;
  SyntheticCorpus corpus = generate_corpus(gen);
  std::vector<std::string> texts;
  for (const GeneratedPost& p : corpus.posts) texts.push_back(p.text);
  return texts;
}

std::string tmp_path(const std::string& name) {
  std::string path =
      ::testing::TempDir() + "/ibseg_kill_" + name + "_" +
      std::to_string(static_cast<long>(::getpid()));
  std::remove(path.c_str());
  return path;
}

/// Bit-identical comparison: both sides restored from the same snapshot
/// and ran the same ingest code path, so even the floating-point scores
/// must match exactly — any drift means recovery rebuilt different state.
void expect_identical_answers(const ServingPipeline& a,
                              const ServingPipeline& b) {
  ASSERT_EQ(a.num_docs(), b.num_docs());
  ASSERT_EQ(a.epoch(), b.epoch());
  for (const Document& d : a.quiescent().docs()) {
    auto ra = a.find_related(d.id(), 5);
    auto rb = b.find_related(d.id(), 5);
    ASSERT_EQ(ra.results.size(), rb.results.size()) << "query " << d.id();
    for (size_t i = 0; i < ra.results.size(); ++i) {
      ASSERT_EQ(ra.results[i].doc, rb.results[i].doc)
          << "query " << d.id() << " rank " << i;
      ASSERT_EQ(ra.results[i].score, rb.results[i].score)
          << "query " << d.id() << " rank " << i;
    }
  }
}

/// Writes the base snapshot every trial starts from: a serving pipeline
/// over the seed corpus, saved through the normal save() path.
void write_base_snapshot(const std::string& snap_path) {
  ServingPipeline serving(RelatedPostPipeline::build(seed_docs()));
  ASSERT_TRUE(serving.save(snap_path));
}

/// One crash trial: child restores snapshot+WAL, ingests `crash_after`
/// posts from the deterministic stream, then dies with _exit. Parent
/// recovers and compares against a never-crashed reference at the same
/// epoch. `torn_tail_bytes` is appended to the WAL between crash and
/// recovery to additionally exercise torn-tail truncation.
void run_crash_trial(size_t crash_after, const std::string& torn_tail_bytes) {
  const std::vector<std::string> stream = ingest_stream();
  ASSERT_LE(crash_after, stream.size());
  std::string snap_path = tmp_path("snap");
  std::string wal_path = tmp_path("wal");
  write_base_snapshot(snap_path);

  ServingOptions persist;
  persist.persist.wal_path = wal_path;

  pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // ---- child: ingest, then die without any cleanup. No gtest
    // assertions here — a child failure must surface as a wrong exit
    // code, never as a confusingly duplicated test result.
    auto serving = ServingPipeline::restore(snap_path, {}, persist);
    if (serving == nullptr) _exit(42);
    for (size_t i = 0; i < crash_after; ++i) {
      serving->add_post(stream[i]);
    }
    _exit(kChildExitCode);  // mid-stream: destructors and flushes skipped
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), kChildExitCode);

  if (!torn_tail_bytes.empty()) {
    std::ofstream os(wal_path, std::ios::binary | std::ios::app);
    os << torn_tail_bytes;
  }

  // ---- parent: warm restart from what the dead child left on disk.
  auto recovered = ServingPipeline::restore(snap_path, {}, persist);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->epoch(), crash_after)
      << "recovery must land on the exact pre-crash epoch";
  EXPECT_EQ(recovered->num_docs(),
            recovered->seed_docs() + recovered->epoch());

  // Never-crashed reference: same snapshot, same first K ingests, no WAL.
  auto reference = ServingPipeline::restore(snap_path);
  ASSERT_NE(reference, nullptr);
  for (size_t i = 0; i < crash_after; ++i) reference->add_post(stream[i]);
  expect_identical_answers(*recovered, *reference);

  // Recovery is stable: restoring again from the same files (the WAL now
  // holds the same K records) reproduces the same state.
  auto again = ServingPipeline::restore(snap_path, {}, persist);
  ASSERT_NE(again, nullptr);
  expect_identical_answers(*recovered, *again);

  std::remove(snap_path.c_str());
  std::remove(wal_path.c_str());
}

TEST(KillSafety, CrashAtRandomizedPoints) {
  // Randomized but reproducible crash points across the stream, always
  // including the boundaries (crash before any ingest / after all).
  std::mt19937 rng(20260805);
  std::uniform_int_distribution<size_t> point(1, ingest_stream().size() - 1);
  std::vector<size_t> crash_points = {0, ingest_stream().size()};
  for (int i = 0; i < 2; ++i) crash_points.push_back(point(rng));
  for (size_t k : crash_points) {
    SCOPED_TRACE("crash after " + std::to_string(k) + " ingests");
    run_crash_trial(k, "");
  }
}

TEST(KillSafety, TornWalTailIsTruncatedNeverReplayed) {
  // Garbage after the last complete record — as if the process died
  // mid-append. Recovery must drop the tail and still land on epoch K.
  SCOPED_TRACE("garbage tail");
  run_crash_trial(3, "torn-frame-garbage-bytes");
  // A tail that *looks* like a frame header but lies about its length.
  SCOPED_TRACE("fake header tail");
  run_crash_trial(2, std::string("\xff\x00\x00\x00\x01\x02\x03\x04", 8));
}

TEST(KillSafety, CrashBetweenSnapshotAndWalTruncation) {
  // The save()-time crash window: snapshot renamed, WAL not yet reset.
  // Replay must skip every record already baked into the snapshot.
  const std::vector<std::string> stream = ingest_stream();
  std::string snap_path = tmp_path("snap_window");
  std::string wal_path = tmp_path("wal_window");
  write_base_snapshot(snap_path);
  ServingOptions persist;
  persist.persist.wal_path = wal_path;

  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    auto serving = ServingPipeline::restore(snap_path, {}, persist);
    if (serving == nullptr) _exit(42);
    for (size_t i = 0; i < 4; ++i) serving->add_post(stream[i]);
    // Simulate the torn save: capture the WAL, save (which truncates it),
    // then put the stale WAL back — the on-disk state of a process that
    // died after the rename but before the ftruncate hit the disk.
    std::ifstream is(wal_path, std::ios::binary);
    std::string stale((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
    is.close();
    if (!serving->save(snap_path)) _exit(43);
    std::ofstream os(wal_path, std::ios::binary | std::ios::trunc);
    os << stale;
    os.flush();
    _exit(kChildExitCode);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), kChildExitCode);

  auto recovered = ServingPipeline::restore(snap_path, {}, persist);
  ASSERT_NE(recovered, nullptr);
  // The four posts are in the snapshot; the stale WAL's copies of them
  // must be skipped, not published a second time.
  EXPECT_EQ(recovered->epoch(), 4u);
  EXPECT_EQ(recovered->num_docs(),
            recovered->seed_docs() + recovered->epoch());

  auto reference = ServingPipeline::restore(snap_path);
  ASSERT_NE(reference, nullptr);
  expect_identical_answers(*recovered, *reference);
  std::remove(snap_path.c_str());
  std::remove(wal_path.c_str());
}

}  // namespace
}  // namespace ibseg
