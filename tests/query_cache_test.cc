// Unit goldens for the serving-layer result cache (core/query_cache.h):
// LRU eviction order, epoch invalidation, TTL expiry against an injected
// fake clock, and the MatcherOptions fingerprint — including the
// static-coverage watchdog that fails when a field is added to
// MatcherOptions/ScoringOptions without extending the fingerprint.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/query_cache.h"

namespace ibseg {
namespace {

QueryCache::Key key_for(DocId query, int k = 5, uint64_t fp = 42,
                        uint64_t generation = 0) {
  return QueryCache::Key{query, k, fp, generation};
}

QueryCache::Value value_for(DocId doc, uint64_t epoch = 0,
                            size_t num_docs = 10) {
  QueryCache::Value v;
  v.results = {ScoredDoc{doc, 1.0}};
  v.epoch = epoch;
  v.num_docs = num_docs;
  return v;
}

TEST(QueryCache, CapacityZeroDisablesEverything) {
  QueryCacheOptions options;  // capacity 0
  QueryCache cache(options);
  cache.insert(key_for(1), value_for(1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(key_for(1), 0).has_value());
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 1u);  // the insert was dropped, the lookup missed
}

TEST(QueryCache, LruEvictionOrderGolden) {
  QueryCacheOptions options;
  options.capacity = 3;
  options.shards = 1;  // single shard: the LRU order is globally observable
  QueryCache cache(options);
  cache.insert(key_for(1), value_for(1));
  cache.insert(key_for(2), value_for(2));
  cache.insert(key_for(3), value_for(3));
  EXPECT_EQ(cache.size(), 3u);
  // Touch key 1: it becomes most-recently-used, key 2 is now the LRU.
  EXPECT_TRUE(cache.lookup(key_for(1), 0).has_value());
  cache.insert(key_for(4), value_for(4));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.lookup(key_for(2), 0).has_value()) << "LRU not evicted";
  EXPECT_TRUE(cache.lookup(key_for(1), 0).has_value());
  EXPECT_TRUE(cache.lookup(key_for(3), 0).has_value());
  EXPECT_TRUE(cache.lookup(key_for(4), 0).has_value());
  // Next eviction order: 3 is now LRU (1 and 4 were touched after it...
  // but so was 3 — the lookups above refreshed in order 1, 3, 4).
  cache.insert(key_for(5), value_for(5));
  EXPECT_FALSE(cache.lookup(key_for(1), 0).has_value());
  EXPECT_EQ(cache.evictions(), 2u);
}

TEST(QueryCache, HitReturnsStoredValueAndOverwriteUpdatesIt) {
  QueryCacheOptions options;
  options.capacity = 8;
  QueryCache cache(options);
  cache.insert(key_for(7), value_for(100, /*epoch=*/2, /*num_docs=*/12));
  auto got = cache.lookup(key_for(7), 2);
  ASSERT_TRUE(got.has_value());
  ASSERT_EQ(got->results.size(), 1u);
  EXPECT_EQ(got->results[0].doc, 100u);
  EXPECT_EQ(got->epoch, 2u);
  EXPECT_EQ(got->num_docs, 12u);
  // Same key, newer answer: overwrite in place, size unchanged.
  cache.insert(key_for(7), value_for(200, /*epoch=*/3, /*num_docs=*/13));
  EXPECT_EQ(cache.size(), 1u);
  auto updated = cache.lookup(key_for(7), 3);
  ASSERT_TRUE(updated.has_value());
  EXPECT_EQ(updated->results[0].doc, 200u);
}

TEST(QueryCache, DistinctKeyComponentsAreDistinctEntries) {
  QueryCacheOptions options;
  options.capacity = 16;
  QueryCache cache(options);
  cache.insert(key_for(1, 5, 42), value_for(10));
  EXPECT_FALSE(cache.lookup(key_for(1, 6, 42), 0).has_value()) << "k ignored";
  EXPECT_FALSE(cache.lookup(key_for(2, 5, 42), 0).has_value())
      << "query ignored";
  EXPECT_FALSE(cache.lookup(key_for(1, 5, 43), 0).has_value())
      << "fingerprint ignored";
  EXPECT_TRUE(cache.lookup(key_for(1, 5, 42), 0).has_value());
}

TEST(QueryCache, GenerationIsAKeyComponent) {
  // A background recluster swaps the index WITHOUT bumping the epoch (no
  // document was published), so epoch validation alone would serve
  // pre-swap answers forever. The offline generation is part of the key:
  // entries filled under the old generation become unreachable the
  // moment the serving layer starts looking up with the new one, and age
  // out via LRU.
  QueryCacheOptions options;
  options.capacity = 16;
  QueryCache cache(options);
  cache.insert(key_for(1, 5, 42, /*generation=*/0), value_for(10));
  EXPECT_FALSE(cache.lookup(key_for(1, 5, 42, /*generation=*/1), 0).has_value())
      << "generation ignored: a post-swap lookup reached a pre-swap entry";
  EXPECT_TRUE(cache.lookup(key_for(1, 5, 42, /*generation=*/0), 0).has_value());
  // The generations are independent entries, not overwrites.
  cache.insert(key_for(1, 5, 42, /*generation=*/1), value_for(20));
  EXPECT_EQ(cache.size(), 2u);
  auto old_gen = cache.lookup(key_for(1, 5, 42, 0), 0);
  auto new_gen = cache.lookup(key_for(1, 5, 42, 1), 0);
  ASSERT_TRUE(old_gen.has_value());
  ASSERT_TRUE(new_gen.has_value());
  EXPECT_EQ(old_gen->results[0].doc, 10u);
  EXPECT_EQ(new_gen->results[0].doc, 20u);
}

TEST(QueryCache, EpochMismatchInvalidatesAndErases) {
  QueryCacheOptions options;
  options.capacity = 8;
  QueryCache cache(options);
  cache.insert(key_for(3), value_for(30, /*epoch=*/5));
  EXPECT_TRUE(cache.lookup(key_for(3), 5).has_value());
  // One publish later the entry is stale — and physically gone.
  EXPECT_FALSE(cache.lookup(key_for(3), 6).has_value());
  EXPECT_EQ(cache.size(), 0u);
  // Refill at the new epoch serves again.
  cache.insert(key_for(3), value_for(30, /*epoch=*/6));
  EXPECT_TRUE(cache.lookup(key_for(3), 6).has_value());
}

TEST(QueryCache, TtlExpiryWithInjectedFakeTime) {
  double now = 0.0;
  QueryCacheOptions options;
  options.capacity = 8;
  options.ttl_seconds = 10.0;
  options.time_source = [&now] { return now; };
  QueryCache cache(options);
  cache.insert(key_for(1), value_for(1));
  now = 9.9;
  EXPECT_TRUE(cache.lookup(key_for(1), 0).has_value());
  now = 10.1;  // a hit does NOT refresh fill time; the entry is now dead
  EXPECT_FALSE(cache.lookup(key_for(1), 0).has_value());
  EXPECT_EQ(cache.size(), 0u);
  // Re-inserting restarts the clock.
  now = 20.0;
  cache.insert(key_for(1), value_for(1));
  now = 29.0;
  EXPECT_TRUE(cache.lookup(key_for(1), 0).has_value());
  now = 31.0;
  EXPECT_FALSE(cache.lookup(key_for(1), 0).has_value());
}

TEST(QueryCache, ShardedKeysAllServeAndCountInSize) {
  QueryCacheOptions options;
  options.capacity = 64;
  options.shards = 8;
  QueryCache cache(options);
  for (DocId q = 0; q < 40; ++q) cache.insert(key_for(q), value_for(q));
  EXPECT_EQ(cache.size(), 40u);
  for (DocId q = 0; q < 40; ++q) {
    auto got = cache.lookup(key_for(q), 0);
    ASSERT_TRUE(got.has_value()) << "q " << q;
    EXPECT_EQ(got->results[0].doc, q);
  }
  EXPECT_EQ(cache.hits(), 40u);
}

// ------------------------------------------------ options fingerprint ----

TEST(QueryCacheFingerprint, SensitiveToEveryMatcherOptionsField) {
  MatcherOptions base;
  const uint64_t fp = matcher_options_fingerprint(base);

  MatcherOptions o = base;
  o.top_n_factor = 3;
  EXPECT_NE(matcher_options_fingerprint(o), fp) << "top_n_factor";

  o = base;
  o.cluster_weights = {1.0, 2.0};
  EXPECT_NE(matcher_options_fingerprint(o), fp) << "cluster_weights";

  o = base;
  o.cluster_weights = {1.0};
  MatcherOptions o2 = base;
  o2.cluster_weights = {2.0};
  EXPECT_NE(matcher_options_fingerprint(o), matcher_options_fingerprint(o2))
      << "cluster_weights values";

  o = base;
  o.score_threshold = 0.5;
  EXPECT_NE(matcher_options_fingerprint(o), fp) << "score_threshold";

  o = base;
  o.min_norm_fraction = 0.5;
  EXPECT_NE(matcher_options_fingerprint(o), fp) << "min_norm_fraction";

  o = base;
  o.scoring.function = ScoringFunction::kBm25;
  EXPECT_NE(matcher_options_fingerprint(o), fp) << "scoring.function";

  o = base;
  o.scoring.bm25_k1 = 2.0;
  EXPECT_NE(matcher_options_fingerprint(o), fp) << "scoring.bm25_k1";

  o = base;
  o.scoring.bm25_b = 0.5;
  EXPECT_NE(matcher_options_fingerprint(o), fp) << "scoring.bm25_b";

  o = base;
  o.scoring.lm_lambda = 0.3;
  EXPECT_NE(matcher_options_fingerprint(o), fp) << "scoring.lm_lambda";

  o = base;
  o.query_threads = 4;
  EXPECT_NE(matcher_options_fingerprint(o), fp) << "query_threads";

  // exhaustive_fallback lives in what used to be tail padding (sizeof is
  // unchanged), so the layout watchdog below cannot see it — this
  // mutation case is its only guard.
  o = base;
  o.exhaustive_fallback = true;
  EXPECT_NE(matcher_options_fingerprint(o), fp) << "exhaustive_fallback";
}

TEST(QueryCacheFingerprint, IsStableForEqualOptions) {
  MatcherOptions a;
  a.cluster_weights = {1.0, 0.5};
  a.scoring.function = ScoringFunction::kBm25;
  MatcherOptions b = a;
  EXPECT_EQ(matcher_options_fingerprint(a), matcher_options_fingerprint(b));
}

// Static-coverage watchdog: adding a field to MatcherOptions (or its
// nested ScoringOptions) changes the struct size, which fails here until
// matcher_options_fingerprint() and the sensitivity test above are
// extended to cover the new field. If you hit this assertion: fold the
// new field into matcher_options_fingerprint() (core/query_cache.cc),
// add a mutation case to SensitiveToEveryMatcherOptionsField, and only
// then update the expected sizes. (A same-size field smuggled into
// padding would evade this check — the sensitivity test is the
// belt-and-braces companion.)
TEST(QueryCacheFingerprint, StaticCoverageOfMatcherOptionsLayout) {
  EXPECT_EQ(sizeof(MatcherOptions), 88u)
      << "MatcherOptions changed: extend matcher_options_fingerprint() and "
         "the fingerprint sensitivity test before updating this size";
  EXPECT_EQ(sizeof(ScoringOptions), 32u)
      << "ScoringOptions changed: extend matcher_options_fingerprint() and "
         "the fingerprint sensitivity test before updating this size";
}

}  // namespace
}  // namespace ibseg
