// Loopback proof of the network front-end: a Server on an ephemeral
// 127.0.0.1 port over a real ShardedServing, exercised through net::Client
// (and, for the framing-violation cases, a hand-rolled raw socket). The
// load-bearing assertions:
//
//   * QUERY and ASK over the socket are **bit-identical** to calling the
//     same backend in-process — ranked ids AND operator== on the double
//     scores. The wire moves raw IEEE-754 bits, so nothing may drift.
//   * A drain loses no acknowledged ADD_POST: every ingest the server
//     acked before DRAIN is present after ShardedServing::restore of the
//     drained state, answering bit-identically to a reference deployment
//     that ingested the same texts in-process.
//   * Admission control and deadlines reject with the documented error
//     codes (OVERLOADED, TIMEOUT, DRAINING) instead of silently dropping.
//   * Malformed payloads get ERROR/BAD_REQUEST and the connection stays
//     usable; a malformed *frame* closes the connection (framing is lost).
//
// Registered under the `net` ctest label; scripts/reproduce.sh
// IBSEG_NET_CHECK=1 runs the label normally and under ASan.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded_serving.h"
#include "datagen/post_generator.h"
#include "net/client.h"
#include "net/server.h"
#include "seg/document.h"

namespace ibseg {
namespace net {
namespace {

constexpr size_t kPosts = 24;

/// Matches the server's convention for labeling transient ASK documents
/// (PROTOCOL.md §4.3): the id is far above any real corpus id and is never
/// ingested. The reference side of the ASK differential must use the same
/// id so the analyzed Document is identical.
constexpr DocId kExternalQueryId = 1u << 30;

GeneratorOptions corpus_options(size_t posts, uint64_t seed) {
  GeneratorOptions gen;
  gen.num_posts = posts;
  gen.posts_per_scenario = 4;
  gen.seed = seed;
  return gen;
}

std::vector<Document> corpus_docs(size_t posts, uint64_t seed) {
  return analyze_corpus(generate_corpus(corpus_options(posts, seed)));
}

std::vector<std::string> ingest_texts(size_t count, uint64_t seed) {
  SyntheticCorpus extra = generate_corpus(corpus_options(count, seed));
  std::vector<std::string> texts;
  texts.reserve(extra.posts.size());
  for (const GeneratedPost& p : extra.posts) texts.push_back(p.text);
  return texts;
}

std::string tmp_dir(const std::string& name) {
  return ::testing::TempDir() + "/ibseg_net_" + name;
}

void expect_identical(const std::vector<ScoredDoc>& got,
                      const std::vector<ScoredDoc>& want,
                      const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].doc, want[i].doc) << what << " rank " << i;
    // operator== on the doubles: the wire carries raw IEEE-754 bits.
    EXPECT_EQ(got[i].score, want[i].score) << what << " rank " << i;
  }
}

/// A backend + server + connected client on an ephemeral loopback port.
struct Loopback {
  std::unique_ptr<ShardedServing> backend;
  std::unique_ptr<Server> server;
  std::unique_ptr<Client> client;
};

Loopback start_loopback(ServerOptions options, int shards = 2,
                        uint64_t seed = 11) {
  Loopback lb;
  ServingOptions serving;
  serving.num_shards = shards;
  lb.backend = ShardedServing::create(corpus_docs(kPosts, seed), {}, serving);
  EXPECT_NE(lb.backend, nullptr);
  options.port = 0;  // ephemeral; read back via port()
  lb.server = std::make_unique<Server>(lb.backend.get(), options);
  EXPECT_TRUE(lb.server->start());
  lb.client = Client::connect("127.0.0.1", lb.server->port());
  EXPECT_NE(lb.client, nullptr);
  return lb;
}

/// Raw loopback socket for tests that must violate the protocol in ways
/// net::Client refuses to (bad magic, wrong version). Sends exactly the
/// bytes given; reports whether the server closed the stream.
struct RawSocket {
  int fd = -1;

  explicit RawSocket(uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      fd = -1;
    }
  }

  ~RawSocket() {
    if (fd >= 0) ::close(fd);
  }

  bool send_bytes(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, 0);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Blocks until the peer closes (recv returns 0) or data arrives.
  /// Returns true iff the connection was closed with no further data.
  bool closed_by_peer() {
    char buf[256];
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    return n == 0;
  }
};

// ---------------------------------------------------------- liveness ----

TEST(NetServer, PingReportsServingCoordinates) {
  Loopback lb = start_loopback({});
  PongResponse pong;
  ASSERT_TRUE(lb.client->ping(&pong).ok());
  EXPECT_EQ(pong.epoch, lb.backend->epoch());
  EXPECT_EQ(pong.num_docs, lb.backend->num_docs());
}

// ----------------------------------------------- query bit-identity ----

TEST(NetServer, QueryOverSocketBitIdenticalToInProcess) {
  Loopback lb = start_loopback({});
  const DocId num_docs = static_cast<DocId>(lb.backend->num_docs());
  for (DocId doc = 0; doc < num_docs; ++doc) {
    for (uint32_t k : {1u, 3u, 10u}) {
      ShardedServing::QueryResult want =
          lb.backend->find_related(doc, static_cast<int>(k));
      RelatedResponse got;
      ASSERT_TRUE(lb.client->query(doc, k, &got).ok())
          << "doc " << doc << " k " << k;
      EXPECT_EQ(got.epoch, want.epoch);
      EXPECT_EQ(got.num_docs, want.num_docs);
      expect_identical(got.results, want.results,
                       "doc " + std::to_string(doc) + " k " +
                           std::to_string(k));
    }
  }
}

TEST(NetServer, AskBitIdenticalToFindRelatedExternal) {
  Loopback lb = start_loopback({});
  for (const std::string& text : ingest_texts(4, 77)) {
    Document doc = Document::analyze(kExternalQueryId, text);
    ShardedServing::QueryResult want =
        lb.backend->find_related_external(doc, 5);
    RelatedResponse got;
    ASSERT_TRUE(lb.client->ask(text, 5, &got).ok());
    EXPECT_EQ(got.epoch, want.epoch);
    EXPECT_EQ(got.num_docs, want.num_docs);
    expect_identical(got.results, want.results, "ask");
  }
}

TEST(NetServer, QueryUnknownDocAnswersUnknownDocError) {
  Loopback lb = start_loopback({});
  RelatedResponse got;
  CallResult result =
      lb.client->query(lb.backend->next_id() + 100, 3, &got);
  ASSERT_TRUE(result.transport_ok);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error.code, ErrCode::kUnknownDoc);
}

// ------------------------------------------------------------ ingest ----

TEST(NetServer, AddPostAcksNextIdAndPublishes) {
  Loopback lb = start_loopback({});
  const DocId expect_id = lb.backend->next_id();
  const uint64_t epoch_before = lb.backend->epoch();
  const std::string text = ingest_texts(1, 33).front();

  DocId id = 0;
  ASSERT_TRUE(lb.client->add_post(text, &id).ok());
  EXPECT_EQ(id, expect_id);
  EXPECT_EQ(lb.backend->epoch(), epoch_before + 1);
  EXPECT_EQ(lb.backend->num_docs(), kPosts + 1);

  // The acked post is immediately queryable over the same socket.
  RelatedResponse related;
  ASSERT_TRUE(lb.client->query(id, 3, &related).ok());
  ShardedServing::QueryResult want = lb.backend->find_related(id, 3);
  expect_identical(related.results, want.results, "post-ingest query");
}

TEST(NetServer, AddPostsAcksAllIdsInOrder) {
  Loopback lb = start_loopback({});
  const DocId first = lb.backend->next_id();
  std::vector<std::string> texts = ingest_texts(3, 44);

  std::vector<DocId> ids;
  ASSERT_TRUE(lb.client->add_posts(texts, &ids).ok());
  ASSERT_EQ(ids.size(), texts.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], first + static_cast<DocId>(i));
  }
  EXPECT_EQ(lb.backend->num_docs(), kPosts + texts.size());
}

TEST(NetServer, EmptyAddPostIsBadRequest) {
  Loopback lb = start_loopback({});
  DocId id = 0;
  CallResult result = lb.client->add_post("", &id);
  ASSERT_TRUE(result.transport_ok);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error.code, ErrCode::kBadRequest);
  // The rejection consumed no id and published nothing.
  EXPECT_EQ(lb.backend->num_docs(), kPosts);
}

// ------------------------------------------------ background recluster ----

TEST(NetServer, ReclusterOverSocketSwapsGenerationBitIdentical) {
  Loopback lb = start_loopback({});
  std::vector<std::string> texts = ingest_texts(5, 55);
  std::vector<DocId> ids;
  ASSERT_TRUE(lb.client->add_posts(texts, &ids).ok());
  ASSERT_EQ(lb.backend->offline_generation(), 0u);

  ReclusteredResponse resp;
  ASSERT_TRUE(lb.client->recluster(&resp).ok());
  EXPECT_EQ(resp.generation, 1u);
  EXPECT_GT(resp.num_clusters, 0u);
  EXPECT_EQ(lb.backend->offline_generation(), 1u);

  // Post-swap wire answers are bit-identical to a cold deployment built
  // over the full corpus (the recluster identity, observed end to end
  // through the socket).
  std::vector<Document> docs = corpus_docs(kPosts, 11);
  for (size_t i = 0; i < texts.size(); ++i) {
    docs.push_back(Document::analyze(ids[i], texts[i]));
  }
  ServingOptions serving;
  serving.num_shards = 2;
  auto cold = ShardedServing::create(std::move(docs), {}, serving);
  ASSERT_NE(cold, nullptr);
  for (DocId doc = 0; doc < static_cast<DocId>(cold->num_docs()); ++doc) {
    RelatedResponse got;
    ASSERT_TRUE(lb.client->query(doc, 5, &got).ok()) << "doc " << doc;
    expect_identical(got.results, cold->find_related(doc, 5).results,
                     "post-recluster doc " + std::to_string(doc));
  }

  // A second epoch over the same corpus keeps counting.
  ASSERT_TRUE(lb.client->recluster(&resp).ok());
  EXPECT_EQ(resp.generation, 2u);
}

TEST(NetServer, ReclusterWithPayloadIsBadRequest) {
  Loopback lb = start_loopback({});
  MsgType type = MsgType::kError;
  std::string payload;
  CallResult result =
      lb.client->call(MsgType::kRecluster, "x", &type, &payload);
  ASSERT_TRUE(result.transport_ok);
  EXPECT_EQ(type, MsgType::kError);
  EXPECT_EQ(result.error.code, ErrCode::kBadRequest);
  EXPECT_EQ(lb.backend->offline_generation(), 0u);
}

TEST(NetServer, ReclusterWorkerFiresAndDrainStopsIt) {
  // The server-owned trigger loop: --recluster-max-docs=3 wiring. Five
  // ingests trip the threshold; the worker must fire in the background,
  // and the drain must stop/join it before the process would exit.
  ServerOptions options;
  options.recluster.max_docs_since = 3;
  options.recluster.poll_interval_ms = 2;
  Loopback lb = start_loopback(options);
  std::vector<DocId> ids;
  ASSERT_TRUE(lb.client->add_posts(ingest_texts(5, 66), &ids).ok());
  for (int i = 0; i < 2000 && lb.backend->offline_generation() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(lb.backend->offline_generation(), 1u);
  // Queries keep answering across/after the background swap.
  RelatedResponse got;
  ASSERT_TRUE(lb.client->query(ids[0], 3, &got).ok());
  ASSERT_TRUE(lb.client->drain().ok());
  lb.server->wait_drained();  // hangs here if the worker were not joined
}

// ------------------------------------------------- protocol policing ----

TEST(NetServer, MalformedPayloadGetsErrorAndConnectionSurvives) {
  Loopback lb = start_loopback({});
  // Well-framed QUERY whose payload is one byte short: payload error →
  // ERROR/BAD_REQUEST, stream stays usable (PROTOCOL.md §6).
  MsgType type = MsgType::kError;
  std::string payload;
  CallResult result =
      lb.client->call(MsgType::kQuery, std::string(7, '\0'), &type, &payload);
  ASSERT_TRUE(result.transport_ok);
  EXPECT_EQ(type, MsgType::kError);
  EXPECT_EQ(result.error.code, ErrCode::kBadRequest);

  PongResponse pong;
  EXPECT_TRUE(lb.client->ping(&pong).ok()) << "connection should survive";
}

TEST(NetServer, UnknownMessageTypeGetsErrorAndConnectionSurvives) {
  Loopback lb = start_loopback({});
  // 0x42 is well-framed but not a defined request type.
  MsgType type = MsgType::kError;
  std::string payload;
  CallResult result =
      lb.client->call(static_cast<MsgType>(0x42), "xyzzy", &type, &payload);
  ASSERT_TRUE(result.transport_ok);
  EXPECT_EQ(type, MsgType::kError);
  EXPECT_EQ(result.error.code, ErrCode::kBadRequest);

  PongResponse pong;
  EXPECT_TRUE(lb.client->ping(&pong).ok());
}

TEST(NetServer, MalformedFrameClosesConnection) {
  Loopback lb = start_loopback({});
  RawSocket raw(lb.server->port());
  ASSERT_GE(raw.fd, 0);
  // Twelve bytes that are not a frame: framing is unrecoverable, so the
  // server must close (PROTOCOL.md §6) — no error frame, just EOF.
  ASSERT_TRUE(raw.send_bytes("this is not an IBSN frame"));
  EXPECT_TRUE(raw.closed_by_peer());

  // The listener is unaffected: a well-behaved client still works.
  PongResponse pong;
  EXPECT_TRUE(lb.client->ping(&pong).ok());
}

TEST(NetServer, WrongProtocolVersionClosesConnection) {
  Loopback lb = start_loopback({});
  RawSocket raw(lb.server->port());
  ASSERT_GE(raw.fd, 0);
  std::string frame;
  encode_frame(MsgType::kPing, {}, &frame);
  frame[4] = 9;  // future version — must be refused, not guessed at
  ASSERT_TRUE(raw.send_bytes(frame));
  EXPECT_TRUE(raw.closed_by_peer());
}

// --------------------------------------------------- admission control ----

TEST(NetServer, OverloadAnswersOverloadedError) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_in_flight = 1;
  options.debug_handler_delay_ms = 400;
  Loopback lb = start_loopback(options);

  // Fill the single in-flight slot from a second connection, then the
  // fixture client's request must be rejected at admission.
  std::unique_ptr<Client> filler =
      Client::connect("127.0.0.1", lb.server->port());
  ASSERT_NE(filler, nullptr);
  std::thread slow([&filler] {
    PongResponse pong;
    EXPECT_TRUE(filler->ping(&pong).ok());  // slow but eventually answered
  });
  // Give the slow request time to be admitted (it then sleeps ~400 ms).
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  PongResponse pong;
  CallResult result = lb.client->ping(&pong);
  ASSERT_TRUE(result.transport_ok);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error.code, ErrCode::kOverloaded);
  slow.join();
}

TEST(NetServer, QueueWaitPastDeadlineAnswersTimeoutError) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_in_flight = 4;  // admit both; the second waits in queue
  options.request_timeout_sec = 0.1;
  options.debug_handler_delay_ms = 400;
  Loopback lb = start_loopback(options);

  std::unique_ptr<Client> filler =
      Client::connect("127.0.0.1", lb.server->port());
  ASSERT_NE(filler, nullptr);
  std::thread slow([&filler] {
    PongResponse pong;
    EXPECT_TRUE(filler->ping(&pong).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Queued behind a 400 ms request with a 100 ms deadline: by the time the
  // worker frees up, this request is expired and must not execute.
  PongResponse pong;
  CallResult result = lb.client->ping(&pong);
  ASSERT_TRUE(result.transport_ok);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error.code, ErrCode::kTimeout);
  slow.join();
}

// ----------------------------------------------------------- metrics ----

TEST(NetServer, MetricsOverTheWire) {
  Loopback lb = start_loopback({});
  PongResponse pong;
  ASSERT_TRUE(lb.client->ping(&pong).ok());

  std::string text;
  ASSERT_TRUE(lb.client->metrics(0, &text).ok());
  EXPECT_NE(text.find("ibseg_net_connections"), std::string::npos);
  EXPECT_NE(text.find("ibseg_net_requests_total"), std::string::npos);
  EXPECT_NE(text.find("ibseg_net_request_seconds"), std::string::npos);
  EXPECT_NE(text.find("cmd=\"ping\""), std::string::npos);

  std::string json;
  ASSERT_TRUE(lb.client->metrics(1, &json).ok());
  EXPECT_NE(json.find("ibseg_net_requests_total"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
}

// ----------------------------------------------------- save and drain ----

TEST(NetServer, SaveWithoutStateDirIsUnsupported) {
  Loopback lb = start_loopback({});
  CallResult result = lb.client->save();
  ASSERT_TRUE(result.transport_ok);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error.code, ErrCode::kUnsupported);
}

TEST(NetServer, SaveCommandPersistsRestorableState) {
  const std::string dir = tmp_dir("save_cmd");
  ServerOptions options;
  options.state_dir = dir;
  Loopback lb = start_loopback(options);

  DocId id = 0;
  ASSERT_TRUE(
      lb.client->add_post(ingest_texts(1, 55).front(), &id).ok());
  ASSERT_TRUE(lb.client->save().ok());

  std::unique_ptr<ShardedServing> restored = ShardedServing::restore(dir);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->num_docs(), lb.backend->num_docs());
  EXPECT_EQ(restored->epoch(), lb.backend->epoch());
}

TEST(NetServer, DrainLosesNoAcknowledgedAddPost) {
  const std::string dir = tmp_dir("drain");
  ServerOptions options;
  options.state_dir = dir;

  // Reference: the same corpus + the same ingests, entirely in-process.
  const uint64_t seed = 11;
  std::vector<std::string> texts = ingest_texts(5, 66);
  ServingOptions ref_serving;
  ref_serving.num_shards = 2;
  std::unique_ptr<ShardedServing> reference =
      ShardedServing::create(corpus_docs(kPosts, seed), {}, ref_serving);
  ASSERT_NE(reference, nullptr);
  for (const std::string& text : texts) reference->add_post(text);

  Loopback lb = start_loopback(options, /*shards=*/2, seed);
  for (const std::string& text : texts) {
    DocId id = 0;
    ASSERT_TRUE(lb.client->add_post(text, &id).ok());
  }
  // Every ADD_POST above was acknowledged. DRAIN from the wire; the
  // response arrives before the server quiesces and saves.
  ASSERT_TRUE(lb.client->drain().ok());
  lb.server->wait_drained();
  EXPECT_TRUE(lb.server->draining());

  // Restore what the drain persisted: nothing acknowledged may be lost,
  // and every query must answer bit-identically to the reference.
  std::unique_ptr<ShardedServing> restored = ShardedServing::restore(dir);
  ASSERT_NE(restored, nullptr);
  ASSERT_EQ(restored->num_docs(), reference->num_docs());
  ASSERT_EQ(restored->epoch(), reference->epoch());
  const DocId num_docs = static_cast<DocId>(reference->num_docs());
  for (DocId doc = 0; doc < num_docs; ++doc) {
    ShardedServing::QueryResult want = reference->find_related(doc, 5);
    ShardedServing::QueryResult got = restored->find_related(doc, 5);
    expect_identical(got.results, want.results,
                     "restored doc " + std::to_string(doc));
  }
}

TEST(NetServer, RequestsAfterDrainAreRejected) {
  Loopback lb = start_loopback({});
  ASSERT_TRUE(lb.client->drain().ok());
  lb.server->wait_drained();

  // After the drain the old connection is gone and the listener is down:
  // either the send/recv fails or (in the narrow pre-close window) the
  // server answered ERROR/DRAINING. Both are documented outcomes; what
  // must never happen is a successful PONG.
  PongResponse pong;
  CallResult result = lb.client->ping(&pong);
  if (result.transport_ok) {
    EXPECT_EQ(result.response_type, MsgType::kError);
    EXPECT_EQ(result.error.code, ErrCode::kDraining);
  }
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(Client::connect("127.0.0.1", lb.server->port(), 0.5), nullptr);
}

TEST(NetServer, LocalDrainCompletesWithIdleConnections) {
  Loopback lb = start_loopback({});
  PongResponse pong;
  ASSERT_TRUE(lb.client->ping(&pong).ok());
  // drain() must not hang on the idle-but-open client connection.
  lb.server->drain();
  EXPECT_TRUE(lb.server->draining());
}

}  // namespace
}  // namespace net
}  // namespace ibseg
