// Unit tests for src/topic: LDA Gibbs sampling and the topic matcher.

#include <gtest/gtest.h>

#include <cmath>

#include "topic/lda.h"
#include "topic/lda_matcher.h"

namespace ibseg {
namespace {

// Two crisply separated "topics": docs 0..4 use words 0..4, docs 5..9 use
// words 5..9.
std::vector<std::vector<TermId>> separable_corpus() {
  std::vector<std::vector<TermId>> docs;
  for (int d = 0; d < 10; ++d) {
    std::vector<TermId> doc;
    TermId base = d < 5 ? 0 : 5;
    for (int i = 0; i < 40; ++i) {
      doc.push_back(base + static_cast<TermId>(i % 5));
    }
    docs.push_back(std::move(doc));
  }
  return docs;
}

TEST(Lda, DocTopicsSumToOne) {
  LdaParams params;
  params.num_topics = 3;
  params.iterations = 20;
  auto model = LdaModel::train(separable_corpus(), 10, params);
  for (size_t d = 0; d < 10; ++d) {
    auto theta = model.doc_topics(d);
    ASSERT_EQ(theta.size(), 3u);
    double sum = 0.0;
    for (double p : theta) {
      EXPECT_GT(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Lda, SeparatesTwoTopicGroups) {
  LdaParams params;
  params.num_topics = 2;
  params.iterations = 150;
  params.alpha = 0.1;
  auto model = LdaModel::train(separable_corpus(), 10, params);
  // Dominant topic of group 1 differs from group 2.
  auto dominant = [&](size_t d) {
    auto theta = model.doc_topics(d);
    return theta[0] > theta[1] ? 0 : 1;
  };
  int g1 = dominant(0);
  for (size_t d = 0; d < 5; ++d) EXPECT_EQ(dominant(d), g1) << d;
  for (size_t d = 5; d < 10; ++d) EXPECT_NE(dominant(d), g1) << d;
}

TEST(Lda, TopicWordIsDistribution) {
  LdaParams params;
  params.num_topics = 2;
  params.iterations = 30;
  auto model = LdaModel::train(separable_corpus(), 10, params);
  for (int k = 0; k < 2; ++k) {
    double sum = 0.0;
    for (TermId w = 0; w < 10; ++w) {
      double p = model.topic_word(k, w);
      EXPECT_GT(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Lda, TopWordsReflectTopic) {
  LdaParams params;
  params.num_topics = 2;
  params.iterations = 150;
  params.alpha = 0.1;
  auto model = LdaModel::train(separable_corpus(), 10, params);
  auto top = model.top_words(0, 5);
  ASSERT_EQ(top.size(), 5u);
  // All top-5 words of one topic come from one word group.
  bool low = top[0] < 5;
  for (TermId w : top) EXPECT_EQ(w < 5, low);
}

TEST(Lda, DeterministicForSeed) {
  LdaParams params;
  params.num_topics = 2;
  params.iterations = 10;
  auto a = LdaModel::train(separable_corpus(), 10, params);
  auto b = LdaModel::train(separable_corpus(), 10, params);
  for (size_t d = 0; d < 10; ++d) {
    auto ta = a.doc_topics(d);
    auto tb = b.doc_topics(d);
    for (size_t k = 0; k < ta.size(); ++k) EXPECT_DOUBLE_EQ(ta[k], tb[k]);
  }
}

TEST(Lda, EmptyCorpus) {
  auto model = LdaModel::train({}, 1, LdaParams{});
  EXPECT_EQ(model.num_topics(), LdaParams{}.num_topics);
  EXPECT_DOUBLE_EQ(model.log_likelihood(), 0.0);
}

TEST(LdaMatcher, MatchesWithinTopicGroup) {
  // Documents about printers vs documents about hotels.
  std::vector<Document> docs;
  for (int i = 0; i < 4; ++i) {
    docs.push_back(Document::analyze(
        static_cast<DocId>(i),
        "The printer cartridge ink tray spooler stopped printing pages."));
  }
  for (int i = 4; i < 8; ++i) {
    docs.push_back(Document::analyze(
        static_cast<DocId>(i),
        "The hotel beach pool breakfast balcony view was lovely."));
  }
  Vocabulary vocab;
  LdaParams params;
  params.num_topics = 2;
  params.iterations = 150;
  auto matcher = LdaMatcher::build(docs, vocab, params);
  auto related = matcher.find_related(0, 3);
  ASSERT_EQ(related.size(), 3u);
  for (const ScoredDoc& sd : related) {
    EXPECT_LT(sd.doc, 4u) << "printer doc matched hotel doc";
  }
  EXPECT_TRUE(matcher.find_related(99, 3).empty());
}

}  // namespace
}  // namespace ibseg
