// Replication suite (ctest label "replication"): WAL shipping between
// ShardedServing instances, the repl::Replica wire path (snapshot
// bootstrap, pull/apply/ack, lag gauges), read-only replica servers,
// leader-side query fan-out, and crash promotion.
//
// The load-bearing contract everywhere is BIT-IDENTITY: a follower that
// applied the leader's publication sequence through apply_shipped answers
// every query with the exact doubles the leader answers — so the
// differential assertions here use operator== on scores, never tolerances.
// The promotion test uses the same fork + _exit(2) crash model as
// kill_safety_test.cc: a child leader ingests durable posts and dies
// without any cleanup; the replica promotes from the dead leader's
// on-disk tail and must hold every acknowledged ingest.
//
// scripts/reproduce.sh IBSEG_REPL_CHECK=1 runs this label normally and
// under TSan.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded_serving.h"
#include "datagen/post_generator.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "replication/replica.h"
#include "storage/wal_codec.h"

namespace ibseg {
namespace {

constexpr int kChildExitCode = 2;

GeneratorOptions corpus_options(size_t posts, uint64_t seed) {
  GeneratorOptions gen;
  gen.num_posts = posts;
  gen.posts_per_scenario = 3;
  gen.seed = seed;
  return gen;
}

std::vector<Document> seed_docs() {
  return analyze_corpus(generate_corpus(corpus_options(18, 4242)));
}

std::vector<std::string> ingest_stream(size_t count = 10, uint64_t seed = 777) {
  SyntheticCorpus corpus = generate_corpus(corpus_options(count, seed));
  std::vector<std::string> texts;
  for (const GeneratedPost& p : corpus.posts) texts.push_back(p.text);
  return texts;
}

std::string tmp_dir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/ibseg_repl_" + name + "_" +
                    std::to_string(static_cast<long>(::getpid()));
  std::filesystem::remove_all(dir);
  return dir;
}

/// Bit-identical comparison of two sharded deployments over every corpus
/// document: same ids, same ranking, operator== on the double scores.
void expect_identical_backends(const ShardedServing& a,
                               const ShardedServing& b) {
  ASSERT_EQ(a.epoch(), b.epoch());
  ASSERT_EQ(a.num_docs(), b.num_docs());
  ASSERT_EQ(a.next_id(), b.next_id());
  ASSERT_EQ(a.offline_generation(), b.offline_generation());
  const DocId num_docs = static_cast<DocId>(a.num_docs());
  for (DocId doc = 0; doc < num_docs; ++doc) {
    auto ra = a.find_related(doc, 5);
    auto rb = b.find_related(doc, 5);
    ASSERT_EQ(ra.results.size(), rb.results.size()) << "query " << doc;
    for (size_t i = 0; i < ra.results.size(); ++i) {
      ASSERT_EQ(ra.results[i].doc, rb.results[i].doc)
          << "query " << doc << " rank " << i;
      ASSERT_EQ(ra.results[i].score, rb.results[i].score)
          << "query " << doc << " rank " << i;
    }
  }
}

/// Pulls one segment from `leader` at the follower's cursor and applies
/// it (plus any mirrored recluster). Returns the number of frames applied.
size_t pull_once(const ShardedServing& leader, ShardedServing* follower,
                 uint32_t max_frames = 256,
                 uint32_t max_bytes = 4u * 1024u * 1024u) {
  ShardedServing::ShipSegment seg = leader.ship_segment(
      follower->epoch(), follower->offline_generation(), max_frames,
      max_bytes);
  EXPECT_EQ(seg.status, ShardedServing::ShipSegment::Status::kOk);
  std::vector<WalRecord> records;
  EXPECT_TRUE(wal_parse_frames_exact(seg.raw.data(), seg.raw.size(),
                                     &records));
  EXPECT_EQ(records.size(), seg.frame_count);
  if (!records.empty()) {
    EXPECT_EQ(seg.base_seq, follower->epoch());
    EXPECT_EQ(seg.segment_generation, follower->offline_generation());
    EXPECT_TRUE(follower->apply_shipped(seg.base_seq, records));
  }
  if (seg.recluster_after) {
    EXPECT_EQ(follower->recluster(), seg.recluster_target);
  }
  return records.size();
}

// ----------------------------------------------- ship/apply (in-process) ----

TEST(WalShipping, ShipApplyBitIdenticalAtEveryFrameBoundary) {
  // Leader and follower start from the same seed corpus; the leader
  // ingests the stream; the follower pulls ONE frame at a time and must
  // be bit-identical to a leader prefix at every boundary. Shard counts
  // 1/2/4 — the publication sequence is shard-count-agnostic.
  const std::vector<std::string> stream = ingest_stream();
  for (int shards : {1, 2, 4}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    ServingOptions options;
    options.num_shards = shards;
    auto leader = ShardedServing::create(seed_docs(), {}, options);
    auto follower = ShardedServing::create(seed_docs(), {}, options);
    ASSERT_NE(leader, nullptr);
    ASSERT_NE(follower, nullptr);

    for (const std::string& text : stream) leader->add_post(text);
    ASSERT_EQ(leader->epoch(), stream.size());

    while (follower->epoch() < leader->epoch()) {
      ASSERT_EQ(pull_once(*leader, follower.get(), /*max_frames=*/1), 1u);
      // Mid-stream the follower equals a leader *prefix*; the cheap
      // invariant to pin at every boundary is the epoch/id coordinates.
      ASSERT_EQ(follower->num_docs(),
                seed_docs().size() + follower->epoch());
    }
    expect_identical_backends(*leader, *follower);

    // Caught up: the next pull is empty and reports the leader's seq.
    ShardedServing::ShipSegment seg = leader->ship_segment(
        follower->epoch(), follower->offline_generation(), 256, 1u << 20);
    EXPECT_EQ(seg.status, ShardedServing::ShipSegment::Status::kOk);
    EXPECT_EQ(seg.frame_count, 0u);
    EXPECT_EQ(seg.leader_seq, leader->epoch());
  }
}

TEST(WalShipping, DuplicateDeliveryIsIdempotentAndGapsAreRejected) {
  ServingOptions options;
  options.num_shards = 2;
  auto leader = ShardedServing::create(seed_docs(), {}, options);
  auto follower = ShardedServing::create(seed_docs(), {}, options);
  for (const std::string& text : ingest_stream(4)) leader->add_post(text);

  ShardedServing::ShipSegment seg =
      leader->ship_segment(0, 0, 256, 1u << 20);
  ASSERT_EQ(seg.status, ShardedServing::ShipSegment::Status::kOk);
  std::vector<WalRecord> records;
  ASSERT_TRUE(
      wal_parse_frames_exact(seg.raw.data(), seg.raw.size(), &records));
  ASSERT_EQ(records.size(), 4u);

  // A gap (applying past the cursor) must be rejected outright.
  std::vector<WalRecord> tail(records.begin() + 2, records.end());
  EXPECT_FALSE(follower->apply_shipped(2, tail));
  EXPECT_EQ(follower->epoch(), 0u);

  ASSERT_TRUE(follower->apply_shipped(0, records));
  EXPECT_EQ(follower->epoch(), 4u);
  // Duplicate delivery (full overlap) re-checks ids and applies nothing.
  ASSERT_TRUE(follower->apply_shipped(0, records));
  EXPECT_EQ(follower->epoch(), 4u);
  expect_identical_backends(*leader, *follower);
}

TEST(WalShipping, ShipSegmentStatusesAndCaps) {
  ServingOptions options;
  options.num_shards = 2;
  auto leader = ShardedServing::create(seed_docs(), {}, options);
  for (const std::string& text : ingest_stream(5)) leader->add_post(text);

  // A follower claiming to be ahead of the leader is divergent.
  EXPECT_EQ(leader->ship_segment(leader->epoch() + 1, 0, 4, 1u << 20).status,
            ShardedServing::ShipSegment::Status::kAhead);

  // A generation the leader's history never produced is unservable.
  EXPECT_EQ(leader->ship_segment(0, 99, 4, 1u << 20).status,
            ShardedServing::ShipSegment::Status::kSnapshotNeeded);

  // max_frames caps the segment.
  ShardedServing::ShipSegment capped = leader->ship_segment(0, 0, 2, 1u << 20);
  EXPECT_EQ(capped.status, ShardedServing::ShipSegment::Status::kOk);
  EXPECT_EQ(capped.frame_count, 2u);
  EXPECT_EQ(capped.base_seq, 0u);
  EXPECT_EQ(capped.leader_seq, 5u);

  // max_bytes of 1 cannot hold any frame, but a segment must still make
  // progress: one oversized frame ships alone.
  ShardedServing::ShipSegment tiny = leader->ship_segment(0, 0, 4, 1);
  EXPECT_EQ(tiny.status, ShardedServing::ShipSegment::Status::kOk);
  EXPECT_EQ(tiny.frame_count, 1u);
}

TEST(WalShipping, ReclusterBoundaryIsMirroredExactly) {
  // The leader ingests, runs a background re-clustering epoch, ingests
  // more. Segments must stop AT the boundary (never straddle it), tell
  // the follower to recluster, and the follower's mirrored rebuild —
  // over the identical corpus cut — lands on the identical clustering.
  const std::vector<std::string> stream = ingest_stream(7);
  ServingOptions options;
  options.num_shards = 2;
  auto leader = ShardedServing::create(seed_docs(), {}, options);
  auto follower = ShardedServing::create(seed_docs(), {}, options);

  for (size_t i = 0; i < 4; ++i) leader->add_post(stream[i]);
  ASSERT_EQ(leader->recluster(), 1u);
  for (size_t i = 4; i < stream.size(); ++i) leader->add_post(stream[i]);

  // First pull: generous caps, but the segment must stop at seq 4 with
  // the recluster instruction.
  ShardedServing::ShipSegment first =
      leader->ship_segment(0, 0, 256, 1u << 20);
  ASSERT_EQ(first.status, ShardedServing::ShipSegment::Status::kOk);
  EXPECT_EQ(first.frame_count, 4u);
  EXPECT_EQ(first.segment_generation, 0u);
  EXPECT_TRUE(first.recluster_after);
  EXPECT_EQ(first.recluster_target, 1u);

  while (follower->epoch() < leader->epoch()) {
    pull_once(*leader, follower.get());
  }
  EXPECT_EQ(follower->offline_generation(), 1u);
  expect_identical_backends(*leader, *follower);

  // A follower still at generation 0 but past the boundary cut is not
  // servable from history — it must re-bootstrap.
  EXPECT_EQ(leader->ship_segment(5, 0, 4, 1u << 20).status,
            ShardedServing::ShipSegment::Status::kSnapshotNeeded);
}

// --------------------------------------------------- wire frame codecs ----

TEST(ReplicationFrames, RoundTripAndEveryPrefixRejected) {
  using namespace net;
  std::vector<std::pair<const char*, std::string>> payloads;
  std::string p;

  encode_subscribe_wal({42, 3, 256, 1u << 20, "replica-7"}, &p);
  payloads.emplace_back("subscribe_wal", p);

  p.clear();
  encode_wal_ack({41, "replica-7"}, &p);
  payloads.emplace_back("wal_ack", p);

  p.clear();
  encode_snapshot_chunk({"shard-1/snapshot.g2.v2", 65536, 4096}, &p);
  payloads.emplace_back("snapshot_chunk", p);

  p.clear();
  WalSegmentResponse seg;
  seg.base_seq = 42;
  seg.leader_seq = 44;
  seg.leader_generation = 3;
  seg.segment_generation = 3;
  seg.recluster_after = 1;
  seg.recluster_target = 4;
  seg.frame_count = 1;
  seg.raw = std::string("\x08\x00\x00\x00\x01\x02\x03\x04", 8) +
            std::string("\x2A\x00\x00\x00post", 8);
  encode_wal_segment(seg, &p);
  payloads.emplace_back("wal_segment", p);

  p.clear();
  SnapshotListingResponse listing;
  listing.generation = 3;
  listing.num_shards = 2;
  listing.files = {{"MANIFEST", 512, 0xDEADBEEF},
                   {"shard-0/snapshot.g3.v2", 8192, 7},
                   {"shard-1/snapshot.g3.v2", 8192, 8}};
  encode_snapshot_listing(listing, &p);
  payloads.emplace_back("snapshot_listing", p);

  p.clear();
  encode_snapshot_data({8192, "chunk bytes"}, &p);
  payloads.emplace_back("snapshot_data", p);

  auto decodes = [](const char* what, std::string_view bytes) {
    if (std::string_view(what) == "subscribe_wal") {
      SubscribeWalRequest out;
      return decode_subscribe_wal(bytes, &out);
    }
    if (std::string_view(what) == "wal_ack") {
      WalAckRequest out;
      return decode_wal_ack(bytes, &out);
    }
    if (std::string_view(what) == "snapshot_chunk") {
      SnapshotChunkRequest out;
      return decode_snapshot_chunk(bytes, &out);
    }
    if (std::string_view(what) == "wal_segment") {
      WalSegmentResponse out;
      return decode_wal_segment(bytes, &out);
    }
    if (std::string_view(what) == "snapshot_listing") {
      SnapshotListingResponse out;
      return decode_snapshot_listing(bytes, &out);
    }
    SnapshotDataResponse out;
    return decode_snapshot_data(bytes, &out);
  };

  for (const auto& [what, payload] : payloads) {
    SCOPED_TRACE(what);
    EXPECT_TRUE(decodes(what, payload)) << "full payload must decode";
    // Every strict prefix must be rejected: the new codecs all pin their
    // variable-length field to exactly the remaining bytes, so nothing
    // shorter can be a valid payload.
    for (size_t len = 0; len < payload.size(); ++len) {
      EXPECT_FALSE(decodes(what, std::string_view(payload.data(), len)))
          << "prefix of length " << len << " must be rejected";
    }
  }

  // Field-level goldens for the richest type: decode the encoded segment
  // back and compare every field.
  WalSegmentResponse out;
  ASSERT_TRUE(decode_wal_segment(payloads[3].second, &out));
  EXPECT_EQ(out.base_seq, 42u);
  EXPECT_EQ(out.leader_seq, 44u);
  EXPECT_EQ(out.leader_generation, 3u);
  EXPECT_EQ(out.segment_generation, 3u);
  EXPECT_EQ(out.recluster_after, 1u);
  EXPECT_EQ(out.recluster_target, 4u);
  EXPECT_EQ(out.frame_count, 1u);
  EXPECT_EQ(out.raw, seg.raw);
}

// -------------------------------------------------- wire replica (repl) ----

/// A leader deployment with persistence + a Server over it.
struct WireLeader {
  std::string dir;
  std::unique_ptr<ShardedServing> backend;
  std::unique_ptr<net::Server> server;
};

WireLeader start_wire_leader(const std::string& name, int shards = 2) {
  WireLeader leader;
  leader.dir = tmp_dir(name);
  ServingOptions serving;
  serving.num_shards = shards;
  serving.persist.shard_dir = leader.dir;
  leader.backend = ShardedServing::create(seed_docs(), {}, serving);
  EXPECT_NE(leader.backend, nullptr);
  net::ServerOptions options;
  options.port = 0;
  options.state_dir = leader.dir;
  leader.server = std::make_unique<net::Server>(leader.backend.get(), options);
  EXPECT_TRUE(leader.server->start());
  return leader;
}

TEST(WireReplica, BootstrapCatchUpAndLagGauges) {
  WireLeader leader = start_wire_leader("wire_catchup");
  for (const std::string& text : ingest_stream(2, 31)) {
    leader.backend->add_post(text);
  }

  repl::ReplicaOptions options;
  options.leader_port = leader.server->port();
  options.dir = tmp_dir("wire_catchup_replica");
  options.replica_id = "wire-catchup";  // unique: the metrics registry is
                                        // process-global across tests
  options.max_frames = 1;               // one frame per pull → visible lag
  auto replica = repl::Replica::bootstrap(options);
  ASSERT_NE(replica, nullptr);
  // SNAPSHOT_LIST saves the leader first, so the bootstrap snapshot
  // already contains both pre-bootstrap ingests.
  EXPECT_EQ(replica->backend().epoch(), 2u);

  // Three more leader ingests; with max_frames=1 the replica needs three
  // pulls, and the lag gauges must count down 2 → 1 → 0.
  for (const std::string& text : ingest_stream(3, 32)) {
    leader.backend->add_post(text);
  }
  obs::Gauge& lag_frames = obs::MetricsRegistry::global().gauge(
      "ibseg_replica_lag_frames", "", {{"replica", options.replica_id}});
  obs::Gauge& leader_lag = obs::MetricsRegistry::global().gauge(
      "ibseg_leader_replica_lag_frames", "",
      {{"replica", options.replica_id}});

  ASSERT_EQ(replica->step(), repl::Replica::StepStatus::kApplied);
  EXPECT_EQ(replica->backend().epoch(), 3u);
  EXPECT_EQ(lag_frames.value(), 2.0);
  EXPECT_EQ(leader_lag.value(), 2.0);  // set by the WAL_ACK round trip
  EXPECT_EQ(replica->last_leader_seq(), 5u);

  ASSERT_EQ(replica->step(), repl::Replica::StepStatus::kApplied);
  EXPECT_EQ(lag_frames.value(), 1.0);
  ASSERT_EQ(replica->step(), repl::Replica::StepStatus::kCaughtUp);
  EXPECT_EQ(lag_frames.value(), 0.0);
  EXPECT_EQ(leader_lag.value(), 0.0);

  obs::Counter& applied = obs::MetricsRegistry::global().counter(
      "ibseg_replica_applied_total", "", {{"replica", options.replica_id}});
  EXPECT_EQ(applied.value(), 3u);

  expect_identical_backends(*leader.backend, replica->backend());

  // A replica restart recovers from its own directory (the applied
  // frames were journaled) and resumes caught up.
  replica.reset();
  options.replica_id = "wire-catchup-restarted";
  auto again = repl::Replica::bootstrap(options);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again->backend().epoch(), 5u);
  EXPECT_EQ(again->step(), repl::Replica::StepStatus::kCaughtUp);
  expect_identical_backends(*leader.backend, again->backend());
}

TEST(WireReplica, PollingThreadFollowsLeaderIngest) {
  WireLeader leader = start_wire_leader("wire_poll");

  repl::ReplicaOptions options;
  options.leader_port = leader.server->port();
  options.dir = tmp_dir("wire_poll_replica");
  options.replica_id = "wire-poll";
  options.poll_interval_ms = 5;
  auto replica = repl::Replica::bootstrap(options);
  ASSERT_NE(replica, nullptr);
  replica->start_polling();

  for (const std::string& text : ingest_stream(4, 33)) {
    leader.backend->add_post(text);
  }
  for (int i = 0; i < 2000 && replica->backend().epoch() < 4; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  replica->stop();
  ASSERT_EQ(replica->backend().epoch(), 4u);
  expect_identical_backends(*leader.backend, replica->backend());
}

TEST(WireReplica, ReadOnlyServerRejectsMutationsButServesReads) {
  WireLeader leader = start_wire_leader("wire_readonly");

  repl::ReplicaOptions replica_options;
  replica_options.leader_port = leader.server->port();
  replica_options.dir = tmp_dir("wire_readonly_replica");
  replica_options.replica_id = "wire-readonly";
  auto replica = repl::Replica::bootstrap(replica_options);
  ASSERT_NE(replica, nullptr);

  net::ServerOptions server_options;
  server_options.port = 0;
  server_options.read_only = true;
  net::Server replica_server(&replica->backend(), server_options);
  ASSERT_TRUE(replica_server.start());
  auto client = net::Client::connect("127.0.0.1", replica_server.port());
  ASSERT_NE(client, nullptr);

  DocId id = 0;
  net::CallResult add = client->add_post("a post the replica must refuse", &id);
  EXPECT_TRUE(add.transport_ok);
  EXPECT_FALSE(add.ok());
  EXPECT_EQ(add.error.code, net::ErrCode::kUnsupported);

  std::vector<DocId> ids;
  net::CallResult batch = client->add_posts({"refused", "too"}, &ids);
  EXPECT_TRUE(batch.transport_ok);
  EXPECT_FALSE(batch.ok());
  EXPECT_EQ(batch.error.code, net::ErrCode::kUnsupported);

  net::ReclusteredResponse reclustered;
  net::CallResult recluster = client->recluster(&reclustered);
  EXPECT_TRUE(recluster.transport_ok);
  EXPECT_FALSE(recluster.ok());
  EXPECT_EQ(recluster.error.code, net::ErrCode::kUnsupported);

  // Reads keep working, bit-identical to the backend.
  net::RelatedResponse got;
  ASSERT_TRUE(client->query(3, 5, &got).ok());
  auto want = replica->backend().find_related(3, 5);
  ASSERT_EQ(got.results.size(), want.results.size());
  for (size_t i = 0; i < want.results.size(); ++i) {
    EXPECT_EQ(got.results[i].doc, want.results[i].doc);
    EXPECT_EQ(got.results[i].score, want.results[i].score);
  }
}

TEST(WireReplica, LeaderFanOutServesReplicaAnswersBitIdentically) {
  // Leader + one caught-up read-only replica; a front server over the
  // leader fans QUERY out to the replica. The answer bytes come from the
  // replica, and bit-identity makes them indistinguishable from local —
  // which is exactly what the assertion pins.
  WireLeader leader = start_wire_leader("wire_fanout");

  repl::ReplicaOptions replica_options;
  replica_options.leader_port = leader.server->port();
  replica_options.dir = tmp_dir("wire_fanout_replica");
  replica_options.replica_id = "wire-fanout";
  auto replica = repl::Replica::bootstrap(replica_options);
  ASSERT_NE(replica, nullptr);
  ASSERT_EQ(replica->step(), repl::Replica::StepStatus::kCaughtUp);

  net::ServerOptions replica_server_options;
  replica_server_options.read_only = true;
  net::Server replica_server(&replica->backend(), replica_server_options);
  ASSERT_TRUE(replica_server.start());

  net::ServerOptions front_options;
  front_options.read_replicas = {
      "127.0.0.1:" + std::to_string(replica_server.port())};
  net::Server front(leader.backend.get(), front_options);
  ASSERT_TRUE(front.start());
  auto client = net::Client::connect("127.0.0.1", front.port());
  ASSERT_NE(client, nullptr);

  const DocId num_docs = static_cast<DocId>(leader.backend->num_docs());
  for (DocId doc = 0; doc < num_docs; ++doc) {
    auto want = leader.backend->find_related(doc, 5);
    net::RelatedResponse got;
    ASSERT_TRUE(client->query(doc, 5, &got).ok()) << "doc " << doc;
    ASSERT_EQ(got.results.size(), want.results.size()) << "doc " << doc;
    for (size_t i = 0; i < want.results.size(); ++i) {
      EXPECT_EQ(got.results[i].doc, want.results[i].doc)
          << "doc " << doc << " rank " << i;
      EXPECT_EQ(got.results[i].score, want.results[i].score)
          << "doc " << doc << " rank " << i;
    }
  }

  // The forwarded counter proves answers actually came from the replica.
  obs::Counter& forwarded = obs::MetricsRegistry::global().counter(
      "ibseg_net_fanout_total", "", {{"answered_by", "replica"}});
  EXPECT_GE(forwarded.value(), static_cast<uint64_t>(num_docs));
}

TEST(WireReplica, DeadReplicaFallsBackToLocalExecution) {
  // Port 1 on loopback is closed; the channel fails its connect and every
  // query must transparently execute locally — same bits, no errors.
  ServingOptions serving;
  serving.num_shards = 2;
  auto backend = ShardedServing::create(seed_docs(), {}, serving);
  ASSERT_NE(backend, nullptr);

  net::ServerOptions options;
  options.read_replicas = {"127.0.0.1:1"};
  options.replica_retry_sec = 60.0;  // fail once, then skip the channel
  net::Server server(backend.get(), options);
  ASSERT_TRUE(server.start());
  auto client = net::Client::connect("127.0.0.1", server.port());
  ASSERT_NE(client, nullptr);

  for (DocId doc : {DocId{0}, DocId{5}, DocId{11}}) {
    auto want = backend->find_related(doc, 5);
    net::RelatedResponse got;
    ASSERT_TRUE(client->query(doc, 5, &got).ok()) << "doc " << doc;
    ASSERT_EQ(got.results.size(), want.results.size());
    for (size_t i = 0; i < want.results.size(); ++i) {
      EXPECT_EQ(got.results[i].doc, want.results[i].doc);
      EXPECT_EQ(got.results[i].score, want.results[i].score);
    }
  }
}

// ----------------------------------------------------- crash promotion ----

/// Blocks until `path` exists (child/parent rendezvous files).
bool await_file(const std::string& path, int timeout_ms = 15000) {
  for (int waited = 0; waited < timeout_ms; waited += 5) {
    if (std::ifstream(path).good()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

void touch(const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  os << "x";
}

/// One promotion trial. The child is the leader: it restores the
/// committed base directory, serves the replication protocol, ingests K
/// durable posts on the parent's signal, and dies with _exit(2) — no
/// destructors, no flushes, exactly the kill_safety crash model. The
/// parent bootstraps a replica over the wire, optionally lets it catch
/// up (`catch_up_over_wire`), kills the leader, promotes, and asserts
/// the promoted replica holds every acknowledged ingest bit-identically
/// to a never-crashed reference.
void run_promotion_trial(const std::string& name, bool catch_up_over_wire) {
  constexpr size_t kIngests = 5;
  constexpr int kShards = 2;
  const std::string leader_dir = tmp_dir(name + "_leader");
  const std::string replica_dir = tmp_dir(name + "_replica");
  const std::string port_file = leader_dir + "/port";
  const std::string go_file = leader_dir + "/go";
  const std::string ingested_file = leader_dir + "/ingested";
  const std::string die_file = leader_dir + "/die";

  {
    ServingOptions serving;
    serving.num_shards = kShards;
    serving.persist.shard_dir = leader_dir;
    auto base = ShardedServing::create(seed_docs(), {}, serving);
    ASSERT_NE(base, nullptr);
    ASSERT_TRUE(base->save(leader_dir));
  }
  const std::vector<std::string> stream = ingest_stream();

  pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // ---- child leader. No gtest assertions: failures surface as exit
    // codes, never as duplicated test results.
    auto backend = ShardedServing::restore(leader_dir);
    if (backend == nullptr) _exit(42);
    net::ServerOptions options;
    options.port = 0;
    options.state_dir = leader_dir;
    net::Server server(backend.get(), options);
    if (!server.start()) _exit(43);
    {
      std::ofstream os(port_file + ".tmp", std::ios::trunc);
      os << server.port();
      os.flush();
      if (!os) _exit(44);
    }
    std::rename((port_file + ".tmp").c_str(), port_file.c_str());
    while (!std::ifstream(go_file).good()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    // Durable by write-ahead order: every add_post that returns has its
    // journal entry and WAL frame on disk before publication.
    for (size_t i = 0; i < kIngests; ++i) backend->add_post(stream[i]);
    { std::ofstream os(ingested_file, std::ios::trunc); os << "x"; }
    while (!std::ifstream(die_file).good()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    _exit(kChildExitCode);  // server threads, WAL handles: all abandoned
  }

  // ---- parent: replica side.
  ASSERT_TRUE(await_file(port_file)) << "leader child never published a port";
  uint16_t port = 0;
  {
    std::ifstream is(port_file);
    unsigned long parsed = 0;
    is >> parsed;
    ASSERT_TRUE(is && parsed > 0 && parsed <= 65535);
    port = static_cast<uint16_t>(parsed);
  }

  repl::ReplicaOptions options;
  options.leader_port = port;
  options.dir = replica_dir;
  options.replica_id = "promotion-" + name;
  auto replica = repl::Replica::bootstrap(options);
  ASSERT_NE(replica, nullptr);
  EXPECT_EQ(replica->backend().epoch(), 0u);

  touch(go_file);
  ASSERT_TRUE(await_file(ingested_file)) << "leader child never ingested";

  if (catch_up_over_wire) {
    // Pull until at the leader's epoch — the promoted state then comes
    // almost entirely from applied segments, and the tail drain must be
    // a no-op that still verifies lineage.
    for (int i = 0; i < 2000 && replica->backend().epoch() < kIngests; ++i) {
      replica->step();
    }
    ASSERT_EQ(replica->backend().epoch(), kIngests);
  }

  touch(die_file);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), kChildExitCode);

  // Promotion: drain the dead leader's on-disk tail. In the stale-replica
  // variant the replica sits at epoch 0 and ALL five acknowledged ingests
  // come from the tail; in the caught-up variant the drain dedups.
  ASSERT_TRUE(replica->promote(leader_dir));
  EXPECT_EQ(replica->backend().epoch(), kIngests)
      << "promotion must surface every acknowledged leader ingest";

  // Never-crashed reference over the identical history.
  ServingOptions plain;
  plain.num_shards = kShards;
  auto reference = ShardedServing::create(seed_docs(), {}, plain);
  ASSERT_NE(reference, nullptr);
  for (size_t i = 0; i < kIngests; ++i) reference->add_post(stream[i]);
  expect_identical_backends(*reference, replica->backend());
}

TEST(Promotion, StaleReplicaPromotesFromDeadLeaderTails) {
  run_promotion_trial("stale", /*catch_up_over_wire=*/false);
}

TEST(Promotion, CaughtUpReplicaPromotesWithNoLoss) {
  run_promotion_trial("caught_up", /*catch_up_over_wire=*/true);
}

}  // namespace
}  // namespace ibseg
