// Tests for the sealed flat postings serving form (index/flat_postings.h):
//
//  * codec property tests — random postings lists round-trip bit-exactly
//    through append_posting/decode_run, every strict byte prefix of a
//    valid run is rejected, and golden byte sequences pin the wire format;
//  * decoder hardening — delta-0, unit overflow, tf-0, overlong varints,
//    trailing bytes and inflated df are all rejected, and an inflated df
//    cannot over-reserve (the allocation-bomb guard);
//  * bound invariants — every FlatTermMeta max/min field bounds the exact
//    per-posting doubles the scoring expressions compute, checked
//    exhaustively on randomized corpora (the soundness precondition of
//    the MaxScore pruning bounds);
//  * seal/rebuild — finalize() after an ingest re-seals an arena that
//    matches a from-scratch index built over the same units, byte for
//    byte.

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "index/flat_postings.h"
#include "index/inverted_index.h"
#include "text/term_vector.h"

namespace ibseg {
namespace {

// Encodes a whole postings list the way seal() does.
std::vector<uint8_t> encode_run(const std::vector<Posting>& postings) {
  std::vector<uint8_t> out;
  uint32_t prev = 0;
  bool first = true;
  for (const Posting& p : postings) {
    FlatPostings::append_posting(&out, p.unit, p.tf, prev, first);
    prev = p.unit;
    first = false;
  }
  return out;
}

std::vector<Posting> random_postings(std::mt19937& rng) {
  std::uniform_int_distribution<int> len_dist(1, 40);
  std::uniform_int_distribution<uint32_t> gap_dist(1, 1u << 20);
  std::uniform_int_distribution<int> kind_dist(0, 4);
  std::uniform_real_distribution<double> frac_dist(1e-9, 1e9);
  int len = len_dist(rng);
  std::vector<Posting> postings;
  uint64_t unit = 0;
  for (int i = 0; i < len; ++i) {
    unit += gap_dist(rng);
    if (unit > 0xffffffffull) break;
    double tf = 0.0;
    switch (kind_dist(rng)) {
      case 0:
        tf = static_cast<double>(1 + (rng() % 100));  // small integral
        break;
      case 1:
        tf = 9.007199254740992e15;  // 2^53: integral, varint fast path
        break;
      case 2:
        tf = 1.8446744073709552e19;  // 2^64 > 2^62: raw-bits branch
        break;
      case 3:
        tf = frac_dist(rng);  // almost surely non-integral
        break;
      default:
        tf = 0x1.5p-1040;  // subnormal: raw-bits branch must be exact
        break;
    }
    postings.push_back(Posting{static_cast<uint32_t>(unit), tf});
  }
  return postings;
}

TEST(FlatPostingsCodec, RandomRunsRoundTripBitExactly) {
  std::mt19937 rng(20260808);
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<Posting> postings = random_postings(rng);
    std::vector<uint8_t> bytes = encode_run(postings);
    std::vector<Posting> decoded;
    FlatDecodeStats stats;
    ASSERT_TRUE(FlatPostings::decode_run(
        bytes.data(), bytes.size(), static_cast<uint32_t>(postings.size()),
        &decoded, &stats));
    ASSERT_EQ(decoded.size(), postings.size());
    for (size_t i = 0; i < postings.size(); ++i) {
      EXPECT_EQ(decoded[i].unit, postings[i].unit);
      // Bit-exact, not approximately equal: the pruning identity contract
      // needs decode(encode(tf)) == tf for every double.
      EXPECT_EQ(std::bit_cast<uint64_t>(decoded[i].tf),
                std::bit_cast<uint64_t>(postings[i].tf))
          << "posting " << i << " tf " << postings[i].tf;
    }
    EXPECT_EQ(stats.postings, postings.size());
    EXPECT_EQ(stats.bytes, bytes.size());
  }
}

TEST(FlatPostingsCodec, EveryStrictPrefixIsRejected) {
  std::mt19937 rng(7);
  for (int iter = 0; iter < 25; ++iter) {
    std::vector<Posting> postings = random_postings(rng);
    std::vector<uint8_t> bytes = encode_run(postings);
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      std::vector<Posting> decoded;
      EXPECT_FALSE(FlatPostings::decode_run(
          bytes.data(), cut, static_cast<uint32_t>(postings.size()),
          &decoded))
          << "prefix of length " << cut << " of " << bytes.size()
          << " must not decode";
    }
  }
}

TEST(FlatPostingsCodec, GoldenEncodings) {
  // unit 5, tf 3 (first): varint(5), varint(3 << 1 | 1).
  std::vector<uint8_t> out;
  FlatPostings::append_posting(&out, 5, 3.0, 0, /*first=*/true);
  EXPECT_EQ(out, (std::vector<uint8_t>{0x05, 0x07}));

  // unit 133 after 5: delta 128 = [0x80, 0x01]; tf 1 -> varint(3).
  out.clear();
  FlatPostings::append_posting(&out, 133, 1.0, 5, /*first=*/false);
  EXPECT_EQ(out, (std::vector<uint8_t>{0x80, 0x01, 0x03}));

  // Non-integral tf 2.5: raw-bits escape varint(0) + LE bits of 2.5
  // (0x4004000000000000).
  out.clear();
  FlatPostings::append_posting(&out, 9, 2.5, 0, /*first=*/true);
  EXPECT_EQ(out, (std::vector<uint8_t>{0x09, 0x00, 0x00, 0x00, 0x00, 0x00,
                                       0x00, 0x00, 0x04, 0x40}));

  // All three decode back.
  std::vector<Posting> list{{5, 3.0}, {133, 1.0}};
  std::vector<uint8_t> bytes = encode_run(list);
  EXPECT_EQ(bytes,
            (std::vector<uint8_t>{0x05, 0x07, 0x80, 0x01, 0x03}));
  std::vector<Posting> decoded;
  ASSERT_TRUE(FlatPostings::decode_run(bytes.data(), bytes.size(), 2,
                                       &decoded));
  EXPECT_EQ(decoded[1].unit, 133u);
  EXPECT_EQ(decoded[1].tf, 1.0);
}

TEST(FlatPostingsCodec, RejectsMalformedRuns) {
  std::vector<Posting> decoded;

  // Zero delta on a non-first posting (units must strictly ascend).
  std::vector<uint8_t> zero_delta{0x05, 0x03, 0x00, 0x03};
  EXPECT_FALSE(FlatPostings::decode_run(zero_delta.data(), zero_delta.size(),
                                        2, &decoded));

  // First unit id past 2^32 - 1.
  std::vector<uint8_t> big_unit;
  FlatPostings::append_varint(&big_unit, 0x100000000ull);
  big_unit.push_back(0x03);
  decoded.clear();
  EXPECT_FALSE(FlatPostings::decode_run(big_unit.data(), big_unit.size(), 1,
                                        &decoded));

  // Delta pushing the cumulative unit past 2^32 - 1.
  std::vector<uint8_t> overflow;
  FlatPostings::append_varint(&overflow, 0xffffffffull);
  overflow.push_back(0x03);
  FlatPostings::append_varint(&overflow, 1);
  overflow.push_back(0x03);
  decoded.clear();
  EXPECT_FALSE(FlatPostings::decode_run(overflow.data(), overflow.size(), 2,
                                        &decoded));

  // Integral tf 0 (encoded varint 1) never appears in a sealed run.
  std::vector<uint8_t> zero_tf{0x05, 0x01};
  decoded.clear();
  EXPECT_FALSE(FlatPostings::decode_run(zero_tf.data(), zero_tf.size(), 1,
                                        &decoded));

  // Raw-bits escape with fewer than 8 payload bytes.
  std::vector<uint8_t> short_raw{0x05, 0x00, 0x01, 0x02};
  decoded.clear();
  EXPECT_FALSE(FlatPostings::decode_run(short_raw.data(), short_raw.size(),
                                        1, &decoded));

  // Overlong varint: ten continuation-heavy bytes shifting data past bit
  // 63.
  std::vector<uint8_t> overlong(9, 0xff);
  overlong.push_back(0x7f);
  overlong.push_back(0x03);
  decoded.clear();
  EXPECT_FALSE(FlatPostings::decode_run(overlong.data(), overlong.size(), 1,
                                        &decoded));

  // Trailing bytes after the df-th posting.
  std::vector<uint8_t> trailing{0x05, 0x07, 0xab};
  decoded.clear();
  EXPECT_FALSE(FlatPostings::decode_run(trailing.data(), trailing.size(), 1,
                                        &decoded));

  // df larger than the buffer could possibly hold.
  std::vector<uint8_t> tiny{0x05, 0x07};
  decoded.clear();
  EXPECT_FALSE(FlatPostings::decode_run(tiny.data(), tiny.size(), 1000000,
                                        &decoded));
}

TEST(FlatPostingsCodec, InflatedDfCannotOverReserve) {
  // A lying df of 2^32 - 1 against a 2-byte buffer must fail without
  // reserving gigabytes: the guard reserves from the byte budget
  // (size / 2 + 1 postings at most).
  std::vector<uint8_t> tiny{0x05, 0x07};
  std::vector<Posting> decoded;
  EXPECT_FALSE(FlatPostings::decode_run(tiny.data(), tiny.size(),
                                        0xffffffffu, &decoded));
  EXPECT_LE(decoded.capacity(), 16u);
}

// --- Bound invariants --------------------------------------------------

TermVector make_unit(std::mt19937& rng, int vocab_size) {
  std::uniform_int_distribution<int> nterms_dist(1, 8);
  std::uniform_int_distribution<TermId> term_dist(
      0, static_cast<TermId>(vocab_size - 1));
  std::uniform_int_distribution<int> tf_dist(1, 9);
  TermVector v;
  int nterms = nterms_dist(rng);
  for (int t = 0; t < nterms; ++t) {
    v.add(term_dist(rng), static_cast<double>(tf_dist(rng)));
  }
  return v;
}

TEST(FlatTermMetaBounds, HoldForEveryPostingOnRandomCorpora) {
  std::mt19937 rng(99);
  for (int iter = 0; iter < 40; ++iter) {
    InvertedIndex index;
    int units = 2 + static_cast<int>(rng() % 50);
    for (int u = 0; u < units; ++u) index.add_unit(make_unit(rng, 25));
    index.finalize();
    const FlatPostings& flat = index.flat();
    for (TermId term = 0; term < 25; ++term) {
      const FlatTermMeta* meta = flat.term_meta(term);
      if (meta == nullptr) {
        EXPECT_EQ(index.df(term), 0u);
        continue;
      }
      EXPECT_EQ(meta->df, index.df(term));
      FlatPostings::Cursor cur = flat.cursor(term);
      uint32_t unit = 0;
      double tf = 0.0;
      uint32_t count = 0;
      while (cur.next(&unit, &tf)) {
        ++count;
        // Each comparison is against the exact double the scoring
        // expressions compute — the invariant the MaxScore bounds rely
        // on (flat_postings.h).
        double log_tf_plus1 = std::log(tf) + 1.0;
        double norm = index.unit_norm(unit);
        double weight = log_tf_plus1 / norm;
        double len = index.unit_length(unit);
        double tf_over_len = tf / std::max(len, 1e-9);
        EXPECT_LE(tf, meta->max_tf);
        EXPECT_GE(tf, meta->min_tf);
        EXPECT_LE(log_tf_plus1, meta->max_log_tf_plus1);
        EXPECT_LE(weight, meta->max_weight);
        EXPECT_LE(tf_over_len, meta->max_tf_over_len);
        EXPECT_GE(len, meta->min_len);
        EXPECT_GE(index.unit_log_tf_sum(unit), meta->min_log_tf_sum);
      }
      EXPECT_EQ(count, meta->df);
    }
  }
}

TEST(FlatTermMetaBounds, MaximaAreAttained) {
  // The maxima are exact maxima (not inflated): some posting attains each.
  InvertedIndex index;
  TermVector a;
  a.add(1, 2.0);
  a.add(2, 5.0);
  TermVector b;
  b.add(1, 7.0);
  index.add_unit(a);
  index.add_unit(b);
  index.finalize();
  const FlatTermMeta* meta = index.flat().term_meta(1);
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->max_tf, 7.0);
  EXPECT_EQ(meta->min_tf, 2.0);
  EXPECT_EQ(meta->max_log_tf_plus1, std::log(7.0) + 1.0);
  double expected_w1 = (std::log(2.0) + 1.0) / index.unit_norm(0);
  double expected_w2 = (std::log(7.0) + 1.0) / index.unit_norm(1);
  EXPECT_EQ(meta->max_weight, std::max(expected_w1, expected_w2));
}

// --- Seal / rebuild ----------------------------------------------------

TEST(FlatPostingsSeal, IngestAfterFinalizeResealsIdenticalToFreshBuild) {
  std::mt19937 rng(4242);
  std::vector<TermVector> units;
  for (int u = 0; u < 30; ++u) units.push_back(make_unit(rng, 20));

  // Incremental: 20 units, finalize, 10 more, finalize again.
  InvertedIndex incremental;
  for (int u = 0; u < 20; ++u) incremental.add_unit(units[u]);
  incremental.finalize();
  size_t sealed_once = incremental.flat().arena_bytes();
  for (int u = 20; u < 30; ++u) incremental.add_unit(units[u]);
  incremental.finalize();

  // Fresh: all 30 in one pass.
  InvertedIndex fresh;
  for (const TermVector& v : units) fresh.add_unit(v);
  fresh.finalize();

  ASSERT_EQ(incremental.flat().num_terms(), fresh.flat().num_terms());
  EXPECT_EQ(incremental.flat().arena_bytes(), fresh.flat().arena_bytes());
  EXPECT_GT(incremental.flat().arena_bytes(), sealed_once);
  for (TermId term = 0; term < 20; ++term) {
    EXPECT_EQ(incremental.flat().term_run_bytes(term),
              fresh.flat().term_run_bytes(term))
        << "term " << term;
    const FlatTermMeta* mi = incremental.flat().term_meta(term);
    const FlatTermMeta* mf = fresh.flat().term_meta(term);
    ASSERT_EQ(mi == nullptr, mf == nullptr);
    if (mi == nullptr) continue;
    EXPECT_EQ(mi->df, mf->df);
    EXPECT_EQ(std::bit_cast<uint64_t>(mi->max_weight),
              std::bit_cast<uint64_t>(mf->max_weight));
    EXPECT_EQ(std::bit_cast<uint64_t>(mi->max_log_tf_plus1),
              std::bit_cast<uint64_t>(mf->max_log_tf_plus1));
    EXPECT_EQ(std::bit_cast<uint64_t>(mi->min_log_tf_sum),
              std::bit_cast<uint64_t>(mf->min_log_tf_sum));
  }
  EXPECT_EQ(incremental.flat().total_bytes(), fresh.flat().total_bytes());
}

}  // namespace
}  // namespace ibseg
