// Parameterized property sweeps (TEST_P): invariants that must hold for
// every (strategy x domain x seed) combination rather than one example.

#include <gtest/gtest.h>

#include <set>
#include <cmath>
#include <tuple>

#include "cluster/intention_clusters.h"
#include "core/pipeline.h"
#include "datagen/post_generator.h"
#include "eval/window_diff.h"
#include "seg/segmenter.h"
#include "util/rng.h"

namespace ibseg {
namespace {

// ------------------------------------------- segmentation invariants ----

using SegCase = std::tuple<BorderStrategyKind, ForumDomain, uint64_t>;

class SegmentationProperty : public ::testing::TestWithParam<SegCase> {};

TEST_P(SegmentationProperty, ValidAndCovering) {
  auto [strategy, domain, seed] = GetParam();
  GeneratorOptions gen;
  gen.domain = domain;
  gen.num_posts = 25;
  gen.seed = seed;
  SyntheticCorpus corpus = generate_corpus(gen);
  std::vector<Document> docs = analyze_corpus(corpus);
  for (const Document& doc : docs) {
    Segmentation s = select_borders(doc, strategy);
    // Invariant 1: structural validity.
    ASSERT_TRUE(s.is_valid());
    ASSERT_EQ(s.num_units, doc.num_units());
    // Invariant 2: the concatenation of the segments is the document
    // (every unit covered exactly once, in order) — Def. 1.
    size_t covered = 0;
    size_t expected_begin = 0;
    for (auto [b, e] : s.segments()) {
      EXPECT_EQ(b, expected_begin);
      EXPECT_LE(e, doc.num_units());
      covered += e - b;
      expected_begin = e;
    }
    EXPECT_EQ(covered, doc.num_units());
    // Invariant 3: determinism.
    EXPECT_EQ(select_borders(doc, strategy), s);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesAllDomains, SegmentationProperty,
    ::testing::Combine(
        ::testing::Values(BorderStrategyKind::kTile,
                          BorderStrategyKind::kStepByStep,
                          BorderStrategyKind::kGreedy,
                          BorderStrategyKind::kSentences),
        ::testing::Values(ForumDomain::kTechSupport, ForumDomain::kTravel,
                          ForumDomain::kProgramming, ForumDomain::kHealth),
        ::testing::Values(1u, 99u)));

// ------------------------------------------ scoring-variant invariants ----

using ScoringCase = std::tuple<DiversityIndex, DepthFn>;

class ScoringProperty : public ::testing::TestWithParam<ScoringCase> {};

TEST_P(ScoringProperty, BorderScoresFiniteAndNonNegative) {
  auto [diversity, depth] = GetParam();
  GeneratorOptions gen;
  gen.num_posts = 15;
  gen.seed = 17;
  SyntheticCorpus corpus = generate_corpus(gen);
  std::vector<Document> docs = analyze_corpus(corpus);
  SegScoring scoring;
  scoring.diversity = diversity;
  scoring.depth = depth;
  for (const Document& doc : docs) {
    if (doc.num_units() < 2) continue;
    Segmentation all = Segmentation::all_units(doc.num_units());
    for (double s : score_borders(doc, all, scoring)) {
      EXPECT_TRUE(std::isfinite(s));
      EXPECT_GE(s, 0.0);
    }
    Segmentation seg = select_borders(doc, BorderStrategyKind::kTile, scoring);
    EXPECT_TRUE(seg.is_valid());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFunctions, ScoringProperty,
    ::testing::Combine(::testing::Values(DiversityIndex::kShannon,
                                         DiversityIndex::kRichness),
                       ::testing::Values(DepthFn::kCoherence, DepthFn::kCosine,
                                         DepthFn::kEuclidean,
                                         DepthFn::kManhattan)));

// ----------------------------------------------- WindowDiff properties ----

class WindowDiffProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WindowDiffProperty, IdentityZeroBoundedAndSane) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    size_t n = 4 + rng.next_below(30);
    // Random reference and hypothesis segmentations.
    auto random_seg = [&](double border_prob) {
      Segmentation s;
      s.num_units = n;
      for (size_t b = 1; b < n; ++b) {
        if (rng.next_bool(border_prob)) s.borders.push_back(b);
      }
      return s;
    };
    Segmentation ref = random_seg(0.3);
    Segmentation hyp = random_seg(0.3);
    double wd = window_diff(ref, hyp);
    EXPECT_GE(wd, 0.0);
    EXPECT_LE(wd, 1.0);
    EXPECT_DOUBLE_EQ(window_diff(ref, ref), 0.0);
    double pk = pk_metric(ref, hyp);
    EXPECT_GE(pk, 0.0);
    EXPECT_LE(pk, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowDiffProperty,
                         ::testing::Values(1u, 2u, 3u, 4u));

// -------------------------------------------- clustering invariants ----

class GroupingProperty
    : public ::testing::TestWithParam<std::tuple<ForumDomain, uint64_t>> {};

TEST_P(GroupingProperty, RefinementInvariantsHold) {
  auto [domain, seed] = GetParam();
  GeneratorOptions gen;
  gen.domain = domain;
  gen.num_posts = 60;
  gen.seed = seed;
  SyntheticCorpus corpus = generate_corpus(gen);
  std::vector<Document> docs = analyze_corpus(corpus);
  Segmenter segmenter = Segmenter::cm_tiling();
  Vocabulary vocab;
  std::vector<Segmentation> segs(docs.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    segs[d] = segmenter.segment(docs[d], vocab);
  }
  IntentionClustering clustering = IntentionClustering::build(docs, segs);

  // (1) At most one refined segment per (doc, cluster).
  std::set<std::pair<DocId, int>> keys;
  for (const RefinedSegment& s : clustering.segments()) {
    EXPECT_TRUE(keys.insert({s.doc, s.cluster}).second);
    EXPECT_GE(s.cluster, 0);
    EXPECT_LT(s.cluster, clustering.num_clusters());
  }
  // (2) Unit coverage is exact.
  size_t covered = 0;
  for (const RefinedSegment& s : clustering.segments()) {
    covered += s.num_units();
  }
  size_t total = 0;
  for (const Document& d : docs) total += d.num_units();
  EXPECT_EQ(covered, total);
  // (3) Member lists are consistent with the segment table.
  size_t member_total = 0;
  for (int c = 0; c < clustering.num_clusters(); ++c) {
    for (size_t idx : clustering.cluster_members()[static_cast<size_t>(c)]) {
      EXPECT_EQ(clustering.segments()[idx].cluster, c);
      ++member_total;
    }
  }
  EXPECT_EQ(member_total, clustering.segments().size());
  // (4) Cluster count within the configured target band (plus slack for
  // degenerate corpora).
  EXPECT_GE(clustering.num_clusters(), 1);
  EXPECT_LE(clustering.num_clusters(), 16);
}

INSTANTIATE_TEST_SUITE_P(
    DomainsAndSeeds, GroupingProperty,
    ::testing::Combine(::testing::Values(ForumDomain::kTechSupport,
                                         ForumDomain::kTravel,
                                         ForumDomain::kProgramming,
                                         ForumDomain::kHealth),
                       ::testing::Values(21u, 22u)));

// ----------------------------------------- generator integrity sweep ----

class GeneratorProperty
    : public ::testing::TestWithParam<std::tuple<ForumDomain, uint64_t>> {};

TEST_P(GeneratorProperty, UnitsAlwaysMatchAnalyzer) {
  auto [domain, seed] = GetParam();
  GeneratorOptions gen;
  gen.domain = domain;
  gen.num_posts = 50;
  gen.seed = seed;
  SyntheticCorpus corpus = generate_corpus(gen);
  std::vector<Document> docs = analyze_corpus(corpus);
  for (size_t i = 0; i < docs.size(); ++i) {
    ASSERT_EQ(docs[i].num_units(),
              corpus.posts[i].true_segmentation.num_units)
        << corpus.posts[i].text;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DomainsAndSeeds, GeneratorProperty,
    ::testing::Combine(::testing::Values(ForumDomain::kTechSupport,
                                         ForumDomain::kTravel,
                                         ForumDomain::kProgramming,
                                         ForumDomain::kHealth),
                       ::testing::Values(100u, 200u, 300u)));

// -------------------------------------------- build determinism sweep ----

// The offline build must be bit-identical regardless of how many worker
// threads segment the corpus: per-document scratch vocabularies make each
// document's segmentation self-contained, so thread count may only change
// wall-clock, never output. Guards the parallel build path against
// accidental cross-thread state (and, under TSan, against races).
TEST(BuildDeterminism, ThreadCountDoesNotChangeResults) {
  GeneratorOptions gen;
  gen.num_posts = 40;
  gen.posts_per_scenario = 4;
  gen.seed = 1234;
  SyntheticCorpus corpus = generate_corpus(gen);

  PipelineOptions serial;
  serial.num_threads = 1;
  RelatedPostPipeline p1 =
      RelatedPostPipeline::build(analyze_corpus(corpus), serial);

  PipelineOptions parallel;
  parallel.num_threads = 8;
  RelatedPostPipeline p8 =
      RelatedPostPipeline::build(analyze_corpus(corpus), parallel);

  // Identical segmentations...
  ASSERT_EQ(p1.segmentations().size(), p8.segmentations().size());
  for (size_t d = 0; d < p1.segmentations().size(); ++d) {
    EXPECT_EQ(p1.segmentations()[d], p8.segmentations()[d]) << "doc " << d;
  }
  // ...identical cluster structure and segment->cluster assignments...
  ASSERT_EQ(p1.clustering().num_clusters(), p8.clustering().num_clusters());
  ASSERT_EQ(p1.clustering().segments().size(),
            p8.clustering().segments().size());
  for (size_t s = 0; s < p1.clustering().segments().size(); ++s) {
    const RefinedSegment& a = p1.clustering().segments()[s];
    const RefinedSegment& b = p8.clustering().segments()[s];
    EXPECT_EQ(a.doc, b.doc);
    EXPECT_EQ(a.cluster, b.cluster);
    EXPECT_EQ(a.ranges, b.ranges);
  }
  // ...and identical top-k rankings (scores included).
  for (DocId q = 0; q < 40; q += 5) {
    auto r1 = p1.find_related(q, 5);
    auto r8 = p8.find_related(q, 5);
    ASSERT_EQ(r1.size(), r8.size()) << "query " << q;
    for (size_t i = 0; i < r1.size(); ++i) {
      EXPECT_EQ(r1[i].doc, r8[i].doc) << "query " << q << " rank " << i;
      EXPECT_DOUBLE_EQ(r1[i].score, r8[i].score);
    }
  }
}

}  // namespace
}  // namespace ibseg
