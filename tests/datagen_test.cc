// Unit tests for src/datagen: the template engine, domain profiles and the
// synthetic forum-post generator (the corpus substitute; see DESIGN.md).

#include <gtest/gtest.h>

#include <set>

#include "datagen/domain_profiles.h"
#include "datagen/post_generator.h"
#include "datagen/template_engine.h"
#include "util/rng.h"

namespace ibseg {
namespace {

TemplatePools test_pools() {
  TemplatePools pools;
  pools.scenario_terms = {"printer", "cartridge", "ink"};
  pools.shared_terms = {"laptop", "system"};
  pools.adjectives = {"fast"};
  pools.generic_terms = {"thing"};
  pools.verbs = {{"check", "checks", "checked", "checking"}};
  return pools;
}

// ------------------------------------------------------- template engine ----

TEST(TemplateEngine, SubstitutesPlaceholders) {
  Rng rng(1);
  std::string out =
      render_template("The {S1} and the {D} look {A}.", test_pools(), rng);
  EXPECT_EQ(out.find('{'), std::string::npos);
  EXPECT_NE(out.find("fast"), std::string::npos);
}

TEST(TemplateEngine, RepeatedPlaceholderReusesDraw) {
  Rng rng(2);
  std::string out = render_template("{S1} then {S1}.", test_pools(), rng);
  // Both occurrences identical: "X then X."
  size_t then = out.find(" then ");
  ASSERT_NE(then, std::string::npos);
  EXPECT_EQ(out.substr(0, then), out.substr(then + 6, then));
}

TEST(TemplateEngine, DistinctScenarioDraws) {
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    std::string out = render_template("{S1}-{S2}", test_pools(), rng);
    size_t dash = out.find('-');
    EXPECT_NE(out.substr(0, dash), out.substr(dash + 1)) << out;
  }
}

TEST(TemplateEngine, VerbFormsBySurfaceCode) {
  Rng rng(4);
  EXPECT_EQ(render_template("{VB}", test_pools(), rng), "check");
  EXPECT_EQ(render_template("{VZ}", test_pools(), rng), "checks");
  EXPECT_EQ(render_template("{VP}", test_pools(), rng), "checked");
  EXPECT_EQ(render_template("{VN}", test_pools(), rng), "checked");
  EXPECT_EQ(render_template("{VG}", test_pools(), rng), "checking");
}

TEST(TemplateEngine, UnknownPlaceholderKeptLiteral) {
  Rng rng(5);
  EXPECT_EQ(render_template("{WAT}", test_pools(), rng), "{WAT}");
}

TEST(TemplateEngine, EmptyPoolsFallBack) {
  Rng rng(6);
  TemplatePools empty;
  std::string out = render_template("{S1} {D} {G} {A} {VB}", empty, rng);
  EXPECT_EQ(out.find('{'), std::string::npos);
}

// -------------------------------------------------------- domain profiles ----

TEST(DomainProfiles, AllDomainsWellFormed) {
  for (ForumDomain domain :
       {ForumDomain::kTechSupport, ForumDomain::kTravel,
        ForumDomain::kProgramming, ForumDomain::kHealth}) {
    const DomainProfile& p = domain_profile(domain);
    EXPECT_GE(p.intentions.size(), 5u) << p.name;
    EXPECT_FALSE(p.shared_terms.empty());
    EXPECT_FALSE(p.adjectives.empty());
    EXPECT_FALSE(p.verbs.empty());
    EXPECT_GE(p.curated_scenarios.size(), 8u);
    EXPECT_FALSE(p.segment_count_weights.empty());
    bool has_core = false;
    bool has_opener = false;
    bool has_background = false;
    for (const IntentionSpec& spec : p.intentions) {
      EXPECT_FALSE(spec.templates.empty()) << spec.name;
      EXPECT_FALSE(spec.labels.empty()) << spec.name;
      has_core |= spec.core;
      has_opener |= spec.opener;
      has_background |= spec.background;
    }
    EXPECT_TRUE(has_core) << p.name;
    EXPECT_TRUE(has_opener) << p.name;
    EXPECT_TRUE(has_background) << p.name;
  }
}

TEST(DomainProfiles, TemplatesAreSingleSentences) {
  // One template must render to exactly one sentence, or the ground-truth
  // borders would disagree with the sentence splitter.
  for (ForumDomain domain :
       {ForumDomain::kTechSupport, ForumDomain::kTravel,
        ForumDomain::kProgramming, ForumDomain::kHealth}) {
    const DomainProfile& p = domain_profile(domain);
    for (const IntentionSpec& spec : p.intentions) {
      for (const std::string& tmpl : spec.templates) {
        // No internal sentence terminators.
        for (size_t i = 0; i + 1 < tmpl.size(); ++i) {
          EXPECT_FALSE(tmpl[i] == '.' || tmpl[i] == '!' || tmpl[i] == '?')
              << p.name << " template: " << tmpl;
        }
        char last = tmpl.back();
        EXPECT_TRUE(last == '.' || last == '?') << tmpl;
      }
    }
  }
}

// --------------------------------------------------------- post generator ----

TEST(PostGenerator, DeterministicForSeed) {
  GeneratorOptions opts;
  opts.num_posts = 30;
  opts.seed = 77;
  SyntheticCorpus a = generate_corpus(opts);
  SyntheticCorpus b = generate_corpus(opts);
  ASSERT_EQ(a.posts.size(), b.posts.size());
  for (size_t i = 0; i < a.posts.size(); ++i) {
    EXPECT_EQ(a.posts[i].text, b.posts[i].text);
    EXPECT_EQ(a.posts[i].true_segmentation, b.posts[i].true_segmentation);
  }
}

TEST(PostGenerator, GroundTruthMatchesSentenceSplitter) {
  // The central integrity property: the generator's sentence counts agree
  // with Document::analyze, so ground-truth borders are directly usable.
  for (ForumDomain domain :
       {ForumDomain::kTechSupport, ForumDomain::kTravel,
        ForumDomain::kProgramming, ForumDomain::kHealth}) {
    GeneratorOptions opts;
    opts.domain = domain;
    opts.num_posts = 80;
    opts.seed = 3;
    SyntheticCorpus corpus = generate_corpus(opts);
    std::vector<Document> docs = analyze_corpus(corpus);
    for (size_t i = 0; i < docs.size(); ++i) {
      EXPECT_EQ(docs[i].num_units(),
                corpus.posts[i].true_segmentation.num_units)
          << forum_domain_name(domain) << " post " << i << ": "
          << corpus.posts[i].text;
      EXPECT_TRUE(corpus.posts[i].true_segmentation.is_valid());
      EXPECT_EQ(corpus.posts[i].segment_intents.size(),
                corpus.posts[i].true_segmentation.num_segments());
    }
  }
}

TEST(PostGenerator, EveryPostHasACoreIntention) {
  GeneratorOptions opts;
  opts.num_posts = 120;
  opts.seed = 4;
  SyntheticCorpus corpus = generate_corpus(opts);
  const DomainProfile& profile = corpus.profile();
  for (const GeneratedPost& post : corpus.posts) {
    bool has_core = false;
    for (int intent : post.segment_intents) {
      has_core |= profile.intentions[static_cast<size_t>(intent)].core;
    }
    EXPECT_TRUE(has_core);
  }
}

TEST(PostGenerator, NoAdjacentDuplicateIntentions) {
  GeneratorOptions opts;
  opts.num_posts = 120;
  opts.seed = 5;
  SyntheticCorpus corpus = generate_corpus(opts);
  for (const GeneratedPost& post : corpus.posts) {
    for (size_t s = 1; s < post.segment_intents.size(); ++s) {
      EXPECT_NE(post.segment_intents[s], post.segment_intents[s - 1]);
    }
  }
}

TEST(PostGenerator, ScenarioAndComponentAssignment) {
  GeneratorOptions opts;
  opts.num_posts = 60;
  opts.posts_per_scenario = 4;
  opts.problems_per_component = 2;
  opts.seed = 6;
  SyntheticCorpus corpus = generate_corpus(opts);
  EXPECT_EQ(corpus.num_scenarios, 15u);
  for (size_t i = 0; i < corpus.posts.size(); ++i) {
    EXPECT_EQ(corpus.posts[i].scenario_id, static_cast<int>(i / 4));
    EXPECT_EQ(corpus.posts[i].component_id,
              corpus.posts[i].scenario_id / 2);
  }
}

TEST(PostGenerator, ContaminantsAreOtherComponents) {
  GeneratorOptions opts;
  opts.num_posts = 90;
  opts.seed = 7;
  SyntheticCorpus corpus = generate_corpus(opts);
  for (const GeneratedPost& post : corpus.posts) {
    for (int c : post.contaminants) {
      EXPECT_NE(c, post.component_id);
    }
    EXPECT_FALSE(post.contaminants.empty());
    EXPECT_EQ(post.contaminant_scenario, post.contaminants.front());
  }
}

TEST(PostGenerator, SameScenarioPostsShareVocabulary) {
  GeneratorOptions opts;
  opts.num_posts = 40;
  opts.posts_per_scenario = 4;
  opts.seed = 8;
  SyntheticCorpus corpus = generate_corpus(opts);
  // Posts 0..3 share scenario 0: their texts overlap on component terms.
  auto words = [](const std::string& text) {
    std::set<std::string> out;
    std::string cur;
    for (char c : text) {
      if (isalpha(static_cast<unsigned char>(c))) {
        cur.push_back(static_cast<char>(tolower(c)));
      } else if (!cur.empty()) {
        out.insert(cur);
        cur.clear();
      }
    }
    if (!cur.empty()) out.insert(cur);
    return out;
  };
  auto w0 = words(corpus.posts[0].text);
  auto w1 = words(corpus.posts[1].text);
  int shared = 0;
  for (const std::string& w : w0) shared += w1.count(w);
  EXPECT_GT(shared, 5);
}

TEST(PostGenerator, SynthesizedScenarioTermsAreStable) {
  auto a = synthesize_scenario_terms(3, 8);
  auto b = synthesize_scenario_terms(3, 8);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 8u);
  std::set<std::string> uniq(a.begin(), a.end());
  EXPECT_EQ(uniq.size(), 8u);
  EXPECT_NE(a, synthesize_scenario_terms(4, 8));
}

TEST(PostGenerator, SegmentCountsFollowDomainMix) {
  GeneratorOptions opts;
  opts.domain = ForumDomain::kProgramming;  // 43% single-segment target
  opts.num_posts = 400;
  opts.seed = 9;
  SyntheticCorpus corpus = generate_corpus(opts);
  size_t singles = 0;
  for (const GeneratedPost& p : corpus.posts) {
    if (p.true_segmentation.num_segments() == 1) ++singles;
  }
  double fraction = static_cast<double>(singles) / corpus.posts.size();
  EXPECT_NEAR(fraction, 0.43, 0.1);
}

}  // namespace
}  // namespace ibseg
