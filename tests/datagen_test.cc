// Unit tests for src/datagen: the template engine, domain profiles and the
// synthetic forum-post generator (the corpus substitute; see DESIGN.md).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "datagen/adversarial.h"
#include "datagen/domain_profiles.h"
#include "datagen/post_generator.h"
#include "datagen/template_engine.h"
#include "util/rng.h"

namespace ibseg {
namespace {

TemplatePools test_pools() {
  TemplatePools pools;
  pools.scenario_terms = {"printer", "cartridge", "ink"};
  pools.shared_terms = {"laptop", "system"};
  pools.adjectives = {"fast"};
  pools.generic_terms = {"thing"};
  pools.verbs = {{"check", "checks", "checked", "checking"}};
  return pools;
}

// ------------------------------------------------------- template engine ----

TEST(TemplateEngine, SubstitutesPlaceholders) {
  Rng rng(1);
  std::string out =
      render_template("The {S1} and the {D} look {A}.", test_pools(), rng);
  EXPECT_EQ(out.find('{'), std::string::npos);
  EXPECT_NE(out.find("fast"), std::string::npos);
}

TEST(TemplateEngine, RepeatedPlaceholderReusesDraw) {
  Rng rng(2);
  std::string out = render_template("{S1} then {S1}.", test_pools(), rng);
  // Both occurrences identical: "X then X."
  size_t then = out.find(" then ");
  ASSERT_NE(then, std::string::npos);
  EXPECT_EQ(out.substr(0, then), out.substr(then + 6, then));
}

TEST(TemplateEngine, DistinctScenarioDraws) {
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    std::string out = render_template("{S1}-{S2}", test_pools(), rng);
    size_t dash = out.find('-');
    EXPECT_NE(out.substr(0, dash), out.substr(dash + 1)) << out;
  }
}

TEST(TemplateEngine, VerbFormsBySurfaceCode) {
  Rng rng(4);
  EXPECT_EQ(render_template("{VB}", test_pools(), rng), "check");
  EXPECT_EQ(render_template("{VZ}", test_pools(), rng), "checks");
  EXPECT_EQ(render_template("{VP}", test_pools(), rng), "checked");
  EXPECT_EQ(render_template("{VN}", test_pools(), rng), "checked");
  EXPECT_EQ(render_template("{VG}", test_pools(), rng), "checking");
}

TEST(TemplateEngine, UnknownPlaceholderKeptLiteral) {
  Rng rng(5);
  EXPECT_EQ(render_template("{WAT}", test_pools(), rng), "{WAT}");
}

TEST(TemplateEngine, EmptyPoolsFallBack) {
  Rng rng(6);
  TemplatePools empty;
  std::string out = render_template("{S1} {D} {G} {A} {VB}", empty, rng);
  EXPECT_EQ(out.find('{'), std::string::npos);
}

// -------------------------------------------------------- domain profiles ----

TEST(DomainProfiles, AllDomainsWellFormed) {
  for (ForumDomain domain :
       {ForumDomain::kTechSupport, ForumDomain::kTravel,
        ForumDomain::kProgramming, ForumDomain::kHealth}) {
    const DomainProfile& p = domain_profile(domain);
    EXPECT_GE(p.intentions.size(), 5u) << p.name;
    EXPECT_FALSE(p.shared_terms.empty());
    EXPECT_FALSE(p.adjectives.empty());
    EXPECT_FALSE(p.verbs.empty());
    EXPECT_GE(p.curated_scenarios.size(), 8u);
    EXPECT_FALSE(p.segment_count_weights.empty());
    bool has_core = false;
    bool has_opener = false;
    bool has_background = false;
    for (const IntentionSpec& spec : p.intentions) {
      EXPECT_FALSE(spec.templates.empty()) << spec.name;
      EXPECT_FALSE(spec.labels.empty()) << spec.name;
      has_core |= spec.core;
      has_opener |= spec.opener;
      has_background |= spec.background;
    }
    EXPECT_TRUE(has_core) << p.name;
    EXPECT_TRUE(has_opener) << p.name;
    EXPECT_TRUE(has_background) << p.name;
  }
}

TEST(DomainProfiles, TemplatesAreSingleSentences) {
  // One template must render to exactly one sentence, or the ground-truth
  // borders would disagree with the sentence splitter.
  for (ForumDomain domain :
       {ForumDomain::kTechSupport, ForumDomain::kTravel,
        ForumDomain::kProgramming, ForumDomain::kHealth}) {
    const DomainProfile& p = domain_profile(domain);
    for (const IntentionSpec& spec : p.intentions) {
      for (const std::string& tmpl : spec.templates) {
        // No internal sentence terminators.
        for (size_t i = 0; i + 1 < tmpl.size(); ++i) {
          EXPECT_FALSE(tmpl[i] == '.' || tmpl[i] == '!' || tmpl[i] == '?')
              << p.name << " template: " << tmpl;
        }
        char last = tmpl.back();
        EXPECT_TRUE(last == '.' || last == '?') << tmpl;
      }
    }
  }
}

// --------------------------------------------------------- post generator ----

TEST(PostGenerator, DeterministicForSeed) {
  GeneratorOptions opts;
  opts.num_posts = 30;
  opts.seed = 77;
  SyntheticCorpus a = generate_corpus(opts);
  SyntheticCorpus b = generate_corpus(opts);
  ASSERT_EQ(a.posts.size(), b.posts.size());
  for (size_t i = 0; i < a.posts.size(); ++i) {
    EXPECT_EQ(a.posts[i].text, b.posts[i].text);
    EXPECT_EQ(a.posts[i].true_segmentation, b.posts[i].true_segmentation);
  }
}

TEST(PostGenerator, GroundTruthMatchesSentenceSplitter) {
  // The central integrity property: the generator's sentence counts agree
  // with Document::analyze, so ground-truth borders are directly usable.
  for (ForumDomain domain :
       {ForumDomain::kTechSupport, ForumDomain::kTravel,
        ForumDomain::kProgramming, ForumDomain::kHealth}) {
    GeneratorOptions opts;
    opts.domain = domain;
    opts.num_posts = 80;
    opts.seed = 3;
    SyntheticCorpus corpus = generate_corpus(opts);
    std::vector<Document> docs = analyze_corpus(corpus);
    for (size_t i = 0; i < docs.size(); ++i) {
      EXPECT_EQ(docs[i].num_units(),
                corpus.posts[i].true_segmentation.num_units)
          << forum_domain_name(domain) << " post " << i << ": "
          << corpus.posts[i].text;
      EXPECT_TRUE(corpus.posts[i].true_segmentation.is_valid());
      EXPECT_EQ(corpus.posts[i].segment_intents.size(),
                corpus.posts[i].true_segmentation.num_segments());
    }
  }
}

TEST(PostGenerator, EveryPostHasACoreIntention) {
  GeneratorOptions opts;
  opts.num_posts = 120;
  opts.seed = 4;
  SyntheticCorpus corpus = generate_corpus(opts);
  const DomainProfile& profile = corpus.profile();
  for (const GeneratedPost& post : corpus.posts) {
    bool has_core = false;
    for (int intent : post.segment_intents) {
      has_core |= profile.intentions[static_cast<size_t>(intent)].core;
    }
    EXPECT_TRUE(has_core);
  }
}

TEST(PostGenerator, NoAdjacentDuplicateIntentions) {
  GeneratorOptions opts;
  opts.num_posts = 120;
  opts.seed = 5;
  SyntheticCorpus corpus = generate_corpus(opts);
  for (const GeneratedPost& post : corpus.posts) {
    for (size_t s = 1; s < post.segment_intents.size(); ++s) {
      EXPECT_NE(post.segment_intents[s], post.segment_intents[s - 1]);
    }
  }
}

TEST(PostGenerator, ScenarioAndComponentAssignment) {
  GeneratorOptions opts;
  opts.num_posts = 60;
  opts.posts_per_scenario = 4;
  opts.problems_per_component = 2;
  opts.seed = 6;
  SyntheticCorpus corpus = generate_corpus(opts);
  EXPECT_EQ(corpus.num_scenarios, 15u);
  for (size_t i = 0; i < corpus.posts.size(); ++i) {
    EXPECT_EQ(corpus.posts[i].scenario_id, static_cast<int>(i / 4));
    EXPECT_EQ(corpus.posts[i].component_id,
              corpus.posts[i].scenario_id / 2);
  }
}

TEST(PostGenerator, ContaminantsAreOtherComponents) {
  GeneratorOptions opts;
  opts.num_posts = 90;
  opts.seed = 7;
  SyntheticCorpus corpus = generate_corpus(opts);
  for (const GeneratedPost& post : corpus.posts) {
    for (int c : post.contaminants) {
      EXPECT_NE(c, post.component_id);
    }
    EXPECT_FALSE(post.contaminants.empty());
    EXPECT_EQ(post.contaminant_scenario, post.contaminants.front());
  }
}

TEST(PostGenerator, SameScenarioPostsShareVocabulary) {
  GeneratorOptions opts;
  opts.num_posts = 40;
  opts.posts_per_scenario = 4;
  opts.seed = 8;
  SyntheticCorpus corpus = generate_corpus(opts);
  // Posts 0..3 share scenario 0: their texts overlap on component terms.
  auto words = [](const std::string& text) {
    std::set<std::string> out;
    std::string cur;
    for (char c : text) {
      if (isalpha(static_cast<unsigned char>(c))) {
        cur.push_back(static_cast<char>(tolower(c)));
      } else if (!cur.empty()) {
        out.insert(cur);
        cur.clear();
      }
    }
    if (!cur.empty()) out.insert(cur);
    return out;
  };
  auto w0 = words(corpus.posts[0].text);
  auto w1 = words(corpus.posts[1].text);
  int shared = 0;
  for (const std::string& w : w0) shared += w1.count(w);
  EXPECT_GT(shared, 5);
}

TEST(PostGenerator, SynthesizedScenarioTermsAreStable) {
  auto a = synthesize_scenario_terms(3, 8);
  auto b = synthesize_scenario_terms(3, 8);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 8u);
  std::set<std::string> uniq(a.begin(), a.end());
  EXPECT_EQ(uniq.size(), 8u);
  EXPECT_NE(a, synthesize_scenario_terms(4, 8));
}

TEST(PostGenerator, SegmentCountsFollowDomainMix) {
  GeneratorOptions opts;
  opts.domain = ForumDomain::kProgramming;  // 43% single-segment target
  opts.num_posts = 400;
  opts.seed = 9;
  SyntheticCorpus corpus = generate_corpus(opts);
  size_t singles = 0;
  for (const GeneratedPost& p : corpus.posts) {
    if (p.true_segmentation.num_segments() == 1) ++singles;
  }
  double fraction = static_cast<double>(singles) / corpus.posts.size();
  EXPECT_NEAR(fraction, 0.43, 0.1);
}

// ------------------------- adversarial CQA workloads (adversarial.h) ----

TEST(Adversarial, ProfilesAreDeterministicAndWellFormed) {
  for (const AdversarialCorpus& profile : all_adversarial_profiles(96)) {
    SCOPED_TRACE(profile.name);
    EXPECT_FALSE(profile.corpus.posts.empty());
    EXPECT_FALSE(profile.queries.empty());
    EXPECT_LE(profile.offline_posts, profile.corpus.posts.size());
    EXPECT_GT(profile.max_mean_prec5, 0.0);
    EXPECT_LE(profile.max_mean_prec5, 1.0);
    for (DocId q : profile.queries) {
      EXPECT_LT(q, profile.corpus.posts.size());
    }
  }
  // Deterministic in the seed: same call, same texts and ground truth.
  AdversarialCorpus a = generate_near_duplicate_pairs(60, 7);
  AdversarialCorpus b = generate_near_duplicate_pairs(60, 7);
  ASSERT_EQ(a.corpus.posts.size(), b.corpus.posts.size());
  for (size_t i = 0; i < a.corpus.posts.size(); ++i) {
    EXPECT_EQ(a.corpus.posts[i].text, b.corpus.posts[i].text);
    EXPECT_EQ(a.corpus.posts[i].scenario_id, b.corpus.posts[i].scenario_id);
  }
  EXPECT_NE(a.corpus.posts[0].text,
            generate_near_duplicate_pairs(60, 8).corpus.posts[0].text);
}

TEST(Adversarial, NearDuplicatesAreExactPairs) {
  AdversarialCorpus profile = generate_near_duplicate_pairs(80);
  std::map<int, size_t> scenario_sizes;
  for (const GeneratedPost& p : profile.corpus.posts) {
    ++scenario_sizes[p.scenario_id];
  }
  for (const auto& [scenario, size] : scenario_sizes) {
    EXPECT_EQ(size, 2u) << "scenario " << scenario;
  }
  // Every post is a query with exactly one relevant answer — max
  // meanPrec@5 is 0.2 by construction.
  EXPECT_EQ(profile.queries.size(), profile.corpus.posts.size());
  EXPECT_NEAR(profile.max_mean_prec5, 0.2, 1e-9);
  // The pair's twins share their component (hard negatives exist): four
  // pairs per component.
  std::map<int, std::set<int>> component_scenarios;
  for (const GeneratedPost& p : profile.corpus.posts) {
    component_scenarios[p.component_id].insert(p.scenario_id);
  }
  bool some_component_packed = false;
  for (const auto& [component, scenarios] : component_scenarios) {
    if (scenarios.size() >= 4) some_component_packed = true;
  }
  EXPECT_TRUE(some_component_packed);
}

TEST(Adversarial, BurstyStreamIsContiguousPerHotThread) {
  AdversarialCorpus profile = generate_bursty_hot_topics(120, 1602, 3);
  ASSERT_LT(profile.offline_posts, profile.corpus.posts.size());
  // Offline prefix holds no hot-scenario post; the stream is grouped so
  // each hot thread arrives as one contiguous burst.
  std::set<int> hot;
  for (size_t i = profile.offline_posts; i < profile.corpus.posts.size();
       ++i) {
    hot.insert(profile.corpus.posts[i].scenario_id);
  }
  EXPECT_EQ(hot.size(), 3u);
  for (size_t i = 0; i < profile.offline_posts; ++i) {
    EXPECT_EQ(hot.count(profile.corpus.posts[i].scenario_id), 0u);
  }
  int runs = 0;
  int previous = -1;
  for (size_t i = profile.offline_posts; i < profile.corpus.posts.size();
       ++i) {
    if (profile.corpus.posts[i].scenario_id != previous) {
      ++runs;
      previous = profile.corpus.posts[i].scenario_id;
    }
  }
  EXPECT_EQ(runs, 3);  // one contiguous run per hot thread
  // Queries cover both sides of the burst boundary.
  bool steady_query = false;
  bool burst_query = false;
  for (DocId q : profile.queries) {
    (q < profile.offline_posts ? steady_query : burst_query) = true;
  }
  EXPECT_TRUE(steady_query);
  EXPECT_TRUE(burst_query);
}

TEST(Adversarial, CrossDomainGroundTruthNeverCrossesDomains) {
  AdversarialCorpus profile = generate_cross_domain_confounders(100);
  // The two halves use disjoint scenario and component id ranges, so no
  // cross-domain pair is related and component grades never cross either.
  size_t tech_posts = 0;
  int max_tech_scenario = -1;
  for (const GeneratedPost& p : profile.corpus.posts) {
    if (p.component_id < (1 << 20)) {
      ++tech_posts;
      max_tech_scenario = std::max(max_tech_scenario, p.scenario_id);
    }
  }
  EXPECT_EQ(tech_posts, 50u);
  for (const GeneratedPost& p : profile.corpus.posts) {
    if (p.component_id >= (1 << 20)) {
      EXPECT_GT(p.scenario_id, max_tech_scenario);
      for (int c : p.contaminants) EXPECT_GT(c, max_tech_scenario);
    }
  }
  // num_scenarios spans both halves and no scenario id escapes it.
  int max_scenario = -1;
  for (const GeneratedPost& p : profile.corpus.posts) {
    max_scenario = std::max(max_scenario, p.scenario_id);
  }
  EXPECT_GT(profile.corpus.num_scenarios,
            static_cast<size_t>(max_tech_scenario) + 1);
  EXPECT_LT(static_cast<size_t>(max_scenario), profile.corpus.num_scenarios);
  // Everything was built offline; queries sample both halves.
  EXPECT_EQ(profile.offline_posts, profile.corpus.posts.size());
  bool tech_query = false;
  bool travel_query = false;
  for (DocId q : profile.queries) {
    (profile.corpus.posts[q].component_id < (1 << 20) ? tech_query
                                                      : travel_query) = true;
  }
  EXPECT_TRUE(tech_query);
  EXPECT_TRUE(travel_query);
}

}  // namespace
}  // namespace ibseg
