// Unit tests for src/cluster: Eq. 5/6 feature vectors, VP-tree, DBSCAN,
// k-means and the intention clustering with segmentation refinement.

#include <gtest/gtest.h>

#include <set>

#include "cluster/dbscan.h"
#include "cluster/feature_vector.h"
#include "cluster/intention_clusters.h"
#include "cluster/kmeans.h"
#include "cluster/vp_tree.h"
#include "seg/document.h"
#include "util/rng.h"
#include "util/vector_math.h"

namespace ibseg {
namespace {

// Three well-separated 2-D blobs.
std::vector<std::vector<double>> three_blobs(size_t per_blob, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> points;
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (int b = 0; b < 3; ++b) {
    for (size_t i = 0; i < per_blob; ++i) {
      points.push_back({centers[b][0] + rng.next_gaussian(0, 0.3),
                        centers[b][1] + rng.next_gaussian(0, 0.3)});
    }
  }
  return points;
}

// -------------------------------------------------------- feature vector ----

TEST(FeatureVector, FirstTypeIsPerCmDistribution) {
  Document d = Document::analyze(
      0, "I installed it yesterday. We replaced the cable.");
  auto f = segment_feature_vector(d, 0, d.num_units());
  ASSERT_EQ(f.size(), static_cast<size_t>(kSegmentFeatureDims));
  // Eq. 5: each CM's slice sums to 1 (when the CM occurs) and lies in [0,1].
  int idx = 0;
  for (int c = 0; c < kNumCms; ++c) {
    double sum = 0.0;
    for (int v = 0; v < kCmArity[c]; ++v) {
      EXPECT_GE(f[idx], 0.0);
      EXPECT_LE(f[idx], 1.0);
      sum += f[idx++];
    }
    EXPECT_TRUE(sum == 0.0 || std::abs(sum - 1.0) < 1e-9) << "cm " << c;
  }
}

TEST(FeatureVector, SecondTypeDocRatioInUnitRange) {
  Document d = Document::analyze(
      0, "I installed it yesterday. We replaced the cable. It works now.");
  auto f = segment_feature_vector(d, 0, 1);
  for (int i = kNumCmFeatures; i < kSegmentFeatureDims; ++i) {
    EXPECT_GE(f[i], 0.0);
    EXPECT_LE(f[i], 1.0 + 1e-9);
  }
  // Whole-document segment: every ratio is 0 or 1.
  auto whole = segment_feature_vector(d, 0, d.num_units());
  for (int i = kNumCmFeatures; i < kSegmentFeatureDims; ++i) {
    EXPECT_TRUE(whole[i] == 0.0 || std::abs(whole[i] - 1.0) < 1e-9);
  }
}

TEST(FeatureVector, RawCountVariant) {
  Document d = Document::analyze(0, "I installed it. I replaced it.");
  FeatureVectorOptions opts;
  opts.second_type = FeatureVectorOptions::SecondType::kRawCount;
  auto f = segment_feature_vector(d, 0, d.num_units(), opts);
  // Raw counts can exceed 1 (e.g. two past-tense verb groups).
  double max_second = 0.0;
  for (int i = kNumCmFeatures; i < kSegmentFeatureDims; ++i) {
    max_second = std::max(max_second, f[i]);
  }
  EXPECT_GT(max_second, 1.0);
}

TEST(FeatureVector, MultiRangeEqualsMergedRange) {
  Document d = Document::analyze(
      0, "I installed it. We replaced the cable. It works. They left.");
  auto split = segment_feature_vector(d, {{0, 1}, {2, 4}});
  // Compare against a contiguous computation over the union profile.
  CmProfile merged = d.range_profile(0, 1);
  merged.merge(d.range_profile(2, 4));
  // First-type slice of `split` must match distribution of `merged`.
  int idx = 0;
  for (int c = 0; c < kNumCms; ++c) {
    CmKind cm = static_cast<CmKind>(c);
    double total = merged.cm_total(cm);
    for (int v = 0; v < kCmArity[c]; ++v) {
      double expected = total > 0.0 ? merged.count(cm, v) / total : 0.0;
      EXPECT_NEAR(split[idx++], expected, 1e-9);
    }
  }
}

// --------------------------------------------------------------- vp tree ----

TEST(VpTree, RangeQueryMatchesBruteForce) {
  auto points = three_blobs(40, 5);
  VpTree tree(points);
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    size_t q = rng.next_below(points.size());
    double eps = 0.5 + rng.next_double() * 10.0;
    std::vector<size_t> got;
    tree.range_query(points[q], eps, &got);
    std::set<size_t> got_set(got.begin(), got.end());
    std::set<size_t> want;
    for (size_t i = 0; i < points.size(); ++i) {
      if (euclidean_distance(points[q], points[i]) <= eps) want.insert(i);
    }
    EXPECT_EQ(got_set, want) << "trial " << trial;
  }
}

TEST(VpTree, KthNeighborDistance) {
  std::vector<std::vector<double>> points = {
      {0.0}, {1.0}, {2.0}, {4.0}, {8.0}};
  VpTree tree(points);
  EXPECT_DOUBLE_EQ(tree.kth_neighbor_distance(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(tree.kth_neighbor_distance(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(tree.kth_neighbor_distance(0, 4), 8.0);
}

// ---------------------------------------------------------------- dbscan ----

TEST(Dbscan, FindsThreeBlobs) {
  auto points = three_blobs(50, 1);
  DbscanParams params;
  params.eps = 1.5;
  params.min_pts = 5;
  DbscanResult r = dbscan(points, params);
  EXPECT_EQ(r.num_clusters, 3);
  // Points of a blob share a label.
  for (size_t b = 0; b < 3; ++b) {
    int label = r.labels[b * 50];
    EXPECT_GE(label, 0);
    for (size_t i = 0; i < 50; ++i) EXPECT_EQ(r.labels[b * 50 + i], label);
  }
}

TEST(Dbscan, IsolatedPointIsNoise) {
  auto points = three_blobs(30, 2);
  points.push_back({100.0, 100.0});
  DbscanParams params;
  params.eps = 1.5;
  params.min_pts = 5;
  DbscanResult r = dbscan(points, params);
  EXPECT_EQ(r.labels.back(), kNoise);
}

TEST(Dbscan, AutoEpsFindsStructure) {
  auto points = three_blobs(50, 3);
  DbscanParams params;  // eps auto
  DbscanResult r = dbscan(points, params);
  EXPECT_GE(r.num_clusters, 3);
  EXPECT_GT(r.eps_used, 0.0);
}

TEST(Dbscan, Deterministic) {
  auto points = three_blobs(40, 4);
  DbscanParams params;
  params.eps = 1.5;
  params.min_pts = 4;
  DbscanResult a = dbscan(points, params);
  DbscanResult b = dbscan(points, params);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(Dbscan, EmptyInput) {
  DbscanResult r = dbscan({}, {});
  EXPECT_TRUE(r.labels.empty());
  EXPECT_EQ(r.num_clusters, 0);
}

// ---------------------------------------------------------------- kmeans ----

TEST(KMeans, SeparatesBlobs) {
  auto points = three_blobs(40, 6);
  KMeansParams params;
  params.k = 3;
  KMeansResult r = kmeans(points, params);
  ASSERT_EQ(r.centroids.size(), 3u);
  // Each blob maps to a single cluster.
  for (size_t b = 0; b < 3; ++b) {
    int label = r.labels[b * 40];
    for (size_t i = 0; i < 40; ++i) EXPECT_EQ(r.labels[b * 40 + i], label);
  }
  EXPECT_LT(r.inertia, 100.0);
}

TEST(KMeans, FewerPointsThanK) {
  std::vector<std::vector<double>> points = {{0.0}, {5.0}};
  KMeansParams params;
  params.k = 5;
  KMeansResult r = kmeans(points, params);
  EXPECT_EQ(r.centroids.size(), 2u);
}

TEST(KMeans, DeterministicForSeed) {
  auto points = three_blobs(30, 7);
  KMeansParams params;
  params.k = 3;
  EXPECT_EQ(kmeans(points, params).labels, kmeans(points, params).labels);
}

// -------------------------------------------------- intention clustering ----

std::vector<Document> make_two_intent_corpus(size_t n) {
  std::vector<Document> docs;
  for (size_t i = 0; i < n; ++i) {
    // Every doc: a descriptive present-tense segment, then questions.
    docs.push_back(Document::analyze(
        static_cast<DocId>(i),
        "I have a fast laptop and it runs a printer. "
        "The system uses a long cable and the drive works. "
        "Can you replace the printer? "
        "What should I do about the cable?"));
  }
  return docs;
}

TEST(IntentionClustering, RefinementKeepsOneSegmentPerDocPerCluster) {
  auto docs = make_two_intent_corpus(30);
  std::vector<Segmentation> segs(docs.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    segs[d] = Segmentation::all_units(docs[d].num_units());
  }
  auto clustering = IntentionClustering::build(docs, segs);
  ASSERT_GE(clustering.num_clusters(), 1);
  std::set<std::pair<DocId, int>> seen;
  for (const RefinedSegment& s : clustering.segments()) {
    auto key = std::make_pair(s.doc, s.cluster);
    EXPECT_TRUE(seen.insert(key).second)
        << "doc " << s.doc << " has two segments in cluster " << s.cluster;
    EXPECT_GE(s.num_units(), 1u);
  }
}

TEST(IntentionClustering, EveryInputSegmentIsCovered) {
  auto docs = make_two_intent_corpus(20);
  std::vector<Segmentation> segs(docs.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    segs[d] = Segmentation{docs[d].num_units(), {2}};
  }
  auto clustering = IntentionClustering::build(docs, segs);
  // Units covered by refined segments == total units.
  size_t covered = 0;
  for (const RefinedSegment& s : clustering.segments()) {
    covered += s.num_units();
  }
  size_t total = 0;
  for (const Document& d : docs) total += d.num_units();
  EXPECT_EQ(covered, total);
}

TEST(IntentionClustering, FromLabelsRespectsLabels) {
  auto docs = make_two_intent_corpus(10);
  std::vector<Segmentation> segs(docs.size());
  std::vector<int> labels;
  for (size_t d = 0; d < docs.size(); ++d) {
    segs[d] = Segmentation{docs[d].num_units(), {2}};
    labels.push_back(0);  // first segment -> cluster 0
    labels.push_back(1);  // second -> cluster 1
  }
  auto clustering = IntentionClustering::from_labels(docs, segs, labels, 2);
  EXPECT_EQ(clustering.num_clusters(), 2);
  EXPECT_EQ(clustering.cluster_members()[0].size(), docs.size());
  EXPECT_EQ(clustering.cluster_members()[1].size(), docs.size());
  for (const RefinedSegment& s : clustering.segments()) {
    if (s.cluster == 0) {
      EXPECT_EQ(s.ranges.front().first, 0u);
    } else {
      EXPECT_EQ(s.ranges.front().first, 2u);
    }
  }
}

TEST(IntentionClustering, NonAdjacentSameClusterSegmentsConcatenate) {
  auto docs = make_two_intent_corpus(6);
  std::vector<Segmentation> segs(docs.size());
  std::vector<int> labels;
  for (size_t d = 0; d < docs.size(); ++d) {
    segs[d] = Segmentation{docs[d].num_units(), {1, 2, 3}};  // 4 segments
    labels.push_back(0);
    labels.push_back(1);
    labels.push_back(0);  // same cluster as the first, non-adjacent
    labels.push_back(1);
  }
  auto clustering = IntentionClustering::from_labels(docs, segs, labels, 2);
  for (const RefinedSegment& s : clustering.segments()) {
    EXPECT_EQ(s.ranges.size(), 2u);  // each refined segment holds 2 ranges
    EXPECT_EQ(s.num_units(), 2u);
  }
}

TEST(IntentionClustering, CentroidsHaveFeatureDims) {
  auto docs = make_two_intent_corpus(15);
  std::vector<Segmentation> segs(docs.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    segs[d] = Segmentation{docs[d].num_units(), {2}};
  }
  auto clustering = IntentionClustering::build(docs, segs);
  for (const auto& c : clustering.centroids()) {
    EXPECT_EQ(c.size(), static_cast<size_t>(kSegmentFeatureDims));
  }
}

TEST(IntentionClustering, EmptyCorpus) {
  auto clustering = IntentionClustering::build({}, {});
  EXPECT_EQ(clustering.num_clusters(), 0);
  EXPECT_TRUE(clustering.segments().empty());
}

}  // namespace
}  // namespace ibseg
