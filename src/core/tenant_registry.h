#ifndef IBSEG_CORE_TENANT_REGISTRY_H_
#define IBSEG_CORE_TENANT_REGISTRY_H_

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/sharded_serving.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

/// \file
/// TenantRegistry: N fully isolated ShardedServing corpora (one per forum
/// / tenant) behind one process (docs/ARCHITECTURE.md §11). Each tenant
/// owns its documents, vocabulary, statistics board, query cache,
/// snapshots, WALs and offline generation; tenants share only the scatter
/// thread pool and the process-wide metrics registry (where every
/// per-instance series carries a `tenant` label). The network front-end
/// (net/server.h) routes connection-bound requests here.

namespace ibseg {

/// Configuration of a multi-tenant deployment. `serving` is a template:
/// the registry stamps the per-tenant fields (tenant label, persist
/// directory, shared scatter pool) onto a copy for each tenant, so cache
/// capacity / shard count / recluster policy apply uniformly.
struct TenantRegistryOptions {
  /// Root of the durable state tree. Each tenant persists under
  /// `<state_root>/tenant-<name>/` (its own snapshots + WALs + MANIFEST —
  /// there is no cross-tenant commit point, by design: tenants are
  /// independent failure domains). Empty disables persistence for every
  /// tenant.
  std::string state_root;
  /// Offline/build configuration shared by all tenants.
  PipelineOptions pipeline;
  /// Per-tenant serving template (see above).
  ServingOptions serving;
  /// Threads in the shared scatter pool. 0 sizes it to
  /// serving.num_shards; the pool is only created when the resulting size
  /// is > 1 (single-shard tenants scatter inline).
  size_t scatter_threads = 0;
};

/// Owns the tenant set. The set is fixed at open() — lookups after that
/// are lock-free and safe from any thread, which is what lets the
/// server's I/O thread resolve tenants without a registry mutex. Every
/// registry always contains the default tenant `"default"`: a connection
/// that never sends TENANT_OPEN operates on it, which is how pre-tenant
/// clients keep working byte-identically.
class TenantRegistry {
 public:
  /// Name of the implicit tenant every registry contains.
  static constexpr const char* kDefaultTenant = "default";
  /// Upper bound on tenant-name length, matched by the wire limit
  /// (net/frame.h kMaxTenantNameBytes — server.cc asserts they agree).
  static constexpr size_t kMaxNameBytes = 128;

  /// A tenant name must be usable verbatim as a directory component and a
  /// metric label: 1..kMaxNameBytes bytes of [A-Za-z0-9_-] only (no '/',
  /// no '.', so no traversal and no hidden files).
  static bool valid_name(const std::string& name);

  /// `<root>/tenant-<name>` — the tenant's durable state directory
  /// (empty when root is empty).
  static std::string tenant_dir(const std::string& root,
                                const std::string& name);

  /// Seed corpus factory, called once per tenant that has no durable
  /// state to restore. Tenants must be seeded non-empty: the offline
  /// phase needs documents to cluster.
  using SeedProvider =
      std::function<std::vector<Document>(const std::string& name)>;

  /// Opens every tenant in `names` (kDefaultTenant is added when absent;
  /// duplicates are collapsed). Per tenant: restore from
  /// tenant_dir(state_root, name) when a MANIFEST exists there, else
  /// build fresh from seed(name). Returns nullptr when any name is
  /// invalid or any tenant fails to restore/build — all-or-nothing, no
  /// partially open registry.
  static std::unique_ptr<TenantRegistry> open(
      const TenantRegistryOptions& options, std::vector<std::string> names,
      const SeedProvider& seed);

  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  /// The tenant's backend, or nullptr for an unknown name. Lock-free.
  ShardedServing* find(const std::string& name) const;

  /// Backend of kDefaultTenant (never nullptr on an open registry).
  ShardedServing* default_backend() const { return find(kDefaultTenant); }

  /// The tenant's durable state directory ("" when persistence is off or
  /// the name is unknown).
  std::string state_dir(const std::string& name) const;

  /// Tenant names in sorted order.
  std::vector<std::string> names() const;

  /// Number of tenants (>= 1: the default tenant always exists).
  size_t size() const { return tenants_.size(); }

  /// Saves one tenant into its own state directory. False when the name
  /// is unknown, persistence is off, or the save fails.
  bool save(const std::string& name);

  /// Saves every tenant; false if any save failed (all are attempted —
  /// tenants are independent failure domains).
  bool save_all();

  /// Bumps ibseg_tenant_queries_total{tenant}. Unknown names are ignored.
  void count_query(const std::string& name);

  /// Refreshes every ibseg_tenant_docs{tenant} gauge from the live
  /// corpus sizes (takes each tenant's shared lock briefly).
  void refresh_doc_gauges();

  /// Refreshes one tenant's ibseg_tenant_docs gauge (the server calls
  /// this after each ingest). Unknown names are ignored.
  void refresh_doc_gauge(const std::string& name);

  /// The shared scatter pool (nullptr when every tenant is single-shard).
  ThreadPool* scatter_pool() const { return pool_.get(); }

 private:
  TenantRegistry() = default;

  struct Tenant {
    std::unique_ptr<ShardedServing> serving;
    std::string dir;                   ///< "" when persistence is off
    obs::Counter* queries = nullptr;   ///< ibseg_tenant_queries_total
    obs::Gauge* docs = nullptr;        ///< ibseg_tenant_docs
  };

  /// Declared before tenants_ on purpose: members destroy in reverse
  /// order, and every serving object borrows this pool, so it must
  /// outlive them all.
  std::unique_ptr<ThreadPool> pool_;
  /// Immutable after open() — that immutability is the thread-safety
  /// contract for find()/state_dir()/names().
  std::map<std::string, Tenant> tenants_;
};

}  // namespace ibseg

#endif  // IBSEG_CORE_TENANT_REGISTRY_H_
