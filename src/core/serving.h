#ifndef IBSEG_CORE_SERVING_H_
#define IBSEG_CORE_SERVING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/query_cache.h"

namespace ibseg {

/// Serving-layer configuration (everything beyond the wrapped pipeline's
/// own build options).
struct ServingOptions {
  /// Result cache for in-corpus find_related queries. capacity 0 (the
  /// default) disables caching entirely — no cache is constructed.
  QueryCacheOptions cache;
};

/// Concurrent serving facade over RelatedPostPipeline: the layer a
/// multi-client deployment talks to. Forum workloads are ingest-heavy —
/// queries must keep flowing while new posts stream in — so the design is
/// a reader/writer split with all expensive per-post work hoisted outside
/// the critical sections:
///
///  * Queries (find_related, find_related_external) run under a shared
///    lock. The underlying pipeline's whole query path is strictly const,
///    so any number of query threads proceed concurrently. For external
///    queries, segmentation of the query post — the dominant cost — happens
///    before the lock is taken; only index probing is inside it.
///  * Ingests (add_post, add_posts) reserve a fresh id with an atomic
///    counter, then analyze + segment the post with no lock held, and take
///    the exclusive lock only for index publication. add_posts publishes a
///    whole batch under one lock acquisition.
///
/// Publication semantics: `epoch()` counts published documents. A query
/// result carries the epoch and corpus size observed under its shared
/// lock, so `num_docs == seed_docs + epoch` holds for every query — the
/// invariant the concurrency stress suite checks. Queries never observe a
/// half-published post: either all of a post's segments (and its
/// vocabulary entries, norms and postings) are visible, or none are.
/// Documents are never removed, so anything a query returns stays
/// queryable afterwards.
class ServingPipeline {
 public:
  /// Wraps an offline-built pipeline (moved in). The pipeline must not be
  /// accessed through any other handle afterwards.
  explicit ServingPipeline(RelatedPostPipeline pipeline,
                           ServingOptions options = {});

  ServingPipeline(const ServingPipeline&) = delete;
  ServingPipeline& operator=(const ServingPipeline&) = delete;

  /// A query answer plus the snapshot coordinates it was computed under.
  struct QueryResult {
    std::vector<ScoredDoc> results;
    /// Number of documents published (via add_post/add_posts) at the
    /// moment the query held the read lock.
    uint64_t epoch = 0;
    /// Corpus size at the same moment; always seed_docs() + epoch.
    size_t num_docs = 0;
  };

  /// Top-k related posts for an in-corpus reference post (Algorithm 2).
  /// With a cache configured, a repeated (query, k) whose entry was
  /// filled at the current publication epoch is answered without taking
  /// the shared lock; any ingest publish bumps the epoch and thereby
  /// invalidates every prior entry, so a hit is never staler than a
  /// lock-taking query issued at the same moment.
  QueryResult find_related(DocId query, int k) const;

  /// Batched find_related: result[i] answers queries[i]. Cache hits are
  /// collected first (lock-free); the misses are computed under ONE
  /// shared-lock acquisition via IntentionMatcher::find_related_batch,
  /// which pipelines them across the matcher's query pool when
  /// MatcherOptions::query_threads > 1. Each result is identical to a
  /// per-query find_related call.
  std::vector<QueryResult> find_related_batch(
      const std::vector<DocId>& queries, int k) const;

  /// Top-k related posts for an external (non-ingested) post. The post is
  /// segmented outside the lock.
  QueryResult find_related_external(const Document& doc, int k) const;

  /// Ingests one post; returns its (globally unique, monotonically
  /// reserved) document id. Analysis and segmentation run without the
  /// write lock; only publication is exclusive.
  DocId add_post(std::string text);

  /// Batched ingestion: every post is prepared lock-free, then the whole
  /// batch is published under a single exclusive acquisition — concurrent
  /// queries observe either none or all of the batch.
  std::vector<DocId> add_posts(std::vector<std::string> texts);

  /// Number of documents published since construction. Monotone.
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// Corpus size the pipeline was built with (before any online ingest).
  size_t seed_docs() const { return seed_docs_; }

  /// Current corpus size (seed_docs() + epoch(), read consistently).
  size_t num_docs() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return pipeline_.docs().size();
  }

  /// Upper bound on handed-out ids: every id add_post has reserved is
  /// < next_id(). (Reservation precedes publication, so an id may be below
  /// this bound yet not published for a short window.)
  DocId next_id() const { return next_id_.load(std::memory_order_relaxed); }

  /// Direct read access to the wrapped pipeline. Only valid while no
  /// writer is running (e.g. after joining all ingest threads in a test,
  /// or during single-threaded shutdown inspection).
  const RelatedPostPipeline& quiescent() const { return pipeline_; }

  /// The result cache, or nullptr when disabled (capacity 0). Exposed
  /// for stats (hits/misses/evictions/size); the cache is thread-safe.
  const QueryCache* query_cache() const { return cache_.get(); }

 private:
  /// Lock-free half of ingestion: analyze + segment with the serving
  /// layer's own segmenter copy, never touching guarded pipeline state.
  PreparedPost prepare(DocId id, std::string text) const;

  mutable std::shared_mutex mu_;
  RelatedPostPipeline pipeline_;  ///< guarded by mu_
  const Segmenter segmenter_;     ///< immutable copy for lock-free prep
  const size_t seed_docs_;
  std::atomic<DocId> next_id_;
  std::atomic<uint64_t> epoch_{0};
  /// Result cache (nullptr = disabled). Entries are validated against
  /// epoch_ on lookup, so writers never touch it.
  mutable std::unique_ptr<QueryCache> cache_;
  /// Fingerprint of the wrapped matcher's options, precomputed once —
  /// the third cache-key component.
  uint64_t matcher_fingerprint_ = 0;
};

}  // namespace ibseg

#endif  // IBSEG_CORE_SERVING_H_
