#ifndef IBSEG_CORE_SERVING_H_
#define IBSEG_CORE_SERVING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/query_cache.h"
#include "storage/wal.h"

/// \file
/// ServingPipeline: the concurrent serving facade over
/// RelatedPostPipeline — shared_mutex reader/writer discipline, a
/// publication epoch per ingest, the epoch-invalidated query cache, and
/// the WAL/snapshot persistence hooks (docs/ARCHITECTURE.md §3, §5).

namespace ibseg {

/// Durability configuration for the serving layer (see also
/// ServingPipeline::save/restore and docs/ARCHITECTURE.md §5).
struct ServingPersistOptions {
  /// Path of the write-ahead ingest log. Empty (the default) disables the
  /// WAL entirely. When set, the constructor replays any complete records
  /// already in the file (warm restart / crash recovery) and every
  /// subsequent add_post/add_posts appends to it *before* publication.
  std::string wal_path;
  /// fsync policy for WAL appends (WalFsync::kEveryAppend by default —
  /// strongest; see the fsync policy table in docs/ARCHITECTURE.md).
  WalOptions wal;
  /// Root directory of a *sharded* deployment's durable state (per-shard
  /// WALs, publication journal, snapshots + manifest on save). Consumed by
  /// ShardedServing only — a plain ServingPipeline uses wal_path and
  /// ignores this; ShardedServing uses this and ignores wal_path. Empty
  /// (the default) disables sharded persistence.
  std::string shard_dir;
};

/// Serving-layer configuration (everything beyond the wrapped pipeline's
/// own build options).
struct ServingOptions {
  /// Result cache for in-corpus find_related queries. capacity 0 (the
  /// default) disables caching entirely — no cache is constructed.
  QueryCacheOptions cache;
  /// Snapshot + WAL durability (off by default).
  ServingPersistOptions persist;
  /// Number of document-partitioned shards. Consumed by
  /// ShardedServing::create (core/sharded_serving.h) — a plain
  /// ServingPipeline is always a single partition and ignores the field.
  /// Values <= 1 mean unsharded.
  int num_shards = 1;
};

/// Concurrent serving facade over RelatedPostPipeline: the layer a
/// multi-client deployment talks to. Forum workloads are ingest-heavy —
/// queries must keep flowing while new posts stream in — so the design is
/// a reader/writer split with all expensive per-post work hoisted outside
/// the critical sections:
///
///  * Queries (find_related, find_related_external) run under a shared
///    lock. The underlying pipeline's whole query path is strictly const,
///    so any number of query threads proceed concurrently. For external
///    queries, segmentation of the query post — the dominant cost — happens
///    before the lock is taken; only index probing is inside it.
///  * Ingests (add_post, add_posts) reserve a fresh id with an atomic
///    counter, then analyze + segment the post with no lock held, and take
///    the exclusive lock only for index publication. add_posts publishes a
///    whole batch under one lock acquisition.
///
/// Publication semantics: `epoch()` counts published documents. A query
/// result carries the epoch and corpus size observed under its shared
/// lock, so `num_docs == seed_docs + epoch` holds for every query — the
/// invariant the concurrency stress suite checks. Queries never observe a
/// half-published post: either all of a post's segments (and its
/// vocabulary entries, norms and postings) are visible, or none are.
/// Documents are never removed, so anything a query returns stays
/// queryable afterwards.
class ServingPipeline {
 public:
  /// Wraps an offline-built pipeline (moved in). The pipeline must not be
  /// accessed through any other handle afterwards. With
  /// options.persist.wal_path set, any complete records already in that
  /// log are replayed (published) before the constructor returns — the
  /// crash-recovery path — and later ingests append to it.
  explicit ServingPipeline(RelatedPostPipeline pipeline,
                           ServingOptions options = {});

  ServingPipeline(const ServingPipeline&) = delete;
  ServingPipeline& operator=(const ServingPipeline&) = delete;

  /// Persists the full serving state (snapshot v2: every document's text
  /// and segmentation, offline cluster labels, vocabulary, id watermark)
  /// to `path` atomically, then truncates the WAL (every logged record is
  /// now baked into the snapshot). Runs under the exclusive lock so the
  /// snapshot is a publication boundary: it contains exactly the posts a
  /// query could see at that moment. Returns false (previous file intact,
  /// WAL untouched) on any I/O failure.
  bool save(const std::string& path);

  /// Warm restart: loads a v2 snapshot from `snapshot_path`, rebuilds the
  /// pipeline (offline part via build_from_snapshot with the stored
  /// vocabulary preloaded; online-ingested posts re-published through the
  /// deterministic ingest path), then — when options.persist.wal_path is
  /// set — replays the WAL. Records whose document id is already in the
  /// snapshot are skipped, so a crash between snapshot rename and WAL
  /// truncation never double-publishes. The restored pipeline reaches the
  /// exact pre-crash published epoch: epoch() continues from
  /// (snapshot docs - seed docs) + replayed records, and query results are
  /// score-identical to a never-crashed pipeline at the same epoch.
  /// Returns nullptr when the snapshot is missing/corrupt or the WAL
  /// cannot be opened.
  static std::unique_ptr<ServingPipeline> restore(
      const std::string& snapshot_path,
      const PipelineOptions& pipeline_options = {},
      ServingOptions options = {});

  /// A query answer plus the snapshot coordinates it was computed under.
  struct QueryResult {
    std::vector<ScoredDoc> results;
    /// Number of documents published (via add_post/add_posts) at the
    /// moment the query held the read lock.
    uint64_t epoch = 0;
    /// Corpus size at the same moment; always seed_docs() + epoch.
    size_t num_docs = 0;
  };

  /// Top-k related posts for an in-corpus reference post (Algorithm 2).
  /// With a cache configured, a repeated (query, k) whose entry was
  /// filled at the current publication epoch is answered without taking
  /// the shared lock; any ingest publish bumps the epoch and thereby
  /// invalidates every prior entry, so a hit is never staler than a
  /// lock-taking query issued at the same moment.
  QueryResult find_related(DocId query, int k) const;

  /// Batched find_related: result[i] answers queries[i]. Cache hits are
  /// collected first (lock-free); the misses are computed under ONE
  /// shared-lock acquisition via IntentionMatcher::find_related_batch,
  /// which pipelines them across the matcher's query pool when
  /// MatcherOptions::query_threads > 1. Each result is identical to a
  /// per-query find_related call.
  std::vector<QueryResult> find_related_batch(
      const std::vector<DocId>& queries, int k) const;

  /// Top-k related posts for an external (non-ingested) post. The post is
  /// segmented outside the lock.
  QueryResult find_related_external(const Document& doc, int k) const;

  /// Ingests one post; returns its (globally unique, monotonically
  /// reserved) document id. Analysis and segmentation run without the
  /// write lock; only publication is exclusive.
  DocId add_post(std::string text);

  /// Batched ingestion: every post is prepared lock-free, then the whole
  /// batch is published under a single exclusive acquisition — concurrent
  /// queries observe either none or all of the batch.
  std::vector<DocId> add_posts(std::vector<std::string> texts);

  /// Number of documents published since construction. Monotone.
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// Corpus size the pipeline was built with (before any online ingest).
  size_t seed_docs() const { return seed_docs_; }

  /// Current corpus size (seed_docs() + epoch(), read consistently).
  size_t num_docs() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return pipeline_.docs().size();
  }

  /// Upper bound on handed-out ids: every id add_post has reserved is
  /// < next_id(). (Reservation precedes publication, so an id may be below
  /// this bound yet not published for a short window.)
  DocId next_id() const { return next_id_.load(std::memory_order_relaxed); }

  /// Direct read access to the wrapped pipeline. Only valid while no
  /// writer is running (e.g. after joining all ingest threads in a test,
  /// or during single-threaded shutdown inspection).
  const RelatedPostPipeline& quiescent() const { return pipeline_; }

  /// The result cache, or nullptr when disabled (capacity 0). Exposed
  /// for stats (hits/misses/evictions/size); the cache is thread-safe.
  const QueryCache* query_cache() const { return cache_.get(); }

  // --- Sharding SPI (used by ShardedServing, core/sharded_serving.h).
  // A sharded deployment drives each partition through these primitives:
  // the scatter layer prepares posts and serializes publications itself
  // (global publication order is its responsibility), so none of them
  // touch this pipeline's WAL or cache.

  /// The analysis half of an ingest, lock-free (immutable segmenter copy).
  PreparedPost prepare_post(DocId id, std::string text) const {
    return prepare(id, std::move(text));
  }

  /// The publication half: ingests an already-prepared post under the
  /// exclusive lock and bumps the epoch. Unlike add_post, the id was
  /// reserved by the caller (the sharded layer's global counter) and
  /// nothing is WAL-logged here — the caller write-ahead-logs before
  /// calling.
  void publish_prepared(PreparedPost post);

  /// The per-cluster term bags of an indexed document (ascending cluster
  /// order), read under the shared lock. Empty when unknown.
  std::vector<std::pair<int, TermVector>> doc_cluster_terms(DocId doc) const;

  /// One scatter leg: evaluates IntentionMatcher::match_cluster_terms for
  /// every (cluster, query-bag) pair against this shard's indices —
  /// scoring with the caller-supplied cross-shard statistics views
  /// (stats[i] pairs with queries[i]; nullptr entries fall back to local
  /// statistics) — under a single shared-lock acquisition. Also reports
  /// the epoch/num_docs observed under that lock so the gather layer can
  /// stamp its combined result.
  struct ShardMatch {
    std::vector<std::vector<ScoredDoc>> lists;  ///< parallel to queries
    uint64_t epoch = 0;
    size_t num_docs = 0;
  };
  ShardMatch match_clusters(
      const std::vector<std::pair<int, TermVector>>& queries, DocId exclude,
      int n,
      const std::vector<std::shared_ptr<const ClusterCollectionStats>>& stats)
      const;

  /// Forwards RelatedPostPipeline::set_stats_sink under the exclusive
  /// lock: subsequent publications also feed the cross-shard statistics
  /// board.
  void set_stats_sink(GlobalIndexStats* sink);

 private:
  /// State carried by restore() into the private constructor: how far the
  /// rebuilt pipeline had already progressed before the snapshot was cut.
  struct RestoreState {
    uint64_t epoch = 0;          ///< published-ingest count at snapshot time
    size_t ingested_docs = 0;    ///< docs beyond the original seed corpus
    DocId next_id = 0;           ///< id watermark at snapshot time
  };

  /// Shared constructor body; the public constructor delegates with a
  /// default RestoreState (fresh pipeline: epoch 0, everything is seed).
  ServingPipeline(RelatedPostPipeline pipeline, ServingOptions options,
                  RestoreState state);

  /// Lock-free half of ingestion: analyze + segment with the serving
  /// layer's own segmenter copy, never touching guarded pipeline state.
  PreparedPost prepare(DocId id, std::string text) const;

  /// Publishes the matcher's cumulative pruning counter into the
  /// ibseg_pruned_docs_total serving counter (delta since the last sync,
  /// CAS-guarded so concurrent queries never double-export). Lock-free —
  /// reads only atomics — so queries call it after releasing the shared
  /// lock. The ibseg_postings_bytes gauge, by contrast, is refreshed at
  /// construction and publish time only (reading arena sizes requires
  /// the exclusive lock the publisher already holds).
  void sync_query_work_metrics() const;

  mutable std::shared_mutex mu_;
  RelatedPostPipeline pipeline_;  ///< guarded by mu_
  const Segmenter segmenter_;     ///< immutable copy for lock-free prep
  const size_t seed_docs_;
  std::atomic<DocId> next_id_;
  std::atomic<uint64_t> epoch_{0};
  /// Result cache (nullptr = disabled). Entries are validated against
  /// epoch_ on lookup, so writers never touch it.
  mutable std::unique_ptr<QueryCache> cache_;
  /// Fingerprint of the wrapped matcher's options, precomputed once —
  /// the third cache-key component.
  uint64_t matcher_fingerprint_ = 0;
  /// Portion of the matcher's cumulative pruned-units counter already
  /// exported to ibseg_pruned_docs_total (see sync_query_work_metrics).
  mutable std::atomic<uint64_t> pruned_exported_{0};
  /// Write-ahead ingest log (nullptr = persistence disabled). Appends
  /// happen under mu_'s exclusive lock, so WAL order == publication order
  /// — the property replay correctness depends on.
  std::unique_ptr<IngestWal> wal_;
  /// Durability configuration (kept for save(): WAL truncation).
  ServingPersistOptions persist_;
};

}  // namespace ibseg

#endif  // IBSEG_CORE_SERVING_H_
