#ifndef IBSEG_CORE_SERVING_H_
#define IBSEG_CORE_SERVING_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/query_cache.h"
#include "storage/wal.h"

/// \file
/// ServingPipeline: the concurrent serving facade over
/// RelatedPostPipeline — shared_mutex reader/writer discipline, a
/// publication epoch per ingest, the epoch-invalidated query cache, and
/// the WAL/snapshot persistence hooks (docs/ARCHITECTURE.md §3, §5).

namespace ibseg {

class ThreadPool;  // util/thread_pool.h

/// Durability configuration for the serving layer (see also
/// ServingPipeline::save/restore and docs/ARCHITECTURE.md §5).
struct ServingPersistOptions {
  /// Path of the write-ahead ingest log. Empty (the default) disables the
  /// WAL entirely. When set, the constructor replays any complete records
  /// already in the file (warm restart / crash recovery) and every
  /// subsequent add_post/add_posts appends to it *before* publication.
  std::string wal_path;
  /// fsync policy for WAL appends (WalFsync::kEveryAppend by default —
  /// strongest; see the fsync policy table in docs/ARCHITECTURE.md).
  WalOptions wal;
  /// Root directory of a *sharded* deployment's durable state (per-shard
  /// WALs, publication journal, snapshots + manifest on save). Consumed by
  /// ShardedServing only — a plain ServingPipeline uses wal_path and
  /// ignores this; ShardedServing uses this and ignores wal_path. Empty
  /// (the default) disables sharded persistence.
  std::string shard_dir;
};

/// Drift score of a recluster: 1 - mean best-cosine alignment of each old
/// centroid against the new centroid set (greedy, no one-to-one matching —
/// the score is an operator signal, not an assignment). 0 when the new
/// clustering preserves every old intention direction; approaches 1 as the
/// intention structure the old centroids described disappears. Exported as
/// the ibseg_recluster_drift gauge.
double centroid_drift(const std::vector<std::vector<double>>& before,
                      const std::vector<std::vector<double>>& after);

/// Configuration of the incremental offline phase (docs/ARCHITECTURE.md
/// §9): streaming nearest-centroid ingest assignment stays the hot path,
/// and recluster() periodically re-runs the full offline clustering off it.
struct ReclusterOptions {
  /// Ingested documents whose largest nearest-centroid assignment distance
  /// exceeds this threshold enter the outlier/pending pool — they are
  /// still indexed normally (assignment is unchanged, so results stay
  /// bit-identical), but the pool size is a recluster-trigger signal and
  /// the pool drains at the next recluster. The default (infinity)
  /// disables the pool.
  double pending_distance_threshold =
      std::numeric_limits<double>::infinity();
};

/// Serving-layer configuration (everything beyond the wrapped pipeline's
/// own build options).
struct ServingOptions {
  /// Result cache for in-corpus find_related queries. capacity 0 (the
  /// default) disables caching entirely — no cache is constructed.
  QueryCacheOptions cache;
  /// Snapshot + WAL durability (off by default).
  ServingPersistOptions persist;
  /// Number of document-partitioned shards. Consumed by
  /// ShardedServing::create (core/sharded_serving.h) — a plain
  /// ServingPipeline is always a single partition and ignores the field.
  /// Values <= 1 mean unsharded.
  int num_shards = 1;
  /// Incremental offline phase: pending-pool threshold (the trigger
  /// policy itself lives in core/recluster.h).
  ReclusterOptions recluster;
  /// Instance (tenant) label stamped onto every per-instance metric the
  /// sharded layer registers (ibseg_shard_docs, ibseg_shard_queries_total,
  /// ibseg_scatter_seconds, ibseg_merge_seconds and the recluster series).
  /// Two ShardedServing instances in one process MUST use distinct labels,
  /// or their series collide in the process-wide registry and gauges
  /// clobber each other. Empty means "default".
  std::string tenant;
  /// Scatter thread pool to share with other ShardedServing instances
  /// (not owned; must outlive the serving object). When null, a sharded
  /// instance owns a private pool sized to its shard count. Sharing is
  /// safe because scatter legs are leaf tasks — they never wait on another
  /// TaskGroup in the same pool (util/thread_pool.h).
  ThreadPool* scatter_pool = nullptr;
};

/// Concurrent serving facade over RelatedPostPipeline: the layer a
/// multi-client deployment talks to. Forum workloads are ingest-heavy —
/// queries must keep flowing while new posts stream in — so the design is
/// a reader/writer split with all expensive per-post work hoisted outside
/// the critical sections:
///
///  * Queries (find_related, find_related_external) run under a shared
///    lock. The underlying pipeline's whole query path is strictly const,
///    so any number of query threads proceed concurrently. For external
///    queries, segmentation of the query post — the dominant cost — happens
///    before the lock is taken; only index probing is inside it.
///  * Ingests (add_post, add_posts) reserve a fresh id with an atomic
///    counter, then analyze + segment the post with no lock held, and take
///    the exclusive lock only for index publication. add_posts publishes a
///    whole batch under one lock acquisition.
///
/// Publication semantics: `epoch()` counts published documents. A query
/// result carries the epoch and corpus size observed under its shared
/// lock, so `num_docs == seed_docs + epoch` holds for every query — the
/// invariant the concurrency stress suite checks. Queries never observe a
/// half-published post: either all of a post's segments (and its
/// vocabulary entries, norms and postings) are visible, or none are.
/// Documents are never removed, so anything a query returns stays
/// queryable afterwards.
class ServingPipeline {
 public:
  /// Wraps an offline-built pipeline (moved in). The pipeline must not be
  /// accessed through any other handle afterwards. With
  /// options.persist.wal_path set, any complete records already in that
  /// log are replayed (published) before the constructor returns — the
  /// crash-recovery path — and later ingests append to it.
  explicit ServingPipeline(RelatedPostPipeline pipeline,
                           ServingOptions options = {});

  ServingPipeline(const ServingPipeline&) = delete;
  ServingPipeline& operator=(const ServingPipeline&) = delete;

  /// Persists the full serving state (snapshot v2: every document's text
  /// and segmentation, offline cluster labels, vocabulary, id watermark)
  /// to `path` atomically, then truncates the WAL (every logged record is
  /// now baked into the snapshot). Runs under the exclusive lock so the
  /// snapshot is a publication boundary: it contains exactly the posts a
  /// query could see at that moment. Returns false (previous file intact,
  /// WAL untouched) on any I/O failure.
  bool save(const std::string& path);

  /// Warm restart: loads a v2 snapshot from `snapshot_path`, rebuilds the
  /// pipeline (offline part via build_from_snapshot with the stored
  /// vocabulary preloaded; online-ingested posts re-published through the
  /// deterministic ingest path), then — when options.persist.wal_path is
  /// set — replays the WAL. Records whose document id is already in the
  /// snapshot are skipped, so a crash between snapshot rename and WAL
  /// truncation never double-publishes. The restored pipeline reaches the
  /// exact pre-crash published epoch: epoch() continues from
  /// (snapshot docs - seed docs) + replayed records, and query results are
  /// score-identical to a never-crashed pipeline at the same epoch.
  /// Returns nullptr when the snapshot is missing/corrupt or the WAL
  /// cannot be opened.
  static std::unique_ptr<ServingPipeline> restore(
      const std::string& snapshot_path,
      const PipelineOptions& pipeline_options = {},
      ServingOptions options = {});

  /// A query answer plus the snapshot coordinates it was computed under.
  struct QueryResult {
    std::vector<ScoredDoc> results;
    /// Number of documents published (via add_post/add_posts) at the
    /// moment the query held the read lock.
    uint64_t epoch = 0;
    /// Corpus size at the same moment; always seed_docs() + epoch.
    size_t num_docs = 0;
  };

  /// Top-k related posts for an in-corpus reference post (Algorithm 2).
  /// With a cache configured, a repeated (query, k) whose entry was
  /// filled at the current publication epoch is answered without taking
  /// the shared lock; any ingest publish bumps the epoch and thereby
  /// invalidates every prior entry, so a hit is never staler than a
  /// lock-taking query issued at the same moment.
  QueryResult find_related(DocId query, int k) const;

  /// Batched find_related: result[i] answers queries[i]. Cache hits are
  /// collected first (lock-free); the misses are computed under ONE
  /// shared-lock acquisition via IntentionMatcher::find_related_batch,
  /// which pipelines them across the matcher's query pool when
  /// MatcherOptions::query_threads > 1. Each result is identical to a
  /// per-query find_related call.
  std::vector<QueryResult> find_related_batch(
      const std::vector<DocId>& queries, int k) const;

  /// Top-k related posts for an external (non-ingested) post. The post is
  /// segmented outside the lock.
  QueryResult find_related_external(const Document& doc, int k) const;

  /// Ingests one post; returns its (globally unique, monotonically
  /// reserved) document id. Analysis and segmentation run without the
  /// write lock; only publication is exclusive.
  DocId add_post(std::string text);

  /// Batched ingestion: every post is prepared lock-free, then the whole
  /// batch is published under a single exclusive acquisition — concurrent
  /// queries observe either none or all of the batch.
  std::vector<DocId> add_posts(std::vector<std::string> texts);

  /// Runs one background re-clustering epoch synchronously on the calling
  /// thread (the "background" is the caller's — core/recluster.h wraps
  /// this in a worker thread): captures a consistent cut of the corpus
  /// under the shared lock, re-runs the FULL offline phase (DBSCAN over
  /// the 28-dim CM features + per-intention index build) into a shadow
  /// pipeline off the hot path — readers keep serving the old generation
  /// the whole time — then takes the exclusive lock once to catch up
  /// documents published during the shadow build (nearest-centroid, the
  /// deterministic ingest path) and atomically swap the shadow in.
  ///
  /// Identity contract (proved by tests/recluster_differential_test.cc):
  /// the post-swap pipeline is bit-identical to a cold
  /// RelatedPostPipeline::build over the documents the capture saw,
  /// followed by the same ingest sequence for anything published after the
  /// capture. At quiescence that means recluster() == cold rebuild of the
  /// whole corpus, exactly.
  ///
  /// The publication epoch is NOT bumped (no document was published); the
  /// offline generation is, which keys the result cache so every pre-swap
  /// entry becomes unreachable — a cached hit can never cross generations.
  /// The pending pool is re-derived for the catch-up tail and
  /// docs_since_recluster() restarts from that tail's size. Concurrent
  /// recluster() calls serialize. Returns the new offline generation.
  uint64_t recluster();

  /// Completed background reclusters (0 for a freshly built pipeline;
  /// restored pipelines resume the saved value). Monotone.
  uint64_t offline_generation() const {
    return generation_.load(std::memory_order_relaxed);
  }

  /// Leading documents covered by the current offline clustering; the
  /// rest were nearest-centroid assigned. seed_docs() until the first
  /// recluster.
  size_t offline_docs() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return offline_docs_;
  }

  /// Current outlier/pending-pool size (lock-free; the recluster-trigger
  /// policy polls this).
  size_t pending_pool_size() const {
    return pending_size_.load(std::memory_order_relaxed);
  }

  /// Documents ingested since the offline state was last (re)computed
  /// (lock-free; trigger-policy input).
  uint64_t docs_since_recluster() const {
    return docs_since_.load(std::memory_order_relaxed);
  }

  /// Copy of the pending pool (diagnostics/persistence/tests).
  std::vector<DocId> pending_pool() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return pending_pool_;
  }

  /// Number of documents published since construction. Monotone.
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// Corpus size the pipeline was built with (before any online ingest).
  size_t seed_docs() const { return seed_docs_; }

  /// Current corpus size (seed_docs() + epoch(), read consistently).
  size_t num_docs() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return pipeline_.docs().size();
  }

  /// Upper bound on handed-out ids: every id add_post has reserved is
  /// < next_id(). (Reservation precedes publication, so an id may be below
  /// this bound yet not published for a short window.)
  DocId next_id() const { return next_id_.load(std::memory_order_relaxed); }

  /// Direct read access to the wrapped pipeline. Only valid while no
  /// writer is running (e.g. after joining all ingest threads in a test,
  /// or during single-threaded shutdown inspection).
  const RelatedPostPipeline& quiescent() const { return pipeline_; }

  /// The result cache, or nullptr when disabled (capacity 0). Exposed
  /// for stats (hits/misses/evictions/size); the cache is thread-safe.
  const QueryCache* query_cache() const { return cache_.get(); }

  // --- Sharding SPI (used by ShardedServing, core/sharded_serving.h).
  // A sharded deployment drives each partition through these primitives:
  // the scatter layer prepares posts and serializes publications itself
  // (global publication order is its responsibility), so none of them
  // touch this pipeline's WAL or cache.

  /// The analysis half of an ingest, lock-free (immutable segmenter copy).
  PreparedPost prepare_post(DocId id, std::string text) const {
    return prepare(id, std::move(text));
  }

  /// The publication half: ingests an already-prepared post under the
  /// exclusive lock and bumps the epoch. Unlike add_post, the id was
  /// reserved by the caller (the sharded layer's global counter) and
  /// nothing is WAL-logged here — the caller write-ahead-logs before
  /// calling.
  void publish_prepared(PreparedPost post);

  /// The per-cluster term bags of an indexed document (ascending cluster
  /// order), read under the shared lock. Empty when unknown.
  std::vector<std::pair<int, TermVector>> doc_cluster_terms(DocId doc) const;

  /// One scatter leg: evaluates IntentionMatcher::match_cluster_terms for
  /// every (cluster, query-bag) pair against this shard's indices —
  /// scoring with the caller-supplied cross-shard statistics views
  /// (stats[i] pairs with queries[i]; nullptr entries fall back to local
  /// statistics) — under a single shared-lock acquisition. Also reports
  /// the epoch/num_docs observed under that lock so the gather layer can
  /// stamp its combined result.
  struct ShardMatch {
    std::vector<std::vector<ScoredDoc>> lists;  ///< parallel to queries
    uint64_t epoch = 0;
    size_t num_docs = 0;
  };
  ShardMatch match_clusters(
      const std::vector<std::pair<int, TermVector>>& queries, DocId exclude,
      int n,
      const std::vector<std::shared_ptr<const ClusterCollectionStats>>& stats)
      const;

  /// Forwards RelatedPostPipeline::set_stats_sink under the exclusive
  /// lock: subsequent publications also feed the cross-shard statistics
  /// board.
  void set_stats_sink(GlobalIndexStats* sink);

  /// State carried into the constructor when the wrapped pipeline is not
  /// fresh: how far it had already progressed (restore from snapshot, or
  /// a sharded recluster adopting a rebuilt shard).
  struct RestoreState {
    uint64_t epoch = 0;          ///< published-ingest count at snapshot time
    size_t ingested_docs = 0;    ///< docs beyond the original seed corpus
    DocId next_id = 0;           ///< id watermark at snapshot time
    uint64_t generation = 0;     ///< completed background reclusters
    /// Leading docs the offline clustering covers; 0 means "everything up
    /// to seed_docs" (the pre-recluster default).
    size_t offline_docs = 0;
    std::vector<DocId> pending_pool;  ///< saved outlier pool
    uint64_t docs_since = 0;          ///< docs since last recluster
  };

  /// Wraps a pipeline that already carries history — ShardedServing uses
  /// this to stand up post-recluster shard pipelines whose epoch/offline
  /// coordinates must match the shard's prior life, and restore() uses it
  /// internally. No WAL replay happens here (state.epoch is trusted).
  static std::unique_ptr<ServingPipeline> adopt(RelatedPostPipeline pipeline,
                                                ServingOptions options,
                                                RestoreState state) {
    return std::unique_ptr<ServingPipeline>(new ServingPipeline(
        std::move(pipeline), std::move(options), std::move(state)));
  }

 private:
  /// Shared constructor body; the public constructor delegates with a
  /// default RestoreState (fresh pipeline: epoch 0, everything is seed).
  ServingPipeline(RelatedPostPipeline pipeline, ServingOptions options,
                  RestoreState state);

  /// Lock-free half of ingestion: analyze + segment with the serving
  /// layer's own segmenter copy, never touching guarded pipeline state.
  PreparedPost prepare(DocId id, std::string text) const;

  /// Publishes the matcher's cumulative pruning counter into the
  /// ibseg_pruned_docs_total serving counter (delta since the last sync,
  /// CAS-guarded so concurrent queries never double-export). Must be
  /// called under (at least) the shared lock: a background recluster can
  /// replace pipeline_ wholesale, so dereferencing the matcher without
  /// the lock races its destruction. The ibseg_postings_bytes gauge, by
  /// contrast, is refreshed at construction and publish time only
  /// (reading arena sizes requires the exclusive lock the publisher
  /// already holds).
  void sync_query_work_metrics() const;

  mutable std::shared_mutex mu_;
  RelatedPostPipeline pipeline_;  ///< guarded by mu_
  const Segmenter segmenter_;     ///< immutable copy for lock-free prep
  const size_t seed_docs_;
  std::atomic<DocId> next_id_;
  std::atomic<uint64_t> epoch_{0};
  /// Result cache (nullptr = disabled). Entries are validated against
  /// epoch_ on lookup, so writers never touch it.
  mutable std::unique_ptr<QueryCache> cache_;
  /// Fingerprint of the wrapped matcher's options, precomputed once —
  /// the third cache-key component.
  uint64_t matcher_fingerprint_ = 0;
  /// Portion of the matcher's cumulative pruned-units counter already
  /// exported to ibseg_pruned_docs_total (see sync_query_work_metrics).
  mutable std::atomic<uint64_t> pruned_exported_{0};
  /// Write-ahead ingest log (nullptr = persistence disabled). Appends
  /// happen under mu_'s exclusive lock, so WAL order == publication order
  /// — the property replay correctness depends on.
  std::unique_ptr<IngestWal> wal_;
  /// Durability configuration (kept for save(): WAL truncation).
  ServingPersistOptions persist_;
  /// --- Incremental offline phase (docs/ARCHITECTURE.md §9).
  /// Completed reclusters; bumped exactly once per swap, under the
  /// exclusive lock, and folded into every cache key so pre-swap entries
  /// become unreachable the instant the shadow publishes.
  std::atomic<uint64_t> generation_{0};
  /// Leading documents the current offline clustering covers (guarded by
  /// mu_; == seed_docs_ until the first recluster).
  size_t offline_docs_ = 0;
  /// Outlier/pending pool (guarded by mu_): ids whose ingest assignment
  /// distance exceeded recluster_options_.pending_distance_threshold.
  std::vector<DocId> pending_pool_;
  /// pending_pool_.size(), mirrored lock-free for the trigger policy.
  std::atomic<size_t> pending_size_{0};
  /// Documents ingested since the offline state was last (re)computed.
  std::atomic<uint64_t> docs_since_{0};
  /// Serializes concurrent recluster() calls so at most one shadow build
  /// runs; held across the whole job, never while mu_ is held exclusively
  /// by anyone else's write (mu_ acquisitions nest inside it).
  std::mutex recluster_job_mu_;
  ReclusterOptions recluster_options_;
  /// Centroid drift score of the last recluster (exported as the
  /// ibseg_recluster_drift gauge): 1 - mean best-cosine alignment between
  /// old and new centroids. Guarded by recluster_job_mu_.
  double last_drift_ = 0.0;
};

}  // namespace ibseg

#endif  // IBSEG_CORE_SERVING_H_
