#include "core/recluster.h"

#include <chrono>
#include <utility>

#include "core/serving.h"
#include "core/sharded_serving.h"

namespace ibseg {

ReclusterWorker::ReclusterWorker(ShardedServing& backend,
                                 ReclusterPolicy policy)
    : ReclusterWorker([&backend] { return backend.pending_pool_size(); },
                      [&backend] { return backend.docs_since_recluster(); },
                      [&backend] { return backend.recluster(); },
                      policy) {}

ReclusterWorker::ReclusterWorker(ServingPipeline& backend,
                                 ReclusterPolicy policy)
    : ReclusterWorker([&backend] { return backend.pending_pool_size(); },
                      [&backend] { return backend.docs_since_recluster(); },
                      [&backend] { return backend.recluster(); },
                      policy) {}

ReclusterWorker::ReclusterWorker(std::function<size_t()> pending_pool_size,
                                 std::function<uint64_t()> docs_since_recluster,
                                 std::function<uint64_t()> recluster,
                                 ReclusterPolicy policy)
    : pending_pool_size_(std::move(pending_pool_size)),
      docs_since_recluster_(std::move(docs_since_recluster)),
      recluster_(std::move(recluster)),
      policy_(policy) {
  if (policy_.poll_interval_ms < 1) policy_.poll_interval_ms = 1;
}

ReclusterWorker::~ReclusterWorker() { stop(); }

void ReclusterWorker::start() {
  if (started_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { loop(); });
}

void ReclusterWorker::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  started_.store(false);
}

bool ReclusterWorker::should_fire() const {
  if (policy_.max_pending > 0 &&
      pending_pool_size_() >= policy_.max_pending) {
    return true;
  }
  if (policy_.max_docs_since > 0 &&
      docs_since_recluster_() >= policy_.max_docs_since) {
    return true;
  }
  return false;
}

void ReclusterWorker::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    // Check OUTSIDE any serving lock (the closures are atomic reads), and
    // run the epoch with mu_ released so stop() can post its request
    // while a recluster is in flight — the next loop iteration sees it.
    bool fire = false;
    lock.unlock();
    fire = should_fire();
    if (fire) {
      recluster_();
      fired_.fetch_add(1, std::memory_order_relaxed);
    }
    lock.lock();
    if (stop_requested_) break;
    // After firing, re-poll immediately: the counters reset at the swap,
    // so a still-tripped trigger means the policy is tighter than one
    // epoch can relieve (e.g. max_docs_since = 0 tail races) — waiting
    // the full interval is still correct, just not necessary.
    cv_.wait_for(lock,
                 std::chrono::milliseconds(policy_.poll_interval_ms),
                 [this] { return stop_requested_; });
  }
}

}  // namespace ibseg
