#ifndef IBSEG_CORE_EXPERIMENT_H_
#define IBSEG_CORE_EXPERIMENT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "core/methods.h"
#include "datagen/post_generator.h"
#include "eval/precision.h"

/// \file
/// The experiment harness: generates a synthetic corpus, builds the
/// configured methods over it, runs the paper's retrieval evaluation and
/// renders the result rows — the shared machinery behind the bench/
/// binaries listed in DESIGN.md's experiment index.

namespace ibseg {

/// One query's outcome under one method.
struct QueryResult {
  DocId query = 0;                  ///< the reference post
  std::vector<ScoredDoc> retrieved; ///< its top-k, best first
  double precision = 0.0;           ///< fraction of retrieved that is relevant
  /// Fraction of the query's relevant documents retrieved (possible here
  /// because the generator's ground truth is exhaustive — the paper's
  /// pooled human judgments could only estimate precision).
  double recall = 0.0;
};

/// A method's full report over an experiment run.
struct MethodReport {
  std::string method;               ///< display name (method_name)
  PrecisionSummary precision;       ///< mean/min/max precision over queries
  double mean_recall = 0.0;         ///< mean recall over queries
  double mean_f1 = 0.0;             ///< harmonic mean of the two
  MethodBuildStats build;           ///< offline timing breakdown
  double avg_query_ms = 0.0;        ///< online cost per query
  std::vector<QueryResult> queries; ///< per-query detail
};

/// Experiment configuration: which methods, over which queries.
struct ExperimentOptions {
  std::vector<MethodKind> methods = {
      MethodKind::kLda, MethodKind::kFullText, MethodKind::kContentMR,
      MethodKind::kSentIntentMR, MethodKind::kIntentIntentMR};
  MethodConfig config;  ///< shared configuration bag for every method
  int k = 5;            ///< result list length per query
  /// Every `query_stride`-th post serves as a reference query.
  size_t query_stride = 2;
};

/// Runs the paper's overall evaluation protocol (Sec. 9.2.1) over a
/// synthetic corpus: builds each method, queries every stride-th post for
/// its top-k, and judges against same-scenario ground truth. This is the
/// library-supported form of what bench/table4_precision does, with
/// per-query results retained for downstream analysis.
std::vector<MethodReport> run_experiment(const SyntheticCorpus& corpus,
                                         const std::vector<Document>& docs,
                                         const ExperimentOptions& options = {});

/// Writes one row per (method, query) with the retrieved ids, scores and
/// per-query precision — the raw material for external plotting.
/// Columns: method,query,precision,rank,doc,score,relevant
bool write_experiment_csv(const std::vector<MethodReport>& reports,
                          const SyntheticCorpus& corpus, std::ostream& os);

}  // namespace ibseg

#endif  // IBSEG_CORE_EXPERIMENT_H_
