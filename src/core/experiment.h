#ifndef IBSEG_CORE_EXPERIMENT_H_
#define IBSEG_CORE_EXPERIMENT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "core/methods.h"
#include "datagen/post_generator.h"
#include "eval/precision.h"

namespace ibseg {

/// One query's outcome under one method.
struct QueryResult {
  DocId query = 0;
  std::vector<ScoredDoc> retrieved;
  double precision = 0.0;
  /// Fraction of the query's relevant documents retrieved (possible here
  /// because the generator's ground truth is exhaustive — the paper's
  /// pooled human judgments could only estimate precision).
  double recall = 0.0;
};

/// A method's full report over an experiment run.
struct MethodReport {
  std::string method;
  PrecisionSummary precision;
  double mean_recall = 0.0;
  double mean_f1 = 0.0;
  MethodBuildStats build;
  double avg_query_ms = 0.0;
  std::vector<QueryResult> queries;
};

/// Experiment configuration: which methods, over which queries.
struct ExperimentOptions {
  std::vector<MethodKind> methods = {
      MethodKind::kLda, MethodKind::kFullText, MethodKind::kContentMR,
      MethodKind::kSentIntentMR, MethodKind::kIntentIntentMR};
  MethodConfig config;
  int k = 5;
  /// Every `query_stride`-th post serves as a reference query.
  size_t query_stride = 2;
};

/// Runs the paper's overall evaluation protocol (Sec. 9.2.1) over a
/// synthetic corpus: builds each method, queries every stride-th post for
/// its top-k, and judges against same-scenario ground truth. This is the
/// library-supported form of what bench/table4_precision does, with
/// per-query results retained for downstream analysis.
std::vector<MethodReport> run_experiment(const SyntheticCorpus& corpus,
                                         const std::vector<Document>& docs,
                                         const ExperimentOptions& options = {});

/// Writes one row per (method, query) with the retrieved ids, scores and
/// per-query precision — the raw material for external plotting.
/// Columns: method,query,precision,rank,doc,score,relevant
bool write_experiment_csv(const std::vector<MethodReport>& reports,
                          const SyntheticCorpus& corpus, std::ostream& os);

}  // namespace ibseg

#endif  // IBSEG_CORE_EXPERIMENT_H_
