#include "core/sharded_serving.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/snapshot_v2.h"
#include "storage/wal_codec.h"
#include "text/term_vector.h"
#include "util/stopwatch.h"

namespace ibseg {
namespace {

std::string shard_subdir(const std::string& dir, uint32_t s) {
  return dir + "/shard-" + std::to_string(s);
}
/// Shard snapshot filenames are generation-qualified past generation 0
/// (snapshot.g<G>.v2; generation 0 keeps the legacy snapshot.v2), so a
/// post-recluster save that crashes before its manifest commit never
/// overwrites the files the surviving manifest points at — restore comes
/// back at exactly the old generation, never a torn mix of label spaces.
std::string shard_snapshot_path(const std::string& dir, uint32_t s,
                                uint64_t gen) {
  if (gen == 0) return shard_subdir(dir, s) + "/snapshot.v2";
  return shard_subdir(dir, s) + "/snapshot.g" + std::to_string(gen) + ".v2";
}
std::string shard_wal_path(const std::string& dir, uint32_t s) {
  return shard_subdir(dir, s) + "/wal";
}
std::string journal_path(const std::string& dir) {
  return dir + "/ingest.order";
}

/// One refined segment's term bag, interned into `vocab` — byte-for-byte
/// the accumulation IntentionMatcher::build performs per cluster member.
TermVector refined_segment_terms(const Document& doc,
                                 const RefinedSegment& seg,
                                 Vocabulary& vocab) {
  TermVector terms;
  for (auto [b, e] : seg.ranges) {
    size_t tok_b = doc.sentences()[b].token_begin;
    size_t tok_e = doc.sentences()[e - 1].token_end;
    terms.merge(build_term_vector(doc.tokens(), tok_b, tok_e, vocab));
  }
  return terms;
}

/// How many labels make_snapshot emitted for this segmentation: one per
/// non-empty raw segment (documents with no units contribute none).
size_t num_labels(const Segmentation& seg) {
  if (seg.num_units == 0) return 0;
  size_t n = 0;
  for (auto [b, e] : seg.segments()) {
    if (b != e) ++n;
  }
  return n;
}

double weight_of(const MatcherOptions& options, int cluster) {
  return static_cast<size_t>(cluster) < options.cluster_weights.size()
             ? options.cluster_weights[static_cast<size_t>(cluster)]
             : 1.0;
}

bool by_score_then_doc(const ScoredDoc& a, const ScoredDoc& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.doc < b.doc;
}

}  // namespace

uint32_t ShardedServing::shard_of(DocId id, uint32_t num_shards) {
  if (num_shards <= 1) return 0;
  // FNV-1a over the id's 4 little-endian bytes.
  uint64_t h = 14695981039346656037ull;
  for (int i = 0; i < 4; ++i) {
    h ^= (static_cast<uint64_t>(id) >> (8 * i)) & 0xffu;
    h *= 1099511628211ull;
  }
  return static_cast<uint32_t>(h % num_shards);
}

std::unique_ptr<ShardedServing> ShardedServing::create(
    std::vector<Document> docs, const PipelineOptions& pipeline_options,
    ServingOptions options) {
  uint32_t ns =
      options.num_shards <= 1 ? 1 : static_cast<uint32_t>(options.num_shards);

  // Offline phase over the FULL corpus — segmentation and clustering see
  // exactly what an unpartitioned build would, so centroids, labels and
  // every derived statistic are the unpartitioned values by construction.
  std::vector<Segmentation> segmentations(docs.size());
  if (pipeline_options.num_threads > 1 && docs.size() > 1) {
    ThreadPool pool(pipeline_options.num_threads);
    pool.parallel_for(docs.size(), [&](size_t d) {
      Vocabulary scratch;
      segmentations[d] = pipeline_options.segmenter.segment(docs[d], scratch);
    });
  } else {
    Vocabulary scratch;
    for (size_t d = 0; d < docs.size(); ++d) {
      segmentations[d] = pipeline_options.segmenter.segment(docs[d], scratch);
    }
  }
  IntentionClustering clustering;
  {
    obs::TraceScope grouping(obs::Stage::kClusterAssign);
    clustering = IntentionClustering::build(docs, segmentations,
                                            pipeline_options.grouping);
  }

  std::unique_ptr<ShardedServing> s(new ShardedServing());
  if (!s->init_shards(std::move(docs), std::move(segmentations), clustering,
                      pipeline_options, options, ns)) {
    return nullptr;
  }
  s->gen_history_.push_back(GenSpan{0, 0});
  s->persist_dir_ = options.persist.shard_dir;
  s->wal_options_ = options.persist.wal;
  if (!s->persist_dir_.empty() && !s->open_persistence(/*fresh=*/true)) {
    return nullptr;
  }
  return s;
}

ShardedServing::ShardSet ShardedServing::build_shard_set(
    std::vector<Document> docs, std::vector<Segmentation> segmentations,
    const IntentionClustering& clustering,
    const PipelineOptions& pipeline_options,
    const ReclusterOptions& recluster_options, uint32_t num_shards,
    const std::vector<ServingPipeline::RestoreState>* shard_states) const {
  ShardSet set;
  set.num_clusters = clustering.num_clusters();
  set.centroids = clustering.centroids();

  // Global label assignment, resolved against real document ids.
  std::vector<DocId> ids;
  ids.reserve(docs.size());
  for (const Document& d : docs) ids.push_back(d.id());
  PipelineSnapshot global_snap = make_snapshot(segmentations, clustering, ids);

  // Seeding pass: intern the shared vocabulary and feed the statistics
  // board in EXACTLY the order IntentionMatcher::build would — cluster-
  // major, member order within each cluster. Every shard build below then
  // finds all of its terms pre-interned, so TermIds are corpus-global and
  // independent of the partitioning.
  set.vocab = std::make_shared<Vocabulary>();
  set.stats = std::make_unique<GlobalIndexStats>(
      set.num_clusters, pipeline_options.matcher.min_norm_fraction);
  std::map<DocId, size_t> doc_index;
  for (size_t d = 0; d < docs.size(); ++d) doc_index[docs[d].id()] = d;
  for (int c = 0; c < set.num_clusters; ++c) {
    for (size_t seg_idx :
         clustering.cluster_members()[static_cast<size_t>(c)]) {
      const RefinedSegment& seg = clustering.segments()[seg_idx];
      const Document& doc = docs[doc_index[seg.doc]];
      set.stats->append(c, refined_segment_terms(doc, seg, *set.vocab),
                        /*refresh_now=*/false);
    }
    set.stats->refresh(c);
  }

  // Partition the corpus in global document order: per-shard docs,
  // segmentations and label slices stay in that order, so each shard's
  // restore_clustering sees its members in the global relative order.
  std::vector<std::vector<Document>> shard_docs(num_shards);
  std::vector<std::vector<Segmentation>> shard_segs(num_shards);
  std::vector<std::vector<int>> shard_labels(num_shards);
  size_t label_pos = 0;
  set.doc_order.reserve(docs.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    DocId id = docs[d].id();
    uint32_t s = shard_of(id, num_shards);
    size_t labels = num_labels(segmentations[d]);
    for (size_t i = 0; i < labels; ++i) {
      shard_labels[s].push_back(global_snap.segment_labels[label_pos + i]);
    }
    label_pos += labels;
    shard_segs[s].push_back(std::move(segmentations[d]));
    shard_docs[s].push_back(std::move(docs[d]));
    set.doc_order.push_back(id);
    set.watermark = std::max(set.watermark, id + 1);
  }

  // Build each shard over its slice: shared vocabulary, global centroids,
  // global cluster count. Shard pipelines carry no cache and no WAL of
  // their own — both live at this layer — but DO own their slice's
  // pending pool (the threshold travels in the shard's ServingOptions).
  ServingOptions shard_options;
  shard_options.recluster = recluster_options;
  set.shards.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    PipelineSnapshot snap;
    snap.segmentations = std::move(shard_segs[s]);
    snap.segment_labels = std::move(shard_labels[s]);
    snap.num_clusters = set.num_clusters;
    RelatedPostPipeline p = RelatedPostPipeline::build_shard(
        std::move(shard_docs[s]), snap, set.vocab, set.centroids,
        pipeline_options);
    if (shard_states != nullptr) {
      set.shards.push_back(ServingPipeline::adopt(
          std::move(p), shard_options, (*shard_states)[s]));
    } else {
      set.shards.push_back(
          std::make_unique<ServingPipeline>(std::move(p), shard_options));
    }
    set.shards.back()->set_stats_sink(set.stats.get());
  }
  return set;
}

bool ShardedServing::init_shards(
    std::vector<Document> docs, std::vector<Segmentation> segmentations,
    const IntentionClustering& clustering,
    const PipelineOptions& pipeline_options, const ServingOptions& options,
    uint32_t num_shards,
    const std::vector<ServingPipeline::RestoreState>* shard_states) {
  matcher_options_ = pipeline_options.matcher;
  segmenter_ = pipeline_options.segmenter;
  pipeline_options_ = pipeline_options;
  recluster_options_ = options.recluster;
  matcher_fingerprint_ = matcher_options_fingerprint(matcher_options_);

  ShardSet set = build_shard_set(std::move(docs), std::move(segmentations),
                                 clustering, pipeline_options,
                                 options.recluster, num_shards, shard_states);
  shards_ = std::move(set.shards);
  vocab_ = std::move(set.vocab);
  stats_ = std::move(set.stats);
  centroids_ = std::move(set.centroids);
  num_clusters_ = set.num_clusters;
  seed_order_ = std::move(set.doc_order);
  next_id_.store(set.watermark, std::memory_order_relaxed);

  if (options.cache.capacity > 0) {
    cache_ = std::make_unique<QueryCache>(options.cache);
  }
  shared_pool_ = options.scatter_pool;
  if (num_shards > 1 && shared_pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(num_shards);
  }
  tenant_label_ = options.tenant.empty() ? "default" : options.tenant;

  // Every per-instance series carries the tenant label: the registry is
  // process-wide and find_or_create dedupes on (kind, name, labels), so
  // without it two coexisting instances would share one ibseg_shard_docs
  // gauge and clobber each other's values.
  obs::MetricsRegistry& r = obs::MetricsRegistry::global();
  obs::Labels tenant_only{{"tenant", tenant_label_}};
  scatter_seconds_ = &r.histogram(
      "ibseg_scatter_seconds",
      "Scatter-phase latency of a sharded query (all shard legs), in "
      "seconds.",
      tenant_only);
  merge_seconds_ = &r.histogram(
      "ibseg_merge_seconds",
      "Gather/merge-phase latency of a sharded query, in seconds.",
      tenant_only);
  shard_queries_.reserve(num_shards);
  shard_docs_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    obs::Labels labels{{"shard", std::to_string(s)},
                       {"tenant", tenant_label_}};
    shard_queries_.push_back(&r.counter(
        "ibseg_shard_queries_total",
        "Scatter legs dispatched to this shard.", labels));
    shard_docs_.push_back(&r.gauge(
        "ibseg_shard_docs", "Documents resident on this shard.", labels));
    shard_docs_.back()->set(static_cast<double>(shards_[s]->num_docs()));
  }
  return true;
}

bool ShardedServing::open_persistence(bool fresh) {
  std::error_code ec;
  std::filesystem::create_directories(persist_dir_, ec);
  if (ec) return false;
  for (uint32_t s = 0; s < num_shards(); ++s) {
    std::filesystem::create_directories(shard_subdir(persist_dir_, s), ec);
    if (ec) return false;
  }
  std::vector<WalRecord> discard;
  journal_ = IngestWal::open(journal_path(persist_dir_), wal_options_,
                             &discard);
  if (journal_ == nullptr) return false;
  if (fresh && !discard.empty() && !journal_->reset()) return false;
  wals_.clear();
  for (uint32_t s = 0; s < num_shards(); ++s) {
    discard.clear();
    std::unique_ptr<IngestWal> wal = IngestWal::open(
        shard_wal_path(persist_dir_, s), wal_options_, &discard);
    if (wal == nullptr) return false;
    if (fresh && !discard.empty() && !wal->reset()) return false;
    wals_.push_back(std::move(wal));
  }
  return true;
}

uint64_t ShardedServing::epoch_unlocked() const {
  uint64_t e = 0;
  for (const auto& s : shards_) e += s->epoch();
  return e;
}

size_t ShardedServing::num_docs_unlocked() const {
  size_t n = 0;
  for (const auto& s : shards_) n += s->num_docs();
  return n;
}

uint64_t ShardedServing::epoch() const {
  std::shared_lock<std::shared_mutex> gen_lock(recluster_mu_);
  return epoch_unlocked();
}

size_t ShardedServing::num_docs() const {
  std::shared_lock<std::shared_mutex> gen_lock(recluster_mu_);
  return num_docs_unlocked();
}

size_t ShardedServing::pending_pool_size() const {
  std::shared_lock<std::shared_mutex> gen_lock(recluster_mu_);
  size_t n = 0;
  for (const auto& s : shards_) n += s->pending_pool_size();
  return n;
}

uint64_t ShardedServing::docs_since_recluster() const {
  std::shared_lock<std::shared_mutex> gen_lock(recluster_mu_);
  uint64_t n = 0;
  for (const auto& s : shards_) n += s->docs_since_recluster();
  return n;
}

uint64_t ShardedServing::offline_publications() const {
  std::shared_lock<std::shared_mutex> lock(publish_mu_);
  return offline_pubs_;
}

int ShardedServing::num_clusters() const {
  std::shared_lock<std::shared_mutex> lock(publish_mu_);
  return num_clusters_;
}

ShardedServing::QueryResult ShardedServing::scatter_gather(
    const std::vector<std::pair<int, TermVector>>& queries, DocId exclude,
    int k) const {
  QueryResult r;
  if (queries.empty() || k <= 0) {
    r.epoch = epoch_unlocked();
    r.num_docs = num_docs_unlocked();
    return r;
  }
  int n = matcher_options_.top_n_factor * k;

  // One copy-on-write statistics view per queried cluster, grabbed once —
  // every shard scores against the same snapshot, and a publication racing
  // this query cannot shift the collection statistics mid-scatter.
  std::vector<std::shared_ptr<const ClusterCollectionStats>> views;
  views.reserve(queries.size());
  for (const auto& [cluster, terms] : queries) {
    views.push_back(stats_->cluster(cluster));
  }

  const uint32_t ns = num_shards();
  std::vector<ServingPipeline::ShardMatch> legs(ns);
  {
    Stopwatch watch;
    auto leg = [&](uint32_t s) {
      legs[s] = shards_[s]->match_clusters(queries, exclude, n, views);
      shard_queries_[s]->inc();
    };
    ThreadPool* pool = scatter_pool();
    if (pool != nullptr && ns > 1) {
      TaskGroup group(*pool);
      for (uint32_t s = 0; s < ns; ++s) {
        group.run([&leg, s] { leg(s); });
      }
      group.wait();
    } else {
      for (uint32_t s = 0; s < ns; ++s) leg(s);
    }
    scatter_seconds_->observe(watch.elapsed_seconds());
  }

  // Gather. Per cluster: concatenate the shard lists, re-sort by the
  // deterministic (score desc, DocId asc) rule and cut to n — within one
  // cluster a document has at most one refined segment, so the ordering
  // is total and the merged list equals the unpartitioned per-intention
  // list element for element. Then Algorithm 2's weighted sum runs in
  // ascending cluster order over those identical sequences, making the
  // accumulated doubles bit-identical to the single-pipeline path.
  Stopwatch merge_watch;
  std::unordered_map<DocId, double> merged;
  for (size_t i = 0; i < queries.size(); ++i) {
    std::vector<ScoredDoc> combined;
    size_t total = 0;
    for (uint32_t s = 0; s < ns; ++s) total += legs[s].lists[i].size();
    combined.reserve(total);
    for (uint32_t s = 0; s < ns; ++s) {
      combined.insert(combined.end(), legs[s].lists[i].begin(),
                      legs[s].lists[i].end());
    }
    std::sort(combined.begin(), combined.end(), by_score_then_doc);
    if (matcher_options_.score_threshold <= 0.0 &&
        combined.size() > static_cast<size_t>(n)) {
      combined.resize(static_cast<size_t>(n));
    }
    double weight = weight_of(matcher_options_, queries[i].first);
    for (const ScoredDoc& sd : combined) {
      merged[sd.doc] += weight * sd.score;
    }
  }
  obs::TraceScope top_k(obs::Stage::kTopK);
  r.results.reserve(merged.size());
  for (const auto& [doc, score] : merged) {
    r.results.push_back(ScoredDoc{doc, score});
  }
  std::sort(r.results.begin(), r.results.end(), by_score_then_doc);
  if (r.results.size() > static_cast<size_t>(k)) {
    r.results.resize(static_cast<size_t>(k));
  }
  for (uint32_t s = 0; s < ns; ++s) {
    r.epoch += legs[s].epoch;
    r.num_docs += legs[s].num_docs;
  }
  merge_seconds_->observe(merge_watch.elapsed_seconds());
  return r;
}

ShardedServing::QueryResult ShardedServing::find_related(DocId query,
                                                         int k) const {
  // One generation end to end: held shared across lookup, scatter and
  // insert, so a recluster swap (which needs this lock exclusively) can
  // never replace the shard set, statistics board or vocabulary
  // mid-query — and the generation read below is pinned for the whole
  // call, keying any insert to the generation that produced it.
  std::shared_lock<std::shared_mutex> gen_lock(recluster_mu_);
  QueryCache::Key key{query, k, matcher_fingerprint_,
                      generation_.load(std::memory_order_relaxed)};
  if (cache_ != nullptr) {
    if (auto cached = cache_->lookup(key, epoch_unlocked())) {
      return QueryResult{std::move(cached->results), cached->epoch,
                         cached->num_docs};
    }
  }
  uint32_t owner = shard_of(query, num_shards());
  std::vector<std::pair<int, TermVector>> qterms =
      shards_[owner]->doc_cluster_terms(query);
  // Zero-weight clusters never contribute (their unpartitioned lists stay
  // empty), so dropping them before the scatter is exact.
  qterms.erase(std::remove_if(qterms.begin(), qterms.end(),
                              [&](const std::pair<int, TermVector>& q) {
                                return weight_of(matcher_options_, q.first) <=
                                       0.0;
                              }),
               qterms.end());
  QueryResult r = scatter_gather(qterms, query, k);
  if (cache_ != nullptr && epoch_unlocked() == r.epoch) {
    // Only a quiescent cut is worth caching: if any shard published while
    // the scatter ran, the combined epoch moved and the entry would be
    // born stale anyway.
    cache_->insert(key, QueryCache::Value{r.results, r.epoch, r.num_docs});
  }
  return r;
}

std::vector<ShardedServing::QueryResult> ShardedServing::find_related_batch(
    const std::vector<DocId>& queries, int k) const {
  std::vector<QueryResult> out;
  out.reserve(queries.size());
  for (DocId q : queries) out.push_back(find_related(q, k));
  return out;
}

ShardedServing::QueryResult ShardedServing::find_related_external(
    const Document& doc, int k) const {
  Vocabulary scratch;
  Segmentation seg = segmenter_.segment(doc, scratch);
  // Generation pin (see find_related); taken after the lock-free
  // segmentation, before touching centroids_/vocab_/shards_. Lock order:
  // recluster_mu_ (shared) then publish_mu_ (shared) — the same nesting
  // the swap uses exclusively.
  std::shared_lock<std::shared_mutex> gen_lock(recluster_mu_);
  std::map<int, TermVector> per_cluster;
  {
    // The shared vocabulary grows under publish_mu_; assignment only reads
    // it, so shared mode suffices and queries still run concurrently.
    std::shared_lock<std::shared_mutex> lock(publish_mu_);
    per_cluster = IntentionMatcher::assign_external(
        doc, seg, centroids_, *vocab_,
        static_cast<size_t>(num_clusters_));
  }
  std::vector<std::pair<int, TermVector>> queries;
  queries.reserve(per_cluster.size());
  for (auto& [cluster, terms] : per_cluster) {
    if (terms.empty()) continue;
    if (weight_of(matcher_options_, cluster) <= 0.0) continue;
    queries.emplace_back(cluster, std::move(terms));
  }
  return scatter_gather(queries, IntentionMatcher::kNoDocId, k);
}

PreparedPost ShardedServing::prepare(DocId id, std::string text) const {
  PreparedPost post;
  post.doc = Document::analyze(id, std::move(text));
  Vocabulary scratch;
  post.seg = segmenter_.segment(post.doc, scratch);
  return post;
}

void ShardedServing::publish_locked(uint32_t owner, PreparedPost post,
                                    bool log, const std::string& text) {
  DocId id = post.doc.id();
  if (log && journal_ != nullptr) {
    // Journal first (global order), then the owner's WAL (payload), then
    // the index publish — so on replay a journal entry without WAL data
    // means "never published" and is skipped, never guessed at.
    journal_->append(WalRecord{id, std::string()});
    wals_[owner]->append(WalRecord{id, text});
  }
  pub_shard_pos_.push_back(shards_[owner]->num_docs());
  shards_[owner]->publish_prepared(std::move(post));
  publication_order_.push_back(id);
  shard_docs_[owner]->set(static_cast<double>(shards_[owner]->num_docs()));
}

DocId ShardedServing::add_post(std::string text) {
  DocId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  uint32_t owner = shard_of(id, num_shards());
  std::string logged = journal_ != nullptr ? text : std::string();
  PreparedPost post = prepare(id, std::move(text));
  std::unique_lock<std::shared_mutex> lock(publish_mu_);
  publish_locked(owner, std::move(post), /*log=*/true, logged);
  return id;
}

std::vector<DocId> ShardedServing::add_posts(std::vector<std::string> texts) {
  std::vector<DocId> ids;
  std::vector<PreparedPost> prepared;
  std::vector<std::string> logged;
  ids.reserve(texts.size());
  prepared.reserve(texts.size());
  if (journal_ != nullptr) logged.reserve(texts.size());
  for (std::string& text : texts) {
    DocId id = next_id_.fetch_add(1, std::memory_order_relaxed);
    ids.push_back(id);
    if (journal_ != nullptr) logged.push_back(text);
    prepared.push_back(prepare(id, std::move(text)));
  }
  std::unique_lock<std::shared_mutex> lock(publish_mu_);
  for (size_t i = 0; i < prepared.size(); ++i) {
    publish_locked(shard_of(ids[i], num_shards()), std::move(prepared[i]),
                   /*log=*/true,
                   journal_ != nullptr ? logged[i] : std::string());
  }
  return ids;
}

uint64_t ShardedServing::recluster() {
  std::lock_guard<std::mutex> job(recluster_job_mu_);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  Stopwatch watch;
  const uint32_t ns = num_shards();

  // Phase 1 — capture a consistent global cut under publish_mu_ shared:
  // ingests (exclusive) are blocked for the duration of the copy, queries
  // are not. Shard corpora are append-only in publication order, so the
  // global order (seed_order_ then publication_order_) walks each shard's
  // docs front to back with a plain per-shard cursor — no id lookup maps.
  std::vector<Document> docs;
  std::vector<Segmentation> segs;
  std::vector<size_t> captured_per_shard(ns, 0);
  size_t captured_pubs = 0;
  std::vector<std::vector<double>> old_centroids;
  {
    std::shared_lock<std::shared_mutex> lock(publish_mu_);
    captured_pubs = publication_order_.size();
    old_centroids = centroids_;
    docs.reserve(seed_order_.size() + captured_pubs);
    segs.reserve(seed_order_.size() + captured_pubs);
    auto grab = [&](DocId id) {
      uint32_t s = shard_of(id, ns);
      const RelatedPostPipeline& q = shards_[s]->quiescent();
      size_t d = captured_per_shard[s]++;
      docs.push_back(q.docs()[d]);
      segs.push_back(q.segmentations()[d]);
    };
    for (DocId id : seed_order_) grab(id);
    for (size_t i = 0; i < captured_pubs; ++i) grab(publication_order_[i]);
  }

  // Phase 2 — shadow build, no lock held: the FULL offline phase over the
  // captured cut (clustering from the stored segmentations — segmentation
  // itself is deterministic and already done), then a complete shard set:
  // fresh shared vocabulary, fresh statistics board, fresh per-shard
  // indices. Bit-identical to ShardedServing::create over the captured
  // corpus by construction — it runs the same code. The live generation
  // keeps serving untouched.
  IntentionClustering clustering;
  {
    obs::TraceScope grouping(obs::Stage::kClusterAssign);
    clustering =
        IntentionClustering::build(docs, segs, pipeline_options_.grouping);
  }
  const double drift = centroid_drift(old_centroids, clustering.centroids());
  const uint64_t new_gen = generation_.load(std::memory_order_relaxed) + 1;
  std::vector<ServingPipeline::RestoreState> states(ns);
  for (uint32_t s = 0; s < ns; ++s) {
    // The new shard pipelines adopt their shard's prior coordinates: the
    // whole captured slice is offline-covered, but the publication epoch
    // keeps counting from the original seed partition so the manifest
    // invariant (docs == seed + epoch, summed to the global orders) and
    // the serving invariant (num_docs == seed_docs + epoch) both survive
    // the swap unchanged.
    states[s].epoch = captured_per_shard[s] - shards_[s]->seed_docs();
    states[s].ingested_docs = states[s].epoch;
    states[s].next_id = next_id_.load(std::memory_order_relaxed);
    states[s].generation = new_gen;
    states[s].offline_docs = captured_per_shard[s];
  }
  ShardSet set =
      build_shard_set(std::move(docs), std::move(segs), clustering,
                      pipeline_options_, recluster_options_, ns, &states);

  // Phase 3 — catch-up + swap under recluster_mu_ exclusive (queries
  // drain and block) then publish_mu_ exclusive (ingests block):
  // publications that landed during the shadow build are replayed into
  // the new shard set through the deterministic publish path — copied
  // from the OLD shards' tails, again by cursor — then every
  // generation-scoped member swaps in one block.
  uint64_t gen = 0;
  {
    std::unique_lock<std::shared_mutex> gen_lock(recluster_mu_);
    std::unique_lock<std::shared_mutex> lock(publish_mu_);
    std::vector<size_t> cursor = captured_per_shard;
    for (size_t i = captured_pubs; i < publication_order_.size(); ++i) {
      DocId id = publication_order_[i];
      uint32_t s = shard_of(id, ns);
      const RelatedPostPipeline& q = shards_[s]->quiescent();
      size_t d = cursor[s]++;
      PreparedPost post;
      post.doc = q.docs()[d];
      post.seg = q.segmentations()[d];
      set.shards[s]->publish_prepared(std::move(post));
    }
    shards_ = std::move(set.shards);
    vocab_ = std::move(set.vocab);
    stats_ = std::move(set.stats);
    centroids_ = std::move(set.centroids);
    num_clusters_ = set.num_clusters;
    offline_pubs_ = captured_pubs;
    gen = generation_.fetch_add(1, std::memory_order_relaxed) + 1;
    // Publications from the captured cut onward carry the new generation —
    // followers mirror this boundary by reclustering at exactly
    // captured_pubs applied frames (ship_segment never lets frames cross
    // it), which reproduces this clustering bit-identically.
    gen_history_.push_back(GenSpan{captured_pubs, gen});
    for (uint32_t s = 0; s < ns; ++s) {
      shard_docs_[s]->set(static_cast<double>(shards_[s]->num_docs()));
    }
  }
  obs::Labels tenant_only{{"tenant", tenant_label_}};
  reg.counter("ibseg_recluster_total",
              "Completed background re-clustering epochs (shadow "
              "rebuild + atomic swap).",
              tenant_only)
      .inc();
  reg.gauge("ibseg_offline_generation",
            "Offline generation: completed background reclusters.",
            tenant_only)
      .set(static_cast<double>(gen));
  reg.gauge("ibseg_recluster_drift",
            "Centroid drift repaired by the last recluster: 1 - "
            "mean best-cosine alignment between the old and new "
            "centroid sets.",
            tenant_only)
      .set(drift);
  reg.histogram("ibseg_recluster_seconds",
                "End-to-end background recluster latency (capture + "
                "shadow rebuild + catch-up + swap), in seconds.",
                tenant_only)
      .observe(watch.elapsed_seconds());
  return gen;
}

bool ShardedServing::save(const std::string& dir) {
  std::unique_lock<std::shared_mutex> lock(publish_mu_);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;
  // The generation cannot move under us: a swap needs publish_mu_
  // exclusively. Snapshot files are generation-qualified, so a
  // post-recluster save never overwrites the previous generation's files
  // — a crash anywhere in this function leaves the old manifest pointing
  // at old-generation files that are still intact.
  const uint64_t gen = generation_.load(std::memory_order_relaxed);
  for (uint32_t s = 0; s < num_shards(); ++s) {
    std::filesystem::create_directories(shard_subdir(dir, s), ec);
    if (ec) return false;
    if (!shards_[s]->save(shard_snapshot_path(dir, s, gen))) return false;
  }
  ShardManifest m;
  m.num_shards = num_shards();
  m.next_id = next_id_.load(std::memory_order_relaxed);
  m.num_clusters = num_clusters_;
  m.generation = gen;
  m.offline_publications = offline_pubs_;
  m.seed_order = seed_order_;
  m.publication_order = publication_order_;
  m.shards.reserve(shards_.size());
  for (const auto& s : shards_) {
    m.shards.push_back(
        ShardManifestEntry{s->num_docs(), s->seed_docs(), s->epoch()});
  }
  // The manifest rename is the commit point: every snapshot it describes
  // is already on disk. A crash before this line restores from the OLD
  // manifest (new snapshots are "ahead" — the legal direction); after it,
  // from the new one.
  if (!save_shard_manifest_file(m, dir + "/MANIFEST")) return false;
  // Logged records are now baked into the snapshots; truncate AFTER the
  // commit so a crash in between merely replays-and-dedups.
  if (journal_ != nullptr && dir == persist_dir_) {
    for (auto& wal : wals_) wal->reset();
    journal_->reset();
  }
  // Post-commit garbage collection: earlier generations' snapshot files
  // are unreachable now (the manifest names this generation) — deleting
  // them is safe at any point after the commit, and a crash mid-sweep
  // just leaves harmless orphans for the next save to collect. Only names
  // this layer itself writes ("snapshot.v2" / "snapshot.g<N>.v2") are
  // collected; foreign files in the shard directory are left alone.
  auto is_generation_snapshot = [](const std::string& name) {
    if (name == "snapshot.v2") return true;
    if (name.rfind("snapshot.g", 0) != 0) return false;
    size_t i = std::string("snapshot.g").size();
    size_t digits = 0;
    while (i < name.size() && name[i] >= '0' && name[i] <= '9') {
      ++i;
      ++digits;
    }
    return digits > 0 && name.compare(i, std::string::npos, ".v2") == 0;
  };
  for (uint32_t s = 0; s < num_shards(); ++s) {
    const std::string keep =
        std::filesystem::path(shard_snapshot_path(dir, s, gen))
            .filename()
            .string();
    for (const auto& entry :
         std::filesystem::directory_iterator(shard_subdir(dir, s), ec)) {
      if (ec) break;
      const std::string name = entry.path().filename().string();
      if (name != keep && is_generation_snapshot(name)) {
        std::filesystem::remove(entry.path(), ec);
      }
    }
  }
  return true;
}

std::unique_ptr<ShardedServing> ShardedServing::restore(
    const std::string& dir, const PipelineOptions& pipeline_options,
    ServingOptions options) {
  std::optional<ShardManifest> m =
      load_shard_manifest_file(dir + "/MANIFEST");
  if (!m.has_value()) return nullptr;
  const uint32_t ns = m->num_shards;
  const uint64_t gen = m->generation;
  const size_t offline_pubs = static_cast<size_t>(m->offline_publications);

  std::vector<ServingSnapshot> snaps;
  snaps.reserve(ns);
  for (uint32_t s = 0; s < ns; ++s) {
    std::optional<ServingSnapshot> snap =
        load_snapshot_v2_file(shard_snapshot_path(dir, s, gen));
    if (!snap.has_value()) return nullptr;
    // Cross-file torn-restore checks against the sibling manifest entry:
    // the committed manifest was written AFTER every snapshot rename, so a
    // snapshot with fewer documents than its entry claims — or a different
    // seed partition, cluster count, or offline generation — cannot be the
    // file this manifest committed. Snapshot AHEAD of the entry is the
    // legal crash window (save interrupted between renames and commit).
    if (snap->num_seed_docs != m->shards[s].seed_docs) return nullptr;
    if (snap->doc_ids.size() < m->shards[s].docs) return nullptr;
    if (snap->num_clusters != m->num_clusters) return nullptr;
    if (snap->offline_generation != gen) return nullptr;
    snaps.push_back(std::move(*snap));
  }

  // Reassemble the global OFFLINE-COVERED corpus in the recorded global
  // order: the seed corpus plus — past the first recluster — the leading
  // offline_publications publications whose labels the recluster baked
  // into the shard snapshots. Every document must sit at its hash-owner
  // shard's offline section, and the per-shard offline coverage must add
  // up to exactly that global prefix.
  std::vector<size_t> eff_offline(ns);
  uint64_t offline_total = 0;
  for (uint32_t s = 0; s < ns; ++s) {
    eff_offline[s] = static_cast<size_t>(std::max<uint64_t>(
        snaps[s].offline_docs, snaps[s].num_seed_docs));
    offline_total += eff_offline[s];
  }
  if (offline_total != m->seed_order.size() + offline_pubs) return nullptr;
  std::vector<std::unordered_map<DocId, size_t>> offline_pos(ns);
  std::vector<std::vector<size_t>> label_offset(ns);
  for (uint32_t s = 0; s < ns; ++s) {
    size_t off = 0;
    label_offset[s].reserve(eff_offline[s]);
    for (size_t d = 0; d < eff_offline[s]; ++d) {
      offline_pos[s][snaps[s].doc_ids[d]] = d;
      label_offset[s].push_back(off);
      off += num_labels(snaps[s].segmentations[d]);
    }
    if (off != snaps[s].seed_labels.size() + snaps[s].offline_labels.size()) {
      return nullptr;
    }
  }
  std::vector<Document> docs;
  std::vector<Segmentation> segmentations;
  std::vector<int> labels;
  docs.reserve(offline_total);
  segmentations.reserve(offline_total);
  std::vector<DocId> offline_order = m->seed_order;
  offline_order.insert(offline_order.end(), m->publication_order.begin(),
                       m->publication_order.begin() +
                           static_cast<std::ptrdiff_t>(offline_pubs));
  for (DocId id : offline_order) {
    uint32_t s = shard_of(id, ns);
    auto it = offline_pos[s].find(id);
    if (it == offline_pos[s].end()) return nullptr;
    size_t d = it->second;
    docs.push_back(Document::analyze(id, snaps[s].doc_texts[d]));
    segmentations.push_back(snaps[s].segmentations[d]);
    size_t off = label_offset[s][d];
    size_t count = num_labels(snaps[s].segmentations[d]);
    const std::vector<int>& seed_l = snaps[s].seed_labels;
    for (size_t i = 0; i < count; ++i) {
      size_t idx = off + i;
      labels.push_back(idx < seed_l.size()
                           ? seed_l[idx]
                           : snaps[s].offline_labels[idx - seed_l.size()]);
    }
  }
  PipelineSnapshot global_snap;
  global_snap.segmentations = segmentations;
  global_snap.segment_labels = std::move(labels);
  global_snap.num_clusters = m->num_clusters;
  if (!global_snap.is_consistent()) return nullptr;
  IntentionClustering clustering = restore_clustering(docs, global_snap);
  // Pin the centroids to the saved values (each shard snapshot stores the
  // GLOBAL centroids — shards score with overridden global centroids, so
  // any one copy is authoritative). Until the first recluster this
  // reproduces the label-derived recomputation; after one it is the only
  // correct source (see ServingPipeline::restore).
  if (!snaps[0].centroids.empty() &&
      static_cast<int>(snaps[0].centroids.size()) ==
          clustering.num_clusters()) {
    clustering.override_centroids(snaps[0].centroids);
  }

  // Per-shard coordinates at the moment the offline slice alone is
  // loaded: everything past the shard's seed partition counts as
  // publication epoch; the pending pool and docs-since counters start
  // empty/zero and are re-derived deterministically by the replay below
  // (every pool member is by definition a post-offline ingest).
  std::vector<ServingPipeline::RestoreState> states(ns);
  for (uint32_t s = 0; s < ns; ++s) {
    states[s].epoch = eff_offline[s] - snaps[s].num_seed_docs;
    states[s].ingested_docs = states[s].epoch;
    states[s].next_id = m->next_id;
    states[s].generation = gen;
    states[s].offline_docs = eff_offline[s];
  }

  std::unique_ptr<ShardedServing> sp(new ShardedServing());
  if (!sp->init_shards(std::move(docs), std::move(segmentations), clustering,
                       pipeline_options, options, ns, &states)) {
    return nullptr;
  }
  // init_shards derived doc_order from its input — the offline corpus.
  // The durable global orders come from the manifest: the seed order
  // proper, and the offline-covered publications pre-filled so replay
  // continues exactly where the offline coverage ends.
  sp->seed_order_ = m->seed_order;
  sp->publication_order_.assign(
      m->publication_order.begin(),
      m->publication_order.begin() +
          static_cast<std::ptrdiff_t>(offline_pubs));
  // Rebuild each prefilled publication's owner-shard offset by walking the
  // global order with per-shard cursors — the same arithmetic the shard
  // arrays were assembled with. The replay below extends this through
  // publish_locked like live ingests do.
  {
    std::vector<size_t> cursor(ns, 0);
    for (DocId id : sp->seed_order_) cursor[shard_of(id, ns)]++;
    sp->pub_shard_pos_.reserve(sp->publication_order_.size());
    for (DocId id : sp->publication_order_) {
      sp->pub_shard_pos_.push_back(cursor[shard_of(id, ns)]++);
    }
  }
  // Generation attribution is known from the offline coverage on (older
  // spans died with the pre-save history); ship_segment answers
  // kSnapshotNeeded for anything earlier.
  sp->gen_history_.push_back(GenSpan{offline_pubs, gen});
  sp->generation_.store(gen, std::memory_order_relaxed);
  sp->offline_pubs_ = offline_pubs;
  sp->persist_dir_ = dir;
  sp->wal_options_ = options.persist.wal;

  // Open journal + WALs with replay (torn tails are truncated by open).
  std::vector<WalRecord> journal_recs;
  sp->journal_ =
      IngestWal::open(journal_path(dir), sp->wal_options_, &journal_recs);
  if (sp->journal_ == nullptr) return nullptr;
  std::vector<std::unordered_map<DocId, std::string>> wal_text(ns);
  for (uint32_t s = 0; s < ns; ++s) {
    std::vector<WalRecord> recs;
    std::unique_ptr<IngestWal> wal =
        IngestWal::open(shard_wal_path(dir, s), sp->wal_options_, &recs);
    if (wal == nullptr) return nullptr;
    for (WalRecord& rec : recs) wal_text[s][rec.id] = std::move(rec.text);
    sp->wals_.push_back(std::move(wal));
  }
  // Snapshot tails: ingested documents baked into each shard snapshot
  // BEYOND its offline coverage, with their stored segmentations. (The
  // offline slice itself was consumed by the cold rebuild above.)
  std::vector<std::unordered_map<DocId, size_t>> tail_pos(ns);
  for (uint32_t s = 0; s < ns; ++s) {
    for (size_t d = eff_offline[s]; d < snaps[s].doc_ids.size(); ++d) {
      tail_pos[s][snaps[s].doc_ids[d]] = d;
    }
  }

  // Replay every NOT-offline-covered publication in the recorded global
  // order (the first offline_publications entries were restored with the
  // offline corpus above). Manifest-listed publications are committed
  // state: each must exist in its shard's snapshot tail or WAL, anything
  // else is a torn directory. Journal entries beyond the manifest are the
  // crash tail: already-published ids dedup away, ids with no durable
  // payload were never published and are dropped (write-ahead order
  // guarantees no later entry could have been). Replaying through
  // publish_prepared also re-derives each shard's pending pool and
  // docs-since-recluster counter: every pool member is a post-recluster
  // ingest, so the replayed tail contains exactly the pool the save saw
  // plus whatever journal-tail survivors joined it.
  DocId watermark = m->next_id;
  std::unordered_set<DocId> published(offline_order.begin(),
                                      offline_order.end());
  auto replay_one = [&](DocId id) -> int {
    uint32_t s = shard_of(id, ns);
    PreparedPost post;
    auto tail = tail_pos[s].find(id);
    if (tail != tail_pos[s].end()) {
      size_t d = tail->second;
      post.doc = Document::analyze(id, std::move(snaps[s].doc_texts[d]));
      post.seg = std::move(snaps[s].segmentations[d]);
    } else {
      auto walled = wal_text[s].find(id);
      if (walled == wal_text[s].end()) return -1;
      post.doc = Document::analyze(id, std::move(walled->second));
      Vocabulary scratch;
      post.seg = sp->segmenter_.segment(post.doc, scratch);
    }
    sp->publish_locked(s, std::move(post), /*log=*/false, std::string());
    published.insert(id);
    watermark = std::max(watermark, id + 1);
    return 0;
  };
  for (size_t i = offline_pubs; i < m->publication_order.size(); ++i) {
    if (replay_one(m->publication_order[i]) != 0) return nullptr;
  }
  for (const WalRecord& rec : journal_recs) {
    if (published.count(rec.id) != 0) continue;
    replay_one(rec.id);  // -1 = journaled but never published; skip
  }
  DocId seen = sp->next_id_.load(std::memory_order_relaxed);
  sp->next_id_.store(std::max(seen, watermark), std::memory_order_relaxed);
  return sp;
}

ShardedServing::ShipSegment ShardedServing::ship_segment(
    uint64_t from_seq, uint64_t replica_generation, uint32_t max_frames,
    uint32_t max_bytes) const {
  ShipSegment out;
  // recluster_mu_ shared pins the shard set (a generation swap replaces
  // shards_ wholesale); publish_mu_ shared pins publication_order_ /
  // pub_shard_pos_ / gen_history_. Same order as queries — no new edges
  // in the lock graph.
  std::shared_lock<std::shared_mutex> gen_lock(recluster_mu_);
  std::shared_lock<std::shared_mutex> lock(publish_mu_);
  const uint64_t pubs = publication_order_.size();
  out.base_seq = from_seq;
  out.leader_seq = pubs;
  out.leader_generation = generation_.load(std::memory_order_relaxed);
  out.segment_generation = replica_generation;
  if (from_seq > pubs) {
    out.status = ShipSegment::Status::kAhead;
    return out;
  }
  // Locate the history span the follower's generation covers; generations
  // are unique in gen_history_ (each recluster mints a new one).
  size_t span = gen_history_.size();
  for (size_t i = 0; i < gen_history_.size(); ++i) {
    if (gen_history_[i].generation == replica_generation) {
      span = i;
      break;
    }
  }
  if (span == gen_history_.size()) {
    out.status = ShipSegment::Status::kSnapshotNeeded;
    return out;
  }
  const uint64_t lo = gen_history_[span].start_pubs;
  const uint64_t hi = span + 1 < gen_history_.size()
                          ? gen_history_[span + 1].start_pubs
                          : pubs;
  if (from_seq < lo || from_seq > hi) {
    // The follower claims a (seq, generation) pair that never existed on
    // this leader — divergent history or pre-coverage staleness. Either
    // way frames cannot help; only a snapshot can.
    out.status = ShipSegment::Status::kSnapshotNeeded;
    return out;
  }
  if (from_seq == hi) {
    // End of this generation's span: either a recluster boundary the
    // follower must now cross, or — at the last span — fully caught up.
    if (span + 1 < gen_history_.size()) {
      out.recluster_after = true;
      out.recluster_target = gen_history_[span + 1].generation;
    }
    return out;
  }
  const uint32_t ns = num_shards();
  const uint64_t end = std::min<uint64_t>(hi, from_seq + max_frames);
  for (uint64_t seq = from_seq; seq < end; ++seq) {
    const DocId id = publication_order_[seq];
    const uint32_t owner = shard_of(id, ns);
    const Document& doc =
        shards_[owner]->quiescent().docs()[pub_shard_pos_[seq]];
    std::string frame;
    wal_encode_frame(WalRecord{id, doc.text()}, &frame);
    // Byte cap applies once at least one frame is in: a single frame
    // larger than max_bytes still ships alone, so progress is guaranteed.
    if (out.frame_count > 0 && out.raw.size() + frame.size() > max_bytes) {
      break;
    }
    out.raw.append(frame);
    ++out.frame_count;
  }
  if (from_seq + out.frame_count == hi && span + 1 < gen_history_.size()) {
    out.recluster_after = true;
    out.recluster_target = gen_history_[span + 1].generation;
  }
  return out;
}

bool ShardedServing::apply_shipped(uint64_t base_seq,
                                   const std::vector<WalRecord>& records) {
  // Analysis + segmentation outside the lock, exactly like add_posts —
  // only the publications serialize.
  std::vector<PreparedPost> prepared;
  prepared.reserve(records.size());
  for (const WalRecord& rec : records) {
    prepared.push_back(prepare(rec.id, rec.text));
  }
  std::unique_lock<std::shared_mutex> lock(publish_mu_);
  for (size_t i = 0; i < records.size(); ++i) {
    const uint64_t seq = base_seq + i;
    const uint64_t pubs = publication_order_.size();
    if (seq < pubs) {
      // Duplicate delivery (a retried segment) — legal, but only of the
      // same history.
      if (publication_order_[seq] != records[i].id) return false;
      continue;
    }
    if (seq > pubs) return false;  // gap: applying would reorder history
    const DocId id = records[i].id;
    // Watermark before publish: the leader reserved this id, and any local
    // id reservation at or below it would collide after promotion.
    DocId seen = next_id_.load(std::memory_order_relaxed);
    while (seen < id + 1 &&
           !next_id_.compare_exchange_weak(seen, id + 1,
                                           std::memory_order_relaxed)) {
    }
    publish_locked(shard_of(id, num_shards()), std::move(prepared[i]),
                   /*log=*/true, records[i].text);
  }
  return true;
}

bool ShardedServing::catch_up_from_dir(const std::string& leader_dir) {
  std::optional<ShardManifest> m =
      load_shard_manifest_file(leader_dir + "/MANIFEST");
  if (!m.has_value() || m->num_shards != num_shards()) return false;
  const uint32_t ns = num_shards();
  // Scan the dead leader's logs read-only: promotion must not mutate the
  // leader directory (forensics, or a second promotion attempt, may still
  // need it). Torn tails are tolerated exactly like IngestWal::open — the
  // scan stops at the first invalid frame. A missing file is an empty
  // tail (the leader may have reset it at its last save).
  auto read_tail = [](const std::string& path, std::vector<WalRecord>* out) {
    std::ifstream is(path, std::ios::binary);
    if (!is) return;
    std::ostringstream ss;
    ss << is.rdbuf();
    const std::string data = ss.str();
    wal_scan_frames(data.data(), data.size(), out);
  };
  std::vector<WalRecord> journal_recs;
  read_tail(journal_path(leader_dir), &journal_recs);
  std::vector<std::unordered_map<DocId, std::string>> wal_text(ns);
  for (uint32_t s = 0; s < ns; ++s) {
    std::vector<WalRecord> recs;
    read_tail(shard_wal_path(leader_dir, s), &recs);
    for (WalRecord& rec : recs) wal_text[s][rec.id] = std::move(rec.text);
  }

  std::unique_lock<std::shared_mutex> lock(publish_mu_);
  // Lineage checks: same seed order, and my applied history must replay a
  // prefix of the leader's committed history.
  if (seed_order_ != m->seed_order) return false;
  const uint64_t my_pubs = publication_order_.size();
  const uint64_t m_pubs = m->publication_order.size();
  for (uint64_t seq = 0; seq < std::min(my_pubs, m_pubs); ++seq) {
    if (publication_order_[seq] != m->publication_order[seq]) return false;
  }
  DocId watermark =
      std::max(next_id_.load(std::memory_order_relaxed), m->next_id);
  std::unordered_set<DocId> published(publication_order_.begin(),
                                      publication_order_.end());
  auto apply = [&](DocId id, bool required) -> bool {
    const uint32_t s = shard_of(id, ns);
    auto it = wal_text[s].find(id);
    if (it == wal_text[s].end()) return !required;
    PreparedPost post;
    post.doc = Document::analyze(id, it->second);
    Vocabulary scratch;
    post.seg = segmenter_.segment(post.doc, scratch);
    publish_locked(s, std::move(post), /*log=*/true, it->second);
    published.insert(id);
    watermark = std::max(watermark, id + 1);
    return true;
  };
  // Manifest-committed publications beyond my epoch are required: their
  // payloads must still be in the leader's WAL tail (a committed save
  // since would have advanced the manifest past them). If one is missing
  // the follower lags a save boundary and must re-bootstrap, not promote.
  for (uint64_t seq = my_pubs; seq < m_pubs; ++seq) {
    if (!apply(m->publication_order[seq], /*required=*/true)) return false;
  }
  // Journal tail beyond the manifest: already-applied ids dedup away;
  // journaled-without-payload means the leader crashed before the WAL
  // append — by write-ahead order it was never published, never
  // acknowledged, and is dropped (mirrors restore()).
  for (const WalRecord& rec : journal_recs) {
    if (published.count(rec.id) != 0) continue;
    apply(rec.id, /*required=*/false);
  }
  DocId seen = next_id_.load(std::memory_order_relaxed);
  next_id_.store(std::max(seen, watermark), std::memory_order_relaxed);
  return true;
}

}  // namespace ibseg
