#include "core/sharded_serving.h"

#include <algorithm>
#include <filesystem>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/snapshot_v2.h"
#include "text/term_vector.h"
#include "util/stopwatch.h"

namespace ibseg {
namespace {

std::string shard_subdir(const std::string& dir, uint32_t s) {
  return dir + "/shard-" + std::to_string(s);
}
std::string shard_snapshot_path(const std::string& dir, uint32_t s) {
  return shard_subdir(dir, s) + "/snapshot.v2";
}
std::string shard_wal_path(const std::string& dir, uint32_t s) {
  return shard_subdir(dir, s) + "/wal";
}
std::string journal_path(const std::string& dir) {
  return dir + "/ingest.order";
}

/// One refined segment's term bag, interned into `vocab` — byte-for-byte
/// the accumulation IntentionMatcher::build performs per cluster member.
TermVector refined_segment_terms(const Document& doc,
                                 const RefinedSegment& seg,
                                 Vocabulary& vocab) {
  TermVector terms;
  for (auto [b, e] : seg.ranges) {
    size_t tok_b = doc.sentences()[b].token_begin;
    size_t tok_e = doc.sentences()[e - 1].token_end;
    terms.merge(build_term_vector(doc.tokens(), tok_b, tok_e, vocab));
  }
  return terms;
}

/// How many labels make_snapshot emitted for this segmentation: one per
/// non-empty raw segment (documents with no units contribute none).
size_t num_labels(const Segmentation& seg) {
  if (seg.num_units == 0) return 0;
  size_t n = 0;
  for (auto [b, e] : seg.segments()) {
    if (b != e) ++n;
  }
  return n;
}

double weight_of(const MatcherOptions& options, int cluster) {
  return static_cast<size_t>(cluster) < options.cluster_weights.size()
             ? options.cluster_weights[static_cast<size_t>(cluster)]
             : 1.0;
}

bool by_score_then_doc(const ScoredDoc& a, const ScoredDoc& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.doc < b.doc;
}

}  // namespace

uint32_t ShardedServing::shard_of(DocId id, uint32_t num_shards) {
  if (num_shards <= 1) return 0;
  // FNV-1a over the id's 4 little-endian bytes.
  uint64_t h = 14695981039346656037ull;
  for (int i = 0; i < 4; ++i) {
    h ^= (static_cast<uint64_t>(id) >> (8 * i)) & 0xffu;
    h *= 1099511628211ull;
  }
  return static_cast<uint32_t>(h % num_shards);
}

std::unique_ptr<ShardedServing> ShardedServing::create(
    std::vector<Document> docs, const PipelineOptions& pipeline_options,
    ServingOptions options) {
  uint32_t ns =
      options.num_shards <= 1 ? 1 : static_cast<uint32_t>(options.num_shards);

  // Offline phase over the FULL corpus — segmentation and clustering see
  // exactly what an unpartitioned build would, so centroids, labels and
  // every derived statistic are the unpartitioned values by construction.
  std::vector<Segmentation> segmentations(docs.size());
  if (pipeline_options.num_threads > 1 && docs.size() > 1) {
    ThreadPool pool(pipeline_options.num_threads);
    pool.parallel_for(docs.size(), [&](size_t d) {
      Vocabulary scratch;
      segmentations[d] = pipeline_options.segmenter.segment(docs[d], scratch);
    });
  } else {
    Vocabulary scratch;
    for (size_t d = 0; d < docs.size(); ++d) {
      segmentations[d] = pipeline_options.segmenter.segment(docs[d], scratch);
    }
  }
  IntentionClustering clustering;
  {
    obs::TraceScope grouping(obs::Stage::kClusterAssign);
    clustering = IntentionClustering::build(docs, segmentations,
                                            pipeline_options.grouping);
  }

  std::unique_ptr<ShardedServing> s(new ShardedServing());
  if (!s->init_shards(std::move(docs), std::move(segmentations), clustering,
                      pipeline_options, options, ns)) {
    return nullptr;
  }
  s->persist_dir_ = options.persist.shard_dir;
  s->wal_options_ = options.persist.wal;
  if (!s->persist_dir_.empty() && !s->open_persistence(/*fresh=*/true)) {
    return nullptr;
  }
  return s;
}

bool ShardedServing::init_shards(std::vector<Document> docs,
                                 std::vector<Segmentation> segmentations,
                                 const IntentionClustering& clustering,
                                 const PipelineOptions& pipeline_options,
                                 const ServingOptions& options,
                                 uint32_t num_shards) {
  num_clusters_ = clustering.num_clusters();
  centroids_ = clustering.centroids();
  matcher_options_ = pipeline_options.matcher;
  segmenter_ = pipeline_options.segmenter;
  matcher_fingerprint_ = matcher_options_fingerprint(matcher_options_);

  // Global label assignment, resolved against real document ids.
  std::vector<DocId> ids;
  ids.reserve(docs.size());
  for (const Document& d : docs) ids.push_back(d.id());
  PipelineSnapshot global_snap = make_snapshot(segmentations, clustering, ids);

  // Seeding pass: intern the shared vocabulary and feed the statistics
  // board in EXACTLY the order IntentionMatcher::build would — cluster-
  // major, member order within each cluster. Every shard build below then
  // finds all of its terms pre-interned, so TermIds are corpus-global and
  // independent of the partitioning.
  vocab_ = std::make_shared<Vocabulary>();
  stats_ = std::make_unique<GlobalIndexStats>(
      num_clusters_, matcher_options_.min_norm_fraction);
  std::map<DocId, size_t> doc_index;
  for (size_t d = 0; d < docs.size(); ++d) doc_index[docs[d].id()] = d;
  for (int c = 0; c < num_clusters_; ++c) {
    for (size_t seg_idx :
         clustering.cluster_members()[static_cast<size_t>(c)]) {
      const RefinedSegment& seg = clustering.segments()[seg_idx];
      const Document& doc = docs[doc_index[seg.doc]];
      stats_->append(c, refined_segment_terms(doc, seg, *vocab_),
                     /*refresh_now=*/false);
    }
    stats_->refresh(c);
  }

  // Partition the corpus in global document order: per-shard docs,
  // segmentations and label slices stay in that order, so each shard's
  // restore_clustering sees its members in the global relative order.
  std::vector<std::vector<Document>> shard_docs(num_shards);
  std::vector<std::vector<Segmentation>> shard_segs(num_shards);
  std::vector<std::vector<int>> shard_labels(num_shards);
  DocId watermark = 1;
  size_t label_pos = 0;
  seed_order_.reserve(docs.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    DocId id = docs[d].id();
    uint32_t s = shard_of(id, num_shards);
    size_t labels = num_labels(segmentations[d]);
    for (size_t i = 0; i < labels; ++i) {
      shard_labels[s].push_back(global_snap.segment_labels[label_pos + i]);
    }
    label_pos += labels;
    shard_segs[s].push_back(std::move(segmentations[d]));
    shard_docs[s].push_back(std::move(docs[d]));
    seed_order_.push_back(id);
    watermark = std::max(watermark, id + 1);
  }
  next_id_.store(watermark, std::memory_order_relaxed);

  // Build each shard over its slice: shared vocabulary, global centroids,
  // global cluster count. Shard pipelines carry no cache and no WAL of
  // their own — both live at this layer.
  shards_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    PipelineSnapshot snap;
    snap.segmentations = std::move(shard_segs[s]);
    snap.segment_labels = std::move(shard_labels[s]);
    snap.num_clusters = num_clusters_;
    RelatedPostPipeline p = RelatedPostPipeline::build_shard(
        std::move(shard_docs[s]), snap, vocab_, centroids_, pipeline_options);
    shards_.push_back(
        std::make_unique<ServingPipeline>(std::move(p), ServingOptions{}));
    shards_.back()->set_stats_sink(stats_.get());
  }

  if (options.cache.capacity > 0) {
    cache_ = std::make_unique<QueryCache>(options.cache);
  }
  if (num_shards > 1) {
    pool_ = std::make_unique<ThreadPool>(num_shards);
  }

  obs::MetricsRegistry& r = obs::MetricsRegistry::global();
  scatter_seconds_ = &r.histogram(
      "ibseg_scatter_seconds",
      "Scatter-phase latency of a sharded query (all shard legs), in "
      "seconds.");
  merge_seconds_ = &r.histogram(
      "ibseg_merge_seconds",
      "Gather/merge-phase latency of a sharded query, in seconds.");
  shard_queries_.reserve(num_shards);
  shard_docs_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    obs::Labels labels{{"shard", std::to_string(s)}};
    shard_queries_.push_back(&r.counter(
        "ibseg_shard_queries_total",
        "Scatter legs dispatched to this shard.", labels));
    shard_docs_.push_back(&r.gauge(
        "ibseg_shard_docs", "Documents resident on this shard.", labels));
    shard_docs_.back()->set(static_cast<double>(shards_[s]->num_docs()));
  }
  return true;
}

bool ShardedServing::open_persistence(bool fresh) {
  std::error_code ec;
  std::filesystem::create_directories(persist_dir_, ec);
  if (ec) return false;
  for (uint32_t s = 0; s < num_shards(); ++s) {
    std::filesystem::create_directories(shard_subdir(persist_dir_, s), ec);
    if (ec) return false;
  }
  std::vector<WalRecord> discard;
  journal_ = IngestWal::open(journal_path(persist_dir_), wal_options_,
                             &discard);
  if (journal_ == nullptr) return false;
  if (fresh && !discard.empty() && !journal_->reset()) return false;
  wals_.clear();
  for (uint32_t s = 0; s < num_shards(); ++s) {
    discard.clear();
    std::unique_ptr<IngestWal> wal = IngestWal::open(
        shard_wal_path(persist_dir_, s), wal_options_, &discard);
    if (wal == nullptr) return false;
    if (fresh && !discard.empty() && !wal->reset()) return false;
    wals_.push_back(std::move(wal));
  }
  return true;
}

uint64_t ShardedServing::epoch() const {
  uint64_t e = 0;
  for (const auto& s : shards_) e += s->epoch();
  return e;
}

size_t ShardedServing::num_docs() const {
  size_t n = 0;
  for (const auto& s : shards_) n += s->num_docs();
  return n;
}

ShardedServing::QueryResult ShardedServing::scatter_gather(
    const std::vector<std::pair<int, TermVector>>& queries, DocId exclude,
    int k) const {
  QueryResult r;
  if (queries.empty() || k <= 0) {
    r.epoch = epoch();
    r.num_docs = num_docs();
    return r;
  }
  int n = matcher_options_.top_n_factor * k;

  // One copy-on-write statistics view per queried cluster, grabbed once —
  // every shard scores against the same snapshot, and a publication racing
  // this query cannot shift the collection statistics mid-scatter.
  std::vector<std::shared_ptr<const ClusterCollectionStats>> views;
  views.reserve(queries.size());
  for (const auto& [cluster, terms] : queries) {
    views.push_back(stats_->cluster(cluster));
  }

  const uint32_t ns = num_shards();
  std::vector<ServingPipeline::ShardMatch> legs(ns);
  {
    Stopwatch watch;
    auto leg = [&](uint32_t s) {
      legs[s] = shards_[s]->match_clusters(queries, exclude, n, views);
      shard_queries_[s]->inc();
    };
    if (pool_ != nullptr && ns > 1) {
      TaskGroup group(*pool_);
      for (uint32_t s = 0; s < ns; ++s) {
        group.run([&leg, s] { leg(s); });
      }
      group.wait();
    } else {
      for (uint32_t s = 0; s < ns; ++s) leg(s);
    }
    scatter_seconds_->observe(watch.elapsed_seconds());
  }

  // Gather. Per cluster: concatenate the shard lists, re-sort by the
  // deterministic (score desc, DocId asc) rule and cut to n — within one
  // cluster a document has at most one refined segment, so the ordering
  // is total and the merged list equals the unpartitioned per-intention
  // list element for element. Then Algorithm 2's weighted sum runs in
  // ascending cluster order over those identical sequences, making the
  // accumulated doubles bit-identical to the single-pipeline path.
  Stopwatch merge_watch;
  std::unordered_map<DocId, double> merged;
  for (size_t i = 0; i < queries.size(); ++i) {
    std::vector<ScoredDoc> combined;
    size_t total = 0;
    for (uint32_t s = 0; s < ns; ++s) total += legs[s].lists[i].size();
    combined.reserve(total);
    for (uint32_t s = 0; s < ns; ++s) {
      combined.insert(combined.end(), legs[s].lists[i].begin(),
                      legs[s].lists[i].end());
    }
    std::sort(combined.begin(), combined.end(), by_score_then_doc);
    if (matcher_options_.score_threshold <= 0.0 &&
        combined.size() > static_cast<size_t>(n)) {
      combined.resize(static_cast<size_t>(n));
    }
    double weight = weight_of(matcher_options_, queries[i].first);
    for (const ScoredDoc& sd : combined) {
      merged[sd.doc] += weight * sd.score;
    }
  }
  obs::TraceScope top_k(obs::Stage::kTopK);
  r.results.reserve(merged.size());
  for (const auto& [doc, score] : merged) {
    r.results.push_back(ScoredDoc{doc, score});
  }
  std::sort(r.results.begin(), r.results.end(), by_score_then_doc);
  if (r.results.size() > static_cast<size_t>(k)) {
    r.results.resize(static_cast<size_t>(k));
  }
  for (uint32_t s = 0; s < ns; ++s) {
    r.epoch += legs[s].epoch;
    r.num_docs += legs[s].num_docs;
  }
  merge_seconds_->observe(merge_watch.elapsed_seconds());
  return r;
}

ShardedServing::QueryResult ShardedServing::find_related(DocId query,
                                                         int k) const {
  QueryCache::Key key{query, k, matcher_fingerprint_};
  if (cache_ != nullptr) {
    if (auto cached = cache_->lookup(key, epoch())) {
      return QueryResult{std::move(cached->results), cached->epoch,
                         cached->num_docs};
    }
  }
  uint32_t owner = shard_of(query, num_shards());
  std::vector<std::pair<int, TermVector>> qterms =
      shards_[owner]->doc_cluster_terms(query);
  // Zero-weight clusters never contribute (their unpartitioned lists stay
  // empty), so dropping them before the scatter is exact.
  qterms.erase(std::remove_if(qterms.begin(), qterms.end(),
                              [&](const std::pair<int, TermVector>& q) {
                                return weight_of(matcher_options_, q.first) <=
                                       0.0;
                              }),
               qterms.end());
  QueryResult r = scatter_gather(qterms, query, k);
  if (cache_ != nullptr && epoch() == r.epoch) {
    // Only a quiescent cut is worth caching: if any shard published while
    // the scatter ran, the combined epoch moved and the entry would be
    // born stale anyway.
    cache_->insert(key, QueryCache::Value{r.results, r.epoch, r.num_docs});
  }
  return r;
}

std::vector<ShardedServing::QueryResult> ShardedServing::find_related_batch(
    const std::vector<DocId>& queries, int k) const {
  std::vector<QueryResult> out;
  out.reserve(queries.size());
  for (DocId q : queries) out.push_back(find_related(q, k));
  return out;
}

ShardedServing::QueryResult ShardedServing::find_related_external(
    const Document& doc, int k) const {
  Vocabulary scratch;
  Segmentation seg = segmenter_.segment(doc, scratch);
  std::map<int, TermVector> per_cluster;
  {
    // The shared vocabulary grows under publish_mu_; assignment only reads
    // it, so shared mode suffices and queries still run concurrently.
    std::shared_lock<std::shared_mutex> lock(publish_mu_);
    per_cluster = IntentionMatcher::assign_external(
        doc, seg, centroids_, *vocab_,
        static_cast<size_t>(num_clusters_));
  }
  std::vector<std::pair<int, TermVector>> queries;
  queries.reserve(per_cluster.size());
  for (auto& [cluster, terms] : per_cluster) {
    if (terms.empty()) continue;
    if (weight_of(matcher_options_, cluster) <= 0.0) continue;
    queries.emplace_back(cluster, std::move(terms));
  }
  return scatter_gather(queries, IntentionMatcher::kNoDocId, k);
}

PreparedPost ShardedServing::prepare(DocId id, std::string text) const {
  PreparedPost post;
  post.doc = Document::analyze(id, std::move(text));
  Vocabulary scratch;
  post.seg = segmenter_.segment(post.doc, scratch);
  return post;
}

void ShardedServing::publish_locked(uint32_t owner, PreparedPost post,
                                    bool log, const std::string& text) {
  DocId id = post.doc.id();
  if (log && journal_ != nullptr) {
    // Journal first (global order), then the owner's WAL (payload), then
    // the index publish — so on replay a journal entry without WAL data
    // means "never published" and is skipped, never guessed at.
    journal_->append(WalRecord{id, std::string()});
    wals_[owner]->append(WalRecord{id, text});
  }
  shards_[owner]->publish_prepared(std::move(post));
  publication_order_.push_back(id);
  shard_docs_[owner]->set(static_cast<double>(shards_[owner]->num_docs()));
}

DocId ShardedServing::add_post(std::string text) {
  DocId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  uint32_t owner = shard_of(id, num_shards());
  std::string logged = journal_ != nullptr ? text : std::string();
  PreparedPost post = prepare(id, std::move(text));
  std::unique_lock<std::shared_mutex> lock(publish_mu_);
  publish_locked(owner, std::move(post), /*log=*/true, logged);
  return id;
}

std::vector<DocId> ShardedServing::add_posts(std::vector<std::string> texts) {
  std::vector<DocId> ids;
  std::vector<PreparedPost> prepared;
  std::vector<std::string> logged;
  ids.reserve(texts.size());
  prepared.reserve(texts.size());
  if (journal_ != nullptr) logged.reserve(texts.size());
  for (std::string& text : texts) {
    DocId id = next_id_.fetch_add(1, std::memory_order_relaxed);
    ids.push_back(id);
    if (journal_ != nullptr) logged.push_back(text);
    prepared.push_back(prepare(id, std::move(text)));
  }
  std::unique_lock<std::shared_mutex> lock(publish_mu_);
  for (size_t i = 0; i < prepared.size(); ++i) {
    publish_locked(shard_of(ids[i], num_shards()), std::move(prepared[i]),
                   /*log=*/true,
                   journal_ != nullptr ? logged[i] : std::string());
  }
  return ids;
}

bool ShardedServing::save(const std::string& dir) {
  std::unique_lock<std::shared_mutex> lock(publish_mu_);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;
  for (uint32_t s = 0; s < num_shards(); ++s) {
    std::filesystem::create_directories(shard_subdir(dir, s), ec);
    if (ec) return false;
    if (!shards_[s]->save(shard_snapshot_path(dir, s))) return false;
  }
  ShardManifest m;
  m.num_shards = num_shards();
  m.next_id = next_id_.load(std::memory_order_relaxed);
  m.num_clusters = num_clusters_;
  m.seed_order = seed_order_;
  m.publication_order = publication_order_;
  m.shards.reserve(shards_.size());
  for (const auto& s : shards_) {
    m.shards.push_back(
        ShardManifestEntry{s->num_docs(), s->seed_docs(), s->epoch()});
  }
  // The manifest rename is the commit point: every snapshot it describes
  // is already on disk. A crash before this line restores from the OLD
  // manifest (new snapshots are "ahead" — the legal direction); after it,
  // from the new one.
  if (!save_shard_manifest_file(m, dir + "/MANIFEST")) return false;
  // Logged records are now baked into the snapshots; truncate AFTER the
  // commit so a crash in between merely replays-and-dedups.
  if (journal_ != nullptr && dir == persist_dir_) {
    for (auto& wal : wals_) wal->reset();
    journal_->reset();
  }
  return true;
}

std::unique_ptr<ShardedServing> ShardedServing::restore(
    const std::string& dir, const PipelineOptions& pipeline_options,
    ServingOptions options) {
  std::optional<ShardManifest> m =
      load_shard_manifest_file(dir + "/MANIFEST");
  if (!m.has_value()) return nullptr;
  const uint32_t ns = m->num_shards;

  std::vector<ServingSnapshot> snaps;
  snaps.reserve(ns);
  for (uint32_t s = 0; s < ns; ++s) {
    std::optional<ServingSnapshot> snap =
        load_snapshot_v2_file(shard_snapshot_path(dir, s));
    if (!snap.has_value()) return nullptr;
    // Cross-file torn-restore checks against the sibling manifest entry:
    // the committed manifest was written AFTER every snapshot rename, so a
    // snapshot with fewer documents than its entry claims — or a different
    // seed partition, or a different cluster count — cannot be the file
    // this manifest committed. Snapshot AHEAD of the entry is the legal
    // crash window (save interrupted between renames and commit).
    if (snap->num_seed_docs != m->shards[s].seed_docs) return nullptr;
    if (snap->doc_ids.size() < m->shards[s].docs) return nullptr;
    if (snap->num_clusters != m->num_clusters) return nullptr;
    snaps.push_back(std::move(*snap));
  }

  // Reassemble the global seed corpus in the recorded global order; every
  // seed document must be at its hash-owner shard's seed section.
  std::vector<std::unordered_map<DocId, size_t>> seed_pos(ns);
  std::vector<std::vector<size_t>> label_offset(ns);
  for (uint32_t s = 0; s < ns; ++s) {
    size_t off = 0;
    label_offset[s].reserve(snaps[s].num_seed_docs);
    for (size_t d = 0; d < snaps[s].num_seed_docs; ++d) {
      seed_pos[s][snaps[s].doc_ids[d]] = d;
      label_offset[s].push_back(off);
      off += num_labels(snaps[s].segmentations[d]);
    }
    if (off != snaps[s].seed_labels.size()) return nullptr;
  }
  std::vector<Document> docs;
  std::vector<Segmentation> segmentations;
  std::vector<int> labels;
  docs.reserve(m->seed_order.size());
  segmentations.reserve(m->seed_order.size());
  for (DocId id : m->seed_order) {
    uint32_t s = shard_of(id, ns);
    auto it = seed_pos[s].find(id);
    if (it == seed_pos[s].end()) return nullptr;
    size_t d = it->second;
    docs.push_back(Document::analyze(id, snaps[s].doc_texts[d]));
    segmentations.push_back(snaps[s].segmentations[d]);
    size_t off = label_offset[s][d];
    size_t count = num_labels(snaps[s].segmentations[d]);
    for (size_t i = 0; i < count; ++i) {
      labels.push_back(snaps[s].seed_labels[off + i]);
    }
  }
  PipelineSnapshot global_snap;
  global_snap.segmentations = segmentations;
  global_snap.segment_labels = std::move(labels);
  global_snap.num_clusters = m->num_clusters;
  if (!global_snap.is_consistent()) return nullptr;
  IntentionClustering clustering = restore_clustering(docs, global_snap);

  std::unique_ptr<ShardedServing> sp(new ShardedServing());
  if (!sp->init_shards(std::move(docs), std::move(segmentations), clustering,
                       pipeline_options, options, ns)) {
    return nullptr;
  }
  sp->persist_dir_ = dir;
  sp->wal_options_ = options.persist.wal;

  // Open journal + WALs with replay (torn tails are truncated by open).
  std::vector<WalRecord> journal_recs;
  sp->journal_ =
      IngestWal::open(journal_path(dir), sp->wal_options_, &journal_recs);
  if (sp->journal_ == nullptr) return nullptr;
  std::vector<std::unordered_map<DocId, std::string>> wal_text(ns);
  for (uint32_t s = 0; s < ns; ++s) {
    std::vector<WalRecord> recs;
    std::unique_ptr<IngestWal> wal =
        IngestWal::open(shard_wal_path(dir, s), sp->wal_options_, &recs);
    if (wal == nullptr) return nullptr;
    for (WalRecord& rec : recs) wal_text[s][rec.id] = std::move(rec.text);
    sp->wals_.push_back(std::move(wal));
  }
  // Snapshot tails: ingested documents baked into each shard snapshot,
  // with their stored segmentations.
  std::vector<std::unordered_map<DocId, size_t>> tail_pos(ns);
  for (uint32_t s = 0; s < ns; ++s) {
    for (size_t d = snaps[s].num_seed_docs; d < snaps[s].doc_ids.size();
         ++d) {
      tail_pos[s][snaps[s].doc_ids[d]] = d;
    }
  }

  // Replay every publication in the recorded global order. Manifest-listed
  // publications are committed state: each must exist in its shard's
  // snapshot tail or WAL, anything else is a torn directory. Journal
  // entries beyond the manifest are the crash tail: already-published ids
  // dedup away, ids with no durable payload were never published and are
  // dropped (write-ahead order guarantees no later entry could have been).
  DocId watermark = m->next_id;
  std::unordered_set<DocId> published;
  auto replay_one = [&](DocId id) -> int {
    uint32_t s = shard_of(id, ns);
    PreparedPost post;
    auto tail = tail_pos[s].find(id);
    if (tail != tail_pos[s].end()) {
      size_t d = tail->second;
      post.doc = Document::analyze(id, std::move(snaps[s].doc_texts[d]));
      post.seg = std::move(snaps[s].segmentations[d]);
    } else {
      auto walled = wal_text[s].find(id);
      if (walled == wal_text[s].end()) return -1;
      post.doc = Document::analyze(id, std::move(walled->second));
      Vocabulary scratch;
      post.seg = sp->segmenter_.segment(post.doc, scratch);
    }
    sp->publish_locked(s, std::move(post), /*log=*/false, std::string());
    published.insert(id);
    watermark = std::max(watermark, id + 1);
    return 0;
  };
  for (DocId id : m->publication_order) {
    if (replay_one(id) != 0) return nullptr;
  }
  for (const WalRecord& rec : journal_recs) {
    if (published.count(rec.id) != 0) continue;
    replay_one(rec.id);  // -1 = journaled but never published; skip
  }
  DocId seen = sp->next_id_.load(std::memory_order_relaxed);
  sp->next_id_.store(std::max(seen, watermark), std::memory_order_relaxed);
  return sp;
}

}  // namespace ibseg
