#include "core/serving.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "obs/trace.h"
#include "storage/snapshot_v2.h"
#include "util/stopwatch.h"

namespace ibseg {

namespace {

/// Every serving-layer metric, registered once in the process-wide
/// registry. Grouping them in one struct (instead of scattered
/// function-local statics) guarantees the whole serving catalog appears
/// in the exposition from the moment a ServingPipeline exists, even for
/// instruments that have not fired yet — operators grep for a metric name
/// and find it at zero rather than absent.
struct ServingMetrics {
  obs::Counter& queries_related;
  obs::Counter& queries_external;
  obs::Counter& queries_batched;
  obs::Counter& posts_ingested;
  obs::Counter& ingest_batches;
  obs::Histogram& query_related_seconds;
  obs::Histogram& query_external_seconds;
  obs::Histogram& ingest_seconds;
  obs::Histogram& shared_lock_wait;
  obs::Histogram& exclusive_lock_wait;
  obs::Gauge& corpus_docs;
  obs::Gauge& index_segments;
  obs::Gauge& postings_bytes;
  obs::Counter& pruned_docs;
  obs::Counter& wal_appends;
  obs::Counter& wal_replayed;
  obs::Gauge& snapshot_bytes;
  obs::Histogram& snapshot_save_seconds;
  obs::Histogram& restore_seconds;
  obs::Counter& recluster_total;
  obs::Histogram& recluster_seconds;
  obs::Gauge& pending_pool_size;
  obs::Gauge& offline_generation;
  obs::Gauge& recluster_drift;

  static ServingMetrics& get() {
    static ServingMetrics* m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::global();
      // Touching any stage histogram registers all seven stage series,
      // completing the exposition alongside the serving metrics below.
      obs::stage_histogram(obs::Stage::kAnalyze);
      return new ServingMetrics{
          r.counter("ibseg_queries_total", "Queries served.",
                    {{"op", "find_related"}}),
          r.counter("ibseg_queries_total", "Queries served.",
                    {{"op", "find_related_external"}}),
          r.counter("ibseg_queries_total", "Queries served.",
                    {{"op", "find_related_batch"}}),
          r.counter("ibseg_ingested_posts_total",
                    "Posts published into the serving indices."),
          r.counter("ibseg_ingest_batches_total",
                    "add_posts batches published (each under one "
                    "exclusive lock acquisition)."),
          r.histogram("ibseg_query_seconds",
                      "End-to-end serving query latency, including lock "
                      "wait, in seconds.",
                      {{"op", "find_related"}}),
          r.histogram("ibseg_query_seconds",
                      "End-to-end serving query latency, including lock "
                      "wait, in seconds.",
                      {{"op", "find_related_external"}}),
          r.histogram("ibseg_ingest_seconds",
                      "End-to-end add_post latency (prepare + publish), "
                      "in seconds."),
          r.histogram("ibseg_lock_wait_seconds",
                      "Time spent acquiring the serving reader/writer "
                      "lock, in seconds.",
                      {{"lock", "shared"}}),
          r.histogram("ibseg_lock_wait_seconds",
                      "Time spent acquiring the serving reader/writer "
                      "lock, in seconds.",
                      {{"lock", "exclusive"}}),
          r.gauge("ibseg_corpus_docs",
                  "Documents in the serving corpus (seed + published)."),
          r.gauge("ibseg_index_segments",
                  "Segments indexed across all intention clusters."),
          r.gauge("ibseg_postings_bytes",
                  "Bytes of the sealed flat postings arenas (per-term "
                  "metadata included) across all intention clusters."),
          r.counter("ibseg_pruned_docs_total",
                    "Per-intention candidate units rejected by the "
                    "MaxScore upper-bound test — before their first "
                    "contribution or mid-accumulation — instead of being "
                    "fully scored."),
          r.counter("ibseg_wal_appends_total",
                    "Ingest records appended to the write-ahead log."),
          r.counter("ibseg_wal_replayed_records",
                    "WAL records re-published during warm restart (torn or "
                    "already-snapshotted records excluded)."),
          r.gauge("ibseg_snapshot_bytes",
                  "Encoded size of the most recent snapshot v2 save."),
          r.histogram("ibseg_persist_seconds",
                      "Snapshot save / warm-restore latency, in seconds.",
                      {{"op", "save"}}),
          r.histogram("ibseg_persist_seconds",
                      "Snapshot save / warm-restore latency, in seconds.",
                      {{"op", "restore"}}),
          r.counter("ibseg_recluster_total",
                    "Completed background re-clustering epochs (shadow "
                    "rebuild + atomic swap)."),
          r.histogram("ibseg_recluster_seconds",
                      "End-to-end background recluster latency (capture + "
                      "shadow rebuild + catch-up + swap), in seconds."),
          r.gauge("ibseg_pending_pool_size",
                  "Ingested documents currently in the outlier/pending "
                  "pool (assignment distance above the serving "
                  "threshold); drained at the next recluster."),
          r.gauge("ibseg_offline_generation",
                  "Offline generation: completed background reclusters."),
          r.gauge("ibseg_recluster_drift",
                  "Centroid drift repaired by the last recluster: 1 - "
                  "mean best-cosine alignment between the old and new "
                  "centroid sets."),
      };
    }();
    return *m;
  }
};

}  // namespace

double centroid_drift(const std::vector<std::vector<double>>& before,
                      const std::vector<std::vector<double>>& after) {
  if (before.empty() || after.empty()) return before.empty() ? 0.0 : 1.0;
  double aligned = 0.0;
  for (const std::vector<double>& b : before) {
    double best = 0.0;
    for (const std::vector<double>& a : after) {
      if (a.size() != b.size()) continue;
      double dot = 0.0, nb = 0.0, na = 0.0;
      for (size_t i = 0; i < b.size(); ++i) {
        dot += b[i] * a[i];
        nb += b[i] * b[i];
        na += a[i] * a[i];
      }
      if (nb == 0.0 || na == 0.0) continue;
      best = std::max(best, dot / (std::sqrt(nb) * std::sqrt(na)));
    }
    aligned += best;
  }
  return 1.0 - aligned / static_cast<double>(before.size());
}

ServingPipeline::ServingPipeline(RelatedPostPipeline pipeline,
                                 ServingOptions options)
    : ServingPipeline(std::move(pipeline), std::move(options),
                      RestoreState{}) {}

ServingPipeline::ServingPipeline(RelatedPostPipeline pipeline,
                                 ServingOptions options, RestoreState state)
    : pipeline_(std::move(pipeline)),
      segmenter_(pipeline_.segmenter()),
      seed_docs_(pipeline_.docs().size() - state.ingested_docs),
      next_id_(std::max(pipeline_.next_id(), state.next_id)),
      epoch_(state.epoch) {
  if (options.cache.capacity > 0) {
    cache_ = std::make_unique<QueryCache>(std::move(options.cache));
  }
  matcher_fingerprint_ = matcher_options_fingerprint(
      pipeline_.matcher().options());
  persist_ = std::move(options.persist);
  recluster_options_ = options.recluster;
  // Offline coordinates: a fresh or legacy-restored pipeline passes
  // offline_docs 0, meaning "the offline clustering covers exactly the
  // seed corpus" — normalize here so offline_docs_ always names a real
  // document count.
  generation_.store(state.generation, std::memory_order_relaxed);
  offline_docs_ = state.offline_docs == 0 ? seed_docs_ : state.offline_docs;
  pending_pool_ = std::move(state.pending_pool);
  pending_size_.store(pending_pool_.size(), std::memory_order_relaxed);
  docs_since_.store(state.docs_since, std::memory_order_relaxed);
  ServingMetrics& m = ServingMetrics::get();
  if (!persist_.wal_path.empty()) {
    std::vector<WalRecord> replayed;
    wal_ = IngestWal::open(persist_.wal_path, persist_.wal, &replayed);
    if (wal_ != nullptr && !replayed.empty()) {
      // Crash recovery: re-publish every logged ingest the wrapped
      // pipeline does not already contain. Records for documents already
      // in the corpus are skipped — they were baked into a snapshot whose
      // save crashed between the rename and the WAL truncation.
      std::unordered_set<DocId> present;
      present.reserve(pipeline_.docs().size());
      for (const Document& d : pipeline_.docs()) present.insert(d.id());
      uint64_t applied = 0;
      for (const WalRecord& rec : replayed) {
        if (present.count(rec.id) != 0) continue;
        double dist = pipeline_.ingest(prepare(rec.id, rec.text));
        if (dist > recluster_options_.pending_distance_threshold) {
          pending_pool_.push_back(rec.id);
        }
        epoch_.fetch_add(1, std::memory_order_relaxed);
        docs_since_.fetch_add(1, std::memory_order_relaxed);
        ++applied;
      }
      pending_size_.store(pending_pool_.size(), std::memory_order_relaxed);
      next_id_.store(
          std::max(next_id_.load(std::memory_order_relaxed),
                   pipeline_.next_id()),
          std::memory_order_relaxed);
      m.wal_replayed.inc(applied);
    }
  }
  m.corpus_docs.set(static_cast<double>(pipeline_.docs().size()));
  m.index_segments.set(static_cast<double>(pipeline_.matcher().num_segments()));
  m.postings_bytes.set(
      static_cast<double>(pipeline_.matcher().postings_bytes()));
  m.pending_pool_size.set(
      static_cast<double>(pending_size_.load(std::memory_order_relaxed)));
  m.offline_generation.set(
      static_cast<double>(generation_.load(std::memory_order_relaxed)));
}


void ServingPipeline::sync_query_work_metrics() const {
  uint64_t now = pipeline_.matcher().work_counters().units_pruned.load(
      std::memory_order_relaxed);
  uint64_t prev = pruned_exported_.load(std::memory_order_relaxed);
  while (now > prev && !pruned_exported_.compare_exchange_weak(
                           prev, now, std::memory_order_relaxed)) {
  }
  if (now > prev) ServingMetrics::get().pruned_docs.inc(now - prev);
}

ServingPipeline::QueryResult ServingPipeline::find_related(DocId query,
                                                           int k) const {
  ServingMetrics& m = ServingMetrics::get();
  obs::TraceScope latency(m.query_related_seconds);
  // The generation is captured once per call: if a recluster swaps the
  // index between this read and the insert below, the entry lands under
  // the OLD generation's key — unreachable by every later lookup, so a
  // hit can never serve a pre-swap ranking after the swap.
  QueryCache::Key key{query, k, matcher_fingerprint_,
                      generation_.load(std::memory_order_relaxed)};
  if (cache_ != nullptr) {
    // Validate against the epoch as of now: a hit means the entry was
    // filled after the latest publish, so it equals what the index would
    // return. (epoch_ is monotone and a thread's reads of one atomic
    // never go backwards, so per-reader epoch monotonicity holds across
    // mixed hit/miss sequences.)
    uint64_t epoch_now = epoch_.load(std::memory_order_relaxed);
    if (auto cached = cache_->lookup(key, epoch_now)) {
      m.queries_related.inc();
      return QueryResult{std::move(cached->results), cached->epoch,
                         cached->num_docs};
    }
  }
  obs::TraceScope lock_wait(m.shared_lock_wait);
  std::shared_lock<std::shared_mutex> lock(mu_);
  lock_wait.stop();
  QueryResult r;
  r.results = pipeline_.find_related(query, k);
  r.epoch = epoch_.load(std::memory_order_relaxed);
  r.num_docs = pipeline_.docs().size();
  sync_query_work_metrics();
  lock.unlock();
  if (cache_ != nullptr) {
    // The entry's epoch was read under the shared lock, so it matches
    // the results exactly; if a writer publishes before this insert
    // lands, the entry is born stale and the next lookup discards it.
    cache_->insert(key, QueryCache::Value{r.results, r.epoch, r.num_docs});
  }
  m.queries_related.inc();
  return r;
}

std::vector<ServingPipeline::QueryResult> ServingPipeline::find_related_batch(
    const std::vector<DocId>& queries, int k) const {
  ServingMetrics& m = ServingMetrics::get();
  std::vector<QueryResult> out(queries.size());
  // Pass 1: serve what the cache can, lock-free. One generation for the
  // whole batch (same single-capture argument as find_related).
  const uint64_t gen = generation_.load(std::memory_order_relaxed);
  std::vector<size_t> miss_positions;
  if (cache_ != nullptr) {
    uint64_t epoch_now = epoch_.load(std::memory_order_relaxed);
    for (size_t i = 0; i < queries.size(); ++i) {
      QueryCache::Key key{queries[i], k, matcher_fingerprint_, gen};
      if (auto cached = cache_->lookup(key, epoch_now)) {
        out[i] = QueryResult{std::move(cached->results), cached->epoch,
                             cached->num_docs};
      } else {
        miss_positions.push_back(i);
      }
    }
  } else {
    miss_positions.resize(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) miss_positions[i] = i;
  }
  // Pass 2: one shared-lock acquisition for all misses; the matcher
  // pipelines them across its query pool (if configured).
  if (!miss_positions.empty()) {
    std::vector<DocId> miss_ids;
    miss_ids.reserve(miss_positions.size());
    for (size_t i : miss_positions) miss_ids.push_back(queries[i]);
    obs::TraceScope lock_wait(m.shared_lock_wait);
    std::shared_lock<std::shared_mutex> lock(mu_);
    lock_wait.stop();
    std::vector<std::vector<ScoredDoc>> results =
        pipeline_.matcher().find_related_batch(miss_ids, k);
    uint64_t epoch = epoch_.load(std::memory_order_relaxed);
    size_t num_docs = pipeline_.docs().size();
    sync_query_work_metrics();
    lock.unlock();
    for (size_t j = 0; j < miss_positions.size(); ++j) {
      out[miss_positions[j]] =
          QueryResult{std::move(results[j]), epoch, num_docs};
    }
    if (cache_ != nullptr) {
      for (size_t j = 0; j < miss_positions.size(); ++j) {
        const QueryResult& r = out[miss_positions[j]];
        cache_->insert(
            QueryCache::Key{miss_ids[j], k, matcher_fingerprint_, gen},
            QueryCache::Value{r.results, r.epoch, r.num_docs});
      }
    }
  }
  m.queries_batched.inc(queries.size());
  return out;
}

ServingPipeline::QueryResult ServingPipeline::find_related_external(
    const Document& doc, int k) const {
  ServingMetrics& m = ServingMetrics::get();
  obs::TraceScope latency(m.query_external_seconds);
  // Segment the query post before taking the lock — the expensive part of
  // an external query needs no pipeline state beyond the immutable
  // segmenter copy.
  Vocabulary scratch;
  Segmentation seg = segmenter_.segment(doc, scratch);
  obs::TraceScope lock_wait(m.shared_lock_wait);
  std::shared_lock<std::shared_mutex> lock(mu_);
  lock_wait.stop();
  QueryResult r;
  r.results = pipeline_.matcher().find_related_external(
      doc, seg, pipeline_.clustering().centroids(), pipeline_.vocab(), k);
  r.epoch = epoch_.load(std::memory_order_relaxed);
  r.num_docs = pipeline_.docs().size();
  m.queries_external.inc();
  sync_query_work_metrics();
  return r;
}

DocId ServingPipeline::add_post(std::string text) {
  ServingMetrics& m = ServingMetrics::get();
  obs::TraceScope latency(m.ingest_seconds);
  DocId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  WalRecord rec;
  if (wal_ != nullptr) rec = WalRecord{id, text};
  PreparedPost post = prepare(id, std::move(text));
  obs::TraceScope lock_wait(m.exclusive_lock_wait);
  std::unique_lock<std::shared_mutex> lock(mu_);
  lock_wait.stop();
  // Write-ahead: the record hits the log (and, per policy, the disk)
  // before the post becomes queryable. Appending under the exclusive lock
  // makes WAL order identical to publication order, which replay relies
  // on. A failed append does not block publication — availability wins —
  // but is visible as ibseg_wal_appends_total falling behind
  // ibseg_ingested_posts_total.
  if (wal_ != nullptr && wal_->append(rec)) m.wal_appends.inc();
  double dist = 0.0;
  {
    obs::TraceScope publish(obs::Stage::kIndexPublish);
    dist = pipeline_.ingest(std::move(post));
  }
  // Outlier tracking: assignment is unchanged (results stay identical);
  // a far-from-every-centroid post just also enters the pending pool,
  // feeding the recluster-trigger policy.
  if (dist > recluster_options_.pending_distance_threshold) {
    pending_pool_.push_back(id);
    pending_size_.store(pending_pool_.size(), std::memory_order_relaxed);
    m.pending_pool_size.set(static_cast<double>(pending_pool_.size()));
  }
  epoch_.fetch_add(1, std::memory_order_relaxed);
  docs_since_.fetch_add(1, std::memory_order_relaxed);
  m.posts_ingested.inc();
  m.corpus_docs.set(static_cast<double>(pipeline_.docs().size()));
  m.index_segments.set(static_cast<double>(pipeline_.matcher().num_segments()));
  m.postings_bytes.set(
      static_cast<double>(pipeline_.matcher().postings_bytes()));
  return id;
}

std::vector<DocId> ServingPipeline::add_posts(std::vector<std::string> texts) {
  ServingMetrics& m = ServingMetrics::get();
  std::vector<PreparedPost> prepared;
  std::vector<DocId> ids;
  std::vector<WalRecord> records;
  prepared.reserve(texts.size());
  ids.reserve(texts.size());
  if (wal_ != nullptr) records.reserve(texts.size());
  for (std::string& text : texts) {
    DocId id = next_id_.fetch_add(1, std::memory_order_relaxed);
    if (wal_ != nullptr) records.push_back(WalRecord{id, text});
    prepared.push_back(prepare(id, std::move(text)));
    ids.push_back(id);
  }
  obs::TraceScope lock_wait(m.exclusive_lock_wait);
  std::unique_lock<std::shared_mutex> lock(mu_);
  lock_wait.stop();
  // Write-ahead, one frame per record but one fsync per batch (see
  // IngestWal::append_batch); same ordering rationale as add_post.
  if (wal_ != nullptr && !records.empty() && wal_->append_batch(records)) {
    m.wal_appends.inc(records.size());
  }
  {
    obs::TraceScope publish(obs::Stage::kIndexPublish);
    for (size_t i = 0; i < prepared.size(); ++i) {
      double dist = pipeline_.ingest(std::move(prepared[i]));
      if (dist > recluster_options_.pending_distance_threshold) {
        pending_pool_.push_back(ids[i]);
      }
      epoch_.fetch_add(1, std::memory_order_relaxed);
      docs_since_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  pending_size_.store(pending_pool_.size(), std::memory_order_relaxed);
  m.pending_pool_size.set(static_cast<double>(pending_pool_.size()));
  m.posts_ingested.inc(ids.size());
  if (!ids.empty()) m.ingest_batches.inc();
  m.corpus_docs.set(static_cast<double>(pipeline_.docs().size()));
  m.index_segments.set(static_cast<double>(pipeline_.matcher().num_segments()));
  m.postings_bytes.set(
      static_cast<double>(pipeline_.matcher().postings_bytes()));
  return ids;
}

uint64_t ServingPipeline::recluster() {
  ServingMetrics& m = ServingMetrics::get();
  // One shadow build at a time; a second caller queues behind the first
  // and then runs against the first one's output (still correct — the
  // capture below sees the freshest state).
  std::lock_guard<std::mutex> job(recluster_job_mu_);
  Stopwatch watch;
  // Phase 1 — capture: copy a consistent cut of the corpus under the
  // shared lock. Queries and the capture coexist; only the copy cost is
  // inside the lock.
  std::vector<Document> docs;
  std::vector<Segmentation> segs;
  PipelineOptions opts;
  std::vector<std::vector<double>> old_centroids;
  size_t captured = 0;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    docs = pipeline_.docs();
    segs = pipeline_.segmentations();
    opts = pipeline_.options();
    old_centroids = pipeline_.clustering().centroids();
    captured = docs.size();
  }
  // Phase 2 — shadow rebuild, no lock held: the full offline phase
  // (clustering + indexing) over the captured cut, reusing the stored
  // segmentations (deterministic, so rebuild() == build(); see
  // RelatedPostPipeline::rebuild). Readers keep serving the old
  // generation for the entire duration.
  RelatedPostPipeline shadow =
      RelatedPostPipeline::rebuild(std::move(docs), std::move(segs), opts);
  const double drift =
      centroid_drift(old_centroids, shadow.clustering().centroids());
  // Phase 3 — catch-up + swap under ONE exclusive acquisition: documents
  // published while the shadow built are ingested into the shadow through
  // the exact deterministic path that placed them in the old pipeline
  // (stored segmentation + nearest-centroid), then the shadow replaces
  // the live pipeline. Queries before the swap see the old generation,
  // queries after see the new one; nothing in between.
  uint64_t gen = 0;
  size_t pool_size = 0;
  {
    obs::TraceScope lock_wait(m.exclusive_lock_wait);
    std::unique_lock<std::shared_mutex> lock(mu_);
    lock_wait.stop();
    const std::vector<Document>& cur = pipeline_.docs();
    const std::vector<Segmentation>& cur_segs = pipeline_.segmentations();
    std::vector<DocId> pool;
    for (size_t d = captured; d < cur.size(); ++d) {
      PreparedPost post;
      post.doc = cur[d];
      post.seg = cur_segs[d];
      double dist = shadow.ingest(std::move(post));
      if (dist > recluster_options_.pending_distance_threshold) {
        pool.push_back(cur[d].id());
      }
    }
    const uint64_t tail = cur.size() - captured;
    pipeline_ = std::move(shadow);
    offline_docs_ = captured;
    pending_pool_ = std::move(pool);
    pool_size = pending_pool_.size();
    pending_size_.store(pool_size, std::memory_order_relaxed);
    docs_since_.store(tail, std::memory_order_relaxed);
    // The new matcher's work counters restart at zero; re-base the
    // export watermark so the next sync does not stall until the new
    // counter overtakes the old one's final value.
    pruned_exported_.store(0, std::memory_order_relaxed);
    // Publish the new generation last (still under the lock): every
    // query that can observe the new pipeline also observes the new
    // generation in its cache key.
    gen = generation_.fetch_add(1, std::memory_order_relaxed) + 1;
    m.index_segments.set(
        static_cast<double>(pipeline_.matcher().num_segments()));
    m.postings_bytes.set(
        static_cast<double>(pipeline_.matcher().postings_bytes()));
  }
  last_drift_ = drift;
  m.recluster_drift.set(drift);
  m.offline_generation.set(static_cast<double>(gen));
  m.pending_pool_size.set(static_cast<double>(pool_size));
  m.recluster_total.inc();
  m.recluster_seconds.observe(watch.elapsed_seconds());
  return gen;
}

bool ServingPipeline::save(const std::string& path) {
  ServingMetrics& m = ServingMetrics::get();
  Stopwatch watch;
  obs::TraceScope lock_wait(m.exclusive_lock_wait);
  std::unique_lock<std::shared_mutex> lock(mu_);
  lock_wait.stop();
  ServingSnapshot snap;
  const std::vector<Document>& docs = pipeline_.docs();
  const std::vector<Segmentation>& segs = pipeline_.segmentations();
  snap.doc_ids.reserve(docs.size());
  snap.doc_texts.reserve(docs.size());
  for (const Document& d : docs) {
    snap.doc_ids.push_back(d.id());
    snap.doc_texts.push_back(d.text());
  }
  snap.segmentations = segs;
  snap.num_seed_docs = static_cast<uint32_t>(seed_docs_);
  // Cluster labels exist only for offline-clustered segments; documents
  // ingested after the last (re)clustering are re-published through the
  // nearest-centroid ingest path on restore, so labeling them here would
  // be wrong (the clustering never covered them — make_snapshot would
  // emit label 0). Before the first recluster offline_docs_ == seed_docs_
  // and this degenerates to the legacy seed-only layout; after one, the
  // labels split at the seed/offline boundary so legacy readers still
  // find exactly the seed labels where they expect them.
  std::vector<Segmentation> off_segs(
      segs.begin(),
      segs.begin() + static_cast<std::ptrdiff_t>(offline_docs_));
  std::vector<DocId> off_ids(
      snap.doc_ids.begin(),
      snap.doc_ids.begin() + static_cast<std::ptrdiff_t>(offline_docs_));
  PipelineSnapshot offline =
      make_snapshot(off_segs, pipeline_.clustering(), off_ids);
  size_t seed_segments = 0;
  for (size_t d = 0; d < seed_docs_; ++d) {
    if (segs[d].num_units > 0) seed_segments += segs[d].num_segments();
  }
  snap.seed_labels.assign(
      offline.segment_labels.begin(),
      offline.segment_labels.begin() +
          static_cast<std::ptrdiff_t>(seed_segments));
  snap.offline_labels.assign(
      offline.segment_labels.begin() +
          static_cast<std::ptrdiff_t>(seed_segments),
      offline.segment_labels.end());
  snap.num_clusters = offline.num_clusters;
  snap.offline_generation = generation_.load(std::memory_order_relaxed);
  snap.offline_docs = offline_docs_;
  // The clustering's exact centroids: what frees restore from re-deriving
  // them (impossible after a recluster — the label-derived recomputation
  // over seed docs alone yields different centroids) and pins
  // nearest-centroid ingest assignment bit-for-bit.
  snap.centroids = pipeline_.clustering().centroids();
  snap.pending_pool = pending_pool_;
  snap.docs_since_recluster =
      docs_since_.load(std::memory_order_relaxed);
  const Vocabulary& vocab = pipeline_.vocab();
  snap.vocab_terms.reserve(vocab.size());
  for (size_t t = 0; t < vocab.size(); ++t) {
    snap.vocab_terms.push_back(vocab.term(static_cast<TermId>(t)));
  }
  snap.next_id = next_id_.load(std::memory_order_relaxed);
  uint64_t bytes = 0;
  if (!save_snapshot_v2_file(snap, path, &bytes)) return false;
  // Every logged record is now baked into the snapshot; an empty WAL makes
  // the next restart replay nothing. Ordering matters: truncating first
  // and crashing before the snapshot rename would lose the records. The
  // reverse crash window (snapshot renamed, WAL not yet truncated) is
  // harmless — replay skips records whose document is already present.
  if (wal_ != nullptr) wal_->reset();
  m.snapshot_bytes.set(static_cast<double>(bytes));
  m.snapshot_save_seconds.observe(watch.elapsed_seconds());
  return true;
}

std::unique_ptr<ServingPipeline> ServingPipeline::restore(
    const std::string& snapshot_path, const PipelineOptions& pipeline_options,
    ServingOptions options) {
  ServingMetrics& m = ServingMetrics::get();
  Stopwatch watch;
  std::optional<ServingSnapshot> snap = load_snapshot_v2_file(snapshot_path);
  if (!snap.has_value()) return nullptr;
  const size_t total = snap->doc_ids.size();
  const size_t seed = snap->num_seed_docs;
  // The offline-covered prefix: the seed corpus until the first
  // recluster, everything the last recluster saw after one. Restore
  // rebuilds indices over exactly this prefix from stored labels — no
  // dependency on the seed corpus being "special" remains.
  const size_t eff_offline = static_cast<size_t>(
      std::max<uint64_t>(snap->offline_docs, seed));
  std::vector<Document> offline_docs;
  offline_docs.reserve(eff_offline);
  for (size_t d = 0; d < eff_offline; ++d) {
    offline_docs.push_back(
        Document::analyze(snap->doc_ids[d], snap->doc_texts[d]));
  }
  // Offline part: stored segmentations + labels + vocabulary skip the
  // segmentation and clustering phases; preloading the vocabulary pins
  // every TermId to its pre-save value.
  RelatedPostPipeline pipeline = RelatedPostPipeline::build_from_snapshot(
      std::move(offline_docs), snap->offline_full(), pipeline_options,
      &snap->vocab_terms);
  // Pin the centroids to the exact saved values. Until the first
  // recluster the label-derived recomputation reproduces them anyway
  // (legacy snapshots carry no centroid section and this is a no-op);
  // after one they are the recluster's output and MUST come from the
  // snapshot — this is what makes post-recluster restore bit-identical.
  if (!snap->centroids.empty()) {
    pipeline.override_centroids(snap->centroids);
  }
  // Online part: re-publish ingested documents through the same
  // nearest-centroid ingest path that placed them originally, with their
  // *stored* segmentations — deterministic given the restored centroids,
  // and immune to segmenter-option drift between save and restore.
  for (size_t d = eff_offline; d < total; ++d) {
    PreparedPost post;
    post.doc =
        Document::analyze(snap->doc_ids[d], std::move(snap->doc_texts[d]));
    post.seg = std::move(snap->segmentations[d]);
    pipeline.ingest(std::move(post));
  }
  RestoreState state;
  state.epoch = total - seed;
  state.ingested_docs = total - seed;
  state.next_id = snap->next_id;
  state.generation = snap->offline_generation;
  state.offline_docs = eff_offline;
  state.pending_pool = std::move(snap->pending_pool);
  state.docs_since = snap->docs_since_recluster;
  // The constructor replays the WAL (if configured) on top of the
  // snapshot, completing recovery to the exact pre-crash epoch.
  std::unique_ptr<ServingPipeline> sp(new ServingPipeline(
      std::move(pipeline), std::move(options), std::move(state)));
  if (!sp->persist_.wal_path.empty() && sp->wal_ == nullptr) return nullptr;
  m.restore_seconds.observe(watch.elapsed_seconds());
  return sp;
}

void ServingPipeline::publish_prepared(PreparedPost post) {
  ServingMetrics& m = ServingMetrics::get();
  obs::TraceScope lock_wait(m.exclusive_lock_wait);
  std::unique_lock<std::shared_mutex> lock(mu_);
  lock_wait.stop();
  DocId id = post.doc.id();
  double dist = 0.0;
  {
    obs::TraceScope publish(obs::Stage::kIndexPublish);
    dist = pipeline_.ingest(std::move(post));
  }
  if (dist > recluster_options_.pending_distance_threshold) {
    pending_pool_.push_back(id);
    pending_size_.store(pending_pool_.size(), std::memory_order_relaxed);
    m.pending_pool_size.set(static_cast<double>(pending_pool_.size()));
  }
  epoch_.fetch_add(1, std::memory_order_relaxed);
  docs_since_.fetch_add(1, std::memory_order_relaxed);
  // The caller reserved the id from its own counter; keep this shard's
  // watermark consistent anyway so save()/diagnostics stay meaningful.
  DocId floor = id + 1;
  DocId seen = next_id_.load(std::memory_order_relaxed);
  while (seen < floor &&
         !next_id_.compare_exchange_weak(seen, floor,
                                         std::memory_order_relaxed)) {
  }
  m.posts_ingested.inc();
  m.corpus_docs.set(static_cast<double>(pipeline_.docs().size()));
  m.index_segments.set(static_cast<double>(pipeline_.matcher().num_segments()));
  m.postings_bytes.set(
      static_cast<double>(pipeline_.matcher().postings_bytes()));
}

std::vector<std::pair<int, TermVector>> ServingPipeline::doc_cluster_terms(
    DocId doc) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return pipeline_.matcher().doc_cluster_terms(doc);
}

ServingPipeline::ShardMatch ServingPipeline::match_clusters(
    const std::vector<std::pair<int, TermVector>>& queries, DocId exclude,
    int n,
    const std::vector<std::shared_ptr<const ClusterCollectionStats>>& stats)
    const {
  ServingMetrics& m = ServingMetrics::get();
  ShardMatch out;
  out.lists.resize(queries.size());
  obs::TraceScope lock_wait(m.shared_lock_wait);
  std::shared_lock<std::shared_mutex> lock(mu_);
  lock_wait.stop();
  for (size_t i = 0; i < queries.size(); ++i) {
    const ClusterCollectionStats* view =
        i < stats.size() ? stats[i].get() : nullptr;
    out.lists[i] = pipeline_.matcher().match_cluster_terms(
        queries[i].first, queries[i].second, exclude, n, view);
  }
  out.epoch = epoch_.load(std::memory_order_relaxed);
  out.num_docs = pipeline_.docs().size();
  return out;
}

void ServingPipeline::set_stats_sink(GlobalIndexStats* sink) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  pipeline_.set_stats_sink(sink);
}

PreparedPost ServingPipeline::prepare(DocId id, std::string text) const {
  // Stage attribution happens inside the callees: Document::analyze
  // records "analyze", Segmenter::segment records "segment".
  PreparedPost post;
  post.doc = Document::analyze(id, std::move(text));
  Vocabulary scratch;
  post.seg = segmenter_.segment(post.doc, scratch);
  return post;
}

}  // namespace ibseg
