#include "core/serving.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "obs/trace.h"
#include "storage/snapshot_v2.h"
#include "util/stopwatch.h"

namespace ibseg {

namespace {

/// Every serving-layer metric, registered once in the process-wide
/// registry. Grouping them in one struct (instead of scattered
/// function-local statics) guarantees the whole serving catalog appears
/// in the exposition from the moment a ServingPipeline exists, even for
/// instruments that have not fired yet — operators grep for a metric name
/// and find it at zero rather than absent.
struct ServingMetrics {
  obs::Counter& queries_related;
  obs::Counter& queries_external;
  obs::Counter& queries_batched;
  obs::Counter& posts_ingested;
  obs::Counter& ingest_batches;
  obs::Histogram& query_related_seconds;
  obs::Histogram& query_external_seconds;
  obs::Histogram& ingest_seconds;
  obs::Histogram& shared_lock_wait;
  obs::Histogram& exclusive_lock_wait;
  obs::Gauge& corpus_docs;
  obs::Gauge& index_segments;
  obs::Gauge& postings_bytes;
  obs::Counter& pruned_docs;
  obs::Counter& wal_appends;
  obs::Counter& wal_replayed;
  obs::Gauge& snapshot_bytes;
  obs::Histogram& snapshot_save_seconds;
  obs::Histogram& restore_seconds;

  static ServingMetrics& get() {
    static ServingMetrics* m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::global();
      // Touching any stage histogram registers all seven stage series,
      // completing the exposition alongside the serving metrics below.
      obs::stage_histogram(obs::Stage::kAnalyze);
      return new ServingMetrics{
          r.counter("ibseg_queries_total", "Queries served.",
                    {{"op", "find_related"}}),
          r.counter("ibseg_queries_total", "Queries served.",
                    {{"op", "find_related_external"}}),
          r.counter("ibseg_queries_total", "Queries served.",
                    {{"op", "find_related_batch"}}),
          r.counter("ibseg_ingested_posts_total",
                    "Posts published into the serving indices."),
          r.counter("ibseg_ingest_batches_total",
                    "add_posts batches published (each under one "
                    "exclusive lock acquisition)."),
          r.histogram("ibseg_query_seconds",
                      "End-to-end serving query latency, including lock "
                      "wait, in seconds.",
                      {{"op", "find_related"}}),
          r.histogram("ibseg_query_seconds",
                      "End-to-end serving query latency, including lock "
                      "wait, in seconds.",
                      {{"op", "find_related_external"}}),
          r.histogram("ibseg_ingest_seconds",
                      "End-to-end add_post latency (prepare + publish), "
                      "in seconds."),
          r.histogram("ibseg_lock_wait_seconds",
                      "Time spent acquiring the serving reader/writer "
                      "lock, in seconds.",
                      {{"lock", "shared"}}),
          r.histogram("ibseg_lock_wait_seconds",
                      "Time spent acquiring the serving reader/writer "
                      "lock, in seconds.",
                      {{"lock", "exclusive"}}),
          r.gauge("ibseg_corpus_docs",
                  "Documents in the serving corpus (seed + published)."),
          r.gauge("ibseg_index_segments",
                  "Segments indexed across all intention clusters."),
          r.gauge("ibseg_postings_bytes",
                  "Bytes of the sealed flat postings arenas (per-term "
                  "metadata included) across all intention clusters."),
          r.counter("ibseg_pruned_docs_total",
                    "Per-intention candidate units rejected by the "
                    "MaxScore upper-bound test — before their first "
                    "contribution or mid-accumulation — instead of being "
                    "fully scored."),
          r.counter("ibseg_wal_appends_total",
                    "Ingest records appended to the write-ahead log."),
          r.counter("ibseg_wal_replayed_records",
                    "WAL records re-published during warm restart (torn or "
                    "already-snapshotted records excluded)."),
          r.gauge("ibseg_snapshot_bytes",
                  "Encoded size of the most recent snapshot v2 save."),
          r.histogram("ibseg_persist_seconds",
                      "Snapshot save / warm-restore latency, in seconds.",
                      {{"op", "save"}}),
          r.histogram("ibseg_persist_seconds",
                      "Snapshot save / warm-restore latency, in seconds.",
                      {{"op", "restore"}}),
      };
    }();
    return *m;
  }
};

}  // namespace

ServingPipeline::ServingPipeline(RelatedPostPipeline pipeline,
                                 ServingOptions options)
    : ServingPipeline(std::move(pipeline), std::move(options),
                      RestoreState{}) {}

ServingPipeline::ServingPipeline(RelatedPostPipeline pipeline,
                                 ServingOptions options, RestoreState state)
    : pipeline_(std::move(pipeline)),
      segmenter_(pipeline_.segmenter()),
      seed_docs_(pipeline_.docs().size() - state.ingested_docs),
      next_id_(std::max(pipeline_.next_id(), state.next_id)),
      epoch_(state.epoch) {
  if (options.cache.capacity > 0) {
    cache_ = std::make_unique<QueryCache>(std::move(options.cache));
  }
  matcher_fingerprint_ = matcher_options_fingerprint(
      pipeline_.matcher().options());
  persist_ = std::move(options.persist);
  ServingMetrics& m = ServingMetrics::get();
  if (!persist_.wal_path.empty()) {
    std::vector<WalRecord> replayed;
    wal_ = IngestWal::open(persist_.wal_path, persist_.wal, &replayed);
    if (wal_ != nullptr && !replayed.empty()) {
      // Crash recovery: re-publish every logged ingest the wrapped
      // pipeline does not already contain. Records for documents already
      // in the corpus are skipped — they were baked into a snapshot whose
      // save crashed between the rename and the WAL truncation.
      std::unordered_set<DocId> present;
      present.reserve(pipeline_.docs().size());
      for (const Document& d : pipeline_.docs()) present.insert(d.id());
      uint64_t applied = 0;
      for (const WalRecord& rec : replayed) {
        if (present.count(rec.id) != 0) continue;
        pipeline_.ingest(prepare(rec.id, rec.text));
        epoch_.fetch_add(1, std::memory_order_relaxed);
        ++applied;
      }
      next_id_.store(
          std::max(next_id_.load(std::memory_order_relaxed),
                   pipeline_.next_id()),
          std::memory_order_relaxed);
      m.wal_replayed.inc(applied);
    }
  }
  m.corpus_docs.set(static_cast<double>(pipeline_.docs().size()));
  m.index_segments.set(static_cast<double>(pipeline_.matcher().num_segments()));
  m.postings_bytes.set(
      static_cast<double>(pipeline_.matcher().postings_bytes()));
}


void ServingPipeline::sync_query_work_metrics() const {
  uint64_t now = pipeline_.matcher().work_counters().units_pruned.load(
      std::memory_order_relaxed);
  uint64_t prev = pruned_exported_.load(std::memory_order_relaxed);
  while (now > prev && !pruned_exported_.compare_exchange_weak(
                           prev, now, std::memory_order_relaxed)) {
  }
  if (now > prev) ServingMetrics::get().pruned_docs.inc(now - prev);
}

ServingPipeline::QueryResult ServingPipeline::find_related(DocId query,
                                                           int k) const {
  ServingMetrics& m = ServingMetrics::get();
  obs::TraceScope latency(m.query_related_seconds);
  QueryCache::Key key{query, k, matcher_fingerprint_};
  if (cache_ != nullptr) {
    // Validate against the epoch as of now: a hit means the entry was
    // filled after the latest publish, so it equals what the index would
    // return. (epoch_ is monotone and a thread's reads of one atomic
    // never go backwards, so per-reader epoch monotonicity holds across
    // mixed hit/miss sequences.)
    uint64_t epoch_now = epoch_.load(std::memory_order_relaxed);
    if (auto cached = cache_->lookup(key, epoch_now)) {
      m.queries_related.inc();
      return QueryResult{std::move(cached->results), cached->epoch,
                         cached->num_docs};
    }
  }
  obs::TraceScope lock_wait(m.shared_lock_wait);
  std::shared_lock<std::shared_mutex> lock(mu_);
  lock_wait.stop();
  QueryResult r;
  r.results = pipeline_.find_related(query, k);
  r.epoch = epoch_.load(std::memory_order_relaxed);
  r.num_docs = pipeline_.docs().size();
  lock.unlock();
  if (cache_ != nullptr) {
    // The entry's epoch was read under the shared lock, so it matches
    // the results exactly; if a writer publishes before this insert
    // lands, the entry is born stale and the next lookup discards it.
    cache_->insert(key, QueryCache::Value{r.results, r.epoch, r.num_docs});
  }
  m.queries_related.inc();
  sync_query_work_metrics();
  return r;
}

std::vector<ServingPipeline::QueryResult> ServingPipeline::find_related_batch(
    const std::vector<DocId>& queries, int k) const {
  ServingMetrics& m = ServingMetrics::get();
  std::vector<QueryResult> out(queries.size());
  // Pass 1: serve what the cache can, lock-free.
  std::vector<size_t> miss_positions;
  if (cache_ != nullptr) {
    uint64_t epoch_now = epoch_.load(std::memory_order_relaxed);
    for (size_t i = 0; i < queries.size(); ++i) {
      QueryCache::Key key{queries[i], k, matcher_fingerprint_};
      if (auto cached = cache_->lookup(key, epoch_now)) {
        out[i] = QueryResult{std::move(cached->results), cached->epoch,
                             cached->num_docs};
      } else {
        miss_positions.push_back(i);
      }
    }
  } else {
    miss_positions.resize(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) miss_positions[i] = i;
  }
  // Pass 2: one shared-lock acquisition for all misses; the matcher
  // pipelines them across its query pool (if configured).
  if (!miss_positions.empty()) {
    std::vector<DocId> miss_ids;
    miss_ids.reserve(miss_positions.size());
    for (size_t i : miss_positions) miss_ids.push_back(queries[i]);
    obs::TraceScope lock_wait(m.shared_lock_wait);
    std::shared_lock<std::shared_mutex> lock(mu_);
    lock_wait.stop();
    std::vector<std::vector<ScoredDoc>> results =
        pipeline_.matcher().find_related_batch(miss_ids, k);
    uint64_t epoch = epoch_.load(std::memory_order_relaxed);
    size_t num_docs = pipeline_.docs().size();
    lock.unlock();
    for (size_t j = 0; j < miss_positions.size(); ++j) {
      out[miss_positions[j]] =
          QueryResult{std::move(results[j]), epoch, num_docs};
    }
    if (cache_ != nullptr) {
      for (size_t j = 0; j < miss_positions.size(); ++j) {
        const QueryResult& r = out[miss_positions[j]];
        cache_->insert(QueryCache::Key{miss_ids[j], k, matcher_fingerprint_},
                       QueryCache::Value{r.results, r.epoch, r.num_docs});
      }
    }
  }
  m.queries_batched.inc(queries.size());
  sync_query_work_metrics();
  return out;
}

ServingPipeline::QueryResult ServingPipeline::find_related_external(
    const Document& doc, int k) const {
  ServingMetrics& m = ServingMetrics::get();
  obs::TraceScope latency(m.query_external_seconds);
  // Segment the query post before taking the lock — the expensive part of
  // an external query needs no pipeline state beyond the immutable
  // segmenter copy.
  Vocabulary scratch;
  Segmentation seg = segmenter_.segment(doc, scratch);
  obs::TraceScope lock_wait(m.shared_lock_wait);
  std::shared_lock<std::shared_mutex> lock(mu_);
  lock_wait.stop();
  QueryResult r;
  r.results = pipeline_.matcher().find_related_external(
      doc, seg, pipeline_.clustering().centroids(), pipeline_.vocab(), k);
  r.epoch = epoch_.load(std::memory_order_relaxed);
  r.num_docs = pipeline_.docs().size();
  m.queries_external.inc();
  sync_query_work_metrics();
  return r;
}

DocId ServingPipeline::add_post(std::string text) {
  ServingMetrics& m = ServingMetrics::get();
  obs::TraceScope latency(m.ingest_seconds);
  DocId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  WalRecord rec;
  if (wal_ != nullptr) rec = WalRecord{id, text};
  PreparedPost post = prepare(id, std::move(text));
  obs::TraceScope lock_wait(m.exclusive_lock_wait);
  std::unique_lock<std::shared_mutex> lock(mu_);
  lock_wait.stop();
  // Write-ahead: the record hits the log (and, per policy, the disk)
  // before the post becomes queryable. Appending under the exclusive lock
  // makes WAL order identical to publication order, which replay relies
  // on. A failed append does not block publication — availability wins —
  // but is visible as ibseg_wal_appends_total falling behind
  // ibseg_ingested_posts_total.
  if (wal_ != nullptr && wal_->append(rec)) m.wal_appends.inc();
  {
    obs::TraceScope publish(obs::Stage::kIndexPublish);
    pipeline_.ingest(std::move(post));
  }
  epoch_.fetch_add(1, std::memory_order_relaxed);
  m.posts_ingested.inc();
  m.corpus_docs.set(static_cast<double>(pipeline_.docs().size()));
  m.index_segments.set(static_cast<double>(pipeline_.matcher().num_segments()));
  m.postings_bytes.set(
      static_cast<double>(pipeline_.matcher().postings_bytes()));
  return id;
}

std::vector<DocId> ServingPipeline::add_posts(std::vector<std::string> texts) {
  ServingMetrics& m = ServingMetrics::get();
  std::vector<PreparedPost> prepared;
  std::vector<DocId> ids;
  std::vector<WalRecord> records;
  prepared.reserve(texts.size());
  ids.reserve(texts.size());
  if (wal_ != nullptr) records.reserve(texts.size());
  for (std::string& text : texts) {
    DocId id = next_id_.fetch_add(1, std::memory_order_relaxed);
    if (wal_ != nullptr) records.push_back(WalRecord{id, text});
    prepared.push_back(prepare(id, std::move(text)));
    ids.push_back(id);
  }
  obs::TraceScope lock_wait(m.exclusive_lock_wait);
  std::unique_lock<std::shared_mutex> lock(mu_);
  lock_wait.stop();
  // Write-ahead, one frame per record but one fsync per batch (see
  // IngestWal::append_batch); same ordering rationale as add_post.
  if (wal_ != nullptr && !records.empty() && wal_->append_batch(records)) {
    m.wal_appends.inc(records.size());
  }
  {
    obs::TraceScope publish(obs::Stage::kIndexPublish);
    for (PreparedPost& post : prepared) {
      pipeline_.ingest(std::move(post));
      epoch_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  m.posts_ingested.inc(ids.size());
  if (!ids.empty()) m.ingest_batches.inc();
  m.corpus_docs.set(static_cast<double>(pipeline_.docs().size()));
  m.index_segments.set(static_cast<double>(pipeline_.matcher().num_segments()));
  m.postings_bytes.set(
      static_cast<double>(pipeline_.matcher().postings_bytes()));
  return ids;
}

bool ServingPipeline::save(const std::string& path) {
  ServingMetrics& m = ServingMetrics::get();
  Stopwatch watch;
  obs::TraceScope lock_wait(m.exclusive_lock_wait);
  std::unique_lock<std::shared_mutex> lock(mu_);
  lock_wait.stop();
  ServingSnapshot snap;
  const std::vector<Document>& docs = pipeline_.docs();
  const std::vector<Segmentation>& segs = pipeline_.segmentations();
  snap.doc_ids.reserve(docs.size());
  snap.doc_texts.reserve(docs.size());
  for (const Document& d : docs) {
    snap.doc_ids.push_back(d.id());
    snap.doc_texts.push_back(d.text());
  }
  snap.segmentations = segs;
  snap.num_seed_docs = static_cast<uint32_t>(seed_docs_);
  // Cluster labels exist only for the offline-clustered (seed) segments;
  // ingested documents are re-published through the nearest-centroid
  // ingest path on restore, so labeling them here would be wrong (the
  // clustering never covered them — make_snapshot would emit label 0).
  std::vector<Segmentation> seed_segs(
      segs.begin(), segs.begin() + static_cast<std::ptrdiff_t>(seed_docs_));
  std::vector<DocId> seed_ids(snap.doc_ids.begin(),
                              snap.doc_ids.begin() +
                                  static_cast<std::ptrdiff_t>(seed_docs_));
  PipelineSnapshot offline =
      make_snapshot(seed_segs, pipeline_.clustering(), seed_ids);
  snap.seed_labels = std::move(offline.segment_labels);
  snap.num_clusters = offline.num_clusters;
  const Vocabulary& vocab = pipeline_.vocab();
  snap.vocab_terms.reserve(vocab.size());
  for (size_t t = 0; t < vocab.size(); ++t) {
    snap.vocab_terms.push_back(vocab.term(static_cast<TermId>(t)));
  }
  snap.next_id = next_id_.load(std::memory_order_relaxed);
  uint64_t bytes = 0;
  if (!save_snapshot_v2_file(snap, path, &bytes)) return false;
  // Every logged record is now baked into the snapshot; an empty WAL makes
  // the next restart replay nothing. Ordering matters: truncating first
  // and crashing before the snapshot rename would lose the records. The
  // reverse crash window (snapshot renamed, WAL not yet truncated) is
  // harmless — replay skips records whose document is already present.
  if (wal_ != nullptr) wal_->reset();
  m.snapshot_bytes.set(static_cast<double>(bytes));
  m.snapshot_save_seconds.observe(watch.elapsed_seconds());
  return true;
}

std::unique_ptr<ServingPipeline> ServingPipeline::restore(
    const std::string& snapshot_path, const PipelineOptions& pipeline_options,
    ServingOptions options) {
  ServingMetrics& m = ServingMetrics::get();
  Stopwatch watch;
  std::optional<ServingSnapshot> snap = load_snapshot_v2_file(snapshot_path);
  if (!snap.has_value()) return nullptr;
  const size_t total = snap->doc_ids.size();
  const size_t seed = snap->num_seed_docs;
  std::vector<Document> seed_docs;
  seed_docs.reserve(seed);
  for (size_t d = 0; d < seed; ++d) {
    seed_docs.push_back(
        Document::analyze(snap->doc_ids[d], snap->doc_texts[d]));
  }
  // Offline part: stored segmentations + labels + vocabulary skip the
  // segmentation and clustering phases; preloading the vocabulary pins
  // every TermId to its pre-save value.
  RelatedPostPipeline pipeline = RelatedPostPipeline::build_from_snapshot(
      std::move(seed_docs), snap->offline(), pipeline_options,
      &snap->vocab_terms);
  // Online part: re-publish ingested documents through the same
  // nearest-centroid ingest path that placed them originally, with their
  // *stored* segmentations — deterministic given the restored centroids,
  // and immune to segmenter-option drift between save and restore.
  for (size_t d = seed; d < total; ++d) {
    PreparedPost post;
    post.doc =
        Document::analyze(snap->doc_ids[d], std::move(snap->doc_texts[d]));
    post.seg = std::move(snap->segmentations[d]);
    pipeline.ingest(std::move(post));
  }
  RestoreState state;
  state.epoch = total - seed;
  state.ingested_docs = total - seed;
  state.next_id = snap->next_id;
  // The constructor replays the WAL (if configured) on top of the
  // snapshot, completing recovery to the exact pre-crash epoch.
  std::unique_ptr<ServingPipeline> sp(
      new ServingPipeline(std::move(pipeline), std::move(options), state));
  if (!sp->persist_.wal_path.empty() && sp->wal_ == nullptr) return nullptr;
  m.restore_seconds.observe(watch.elapsed_seconds());
  return sp;
}

void ServingPipeline::publish_prepared(PreparedPost post) {
  ServingMetrics& m = ServingMetrics::get();
  obs::TraceScope lock_wait(m.exclusive_lock_wait);
  std::unique_lock<std::shared_mutex> lock(mu_);
  lock_wait.stop();
  DocId id = post.doc.id();
  {
    obs::TraceScope publish(obs::Stage::kIndexPublish);
    pipeline_.ingest(std::move(post));
  }
  epoch_.fetch_add(1, std::memory_order_relaxed);
  // The caller reserved the id from its own counter; keep this shard's
  // watermark consistent anyway so save()/diagnostics stay meaningful.
  DocId floor = id + 1;
  DocId seen = next_id_.load(std::memory_order_relaxed);
  while (seen < floor &&
         !next_id_.compare_exchange_weak(seen, floor,
                                         std::memory_order_relaxed)) {
  }
  m.posts_ingested.inc();
  m.corpus_docs.set(static_cast<double>(pipeline_.docs().size()));
  m.index_segments.set(static_cast<double>(pipeline_.matcher().num_segments()));
  m.postings_bytes.set(
      static_cast<double>(pipeline_.matcher().postings_bytes()));
}

std::vector<std::pair<int, TermVector>> ServingPipeline::doc_cluster_terms(
    DocId doc) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return pipeline_.matcher().doc_cluster_terms(doc);
}

ServingPipeline::ShardMatch ServingPipeline::match_clusters(
    const std::vector<std::pair<int, TermVector>>& queries, DocId exclude,
    int n,
    const std::vector<std::shared_ptr<const ClusterCollectionStats>>& stats)
    const {
  ServingMetrics& m = ServingMetrics::get();
  ShardMatch out;
  out.lists.resize(queries.size());
  obs::TraceScope lock_wait(m.shared_lock_wait);
  std::shared_lock<std::shared_mutex> lock(mu_);
  lock_wait.stop();
  for (size_t i = 0; i < queries.size(); ++i) {
    const ClusterCollectionStats* view =
        i < stats.size() ? stats[i].get() : nullptr;
    out.lists[i] = pipeline_.matcher().match_cluster_terms(
        queries[i].first, queries[i].second, exclude, n, view);
  }
  out.epoch = epoch_.load(std::memory_order_relaxed);
  out.num_docs = pipeline_.docs().size();
  return out;
}

void ServingPipeline::set_stats_sink(GlobalIndexStats* sink) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  pipeline_.set_stats_sink(sink);
}

PreparedPost ServingPipeline::prepare(DocId id, std::string text) const {
  // Stage attribution happens inside the callees: Document::analyze
  // records "analyze", Segmenter::segment records "segment".
  PreparedPost post;
  post.doc = Document::analyze(id, std::move(text));
  Vocabulary scratch;
  post.seg = segmenter_.segment(post.doc, scratch);
  return post;
}

}  // namespace ibseg
