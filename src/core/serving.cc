#include "core/serving.h"

#include <utility>

#include "obs/trace.h"

namespace ibseg {

namespace {

/// Every serving-layer metric, registered once in the process-wide
/// registry. Grouping them in one struct (instead of scattered
/// function-local statics) guarantees the whole serving catalog appears
/// in the exposition from the moment a ServingPipeline exists, even for
/// instruments that have not fired yet — operators grep for a metric name
/// and find it at zero rather than absent.
struct ServingMetrics {
  obs::Counter& queries_related;
  obs::Counter& queries_external;
  obs::Counter& queries_batched;
  obs::Counter& posts_ingested;
  obs::Counter& ingest_batches;
  obs::Histogram& query_related_seconds;
  obs::Histogram& query_external_seconds;
  obs::Histogram& ingest_seconds;
  obs::Histogram& shared_lock_wait;
  obs::Histogram& exclusive_lock_wait;
  obs::Gauge& corpus_docs;
  obs::Gauge& index_segments;

  static ServingMetrics& get() {
    static ServingMetrics* m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::global();
      // Touching any stage histogram registers all seven stage series,
      // completing the exposition alongside the serving metrics below.
      obs::stage_histogram(obs::Stage::kAnalyze);
      return new ServingMetrics{
          r.counter("ibseg_queries_total", "Queries served.",
                    {{"op", "find_related"}}),
          r.counter("ibseg_queries_total", "Queries served.",
                    {{"op", "find_related_external"}}),
          r.counter("ibseg_queries_total", "Queries served.",
                    {{"op", "find_related_batch"}}),
          r.counter("ibseg_ingested_posts_total",
                    "Posts published into the serving indices."),
          r.counter("ibseg_ingest_batches_total",
                    "add_posts batches published (each under one "
                    "exclusive lock acquisition)."),
          r.histogram("ibseg_query_seconds",
                      "End-to-end serving query latency, including lock "
                      "wait, in seconds.",
                      {{"op", "find_related"}}),
          r.histogram("ibseg_query_seconds",
                      "End-to-end serving query latency, including lock "
                      "wait, in seconds.",
                      {{"op", "find_related_external"}}),
          r.histogram("ibseg_ingest_seconds",
                      "End-to-end add_post latency (prepare + publish), "
                      "in seconds."),
          r.histogram("ibseg_lock_wait_seconds",
                      "Time spent acquiring the serving reader/writer "
                      "lock, in seconds.",
                      {{"lock", "shared"}}),
          r.histogram("ibseg_lock_wait_seconds",
                      "Time spent acquiring the serving reader/writer "
                      "lock, in seconds.",
                      {{"lock", "exclusive"}}),
          r.gauge("ibseg_corpus_docs",
                  "Documents in the serving corpus (seed + published)."),
          r.gauge("ibseg_index_segments",
                  "Segments indexed across all intention clusters."),
      };
    }();
    return *m;
  }
};

}  // namespace

ServingPipeline::ServingPipeline(RelatedPostPipeline pipeline,
                                 ServingOptions options)
    : pipeline_(std::move(pipeline)),
      segmenter_(pipeline_.segmenter()),
      seed_docs_(pipeline_.docs().size()),
      next_id_(pipeline_.next_id()) {
  if (options.cache.capacity > 0) {
    cache_ = std::make_unique<QueryCache>(std::move(options.cache));
  }
  matcher_fingerprint_ = matcher_options_fingerprint(
      pipeline_.matcher().options());
  ServingMetrics& m = ServingMetrics::get();
  m.corpus_docs.set(static_cast<double>(pipeline_.docs().size()));
  m.index_segments.set(static_cast<double>(pipeline_.matcher().num_segments()));
}

ServingPipeline::QueryResult ServingPipeline::find_related(DocId query,
                                                           int k) const {
  ServingMetrics& m = ServingMetrics::get();
  obs::TraceScope latency(m.query_related_seconds);
  QueryCache::Key key{query, k, matcher_fingerprint_};
  if (cache_ != nullptr) {
    // Validate against the epoch as of now: a hit means the entry was
    // filled after the latest publish, so it equals what the index would
    // return. (epoch_ is monotone and a thread's reads of one atomic
    // never go backwards, so per-reader epoch monotonicity holds across
    // mixed hit/miss sequences.)
    uint64_t epoch_now = epoch_.load(std::memory_order_relaxed);
    if (auto cached = cache_->lookup(key, epoch_now)) {
      m.queries_related.inc();
      return QueryResult{std::move(cached->results), cached->epoch,
                         cached->num_docs};
    }
  }
  obs::TraceScope lock_wait(m.shared_lock_wait);
  std::shared_lock<std::shared_mutex> lock(mu_);
  lock_wait.stop();
  QueryResult r;
  r.results = pipeline_.find_related(query, k);
  r.epoch = epoch_.load(std::memory_order_relaxed);
  r.num_docs = pipeline_.docs().size();
  lock.unlock();
  if (cache_ != nullptr) {
    // The entry's epoch was read under the shared lock, so it matches
    // the results exactly; if a writer publishes before this insert
    // lands, the entry is born stale and the next lookup discards it.
    cache_->insert(key, QueryCache::Value{r.results, r.epoch, r.num_docs});
  }
  m.queries_related.inc();
  return r;
}

std::vector<ServingPipeline::QueryResult> ServingPipeline::find_related_batch(
    const std::vector<DocId>& queries, int k) const {
  ServingMetrics& m = ServingMetrics::get();
  std::vector<QueryResult> out(queries.size());
  // Pass 1: serve what the cache can, lock-free.
  std::vector<size_t> miss_positions;
  if (cache_ != nullptr) {
    uint64_t epoch_now = epoch_.load(std::memory_order_relaxed);
    for (size_t i = 0; i < queries.size(); ++i) {
      QueryCache::Key key{queries[i], k, matcher_fingerprint_};
      if (auto cached = cache_->lookup(key, epoch_now)) {
        out[i] = QueryResult{std::move(cached->results), cached->epoch,
                             cached->num_docs};
      } else {
        miss_positions.push_back(i);
      }
    }
  } else {
    miss_positions.resize(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) miss_positions[i] = i;
  }
  // Pass 2: one shared-lock acquisition for all misses; the matcher
  // pipelines them across its query pool (if configured).
  if (!miss_positions.empty()) {
    std::vector<DocId> miss_ids;
    miss_ids.reserve(miss_positions.size());
    for (size_t i : miss_positions) miss_ids.push_back(queries[i]);
    obs::TraceScope lock_wait(m.shared_lock_wait);
    std::shared_lock<std::shared_mutex> lock(mu_);
    lock_wait.stop();
    std::vector<std::vector<ScoredDoc>> results =
        pipeline_.matcher().find_related_batch(miss_ids, k);
    uint64_t epoch = epoch_.load(std::memory_order_relaxed);
    size_t num_docs = pipeline_.docs().size();
    lock.unlock();
    for (size_t j = 0; j < miss_positions.size(); ++j) {
      out[miss_positions[j]] =
          QueryResult{std::move(results[j]), epoch, num_docs};
    }
    if (cache_ != nullptr) {
      for (size_t j = 0; j < miss_positions.size(); ++j) {
        const QueryResult& r = out[miss_positions[j]];
        cache_->insert(QueryCache::Key{miss_ids[j], k, matcher_fingerprint_},
                       QueryCache::Value{r.results, r.epoch, r.num_docs});
      }
    }
  }
  m.queries_batched.inc(queries.size());
  return out;
}

ServingPipeline::QueryResult ServingPipeline::find_related_external(
    const Document& doc, int k) const {
  ServingMetrics& m = ServingMetrics::get();
  obs::TraceScope latency(m.query_external_seconds);
  // Segment the query post before taking the lock — the expensive part of
  // an external query needs no pipeline state beyond the immutable
  // segmenter copy.
  Vocabulary scratch;
  Segmentation seg = segmenter_.segment(doc, scratch);
  obs::TraceScope lock_wait(m.shared_lock_wait);
  std::shared_lock<std::shared_mutex> lock(mu_);
  lock_wait.stop();
  QueryResult r;
  r.results = pipeline_.matcher().find_related_external(
      doc, seg, pipeline_.clustering().centroids(), pipeline_.vocab(), k);
  r.epoch = epoch_.load(std::memory_order_relaxed);
  r.num_docs = pipeline_.docs().size();
  m.queries_external.inc();
  return r;
}

DocId ServingPipeline::add_post(std::string text) {
  ServingMetrics& m = ServingMetrics::get();
  obs::TraceScope latency(m.ingest_seconds);
  DocId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  PreparedPost post = prepare(id, std::move(text));
  obs::TraceScope lock_wait(m.exclusive_lock_wait);
  std::unique_lock<std::shared_mutex> lock(mu_);
  lock_wait.stop();
  {
    obs::TraceScope publish(obs::Stage::kIndexPublish);
    pipeline_.ingest(std::move(post));
  }
  epoch_.fetch_add(1, std::memory_order_relaxed);
  m.posts_ingested.inc();
  m.corpus_docs.set(static_cast<double>(pipeline_.docs().size()));
  m.index_segments.set(static_cast<double>(pipeline_.matcher().num_segments()));
  return id;
}

std::vector<DocId> ServingPipeline::add_posts(std::vector<std::string> texts) {
  ServingMetrics& m = ServingMetrics::get();
  std::vector<PreparedPost> prepared;
  std::vector<DocId> ids;
  prepared.reserve(texts.size());
  ids.reserve(texts.size());
  for (std::string& text : texts) {
    DocId id = next_id_.fetch_add(1, std::memory_order_relaxed);
    prepared.push_back(prepare(id, std::move(text)));
    ids.push_back(id);
  }
  obs::TraceScope lock_wait(m.exclusive_lock_wait);
  std::unique_lock<std::shared_mutex> lock(mu_);
  lock_wait.stop();
  {
    obs::TraceScope publish(obs::Stage::kIndexPublish);
    for (PreparedPost& post : prepared) {
      pipeline_.ingest(std::move(post));
      epoch_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  m.posts_ingested.inc(ids.size());
  if (!ids.empty()) m.ingest_batches.inc();
  m.corpus_docs.set(static_cast<double>(pipeline_.docs().size()));
  m.index_segments.set(static_cast<double>(pipeline_.matcher().num_segments()));
  return ids;
}

PreparedPost ServingPipeline::prepare(DocId id, std::string text) const {
  // Stage attribution happens inside the callees: Document::analyze
  // records "analyze", Segmenter::segment records "segment".
  PreparedPost post;
  post.doc = Document::analyze(id, std::move(text));
  Vocabulary scratch;
  post.seg = segmenter_.segment(post.doc, scratch);
  return post;
}

}  // namespace ibseg
