#include "core/serving.h"

#include <utility>

namespace ibseg {

ServingPipeline::ServingPipeline(RelatedPostPipeline pipeline)
    : pipeline_(std::move(pipeline)),
      segmenter_(pipeline_.segmenter()),
      seed_docs_(pipeline_.docs().size()),
      next_id_(pipeline_.next_id()) {}

ServingPipeline::QueryResult ServingPipeline::find_related(DocId query,
                                                           int k) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  QueryResult r;
  r.results = pipeline_.find_related(query, k);
  r.epoch = epoch_.load(std::memory_order_relaxed);
  r.num_docs = pipeline_.docs().size();
  return r;
}

ServingPipeline::QueryResult ServingPipeline::find_related_external(
    const Document& doc, int k) const {
  // Segment the query post before taking the lock — the expensive part of
  // an external query needs no pipeline state beyond the immutable
  // segmenter copy.
  Vocabulary scratch;
  Segmentation seg = segmenter_.segment(doc, scratch);
  std::shared_lock<std::shared_mutex> lock(mu_);
  QueryResult r;
  r.results = pipeline_.matcher().find_related_external(
      doc, seg, pipeline_.clustering().centroids(), pipeline_.vocab(), k);
  r.epoch = epoch_.load(std::memory_order_relaxed);
  r.num_docs = pipeline_.docs().size();
  return r;
}

DocId ServingPipeline::add_post(std::string text) {
  DocId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  PreparedPost post = prepare(id, std::move(text));
  std::unique_lock<std::shared_mutex> lock(mu_);
  pipeline_.ingest(std::move(post));
  epoch_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::vector<DocId> ServingPipeline::add_posts(std::vector<std::string> texts) {
  std::vector<PreparedPost> prepared;
  std::vector<DocId> ids;
  prepared.reserve(texts.size());
  ids.reserve(texts.size());
  for (std::string& text : texts) {
    DocId id = next_id_.fetch_add(1, std::memory_order_relaxed);
    prepared.push_back(prepare(id, std::move(text)));
    ids.push_back(id);
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (PreparedPost& post : prepared) {
    pipeline_.ingest(std::move(post));
    epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  return ids;
}

PreparedPost ServingPipeline::prepare(DocId id, std::string text) const {
  PreparedPost post;
  post.doc = Document::analyze(id, std::move(text));
  Vocabulary scratch;
  post.seg = segmenter_.segment(post.doc, scratch);
  return post;
}

}  // namespace ibseg
