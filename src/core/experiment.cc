#include "core/experiment.h"

#include <ostream>

#include "util/stopwatch.h"

namespace ibseg {

std::vector<MethodReport> run_experiment(const SyntheticCorpus& corpus,
                                         const std::vector<Document>& docs,
                                         const ExperimentOptions& options) {
  std::vector<MethodReport> reports;
  reports.reserve(options.methods.size());
  for (MethodKind kind : options.methods) {
    MethodReport report;
    report.method = method_name(kind);
    auto method = build_method(kind, docs, options.config, &report.build);

    // Relevant-document counts per scenario (exhaustive ground truth).
    std::vector<size_t> scenario_sizes(corpus.num_scenarios, 0);
    for (const GeneratedPost& post : corpus.posts) {
      ++scenario_sizes[static_cast<size_t>(post.scenario_id)];
    }

    Stopwatch watch;
    std::vector<double> precisions;
    double recall_sum = 0.0;
    double f1_sum = 0.0;
    for (DocId q = 0; q < docs.size();
         q += static_cast<DocId>(options.query_stride)) {
      QueryResult result;
      result.query = q;
      result.retrieved = method->find_related(q, options.k);
      int scenario = corpus.posts[q].scenario_id;
      std::vector<DocId> ids;
      ids.reserve(result.retrieved.size());
      size_t hits = 0;
      for (const ScoredDoc& sd : result.retrieved) {
        ids.push_back(sd.doc);
        if (corpus.posts[sd.doc].scenario_id == scenario) ++hits;
      }
      result.precision = list_precision(ids, [&](DocId d) {
        return corpus.posts[d].scenario_id == scenario;
      });
      size_t relevant =
          scenario_sizes[static_cast<size_t>(scenario)] - 1;  // minus query
      result.recall = relevant == 0
                          ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(relevant);
      recall_sum += result.recall;
      f1_sum += (result.precision + result.recall) > 0.0
                    ? 2.0 * result.precision * result.recall /
                          (result.precision + result.recall)
                    : 0.0;
      precisions.push_back(result.precision);
      report.queries.push_back(std::move(result));
    }
    report.avg_query_ms =
        report.queries.empty()
            ? 0.0
            : watch.elapsed_millis() / static_cast<double>(report.queries.size());
    report.precision = summarize_precision(precisions);
    if (!report.queries.empty()) {
      report.mean_recall =
          recall_sum / static_cast<double>(report.queries.size());
      report.mean_f1 = f1_sum / static_cast<double>(report.queries.size());
    }
    reports.push_back(std::move(report));
  }
  return reports;
}

bool write_experiment_csv(const std::vector<MethodReport>& reports,
                          const SyntheticCorpus& corpus, std::ostream& os) {
  os << "method,query,precision,rank,doc,score,relevant\n";
  for (const MethodReport& report : reports) {
    for (const QueryResult& q : report.queries) {
      int scenario = corpus.posts[q.query].scenario_id;
      if (q.retrieved.empty()) {
        os << report.method << ',' << q.query << ',' << q.precision
           << ",,,,\n";
        continue;
      }
      for (size_t rank = 0; rank < q.retrieved.size(); ++rank) {
        const ScoredDoc& sd = q.retrieved[rank];
        bool relevant = corpus.posts[sd.doc].scenario_id == scenario;
        os << report.method << ',' << q.query << ',' << q.precision << ','
           << (rank + 1) << ',' << sd.doc << ',' << sd.score << ','
           << (relevant ? 1 : 0) << '\n';
      }
    }
  }
  return static_cast<bool>(os);
}

}  // namespace ibseg
