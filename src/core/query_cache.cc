#include "core/query_cache.h"

#include <algorithm>
#include <bit>

#include "obs/clock.h"
#include "obs/metrics.h"

namespace ibseg {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void fold(uint64_t& h, uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (byte * 8)) & 0xffu;
    h *= kFnvPrime;
  }
}

void fold(uint64_t& h, double v) { fold(h, std::bit_cast<uint64_t>(v)); }

/// Cache-wide metrics, registered once (same eager-catalog pattern as the
/// serving metrics: operators find the series at zero, not absent).
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Gauge& size;

  static CacheMetrics& get() {
    static CacheMetrics* m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::global();
      return new CacheMetrics{
          r.counter("ibseg_query_cache_hits",
                    "Query-cache lookups answered from a valid entry."),
          r.counter("ibseg_query_cache_misses",
                    "Query-cache lookups that fell through to the index "
                    "(absent, stale epoch, or TTL-expired entry)."),
          r.counter("ibseg_query_cache_evictions",
                    "Entries evicted for capacity."),
          r.gauge("ibseg_query_cache_size",
                  "Entries currently held across all cache shards."),
      };
    }();
    return *m;
  }
};

}  // namespace

uint64_t matcher_options_fingerprint(const MatcherOptions& options) {
  uint64_t h = kFnvOffset;
  fold(h, static_cast<uint64_t>(options.top_n_factor));
  fold(h, static_cast<uint64_t>(options.cluster_weights.size()));
  for (double w : options.cluster_weights) fold(h, w);
  fold(h, options.score_threshold);
  fold(h, options.min_norm_fraction);
  fold(h, static_cast<uint64_t>(options.scoring.function));
  fold(h, options.scoring.bm25_k1);
  fold(h, options.scoring.bm25_b);
  fold(h, options.scoring.lm_lambda);
  fold(h, static_cast<uint64_t>(options.query_threads));
  fold(h, static_cast<uint64_t>(options.exhaustive_fallback ? 1 : 0));
  return h;
}

size_t QueryCache::KeyHash::operator()(const Key& key) const {
  uint64_t h = kFnvOffset;
  fold(h, static_cast<uint64_t>(key.query));
  fold(h, static_cast<uint64_t>(key.k));
  fold(h, key.fingerprint);
  fold(h, key.generation);
  return static_cast<size_t>(h);
}

QueryCache::QueryCache(QueryCacheOptions options)
    : options_(std::move(options)) {
  time_ = options_.time_source
              ? options_.time_source
              : [start = obs::Clock::now()] {
                  return obs::seconds_between(start, obs::Clock::now());
                };
  size_t shards = options_.shards == 0 ? 1 : options_.shards;
  shards = std::bit_ceil(shards);
  shard_mask_ = shards - 1;
  per_shard_capacity_ =
      options_.capacity == 0
          ? 0
          : std::max<size_t>(1, (options_.capacity + shards - 1) / shards);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  CacheMetrics::get();  // register the catalog eagerly
}

QueryCache::Shard& QueryCache::shard_for(const Key& key) {
  return *shards_[KeyHash{}(key)&shard_mask_];
}

std::optional<QueryCache::Value> QueryCache::lookup(const Key& key,
                                                    uint64_t current_epoch) {
  CacheMetrics& m = CacheMetrics::get();
  if (per_shard_capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    m.misses.inc();
    return std::nullopt;
  }
  Shard& shard = shard_for(key);
  std::optional<Value> result;
  bool erased = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      const Entry& entry = *it->second;
      bool stale = entry.value.epoch != current_epoch;
      bool expired = options_.ttl_seconds > 0.0 &&
                     now() - entry.fill_time > options_.ttl_seconds;
      if (stale || expired) {
        // Invalid entries can never validate again (the epoch only moves
        // forward, time only elapses) — drop them on discovery so the
        // capacity goes to live answers.
        shard.lru.erase(it->second);
        shard.index.erase(it);
        erased = true;
      } else {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        result = entry.value;
      }
    }
  }
  if (erased) {
    size_.fetch_sub(1, std::memory_order_relaxed);
    m.size.set(static_cast<double>(size()));
  }
  if (result.has_value()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    m.hits.inc();
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    m.misses.inc();
  }
  return result;
}

void QueryCache::insert(const Key& key, Value value) {
  if (per_shard_capacity_ == 0) return;
  CacheMetrics& m = CacheMetrics::get();
  Shard& shard = shard_for(key);
  int size_delta = 0;
  uint64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // Refresh in place (a newer epoch's answer supersedes the old one).
      it->second->value = std::move(value);
      it->second->fill_time = now();
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      if (shard.lru.size() >= per_shard_capacity_) {
        const Entry& victim = shard.lru.back();
        shard.index.erase(victim.key);
        shard.lru.pop_back();
        ++evicted;
        --size_delta;
      }
      shard.lru.push_front(Entry{key, std::move(value), now()});
      shard.index.emplace(key, shard.lru.begin());
      ++size_delta;
    }
  }
  if (size_delta > 0) {
    size_.fetch_add(static_cast<size_t>(size_delta),
                    std::memory_order_relaxed);
  }
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    m.evictions.inc(evicted);
  }
  m.size.set(static_cast<double>(size()));
}

}  // namespace ibseg
