#ifndef IBSEG_CORE_SHARDED_SERVING_H_
#define IBSEG_CORE_SHARDED_SERVING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/serving.h"
#include "index/collection_stats.h"
#include "obs/metrics.h"
#include "storage/shard_manifest.h"
#include "util/thread_pool.h"

/// \file
/// ShardedServing: N ServingPipeline shards behind hash partitioning and
/// scatter-gather, bit-identical to the unsharded pipeline at any shard
/// count, with per-shard crash-safe persistence (docs/ARCHITECTURE.md
/// §6). The network front-end (net/server.h) dispatches into this class.

namespace ibseg {

/// Document-partitioned serving: N ServingPipeline shards behind one
/// scatter-gather facade, with results **bit-identical** to a single
/// unpartitioned pipeline at any shard count (the differential suite
/// enforces exact score-and-order equality, not approximate agreement).
///
/// Partitioning. Every document — seed or ingested — lives on exactly one
/// shard, `shard_of(id)` (a stable FNV-1a hash of the id; pure function,
/// identical across processes and runs). Each shard wraps a full
/// ServingPipeline over its slice: its own reader/writer lock, epoch, and
/// per-intention indices.
///
/// Why naive partitioning breaks bit-identity, and what fixes it: the
/// Eq. 8/9 scores depend on *collection* statistics — |I| and |I^t| in the
/// probabilistic IDF, the average-unique-terms pivot and the norm floor in
/// the unit norms, the BM25 length pivot, the LM collection model. A shard
/// that scored against its own slice's statistics would produce different
/// bits (and different rankings) than the unpartitioned index. Three
/// shared pieces restore exactness:
///
///   * one GlobalIndexStats board aggregates per-cluster collection
///     statistics across all shards, in the unpartitioned publication
///     order (the norm floor is an order-sensitive float sum; everything
///     else is a sum of integer-valued doubles and therefore exact in any
///     order). Queries score every shard against the same copy-on-write
///     stats view (index/collection_stats.h);
///   * one shared Vocabulary, seeded in the unpartitioned interning order
///     before any shard index is built, keeps TermIds — and with them the
///     TermId-ordered per-unit accumulation order — corpus-global;
///   * a global publication lock serializes ingest publications, so board
///     order, vocabulary growth and the id watermark evolve exactly as a
///     single pipeline's would. Only publication is serialized: analysis
///     and segmentation (the expensive part of an ingest) stay parallel,
///     and queries never take the global lock.
///
/// Scatter-gather. A query resolves its per-cluster term bags once, fans
/// them out to all shards (each evaluates Algorithm 1's candidate list
/// over its slice under its own shared lock), then merges: per cluster,
/// the shard lists are concatenated, re-sorted by the deterministic
/// (score desc, DocId asc) rule and cut to n. Within one cluster a
/// document has at most one refined segment, so that ordering is total
/// and the global top-n is a subset of the union of per-shard top-n —
/// the merged list *is* the unpartitioned list, bit for bit. Algorithm 2's
/// weighted score summation then runs in ascending cluster order over
/// identical sorted sequences, reproducing the unpartitioned accumulation
/// order exactly.
///
/// Caching. The PR-3 epoch-invalidated result cache sits above the
/// scatter layer, keyed on the *combined* epoch (the sum of per-shard
/// epochs — each publication bumps exactly one shard by one, so the sum
/// is monotone and equality implies every addend is unchanged). An entry
/// is only inserted when no publication raced the scatter, so hits always
/// reproduce a quiescent-cut answer.
///
/// Consistency. Each shard's answer is a consistent cut of that shard;
/// under concurrent ingest the combined answer may straddle publications
/// on different shards (per-shard, not global, snapshot isolation). The
/// invariant num_docs == seed_docs + epoch holds for the summed values of
/// every result. At quiescence (no in-flight ingests) every query is
/// bit-identical to the unpartitioned pipeline.
///
/// Persistence. save(dir) writes one snapshot-v2 per shard
/// (dir/shard-<i>/snapshot.v2) and then commits dir/MANIFEST atomically
/// (storage/shard_manifest.h); per-shard WALs (dir/shard-<i>/wal) and the
/// publication-order journal (dir/ingest.order) absorb ingests between
/// saves and are truncated after the manifest commit. restore(dir)
/// rebuilds the global offline state from the shard slices, replays every
/// publication in the recorded global order, and rejects torn directories
/// (a shard snapshot shorter than its manifest entry, or a
/// manifest-listed document missing from snapshot+WAL).
class ShardedServing {
 public:
  /// The stable partition function: FNV-1a over the id's 4 little-endian
  /// bytes, reduced modulo num_shards. Pure — same mapping in every
  /// process, every run, every shard count.
  static uint32_t shard_of(DocId id, uint32_t num_shards);

  /// Builds a sharded deployment over `docs` (moved in). Shard count
  /// comes from options.num_shards (<= 1 means one shard — still exact,
  /// still scatter-gather, useful as the differential baseline). When
  /// options.persist.shard_dir is set, per-shard WALs and the publication
  /// journal are created under it (fresh — create() truncates any
  /// leftovers; restore() is the recovery path). Returns nullptr only
  /// when persistence directories cannot be created.
  static std::unique_ptr<ShardedServing> create(
      std::vector<Document> docs, const PipelineOptions& pipeline_options = {},
      ServingOptions options = {});

  /// Warm restart from a directory written by save() (+ any WAL/journal
  /// tail since). The shard count is read from the manifest;
  /// options.num_shards is ignored. Returns nullptr when the manifest or
  /// any shard snapshot is missing/corrupt, when a shard snapshot holds
  /// fewer documents than its manifest entry committed (stale snapshot —
  /// a torn directory, since snapshots are renamed before the manifest),
  /// or when a manifest-listed publication is found in neither its
  /// shard's snapshot nor its WAL. The restored instance reaches the
  /// exact pre-crash combined epoch with bit-identical query results.
  static std::unique_ptr<ShardedServing> restore(
      const std::string& dir, const PipelineOptions& pipeline_options = {},
      ServingOptions options = {});

  ShardedServing(const ShardedServing&) = delete;
  ShardedServing& operator=(const ShardedServing&) = delete;

  /// Persists every shard's snapshot, then commits the manifest (the
  /// atomic commit point), then truncates WALs + journal — in that order,
  /// so a crash anywhere leaves a restorable directory (see
  /// storage/shard_manifest.h for the window-by-window analysis). Runs
  /// under the global publication lock. Returns false with the previous
  /// manifest intact on any failure.
  bool save(const std::string& dir);

  using QueryResult = ServingPipeline::QueryResult;

  /// Top-k related posts for an in-corpus reference post — Algorithm 2
  /// over all shards, bit-identical to the unpartitioned pipeline.
  /// epoch/num_docs are the summed per-shard values observed under the
  /// shards' shared locks.
  QueryResult find_related(DocId query, int k) const;

  /// Batched find_related; result[i] answers queries[i].
  std::vector<QueryResult> find_related_batch(const std::vector<DocId>& queries,
                                              int k) const;

  /// Top-k related posts for an external (non-ingested) post. Segmented
  /// lock-free; centroid assignment under the global lock in shared mode
  /// (the shared vocabulary may be growing); scoring scattered like
  /// find_related.
  QueryResult find_related_external(const Document& doc, int k) const;

  /// Ingests one post into its hash-owner shard; returns the reserved id.
  /// Analysis/segmentation run lock-free; the publication (journal + WAL
  /// append + index publish) is serialized globally.
  DocId add_post(std::string text);

  /// Batched ingestion, published in order under one global-lock section.
  std::vector<DocId> add_posts(std::vector<std::string> texts);

  /// One background re-clustering epoch across the whole deployment,
  /// synchronous on the calling thread (core/recluster.h provides the
  /// worker that makes it background). Mirrors
  /// ServingPipeline::recluster at deployment scale: capture a consistent
  /// global cut (publication lock, shared — queries keep flowing),
  /// re-run the FULL offline phase over it and build a complete shadow
  /// shard set (vocabulary, statistics board, per-shard indices) with no
  /// lock held, then swap everything in under one exclusive section after
  /// catching up publications that landed during the shadow build.
  /// Post-swap state is bit-identical to ShardedServing::create over the
  /// same corpus followed by the same tail of ingests (the differential
  /// suite proves this at shard counts 1/2/4). Returns the new offline
  /// generation. Concurrent calls serialize.
  uint64_t recluster();

  /// Completed reclusters (monotone; restored deployments resume the
  /// manifest's value).
  uint64_t offline_generation() const {
    return generation_.load(std::memory_order_relaxed);
  }

  /// Combined outlier/pending-pool size (sum over shards).
  size_t pending_pool_size() const;

  /// Documents ingested since the offline state was last (re)computed,
  /// summed over shards.
  uint64_t docs_since_recluster() const;

  /// Leading publication_order entries covered by the current offline
  /// clustering (0 until the first recluster).
  uint64_t offline_publications() const;

  /// Cluster count of the current offline generation.
  int num_clusters() const;

  /// Combined publication epoch: the sum of per-shard epochs.
  uint64_t epoch() const;

  /// Total documents across shards.
  size_t num_docs() const;

  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }

  /// Upper bound on handed-out ids (global watermark).
  DocId next_id() const { return next_id_.load(std::memory_order_relaxed); }

  // --- Replication (docs/ARCHITECTURE.md §10) -----------------------------
  //
  // The leader's publication sequence IS its replication log: seq n is the
  // n-th entry of publication_order_, WAL order == publication order (PR 4),
  // and replay through the publish path is deterministic (PR 5) — so a
  // follower that applies shipped frames in sequence is bit-identical to
  // the leader at every frame boundary, by construction. Because each
  // shard retains its documents (and their texts) in memory, frames are
  // reconstructed on demand from the live shards — no separate ship buffer,
  // no WAL-file retention requirement on the leader.

  /// One shippable cut of the publication sequence, in WAL frame encoding
  /// (storage/wal_codec.h — byte-identical to what the leader's own WAL
  /// appends carry).
  struct ShipSegment {
    enum class Status {
      kOk,              ///< frames returned (possibly zero when caught up)
      kSnapshotNeeded,  ///< (from_seq, generation) not servable — the
                        ///< follower must re-bootstrap from a snapshot
      kAhead,           ///< from_seq beyond the leader's epoch (divergent
                        ///< follower, or a stale leader after failover)
    };
    Status status = Status::kOk;
    uint64_t base_seq = 0;    ///< sequence number of the first frame in raw
    uint64_t leader_seq = 0;  ///< leader publication count at capture time
    uint64_t leader_generation = 0;   ///< leader offline generation
    uint64_t segment_generation = 0;  ///< generation the frames belong to
    /// After applying the frames the follower sits on a recluster boundary
    /// and must run recluster() — which deterministically reproduces the
    /// leader's clustering over the identical corpus cut — before asking
    /// for more. recluster_target is the generation that recluster reaches.
    bool recluster_after = false;
    uint64_t recluster_target = 0;
    uint32_t frame_count = 0;
    std::string raw;  ///< frame_count WAL-framed records, back to back
  };

  /// Builds the segment a follower at (from_seq publications applied,
  /// replica_generation) should consume next: at most max_frames frames,
  /// and at most max_bytes of raw bytes once at least one frame is in
  /// (a single oversized frame still ships alone). Frames never straddle a
  /// recluster boundary — the follower reclusters between generations at
  /// exactly the leader's corpus cut, which is what keeps it bit-identical
  /// across epochs. Takes the generation + publication locks shared;
  /// queries and other subscribers keep flowing.
  ShipSegment ship_segment(uint64_t from_seq, uint64_t replica_generation,
                           uint32_t max_frames, uint32_t max_bytes) const;

  /// Applies shipped records whose first entry is publication base_seq.
  /// Records at sequences already applied are checked for id agreement and
  /// skipped (duplicate delivery is legal); a sequence gap fails — applying
  /// past one would reorder publication. Persistence-enabled followers
  /// journal applied frames exactly like local ingests, so a follower
  /// restart (and promotion) recovers from its own directory. Returns
  /// false on gap or id mismatch (divergent histories).
  bool apply_shipped(uint64_t base_seq,
                     const std::vector<WalRecord>& records);

  /// Crash promotion: drains the dead leader's on-disk tail (journal +
  /// per-shard WALs under leader_dir, scanned read-only — torn tails are
  /// tolerated, the files are never modified) into this instance, which
  /// must be a caught-up follower of the same lineage (same seed order,
  /// publication history a prefix-compatible replay). Every acknowledged
  /// leader ingest is on disk by write-ahead order, so after this returns
  /// true the promoted instance has lost none of them; journal entries
  /// without a durable WAL payload were never acknowledged and are
  /// skipped. Returns false on lineage mismatch or a manifest-committed
  /// publication whose payload is unrecoverable (the follower is too
  /// stale to promote from tails alone — re-bootstrap instead). The
  /// caller must have stopped applying shipped segments first.
  bool catch_up_from_dir(const std::string& leader_dir);

  /// Shard access for tests/diagnostics.
  const ServingPipeline& shard(uint32_t i) const { return *shards_[i]; }

  /// The cross-shard result cache, or nullptr when disabled.
  const QueryCache* query_cache() const { return cache_.get(); }

  /// The cross-shard statistics board (diagnostics).
  const GlobalIndexStats& stats_board() const { return *stats_; }

 private:
  ShardedServing() = default;

  /// A freshly built shard set — everything a generation swap replaces in
  /// one assignment block. Produced by build_shard_set (pure; no member
  /// mutation), consumed by init_shards (construction) and recluster()
  /// (shadow build + swap).
  struct ShardSet {
    std::vector<std::unique_ptr<ServingPipeline>> shards;
    std::shared_ptr<Vocabulary> vocab;
    std::unique_ptr<GlobalIndexStats> stats;
    std::vector<std::vector<double>> centroids;
    int num_clusters = 0;
    DocId watermark = 1;
    std::vector<DocId> doc_order;  ///< input document order (= seed order
                                   ///< at construction; capture order at
                                   ///< recluster)
  };

  /// The pure shard-set builder: seeds a fresh vocabulary + statistics
  /// board from `clustering` in the unpartitioned interning order, slices
  /// the corpus per shard, builds the shard pipelines and wires the stats
  /// sink. `shard_states` (parallel to shard index, may be null for
  /// "fresh") presets each shard pipeline's epoch/offline coordinates via
  /// ServingPipeline::adopt — the recluster/restore paths, where a shard's
  /// document count is not its seed count. Touches NO members, so
  /// recluster() can run it off-lock against a captured cut.
  ShardSet build_shard_set(
      std::vector<Document> docs, std::vector<Segmentation> segmentations,
      const IntentionClustering& clustering,
      const PipelineOptions& pipeline_options,
      const ReclusterOptions& recluster_options, uint32_t num_shards,
      const std::vector<ServingPipeline::RestoreState>* shard_states) const;

  /// Shared construction tail: build_shard_set + member assignment +
  /// cache/pool/metric registration.
  bool init_shards(std::vector<Document> docs,
                   std::vector<Segmentation> segmentations,
                   const IntentionClustering& clustering,
                   const PipelineOptions& pipeline_options,
                   const ServingOptions& options, uint32_t num_shards,
                   const std::vector<ServingPipeline::RestoreState>*
                       shard_states = nullptr);

  /// Opens (or creates) WALs + journal under persist_dir_. When `fresh`,
  /// existing contents are truncated (create() path).
  bool open_persistence(bool fresh);

  QueryResult scatter_gather(
      const std::vector<std::pair<int, TermVector>>& queries, DocId exclude,
      int k) const;

  /// Lock-free sums for callers already holding recluster_mu_ (shared
  /// shared_mutex acquisition does not nest on one thread).
  uint64_t epoch_unlocked() const;
  size_t num_docs_unlocked() const;

  PreparedPost prepare(DocId id, std::string text) const;

  /// Publication body shared by add_post/add_posts/restore replay; caller
  /// holds publish_mu_ exclusively. `log` false skips journal/WAL appends
  /// (restore replay — the records are already durable).
  void publish_locked(uint32_t owner, PreparedPost post, bool log,
                      const std::string& text);

  std::vector<std::unique_ptr<ServingPipeline>> shards_;
  std::shared_ptr<Vocabulary> vocab_;
  std::unique_ptr<GlobalIndexStats> stats_;
  std::vector<std::vector<double>> centroids_;  ///< global centroids
  int num_clusters_ = 0;
  MatcherOptions matcher_options_;
  Segmenter segmenter_ = Segmenter::cm_tiling();
  /// The full build option set, kept so recluster() reruns the offline
  /// phase with exactly the options the deployment was built with.
  PipelineOptions pipeline_options_;
  ReclusterOptions recluster_options_;
  std::atomic<DocId> next_id_{1};

  /// Generation lock, ordered BEFORE publish_mu_ everywhere. Queries hold
  /// it shared across their whole scatter (so a generation swap can never
  /// replace shards_/stats_/vocab_ mid-query — one query sees one
  /// generation, end to end); recluster()'s swap phase holds it exclusive
  /// (then publish_mu_ exclusive, nested). Ingests and save() take only
  /// publish_mu_ and cannot deadlock against the swap.
  mutable std::shared_mutex recluster_mu_;
  /// Serializes concurrent recluster() jobs (one shadow build at a time).
  std::mutex recluster_job_mu_;
  /// Completed reclusters; bumped under recluster_mu_ exclusive, folded
  /// into every cache key (same staleness argument as the unsharded
  /// layer's generation).
  std::atomic<uint64_t> generation_{0};
  /// Leading publication_order_ entries the current offline clustering
  /// covers (guarded by publish_mu_).
  uint64_t offline_pubs_ = 0;

  /// Global publication order lock: exclusive for publications and save()
  /// (board order == vocabulary order == journal order == publication
  /// order), shared for external-query vocabulary lookups. Queries never
  /// take it.
  mutable std::shared_mutex publish_mu_;
  std::vector<DocId> seed_order_;         ///< immutable after construction
  std::vector<DocId> publication_order_;  ///< guarded by publish_mu_
  /// Position of publication i inside its owner shard's document array —
  /// maintained alongside publication_order_ so ship_segment() can find
  /// the i-th publication's text without an id lookup. The value is the
  /// owner's document count at publish time, and it is invariant across
  /// recluster swaps and restores: shard arrays are always rebuilt in the
  /// global order (seed entries owned by the shard, then publications
  /// owned by the shard), so a publication's offset never moves. Guarded
  /// by publish_mu_.
  std::vector<size_t> pub_shard_pos_;
  /// Which offline generation each span of the publication sequence was
  /// ingested under: entry {start_pubs, generation} says publications from
  /// start_pubs up to the next entry's start (or the current epoch) carry
  /// that generation. create() starts {{0, 0}}; restore() knows history
  /// only from the manifest's offline coverage on; recluster() appends its
  /// boundary. ship_segment() refuses to serve a (seq, generation) pair
  /// outside this history — the follower re-bootstraps instead of applying
  /// frames under the wrong clustering. Guarded by publish_mu_.
  struct GenSpan {
    uint64_t start_pubs = 0;
    uint64_t generation = 0;
  };
  std::vector<GenSpan> gen_history_;

  /// Persistence (empty dir = disabled).
  std::string persist_dir_;
  WalOptions wal_options_;
  std::vector<std::unique_ptr<IngestWal>> wals_;  ///< guarded by publish_mu_
  std::unique_ptr<IngestWal> journal_;            ///< guarded by publish_mu_

  /// Result cache above the scatter layer (combined-epoch invalidation).
  mutable std::unique_ptr<QueryCache> cache_;
  uint64_t matcher_fingerprint_ = 0;

  /// Scatter fan-out pool. Either owned (pool_, created when sharded and
  /// no shared pool was supplied) or borrowed from ServingOptions::
  /// scatter_pool (shared_pool_, multi-tenant deployments — the registry
  /// owns one pool for every tenant). scatter_pool() picks whichever is
  /// set; nullptr when one shard and no injection.
  std::unique_ptr<ThreadPool> pool_;
  ThreadPool* shared_pool_ = nullptr;
  ThreadPool* scatter_pool() const {
    return shared_pool_ != nullptr ? shared_pool_ : pool_.get();
  }

  /// Tenant (instance) label from ServingOptions::tenant — stamped onto
  /// every per-instance metric so coexisting instances never collide in
  /// the process-wide registry. "default" when unset.
  std::string tenant_label_;

  /// Per-shard instruments (ibseg_shard_queries_total{shard,tenant},
  /// ibseg_shard_docs{shard,tenant}) + scatter/merge stage timers.
  std::vector<obs::Counter*> shard_queries_;
  std::vector<obs::Gauge*> shard_docs_;
  obs::Histogram* scatter_seconds_ = nullptr;
  obs::Histogram* merge_seconds_ = nullptr;
};

}  // namespace ibseg

#endif  // IBSEG_CORE_SHARDED_SERVING_H_
