#ifndef IBSEG_CORE_PIPELINE_H_
#define IBSEG_CORE_PIPELINE_H_

#include <memory>
#include <vector>

#include "cluster/intention_clusters.h"
#include "index/intention_matcher.h"
#include "seg/segmenter.h"
#include "storage/snapshot.h"
#include "text/vocabulary.h"
#include "util/thread_pool.h"

namespace ibseg {

/// Timing breakdown of the offline phase, mirroring what the paper reports
/// in Table 6 / Fig. 11.
struct PipelineTimings {
  double segmentation_total_sec = 0.0;  ///< sum over posts (worst case)
  double segmentation_avg_sec = 0.0;    ///< per post
  double grouping_sec = 0.0;            ///< clustering + refinement
  double indexing_sec = 0.0;            ///< per-cluster index construction
};

/// Options for the end-to-end related-post pipeline.
struct PipelineOptions {
  /// The segmenter for the offline phase (default: CM-feature tiling, the
  /// best human-approximating intention segmenter in this implementation;
  /// see MethodConfig::intent_segmenter).
  Segmenter segmenter = Segmenter::cm_tiling();
  GroupingOptions grouping;
  MatcherOptions matcher;
  /// Worker threads for the segmentation phase (the paper segments its
  /// largest corpus in parallel chunks).
  size_t num_threads = 1;
};

/// The complete offline+online system of Sec. 4: segmentation ->
/// segment grouping -> refinement -> per-intention indexing, then top-k
/// retrieval by Algorithms 1 and 2.
class RelatedPostPipeline {
 public:
  /// Builds the pipeline over `docs` (moved in).
  static RelatedPostPipeline build(std::vector<Document> docs,
                                   const PipelineOptions& options = {});

  /// Rebuilds a pipeline from a previously captured offline snapshot
  /// (segmentations + intention assignment), skipping the segmentation and
  /// clustering phases — the restart path of a deployment. The snapshot
  /// must cover exactly these documents (checked; returns a fresh build on
  /// mismatch).
  static RelatedPostPipeline build_from_snapshot(
      std::vector<Document> docs, const PipelineSnapshot& snapshot,
      const PipelineOptions& options = {});

  /// Captures the offline state for build_from_snapshot / save_snapshot.
  PipelineSnapshot snapshot() const {
    return make_snapshot(segmentations_, *clustering_);
  }

  /// Top-k related posts for a reference post already in the corpus.
  std::vector<ScoredDoc> find_related(DocId query, int k) const {
    return matcher_->find_related(query, k);
  }

  /// Top-k related posts for an external post (not ingested). The post is
  /// segmented with the pipeline's segmenter and its segments assigned to
  /// the nearest intention centroids.
  std::vector<ScoredDoc> find_related_external(const Document& doc, int k);

  /// Online ingestion: segments `text`, assigns its segments to the
  /// nearest intention centroids and adds it to the indices under a fresh
  /// document id (returned). The paper's offline re-clustering remains the
  /// periodic maintenance path (Sec. 9.2).
  DocId add_post(std::string text);

  const std::vector<Document>& docs() const { return docs_; }
  const std::vector<Segmentation>& segmentations() const {
    return segmentations_;
  }
  const IntentionClustering& clustering() const { return *clustering_; }
  const IntentionMatcher& matcher() const { return *matcher_; }
  const PipelineTimings& timings() const { return timings_; }

 private:
  RelatedPostPipeline() = default;

  std::vector<Document> docs_;
  std::vector<Segmentation> segmentations_;
  std::unique_ptr<IntentionClustering> clustering_;
  std::unique_ptr<IntentionMatcher> matcher_;
  std::unique_ptr<Vocabulary> vocab_;
  Segmenter segmenter_ = Segmenter::cm_tiling();
  PipelineTimings timings_;
};

}  // namespace ibseg

#endif  // IBSEG_CORE_PIPELINE_H_
