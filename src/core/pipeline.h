#ifndef IBSEG_CORE_PIPELINE_H_
#define IBSEG_CORE_PIPELINE_H_

#include <memory>
#include <vector>

#include "cluster/intention_clusters.h"
#include "index/intention_matcher.h"
#include "seg/segmenter.h"
#include "storage/snapshot.h"
#include "text/vocabulary.h"
#include "util/thread_pool.h"

/// \file
/// RelatedPostPipeline: the paper's end-to-end system in one object — the
/// offline phase (analyze -> segment -> cluster -> per-intention index)
/// and the online top-k related-post query (Algorithm 2), plus online
/// ingest and external-document queries. The concurrency, persistence and
/// network layers (core/serving.h, core/sharded_serving.h, net/server.h)
/// all wrap this pipeline without changing its results.

namespace ibseg {

/// Timing breakdown of the offline phase, mirroring what the paper reports
/// in Table 6 / Fig. 11.
struct PipelineTimings {
  double segmentation_total_sec = 0.0;  ///< sum over posts (worst case)
  double segmentation_avg_sec = 0.0;    ///< per post
  double grouping_sec = 0.0;            ///< clustering + refinement
  double indexing_sec = 0.0;            ///< per-cluster index construction
};

/// Options for the end-to-end related-post pipeline.
struct PipelineOptions {
  /// The segmenter for the offline phase (default: CM-feature tiling, the
  /// best human-approximating intention segmenter in this implementation;
  /// see MethodConfig::intent_segmenter).
  Segmenter segmenter = Segmenter::cm_tiling();
  GroupingOptions grouping;
  MatcherOptions matcher;
  /// Worker threads for the segmentation phase (the paper segments its
  /// largest corpus in parallel chunks).
  size_t num_threads = 1;
};

/// A post that has been analyzed and segmented but not yet published into
/// the indices — the expensive, state-free half of add_post. Preparing is
/// safe to run on any thread without synchronization; publishing
/// (RelatedPostPipeline::ingest) mutates the pipeline and is not.
/// ServingPipeline uses this split to keep analysis outside its write lock.
struct PreparedPost {
  Document doc;
  Segmentation seg;
};

/// The complete offline+online system of Sec. 4: segmentation ->
/// segment grouping -> refinement -> per-intention indexing, then top-k
/// retrieval by Algorithms 1 and 2.
///
/// Thread-safety: all query methods (find_related, find_related_external,
/// the getters) are strictly read-only; any number of threads may call
/// them concurrently as long as no mutation (add_post / ingest) runs.
/// Mutations require exclusive access — ServingPipeline (core/serving.h)
/// provides the reader/writer layer that enforces this at runtime.
class RelatedPostPipeline {
 public:
  /// Builds the pipeline over `docs` (moved in).
  static RelatedPostPipeline build(std::vector<Document> docs,
                                   const PipelineOptions& options = {});

  /// Rebuilds a pipeline from a previously captured offline snapshot
  /// (segmentations + intention assignment), skipping the segmentation and
  /// clustering phases — the restart path of a deployment. The snapshot
  /// must cover exactly these documents (checked; returns a fresh build on
  /// mismatch). When `preload_vocab` is non-null its terms are interned —
  /// in order — into the fresh vocabulary before indexing, pinning every
  /// TermId to the value it had when the snapshot was captured (snapshot
  /// v2 stores the vocabulary for exactly this purpose); indexing the same
  /// documents would assign the same ids anyway, so preloading is a
  /// determinism anchor, never a behavior change.
  static RelatedPostPipeline build_from_snapshot(
      std::vector<Document> docs, const PipelineSnapshot& snapshot,
      const PipelineOptions& options = {},
      const std::vector<std::string>* preload_vocab = nullptr);

  /// Builds one document-partitioned shard of a sharded deployment
  /// (core/sharded_serving.h): like build_from_snapshot, but the pipeline
  /// adopts `shared_vocab` (one vocabulary instance shared by every shard,
  /// pre-seeded in the unpartitioned interning order so TermIds are
  /// corpus-global) instead of creating its own, and its clustering's
  /// centroids are overridden with `centroids` (the full corpus's) so
  /// nearest-centroid ingest assignment matches the unpartitioned
  /// pipeline. `snapshot` must cover exactly `docs` — this shard's slice
  /// of the global segmentations and labels, in global document order —
  /// and carry the global cluster count. Falls back to a fresh build on
  /// an inconsistent snapshot, exactly like build_from_snapshot.
  static RelatedPostPipeline build_shard(
      std::vector<Document> docs, const PipelineSnapshot& snapshot,
      std::shared_ptr<Vocabulary> shared_vocab,
      const std::vector<std::vector<double>>& centroids,
      const PipelineOptions& options = {});

  /// Rebuilds the full offline phase (clustering + indexing) over `docs`
  /// with ALREADY-COMPUTED segmentations — the background-recluster path.
  /// Because segmentation is a deterministic pure function of (document,
  /// segmenter options), the result is bit-identical to build(docs,
  /// options) while skipping its most expensive phase; the vectors must be
  /// parallel (falls back to build() when they are not).
  static RelatedPostPipeline rebuild(std::vector<Document> docs,
                                     std::vector<Segmentation> segmentations,
                                     const PipelineOptions& options = {});

  /// Replaces the clustering's centroids with externally persisted ones
  /// (no-op on a cluster-count mismatch). Restore uses this to pin
  /// nearest-centroid ingest assignment to the exact saved values instead
  /// of trusting the label-derived recomputation.
  void override_centroids(std::vector<std::vector<double>> centroids) {
    if (clustering_ != nullptr &&
        static_cast<int>(centroids.size()) == clustering_->num_clusters()) {
      clustering_->override_centroids(std::move(centroids));
    }
  }

  /// Captures the offline state for build_from_snapshot / save_snapshot.
  PipelineSnapshot snapshot() const {
    std::vector<DocId> ids;
    ids.reserve(docs_.size());
    for (const Document& d : docs_) ids.push_back(d.id());
    return make_snapshot(segmentations_, *clustering_, ids);
  }

  /// Top-k related posts for a reference post already in the corpus.
  std::vector<ScoredDoc> find_related(DocId query, int k) const {
    return matcher_->find_related(query, k);
  }

  /// Top-k related posts for an external post (not ingested). The post is
  /// segmented with the pipeline's segmenter and its segments assigned to
  /// the nearest intention centroids. Read-only.
  std::vector<ScoredDoc> find_related_external(const Document& doc,
                                               int k) const;

  /// Online ingestion: segments `text`, assigns its segments to the
  /// nearest intention centroids and adds it to the indices under a fresh
  /// document id (returned). The paper's offline re-clustering remains the
  /// periodic maintenance path (Sec. 9.2).
  DocId add_post(std::string text);

  /// The analysis half of add_post: cleans, tokenizes and segments `text`
  /// under document id `id` without touching pipeline state. Read-only.
  PreparedPost prepare_post(DocId id, std::string text) const;

  /// The publication half of add_post: assigns the prepared post's
  /// segments to the nearest centroids and adds it to the indices.
  /// `post.doc.id()` must be fresh. Mutates the pipeline. Returns the
  /// largest nearest-centroid assignment distance over the post's segments
  /// (IntentionMatcher::add_document) — the outlier signal the serving
  /// layer's pending pool consumes; purely diagnostic, assignment is
  /// unchanged.
  double ingest(PreparedPost post);

  /// The id add_post would assign next. Always strictly greater than every
  /// ingested document id (seed ids need not be contiguous).
  DocId next_id() const { return next_id_; }

  /// \brief The full option set the pipeline was built with (segmenter,
  /// grouping, matcher, threads) — what a background recluster must reuse
  /// so the shadow build is exactly a cold build of the same deployment.
  const PipelineOptions& options() const { return options_; }
  /// \brief The segmenter the pipeline was built with.
  const Segmenter& segmenter() const { return segmenter_; }
  /// \brief The corpus-shared vocabulary (stemmed, stopword-filtered).
  const Vocabulary& vocab() const { return *vocab_; }
  /// \brief The corpus, in build order (ingested posts appended).
  const std::vector<Document>& docs() const { return docs_; }
  /// \brief Per-document segmentations, parallel to docs().
  const std::vector<Segmentation>& segmentations() const {
    return segmentations_;
  }
  /// \brief The intention clustering of the offline phase.
  const IntentionClustering& clustering() const { return *clustering_; }
  /// \brief The per-intention index machinery (Algorithms 1/2).
  const IntentionMatcher& matcher() const { return *matcher_; }

  /// Forwards to IntentionMatcher::set_stats_sink: every subsequent
  /// ingest() also appends its per-cluster term bags to `sink` (the
  /// cross-shard statistics board). Not owned.
  void set_stats_sink(GlobalIndexStats* sink) {
    matcher_->set_stats_sink(sink);
  }
  /// \brief Offline-phase timing breakdown (Table 6 / Fig. 11).
  const PipelineTimings& timings() const { return timings_; }

 private:
  RelatedPostPipeline() = default;

  std::vector<Document> docs_;
  std::vector<Segmentation> segmentations_;
  std::unique_ptr<IntentionClustering> clustering_;
  std::unique_ptr<IntentionMatcher> matcher_;
  /// shared_ptr (not unique_ptr) so sharded deployments can point every
  /// shard at one corpus-global vocabulary; a standalone pipeline is the
  /// sole owner.
  std::shared_ptr<Vocabulary> vocab_;
  Segmenter segmenter_ = Segmenter::cm_tiling();
  PipelineOptions options_;
  PipelineTimings timings_;
  /// Cached fresh-id watermark: max seed id + 1, bumped on every ingest.
  /// Replaces the former per-add_post linear scan over docs_.
  DocId next_id_ = 1;
};

}  // namespace ibseg

#endif  // IBSEG_CORE_PIPELINE_H_
