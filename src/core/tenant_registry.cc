#include "core/tenant_registry.h"

#include <algorithm>
#include <filesystem>
#include <utility>

namespace ibseg {

bool TenantRegistry::valid_name(const std::string& name) {
  if (name.empty() || name.size() > kMaxNameBytes) return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string TenantRegistry::tenant_dir(const std::string& root,
                                       const std::string& name) {
  if (root.empty()) return "";
  return root + "/tenant-" + name;
}

std::unique_ptr<TenantRegistry> TenantRegistry::open(
    const TenantRegistryOptions& options, std::vector<std::string> names,
    const SeedProvider& seed) {
  names.push_back(kDefaultTenant);
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  for (const std::string& name : names) {
    if (!valid_name(name)) return nullptr;
  }

  std::unique_ptr<TenantRegistry> reg(new TenantRegistry());
  size_t pool_threads = options.scatter_threads != 0
                            ? options.scatter_threads
                            : (options.serving.num_shards > 1
                                   ? static_cast<size_t>(
                                         options.serving.num_shards)
                                   : 0);
  if (pool_threads > 1) {
    reg->pool_ = std::make_unique<ThreadPool>(pool_threads);
  }

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  for (const std::string& name : names) {
    Tenant t;
    t.dir = tenant_dir(options.state_root, name);

    ServingOptions serving = options.serving;
    serving.tenant = name;
    serving.persist.shard_dir = t.dir;
    serving.scatter_pool = reg->pool_.get();

    bool restorable =
        !t.dir.empty() &&
        std::filesystem::exists(std::filesystem::path(t.dir) / "MANIFEST");
    if (restorable) {
      t.serving = ShardedServing::restore(t.dir, options.pipeline, serving);
    } else {
      std::vector<Document> docs;
      if (seed) docs = seed(name);
      if (docs.empty()) return nullptr;  // the offline phase needs a corpus
      t.serving =
          ShardedServing::create(std::move(docs), options.pipeline, serving);
    }
    if (t.serving == nullptr) return nullptr;

    obs::Labels labels{{"tenant", name}};
    t.queries = &metrics.counter(
        "ibseg_tenant_queries_total",
        "Requests executed on this tenant's corpus.", labels);
    t.docs = &metrics.gauge("ibseg_tenant_docs",
                            "Documents resident in this tenant's corpus.",
                            labels);
    t.docs->set(static_cast<double>(t.serving->num_docs()));
    reg->tenants_.emplace(name, std::move(t));
  }
  return reg;
}

ShardedServing* TenantRegistry::find(const std::string& name) const {
  auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.serving.get();
}

std::string TenantRegistry::state_dir(const std::string& name) const {
  auto it = tenants_.find(name);
  return it == tenants_.end() ? "" : it->second.dir;
}

std::vector<std::string> TenantRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) out.push_back(name);
  return out;  // std::map iterates sorted
}

bool TenantRegistry::save(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end() || it->second.dir.empty()) return false;
  bool ok = it->second.serving->save(it->second.dir);
  if (ok) {
    it->second.docs->set(
        static_cast<double>(it->second.serving->num_docs()));
  }
  return ok;
}

bool TenantRegistry::save_all() {
  bool all_ok = true;
  for (const auto& [name, tenant] : tenants_) {
    if (tenant.dir.empty()) continue;  // persistence off for this registry
    if (!save(name)) all_ok = false;
  }
  return all_ok;
}

void TenantRegistry::count_query(const std::string& name) {
  auto it = tenants_.find(name);
  if (it != tenants_.end()) it->second.queries->inc();
}

void TenantRegistry::refresh_doc_gauge(const std::string& name) {
  auto it = tenants_.find(name);
  if (it != tenants_.end()) {
    it->second.docs->set(static_cast<double>(it->second.serving->num_docs()));
  }
}

void TenantRegistry::refresh_doc_gauges() {
  for (auto& [name, tenant] : tenants_) {
    tenant.docs->set(static_cast<double>(tenant.serving->num_docs()));
  }
}

}  // namespace ibseg
