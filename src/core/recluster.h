#ifndef IBSEG_CORE_RECLUSTER_H_
#define IBSEG_CORE_RECLUSTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

/// \file
/// ReclusterWorker: the background trigger loop that decides WHEN to run
/// an offline re-clustering epoch (docs/ARCHITECTURE.md §9). The serving
/// layers own the mechanism — ServingPipeline::recluster() and
/// ShardedServing::recluster() are synchronous, thread-safe, and leave
/// queries flowing while the shadow index builds — so the worker is pure
/// policy: poll cheap atomic counters, fire when a threshold trips, never
/// touch serving state otherwise.

namespace ibseg {

class ServingPipeline;
class ShardedServing;

/// When to trigger a background recluster. All triggers default to
/// disabled; a worker whose every trigger is disabled never fires (it
/// still polls, so policy can be relaxed later without restarting it).
struct ReclusterPolicy {
  /// Fire when the pending pool (ingested documents whose nearest-centroid
  /// assignment distance exceeded the configured threshold) reaches this
  /// size. 0 disables the trigger. Requires
  /// ReclusterOptions::pending_distance_threshold to be finite, otherwise
  /// the pool never grows and this trigger never trips.
  size_t max_pending = 0;

  /// Fire when this many documents have been ingested since the last
  /// recluster (or since startup/restore). 0 disables the trigger. The
  /// unconditional backstop: even perfectly-assigned ingests drift the
  /// corpus away from the seed clustering eventually.
  uint64_t max_docs_since = 0;

  /// How often the worker re-reads the trigger counters. The poll reads
  /// two relaxed atomics — cheap enough that the default is snappy.
  int poll_interval_ms = 200;
};

/// A polling thread that fires `recluster()` on a serving deployment when
/// a ReclusterPolicy trigger trips.
///
/// The worker holds three closures instead of a backend pointer so the
/// same loop drives either serving layer (and, in tests, a fake).
/// Construct with a ShardedServing or ServingPipeline reference and the
/// closures bind to its pending_pool_size() / docs_since_recluster() /
/// recluster() — the first two are lock-free atomic reads, the last is
/// the synchronous epoch (capture + shadow rebuild + swap).
///
/// Lifecycle: construct, start(), stop(). stop() is idempotent, wakes the
/// poll wait immediately, and JOINS — after it returns no recluster is
/// running and none will start, which is what Server::finish_drain()
/// needs before the final save. The destructor calls stop().
///
/// At most one recluster runs at a time by construction (one worker
/// thread, synchronous call); concurrent manual recluster() calls from
/// other threads are additionally serialized by the serving layer's own
/// job mutex, so a worker plus an admin RECLUSTER command is safe.
class ReclusterWorker {
 public:
  ReclusterWorker(ShardedServing& backend, ReclusterPolicy policy);
  ReclusterWorker(ServingPipeline& backend, ReclusterPolicy policy);

  /// Test seam: arbitrary counter/trigger closures.
  ReclusterWorker(std::function<size_t()> pending_pool_size,
                  std::function<uint64_t()> docs_since_recluster,
                  std::function<uint64_t()> recluster,
                  ReclusterPolicy policy);

  ~ReclusterWorker();

  ReclusterWorker(const ReclusterWorker&) = delete;
  ReclusterWorker& operator=(const ReclusterWorker&) = delete;

  /// Spawns the poll thread. Calling start() twice is a no-op.
  void start();

  /// Stops the poll thread and joins it. Blocks until any in-progress
  /// recluster epoch completes. Safe to call repeatedly and without
  /// start().
  void stop();

  /// Completed reclusters this worker has fired (not counting manual
  /// recluster() calls on the backend).
  uint64_t reclusters_fired() const {
    return fired_.load(std::memory_order_relaxed);
  }

  /// True when at least one trigger is enabled.
  bool enabled() const {
    return policy_.max_pending > 0 || policy_.max_docs_since > 0;
  }

 private:
  void loop();
  bool should_fire() const;

  std::function<size_t()> pending_pool_size_;
  std::function<uint64_t()> docs_since_recluster_;
  std::function<uint64_t()> recluster_;
  ReclusterPolicy policy_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;  ///< guarded by mu_
  std::thread thread_;
  std::atomic<bool> started_{false};
  std::atomic<uint64_t> fired_{0};
};

}  // namespace ibseg

#endif  // IBSEG_CORE_RECLUSTER_H_
