#include "core/methods.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "cluster/kmeans.h"
#include "index/fulltext_matcher.h"
#include "seg/segmenter.h"
#include "text/term_vector.h"
#include "topic/lda_matcher.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace ibseg {

const char* method_name(MethodKind kind) {
  switch (kind) {
    case MethodKind::kLda: return "LDA";
    case MethodKind::kFullText: return "FullText";
    case MethodKind::kContentMR: return "Content-MR";
    case MethodKind::kSentIntentMR: return "SentIntent-MR";
    case MethodKind::kIntentIntentMR: return "IntentIntent-MR";
    case MethodKind::kRandom: return "Random";
  }
  return "?";
}

namespace {

std::vector<Segmentation> segment_all(const std::vector<Document>& docs,
                                      const Segmenter& segmenter,
                                      size_t num_threads) {
  std::vector<Segmentation> segs(docs.size());
  if (num_threads > 1 && docs.size() > 1) {
    ThreadPool pool(num_threads);
    pool.parallel_for(docs.size(), [&](size_t d) {
      Vocabulary scratch;
      segs[d] = segmenter.segment(docs[d], scratch);
    });
  } else {
    Vocabulary scratch;
    for (size_t d = 0; d < docs.size(); ++d) {
      segs[d] = segmenter.segment(docs[d], scratch);
    }
  }
  return segs;
}

/// IntentIntent-MR and SentIntent-MR: CM-feature clustering + Algorithm 2.
class IntentMethod : public RelatedPostMethod {
 public:
  IntentMethod(MethodKind kind, const std::vector<Document>& docs,
               const MethodConfig& config, MethodBuildStats* stats)
      : kind_(kind) {
    Segmenter segmenter = kind == MethodKind::kIntentIntentMR
                              ? config.intent_segmenter
                              : Segmenter::sentences();
    Stopwatch seg_watch;
    std::vector<Segmentation> segs =
        segment_all(docs, segmenter, config.num_threads);
    double seg_sec = seg_watch.elapsed_seconds();

    Stopwatch group_watch;
    clustering_ = IntentionClustering::build(docs, segs, config.grouping);
    double group_sec = group_watch.elapsed_seconds();

    Stopwatch index_watch;
    matcher_ = std::make_unique<IntentionMatcher>(
        IntentionMatcher::build(docs, clustering_, vocab_, config.matcher));
    if (stats != nullptr) {
      stats->segmentation_sec = seg_sec;
      stats->grouping_sec = group_sec;
      stats->indexing_sec = index_watch.elapsed_seconds();
      stats->num_clusters = clustering_.num_clusters();
    }
  }

  std::vector<ScoredDoc> find_related(DocId query, int k) const override {
    return matcher_->find_related(query, k);
  }
  MethodKind kind() const override { return kind_; }

  const IntentionClustering& clustering() const { return clustering_; }

 private:
  MethodKind kind_;
  Vocabulary vocab_;
  IntentionClustering clustering_;
  std::unique_ptr<IntentionMatcher> matcher_;
};

/// Content-MR: topical segmentation + TF/IDF k-means clusters + Algorithm 2.
class ContentMethod : public RelatedPostMethod {
 public:
  ContentMethod(const std::vector<Document>& docs, const MethodConfig& config,
                MethodBuildStats* stats) {
    Stopwatch seg_watch;
    std::vector<Segmentation> segs =
        segment_all(docs, Segmenter::topical(config.tiling),
                    config.num_threads);
    double seg_sec = seg_watch.elapsed_seconds();

    // Sparse term vectors per segment, in the same flattening order
    // IntentionClustering::from_labels expects (doc order, segment order).
    Stopwatch group_watch;
    std::vector<TermVector> seg_terms;
    for (size_t d = 0; d < docs.size(); ++d) {
      for (auto [b, e] : segs[d].segments()) {
        if (b == e) continue;
        size_t tok_b = docs[d].sentences()[b].token_begin;
        size_t tok_e = docs[d].sentences()[e - 1].token_end;
        seg_terms.push_back(
            build_term_vector(docs[d].tokens(), tok_b, tok_e, vocab_));
      }
    }
    std::vector<std::vector<double>> dense = tfidf_dense_projection(
        seg_terms, static_cast<size_t>(config.content_dims));
    KMeansParams km;
    km.k = config.content_clusters;
    KMeansResult clusters = kmeans(dense, km);
    int k = static_cast<int>(clusters.centroids.size());
    clustering_ = IntentionClustering::from_labels(
        docs, segs, clusters.labels, std::max(k, 1),
        config.grouping.features);
    double group_sec = group_watch.elapsed_seconds();

    Stopwatch index_watch;
    matcher_ = std::make_unique<IntentionMatcher>(
        IntentionMatcher::build(docs, clustering_, vocab_, config.matcher));
    if (stats != nullptr) {
      stats->segmentation_sec = seg_sec;
      stats->grouping_sec = group_sec;
      stats->indexing_sec = index_watch.elapsed_seconds();
      stats->num_clusters = clustering_.num_clusters();
    }
  }

  std::vector<ScoredDoc> find_related(DocId query, int k) const override {
    return matcher_->find_related(query, k);
  }
  MethodKind kind() const override { return MethodKind::kContentMR; }

 private:
  Vocabulary vocab_;
  IntentionClustering clustering_;
  std::unique_ptr<IntentionMatcher> matcher_;
};

class FullTextMethod : public RelatedPostMethod {
 public:
  FullTextMethod(const std::vector<Document>& docs, MethodBuildStats* stats) {
    Stopwatch watch;
    matcher_ = std::make_unique<FullTextMatcher>(
        FullTextMatcher::build(docs, vocab_));
    if (stats != nullptr) stats->indexing_sec = watch.elapsed_seconds();
  }

  std::vector<ScoredDoc> find_related(DocId query, int k) const override {
    return matcher_->find_related(query, k);
  }
  MethodKind kind() const override { return MethodKind::kFullText; }

 private:
  Vocabulary vocab_;
  std::unique_ptr<FullTextMatcher> matcher_;
};

/// Chance floor: k distinct documents drawn uniformly (deterministic in
/// the query id).
class RandomMethod : public RelatedPostMethod {
 public:
  explicit RandomMethod(const std::vector<Document>& docs) {
    ids_.reserve(docs.size());
    for (const Document& d : docs) ids_.push_back(d.id());
  }

  std::vector<ScoredDoc> find_related(DocId query, int k) const override {
    std::vector<ScoredDoc> out;
    if (k <= 0 || ids_.size() < 2) return out;
    Rng rng(0xD1CEull ^ (static_cast<uint64_t>(query) * 0x9E37ull));
    std::vector<DocId> pool = ids_;
    rng.shuffle(pool);
    for (DocId d : pool) {
      if (d == query) continue;
      out.push_back(ScoredDoc{d, 1.0 / (1.0 + out.size())});
      if (out.size() == static_cast<size_t>(k)) break;
    }
    return out;
  }
  MethodKind kind() const override { return MethodKind::kRandom; }

 private:
  std::vector<DocId> ids_;
};

class LdaMethod : public RelatedPostMethod {
 public:
  LdaMethod(const std::vector<Document>& docs, const MethodConfig& config,
            MethodBuildStats* stats) {
    Stopwatch watch;
    matcher_ = std::make_unique<LdaMatcher>(
        LdaMatcher::build(docs, vocab_, config.lda));
    if (stats != nullptr) stats->grouping_sec = watch.elapsed_seconds();
  }

  std::vector<ScoredDoc> find_related(DocId query, int k) const override {
    return matcher_->find_related(query, k);
  }
  MethodKind kind() const override { return MethodKind::kLda; }

 private:
  Vocabulary vocab_;
  std::unique_ptr<LdaMatcher> matcher_;
};

}  // namespace

std::vector<std::vector<double>> tfidf_dense_projection(
    const std::vector<TermVector>& segments, size_t dims) {
  const size_t n = segments.size();
  std::unordered_map<TermId, size_t> df;
  for (const TermVector& tv : segments) {
    for (const auto& [term, w] : tv.entries()) {
      if (w > 0.0) ++df[term];
    }
  }
  // Keep the `dims` terms with the highest document frequency (ties by term
  // id for determinism); drop hapaxes when the vocabulary is large enough.
  std::vector<std::pair<TermId, size_t>> by_df(df.begin(), df.end());
  std::sort(by_df.begin(), by_df.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (by_df.size() > dims) by_df.resize(dims);
  std::unordered_map<TermId, size_t> column;
  for (size_t i = 0; i < by_df.size(); ++i) column[by_df[i].first] = i;

  std::vector<std::vector<double>> dense(
      n, std::vector<double>(std::max<size_t>(by_df.size(), 1), 0.0));
  for (size_t s = 0; s < n; ++s) {
    double norm2 = 0.0;
    for (const auto& [term, tf] : segments[s].entries()) {
      auto it = column.find(term);
      if (it == column.end() || tf <= 0.0) continue;
      double idf = std::log(static_cast<double>(n) /
                            static_cast<double>(df[term]));
      double v = (1.0 + std::log(tf)) * (idf > 0.0 ? idf : 0.1);
      dense[s][it->second] = v;
      norm2 += v * v;
    }
    if (norm2 > 0.0) {
      double inv = 1.0 / std::sqrt(norm2);
      for (double& v : dense[s]) v *= inv;
    }
  }
  return dense;
}

std::unique_ptr<RelatedPostMethod> build_method(MethodKind kind,
                                                const std::vector<Document>& docs,
                                                const MethodConfig& config,
                                                MethodBuildStats* stats) {
  switch (kind) {
    case MethodKind::kLda:
      return std::make_unique<LdaMethod>(docs, config, stats);
    case MethodKind::kFullText:
      return std::make_unique<FullTextMethod>(docs, stats);
    case MethodKind::kContentMR:
      return std::make_unique<ContentMethod>(docs, config, stats);
    case MethodKind::kSentIntentMR:
    case MethodKind::kIntentIntentMR:
      return std::make_unique<IntentMethod>(kind, docs, config, stats);
    case MethodKind::kRandom:
      return std::make_unique<RandomMethod>(docs);
  }
  return nullptr;
}

}  // namespace ibseg
