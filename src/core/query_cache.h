#ifndef IBSEG_CORE_QUERY_CACHE_H_
#define IBSEG_CORE_QUERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "index/intention_matcher.h"

/// \file
/// QueryCache: the bounded LRU result cache above the serving layer,
/// invalidated wholesale by publication epoch — a hit is always as fresh
/// as an uncached query at the same epoch (docs/ARCHITECTURE.md §3).

namespace ibseg {

/// Stable 64-bit fingerprint of every result-affecting MatcherOptions
/// field (FNV-1a over the field values, doubles by bit pattern). Two
/// option sets with the same fingerprint produce the same rankings, so
/// the fingerprint is a valid cache-key component. When a field is added
/// to MatcherOptions it MUST be folded in here; the static-coverage test
/// in tests/query_cache_test.cc (sizeof watchdog + per-field sensitivity)
/// fails until both this function and the test are updated.
uint64_t matcher_options_fingerprint(const MatcherOptions& options);

/// Tuning knobs for QueryCache.
struct QueryCacheOptions {
  /// Maximum cached entries across all shards. 0 disables the cache
  /// (every lookup misses, inserts are dropped).
  size_t capacity = 0;
  /// Entries older than this many seconds are expired on lookup.
  /// 0 = no time-based expiry (epoch validation still applies).
  double ttl_seconds = 0.0;
  /// Number of independently locked buckets. Clamped to >= 1; rounded up
  /// to a power of two so shard selection is a mask.
  size_t shards = 8;
  /// Injectable time source (seconds, monotonic) for TTL checks — tests
  /// substitute a fake; default reads obs::Clock.
  std::function<double()> time_source;
};

/// Sharded, epoch-validated LRU cache for serving query results.
///
/// Key: (query DocId, k, MatcherOptions fingerprint, offline
/// generation). Value: the ranked
/// list plus the (epoch, num_docs) snapshot it was computed under.
/// Invalidation is by epoch comparison at lookup time: every ingest
/// publish bumps the ServingPipeline epoch, so an entry filled at epoch E
/// stops validating the moment any post is published — no writer ever
/// has to touch the cache, and a hit is exactly as fresh as a query that
/// took the shared lock at the same instant. Stale and TTL-expired
/// entries are erased by the lookup that discovers them.
///
/// Thread-safety: keys hash to one of `shards` buckets, each guarded by
/// its own mutex; lookups and inserts on different shards never contend.
/// Capacity is enforced per shard (capacity/shards each, at least 1),
/// evicting the shard's least-recently-used entry.
///
/// Metrics: ibseg_query_cache_hits / _misses / _evictions (counters) and
/// ibseg_query_cache_size (gauge) in the global registry; the same
/// counts are readable per instance via hits()/misses()/evictions().
class QueryCache {
 public:
  struct Key {
    DocId query = 0;
    int k = 0;
    uint64_t fingerprint = 0;
    /// Offline generation the entry was computed under. A background
    /// recluster (docs/ARCHITECTURE.md §9) swaps the whole index without
    /// bumping the publication epoch — epoch validation alone would keep
    /// old-generation entries alive across the swap. Keying by generation
    /// makes every pre-swap entry unreachable the instant the swap
    /// publishes; the orphans age out through LRU eviction.
    uint64_t generation = 0;

    bool operator==(const Key& other) const {
      return query == other.query && k == other.k &&
             fingerprint == other.fingerprint &&
             generation == other.generation;
    }
  };

  /// A cached answer with its publication-snapshot coordinates.
  struct Value {
    std::vector<ScoredDoc> results;
    uint64_t epoch = 0;
    size_t num_docs = 0;
  };

  explicit QueryCache(QueryCacheOptions options);

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  /// Returns the entry for `key` iff it was filled at exactly
  /// `current_epoch` and has not outlived the TTL; otherwise a miss.
  /// Invalid entries (older epoch, expired) are erased on discovery.
  /// A hit refreshes the entry's LRU position.
  std::optional<Value> lookup(const Key& key, uint64_t current_epoch);

  /// Stores `value` under `key` (overwriting any previous entry),
  /// evicting the shard's LRU entry if the shard is full. No-op when the
  /// cache is disabled (capacity 0).
  void insert(const Key& key, Value value);

  /// Current number of entries across all shards.
  size_t size() const { return size_.load(std::memory_order_relaxed); }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    Key key;
    Value value;
    double fill_time = 0.0;  ///< time_source() seconds at insert
  };

  struct KeyHash {
    size_t operator()(const Key& key) const;
  };

  /// One independently locked bucket: LRU list (front = most recent)
  /// plus a key -> list-position map.
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
  };

  Shard& shard_for(const Key& key);
  double now() const { return time_(); }

  QueryCacheOptions options_;
  std::function<double()> time_;
  size_t shard_mask_ = 0;
  size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<size_t> size_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace ibseg

#endif  // IBSEG_CORE_QUERY_CACHE_H_
