#ifndef IBSEG_CORE_METHODS_H_
#define IBSEG_CORE_METHODS_H_

#include <memory>
#include <vector>

#include "cluster/intention_clusters.h"
#include "index/intention_matcher.h"
#include "seg/segmenter.h"
#include "topic/lda.h"

/// \file
/// The five evaluation methods of the paper's Sec. 9 behind one
/// interface (build_method): LDA, FullText, Content-MR, SentIntent-MR
/// and IntentIntent-MR, each answering top-k related-post queries over
/// the same corpus for the comparison tables.

namespace ibseg {

/// The five retrieval methods of the paper's overall evaluation (Sec. 9.2,
/// Table 4).
enum class MethodKind {
  kLda,             ///< topic-distribution matching (Gibbs LDA)
  kFullText,        ///< whole-post Eq. 7 matching (MySQL-style)
  kContentMR,       ///< topical TextTiling segments + TF/IDF clusters + Alg. 2
  kSentIntentMR,    ///< sentence segments + CM clusters + Alg. 2
  kIntentIntentMR,  ///< the paper's method: intention segments + CM clusters
  kRandom,          ///< uniform-random ranking (not in the paper; the
                    ///  chance floor that grounds every precision number)
};

/// \brief The paper's display name for `kind` (e.g. "IntentIntent-MR").
const char* method_name(MethodKind kind);

/// All methods share one configuration bag; each reads the parts it needs.
struct MethodConfig {
  /// Segmenter for IntentIntent-MR. Default: the CM-feature tiling
  /// configuration, our best approximation of human segmentations (the
  /// paper likewise carries its best border mechanism into the overall
  /// evaluation). Swap in Segmenter::intention(BorderStrategyKind::kGreedy)
  /// for the paper's literal Greedy choice.
  Segmenter intent_segmenter = Segmenter::cm_tiling();
  /// Intention grouping (IntentIntent-MR and SentIntent-MR).
  GroupingOptions grouping;
  /// Algorithm 1/2 list selection and scoring.
  MatcherOptions matcher;
  /// TextTiling parameters for Content-MR's topical segments.
  TextTilingOptions tiling;
  int content_clusters = 6;     ///< k for the TF/IDF k-means
  int content_dims = 256;       ///< dense TF/IDF projection width
  /// Gibbs-LDA training parameters for the LDA baseline.
  LdaParams lda;
  /// Threads for the segmentation phase.
  size_t num_threads = 1;
};

/// Offline-phase timing breakdown (Fig. 11 reports these per method).
struct MethodBuildStats {
  double segmentation_sec = 0.0;  ///< segmentation wall time
  double grouping_sec = 0.0;      ///< clustering / LDA training
  double indexing_sec = 0.0;      ///< index construction
  /// Number of intention clusters the method ended up with (0 where not
  /// applicable).
  int num_clusters = 0;
};

/// A built retrieval method: answers top-k related-post queries for posts
/// of the corpus it was built on.
class RelatedPostMethod {
 public:
  virtual ~RelatedPostMethod() = default;

  /// \brief Top-k related posts for in-corpus reference post `query`.
  /// \param query document id of the reference post
  /// \param k result list length
  virtual std::vector<ScoredDoc> find_related(DocId query, int k) const = 0;

  /// \brief Which of the five evaluation methods this instance is.
  virtual MethodKind kind() const = 0;

  /// \brief Display name, as used in the paper's tables.
  const char* name() const { return method_name(kind()); }
};

/// Builds `kind` over `docs`. `stats`, when non-null, receives the offline
/// timing breakdown.
std::unique_ptr<RelatedPostMethod> build_method(
    MethodKind kind, const std::vector<Document>& docs,
    const MethodConfig& config = {}, MethodBuildStats* stats = nullptr);

/// Dense TF/IDF projection of sparse segment term vectors onto the
/// `dims` highest-document-frequency terms, L2-normalized. Exposed for the
/// Content-MR tests.
std::vector<std::vector<double>> tfidf_dense_projection(
    const std::vector<TermVector>& segments, size_t dims);

}  // namespace ibseg

#endif  // IBSEG_CORE_METHODS_H_
