#include "core/pipeline.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/stopwatch.h"

namespace ibseg {

RelatedPostPipeline RelatedPostPipeline::build(std::vector<Document> docs,
                                               const PipelineOptions& options) {
  RelatedPostPipeline p;
  p.docs_ = std::move(docs);
  p.vocab_ = std::make_shared<Vocabulary>();
  p.segmenter_ = options.segmenter;
  p.options_ = options;
  p.segmentations_.resize(p.docs_.size());
  for (const Document& d : p.docs_) p.next_id_ = std::max(p.next_id_, d.id() + 1);

  // --- Segmentation (parallel; per-thread scratch vocabularies keep the
  // topical segmenter's term ids consistent within each document, which is
  // all its block cosines need).
  Stopwatch seg_watch;
  if (options.num_threads > 1 && p.docs_.size() > 1) {
    ThreadPool pool(options.num_threads);
    pool.parallel_for(p.docs_.size(), [&](size_t d) {
      Vocabulary scratch;
      p.segmentations_[d] = options.segmenter.segment(p.docs_[d], scratch);
    });
  } else {
    Vocabulary scratch;
    for (size_t d = 0; d < p.docs_.size(); ++d) {
      p.segmentations_[d] = options.segmenter.segment(p.docs_[d], scratch);
    }
  }
  p.timings_.segmentation_total_sec = seg_watch.elapsed_seconds();
  p.timings_.segmentation_avg_sec =
      p.docs_.empty() ? 0.0
                      : p.timings_.segmentation_total_sec /
                            static_cast<double>(p.docs_.size());

  // --- Segment grouping + refinement.
  Stopwatch group_watch;
  {
    obs::TraceScope grouping(obs::Stage::kClusterAssign);
    p.clustering_ = std::make_unique<IntentionClustering>(IntentionClustering::build(
        p.docs_, p.segmentations_, options.grouping));
  }
  p.timings_.grouping_sec = group_watch.elapsed_seconds();

  // --- Per-intention indexing.
  Stopwatch index_watch;
  {
    obs::TraceScope indexing(obs::Stage::kIndexPublish);
    p.matcher_ = std::make_unique<IntentionMatcher>(IntentionMatcher::build(
        p.docs_, *p.clustering_, *p.vocab_, options.matcher));
  }
  p.timings_.indexing_sec = index_watch.elapsed_seconds();
  return p;
}

RelatedPostPipeline RelatedPostPipeline::rebuild(
    std::vector<Document> docs, std::vector<Segmentation> segmentations,
    const PipelineOptions& options) {
  if (segmentations.size() != docs.size()) {
    return build(std::move(docs), options);
  }
  for (size_t d = 0; d < docs.size(); ++d) {
    if (segmentations[d].num_units != docs[d].num_units()) {
      return build(std::move(docs), options);
    }
  }
  RelatedPostPipeline p;
  p.docs_ = std::move(docs);
  p.vocab_ = std::make_shared<Vocabulary>();
  p.segmenter_ = options.segmenter;
  p.options_ = options;
  p.segmentations_ = std::move(segmentations);
  for (const Document& d : p.docs_) p.next_id_ = std::max(p.next_id_, d.id() + 1);

  // Segmentation is a deterministic pure function of (document, segmenter
  // options), so adopting the caller's segmentations reproduces build()'s
  // exactly; everything downstream is byte-for-byte the cold-build path.
  Stopwatch group_watch;
  {
    obs::TraceScope grouping(obs::Stage::kClusterAssign);
    p.clustering_ = std::make_unique<IntentionClustering>(
        IntentionClustering::build(p.docs_, p.segmentations_,
                                   options.grouping));
  }
  p.timings_.grouping_sec = group_watch.elapsed_seconds();

  Stopwatch index_watch;
  {
    obs::TraceScope indexing(obs::Stage::kIndexPublish);
    p.matcher_ = std::make_unique<IntentionMatcher>(IntentionMatcher::build(
        p.docs_, *p.clustering_, *p.vocab_, options.matcher));
  }
  p.timings_.indexing_sec = index_watch.elapsed_seconds();
  return p;
}

std::vector<ScoredDoc> RelatedPostPipeline::find_related_external(
    const Document& doc, int k) const {
  Vocabulary scratch;
  Segmentation seg = segmenter_.segment(doc, scratch);
  return matcher_->find_related_external(doc, seg, clustering_->centroids(),
                                         *vocab_, k);
}

PreparedPost RelatedPostPipeline::prepare_post(DocId id,
                                               std::string text) const {
  // Stage attribution happens inside the callees: Document::analyze
  // records "analyze", Segmenter::segment records "segment".
  PreparedPost post;
  post.doc = Document::analyze(id, std::move(text));
  Vocabulary scratch;
  post.seg = segmenter_.segment(post.doc, scratch);
  return post;
}

double RelatedPostPipeline::ingest(PreparedPost post) {
  double dist = matcher_->add_document(post.doc, post.seg,
                                       clustering_->centroids(), *vocab_);
  next_id_ = std::max(next_id_, post.doc.id() + 1);
  segmentations_.push_back(std::move(post.seg));
  docs_.push_back(std::move(post.doc));
  return dist;
}

DocId RelatedPostPipeline::add_post(std::string text) {
  DocId id = next_id_;
  ingest(prepare_post(id, std::move(text)));
  return id;
}

RelatedPostPipeline RelatedPostPipeline::build_from_snapshot(
    std::vector<Document> docs, const PipelineSnapshot& snapshot,
    const PipelineOptions& options,
    const std::vector<std::string>* preload_vocab) {
  if (!snapshot.is_consistent() ||
      snapshot.segmentations.size() != docs.size()) {
    return build(std::move(docs), options);
  }
  for (size_t d = 0; d < docs.size(); ++d) {
    if (snapshot.segmentations[d].num_units != docs[d].num_units()) {
      return build(std::move(docs), options);
    }
  }
  RelatedPostPipeline p;
  p.docs_ = std::move(docs);
  p.vocab_ = std::make_shared<Vocabulary>();
  if (preload_vocab != nullptr) {
    for (const std::string& term : *preload_vocab) p.vocab_->intern(term);
  }
  p.segmenter_ = options.segmenter;
  p.options_ = options;
  p.segmentations_ = snapshot.segmentations;
  for (const Document& d : p.docs_) p.next_id_ = std::max(p.next_id_, d.id() + 1);

  Stopwatch group_watch;
  {
    obs::TraceScope grouping(obs::Stage::kClusterAssign);
    p.clustering_ = std::make_unique<IntentionClustering>(
        restore_clustering(p.docs_, snapshot));
  }
  p.timings_.grouping_sec = group_watch.elapsed_seconds();

  Stopwatch index_watch;
  {
    obs::TraceScope indexing(obs::Stage::kIndexPublish);
    p.matcher_ = std::make_unique<IntentionMatcher>(IntentionMatcher::build(
        p.docs_, *p.clustering_, *p.vocab_, options.matcher));
  }
  p.timings_.indexing_sec = index_watch.elapsed_seconds();
  return p;
}

RelatedPostPipeline RelatedPostPipeline::build_shard(
    std::vector<Document> docs, const PipelineSnapshot& snapshot,
    std::shared_ptr<Vocabulary> shared_vocab,
    const std::vector<std::vector<double>>& centroids,
    const PipelineOptions& options) {
  if (!snapshot.is_consistent() ||
      snapshot.segmentations.size() != docs.size()) {
    return build(std::move(docs), options);
  }
  for (size_t d = 0; d < docs.size(); ++d) {
    if (snapshot.segmentations[d].num_units != docs[d].num_units()) {
      return build(std::move(docs), options);
    }
  }
  RelatedPostPipeline p;
  p.docs_ = std::move(docs);
  p.vocab_ = std::move(shared_vocab);
  p.segmenter_ = options.segmenter;
  p.options_ = options;
  p.segmentations_ = snapshot.segmentations;
  for (const Document& d : p.docs_) p.next_id_ = std::max(p.next_id_, d.id() + 1);

  Stopwatch group_watch;
  {
    obs::TraceScope grouping(obs::Stage::kClusterAssign);
    p.clustering_ = std::make_unique<IntentionClustering>(
        restore_clustering(p.docs_, snapshot));
    // Every shard assigns against the full corpus's centroids; the
    // shard-local centroids restore_clustering derived from this slice
    // would drift from the unpartitioned assignment.
    if (p.clustering_->num_clusters() ==
        static_cast<int>(centroids.size())) {
      p.clustering_->override_centroids(centroids);
    }
  }
  p.timings_.grouping_sec = group_watch.elapsed_seconds();

  Stopwatch index_watch;
  {
    obs::TraceScope indexing(obs::Stage::kIndexPublish);
    p.matcher_ = std::make_unique<IntentionMatcher>(IntentionMatcher::build(
        p.docs_, *p.clustering_, *p.vocab_, options.matcher));
  }
  p.timings_.indexing_sec = index_watch.elapsed_seconds();
  return p;
}

}  // namespace ibseg
