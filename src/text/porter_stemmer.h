#ifndef IBSEG_TEXT_PORTER_STEMMER_H_
#define IBSEG_TEXT_PORTER_STEMMER_H_

#include <string>
#include <string_view>

namespace ibseg {

/// Porter's stemming algorithm (Porter 1980), steps 1a-5b, implemented from
/// the published description. The retrieval indices stem terms so that
/// "installing"/"installed"/"install" share postings, matching the behaviour
/// of the MySQL full-text setup the paper builds on.
///
/// Input must be a lowercase ASCII word; words shorter than 3 characters are
/// returned unchanged (per the original algorithm's guard).
std::string porter_stem(std::string_view word);

}  // namespace ibseg

#endif  // IBSEG_TEXT_PORTER_STEMMER_H_
