#include "text/stopwords.h"

#include <unordered_set>

namespace ibseg {
namespace {

const std::unordered_set<std::string_view>& stopword_set() {
  static const auto* kSet = new std::unordered_set<std::string_view>{
      "a",       "about",   "above",   "after",   "again",  "against",
      "all",     "am",      "an",      "and",     "any",    "are",
      "as",      "at",      "be",      "because", "been",   "before",
      "being",   "below",   "between", "both",    "but",    "by",
      "can",     "could",   "did",     "do",      "does",   "doing",
      "down",    "during",  "each",    "few",     "for",    "from",
      "further", "had",     "has",     "have",    "having", "he",
      "her",     "here",    "hers",    "herself", "him",    "himself",
      "his",     "how",     "i",       "if",      "in",     "into",
      "is",      "it",      "its",     "itself",  "just",   "me",
      "more",    "most",    "my",      "myself",  "no",     "nor",
      "not",     "now",     "of",      "off",     "on",     "once",
      "only",    "or",      "other",   "our",     "ours",   "ourselves",
      "out",     "over",    "own",     "same",    "she",    "should",
      "so",      "some",    "such",    "than",    "that",   "the",
      "their",   "theirs",  "them",    "themselves", "then", "there",
      "these",   "they",    "this",    "those",   "through", "to",
      "too",     "under",   "until",   "up",      "very",   "was",
      "we",      "were",    "what",    "when",    "where",  "which",
      "while",   "who",     "whom",    "why",     "will",   "with",
      "would",   "you",     "your",    "yours",   "yourself", "yourselves",
      "n't",     "'s",      "'m",      "'re",     "'ve",    "'ll",
      "'d",      "also",    "however", "yet",     "ok",     "okay",
  };
  return *kSet;
}

}  // namespace

bool is_stopword(std::string_view lower_word) {
  return stopword_set().count(lower_word) > 0;
}

size_t stopword_count() { return stopword_set().size(); }

}  // namespace ibseg
