#include "text/tokenizer.h"

#include <array>

#include "util/strings.h"

namespace ibseg {
namespace {

bool is_word_char(char c) { return is_ascii_alpha(c); }

bool is_space_char(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

// Clitics that detach from the host word when split_contractions is set.
// "n't" is handled separately because it consumes a character of the host.
constexpr std::array<std::string_view, 6> kApostropheClitics = {
    "'s", "'m", "'re", "'ve", "'ll", "'d"};

Token make_token(std::string_view text, size_t begin, size_t end,
                 TokenKind kind) {
  Token t;
  t.text = std::string(text.substr(begin, end - begin));
  t.lower = to_lower(t.text);
  t.kind = kind;
  t.begin = begin;
  t.end = end;
  return t;
}

// If the word token [begin,end) ends with a contraction clitic, returns the
// offset where the clitic starts; otherwise returns `end`.
size_t clitic_start(std::string_view text, size_t begin, size_t end) {
  std::string lower = to_lower(text.substr(begin, end - begin));
  if (lower.size() >= 3 && ends_with(lower, "n't")) {
    return end - 3;
  }
  for (std::string_view clitic : kApostropheClitics) {
    if (lower.size() > clitic.size() && ends_with(lower, clitic)) {
      return end - clitic.size();
    }
  }
  return end;
}

}  // namespace

std::vector<Token> tokenize(std::string_view text,
                            const TokenizerOptions& options) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (is_space_char(c)) {
      ++i;
      continue;
    }
    if (is_word_char(c)) {
      size_t begin = i;
      while (i < n) {
        if (is_word_char(text[i])) {
          ++i;
        } else if ((text[i] == '\'' || text[i] == '-') && i + 1 < n &&
                   is_word_char(text[i + 1])) {
          // Internal apostrophe/hyphen stays inside the word.
          i += 2;
        } else {
          break;
        }
      }
      size_t end = i;
      if (options.split_contractions) {
        size_t split = clitic_start(text, begin, end);
        if (split > begin && split < end) {
          tokens.push_back(make_token(text, begin, split, TokenKind::kWord));
          tokens.push_back(make_token(text, split, end, TokenKind::kWord));
          continue;
        }
      }
      tokens.push_back(make_token(text, begin, end, TokenKind::kWord));
      continue;
    }
    if (is_ascii_digit(c)) {
      size_t begin = i;
      while (i < n &&
             (is_ascii_digit(text[i]) ||
              (text[i] == '.' && i + 1 < n && is_ascii_digit(text[i + 1])))) {
        ++i;
      }
      // Attach a trailing unit suffix ("320GB", "1TB") to the number token.
      while (i < n && is_word_char(text[i])) ++i;
      tokens.push_back(make_token(text, begin, i, TokenKind::kNumber));
      continue;
    }
    if (options.emit_punctuation) {
      tokens.push_back(make_token(text, i, i + 1, TokenKind::kPunctuation));
    }
    ++i;
  }
  return tokens;
}

std::vector<std::string> word_tokens(std::string_view text) {
  std::vector<std::string> out;
  for (const Token& t : tokenize(text)) {
    if (t.kind == TokenKind::kWord) out.push_back(t.lower);
  }
  return out;
}

}  // namespace ibseg
