#include "text/vocabulary.h"

namespace ibseg {

TermId Vocabulary::intern(std::string_view term) {
  auto it = index_.find(std::string(term));
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.emplace_back(term);
  index_.emplace(terms_.back(), id);
  return id;
}

TermId Vocabulary::find(std::string_view term) const {
  auto it = index_.find(std::string(term));
  return it == index_.end() ? kInvalidTerm : it->second;
}

}  // namespace ibseg
