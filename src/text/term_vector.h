#ifndef IBSEG_TEXT_TERM_VECTOR_H_
#define IBSEG_TEXT_TERM_VECTOR_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace ibseg {

/// Sparse bag-of-words with double weights, ordered by TermId so that merge
/// operations are linear. Used by the TextTiling baseline, the Content-MR
/// clustering and the TF/IDF machinery.
class TermVector {
 public:
  TermVector() = default;

  /// Adds `weight` to the entry for `term`.
  void add(TermId term, double weight = 1.0);

  /// Weight of `term` (0 when absent).
  double weight(TermId term) const;

  /// Number of distinct terms.
  size_t num_terms() const { return weights_.size(); }

  /// Sum of all weights (the "length" for tf purposes).
  double total_weight() const;

  bool empty() const { return weights_.empty(); }

  /// Cosine similarity between sparse vectors; 0 when either is empty.
  static double cosine(const TermVector& a, const TermVector& b);

  /// Merges `other` into this (element-wise sum).
  void merge(const TermVector& other);

  /// Ordered (term, weight) view.
  const std::map<TermId, double>& entries() const { return weights_; }

 private:
  std::map<TermId, double> weights_;
};

/// Builds a stemmed, stopword-filtered term vector from word tokens in
/// [begin, end). Interns new terms into `vocab`.
TermVector build_term_vector(const std::vector<Token>& tokens, size_t begin,
                             size_t end, Vocabulary& vocab);

/// Read-only variant for query paths: terms missing from `vocab` are
/// dropped instead of interned. A term unknown to the build vocabulary
/// cannot match any indexed unit, so lookups lose nothing — and the query
/// path stays `const`, which is what lets N query threads share the serving
/// layer's read lock without synchronizing on the vocabulary.
TermVector build_term_vector_lookup(const std::vector<Token>& tokens,
                                    size_t begin, size_t end,
                                    const Vocabulary& vocab);

}  // namespace ibseg

#endif  // IBSEG_TEXT_TERM_VECTOR_H_
