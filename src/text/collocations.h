#ifndef IBSEG_TEXT_COLLOCATIONS_H_
#define IBSEG_TEXT_COLLOCATIONS_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "text/term_vector.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace ibseg {

/// Options for PMI-based bigram collocation learning.
struct CollocationOptions {
  /// Minimum number of occurrences for a bigram to be considered.
  size_t min_count = 5;
  /// Minimum pointwise mutual information (natural log) to accept.
  double min_pmi = 3.0;
  /// Keep at most this many collocations (highest PMI first).
  size_t max_collocations = 2000;
};

/// Learns "undivided combinations of words" (paper Sec. 3 allows multiword
/// text units such as "New York") from a corpus: adjacent word pairs whose
/// pointwise mutual information exceeds a threshold. Downstream, the
/// collocation-aware term-vector builder folds each detected pair into a
/// single `first_second` term so indices and similarity treat it as one
/// unit.
class CollocationModel {
 public:
  /// Counts adjacent stemmed word pairs (stopwords break adjacency) over
  /// the given token streams (one per document; pass &doc.tokens()) and
  /// keeps the high-PMI pairs.
  static CollocationModel learn(
      const std::vector<const std::vector<Token>*>& token_streams,
      const CollocationOptions& options = {});

  /// True when the stemmed pair (first, second) is a known collocation.
  bool is_collocation(const std::string& first_stem,
                      const std::string& second_stem) const;

  size_t size() const { return pairs_.size(); }

  /// The joined term form used for an accepted pair.
  static std::string joined_term(const std::string& first_stem,
                                 const std::string& second_stem);

 private:
  std::unordered_set<std::string> pairs_;  // "first second" keys
};

/// Like build_term_vector, but folds learned collocations into single
/// terms: a matching adjacent pair contributes one `first_second` term
/// instead of two unigrams.
TermVector build_term_vector_with_collocations(
    const std::vector<Token>& tokens, size_t begin, size_t end,
    const CollocationModel& model, Vocabulary& vocab);

}  // namespace ibseg

#endif  // IBSEG_TEXT_COLLOCATIONS_H_
