#ifndef IBSEG_TEXT_SENTENCE_SPLITTER_H_
#define IBSEG_TEXT_SENTENCE_SPLITTER_H_

#include <cstddef>
#include <vector>

#include "text/tokenizer.h"

namespace ibseg {

/// A sentence as a half-open range over a token stream, plus its character
/// span in the source text. Sentences are the paper's text units for
/// segmentation (Sec. 9.1.2.B: "sentences ... constitute natural and
/// intuitive text units").
struct Sentence {
  size_t token_begin = 0;  ///< Index of the first token.
  size_t token_end = 0;    ///< One past the last token.
  size_t char_begin = 0;   ///< Byte offset of the first token.
  size_t char_end = 0;     ///< Byte offset one past the last token.

  size_t num_tokens() const { return token_end - token_begin; }
};

/// Splits a token stream into sentences.
///
/// Rules (tuned for forum prose rather than edited text):
///  * '.', '!', '?' end a sentence, as does a newline in the source when the
///    next token starts a new line (forum users often omit final periods);
///  * '.' does not split after a known abbreviation (e.g., "e.g.", "dr");
///  * runs of terminators ("?!", "...") fold into the same boundary;
///  * an empty token stream yields no sentences.
std::vector<Sentence> split_sentences(const std::vector<Token>& tokens,
                                      std::string_view source_text);

}  // namespace ibseg

#endif  // IBSEG_TEXT_SENTENCE_SPLITTER_H_
