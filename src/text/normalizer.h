#ifndef IBSEG_TEXT_NORMALIZER_H_
#define IBSEG_TEXT_NORMALIZER_H_

#include <string>
#include <string_view>

namespace ibseg {

/// Maps the UTF-8 punctuation that real forum dumps are full of onto the
/// ASCII equivalents the tokenizer understands:
///   smart quotes  -> ' and "        ellipsis ...      -> ...
///   en/em dashes  -> -              non-breaking space -> space
///   bullet/middle dot -> space      arrows/TM/degree etc. -> space
/// Other multi-byte UTF-8 sequences are replaced by a single space (the
/// pipeline is ASCII-oriented; dropping an emoji must not glue two words
/// together). ASCII bytes pass through unchanged.
std::string normalize_punctuation(std::string_view text);

}  // namespace ibseg

#endif  // IBSEG_TEXT_NORMALIZER_H_
