#include "text/html_cleaner.h"

#include <array>
#include <cctype>

#include "util/strings.h"

namespace ibseg {
namespace {

struct NamedEntity {
  std::string_view name;  // includes & and ;
  char replacement;
};

constexpr std::array<NamedEntity, 7> kEntities = {{
    {"&amp;", '&'},
    {"&lt;", '<'},
    {"&gt;", '>'},
    {"&quot;", '"'},
    {"&apos;", '\''},
    {"&nbsp;", ' '},
    {"&#39;", '\''},
}};

// Returns the lowercased tag name starting at `pos` (which points just past
// '<' and an optional '/').
std::string tag_name_at(std::string_view s, size_t pos) {
  std::string name;
  while (pos < s.size() && is_ascii_alnum(s[pos])) {
    name.push_back(static_cast<char>(std::tolower(s[pos])));
    ++pos;
  }
  return name;
}

bool is_block_tag(const std::string& name) {
  return name == "p" || name == "br" || name == "div" || name == "li" ||
         name == "tr" || name == "pre" || name == "blockquote" ||
         name == "h1" || name == "h2" || name == "h3" || name == "h4" ||
         name == "ul" || name == "ol" || name == "table";
}

}  // namespace

char decode_entity(std::string_view s, size_t pos, size_t* consumed) {
  for (const NamedEntity& e : kEntities) {
    if (s.substr(pos, e.name.size()) == e.name) {
      *consumed = e.name.size();
      return e.replacement;
    }
  }
  // Numeric entity &#NNN;
  if (pos + 2 < s.size() && s[pos + 1] == '#') {
    size_t i = pos + 2;
    int value = 0;
    while (i < s.size() && is_ascii_digit(s[i]) && i - pos < 8) {
      value = value * 10 + (s[i] - '0');
      ++i;
    }
    if (i < s.size() && s[i] == ';' && i > pos + 2) {
      *consumed = i - pos + 1;
      // Only ASCII survives; anything else becomes a space.
      return (value >= 32 && value < 127) ? static_cast<char>(value) : ' ';
    }
  }
  *consumed = 1;
  return '&';
}

std::string strip_html(std::string_view html) {
  std::string out;
  out.reserve(html.size());
  size_t i = 0;
  bool skipping_element = false;  // inside <script>/<style>
  std::string skip_until;        // the closing tag name we wait for
  while (i < html.size()) {
    char c = html[i];
    if (c == '<') {
      size_t name_start = i + 1;
      bool closing = name_start < html.size() && html[name_start] == '/';
      if (closing) ++name_start;
      std::string name = tag_name_at(html, name_start);
      size_t close = html.find('>', i);
      if (close == std::string_view::npos) break;  // truncated markup
      if (skipping_element) {
        if (closing && name == skip_until) skipping_element = false;
      } else if (!closing && (name == "script" || name == "style")) {
        skipping_element = true;
        skip_until = name;
      } else if (is_block_tag(name)) {
        if (!out.empty() && out.back() != '\n') out.push_back('\n');
      }
      i = close + 1;
      continue;
    }
    if (skipping_element) {
      ++i;
      continue;
    }
    if (c == '&') {
      size_t consumed = 0;
      out.push_back(decode_entity(html, i, &consumed));
      i += consumed;
      continue;
    }
    if (c == '\r') {
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t') {
      if (!out.empty() && out.back() != ' ' && out.back() != '\n') {
        out.push_back(' ');
      }
      ++i;
      continue;
    }
    out.push_back(c);
    ++i;
  }
  // Trim trailing whitespace/newlines.
  while (!out.empty() && (out.back() == ' ' || out.back() == '\n')) {
    out.pop_back();
  }
  return out;
}

}  // namespace ibseg
