#ifndef IBSEG_TEXT_VOCABULARY_H_
#define IBSEG_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ibseg {

/// Integer id for an interned term. Ids are dense and start at 0.
using TermId = uint32_t;

/// Sentinel returned by Vocabulary::find for unknown terms.
inline constexpr TermId kInvalidTerm = static_cast<TermId>(-1);

/// Bidirectional term <-> id mapping shared by indices, LDA and term
/// vectors. Not thread-safe for concurrent interning; lookups of existing
/// ids are safe once interning stops.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Returns the id of `term`, interning it if new.
  TermId intern(std::string_view term);

  /// Returns the id of `term` or kInvalidTerm when unknown.
  TermId find(std::string_view term) const;

  /// Term string for an id. `id` must be valid.
  const std::string& term(TermId id) const { return terms_[id]; }

  size_t size() const { return terms_.size(); }

 private:
  std::unordered_map<std::string, TermId> index_;
  std::vector<std::string> terms_;
};

}  // namespace ibseg

#endif  // IBSEG_TEXT_VOCABULARY_H_
