#include "text/porter_stemmer.h"

#include <array>

#include "util/strings.h"

namespace ibseg {
namespace {

// The implementation follows Porter (1980), "An algorithm for suffix
// stripping", using the original measure/condition vocabulary:
//   m()      - the measure of the stem (number of VC sequences)
//   *v*      - the stem contains a vowel
//   *d       - the stem ends with a double consonant
//   *o       - the stem ends cvc where the final c is not w, x or y

class Stemmer {
 public:
  explicit Stemmer(std::string_view word) : b_(word) {}

  std::string run() {
    if (b_.size() < 3) return b_;
    step1a();
    step1b();
    step1c();
    step2();
    step3();
    step4();
    step5a();
    step5b();
    return b_;
  }

 private:
  bool is_consonant(size_t i) const {
    char c = b_[i];
    switch (c) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !is_consonant(i - 1);
      default:
        return true;
    }
  }

  // Measure of b_[0, end): number of VC sequences.
  int measure(size_t end) const {
    int m = 0;
    size_t i = 0;
    while (i < end && is_consonant(i)) ++i;  // skip initial C*
    while (i < end) {
      while (i < end && !is_consonant(i)) ++i;  // V+
      if (i >= end) break;
      while (i < end && is_consonant(i)) ++i;  // C+
      ++m;
    }
    return m;
  }

  bool has_vowel(size_t end) const {
    for (size_t i = 0; i < end; ++i) {
      if (!is_consonant(i)) return true;
    }
    return false;
  }

  bool double_consonant_at_end(size_t end) const {
    if (end < 2) return false;
    return b_[end - 1] == b_[end - 2] && is_consonant(end - 1);
  }

  bool cvc_at_end(size_t end) const {
    if (end < 3) return false;
    if (!is_consonant(end - 3) || is_consonant(end - 2) ||
        !is_consonant(end - 1)) {
      return false;
    }
    char c = b_[end - 1];
    return c != 'w' && c != 'x' && c != 'y';
  }

  bool ends(std::string_view suffix) const {
    return ends_with(b_, suffix) && b_.size() > suffix.size();
  }

  size_t stem_len(std::string_view suffix) const {
    return b_.size() - suffix.size();
  }

  void set_suffix(std::string_view suffix, std::string_view replacement) {
    b_.resize(b_.size() - suffix.size());
    b_.append(replacement);
  }

  // Replaces `suffix` by `replacement` when m(stem) > 0.
  bool replace_m0(std::string_view suffix, std::string_view replacement) {
    if (!ends(suffix)) return false;
    if (measure(stem_len(suffix)) > 0) set_suffix(suffix, replacement);
    return true;
  }

  // Replaces `suffix` by `replacement` when m(stem) > 1.
  bool replace_m1(std::string_view suffix, std::string_view replacement) {
    if (!ends(suffix)) return false;
    if (measure(stem_len(suffix)) > 1) set_suffix(suffix, replacement);
    return true;
  }

  void step1a() {
    if (ends("sses")) {
      set_suffix("sses", "ss");
    } else if (ends("ies")) {
      set_suffix("ies", "i");
    } else if (ends("ss")) {
      // keep
    } else if (ends("s")) {
      set_suffix("s", "");
    }
  }

  void step1b() {
    if (ends("eed")) {
      if (measure(stem_len("eed")) > 0) set_suffix("eed", "ee");
      return;
    }
    bool stripped = false;
    if (ends("ed") && has_vowel(stem_len("ed"))) {
      set_suffix("ed", "");
      stripped = true;
    } else if (ends("ing") && has_vowel(stem_len("ing"))) {
      set_suffix("ing", "");
      stripped = true;
    }
    if (!stripped) return;
    if (ends("at")) {
      set_suffix("at", "ate");
    } else if (ends("bl")) {
      set_suffix("bl", "ble");
    } else if (ends("iz")) {
      set_suffix("iz", "ize");
    } else if (double_consonant_at_end(b_.size())) {
      char last = b_.back();
      if (last != 'l' && last != 's' && last != 'z') b_.pop_back();
    } else if (measure(b_.size()) == 1 && cvc_at_end(b_.size())) {
      b_.push_back('e');
    }
  }

  void step1c() {
    if (ends("y") && has_vowel(stem_len("y"))) {
      b_.back() = 'i';
    }
  }

  void step2() {
    struct Rule {
      std::string_view from;
      std::string_view to;
    };
    // The original 1980 list plus the two additions of Porter's reference
    // implementation (fulli -> ful, logi -> log), which the published test
    // vocabulary assumes.
    static constexpr std::array<Rule, 22> kRules = {{
        {"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
        {"anci", "ance"},   {"izer", "ize"},    {"abli", "able"},
        {"alli", "al"},     {"entli", "ent"},   {"eli", "e"},
        {"ousli", "ous"},   {"ization", "ize"}, {"ation", "ate"},
        {"ator", "ate"},    {"alism", "al"},    {"iveness", "ive"},
        {"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
        {"iviti", "ive"},   {"biliti", "ble"},  {"fulli", "ful"},
        {"logi", "log"},
    }};
    for (const Rule& r : kRules) {
      if (replace_m0(r.from, r.to)) return;
    }
  }

  void step3() {
    struct Rule {
      std::string_view from;
      std::string_view to;
    };
    static constexpr std::array<Rule, 7> kRules = {{
        {"icate", "ic"}, {"ative", ""},  {"alize", "al"}, {"iciti", "ic"},
        {"ical", "ic"},  {"ful", ""},    {"ness", ""},
    }};
    for (const Rule& r : kRules) {
      if (replace_m0(r.from, r.to)) return;
    }
  }

  void step4() {
    static constexpr std::array<std::string_view, 18> kSuffixes = {
        "al",   "ance", "ence", "er",  "ic",   "able", "ible", "ant", "ement",
        "ment", "ent",  "ou",   "ism", "ate",  "iti",  "ous",  "ive", "ize"};
    for (std::string_view s : kSuffixes) {
      if (ends(s)) {
        replace_m1(s, "");
        return;
      }
    }
    // (m>1 and (*S or *T)) ION ->
    if (ends("ion")) {
      size_t stem = stem_len("ion");
      if (stem > 0 && (b_[stem - 1] == 's' || b_[stem - 1] == 't') &&
          measure(stem) > 1) {
        set_suffix("ion", "");
      }
    }
  }

  void step5a() {
    if (!ends("e")) return;
    size_t stem = stem_len("e");
    int m = measure(stem);
    if (m > 1 || (m == 1 && !cvc_at_end(stem))) {
      set_suffix("e", "");
    }
  }

  void step5b() {
    if (b_.size() >= 2 && b_.back() == 'l' &&
        double_consonant_at_end(b_.size()) && measure(b_.size()) > 1) {
      b_.pop_back();
    }
  }

  std::string b_;
};

}  // namespace

std::string porter_stem(std::string_view word) {
  return Stemmer(word).run();
}

}  // namespace ibseg
