#include "text/collocations.h"

#include <algorithm>
#include <cmath>

#include "text/porter_stemmer.h"
#include "text/stopwords.h"

namespace ibseg {
namespace {

// Stemmed content-word sequence of a token stream; "" marks an adjacency
// break (stopword, punctuation or number).
std::vector<std::string> content_stream(const std::vector<Token>& tokens) {
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kWord && !is_stopword(t.lower)) {
      out.push_back(porter_stem(t.lower));
    } else {
      out.emplace_back();
    }
  }
  return out;
}

}  // namespace

std::string CollocationModel::joined_term(const std::string& first_stem,
                                          const std::string& second_stem) {
  return first_stem + "_" + second_stem;
}

CollocationModel CollocationModel::learn(
    const std::vector<const std::vector<Token>*>& token_streams,
    const CollocationOptions& options) {
  std::unordered_map<std::string, size_t> unigrams;
  std::unordered_map<std::string, size_t> bigrams;
  size_t total_unigrams = 0;
  size_t total_bigrams = 0;
  for (const std::vector<Token>* tokens : token_streams) {
    std::vector<std::string> stream = content_stream(*tokens);
    for (size_t i = 0; i < stream.size(); ++i) {
      if (stream[i].empty()) continue;
      ++unigrams[stream[i]];
      ++total_unigrams;
      if (i + 1 < stream.size() && !stream[i + 1].empty()) {
        ++bigrams[stream[i] + " " + stream[i + 1]];
        ++total_bigrams;
      }
    }
  }
  CollocationModel model;
  if (total_bigrams == 0 || total_unigrams == 0) return model;

  struct Scored {
    std::string key;
    double pmi;
  };
  std::vector<Scored> accepted;
  for (const auto& [key, count] : bigrams) {
    if (count < options.min_count) continue;
    size_t space = key.find(' ');
    double p_ab = static_cast<double>(count) / total_bigrams;
    double p_a = static_cast<double>(unigrams[key.substr(0, space)]) /
                 total_unigrams;
    double p_b = static_cast<double>(unigrams[key.substr(space + 1)]) /
                 total_unigrams;
    double pmi = std::log(p_ab / (p_a * p_b));
    if (pmi >= options.min_pmi) accepted.push_back(Scored{key, pmi});
  }
  std::sort(accepted.begin(), accepted.end(),
            [](const Scored& a, const Scored& b) {
              if (a.pmi != b.pmi) return a.pmi > b.pmi;
              return a.key < b.key;
            });
  if (accepted.size() > options.max_collocations) {
    accepted.resize(options.max_collocations);
  }
  for (const Scored& s : accepted) model.pairs_.insert(s.key);
  return model;
}

bool CollocationModel::is_collocation(const std::string& first_stem,
                                      const std::string& second_stem) const {
  return pairs_.count(first_stem + " " + second_stem) > 0;
}

TermVector build_term_vector_with_collocations(
    const std::vector<Token>& tokens, size_t begin, size_t end,
    const CollocationModel& model, Vocabulary& vocab) {
  TermVector tv;
  // Stemmed view of the window with adjacency breaks.
  std::vector<std::string> stems;
  stems.reserve(end - begin);
  for (size_t i = begin; i < end && i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind == TokenKind::kWord && !is_stopword(t.lower)) {
      stems.push_back(porter_stem(t.lower));
    } else if (t.kind == TokenKind::kNumber) {
      stems.push_back(t.lower);  // numbers are terms but never collocate
    } else {
      stems.emplace_back();
    }
  }
  for (size_t i = 0; i < stems.size(); ++i) {
    if (stems[i].empty()) continue;
    if (i + 1 < stems.size() && !stems[i + 1].empty() &&
        model.is_collocation(stems[i], stems[i + 1])) {
      tv.add(vocab.intern(
          CollocationModel::joined_term(stems[i], stems[i + 1])));
      ++i;  // the pair is one unit
      continue;
    }
    tv.add(vocab.intern(stems[i]));
  }
  return tv;
}

}  // namespace ibseg
