#include "text/normalizer.h"

#include <array>

namespace ibseg {
namespace {

struct Mapping {
  std::string_view utf8;
  std::string_view ascii;
};

// The common cases; checked in order (all are prefix-free).
constexpr std::array<Mapping, 18> kMappings = {{
    {"‘", "'"},   // left single quote
    {"’", "'"},   // right single quote (apostrophe!)
    {"‚", "'"},   // low single quote
    {"“", "\""},  // left double quote
    {"”", "\""},  // right double quote
    {"„", "\""},  // low double quote
    {"–", "-"},   // en dash
    {"—", "-"},   // em dash
    {"―", "-"},   // horizontal bar
    {"…", "..."}, // ellipsis
    {" ", " "},   // non-breaking space
    {"•", " "},   // bullet
    {"·", " "},   // middle dot
    {"→", " "},   // right arrow
    {"™", " "},   // trademark
    {"®", " "},   // registered
    {"°", " "},   // degree
    {"€", " "},   // euro sign (amounts keep their digits)
}};

// Length of the UTF-8 sequence starting at `c`, or 1 for ASCII/invalid.
size_t utf8_length(unsigned char c) {
  if (c < 0x80) return 1;
  if ((c >> 5) == 0x6) return 2;
  if ((c >> 4) == 0xE) return 3;
  if ((c >> 3) == 0x1E) return 4;
  return 1;  // continuation or invalid byte: consume singly
}

}  // namespace

std::string normalize_punctuation(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    unsigned char c = static_cast<unsigned char>(text[i]);
    if (c < 0x80) {
      out.push_back(static_cast<char>(c));
      ++i;
      continue;
    }
    bool mapped = false;
    for (const Mapping& m : kMappings) {
      if (text.substr(i, m.utf8.size()) == m.utf8) {
        out.append(m.ascii);
        i += m.utf8.size();
        mapped = true;
        break;
      }
    }
    if (mapped) continue;
    // Unknown multi-byte sequence: one space for the whole code point.
    size_t len = utf8_length(c);
    if (i + len > text.size()) len = 1;
    out.push_back(' ');
    i += len;
  }
  return out;
}

}  // namespace ibseg
