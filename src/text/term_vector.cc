#include "text/term_vector.h"

#include <cmath>

#include "text/porter_stemmer.h"
#include "text/stopwords.h"

namespace ibseg {

void TermVector::add(TermId term, double weight) { weights_[term] += weight; }

double TermVector::weight(TermId term) const {
  auto it = weights_.find(term);
  return it == weights_.end() ? 0.0 : it->second;
}

double TermVector::total_weight() const {
  double s = 0.0;
  for (const auto& [term, w] : weights_) s += w;
  return s;
}

double TermVector::cosine(const TermVector& a, const TermVector& b) {
  if (a.empty() || b.empty()) return 0.0;
  double dot = 0.0;
  auto ia = a.weights_.begin();
  auto ib = b.weights_.begin();
  while (ia != a.weights_.end() && ib != b.weights_.end()) {
    if (ia->first < ib->first) {
      ++ia;
    } else if (ib->first < ia->first) {
      ++ib;
    } else {
      dot += ia->second * ib->second;
      ++ia;
      ++ib;
    }
  }
  double na = 0.0;
  double nb = 0.0;
  for (const auto& [t, w] : a.weights_) na += w * w;
  for (const auto& [t, w] : b.weights_) nb += w * w;
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

void TermVector::merge(const TermVector& other) {
  for (const auto& [term, w] : other.weights_) weights_[term] += w;
}

TermVector build_term_vector(const std::vector<Token>& tokens, size_t begin,
                             size_t end, Vocabulary& vocab) {
  TermVector tv;
  for (size_t i = begin; i < end && i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind == TokenKind::kPunctuation) continue;
    if (t.kind == TokenKind::kWord) {
      if (is_stopword(t.lower)) continue;
      tv.add(vocab.intern(porter_stem(t.lower)));
    } else {
      tv.add(vocab.intern(t.lower));  // numbers/units kept verbatim
    }
  }
  return tv;
}

TermVector build_term_vector_lookup(const std::vector<Token>& tokens,
                                    size_t begin, size_t end,
                                    const Vocabulary& vocab) {
  TermVector tv;
  for (size_t i = begin; i < end && i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind == TokenKind::kPunctuation) continue;
    TermId id = kInvalidTerm;
    if (t.kind == TokenKind::kWord) {
      if (is_stopword(t.lower)) continue;
      id = vocab.find(porter_stem(t.lower));
    } else {
      id = vocab.find(t.lower);  // numbers/units kept verbatim
    }
    if (id != kInvalidTerm) tv.add(id);
  }
  return tv;
}

}  // namespace ibseg
