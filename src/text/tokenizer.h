#ifndef IBSEG_TEXT_TOKENIZER_H_
#define IBSEG_TEXT_TOKENIZER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace ibseg {

/// Lexical category of a token.
enum class TokenKind {
  kWord,         // alphabetic, possibly with internal apostrophe/hyphen
  kNumber,       // digits, possibly with ., e.g. "320", "5.5.3"
  kPunctuation,  // single punctuation character
};

/// One token of a document, carrying both surface forms and the character
/// span in the cleaned source text (the paper's annotation tool measures
/// border agreement in character offsets, so spans must be exact).
struct Token {
  std::string text;    ///< Surface form as it appears in the source.
  std::string lower;   ///< ASCII-lowercased form.
  TokenKind kind = TokenKind::kWord;
  size_t begin = 0;    ///< Byte offset of the first character.
  size_t end = 0;      ///< Byte offset one past the last character.

  bool is_word() const { return kind == TokenKind::kWord; }
};

/// Options controlling tokenization.
struct TokenizerOptions {
  /// Split clitic contractions into separate tokens ("didn't" -> "did",
  /// "n't"; "I'm" -> "I", "'m"). The CM annotator relies on this to see
  /// negation and subject pronouns. Default on.
  bool split_contractions = true;
  /// Keep single punctuation marks as tokens (needed for sentence splitting
  /// and the interrogative-style feature). Default on.
  bool emit_punctuation = true;
};

/// Splits `text` into tokens. Words may contain internal apostrophes and
/// hyphens ("don't", "e-mail"); runs of digits with internal dots form
/// number tokens ("5.5.3"); every other non-space character is punctuation.
std::vector<Token> tokenize(std::string_view text,
                            const TokenizerOptions& options = {});

/// Convenience: lowercased word tokens only (no punctuation, no numbers).
std::vector<std::string> word_tokens(std::string_view text);

}  // namespace ibseg

#endif  // IBSEG_TEXT_TOKENIZER_H_
