#ifndef IBSEG_TEXT_HTML_CLEANER_H_
#define IBSEG_TEXT_HTML_CLEANER_H_

#include <string>
#include <string_view>

namespace ibseg {

/// Strips HTML markup from raw forum-post bodies, mirroring the "html and
/// special symbols cleaning" pre-processing step the paper reports as part
/// of its segmentation timings (Sec. 9.2.4).
///
/// Behaviour:
///  * tags are removed; block-level tags (`<p>`, `<br>`, `<div>`, `<li>`,
///    headings, `<pre>`, `<tr>`) become sentence-friendly newlines;
///  * `<script>` and `<style>` elements are dropped with their content;
///  * `<code>`/`<pre>` contents are kept (StackOverflow posts carry signal
///    there) but flattened to plain text;
///  * common entities (&amp; &lt; &gt; &quot; &apos; &nbsp; &#NN;) are
///    decoded;
///  * runs of whitespace collapse to a single space, preserving newlines
///    produced by block tags.
std::string strip_html(std::string_view html);

/// Decodes the entity at s[pos] (which must be '&'). On success returns the
/// decoded character and sets *consumed to the entity length; otherwise
/// returns '&' with *consumed = 1.
char decode_entity(std::string_view s, size_t pos, size_t* consumed);

}  // namespace ibseg

#endif  // IBSEG_TEXT_HTML_CLEANER_H_
