#include "text/sentence_splitter.h"

#include <array>
#include <string_view>

namespace ibseg {
namespace {

constexpr std::array<std::string_view, 12> kAbbreviations = {
    "e.g", "i.e", "etc", "mr", "mrs", "dr", "vs", "fig", "no", "st", "jr",
    "sr"};

bool is_abbreviation(const std::string& lower) {
  for (std::string_view a : kAbbreviations) {
    if (lower == a) return true;
  }
  // Single letters ("J. Smith") rarely end sentences.
  return lower.size() == 1;
}

bool is_terminator(const Token& t) {
  return t.kind == TokenKind::kPunctuation &&
         (t.text == "." || t.text == "!" || t.text == "?");
}

// True when a newline separates the spans [prev.end, next.begin).
bool newline_between(std::string_view source, const Token& prev,
                     const Token& next) {
  for (size_t i = prev.end; i < next.begin && i < source.size(); ++i) {
    if (source[i] == '\n') return true;
  }
  return false;
}

}  // namespace

std::vector<Sentence> split_sentences(const std::vector<Token>& tokens,
                                      std::string_view source_text) {
  std::vector<Sentence> sentences;
  if (tokens.empty()) return sentences;

  size_t begin = 0;
  auto flush = [&](size_t end) {
    if (end <= begin) return;
    Sentence s;
    s.token_begin = begin;
    s.token_end = end;
    s.char_begin = tokens[begin].begin;
    s.char_end = tokens[end - 1].end;
    sentences.push_back(s);
    begin = end;
  };

  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (is_terminator(t)) {
      if (t.text == "." && i > 0 && tokens[i - 1].is_word() &&
          is_abbreviation(tokens[i - 1].lower)) {
        continue;  // "e.g." — not a boundary
      }
      // Fold terminator runs ("?!", "...") into one boundary.
      size_t j = i;
      while (j + 1 < tokens.size() && is_terminator(tokens[j + 1])) ++j;
      flush(j + 1);
      i = j;
      continue;
    }
    // Newline-as-terminator for forum posts lacking final punctuation.
    if (i + 1 < tokens.size() &&
        newline_between(source_text, t, tokens[i + 1])) {
      flush(i + 1);
    }
  }
  flush(tokens.size());
  return sentences;
}

}  // namespace ibseg
