#ifndef IBSEG_TEXT_STOPWORDS_H_
#define IBSEG_TEXT_STOPWORDS_H_

#include <string_view>

namespace ibseg {

/// True if `lower_word` is an English stop word. The list covers the usual
/// closed-class inventory (determiners, prepositions, conjunctions,
/// pronouns, auxiliaries); the paper excludes stop words from its corpus
/// statistics and term indices but *not* from the CM feature extraction
/// (pronouns and auxiliaries are exactly the CM signal).
bool is_stopword(std::string_view lower_word);

/// Number of entries in the built-in list (exposed for tests).
size_t stopword_count();

}  // namespace ibseg

#endif  // IBSEG_TEXT_STOPWORDS_H_
