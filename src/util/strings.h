#ifndef IBSEG_UTIL_STRINGS_H_
#define IBSEG_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace ibseg {

/// ASCII-lowercases `s` in place and returns it. The corpora this library
/// targets (forum posts) are processed as byte strings; non-ASCII bytes are
/// passed through untouched.
std::string to_lower(std::string_view s);

/// True if `c` is an ASCII letter.
bool is_ascii_alpha(char c);

/// True if `c` is an ASCII digit.
bool is_ascii_digit(char c);

/// True if `c` is an ASCII letter or digit.
bool is_ascii_alnum(char c);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool ends_with(std::string_view s, std::string_view suffix);

/// Splits on any character in `delims`, dropping empty pieces.
std::vector<std::string> split(std::string_view s, std::string_view delims);

/// Joins `pieces` with `sep`.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view strip(std::string_view s);

/// printf-style formatting into a std::string.
std::string str_format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace ibseg

#endif  // IBSEG_UTIL_STRINGS_H_
