#ifndef IBSEG_UTIL_THREAD_POOL_H_
#define IBSEG_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ibseg {

/// Fixed-size worker pool. The paper segments its 1.5M-post corpus in
/// parallel chunks (Sec. 9.2.4); `parallel_for` reproduces that pattern for
/// the offline segmentation phase.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (>= 1; 0 is clamped to 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  size_t num_threads() const { return workers_.size(); }

  /// Runs body(i) for i in [0, count) across the pool and waits.
  /// `body` must be safe to invoke concurrently for distinct indices.
  void parallel_for(size_t count, const std::function<void(size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Completion tracking for one caller's tasks on a shared pool.
/// ThreadPool::wait_idle() is global — it blocks until EVERY submitted
/// task is done, so two threads fanning work out over the same pool would
/// wait on each other's tasks. A TaskGroup counts only the tasks submitted
/// through it: wait() returns as soon as this group's tasks finish,
/// regardless of what else is queued. This is what lets many concurrent
/// queries share one matcher-owned pool (see IntentionMatcher).
///
/// Tasks must not themselves wait() on another group running in the same
/// pool (a worker blocked in wait() cannot execute the tasks it is
/// waiting for — classic nested fork/join deadlock on a fixed-size pool).
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Joins outstanding tasks — a group never outlives its work.
  ~TaskGroup() { wait(); }

  /// Submits `task` to the pool, tracked by this group.
  void run(std::function<void()> task);

  /// Blocks until every task run() through this group has finished.
  void wait();

 private:
  ThreadPool& pool_;
  std::mutex mu_;
  std::condition_variable done_;
  size_t pending_ = 0;
};

}  // namespace ibseg

#endif  // IBSEG_UTIL_THREAD_POOL_H_
