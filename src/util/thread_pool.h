#ifndef IBSEG_UTIL_THREAD_POOL_H_
#define IBSEG_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ibseg {

/// Fixed-size worker pool. The paper segments its 1.5M-post corpus in
/// parallel chunks (Sec. 9.2.4); `parallel_for` reproduces that pattern for
/// the offline segmentation phase.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (>= 1; 0 is clamped to 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  size_t num_threads() const { return workers_.size(); }

  /// Runs body(i) for i in [0, count) across the pool and waits.
  /// `body` must be safe to invoke concurrently for distinct indices.
  void parallel_for(size_t count, const std::function<void(size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace ibseg

#endif  // IBSEG_UTIL_THREAD_POOL_H_
