#include "util/thread_pool.h"

#include <atomic>

namespace ibseg {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(size_t count,
                              const std::function<void(size_t)>& body) {
  if (count == 0) return;
  // Dynamic chunking: ~4 chunks per worker balances load without excessive
  // queue traffic.
  size_t chunks = std::min(count, num_threads() * 4);
  std::atomic<size_t> next_chunk{0};
  size_t per_chunk = (count + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    submit([&, per_chunk, count] {
      for (;;) {
        size_t chunk = next_chunk.fetch_add(1);
        size_t begin = chunk * per_chunk;
        if (begin >= count) return;
        size_t end = std::min(begin + per_chunk, count);
        for (size_t i = begin; i < end; ++i) body(i);
      }
    });
  }
  wait_idle();
}

void TaskGroup::run(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++pending_;
  }
  pool_.submit([this, task = std::move(task)] {
    task();
    std::unique_lock<std::mutex> lock(mu_);
    if (--pending_ == 0) done_.notify_all();
  });
}

void TaskGroup::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock,
                       [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace ibseg
