#ifndef IBSEG_UTIL_STOPWATCH_H_
#define IBSEG_UTIL_STOPWATCH_H_

#include <chrono>

#include "obs/clock.h"

namespace ibseg {

/// \brief Wall-clock stopwatch used by the scaling benchmarks (paper
/// Table 6 / Fig. 11). Starts running at construction.
///
/// Implemented on obs::Clock — the same steady (monotonic) clock the
/// TraceScope stage timers read — so benchmark numbers and the
/// ibseg_stage_seconds histograms can never disagree about what a second
/// is. See obs/clock.h for why steady_clock specifically: durations must
/// survive NTP slews and manual clock sets, and neither facility ever
/// needs calendar time.
class Stopwatch {
 public:
  Stopwatch() : start_(obs::Clock::now()) {}

  /// \brief Resets the start point to now.
  void restart() { start_ = obs::Clock::now(); }

  /// \brief Elapsed seconds since construction/restart.
  double elapsed_seconds() const {
    return obs::seconds_between(start_, obs::Clock::now());
  }

  /// \brief Elapsed milliseconds since construction/restart.
  double elapsed_millis() const { return elapsed_seconds() * 1e3; }

 private:
  obs::Clock::time_point start_;
};

}  // namespace ibseg

#endif  // IBSEG_UTIL_STOPWATCH_H_
