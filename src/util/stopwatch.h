#ifndef IBSEG_UTIL_STOPWATCH_H_
#define IBSEG_UTIL_STOPWATCH_H_

#include <chrono>

namespace ibseg {

/// Wall-clock stopwatch used by the scaling benchmarks (paper Table 6 /
/// Fig. 11). Starts running at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction/restart.
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction/restart.
  double elapsed_millis() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ibseg

#endif  // IBSEG_UTIL_STOPWATCH_H_
