#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace ibseg {

uint64_t Rng::next_u64() {
  // splitmix64 (Steele, Lea, Flood 2014). Passes BigCrush; one add + three
  // xor-shift-multiplies, so it is cheap enough for inner loops.
  state_ += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::next_below(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::next_int(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(next_below(span));
}

bool Rng::next_bool(double p) { return next_double() < p; }

double Rng::next_gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 1e-300);
  double u2 = next_double();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::next_gaussian(double mean, double stddev) {
  return mean + stddev * next_gaussian();
}

size_t Rng::next_weighted(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double target = next_double() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;  // Floating-point slack: last positive bucket.
}

Rng Rng::fork() { return Rng(next_u64() ^ 0xA02BDBF7BB3C0A7ULL); }

}  // namespace ibseg
