#ifndef IBSEG_UTIL_VECTOR_MATH_H_
#define IBSEG_UTIL_VECTOR_MATH_H_

#include <vector>

namespace ibseg {

/// Dense numeric vector helpers shared by the segmentation, clustering and
/// retrieval layers. All functions require equal-length inputs (asserted).

/// Dot product.
double dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean (L2) norm.
double l2_norm(const std::vector<double>& v);

/// Euclidean distance.
double euclidean_distance(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Manhattan (L1) distance.
double manhattan_distance(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Cosine similarity; 0 when either vector is all-zero.
double cosine_similarity(const std::vector<double>& a,
                         const std::vector<double>& b);

/// 1 - cosine_similarity.
double cosine_dissimilarity(const std::vector<double>& a,
                            const std::vector<double>& b);

/// Element-wise sum accumulated into `into`.
void add_into(std::vector<double>& into, const std::vector<double>& v);

/// Scales `v` in place by `factor`.
void scale(std::vector<double>& v, double factor);

/// Arithmetic mean of `values`; 0 when empty.
double mean(const std::vector<double>& values);

/// Population standard deviation of `values`; 0 when fewer than 2 entries.
double stddev(const std::vector<double>& values);

/// Natural-log entropy of a (not necessarily normalized) non-negative
/// histogram. Zero bins are skipped; returns 0 for an empty/all-zero input.
double shannon_entropy(const std::vector<double>& histogram);

/// log(x) that returns 0 for x <= 0 (the convention used by the diversity
/// index computations where 0 * log(0) := 0).
double safe_log(double x);

}  // namespace ibseg

#endif  // IBSEG_UTIL_VECTOR_MATH_H_
