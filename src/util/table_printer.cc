#include "util/table_printer.h"

#include <algorithm>
#include <cassert>

#include "util/strings.h"

namespace ibseg {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::add_row_numeric(const std::string& label,
                                   const std::vector<double>& values,
                                   int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(str_format("%.*f", precision, v));
  add_row(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << "| " << row[c] << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    os << "|\n";
  };
  print_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace ibseg
