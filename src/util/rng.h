#ifndef IBSEG_UTIL_RNG_H_
#define IBSEG_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ibseg {

/// Deterministic pseudo-random number generator (splitmix64 core).
///
/// Every stochastic component in the library (data generation, annotator
/// simulation, DBSCAN tie-breaking, LDA Gibbs sampling) takes an explicit
/// `Rng&` so that experiments are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t next_below(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t next_int(int64_t lo, int64_t hi);

  /// Bernoulli trial with success probability `p`.
  bool next_bool(double p);

  /// Standard normal via Box-Muller.
  double next_gaussian();

  /// Gaussian with the given mean and standard deviation.
  double next_gaussian(double mean, double stddev);

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  /// All weights must be >= 0 and at least one must be > 0.
  size_t next_weighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator (useful for per-thread or
  /// per-document streams that must not interleave).
  Rng fork();

 private:
  uint64_t state_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace ibseg

#endif  // IBSEG_UTIL_RNG_H_
