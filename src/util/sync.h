#ifndef IBSEG_UTIL_SYNC_H_
#define IBSEG_UTIL_SYNC_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace ibseg {

/// Reusable cyclic barrier: `parties` threads block in arrive_and_wait()
/// until all have arrived, then all are released and the barrier resets for
/// the next round. Condition-variable based (rather than std::barrier) so
/// the stress tests and the concurrent-QPS bench behave identically across
/// standard-library versions. Used to line threads up for "thundering
/// herd" bursts where every query must start at the same instant.
class CyclicBarrier {
 public:
  explicit CyclicBarrier(size_t parties) : parties_(parties == 0 ? 1 : parties) {}

  CyclicBarrier(const CyclicBarrier&) = delete;
  CyclicBarrier& operator=(const CyclicBarrier&) = delete;

  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mu_);
    uint64_t my_generation = generation_;
    if (++waiting_ == parties_) {
      waiting_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return generation_ != my_generation; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  const size_t parties_;
  size_t waiting_ = 0;
  uint64_t generation_ = 0;
};

/// Owns a set of std::threads and joins them all on destruction (or on an
/// explicit join_all()), so a throwing assertion in a stress test cannot
/// leak running threads past the end of the scope that owns the shared
/// state they touch.
class ScopedThreads {
 public:
  ScopedThreads() = default;

  ScopedThreads(const ScopedThreads&) = delete;
  ScopedThreads& operator=(const ScopedThreads&) = delete;

  ~ScopedThreads() { join_all(); }

  template <typename Fn, typename... Args>
  void spawn(Fn&& fn, Args&&... args) {
    threads_.emplace_back(std::forward<Fn>(fn), std::forward<Args>(args)...);
  }

  void join_all() {
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

  size_t size() const { return threads_.size(); }

 private:
  std::vector<std::thread> threads_;
};

}  // namespace ibseg

#endif  // IBSEG_UTIL_SYNC_H_
