#include "util/vector_math.h"

#include <cassert>
#include <cmath>

namespace ibseg {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double l2_norm(const std::vector<double>& v) { return std::sqrt(dot(v, v)); }

double euclidean_distance(const std::vector<double>& a,
                          const std::vector<double>& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

double manhattan_distance(const std::vector<double>& a,
                          const std::vector<double>& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += std::fabs(a[i] - b[i]);
  return s;
}

double cosine_similarity(const std::vector<double>& a,
                         const std::vector<double>& b) {
  double na = l2_norm(a);
  double nb = l2_norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot(a, b) / (na * nb);
}

double cosine_dissimilarity(const std::vector<double>& a,
                            const std::vector<double>& b) {
  return 1.0 - cosine_similarity(a, b);
}

void add_into(std::vector<double>& into, const std::vector<double>& v) {
  assert(into.size() == v.size());
  for (size_t i = 0; i < v.size(); ++i) into[i] += v[i];
}

void scale(std::vector<double>& v, double factor) {
  for (double& x : v) x *= factor;
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double m = mean(values);
  double s = 0.0;
  for (double v : values) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values.size()));
}

double shannon_entropy(const std::vector<double>& histogram) {
  double total = 0.0;
  for (double v : histogram) {
    assert(v >= 0.0);
    total += v;
  }
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double v : histogram) {
    if (v <= 0.0) continue;
    double p = v / total;
    h -= p * std::log(p);
  }
  return h;
}

double safe_log(double x) { return x > 0.0 ? std::log(x) : 0.0; }

}  // namespace ibseg
