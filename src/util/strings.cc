#include "util/strings.h"

#include <cstdarg>
#include <cstdio>

namespace ibseg {

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool is_ascii_alpha(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

bool is_ascii_digit(char c) { return c >= '0' && c <= '9'; }

bool is_ascii_alnum(char c) { return is_ascii_alpha(c) || is_ascii_digit(c); }

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::vector<std::string> split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view strip(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
           c == '\v';
  };
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace ibseg
