#ifndef IBSEG_UTIL_TABLE_PRINTER_H_
#define IBSEG_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace ibseg {

/// Renders aligned ASCII tables; the benchmark binaries use it to print the
/// same row/column layouts the paper's tables and figures report.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; must have the same arity as the headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience for mixed string/double rows; doubles are formatted with
  /// `precision` decimals.
  void add_row_numeric(const std::string& label,
                       const std::vector<double>& values, int precision = 3);

  /// Writes the table (with a separator under the header) to `os`.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ibseg

#endif  // IBSEG_UTIL_TABLE_PRINTER_H_
