#include "obs/trace.h"

#include <array>

namespace ibseg {
namespace obs {

namespace detail {
std::atomic<bool> g_enabled{true};
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kAnalyze: return "analyze";
    case Stage::kSegment: return "segment";
    case Stage::kClusterAssign: return "cluster-assign";
    case Stage::kIndexPublish: return "index-publish";
    case Stage::kTermWeight: return "term-weight";
    case Stage::kScore: return "score";
    case Stage::kTopK: return "top-k";
  }
  return "?";
}

namespace {

std::array<Histogram*, kNumStages> make_stage_histograms() {
  std::array<Histogram*, kNumStages> histograms{};
  for (int i = 0; i < kNumStages; ++i) {
    histograms[static_cast<size_t>(i)] = &MetricsRegistry::global().histogram(
        "ibseg_stage_seconds",
        "Wall time attributed to each pipeline stage, in seconds.",
        {{"stage", stage_name(static_cast<Stage>(i))}});
  }
  return histograms;
}

}  // namespace

Histogram& stage_histogram(Stage stage) {
  // Registering all stages on first use (thread-safe static init) keeps
  // the exposition complete — an idle stage shows an all-zero histogram
  // rather than being absent.
  static const std::array<Histogram*, kNumStages> histograms =
      make_stage_histograms();
  return *histograms[static_cast<size_t>(static_cast<int>(stage))];
}

}  // namespace obs
}  // namespace ibseg
