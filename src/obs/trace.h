#ifndef IBSEG_OBS_TRACE_H_
#define IBSEG_OBS_TRACE_H_

#include <atomic>

#include "obs/clock.h"
#include "obs/metrics.h"

namespace ibseg {
namespace obs {

/// \brief The named stages wall time is attributed to across the query
/// and ingest paths. One `ibseg_stage_seconds{stage=...}` histogram per
/// value in the global registry (see stage_histogram()).
enum class Stage : int {
  kAnalyze,       ///< Document::analyze: clean + tokenize + tag + CM profile
  kSegment,       ///< Segmenter::segment: intention border selection
  kClusterAssign, ///< nearest-centroid assignment of query/ingest segments
  kIndexPublish,  ///< adding units to per-cluster indices (under the
                  ///  serving write lock on the ingest path)
  kTermWeight,    ///< InvertedIndex::finalize: Eq. 7/8 norm recomputation
  kScore,         ///< score_units: Eq. 9 / BM25 / LM postings traversal
  kTopK,          ///< Algorithm 2 merge + final sort + truncate
};

/// Number of Stage values (kept in sync with the enum).
inline constexpr int kNumStages = 7;

/// \brief Stable exposition name of a stage ("analyze", "segment",
/// "cluster-assign", "index-publish", "term-weight", "score", "top-k").
/// \param stage the stage
const char* stage_name(Stage stage);

/// \brief The `ibseg_stage_seconds{stage=<name>}` histogram of `stage` in
/// the global registry. The first call registers all stages at once, so
/// every stage appears in the exposition even before it first runs.
/// \param stage the stage
Histogram& stage_histogram(Stage stage);

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// \brief Whether timing instrumentation is on (default: on). One relaxed
/// load; checked by TraceScope before touching the clock.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// \brief Globally enables/disables timing instrumentation. When off,
/// TraceScope skips both clock reads and the histogram write (raw
/// counters elsewhere stay on — a relaxed increment costs about as much
/// as checking the flag would). bench/obs_overhead measures the
/// enabled-vs-disabled QPS delta.
/// \param on true to record timings, false to make TraceScope a no-op
void set_enabled(bool on);

/// \brief RAII wall-time timer: reads the obs clock at construction and
/// records the elapsed seconds into a histogram at destruction (or at an
/// early stop()). When instrumentation is disabled the constructor takes
/// no clock reading and the destructor writes nothing.
///
/// Typical use — attribute a block to a named stage:
/// \code
///   { obs::TraceScope scope(obs::Stage::kScore);  ...hot work...  }
/// \endcode
/// or time up to a point (lock-wait measurement):
/// \code
///   obs::TraceScope wait(lock_wait_histogram);
///   std::unique_lock lock(mu);
///   wait.stop();
/// \endcode
class TraceScope {
 public:
  /// \brief Starts timing into the stage's `ibseg_stage_seconds`
  /// histogram.
  /// \param stage the stage the elapsed time is attributed to
  explicit TraceScope(Stage stage)
      : hist_(enabled() ? &stage_histogram(stage) : nullptr) {
    if (hist_ != nullptr) start_ = Clock::now();
  }

  /// \brief Starts timing into an arbitrary histogram.
  /// \param hist destination histogram (must outlive the scope)
  explicit TraceScope(Histogram& hist) : hist_(enabled() ? &hist : nullptr) {
    if (hist_ != nullptr) start_ = Clock::now();
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  ~TraceScope() { stop(); }

  /// \brief Records the elapsed time now and disarms the scope (the
  /// destructor then does nothing). Idempotent.
  void stop() {
    if (hist_ == nullptr) return;
    hist_->observe(seconds_between(start_, Clock::now()));
    hist_ = nullptr;
  }

 private:
  Histogram* hist_;
  Clock::time_point start_{};
};

}  // namespace obs
}  // namespace ibseg

#endif  // IBSEG_OBS_TRACE_H_
