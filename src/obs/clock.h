#ifndef IBSEG_OBS_CLOCK_H_
#define IBSEG_OBS_CLOCK_H_

#include <chrono>

namespace ibseg {
namespace obs {

/// \brief The one clock every timing facility in the library reads.
///
/// std::chrono::steady_clock, deliberately: latency histograms, stage
/// traces and the benchmark stopwatch all measure *durations*, and a
/// duration taken across a system_clock adjustment (NTP slew, manual
/// clock set) is garbage — negative or wildly inflated samples would land
/// in the p99 tail exactly where operators look first. steady_clock is
/// monotonic by contract, so elapsed = now() - start is always
/// well-defined; its epoch is meaningless, which is fine because nothing
/// here ever needs wall-calendar time. Stopwatch (util/stopwatch.h) and
/// TraceScope (obs/trace.h) are both implemented on this alias so the two
/// can never silently diverge.
using Clock = std::chrono::steady_clock;

/// \brief Seconds between two obs clock readings, as a double.
/// \param begin the earlier reading
/// \param end the later reading
inline double seconds_between(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

}  // namespace obs
}  // namespace ibseg

#endif  // IBSEG_OBS_CLOCK_H_
