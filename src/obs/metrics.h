#ifndef IBSEG_OBS_METRICS_H_
#define IBSEG_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ibseg {
namespace obs {

/// \brief Label set attached to one metric instance, e.g.
/// {{"stage", "score"}}. Order is part of the identity; keep call sites
/// consistent. Values must be plain text (no quotes/backslashes/newlines) —
/// they are emitted verbatim into the Prometheus exposition.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// \brief Monotonically increasing event count (queries served, posts
/// published, ...).
///
/// A single relaxed atomic: inc() is one fetch_add, safe from any number
/// of threads, and deliberately unordered with respect to everything else
/// — metrics are statistical, never synchronization.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// \brief Adds `n` to the count.
  /// \param n increment (default 1)
  void inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }

  /// \brief Current count (relaxed read; may trail in-flight increments).
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief A value that goes up and down (corpus size, indexed segments).
///
/// Stored as the bit pattern of a double in a relaxed atomic; set() is a
/// plain store, add() a CAS loop. Writers racing on set() last-write-win,
/// which is the right semantic for "current size" style gauges.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  /// \brief Sets the gauge to `v` (last writer wins).
  /// \param v new value
  void set(double v) {
    bits_.store(std::bit_cast<uint64_t>(v), std::memory_order_relaxed);
  }

  /// \brief Adds `d` to the gauge (atomic read-modify-write).
  /// \param d signed delta
  void add(double d) {
    uint64_t old = bits_.load(std::memory_order_relaxed);
    uint64_t next;
    do {
      next = std::bit_cast<uint64_t>(std::bit_cast<double>(old) + d);
    } while (!bits_.compare_exchange_weak(old, next,
                                          std::memory_order_relaxed));
  }

  /// \brief Current value.
  double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<uint64_t> bits_{std::bit_cast<uint64_t>(0.0)};
};

/// \brief Fixed-bucket log-scale histogram for latency-like values
/// (seconds), with p50/p95/p99 extraction.
///
/// Buckets follow a 1-2-5 decade series from 1 microsecond to 100
/// seconds (25 finite upper bounds) plus one overflow bucket. observe()
/// is a short bounded scan to find the bucket plus exactly two relaxed
/// integer fetch_adds (the bucket, and a fixed-point running sum) — no
/// CAS loops whose retries would compound under contention, no locks, so
/// any number of threads may record concurrently. The total count is not
/// stored separately; count() sums the buckets, shifting that cost from
/// every hot-path writer to the rare reader. Readers (quantile(), render)
/// see a statistically consistent view: individual loads are relaxed,
/// which is fine because the exposition is advisory, never a
/// synchronization point.
class Histogram {
 public:
  /// Number of finite bucket upper bounds; bucket index kNumBounds is the
  /// overflow bucket (values above the largest bound).
  static constexpr size_t kNumBounds = 25;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// \brief The finite bucket upper bounds (ascending; 1-2-5 series,
  /// 1e-6 .. 100 seconds). bounds()[i] is the inclusive upper edge of
  /// bucket i.
  static const std::array<double, kNumBounds>& bounds();

  /// \brief Index of the bucket `value` falls into: the first bucket whose
  /// upper bound is >= value; kNumBounds for values above the last bound.
  /// Non-positive and NaN values map to bucket 0.
  /// \param value observed value (seconds)
  static size_t bucket_for(double value);

  /// \brief Records one observation.
  /// \param value observed value (seconds)
  void observe(double value);

  /// \brief Total number of observations (sum over all buckets: a handful
  /// of relaxed loads for the reader, zero extra cost for writers).
  uint64_t count() const;

  /// \brief Sum of all observed values. Accumulated in fixed point at
  /// kSumResolution so observers need one integer fetch_add instead of a
  /// floating-point CAS loop; each observation rounds to the nearest
  /// resolution step (≤0.5 ns error for seconds-valued histograms).
  double sum() const {
    return static_cast<double>(sum_fixed_.load(std::memory_order_relaxed)) *
           kSumResolution;
  }

  /// \brief Observations in bucket `i` (NOT cumulative).
  /// \param i bucket index in [0, kNumBounds]; kNumBounds = overflow
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// \brief Quantile estimate by linear interpolation inside the bucket
  /// containing the target rank (rank = clamp(q * count, 1, count)).
  /// Returns 0 for an empty histogram; observations in the overflow
  /// bucket resolve to the largest finite bound.
  /// \param q quantile in [0, 1], e.g. 0.5 / 0.95 / 0.99
  double quantile(double q) const;

 private:
  /// Fixed-point step of the running sum: 1 nanosecond for seconds-valued
  /// histograms. 2^64 steps ≈ 584 years of accumulated wall time before
  /// the sum could wrap.
  static constexpr double kSumResolution = 1e-9;

  std::array<std::atomic<uint64_t>, kNumBounds + 1> buckets_{};
  std::atomic<uint64_t> sum_fixed_{0};
};

/// \brief Process-wide metric directory: owns every Counter/Gauge/
/// Histogram and renders them as Prometheus text or JSON.
///
/// Registration (counter()/gauge()/histogram()) takes a mutex and is
/// expected at setup time; the returned references are stable for the
/// registry's lifetime, so hot paths hold them (typically via a
/// function-local static) and never touch the lock again. Re-requesting
/// the same (kind, name, labels) returns the existing instance — the
/// first registration's help string wins.
///
/// Use global() for the process-wide instance the library instruments;
/// tests may construct private registries for deterministic snapshots.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// \brief The process-wide registry every library metric lives in.
  static MetricsRegistry& global();

  /// \brief Finds or creates a counter.
  /// \param name Prometheus family name (e.g. "ibseg_queries_total")
  /// \param help one-line description, emitted as # HELP
  /// \param labels label set distinguishing this instance in the family
  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});

  /// \brief Finds or creates a gauge.
  /// \param name Prometheus family name
  /// \param help one-line description
  /// \param labels label set
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});

  /// \brief Finds or creates a histogram.
  /// \param name Prometheus family name (a "_seconds" suffix by
  /// convention; buckets are the fixed log-scale seconds series)
  /// \param help one-line description
  /// \param labels label set
  Histogram& histogram(const std::string& name, const std::string& help,
                       const Labels& labels = {});

  /// \brief Prometheus text exposition format (version 0.0.4): # HELP /
  /// # TYPE per family, cumulative le-labeled buckets plus _sum and
  /// _count for histograms. Deterministically ordered by (name, labels).
  std::string render_text() const;

  /// \brief JSON dump of the same state, with p50/p95/p99 precomputed per
  /// histogram. Deterministically ordered like render_text().
  std::string render_json() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    Kind kind;
    std::string name;
    std::string help;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(Kind kind, const std::string& name,
                        const std::string& help, const Labels& labels);

  mutable std::mutex mu_;
  /// Pointer-stable storage: entries are never erased, and the metric
  /// objects live behind their own unique_ptr.
  std::vector<std::unique_ptr<Entry>> entries_;
};

/// \brief Renders the global registry as Prometheus text exposition.
std::string render_text();

/// \brief Renders the global registry as JSON.
std::string render_json();

}  // namespace obs
}  // namespace ibseg

#endif  // IBSEG_OBS_METRICS_H_
