#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace ibseg {
namespace obs {

namespace {

// %g keeps the exposition compact and deterministic (6 significant
// digits; scrapers re-aggregate from buckets anyway).
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string fmt_u64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

// Canonical `k1="v1",k2="v2"` form, used both for rendering and as the
// identity key of a label set.
std::string label_body(const Labels& labels) {
  std::string out;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    out += labels[i].second;
    out += '"';
  }
  return out;
}

// `{k="v"}` or empty, for a sample with no extra labels.
std::string label_block(const Labels& labels) {
  if (labels.empty()) return "";
  return "{" + label_body(labels) + "}";
}

// Sample name + labels with one extra label appended (the histogram `le`).
std::string label_block_with(const Labels& labels, const std::string& key,
                             const std::string& value) {
  std::string body = label_body(labels);
  if (!body.empty()) body += ',';
  body += key + "=\"" + value + "\"";
  return "{" + body + "}";
}

}  // namespace

const std::array<double, Histogram::kNumBounds>& Histogram::bounds() {
  // 1-2-5 per decade, 1 microsecond .. 100 seconds. Everything the
  // pipeline times lives comfortably inside this range: a single bucket
  // scan is ~1 µs-resolution at the fast end and the overflow bucket only
  // catches pathological stalls.
  static const std::array<double, kNumBounds> kBounds = {
      1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
      1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 0.1,  0.2,  0.5,
      1.0,  2.0,  5.0,  10.0, 20.0, 50.0, 100.0};
  return kBounds;
}

size_t Histogram::bucket_for(double value) {
  if (!(value > 0.0)) return 0;  // also catches NaN
  const auto& b = bounds();
  for (size_t i = 0; i < b.size(); ++i) {
    if (value <= b[i]) return i;
  }
  return kNumBounds;  // overflow
}

void Histogram::observe(double value) {
  buckets_[bucket_for(value)].fetch_add(1, std::memory_order_relaxed);
  uint64_t fixed =
      value > 0.0 ? static_cast<uint64_t>(value / kSumResolution + 0.5) : 0;
  sum_fixed_.fetch_add(fixed, std::memory_order_relaxed);
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double Histogram::quantile(double q) const {
  uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double target =
      std::clamp(q * static_cast<double>(total), 1.0,
                 static_cast<double>(total));
  const auto& b = bounds();
  double cum_before = 0.0;
  for (size_t i = 0; i <= kNumBounds; ++i) {
    double in_bucket = static_cast<double>(bucket_count(i));
    if (in_bucket <= 0.0) continue;
    if (cum_before + in_bucket >= target) {
      if (i == kNumBounds) return b.back();  // overflow: best finite guess
      double lower = i == 0 ? 0.0 : b[i - 1];
      double upper = b[i];
      double fraction = (target - cum_before) / in_bucket;
      return lower + fraction * (upper - lower);
    }
    cum_before += in_bucket;
  }
  return b.back();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    Kind kind, const std::string& name, const std::string& help,
    const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    if (e->kind == kind && e->name == name && e->labels == labels) return *e;
  }
  auto entry = std::make_unique<Entry>();
  entry->kind = kind;
  entry->name = name;
  entry->help = help;
  entry->labels = labels;
  switch (kind) {
    case Kind::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry->histogram = std::make_unique<Histogram>();
      break;
  }
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const Labels& labels) {
  return *find_or_create(Kind::kCounter, name, help, labels).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const Labels& labels) {
  return *find_or_create(Kind::kGauge, name, help, labels).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      const Labels& labels) {
  return *find_or_create(Kind::kHistogram, name, help, labels).histogram;
}

std::string MetricsRegistry::render_text() const {
  std::vector<const Entry*> sorted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sorted.reserve(entries_.size());
    for (const auto& e : entries_) sorted.push_back(e.get());
  }
  std::sort(sorted.begin(), sorted.end(), [](const Entry* a, const Entry* b) {
    if (a->name != b->name) return a->name < b->name;
    return label_body(a->labels) < label_body(b->labels);
  });

  std::string out;
  const std::string* prev_name = nullptr;
  for (const Entry* e : sorted) {
    if (prev_name == nullptr || *prev_name != e->name) {
      out += "# HELP " + e->name + " " + e->help + "\n";
      out += "# TYPE " + e->name + " ";
      switch (e->kind) {
        case Kind::kCounter: out += "counter\n"; break;
        case Kind::kGauge: out += "gauge\n"; break;
        case Kind::kHistogram: out += "histogram\n"; break;
      }
      prev_name = &e->name;
    }
    switch (e->kind) {
      case Kind::kCounter:
        out += e->name + label_block(e->labels) + " " +
               fmt_u64(e->counter->value()) + "\n";
        break;
      case Kind::kGauge:
        out += e->name + label_block(e->labels) + " " +
               fmt_double(e->gauge->value()) + "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *e->histogram;
        const auto& bounds = Histogram::bounds();
        uint64_t cum = 0;
        for (size_t i = 0; i < Histogram::kNumBounds; ++i) {
          cum += h.bucket_count(i);
          out += e->name + "_bucket" +
                 label_block_with(e->labels, "le", fmt_double(bounds[i])) +
                 " " + fmt_u64(cum) + "\n";
        }
        cum += h.bucket_count(Histogram::kNumBounds);
        out += e->name + "_bucket" +
               label_block_with(e->labels, "le", "+Inf") + " " +
               fmt_u64(cum) + "\n";
        out += e->name + "_sum" + label_block(e->labels) + " " +
               fmt_double(h.sum()) + "\n";
        out += e->name + "_count" + label_block(e->labels) + " " +
               fmt_u64(h.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::render_json() const {
  std::vector<const Entry*> sorted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sorted.reserve(entries_.size());
    for (const auto& e : entries_) sorted.push_back(e.get());
  }
  std::sort(sorted.begin(), sorted.end(), [](const Entry* a, const Entry* b) {
    if (a->name != b->name) return a->name < b->name;
    return label_body(a->labels) < label_body(b->labels);
  });

  auto labels_json = [](const Labels& labels) {
    std::string out = "{";
    for (size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + labels[i].first + "\": \"" + labels[i].second + "\"";
    }
    return out + "}";
  };

  std::string counters, gauges, histograms;
  for (const Entry* e : sorted) {
    switch (e->kind) {
      case Kind::kCounter:
        if (!counters.empty()) counters += ",\n";
        counters += "    {\"name\": \"" + e->name + "\", \"labels\": " +
                    labels_json(e->labels) + ", \"value\": " +
                    fmt_u64(e->counter->value()) + "}";
        break;
      case Kind::kGauge:
        if (!gauges.empty()) gauges += ",\n";
        gauges += "    {\"name\": \"" + e->name + "\", \"labels\": " +
                  labels_json(e->labels) + ", \"value\": " +
                  fmt_double(e->gauge->value()) + "}";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *e->histogram;
        const auto& bounds = Histogram::bounds();
        if (!histograms.empty()) histograms += ",\n";
        histograms += "    {\"name\": \"" + e->name + "\", \"labels\": " +
                      labels_json(e->labels) +
                      ", \"count\": " + fmt_u64(h.count()) +
                      ", \"sum\": " + fmt_double(h.sum()) +
                      ", \"p50\": " + fmt_double(h.quantile(0.50)) +
                      ", \"p95\": " + fmt_double(h.quantile(0.95)) +
                      ", \"p99\": " + fmt_double(h.quantile(0.99)) +
                      ", \"buckets\": [";
        bool first = true;
        uint64_t cum = 0;
        for (size_t i = 0; i <= Histogram::kNumBounds; ++i) {
          uint64_t n = h.bucket_count(i);
          cum += n;
          if (n == 0) continue;  // sparse: only occupied buckets
          if (!first) histograms += ", ";
          first = false;
          histograms +=
              "{\"le\": " +
              (i == Histogram::kNumBounds ? std::string("\"+Inf\"")
                                          : fmt_double(bounds[i])) +
              ", \"cumulative\": " + fmt_u64(cum) + "}";
        }
        histograms += "]}";
        break;
      }
    }
  }
  return "{\n  \"counters\": [\n" + counters + "\n  ],\n  \"gauges\": [\n" +
         gauges + "\n  ],\n  \"histograms\": [\n" + histograms + "\n  ]\n}\n";
}

std::string render_text() { return MetricsRegistry::global().render_text(); }

std::string render_json() { return MetricsRegistry::global().render_json(); }

}  // namespace obs
}  // namespace ibseg
