#include "index/flat_postings.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "index/inverted_index.h"

namespace ibseg {

namespace {

/// Largest integral tf stored in the varint fast path; anything above (or
/// non-integral) takes the raw-bits branch. 2^62 keeps (tf << 1 | 1)
/// inside uint64.
constexpr double kMaxVarintTf = 4611686018427387904.0;  // 2^62

/// Bounded LEB128 read: advances *p, fails on truncation or > 10 bytes.
inline bool read_varint(const uint8_t** p, const uint8_t* end,
                        uint64_t* value) {
  uint64_t v = 0;
  int shift = 0;
  while (*p < end && shift < 64) {
    uint8_t byte = **p;
    ++*p;
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      // Reject overlong encodings that would have shifted bits past 64.
      if (shift == 63 && (byte & 0x7e) != 0) return false;
      *value = v;
      return true;
    }
    shift += 7;
  }
  return false;  // truncated or overlong
}

inline bool read_tf(const uint8_t** p, const uint8_t* end, double* tf) {
  uint64_t v = 0;
  if (!read_varint(p, end, &v)) return false;
  if ((v & 1) != 0) {
    uint64_t integral = v >> 1;
    if (integral == 0) return false;  // tf 0 never appears in a posting
    *tf = static_cast<double>(integral);
    return true;
  }
  if (v != 0) return false;  // even tags other than the raw marker: invalid
  if (end - *p < 8) return false;
  uint64_t bits = 0;
  std::memcpy(&bits, *p, 8);
  *p += 8;
  double d;
  std::memcpy(&d, &bits, 8);
  *tf = d;
  return true;
}

}  // namespace

void FlatPostings::append_varint(std::vector<uint8_t>* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

void FlatPostings::append_posting(std::vector<uint8_t>* out, uint32_t unit,
                                  double tf, uint32_t prev_unit, bool first) {
  if (first) {
    append_varint(out, unit);
  } else {
    assert(unit > prev_unit);
    append_varint(out, static_cast<uint64_t>(unit) - prev_unit);
  }
  // tf encoding: integral positive tf as varint(tf << 1 | 1); everything
  // else as the raw-bits escape varint(0) + 8 LE bytes. Both branches
  // round-trip the exact double.
  if (tf > 0.0 && tf < kMaxVarintTf && tf == std::floor(tf)) {
    append_varint(out, (static_cast<uint64_t>(tf) << 1) | 1);
  } else {
    append_varint(out, 0);
    uint64_t bits = 0;
    std::memcpy(&bits, &tf, 8);
    for (int i = 0; i < 8; ++i) {
      out->push_back(static_cast<uint8_t>(bits >> (8 * i)));
    }
  }
}

bool FlatPostings::decode_run(const uint8_t* data, size_t size, uint32_t df,
                              std::vector<Posting>* out,
                              FlatDecodeStats* stats) {
  const uint8_t* p = data;
  const uint8_t* end = data + size;
  // Allocation guard: a posting costs at least 2 bytes (one delta byte +
  // one tf byte), so an untrusted df larger than size/2 + 1 is lying about
  // the buffer — reserve from the *byte budget*, never from df alone.
  out->reserve(out->size() +
               std::min<size_t>(df, size / 2 + 1));
  uint32_t prev = 0;
  for (uint32_t i = 0; i < df; ++i) {
    uint64_t delta = 0;
    if (!read_varint(&p, end, &delta)) return false;
    uint64_t unit;
    if (i == 0) {
      unit = delta;
    } else {
      if (delta == 0) return false;  // units are strictly ascending
      unit = static_cast<uint64_t>(prev) + delta;
    }
    if (unit > 0xffffffffull) return false;
    double tf = 0.0;
    if (!read_tf(&p, end, &tf)) return false;
    out->push_back(Posting{static_cast<uint32_t>(unit), tf});
    prev = static_cast<uint32_t>(unit);
    if (stats != nullptr) ++stats->postings;
  }
  if (p != end) return false;  // trailing bytes: not a sealed run
  if (stats != nullptr) stats->bytes = size;
  return true;
}

FlatPostings FlatPostings::seal(
    const std::vector<std::pair<TermId, const std::vector<Posting>*>>&
        term_postings,
    const std::vector<double>& unit_norms,
    const std::vector<double>& unit_log_tf_sums,
    const std::vector<double>& unit_lengths) {
  FlatPostings flat;
  flat.meta_.reserve(term_postings.size());
  // Pre-size the arena roughly (2 bytes per posting is the floor); the
  // vector still grows as needed but mostly in one step.
  size_t postings_total = 0;
  for (const auto& [term, plist] : term_postings) {
    (void)term;
    postings_total += plist->size();
  }
  flat.arena_.reserve(postings_total * 3);
  for (const auto& [term, plist] : term_postings) {
    if (plist->empty()) continue;
    FlatTermMeta meta;
    meta.df = static_cast<uint32_t>(plist->size());
    meta.offset = flat.arena_.size();
    uint32_t prev = 0;
    bool first = true;
    for (const Posting& p : *plist) {
      append_posting(&flat.arena_, p.unit, p.tf, prev, first);
      prev = p.unit;
      first = false;
      // Bound inputs: each "max"/"min" is taken over the exact doubles the
      // scoring expressions produce for this posting, so comparisons in
      // the pruning path are between identical bit patterns.
      double log_tf_plus1 = std::log(p.tf) + 1.0;
      double norm = unit_norms[p.unit];
      double weight = log_tf_plus1 / norm;
      double len = unit_lengths[p.unit];
      double tf_over_len = p.tf / std::max(len, 1e-9);
      double log_tf_sum = unit_log_tf_sums[p.unit];
      if (p.tf > meta.max_tf) meta.max_tf = p.tf;
      if (meta.min_tf == 0.0 || p.tf < meta.min_tf) meta.min_tf = p.tf;
      if (log_tf_plus1 > meta.max_log_tf_plus1) {
        meta.max_log_tf_plus1 = log_tf_plus1;
      }
      if (weight > meta.max_weight) meta.max_weight = weight;
      if (tf_over_len > meta.max_tf_over_len) {
        meta.max_tf_over_len = tf_over_len;
      }
      if (meta.min_len == 0.0 || len < meta.min_len) meta.min_len = len;
      if (meta.min_log_tf_sum == 0.0 || log_tf_sum < meta.min_log_tf_sum) {
        meta.min_log_tf_sum = log_tf_sum;
      }
    }
    meta.bytes = flat.arena_.size() - meta.offset;
    flat.meta_.emplace_back(term, meta);
  }
  std::sort(flat.meta_.begin(), flat.meta_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return flat;
}

const FlatTermMeta* FlatPostings::term_meta(TermId term) const {
  auto it = std::lower_bound(
      meta_.begin(), meta_.end(), term,
      [](const auto& entry, TermId t) { return entry.first < t; });
  if (it == meta_.end() || it->first != term) return nullptr;
  return &it->second;
}

uint32_t FlatPostings::decode_term(TermId term, std::vector<uint32_t>* units,
                                   std::vector<double>* tfs) const {
  const FlatTermMeta* meta = term_meta(term);
  if (meta == nullptr) return 0;
  units->reserve(units->size() + meta->df);
  tfs->reserve(tfs->size() + meta->df);
  Cursor c = cursor(term);
  uint32_t unit = 0;
  double tf = 0.0;
  uint32_t n = 0;
  while (c.next(&unit, &tf)) {
    units->push_back(unit);
    tfs->push_back(tf);
    ++n;
  }
  assert(n == meta->df);  // sealed arenas always decode completely
  return n;
}

FlatPostings::Cursor FlatPostings::cursor(TermId term) const {
  Cursor c;
  const FlatTermMeta* meta = term_meta(term);
  if (meta == nullptr) return c;
  c.p_ = arena_.data() + meta->offset;
  c.end_ = c.p_ + meta->bytes;
  c.remaining_ = meta->df;
  return c;
}

bool FlatPostings::Cursor::next(uint32_t* unit, double* tf) {
  if (remaining_ == 0) return false;
  uint64_t delta = 0;
  if (!read_varint(&p_, end_, &delta)) {
    remaining_ = 0;  // corrupt arena: stop rather than over-read
    assert(false && "flat postings arena corrupt (truncated varint)");
    return false;
  }
  uint64_t u = first_ ? delta : static_cast<uint64_t>(prev_unit_) + delta;
  double value = 0.0;
  if (u > 0xffffffffull || !read_tf(&p_, end_, &value)) {
    remaining_ = 0;
    assert(false && "flat postings arena corrupt (bad posting)");
    return false;
  }
  prev_unit_ = static_cast<uint32_t>(u);
  first_ = false;
  *unit = prev_unit_;
  *tf = value;
  --remaining_;
  return true;
}

std::vector<uint8_t> FlatPostings::term_run_bytes(TermId term) const {
  const FlatTermMeta* meta = term_meta(term);
  if (meta == nullptr) return {};
  return std::vector<uint8_t>(arena_.begin() + static_cast<long>(meta->offset),
                              arena_.begin() +
                                  static_cast<long>(meta->offset +
                                                    meta->bytes));
}

}  // namespace ibseg
