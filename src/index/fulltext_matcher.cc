#include "index/fulltext_matcher.h"

#include <algorithm>

#include "index/scoring.h"

namespace ibseg {

FullTextMatcher FullTextMatcher::build(const std::vector<Document>& docs,
                                       Vocabulary& vocab,
                                       const ScoringOptions& scoring) {
  FullTextMatcher m;
  m.scoring_ = scoring;
  for (const Document& doc : docs) {
    TermVector terms =
        build_term_vector(doc.tokens(), 0, doc.tokens().size(), vocab);
    uint32_t unit = m.index_.add_unit(terms);
    m.unit_doc_.push_back(doc.id());
    m.unit_terms_.push_back(std::move(terms));
    m.doc_unit_[doc.id()] = unit;
  }
  m.index_.finalize();
  return m;
}

std::vector<ScoredDoc> FullTextMatcher::find_related(DocId query,
                                                     int k) const {
  std::vector<ScoredDoc> out;
  auto it = doc_unit_.find(query);
  if (it == doc_unit_.end() || k <= 0) return out;
  const TermVector& query_terms = unit_terms_[it->second];

  std::vector<ScoredUnit> hits = score_units(index_, query_terms, scoring_);
  hits.erase(std::remove_if(hits.begin(), hits.end(),
                            [&](const ScoredUnit& h) {
                              return unit_doc_[h.unit] == query;
                            }),
             hits.end());
  keep_top_n(hits, static_cast<size_t>(k));
  out.reserve(hits.size());
  for (const ScoredUnit& h : hits) {
    out.push_back(ScoredDoc{unit_doc_[h.unit], h.score});
  }
  return out;
}

}  // namespace ibseg
