#ifndef IBSEG_INDEX_INTENTION_MATCHER_H_
#define IBSEG_INDEX_INTENTION_MATCHER_H_

#include <atomic>
#include <limits>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "cluster/intention_clusters.h"
#include "index/collection_stats.h"
#include "index/inverted_index.h"
#include "index/scoring.h"
#include "seg/document.h"
#include "text/vocabulary.h"
#include "util/thread_pool.h"

namespace ibseg {

/// A retrieval result: a document and its (summed) matching score.
struct ScoredDoc {
  DocId doc = 0;
  double score = 0.0;
};

/// Options for the intention-based matcher.
struct MatcherOptions {
  /// Per-intention list length n as a multiple of k (the paper empirically
  /// selects n = 2k, Sec. 7).
  int top_n_factor = 2;
  /// Optional per-cluster weights for Algorithm 2's score sum ("in an
  /// application scenario where some clusters are more important than the
  /// others, different weights can be considered", Sec. 7). Indexed by
  /// cluster id; missing entries default to 1. Empty = uniform.
  std::vector<double> cluster_weights;
  /// Alternative list-selection rule: when > 0, a per-intention list keeps
  /// every segment scoring at least this value instead of the top-n (the
  /// Fagin-style threshold variant the paper mentions — and rejects for
  /// fairness across intentions; provided for the ablation bench).
  double score_threshold = 0.0;
  /// Passed to each per-cluster index (see InvertedIndex::min_norm_fraction).
  double min_norm_fraction = 1.0;
  /// The segment-comparison function (paper Eq. 9 by default; BM25 and a
  /// query-likelihood language model are selectable, per the paper's
  /// "any text comparison may be employed", Sec. 7).
  ScoringOptions scoring;
  /// Worker threads for the online query path. Per-intention scoring is
  /// embarrassingly parallel (Algorithm 2 scores each cluster
  /// independently and only then sums), so find_related fans the
  /// per-cluster lists out over a matcher-owned pool when > 1, and
  /// find_related_batch pipelines whole queries across it. 0/1 = serial.
  /// Parallel and serial results are bit-identical: scoring is pure
  /// per-cluster work and the merge accumulates in cluster order either
  /// way. NOTE: when adding a field here, extend
  /// matcher_options_fingerprint() (core/query_cache.h) — the
  /// static-coverage test in tests/query_cache_test.cc enforces this.
  int query_threads = 0;
  /// Forces the historic exhaustive score-then-select per-intention path
  /// instead of the MaxScore-pruned top-n (see score_units_maxscore).
  /// Results are bit-identical either way — the differential suite proves
  /// it — so this is an escape hatch and the honest baseline of
  /// bench/pruned_query_qps, not a semantics switch.
  bool exhaustive_fallback = false;
};

/// Cumulative query-path work counters (one per matcher, fed by every
/// match_cluster_terms call on any thread; relaxed atomics — these are
/// monitoring data, not synchronization). The serving layer exports them
/// as ibseg_pruned_docs_total.
struct QueryWorkCounters {
  /// Candidate units fully scored.
  std::atomic<uint64_t> units_scored{0};
  /// Candidate units abandoned by the MaxScore upper-bound test.
  std::atomic<uint64_t> units_pruned{0};
};

/// The paper's online matching machinery (Sec. 7): one full-text inverted
/// index per intention cluster, Eq. 8 term weighting (weights computed
/// within the segment's cluster), Eq. 9 per-intention relatedness,
/// Algorithm 1 (single-intention top-n) and Algorithm 2 (all-intentions
/// top-k by score summation).
class IntentionMatcher {
 public:
  /// Builds the per-cluster indices over the refined segments of
  /// `clustering`. `docs` must be the corpus the clustering was built from;
  /// `vocab` is the corpus-shared vocabulary (terms are stemmed and
  /// stopword-filtered exactly as at segmentation time).
  static IntentionMatcher build(const std::vector<Document>& docs,
                                const IntentionClustering& clustering,
                                Vocabulary& vocab,
                                const MatcherOptions& options = {});

  /// Algorithm 2: the top-k documents related to reference document
  /// `query`. The query document itself is excluded from the result.
  /// With MatcherOptions::query_threads > 1 the per-intention lists are
  /// scored concurrently on the matcher's pool; the merge is serial and
  /// in cluster order, so the ranking (scores included) is bit-identical
  /// to the serial execution.
  std::vector<ScoredDoc> find_related(DocId query, int k) const;

  /// Batched Algorithm 2: result[i] is find_related(queries[i], k).
  /// With query_threads > 1 the queries are pipelined across the pool,
  /// one task per query (each query runs its clusters serially — whole
  /// queries are the better parallel grain for throughput, and nesting
  /// fork/join on a fixed pool would deadlock). Results are bit-identical
  /// to per-query find_related in any thread configuration.
  std::vector<std::vector<ScoredDoc>> find_related_batch(
      const std::vector<DocId>& queries, int k) const;

  /// Algorithm 1: the top-n documents related to `query` considering only
  /// intention cluster `cluster` (empty when the query has no segment
  /// there).
  std::vector<ScoredDoc> match_single_intention(int cluster, DocId query,
                                                int n) const;

  /// Sentinel for match_cluster_terms: exclude no document.
  static constexpr DocId kNoDocId = std::numeric_limits<DocId>::max();

  /// The Algorithm 1 core with the query supplied as a term bag instead of
  /// a corpus DocId: scores `terms` against cluster `cluster`'s index,
  /// drops `exclude`'s own segment (pass kNoDocId to keep everything),
  /// applies MatcherOptions::score_threshold, and selects/ranks on
  /// (score desc, DocId asc). This is the scatter primitive of the sharded
  /// serving layer: each shard evaluates it over its own partition, with
  /// `global` carrying the cross-shard collection statistics so per-unit
  /// scores are bit-identical to an unpartitioned index (see score_units).
  /// nullptr `global` scores against this matcher's own statistics.
  std::vector<ScoredDoc> match_cluster_terms(
      int cluster, const TermVector& terms, DocId exclude, int n,
      const ClusterCollectionStats* global = nullptr) const;

  /// The term bag of each cluster where `doc` has a (refined) segment, in
  /// ascending cluster order. Copies — safe to ship across shards. Empty
  /// when `doc` is not indexed here.
  std::vector<std::pair<int, TermVector>> doc_cluster_terms(DocId doc) const;

  /// Nearest-centroid assignment of an external (non-ingested) post:
  /// merges same-cluster segments exactly as add_document refinement does
  /// and returns the per-cluster term bags, keyed by cluster, restricted
  /// to clusters < num_clusters. Pure function of its inputs (vocabulary
  /// lookup only, nothing interned) — the sharded layer assigns once and
  /// scatters the bags to every shard.
  static std::map<int, TermVector> assign_external(
      const Document& doc, const Segmentation& segmentation,
      const std::vector<std::vector<double>>& centroids,
      const Vocabulary& vocab, size_t num_clusters,
      const FeatureVectorOptions& features = {});

  /// Per-intention contribution of a (query, candidate) pair: why the
  /// matcher considers them related. One entry per cluster where the query
  /// has a segment and the candidate scored, with the candidate's score
  /// and 1-based rank in that cluster's list (the paper's Fig. 4/5 story:
  /// which intention the match comes from).
  struct MatchExplanation {
    int cluster = 0;
    double score = 0.0;
    int rank = 0;
  };
  std::vector<MatchExplanation> explain(DocId query, DocId candidate,
                                        int k) const;

  /// Ad-hoc query: the top-k related posts for a post that is NOT part of
  /// the corpus (the paper assumes d_q in D; downstream users rarely can).
  /// Segments are assigned to the nearest intention centroid exactly as in
  /// add_document, but nothing is ingested. `vocab` must be the matcher's
  /// build vocabulary; terms it does not contain are dropped (they are
  /// unmatched by definition). Strictly read-only — safe to call from many
  /// threads concurrently as long as no ingestion runs.
  std::vector<ScoredDoc> find_related_external(
      const Document& doc, const Segmentation& segmentation,
      const std::vector<std::vector<double>>& centroids,
      const Vocabulary& vocab, int k,
      const FeatureVectorOptions& features = {}) const;

  /// Online ingestion: adds a new post after the offline build. Its
  /// segments are assigned to the nearest intention centroid (the paper
  /// re-clusters offline periodically and finds intentions stable over
  /// time, Sec. 9.2, so nearest-centroid assignment between re-clusterings
  /// is sound); same-cluster segments are concatenated (refinement) and the
  /// touched cluster indices re-finalized. `doc.id()` must be new.
  /// `centroids` are the offline clustering's centroids; `features`
  /// must match the options the clustering was built with.
  ///
  /// Returns the largest nearest-centroid distance over the document's
  /// segments (0.0 for a document with no non-empty segments) — the
  /// assignment-quality signal the serving layer's outlier/pending pool
  /// and recluster-trigger policy consume. The distance is diagnostic
  /// only: assignment itself is unchanged, so results stay bit-identical
  /// whether or not anyone reads it.
  double add_document(const Document& doc, const Segmentation& segmentation,
                      const std::vector<std::vector<double>>& centroids,
                      Vocabulary& vocab,
                      const FeatureVectorOptions& features = {});

  /// Routes ingested per-cluster term bags to a cross-shard statistics
  /// board: after this call every add_document also append()s each
  /// refined segment's bag to `sink` (in the same ascending-cluster order
  /// the local indices ingest them). The sharded serving layer points all
  /// shards at one board so queries can score against collection-wide
  /// statistics. nullptr (default) disables. Not owned; must outlive the
  /// matcher or be reset first.
  void set_stats_sink(GlobalIndexStats* sink) { stats_sink_ = sink; }

  /// \brief Number of intention clusters (= per-cluster indices).
  int num_clusters() const { return static_cast<int>(indices_.size()); }

  /// \brief The options the matcher was built with (fingerprinted by the
  /// serving layer's result cache).
  const MatcherOptions& options() const { return options_; }

  /// Total number of indexed segments (diagnostics).
  size_t num_segments() const { return total_segments_; }

  /// Bytes of the sealed flat postings arenas across all cluster indices
  /// (metadata tables included) — the ibseg_postings_bytes gauge input.
  /// Requires every index finalized (always true outside build/ingest).
  size_t postings_bytes() const {
    size_t total = 0;
    for (const ClusterIndex& ci : indices_) total += ci.index.flat().total_bytes();
    return total;
  }

  /// Lifetime query-path work counters (see QueryWorkCounters).
  const QueryWorkCounters& work_counters() const { return *work_; }

 private:
  struct ClusterIndex {
    InvertedIndex index;
    /// unit id in `index` -> owning document.
    std::vector<DocId> unit_doc;
    /// unit id -> the segment's term bag (needed when the unit is a query).
    std::vector<TermVector> unit_terms;
  };

  /// Effective weight of `cluster` (cluster_weights entry, default 1).
  double cluster_weight(int cluster) const;

  /// find_related with the fan-out decision explicit: `allow_parallel`
  /// false forces the serial path (used by batch tasks already running on
  /// the pool — see find_related_batch).
  std::vector<ScoredDoc> find_related_impl(DocId query, int k,
                                           bool allow_parallel) const;

  std::vector<ClusterIndex> indices_;
  /// doc -> (cluster, unit-in-cluster) pairs.
  std::map<DocId, std::vector<std::pair<int, uint32_t>>> doc_units_;
  MatcherOptions options_;
  size_t total_segments_ = 0;
  /// Query-path work counters; shared_ptr so the matcher stays movable.
  std::shared_ptr<QueryWorkCounters> work_ =
      std::make_shared<QueryWorkCounters>();
  /// Cross-shard statistics board fed by add_document (see
  /// set_stats_sink). Not owned.
  GlobalIndexStats* stats_sink_ = nullptr;
  /// Query-path worker pool, created at build() when
  /// options.query_threads > 1. Shared by all concurrent queries; each
  /// query tracks its own tasks with a TaskGroup, so callers never wait
  /// on each other's work. (Makes the matcher move-only.)
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace ibseg

#endif  // IBSEG_INDEX_INTENTION_MATCHER_H_
