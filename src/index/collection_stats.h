#ifndef IBSEG_INDEX_COLLECTION_STATS_H_
#define IBSEG_INDEX_COLLECTION_STATS_H_

#include <cmath>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "text/term_vector.h"
#include "text/vocabulary.h"

namespace ibseg {

/// BM25-style pivot slope b of the Eq. 7/8 unique-term normalization NU.
/// Shared by InvertedIndex::finalize and the sharded scoring path so both
/// compute unit norms with literally the same constant.
inline constexpr double kNormPivotSlope = 0.75;

/// Per-unit lexical statistics of Eqs. 7/8 — everything about one unit the
/// term-weight denominator needs. Computed once at add time; the values are
/// a pure function of the unit's term bag, so the sharded stats board and a
/// shard's local InvertedIndex derive bit-identical numbers from the same
/// TermVector (both call compute_unit_lex_stats).
struct UnitLexStats {
  double log_tf_sum = 0.0;  ///< sum of (log tf + 1) over the unit's terms
  double length = 0.0;      ///< sum of tf (the |d| of BM25 / LM scoring)
  size_t unique_terms = 0;  ///< number of distinct terms with tf > 0
};

/// Folds a term bag into UnitLexStats, iterating entries in TermId order
/// (TermVector is id-ordered) and skipping non-positive weights — the exact
/// accumulation InvertedIndex::add_unit performs.
UnitLexStats compute_unit_lex_stats(const TermVector& terms);

/// The Eq. 7/8 denominator of one unit, *before* the collection-average
/// floor: (sum of log tf + 1) * NU, where NU pivots the unit's unique-term
/// count against the collection average; degenerate denominators fall back
/// to 1. Shared by InvertedIndex::finalize (which then applies the floor
/// via max) and the external-stats scoring path, so a unit's norm is the
/// same double no matter which side computes it.
inline double pre_floor_unit_norm(double log_tf_sum, size_t unique_terms,
                                  double avg_unique_terms) {
  double nu = 1.0;
  if (avg_unique_terms > 0.0) {
    nu = (1.0 - kNormPivotSlope) +
         kNormPivotSlope * static_cast<double>(unique_terms) /
             avg_unique_terms;
  }
  double denom = log_tf_sum * nu;
  return denom > 0.0 ? denom : 1.0;
}

/// Immutable snapshot of one intention cluster's collection-dependent
/// scoring statistics, aggregated over EVERY shard of a document-partitioned
/// deployment. A shard's inverted index holds only its own documents'
/// postings; scoring them against these global numbers reproduces — bit for
/// bit — the scores a single unpartitioned index would produce, because
/// every collection-dependent input (|I|, |I^t|, the NU pivot average, the
/// norm floor, the LM collection model) is the global value. See
/// docs/ARCHITECTURE.md §6.
struct ClusterCollectionStats {
  size_t num_units = 0;          ///< |I|: units across all shards
  double avg_unique_terms = 0.0; ///< NU pivot average (global)
  double norm_floor = 0.0;       ///< Eq. 7/8 norm floor; 0 = no floor
  double avg_unit_length = 0.0;  ///< BM25 length pivot (global)
  double collection_length = 0.0;  ///< LM collection mass (global)
  /// |I^t| per term (global document frequency).
  std::unordered_map<TermId, size_t> df;
  /// Collection term frequency per term (LM collection model numerator).
  std::unordered_map<TermId, double> collection_tf;

  size_t df_of(TermId term) const {
    auto it = df.find(term);
    return it == df.end() ? 0 : it->second;
  }
  double collection_tf_of(TermId term) const {
    auto it = collection_tf.find(term);
    return it == collection_tf.end() ? 0.0 : it->second;
  }
};

/// The sharded deployment's global statistics board: one ClusterCollection-
/// Stats per intention cluster, aggregated over all shards in publication
/// order. The board mirrors InvertedIndex arithmetic exactly:
///
///  * append() replicates add_unit's per-unit accumulation (same TermVector,
///    same iteration order, same skip rules) via compute_unit_lex_stats;
///  * refresh() replicates finalize()'s derived-stat pass — averages from
///    exact integer-valued sums, then the norm floor from a *serial* sweep
///    over every unit's pre-floor norm in global publication order. The
///    floor is the one order-sensitive float sum in the whole scoring
///    stack, which is why the board keeps the per-unit stats vector and
///    why sharded publication is serialized (ShardedServing's publish
///    mutex): the board's unit order must equal the order a single
///    unsharded index would have inserted them in.
///
/// Readers never block writers: cluster() hands out a shared_ptr to an
/// immutable snapshot (copy-on-write — refresh() builds a new snapshot and
/// swaps the pointer under the board mutex). A query grabs the snapshots it
/// needs once up front and scores against them without further
/// synchronization.
class GlobalIndexStats {
 public:
  GlobalIndexStats(int num_clusters, double min_norm_fraction);

  GlobalIndexStats(const GlobalIndexStats&) = delete;
  GlobalIndexStats& operator=(const GlobalIndexStats&) = delete;

  /// Appends one unit's term bag to `cluster`. With `refresh_now` (the
  /// online-ingest path) the cluster's derived stats and published snapshot
  /// are rebuilt immediately, mirroring the per-ingest finalize() of the
  /// unsharded matcher; bulk seeding passes false and calls refresh() once
  /// per cluster afterwards, mirroring the offline build's single finalize.
  void append(int cluster, const TermVector& terms, bool refresh_now = true);

  /// Recomputes `cluster`'s derived statistics and publishes a fresh
  /// immutable snapshot.
  void refresh(int cluster);

  /// The current immutable snapshot of `cluster`'s statistics. Never null
  /// for a valid cluster id. Thread-safe against concurrent append/refresh.
  std::shared_ptr<const ClusterCollectionStats> cluster(int c) const;

  int num_clusters() const { return static_cast<int>(accums_.size()); }

  /// Total units appended across all clusters (diagnostics).
  size_t total_units() const;

 private:
  struct ClusterAccum {
    /// Per-unit stats in global publication order — the inputs of the
    /// serial norm-floor sweep.
    std::vector<UnitLexStats> units;
    std::unordered_map<TermId, size_t> df;
    std::unordered_map<TermId, double> collection_tf;
    double collection_length = 0.0;
  };

  mutable std::mutex mu_;
  std::vector<ClusterAccum> accums_;
  std::vector<std::shared_ptr<const ClusterCollectionStats>> views_;
  double min_norm_fraction_ = 1.0;
};

}  // namespace ibseg

#endif  // IBSEG_INDEX_COLLECTION_STATS_H_
