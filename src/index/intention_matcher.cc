#include "index/intention_matcher.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_map>

#include "obs/trace.h"
#include "util/vector_math.h"

namespace ibseg {

IntentionMatcher IntentionMatcher::build(const std::vector<Document>& docs,
                                         const IntentionClustering& clustering,
                                         Vocabulary& vocab,
                                         const MatcherOptions& options) {
  IntentionMatcher m;
  m.options_ = options;
  if (options.query_threads > 1) {
    m.pool_ = std::make_unique<ThreadPool>(
        static_cast<size_t>(options.query_threads));
  }
  m.indices_.resize(static_cast<size_t>(clustering.num_clusters()));

  std::map<DocId, size_t> doc_index;
  for (size_t d = 0; d < docs.size(); ++d) doc_index[docs[d].id()] = d;

  for (int c = 0; c < clustering.num_clusters(); ++c) {
    ClusterIndex& ci = m.indices_[static_cast<size_t>(c)];
    ci.index.min_norm_fraction = options.min_norm_fraction;
    for (size_t seg_idx : clustering.cluster_members()[static_cast<size_t>(c)]) {
      const RefinedSegment& seg = clustering.segments()[seg_idx];
      const Document& doc = docs[doc_index[seg.doc]];
      TermVector terms;
      for (auto [b, e] : seg.ranges) {
        size_t tok_b = doc.sentences()[b].token_begin;
        size_t tok_e = doc.sentences()[e - 1].token_end;
        terms.merge(build_term_vector(doc.tokens(), tok_b, tok_e, vocab));
      }
      uint32_t unit = ci.index.add_unit(terms);
      ci.unit_doc.push_back(seg.doc);
      ci.unit_terms.push_back(std::move(terms));
      m.doc_units_[seg.doc].emplace_back(c, unit);
      ++m.total_segments_;
    }
    ci.index.finalize();
  }
  return m;
}

std::vector<IntentionMatcher::MatchExplanation> IntentionMatcher::explain(
    DocId query, DocId candidate, int k) const {
  std::vector<MatchExplanation> out;
  auto it = doc_units_.find(query);
  if (it == doc_units_.end() || k <= 0) return out;
  int n = options_.top_n_factor * k;
  for (auto [cluster, unit] : it->second) {
    (void)unit;
    auto list = match_single_intention(cluster, query, n);
    for (size_t rank = 0; rank < list.size(); ++rank) {
      if (list[rank].doc != candidate) continue;
      MatchExplanation e;
      e.cluster = cluster;
      e.score = list[rank].score;
      e.rank = static_cast<int>(rank) + 1;
      out.push_back(e);
      break;
    }
  }
  return out;
}

std::map<int, TermVector> IntentionMatcher::assign_external(
    const Document& doc, const Segmentation& segmentation,
    const std::vector<std::vector<double>>& centroids,
    const Vocabulary& vocab, size_t num_clusters,
    const FeatureVectorOptions& features) {
  // Nearest-centroid assignment + refinement, mirroring add_document.
  std::map<int, TermVector> per_cluster_terms;
  obs::TraceScope assign(obs::Stage::kClusterAssign);
  for (auto [b, e] : segmentation.segments()) {
    if (b == e) continue;
    std::vector<double> f = segment_feature_vector(doc, b, e, features);
    int best = 0;
    double best_d = std::numeric_limits<double>::max();
    for (size_t c = 0; c < centroids.size() && c < num_clusters; ++c) {
      double d = euclidean_distance(f, centroids[c]);
      if (d < best_d) {
        best_d = d;
        best = static_cast<int>(c);
      }
    }
    size_t tok_b = doc.sentences()[b].token_begin;
    size_t tok_e = doc.sentences()[e - 1].token_end;
    per_cluster_terms[best].merge(
        build_term_vector_lookup(doc.tokens(), tok_b, tok_e, vocab));
  }
  return per_cluster_terms;
}

std::vector<ScoredDoc> IntentionMatcher::find_related_external(
    const Document& doc, const Segmentation& segmentation,
    const std::vector<std::vector<double>>& centroids,
    const Vocabulary& vocab, int k,
    const FeatureVectorOptions& features) const {
  std::vector<ScoredDoc> out;
  if (k <= 0 || indices_.empty()) return out;

  std::map<int, TermVector> per_cluster_terms = assign_external(
      doc, segmentation, centroids, vocab, indices_.size(), features);

  int n = options_.top_n_factor * k;
  std::unordered_map<DocId, double> merged;
  for (const auto& [cluster, terms] : per_cluster_terms) {
    if (terms.empty()) continue;
    double weight = cluster_weight(cluster);
    if (weight <= 0.0) continue;
    std::vector<ScoredDoc> list =
        match_cluster_terms(cluster, terms, kNoDocId, n);
    for (const ScoredDoc& sd : list) {
      merged[sd.doc] += weight * sd.score;
    }
  }
  obs::TraceScope top_k(obs::Stage::kTopK);
  out.reserve(merged.size());
  for (const auto& [d, score] : merged) out.push_back(ScoredDoc{d, score});
  std::sort(out.begin(), out.end(), [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  });
  if (out.size() > static_cast<size_t>(k)) out.resize(static_cast<size_t>(k));
  return out;
}

double IntentionMatcher::add_document(
    const Document& doc, const Segmentation& segmentation,
    const std::vector<std::vector<double>>& centroids, Vocabulary& vocab,
    const FeatureVectorOptions& features) {
  assert(doc_units_.find(doc.id()) == doc_units_.end());
  assert(!indices_.empty());
  // Assign each raw segment to the nearest centroid, merging same-cluster
  // segments (refinement).
  std::map<int, TermVector> per_cluster_terms;
  double max_assign_distance = 0.0;
  {
    obs::TraceScope assign(obs::Stage::kClusterAssign);
    for (auto [b, e] : segmentation.segments()) {
      if (b == e) continue;
      std::vector<double> f = segment_feature_vector(doc, b, e, features);
      int best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (size_t c = 0; c < centroids.size() && c < indices_.size(); ++c) {
        double d = euclidean_distance(f, centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = static_cast<int>(c);
        }
      }
      if (best_d != std::numeric_limits<double>::max()) {
        max_assign_distance = std::max(max_assign_distance, best_d);
      }
      size_t tok_b = doc.sentences()[b].token_begin;
      size_t tok_e = doc.sentences()[e - 1].token_end;
      per_cluster_terms[best].merge(
          build_term_vector(doc.tokens(), tok_b, tok_e, vocab));
    }
  }
  for (auto& [cluster, terms] : per_cluster_terms) {
    ClusterIndex& ci = indices_[static_cast<size_t>(cluster)];
    if (stats_sink_ != nullptr) stats_sink_->append(cluster, terms);
    uint32_t unit = ci.index.add_unit(terms);
    ci.index.finalize();
    ci.unit_doc.push_back(doc.id());
    ci.unit_terms.push_back(std::move(terms));
    doc_units_[doc.id()].emplace_back(cluster, unit);
    ++total_segments_;
  }
  return max_assign_distance;
}

std::vector<std::pair<int, TermVector>> IntentionMatcher::doc_cluster_terms(
    DocId doc) const {
  std::vector<std::pair<int, TermVector>> out;
  auto it = doc_units_.find(doc);
  if (it == doc_units_.end()) return out;
  out.reserve(it->second.size());
  for (auto [cluster, unit] : it->second) {
    const ClusterIndex& ci = indices_[static_cast<size_t>(cluster)];
    out.emplace_back(cluster, ci.unit_terms[unit]);
  }
  return out;
}

std::vector<ScoredDoc> IntentionMatcher::match_single_intention(
    int cluster, DocId query, int n) const {
  std::vector<ScoredDoc> out;
  if (cluster < 0 || cluster >= num_clusters() || n <= 0) return out;
  const ClusterIndex& ci = indices_[static_cast<size_t>(cluster)];

  // Locate the query's segment in this cluster (after refinement there is
  // at most one; Sec. 7 footnote 1).
  auto it = doc_units_.find(query);
  if (it == doc_units_.end()) return out;
  const TermVector* query_terms = nullptr;
  for (auto [c, unit] : it->second) {
    if (c == cluster) {
      query_terms = &ci.unit_terms[unit];
      break;
    }
  }
  if (query_terms == nullptr || query_terms->empty()) return out;
  return match_cluster_terms(cluster, *query_terms, query, n);
}

std::vector<ScoredDoc> IntentionMatcher::match_cluster_terms(
    int cluster, const TermVector& terms, DocId exclude, int n,
    const ClusterCollectionStats* global) const {
  std::vector<ScoredDoc> out;
  if (cluster < 0 || cluster >= num_clusters() || n <= 0) return out;
  if (terms.empty()) return out;
  const ClusterIndex& ci = indices_[static_cast<size_t>(cluster)];

  if (!options_.exhaustive_fallback) {
    // MaxScore-pruned path: exclusion, threshold and (score desc, DocId
    // asc) selection all happen inside score_units_maxscore, against the
    // sealed flat postings. Bit-identical to the fallback below — the
    // differential suite sweeps the equivalence.
    PruneStats stats;
    std::vector<ScoredUnit> hits = score_units_maxscore(
        ci.index, terms, options_.scoring, global, ci.unit_doc, exclude,
        static_cast<size_t>(n), options_.score_threshold, &stats);
    work_->units_scored.fetch_add(stats.units_scored,
                                  std::memory_order_relaxed);
    work_->units_pruned.fetch_add(stats.units_abandoned,
                                  std::memory_order_relaxed);
    out.reserve(hits.size());
    for (const ScoredUnit& h : hits) {
      out.push_back(ScoredDoc{ci.unit_doc[h.unit], h.score});
    }
    return out;
  }

  PruneStats exhaustive_stats;
  std::vector<ScoredUnit> hits = score_units_counted(
      ci.index, terms, options_.scoring, global, &exhaustive_stats);
  work_->units_scored.fetch_add(exhaustive_stats.units_scored,
                                std::memory_order_relaxed);
  // Exclude the query document's own segment(s).
  hits.erase(std::remove_if(hits.begin(), hits.end(),
                            [&](const ScoredUnit& h) {
                              return ci.unit_doc[h.unit] == exclude;
                            }),
             hits.end());
  if (options_.score_threshold > 0.0) {
    hits.erase(std::remove_if(hits.begin(), hits.end(),
                              [&](const ScoredUnit& h) {
                                return h.score < options_.score_threshold;
                              }),
               hits.end());
  }
  // Rank (and, in top-n mode, select) on (score, DocId) rather than
  // (score, unit id): unit ids encode insertion order, so a tie at the
  // list boundary used to keep whichever segment happened to be indexed
  // first — deterministic for one build, but not a property of the
  // corpus. DocId ties make every execution (serial, parallel, rebuilt)
  // agree, which the differential suite relies on.
  out.reserve(hits.size());
  for (const ScoredUnit& h : hits) {
    out.push_back(ScoredDoc{ci.unit_doc[h.unit], h.score});
  }
  auto by_score_then_doc = [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  };
  if (options_.score_threshold <= 0.0 &&
      out.size() > static_cast<size_t>(n)) {
    std::partial_sort(out.begin(), out.begin() + n, out.end(),
                      by_score_then_doc);
    out.resize(static_cast<size_t>(n));
  } else {
    std::sort(out.begin(), out.end(), by_score_then_doc);
  }
  return out;
}

double IntentionMatcher::cluster_weight(int cluster) const {
  return static_cast<size_t>(cluster) < options_.cluster_weights.size()
             ? options_.cluster_weights[static_cast<size_t>(cluster)]
             : 1.0;
}

std::vector<ScoredDoc> IntentionMatcher::find_related_impl(
    DocId query, int k, bool allow_parallel) const {
  std::vector<ScoredDoc> out;
  if (k <= 0) return out;
  auto it = doc_units_.find(query);
  if (it == doc_units_.end()) return out;
  const std::vector<std::pair<int, uint32_t>>& clusters = it->second;

  int n = options_.top_n_factor * k;
  // Algorithm 2, phase 1: the per-intention lists. Each cluster's scoring
  // is independent of every other's (the paper only sums afterwards), so
  // with a pool the lists are produced concurrently — one task per
  // cluster, score/top-k stage histograms recorded from whichever worker
  // runs it. lists[i] holds cluster i's result either way, so phase 2
  // consumes the identical inputs in the identical order.
  std::vector<std::vector<ScoredDoc>> lists(clusters.size());
  auto score_one = [&](size_t i) {
    int cluster = clusters[i].first;
    if (cluster_weight(cluster) <= 0.0) return;  // list stays empty
    lists[i] = match_single_intention(cluster, query, n);
  };
  if (allow_parallel && pool_ != nullptr && clusters.size() > 1) {
    TaskGroup group(*pool_);
    for (size_t i = 0; i < clusters.size(); ++i) {
      group.run([&score_one, i] { score_one(i); });
    }
    group.wait();
  } else {
    for (size_t i = 0; i < clusters.size(); ++i) score_one(i);
  }

  // Phase 2: sum the (optionally weighted) per-intention scores of every
  // doc appearing in at least one list. Always serial and in cluster
  // order — floating-point accumulation order is part of the result
  // contract (parallel == serial, bit for bit).
  obs::TraceScope top_k(obs::Stage::kTopK);
  std::unordered_map<DocId, double> merged;
  for (size_t i = 0; i < clusters.size(); ++i) {
    double weight = cluster_weight(clusters[i].first);
    for (const ScoredDoc& sd : lists[i]) {
      merged[sd.doc] += weight * sd.score;
    }
  }
  out.reserve(merged.size());
  for (const auto& [doc, score] : merged) out.push_back(ScoredDoc{doc, score});
  std::sort(out.begin(), out.end(), [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  });
  if (out.size() > static_cast<size_t>(k)) out.resize(static_cast<size_t>(k));
  return out;
}

std::vector<ScoredDoc> IntentionMatcher::find_related(DocId query,
                                                      int k) const {
  return find_related_impl(query, k, /*allow_parallel=*/true);
}

std::vector<std::vector<ScoredDoc>> IntentionMatcher::find_related_batch(
    const std::vector<DocId>& queries, int k) const {
  std::vector<std::vector<ScoredDoc>> out(queries.size());
  if (pool_ != nullptr && queries.size() > 1) {
    TaskGroup group(*pool_);
    for (size_t i = 0; i < queries.size(); ++i) {
      // Each task is one whole query run serially: queries are the
      // parallel grain (perfect independence, no merge), and a task that
      // fanned out sub-tasks and waited would deadlock the fixed pool.
      group.run([this, &queries, &out, i, k] {
        out[i] = find_related_impl(queries[i], k, /*allow_parallel=*/false);
      });
    }
    group.wait();
  } else {
    for (size_t i = 0; i < queries.size(); ++i) {
      out[i] = find_related_impl(queries[i], k, /*allow_parallel=*/false);
    }
  }
  return out;
}

}  // namespace ibseg
