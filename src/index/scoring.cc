#include "index/scoring.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "obs/trace.h"

namespace ibseg {

double probabilistic_idf(size_t collection_size, size_t df) {
  if (df == 0 || collection_size == 0) return 0.0;
  double n = static_cast<double>(collection_size);
  double d = static_cast<double>(df);
  double value = std::log((n - d + 0.5)) / (d + 0.5);
  return value > 0.0 ? value : 0.0;
}

namespace {

// Eq. 7/8 norm of `unit` under external collection statistics: the same
// pre-floor expression finalize() evaluates, with the *global* NU average
// and floor substituted. Bit-identical to the norm an unpartitioned index
// would have stored for this unit.
double global_unit_norm(const InvertedIndex& index, uint32_t unit,
                        const ClusterCollectionStats& global) {
  double norm = pre_floor_unit_norm(index.unit_log_tf_sum(unit),
                                    index.unit_unique_terms(unit),
                                    global.avg_unique_terms);
  if (global.norm_floor > 0.0) norm = std::max(norm, global.norm_floor);
  return norm;
}

// --- Bound slack ------------------------------------------------------
//
// Per-term bounds are exact fp maxima of the contribution expressions
// (paper function, local stats) or conservative rearrangements whose only
// error sources are a handful of correctly-vs-nearly-correctly rounded
// ops (BM25's shared-tf numerator/denominator, the LM's libm log, the
// sharded norm lower bound). kTermSlack (1e-11 relative) dwarfs those
// few-ulp effects. Summed bounds additionally differ from the score's
// left-to-right accumulation by fp re-association, which for NON-NEGATIVE
// addends is bounded by ~T*eps relative; kSumSlack (1e-9) covers any
// realistic term count. The pruned path refuses to run (falls back to
// exhaustive scoring) whenever a contribution could be negative, so the
// non-negativity precondition always holds when a bound is trusted.
// Slack only weakens pruning — a too-large bound admits extra candidates
// that full scoring then rejects; it can never drop a true result.
constexpr double kTermSlack = 1.0 + 1e-11;
constexpr double kSumSlack = 1.0 + 1e-9;

inline double inflate_term(double x) {
  return x >= 0.0 ? x * kTermSlack : 0.0;
}

inline double inflate_sum(double x) {
  return x >= 0.0 ? x * kSumSlack : x;
}

// --- Scoring functions ------------------------------------------------
//
// One struct per ScoringFunction; each provides
//   setup(term, f_q, meta, &t)  -> false to skip the term entirely
//   contribution(t, unit, tf)   -> the per-posting score contribution,
//                                  spelled with EXACTLY the expressions
//                                  (associativity included) the historic
//                                  exhaustive path used — both the TAAT
//                                  and the DAAT drivers below call this
//                                  one function, which is what makes
//                                  "pruned == exhaustive, bit for bit"
//                                  a structural property
//   bound(t, meta)              -> upper bound on contribution() over the
//                                  term's postings (+inf = no pruning)
//   prunable(meta)              -> whether bound() is sound for this term

struct PaperScorer {
  const InvertedIndex& index;
  const ClusterCollectionStats* global;
  struct Term {
    double f_q = 0.0;
    double pidf = 0.0;
  };
  bool setup(TermId term, double f_q, const FlatTermMeta& meta,
             Term* t) const {
    double pidf = global == nullptr
                      ? probabilistic_idf(index.num_units(), meta.df)
                      : probabilistic_idf(global->num_units,
                                          global->df_of(term));
    if (pidf <= 0.0) return false;
    t->f_q = f_q;
    t->pidf = pidf;
    return true;
  }
  double contribution(const Term& t, uint32_t unit, double tf) const {
    double norm = global == nullptr
                      ? index.unit_norm(unit)
                      : global_unit_norm(index, unit, *global);
    double w = (std::log(tf) + 1.0) / norm;
    return t.f_q * w * t.pidf;
  }
  double bound(const Term& t, const FlatTermMeta& meta) const {
    double w_ub;
    if (global == nullptr) {
      // Exact max of the very weights contribution() computes (sealed
      // against the same post-floor norms): no slack needed, but the
      // uniform inflate_term keeps the driver simple.
      w_ub = meta.max_weight;
    } else {
      // Context-independent norm lower bound: NU >= 1 - kNormPivotSlope
      // = 0.25, a power of two, so 0.25 * log_tf_sum is an exact product
      // and pre_floor_unit_norm(unit) >= 0.25 * min_log_tf_sum holds as
      // a statement about doubles for every posting unit.
      double norm_lb = (1.0 - kNormPivotSlope) * meta.min_log_tf_sum;
      if (global->norm_floor > norm_lb) norm_lb = global->norm_floor;
      if (norm_lb <= 0.0) return std::numeric_limits<double>::infinity();
      w_ub = meta.max_log_tf_plus1 / norm_lb;
    }
    return t.f_q * w_ub * t.pidf;
  }
  bool prunable(const FlatTermMeta& meta) const {
    // tf >= 1 => log(tf) + 1 >= 1 > 0 => contributions non-negative.
    return meta.min_tf >= 1.0;
  }
};

struct Bm25Scorer {
  const InvertedIndex& index;
  const ClusterCollectionStats* global;
  double k1 = 1.2;
  double b = 0.75;
  double n = 0.0;
  double avg_len = 1e-9;
  struct Term {
    double fi = 0.0;  ///< f_q * idf (hoisting is associativity-preserving)
  };
  bool setup(TermId term, double f_q, const FlatTermMeta& meta,
             Term* t) const {
    double df = static_cast<double>(
        global == nullptr ? meta.df : global->df_of(term));
    double idf = std::log(1.0 + (n - df + 0.5) / (df + 0.5));
    t->fi = f_q * idf;
    return true;
  }
  double contribution(const Term& t, uint32_t unit, double tf) const {
    double len = index.unit_length(unit);
    double tf_component =
        (tf * (k1 + 1.0)) /
        (tf + k1 * (1.0 - b + b * len / avg_len));
    return t.fi * tf_component;
  }
  double bound(const Term& t, const FlatTermMeta& meta) const {
    // tf*(k1+1)/(tf+K) is increasing in tf and decreasing in
    // K = k1*(1-b+b*len/avg_len) (valid for k1 >= 0, 0 <= b <= 1 —
    // prunable() gates on that), so max_tf with the min-length K is an
    // upper bound up to a few ulp of cross-term rounding; kTermSlack
    // absorbs those.
    double k_lb = k1 * (1.0 - b + b * meta.min_len / avg_len);
    double den_lb = meta.max_tf + k_lb;
    if (den_lb <= 0.0) return std::numeric_limits<double>::infinity();
    double tf_ub = (meta.max_tf * (k1 + 1.0)) / den_lb;
    return t.fi * tf_ub;
  }
  bool prunable(const FlatTermMeta& meta) const {
    (void)meta;
    return k1 >= 0.0 && b >= 0.0 && b <= 1.0;
  }
};

struct LmScorer {
  const InvertedIndex& index;
  const ClusterCollectionStats* global;
  double lambda = 0.7;
  double collection_len = 1e-9;
  struct Term {
    double f_q = 0.0;
    double p_collection = 0.0;
  };
  bool setup(TermId term, double f_q, const FlatTermMeta& meta,
             Term* t) const {
    (void)meta;
    double p_collection =
        (global == nullptr ? index.collection_tf(term)
                           : global->collection_tf_of(term)) /
        collection_len;
    if (p_collection <= 0.0) return false;
    t->f_q = f_q;
    t->p_collection = p_collection;
    return true;
  }
  double contribution(const Term& t, uint32_t unit, double tf) const {
    double len = std::max(index.unit_length(unit), 1e-9);
    double p_unit = tf / len;
    return t.f_q * std::log(1.0 + ((1.0 - lambda) * p_unit) /
                                      (lambda * t.p_collection));
  }
  double bound(const Term& t, const FlatTermMeta& meta) const {
    // max_tf_over_len is the exact fp max of the p_unit values
    // contribution() computes (seal uses the same tf / max(len, 1e-9)
    // expression); the chain through /, +, log is monotone up to libm's
    // sub-ulp log error, which kTermSlack absorbs.
    return t.f_q * std::log(1.0 + ((1.0 - lambda) * meta.max_tf_over_len) /
                                      (lambda * t.p_collection));
  }
  bool prunable(const FlatTermMeta& meta) const {
    (void)meta;
    return true;  // log(1 + positive) > 0: contributions always positive
  }
};

template <class Scorer>
Scorer make_scorer(const InvertedIndex& index, const ScoringOptions& options,
                   const ClusterCollectionStats* global);

template <>
PaperScorer make_scorer<PaperScorer>(const InvertedIndex& index,
                                     const ScoringOptions& options,
                                     const ClusterCollectionStats* global) {
  (void)options;
  return PaperScorer{index, global};
}

template <>
Bm25Scorer make_scorer<Bm25Scorer>(const InvertedIndex& index,
                                   const ScoringOptions& options,
                                   const ClusterCollectionStats* global) {
  Bm25Scorer s{index, global};
  s.k1 = options.bm25_k1;
  s.b = options.bm25_b;
  s.n = static_cast<double>(global == nullptr ? index.num_units()
                                              : global->num_units);
  s.avg_len = std::max(
      global == nullptr ? index.avg_unit_length() : global->avg_unit_length,
      1e-9);
  return s;
}

template <>
LmScorer make_scorer<LmScorer>(const InvertedIndex& index,
                               const ScoringOptions& options,
                               const ClusterCollectionStats* global) {
  LmScorer s{index, global};
  s.lambda = std::clamp(options.lm_lambda, 1e-6, 1.0 - 1e-6);
  s.collection_len = std::max(global == nullptr ? index.collection_length()
                                                : global->collection_length,
                              1e-9);
  return s;
}

// --- Exhaustive term-at-a-time driver ---------------------------------
//
// The historic scoring algorithm, now reading the sealed flat() serving
// form (identical decoded postings in identical order, so identical
// accumulation): every admitted term's full postings run folds into a
// unit -> score map in query (TermId-ascending) order.
template <class Scorer>
void accumulate_flat(const InvertedIndex& index, const TermVector& query,
                     const Scorer& scorer,
                     std::unordered_map<uint32_t, double>* acc,
                     PruneStats* stats) {
  const FlatPostings& flat = index.flat();
  for (const auto& [term, f_q] : query.entries()) {
    if (f_q <= 0.0) continue;
    const FlatTermMeta* meta = flat.term_meta(term);
    if (meta == nullptr) continue;
    typename Scorer::Term t;
    if (!scorer.setup(term, f_q, *meta, &t)) continue;
    if (stats != nullptr) {
      stats->postings_total += meta->df;
      stats->postings_scored += meta->df;
    }
    FlatPostings::Cursor cur = flat.cursor(term);
    uint32_t unit = 0;
    double tf = 0.0;
    while (cur.next(&unit, &tf)) {
      double c = scorer.contribution(t, unit, tf);
      (*acc)[unit] += c;
    }
  }
}

// Shared exclude/threshold/top-n selection over a fully-scored map — the
// fallback arm of the pruned entry point. Mirrors the historic
// match_cluster_terms pipeline exactly: drop exclude_doc's units, keep
// positive scores (>= threshold in threshold mode), rank on
// (score desc, doc asc), truncate to top_n only in top-n mode.
std::vector<ScoredUnit> select_scored(
    const std::unordered_map<uint32_t, double>& acc,
    const std::vector<uint32_t>& unit_doc, uint32_t exclude_doc,
    size_t top_n, double score_threshold, PruneStats* stats) {
  std::vector<ScoredUnit> hits;
  hits.reserve(acc.size());
  for (const auto& [unit, score] : acc) {
    if (score <= 0.0) continue;
    if (unit_doc[unit] == exclude_doc) continue;
    if (score_threshold > 0.0 && score < score_threshold) continue;
    hits.push_back(ScoredUnit{unit, score});
  }
  if (stats != nullptr) stats->units_scored += acc.size();
  auto better = [&unit_doc](const ScoredUnit& a, const ScoredUnit& b) {
    if (a.score != b.score) return a.score > b.score;
    return unit_doc[a.unit] < unit_doc[b.unit];
  };
  if (score_threshold <= 0.0 && hits.size() > top_n) {
    std::partial_sort(hits.begin(),
                      hits.begin() + static_cast<long>(top_n), hits.end(),
                      better);
    hits.resize(top_n);
  } else {
    std::sort(hits.begin(), hits.end(), better);
  }
  return hits;
}

// --- MaxScore document-at-a-time driver -------------------------------
template <class Scorer>
std::vector<ScoredUnit> maxscore_select(
    const InvertedIndex& index, const TermVector& query,
    const Scorer& scorer, const std::vector<uint32_t>& unit_doc,
    uint32_t exclude_doc, size_t top_n, double score_threshold,
    PruneStats* stats) {
  const FlatPostings& flat = index.flat();
  const bool threshold_mode = score_threshold > 0.0;
  struct TermState {
    typename Scorer::Term term;
    double bound = 0.0;  ///< inflated per-term contribution upper bound
    uint32_t pos = 0;    ///< current index into punits/ptfs
    uint32_t end = 0;    ///< one past the term's last posting
  };
  // All scratch the driver needs, reused across calls per thread: after
  // the first few queries every buffer has reached its high-water
  // capacity and the steady state allocates nothing — the TAAT driver's
  // only allocation is its accumulator map, and the DAAT driver must not
  // pay more than that per intention.
  struct Workspace {
    std::vector<TermState> terms;
    std::vector<uint32_t> punits;
    std::vector<double> ptfs;
    std::vector<double> suffix_bound;
    std::vector<uint64_t> mask;
    std::vector<uint32_t> js;
    std::vector<double> sb;
  };
  static thread_local Workspace ws;
  std::vector<TermState>& terms = ws.terms;
  std::vector<uint32_t>& punits = ws.punits;
  std::vector<double>& ptfs = ws.ptfs;
  terms.clear();
  punits.clear();
  ptfs.clear();

  // Gather admitted terms in query (TermId-ascending) order — the same
  // admission rules, and therefore the same per-candidate accumulation
  // order, as the exhaustive TAAT driver. Each term's run is pre-decoded
  // once into shared parallel arrays (the same single decode pass the
  // TAAT driver performs via its cursor), so the candidate loops below
  // work over plain sorted uint32 arrays.
  bool bounds_sound = true;
  uint64_t admitted_postings = 0;
  for (const auto& [term, f_q] : query.entries()) {
    if (f_q <= 0.0) continue;
    const FlatTermMeta* meta = flat.term_meta(term);
    if (meta == nullptr) continue;
    TermState ts;
    if (!scorer.setup(term, f_q, *meta, &ts.term)) continue;
    if (!scorer.prunable(*meta)) bounds_sound = false;
    ts.bound = inflate_term(scorer.bound(ts.term, *meta));
    ts.pos = static_cast<uint32_t>(punits.size());
    uint32_t df = flat.decode_term(term, &punits, &ptfs);
    if (df == 0) continue;
    ts.end = ts.pos + df;
    admitted_postings += df;
    terms.push_back(std::move(ts));
  }
  if (stats != nullptr) stats->postings_total += admitted_postings;
  const size_t T = terms.size();
  if (T == 0 || (!threshold_mode && top_n == 0)) return {};
  if (!bounds_sound) {
    // A term's bound is not provably conservative (e.g. sub-unit tf under
    // the paper function): score everything, prune nothing. Same results
    // by construction.
    std::unordered_map<uint32_t, double> acc;
    accumulate_flat(index, query, scorer, &acc, nullptr);
    if (stats != nullptr) stats->postings_scored += admitted_postings;
    return select_scored(acc, unit_doc, exclude_doc, top_n,
                         score_threshold, stats);
  }

  // suffix_bound[j]: inflated-bound sum of terms[j..T) — the most terms
  // j.. can still add to a partial score (plus re-association slack,
  // applied at each comparison via inflate_sum).
  std::vector<double>& suffix_bound = ws.suffix_bound;
  suffix_bound.assign(T + 1, 0.0);
  for (size_t j = T; j-- > 0;) {
    suffix_bound[j] = terms[j].bound + suffix_bound[j + 1];
  }

  // theta: the current entry bar as a (score, doc) pair. Top-n mode: the
  // n-th best seen so far, active once the heap fills. Threshold mode:
  // the static threshold with a never-matching doc so exact-equality
  // candidates are kept (threshold semantics are score >= threshold).
  double theta_score = threshold_mode ? score_threshold : 0.0;
  uint32_t theta_doc =
      threshold_mode ? std::numeric_limits<uint32_t>::max() : 0;
  bool theta_active = threshold_mode;
  // Even the sum of every term's bound cannot reach the static
  // threshold: no unit anywhere can qualify.
  if (theta_active && inflate_sum(suffix_bound[0]) < theta_score) {
    return {};
  }

  // Candidate index: one bitmask word per unit, bit j = "terms[j]
  // contains this unit". Terms beyond the low 62 bits share the
  // overflow bit (63); their membership is re-checked per candidate by
  // a forward scan, with suffix_bound[] (which covers ALL tail terms)
  // as their conservative remaining-bound. Building the mask costs one
  // sequential OR per admitted posting — far cheaper than the heap-based
  // frontier it replaces, whose two heap operations per posting dominated
  // the driver's profile at realistic densities (each unit here matches
  // several query terms, so per-candidate costs amortize well).
  constexpr size_t kTailStart = 62;
  const uint32_t num_units = static_cast<uint32_t>(unit_doc.size());
  std::vector<uint64_t>& mask = ws.mask;
  mask.assign(num_units, 0);
  for (size_t j = 0; j < T; ++j) {
    const uint64_t bit = uint64_t{1} << std::min(j, kTailStart + 1);
    const TermState& ts = terms[j];
    for (uint32_t i = ts.pos; i < ts.end; ++i) mask[punits[i]] |= bit;
  }

  auto better = [&unit_doc](const ScoredUnit& a, const ScoredUnit& b) {
    if (a.score != b.score) return a.score > b.score;
    return unit_doc[a.unit] < unit_doc[b.unit];
  };
  std::vector<ScoredUnit> heap;  // worst-at-front (top-n mode)
  std::vector<ScoredUnit> kept;  // threshold mode accumulator

  // Document-at-a-time in ascending unit order (a dense scan of the mask
  // array). Per candidate, the exact matched-term set is in hand, so the
  // skip test compares theta against the sum of the MATCHED terms'
  // bounds — strictly stronger than the classic essential/non-essential
  // pivot (any candidate the pivot rule would never generate has a
  // matched-bound sum below the non-essential prefix sum, and fails this
  // test too). Contributions accumulate in ascending term-index = query
  // (TermId-ascending) order over exactly the terms containing the
  // candidate — the exhaustive TAAT accumulation order — so surviving
  // scores are bit-identical; the skip/abandon tests use conservative
  // upper bounds and can only reject, never alter.
  //
  // Visit order affects only which candidates get pruned (theta's growth
  // trajectory), never correctness: a candidate rejected against the
  // current theta loses against the final theta a fortiori.
  std::vector<uint32_t>& js = ws.js;
  std::vector<double>& sb = ws.sb;
  for (uint32_t cand = 0; cand < num_units; ++cand) {
    const uint64_t m = mask[cand];
    if (m == 0) continue;
    const uint32_t cand_doc = unit_doc[cand];
    if (cand_doc == exclude_doc) continue;  // never a result; scans of its
                                            // terms catch up lazily below
    // Matched term indices, ascending (low 62 bits are exact; the
    // overflow bit defers tail terms to the probe loop below).
    js.clear();
    uint64_t low = m & ((uint64_t{1} << (kTailStart + 1)) - 1);
    while (low != 0) {
      js.push_back(static_cast<uint32_t>(std::countr_zero(low)));
      low &= low - 1;
    }
    const bool tail = T > kTailStart + 1 && (m >> (kTailStart + 1)) != 0;
    // Per-candidate suffix bounds over the matched terms (addition-only,
    // non-negative — the same re-association argument as suffix_bound).
    sb.resize(js.size() + 1);
    sb[js.size()] = tail ? suffix_bound[kTailStart + 1] : 0.0;
    for (size_t i = js.size(); i-- > 0;) {
      sb[i] = terms[js[i]].bound + sb[i + 1];
    }

    // Score in term order, abandoning as soon as the achieved prefix
    // plus the remaining matched terms' bound sum cannot beat theta. The
    // check before the first contribution is where a candidate matching
    // only weak terms dies without a single scoring call.
    double acc = 0.0;
    bool abandoned = false;
    for (size_t i = 0; i < js.size(); ++i) {
      if (theta_active) {
        double ub = inflate_sum(acc + sb[i]);
        if (ub < theta_score ||
            (ub == theta_score && cand_doc > theta_doc)) {
          abandoned = true;
          break;
        }
      }
      TermState& ts = terms[js[i]];
      while (ts.pos < ts.end && punits[ts.pos] < cand) ++ts.pos;
      // The mask bit is exact for these terms: punits[ts.pos] == cand.
      acc += scorer.contribution(ts.term, cand, ptfs[ts.pos]);
      if (stats != nullptr) ++stats->postings_scored;
    }
    if (!abandoned && tail) {
      for (size_t j = kTailStart + 1; j < T; ++j) {
        if (theta_active) {
          double ub = inflate_sum(acc + suffix_bound[j]);
          if (ub < theta_score ||
              (ub == theta_score && cand_doc > theta_doc)) {
            abandoned = true;
            break;
          }
        }
        TermState& ts = terms[j];
        while (ts.pos < ts.end && punits[ts.pos] < cand) ++ts.pos;
        if (ts.pos < ts.end && punits[ts.pos] == cand) {
          acc += scorer.contribution(ts.term, cand, ptfs[ts.pos]);
          if (stats != nullptr) ++stats->postings_scored;
        }
      }
    }
    if (abandoned) {
      if (stats != nullptr) ++stats->units_abandoned;
      continue;
    }
    if (stats != nullptr) ++stats->units_scored;
    if (acc <= 0.0) continue;  // exhaustive keeps positive scores only
    if (threshold_mode) {
      if (acc >= score_threshold) kept.push_back(ScoredUnit{cand, acc});
      continue;
    }
    ScoredUnit su{cand, acc};
    if (heap.size() < top_n) {
      heap.push_back(su);
      std::push_heap(heap.begin(), heap.end(), better);
      if (heap.size() < top_n) continue;
    } else if (better(su, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), better);
      heap.back() = su;
      std::push_heap(heap.begin(), heap.end(), better);
    } else {
      continue;
    }
    theta_score = heap.front().score;
    theta_doc = unit_doc[heap.front().unit];
    theta_active = true;
    // Even the sum of every term's bound cannot reach theta: nothing
    // still unvisited can enter the heap.
    if (inflate_sum(suffix_bound[0]) < theta_score) break;
  }
  std::vector<ScoredUnit>& out = threshold_mode ? kept : heap;
  std::sort(out.begin(), out.end(), better);
  return std::move(out);
}

template <class Scorer>
std::vector<ScoredUnit> score_units_exhaustive(
    const InvertedIndex& index, const TermVector& query,
    const ScoringOptions& options, const ClusterCollectionStats* global,
    PruneStats* stats) {
  Scorer scorer = make_scorer<Scorer>(index, options, global);
  std::unordered_map<uint32_t, double> acc;
  accumulate_flat(index, query, scorer, &acc, stats);
  std::vector<ScoredUnit> hits;
  hits.reserve(acc.size());
  for (const auto& [unit, score] : acc) {
    if (score > 0.0) hits.push_back(ScoredUnit{unit, score});
  }
  if (stats != nullptr) stats->units_scored += acc.size();
  return hits;
}

}  // namespace

std::vector<ScoredUnit> score_units_counted(
    const InvertedIndex& index, const TermVector& query,
    const ScoringOptions& options, const ClusterCollectionStats* global,
    PruneStats* stats) {
  obs::TraceScope score(obs::Stage::kScore);
  switch (options.function) {
    case ScoringFunction::kBm25:
      return score_units_exhaustive<Bm25Scorer>(index, query, options,
                                                global, stats);
    case ScoringFunction::kQueryLikelihood:
      return score_units_exhaustive<LmScorer>(index, query, options, global,
                                              stats);
    case ScoringFunction::kPaperTfIdf:
      break;
  }
  return score_units_exhaustive<PaperScorer>(index, query, options, global,
                                             stats);
}

std::vector<ScoredUnit> score_units(const InvertedIndex& index,
                                    const TermVector& query,
                                    const ScoringOptions& options,
                                    const ClusterCollectionStats* global) {
  return score_units_counted(index, query, options, global, nullptr);
}

std::vector<ScoredUnit> score_units_maxscore(
    const InvertedIndex& index, const TermVector& query,
    const ScoringOptions& options, const ClusterCollectionStats* global,
    const std::vector<uint32_t>& unit_doc, uint32_t exclude_doc,
    size_t top_n, double score_threshold, PruneStats* stats) {
  obs::TraceScope score(obs::Stage::kScore);
  switch (options.function) {
    case ScoringFunction::kBm25:
      return maxscore_select(index, query,
                             make_scorer<Bm25Scorer>(index, options, global),
                             unit_doc, exclude_doc, top_n, score_threshold,
                             stats);
    case ScoringFunction::kQueryLikelihood:
      return maxscore_select(index, query,
                             make_scorer<LmScorer>(index, options, global),
                             unit_doc, exclude_doc, top_n, score_threshold,
                             stats);
    case ScoringFunction::kPaperTfIdf:
      break;
  }
  return maxscore_select(index, query,
                         make_scorer<PaperScorer>(index, options, global),
                         unit_doc, exclude_doc, top_n, score_threshold,
                         stats);
}

void keep_top_n(std::vector<ScoredUnit>& hits, size_t n) {
  auto cmp = [](const ScoredUnit& a, const ScoredUnit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.unit < b.unit;
  };
  if (hits.size() > n) {
    std::partial_sort(hits.begin(), hits.begin() + static_cast<long>(n),
                      hits.end(), cmp);
    hits.resize(n);
  } else {
    std::sort(hits.begin(), hits.end(), cmp);
  }
}

}  // namespace ibseg
