#include "index/scoring.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "obs/trace.h"

namespace ibseg {

double probabilistic_idf(size_t collection_size, size_t df) {
  if (df == 0 || collection_size == 0) return 0.0;
  double n = static_cast<double>(collection_size);
  double d = static_cast<double>(df);
  double value = std::log((n - d + 0.5)) / (d + 0.5);
  return value > 0.0 ? value : 0.0;
}

namespace {

// Eq. 7/8 norm of `unit` under external collection statistics: the same
// pre-floor expression finalize() evaluates, with the *global* NU average
// and floor substituted. Bit-identical to the norm an unpartitioned index
// would have stored for this unit.
double global_unit_norm(const InvertedIndex& index, uint32_t unit,
                        const ClusterCollectionStats& global) {
  double norm = pre_floor_unit_norm(index.unit_log_tf_sum(unit),
                                    index.unit_unique_terms(unit),
                                    global.avg_unique_terms);
  if (global.norm_floor > 0.0) norm = std::max(norm, global.norm_floor);
  return norm;
}

// The paper's Eq. 9 (default).
void accumulate_paper_tfidf(const InvertedIndex& index,
                            const TermVector& query,
                            const ClusterCollectionStats* global,
                            std::unordered_map<uint32_t, double>* acc) {
  for (const auto& [term, f_q] : query.entries()) {
    if (f_q <= 0.0) continue;
    const std::vector<Posting>& plist = index.postings(term);
    if (plist.empty()) continue;
    double pidf = global == nullptr
                      ? probabilistic_idf(index.num_units(), plist.size())
                      : probabilistic_idf(global->num_units,
                                          global->df_of(term));
    if (pidf <= 0.0) continue;
    for (const Posting& p : plist) {
      double norm = global == nullptr ? index.unit_norm(p.unit)
                                      : global_unit_norm(index, p.unit,
                                                         *global);
      double w = (std::log(p.tf) + 1.0) / norm;
      (*acc)[p.unit] += f_q * w * pidf;
    }
  }
}

// Okapi BM25 with the standard +1-smoothed RSJ idf.
void accumulate_bm25(const InvertedIndex& index, const TermVector& query,
                     const ScoringOptions& options,
                     const ClusterCollectionStats* global,
                     std::unordered_map<uint32_t, double>* acc) {
  const double k1 = options.bm25_k1;
  const double b = options.bm25_b;
  const double n = static_cast<double>(
      global == nullptr ? index.num_units() : global->num_units);
  const double avg_len = std::max(
      global == nullptr ? index.avg_unit_length() : global->avg_unit_length,
      1e-9);
  for (const auto& [term, f_q] : query.entries()) {
    if (f_q <= 0.0) continue;
    const std::vector<Posting>& plist = index.postings(term);
    if (plist.empty()) continue;
    double df = static_cast<double>(
        global == nullptr ? plist.size() : global->df_of(term));
    double idf = std::log(1.0 + (n - df + 0.5) / (df + 0.5));
    for (const Posting& p : plist) {
      double len = index.unit_length(p.unit);
      double tf_component =
          (p.tf * (k1 + 1.0)) /
          (p.tf + k1 * (1.0 - b + b * len / avg_len));
      (*acc)[p.unit] += f_q * idf * tf_component;
    }
  }
}

// Query-likelihood with Jelinek-Mercer smoothing, in the rank-equivalent
// sparse form (zero contribution for units lacking the term).
void accumulate_query_likelihood(const InvertedIndex& index,
                                 const TermVector& query,
                                 const ScoringOptions& options,
                                 const ClusterCollectionStats* global,
                                 std::unordered_map<uint32_t, double>* acc) {
  const double lambda = std::clamp(options.lm_lambda, 1e-6, 1.0 - 1e-6);
  const double collection_len = std::max(
      global == nullptr ? index.collection_length()
                        : global->collection_length,
      1e-9);
  for (const auto& [term, f_q] : query.entries()) {
    if (f_q <= 0.0) continue;
    const std::vector<Posting>& plist = index.postings(term);
    if (plist.empty()) continue;
    double p_collection =
        (global == nullptr ? index.collection_tf(term)
                           : global->collection_tf_of(term)) /
        collection_len;
    if (p_collection <= 0.0) continue;
    for (const Posting& p : plist) {
      double len = std::max(index.unit_length(p.unit), 1e-9);
      double p_unit = p.tf / len;
      (*acc)[p.unit] +=
          f_q * std::log(1.0 + ((1.0 - lambda) * p_unit) /
                                   (lambda * p_collection));
    }
  }
}

}  // namespace

std::vector<ScoredUnit> score_units(const InvertedIndex& index,
                                    const TermVector& query,
                                    const ScoringOptions& options,
                                    const ClusterCollectionStats* global) {
  obs::TraceScope score(obs::Stage::kScore);
  std::unordered_map<uint32_t, double> acc;
  switch (options.function) {
    case ScoringFunction::kPaperTfIdf:
      accumulate_paper_tfidf(index, query, global, &acc);
      break;
    case ScoringFunction::kBm25:
      accumulate_bm25(index, query, options, global, &acc);
      break;
    case ScoringFunction::kQueryLikelihood:
      accumulate_query_likelihood(index, query, options, global, &acc);
      break;
  }
  std::vector<ScoredUnit> hits;
  hits.reserve(acc.size());
  for (const auto& [unit, score] : acc) {
    if (score > 0.0) hits.push_back(ScoredUnit{unit, score});
  }
  return hits;
}

void keep_top_n(std::vector<ScoredUnit>& hits, size_t n) {
  auto cmp = [](const ScoredUnit& a, const ScoredUnit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.unit < b.unit;
  };
  if (hits.size() > n) {
    std::partial_sort(hits.begin(), hits.begin() + static_cast<long>(n),
                      hits.end(), cmp);
    hits.resize(n);
  } else {
    std::sort(hits.begin(), hits.end(), cmp);
  }
}

}  // namespace ibseg
