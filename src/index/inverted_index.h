#ifndef IBSEG_INDEX_INVERTED_INDEX_H_
#define IBSEG_INDEX_INVERTED_INDEX_H_

#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "index/collection_stats.h"
#include "index/flat_postings.h"
#include "text/term_vector.h"
#include "text/vocabulary.h"

namespace ibseg {

/// A posting: a unit (segment or whole document, depending on which matcher
/// owns the index) and the term frequency within it.
struct Posting {
  uint32_t unit = 0;
  double tf = 0.0;
};

/// Full-text inverted index over "units". The intention matcher builds one
/// per intention cluster (|C| indices, Sec. 7 "Indexing"); the FullText
/// baseline builds a single one over whole posts.
///
/// Also maintains the per-unit statistics needed by the MySQL-5.5-style
/// weighting of Eqs. 7/8: the sum of (log tf + 1) over the unit's terms and
/// the pivoted unique-term-count normalization NU.
class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Adds a unit. Unit ids are assigned densely in insertion order and
  /// returned. Call finalize() before querying; adding after finalize() is
  /// allowed (online ingestion) but requires re-finalizing.
  uint32_t add_unit(const TermVector& terms);

  /// Computes the collection-dependent normalizations. Idempotent until
  /// the next add_unit.
  void finalize();

  /// Postings for `term` (empty when absent). Requires finalize(). This is
  /// the node-heavy *build* form; the query path reads the sealed flat()
  /// serving form instead (identical decoded values, contiguous layout).
  const std::vector<Posting>& postings(TermId term) const;

  /// The sealed, arena-backed serving form of the postings (flat_postings.h):
  /// rebuilt by every finalize(), so it can never lag the build form —
  /// add_unit() un-finalizes the index and querying re-requires finalize().
  /// Requires finalize().
  const FlatPostings& flat() const {
    assert(finalized_);
    return flat_;
  }

  /// Number of units containing `term` (document frequency).
  size_t df(TermId term) const;

  /// \brief Number of units added so far.
  size_t num_units() const { return unit_norms_.size(); }

  /// Average number of unique terms per unit (the pivot of NU, Eq. 7/8).
  double avg_unique_terms() const { return avg_unique_terms_; }

  /// Eq. 7/8 denominator for `unit`:
  ///   sum_{t' in unit} (log tf(t') + 1) * NU(unit)
  /// where NU(unit) = (1 - b) + b * unique(unit) / avg_unique and b = 0.75
  /// (the BM25-style pivot; penalizes units with more unique terms than the
  /// collection average, as the paper describes).
  double unit_norm(uint32_t unit) const { return unit_norms_[unit]; }

  /// Eq. 7/8 numerator-complete weight of `term` in `unit`:
  ///   (log tf + 1) / unit_norm(unit); 0 when the term is absent.
  double weight(TermId term, uint32_t unit) const;

  /// Total term-occurrence mass of `unit` (sum of tf) — the |d| of BM25
  /// and language-model scoring.
  double unit_length(uint32_t unit) const { return stats_[unit].length; }

  /// Average unit length across the collection. Requires finalize().
  double avg_unit_length() const { return avg_length_; }

  /// Collection frequency of `term` (total tf across units).
  double collection_tf(TermId term) const;

  /// Total term-occurrence mass of the collection.
  double collection_length() const { return collection_length_; }

  /// Per-unit sum of (log tf + 1) — the Eq. 7/8 numerator of the unit's
  /// norm. Exposed (with unit_unique_terms) so a document-partitioned
  /// shard's units can be re-normalized on the fly against *global*
  /// collection statistics (see ClusterCollectionStats): the norm is a pure
  /// function of these two locals plus the collection's NU average + floor.
  double unit_log_tf_sum(uint32_t unit) const {
    return stats_[unit].log_tf_sum;
  }

  /// Number of distinct terms in `unit` (the NU pivot input).
  size_t unit_unique_terms(uint32_t unit) const {
    return stats_[unit].unique_terms;
  }

  /// Pivot slope b of NU (alias of the shared kNormPivotSlope).
  static constexpr double kPivotSlope = kNormPivotSlope;

  /// Floor applied to unit norms, as a fraction of the collection-average
  /// norm. Eq. 7/8 divide by a per-unit sum that gets tiny for very short
  /// units, which would let a one-term overlap with a three-term segment
  /// outscore multi-term matches against substantial segments; the floor
  /// keeps short-unit weights bounded. Set before finalize().
  double min_norm_fraction = 1.0;

 private:
  std::unordered_map<TermId, std::vector<Posting>> postings_;
  FlatPostings flat_;
  std::unordered_map<TermId, double> collection_tf_;
  std::vector<UnitLexStats> stats_;
  std::vector<double> unit_norms_;
  double avg_unique_terms_ = 0.0;
  double avg_length_ = 0.0;
  double collection_length_ = 0.0;
  bool finalized_ = false;
};

}  // namespace ibseg

#endif  // IBSEG_INDEX_INVERTED_INDEX_H_
