#ifndef IBSEG_INDEX_FULLTEXT_MATCHER_H_
#define IBSEG_INDEX_FULLTEXT_MATCHER_H_

#include <map>
#include <vector>

#include "index/intention_matcher.h"
#include "index/inverted_index.h"
#include "seg/document.h"
#include "text/vocabulary.h"

namespace ibseg {

/// The *FullText* baseline (Sec. 9.2): whole-post matching with the
/// MySQL-5.5.3 weighting of Eq. 7 and the same probabilistic-IDF ranking,
/// i.e., exactly the intention machinery with a single index over
/// unsegmented posts. This is the method the paper reports 10-12% mean
/// precision below IntentIntent-MR.
class FullTextMatcher {
 public:
  /// \brief Builds the single whole-post index over `docs`.
  /// \param docs the corpus; one unit per document
  /// \param vocab corpus-shared vocabulary (extended with unseen terms)
  /// \param scoring the segment-comparison function (paper Eq. 9 default)
  static FullTextMatcher build(const std::vector<Document>& docs,
                               Vocabulary& vocab,
                               const ScoringOptions& scoring = {});

  /// Top-k documents related to reference document `query` (excluded from
  /// the result).
  std::vector<ScoredDoc> find_related(DocId query, int k) const;

  /// \brief Number of indexed documents.
  size_t num_docs() const { return unit_doc_.size(); }

 private:
  InvertedIndex index_;
  std::vector<DocId> unit_doc_;
  std::vector<TermVector> unit_terms_;
  std::map<DocId, uint32_t> doc_unit_;
  ScoringOptions scoring_;
};

}  // namespace ibseg

#endif  // IBSEG_INDEX_FULLTEXT_MATCHER_H_
