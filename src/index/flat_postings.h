#ifndef IBSEG_INDEX_FLAT_POSTINGS_H_
#define IBSEG_INDEX_FLAT_POSTINGS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "text/vocabulary.h"

namespace ibseg {

struct Posting;

/// Per-term metadata of the sealed serving form, computed once at seal
/// time. The max-*/min-* fields are the inputs of the MaxScore pruning
/// bounds (see scoring.h and docs/ARCHITECTURE.md §7): every "max" is the
/// exact floating-point maximum of the corresponding per-posting value the
/// scoring functions compute — taken over the *same* expressions scoring
/// evaluates, so `stored bound >= every actual contribution` holds as a
/// statement about doubles, not reals. tests/flat_postings_test.cc checks
/// the invariant exhaustively on small corpora.
struct FlatTermMeta {
  uint32_t df = 0;          ///< postings count (|units| containing the term)
  uint64_t offset = 0;      ///< byte offset of the term's run in the arena
  uint64_t bytes = 0;       ///< encoded byte length of the run
  double max_tf = 0.0;      ///< max term frequency over postings
  /// min term frequency over postings. The pruned scorer requires
  /// min_tf >= 1 for the paper function (it guarantees log(tf) + 1 >= 0,
  /// i.e. every contribution is non-negative — the precondition of the
  /// summed-bound slack argument); sub-unit tf routes to the exhaustive
  /// path instead of risking an unsound bound.
  double min_tf = 0.0;
  /// max over postings of (log tf + 1) — each value computed by the same
  /// std::log call scoring uses, so no monotonicity assumption on libm is
  /// needed for the paper-scoring bound.
  double max_log_tf_plus1 = 0.0;
  /// max over postings of (log tf + 1) / unit_norm(unit) with the sealing
  /// index's own (post-floor) norms — the exact per-posting Eq. 8 weight
  /// of the local-statistics paper-scoring path.
  double max_weight = 0.0;
  /// min over postings of the unit's log-tf sum. Because the NU pivot
  /// factor is >= (1 - kNormPivotSlope) = 0.25 (a power of two, so the
  /// product rounds exactly), 0.25 * min_log_tf_sum lower-bounds every
  /// posting unit's norm under ANY collection statistics — the
  /// context-independent norm bound the sharded (global-stats) pruning
  /// path needs.
  double min_log_tf_sum = 0.0;
  double min_len = 0.0;         ///< min unit length (BM25 bound input)
  double max_tf_over_len = 0.0; ///< max of tf / max(len, 1e-9) (LM bound)
};

/// Counters reported by the bounded decoder (diagnostics and fuzzing).
struct FlatDecodeStats {
  size_t postings = 0;  ///< postings decoded
  size_t bytes = 0;     ///< bytes consumed
};

/// The inverted index's *serving* form: every term's postings laid out in
/// one contiguous arena, unit ids delta/varint-encoded and term
/// frequencies encoded exactly (integral tf as a varint, anything else as
/// the raw IEEE-754 bit pattern — decode returns the identical double
/// either way, which the bit-identity contract of the differential suite
/// depends on).
///
/// The structure is sealed from a finalized InvertedIndex and immutable
/// afterwards; add_unit() marks the owning index un-finalized, and the
/// next finalize() re-seals a fresh arena — the flat form can never serve
/// stale postings across an ingest (the epoch/publication machinery
/// re-finalizes touched cluster indices before publishing).
class FlatPostings {
 public:
  FlatPostings() = default;

  /// Seals the serving form: one arena run per term in ascending TermId
  /// order. `postings_of(term)` must yield postings with strictly
  /// ascending unit ids (InvertedIndex appends units in insertion order).
  /// `unit_norms` and `unit_log_tf_sums`/`unit_lengths` supply the
  /// per-unit values the metadata maxima/minima are computed from.
  static FlatPostings seal(
      const std::vector<std::pair<TermId, const std::vector<Posting>*>>&
          term_postings,
      const std::vector<double>& unit_norms,
      const std::vector<double>& unit_log_tf_sums,
      const std::vector<double>& unit_lengths);

  /// Metadata for `term`; nullptr when the term is absent.
  const FlatTermMeta* term_meta(TermId term) const;

  /// Forward-only decoder over one term's run. Bounds-checked: next()
  /// never reads outside the term's [offset, offset + bytes) window.
  class Cursor {
   public:
    Cursor() = default;

    /// True while a posting is available; fills (unit, tf).
    bool next(uint32_t* unit, double* tf);

    /// True when all postings have been consumed.
    bool done() const { return remaining_ == 0; }

   private:
    friend class FlatPostings;
    const uint8_t* p_ = nullptr;
    const uint8_t* end_ = nullptr;
    uint32_t remaining_ = 0;
    uint32_t prev_unit_ = 0;
    bool first_ = true;
  };

  /// Decoder positioned at the start of `term`'s run (empty cursor when
  /// the term is absent).
  Cursor cursor(TermId term) const;

  /// Number of distinct terms sealed.
  size_t num_terms() const { return meta_.size(); }

  /// Arena size in bytes (the ibseg_postings_bytes input).
  size_t arena_bytes() const { return arena_.size(); }

  /// Total in-memory footprint: arena + per-term metadata table.
  size_t total_bytes() const {
    return arena_.size() +
           meta_.size() * (sizeof(TermId) + sizeof(FlatTermMeta));
  }

  /// Raw arena bytes of one term's run (empty when absent) — seed material
  /// for the decoder fuzz target and the golden-encoding tests.
  std::vector<uint8_t> term_run_bytes(TermId term) const;

  /// Decodes the whole run of `term` into parallel (unit, tf) arrays,
  /// appending; returns the number of postings appended (0 when absent).
  /// One tight decode pass — the pruned query path pre-decodes each
  /// admitted term once and then works over plain arrays, keeping varint
  /// branching out of its per-candidate loops.
  uint32_t decode_term(TermId term, std::vector<uint32_t>* units,
                       std::vector<double>* tfs) const;

  // --- Codec, exposed for tests and the fuzz target. -------------------

  /// Appends the unsigned LEB128 encoding of `value` to `out`.
  static void append_varint(std::vector<uint8_t>* out, uint64_t value);

  /// Appends one posting (delta from `prev_unit`, or the raw unit id when
  /// `first`) to `out`. tf encoding: a positive integral tf < 2^62 is
  /// stored as varint(tf << 1 | 1); anything else as varint(0) followed by
  /// the 8 little-endian bytes of the double's bit pattern. Decoding
  /// reproduces the identical double in both branches.
  static void append_posting(std::vector<uint8_t>* out, uint32_t unit,
                             double tf, uint32_t prev_unit, bool first);

  /// Bounded decode of an untrusted run: reads at most `size` bytes and at
  /// most `df` postings into `out`, appending. Returns false (leaving any
  /// partial decode in `out`) on truncation, varint overflow, unit-id
  /// overflow past 2^32, or trailing bytes after the df-th posting.
  /// Never allocates more than min(df, size) postings — an inflated df
  /// against a short buffer cannot over-reserve (the snapshot-reader
  /// allocation-bomb lesson, PR 5).
  static bool decode_run(const uint8_t* data, size_t size, uint32_t df,
                         std::vector<Posting>* out,
                         FlatDecodeStats* stats = nullptr);

 private:
  std::vector<uint8_t> arena_;
  /// (TermId, meta) sorted by TermId; lookups binary-search.
  std::vector<std::pair<TermId, FlatTermMeta>> meta_;
};

}  // namespace ibseg

#endif  // IBSEG_INDEX_FLAT_POSTINGS_H_
