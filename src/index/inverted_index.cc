#include "index/inverted_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "obs/trace.h"

namespace ibseg {

uint32_t InvertedIndex::add_unit(const TermVector& terms) {
  finalized_ = false;  // norms must be recomputed
  uint32_t unit = static_cast<uint32_t>(stats_.size());
  for (const auto& [term, tf] : terms.entries()) {
    if (tf <= 0.0) continue;
    postings_[term].push_back(Posting{unit, tf});
    collection_tf_[term] += tf;
    collection_length_ += tf;
  }
  stats_.push_back(compute_unit_lex_stats(terms));
  unit_norms_.push_back(1.0);  // placeholder until finalize()
  return unit;
}

void InvertedIndex::finalize() {
  if (finalized_) return;
  // Timed only when norms are actually recomputed; the idempotent
  // early-return above would otherwise flood the stage histogram with
  // no-op samples.
  obs::TraceScope term_weight(obs::Stage::kTermWeight);
  double total_unique = 0.0;
  for (const UnitLexStats& s : stats_) total_unique += s.unique_terms;
  avg_unique_terms_ =
      stats_.empty() ? 0.0 : total_unique / static_cast<double>(stats_.size());
  double length_sum = 0.0;
  for (const UnitLexStats& s : stats_) length_sum += s.length;
  avg_length_ =
      stats_.empty() ? 0.0 : length_sum / static_cast<double>(stats_.size());
  double norm_sum = 0.0;
  for (size_t u = 0; u < stats_.size(); ++u) {
    unit_norms_[u] = pre_floor_unit_norm(stats_[u].log_tf_sum,
                                         stats_[u].unique_terms,
                                         avg_unique_terms_);
    norm_sum += unit_norms_[u];
  }
  if (!unit_norms_.empty() && min_norm_fraction > 0.0) {
    double floor =
        min_norm_fraction * norm_sum / static_cast<double>(unit_norms_.size());
    for (double& n : unit_norms_) n = std::max(n, floor);
  }
  // Seal the contiguous serving form. Norms are final (post-floor) at this
  // point, so the per-term pruning metadata (max Eq. 8 weight etc.) is
  // computed against exactly the values the query path will score with.
  std::vector<std::pair<TermId, const std::vector<Posting>*>> term_postings;
  term_postings.reserve(postings_.size());
  for (const auto& [term, plist] : postings_) {
    term_postings.emplace_back(term, &plist);
  }
  std::sort(term_postings.begin(), term_postings.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<double> log_tf_sums(stats_.size());
  std::vector<double> lengths(stats_.size());
  for (size_t u = 0; u < stats_.size(); ++u) {
    log_tf_sums[u] = stats_[u].log_tf_sum;
    lengths[u] = stats_[u].length;
  }
  flat_ = FlatPostings::seal(term_postings, unit_norms_, log_tf_sums,
                             lengths);
  finalized_ = true;
}

const std::vector<Posting>& InvertedIndex::postings(TermId term) const {
  assert(finalized_);
  static const std::vector<Posting>* kEmpty = new std::vector<Posting>();
  auto it = postings_.find(term);
  return it == postings_.end() ? *kEmpty : it->second;
}

size_t InvertedIndex::df(TermId term) const {
  auto it = postings_.find(term);
  return it == postings_.end() ? 0 : it->second.size();
}

double InvertedIndex::collection_tf(TermId term) const {
  auto it = collection_tf_.find(term);
  return it == collection_tf_.end() ? 0.0 : it->second;
}

double InvertedIndex::weight(TermId term, uint32_t unit) const {
  assert(finalized_);
  for (const Posting& p : postings(term)) {
    if (p.unit == unit) return (std::log(p.tf) + 1.0) / unit_norms_[unit];
  }
  return 0.0;
}

}  // namespace ibseg
