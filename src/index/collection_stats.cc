#include "index/collection_stats.h"

#include <utility>

namespace ibseg {

UnitLexStats compute_unit_lex_stats(const TermVector& terms) {
  UnitLexStats stats;
  for (const auto& [term, tf] : terms.entries()) {
    if (tf <= 0.0) continue;
    stats.log_tf_sum += std::log(tf) + 1.0;
    stats.length += tf;
    ++stats.unique_terms;
  }
  return stats;
}

GlobalIndexStats::GlobalIndexStats(int num_clusters, double min_norm_fraction)
    : accums_(static_cast<size_t>(num_clusters > 0 ? num_clusters : 0)),
      views_(accums_.size()),
      min_norm_fraction_(min_norm_fraction) {
  for (auto& v : views_) v = std::make_shared<ClusterCollectionStats>();
}

void GlobalIndexStats::append(int cluster, const TermVector& terms,
                              bool refresh_now) {
  if (cluster < 0 || static_cast<size_t>(cluster) >= accums_.size()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ClusterAccum& acc = accums_[static_cast<size_t>(cluster)];
    // Mirror of InvertedIndex::add_unit: same iteration (TermId order),
    // same tf <= 0 skip, same += accumulation of the collection totals.
    for (const auto& [term, tf] : terms.entries()) {
      if (tf <= 0.0) continue;
      ++acc.df[term];
      acc.collection_tf[term] += tf;
      acc.collection_length += tf;
    }
    acc.units.push_back(compute_unit_lex_stats(terms));
  }
  if (refresh_now) refresh(cluster);
}

void GlobalIndexStats::refresh(int cluster) {
  if (cluster < 0 || static_cast<size_t>(cluster) >= accums_.size()) return;
  std::lock_guard<std::mutex> lock(mu_);
  const ClusterAccum& acc = accums_[static_cast<size_t>(cluster)];
  auto view = std::make_shared<ClusterCollectionStats>();
  view->num_units = acc.units.size();
  view->df = acc.df;
  view->collection_tf = acc.collection_tf;
  view->collection_length = acc.collection_length;
  // Mirror of InvertedIndex::finalize: the averages come from sums of
  // integer-valued doubles (exact, order-independent), the norm floor from
  // a serial sweep over pre-floor norms in unit order (order-sensitive —
  // this vector IS the global publication order).
  double total_unique = 0.0;
  for (const UnitLexStats& s : acc.units) total_unique += s.unique_terms;
  view->avg_unique_terms =
      acc.units.empty()
          ? 0.0
          : total_unique / static_cast<double>(acc.units.size());
  double length_sum = 0.0;
  for (const UnitLexStats& s : acc.units) length_sum += s.length;
  view->avg_unit_length =
      acc.units.empty() ? 0.0
                        : length_sum / static_cast<double>(acc.units.size());
  double norm_sum = 0.0;
  for (const UnitLexStats& s : acc.units) {
    norm_sum += pre_floor_unit_norm(s.log_tf_sum, s.unique_terms,
                                    view->avg_unique_terms);
  }
  view->norm_floor =
      (!acc.units.empty() && min_norm_fraction_ > 0.0)
          ? min_norm_fraction_ * norm_sum /
                static_cast<double>(acc.units.size())
          : 0.0;
  views_[static_cast<size_t>(cluster)] = std::move(view);
}

std::shared_ptr<const ClusterCollectionStats> GlobalIndexStats::cluster(
    int c) const {
  if (c < 0 || static_cast<size_t>(c) >= views_.size()) {
    static const std::shared_ptr<const ClusterCollectionStats> kEmpty =
        std::make_shared<ClusterCollectionStats>();
    return kEmpty;
  }
  std::lock_guard<std::mutex> lock(mu_);
  return views_[static_cast<size_t>(c)];
}

size_t GlobalIndexStats::total_units() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const ClusterAccum& acc : accums_) n += acc.units.size();
  return n;
}

}  // namespace ibseg
